#include "gnn/label_propagation.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace trail::gnn {

LabelPropagationResult RunLabelPropagation(const graph::CsrGraph& csr,
                                           const std::vector<int>& labels,
                                           const std::vector<uint8_t>& seed_mask,
                                           int num_classes, int layers,
                                           const LpPruneHint* prune) {
  TRAIL_TRACE_SPAN("gnn.label_propagation");
  TRAIL_METRIC_INC("gnn.lp_runs");
  TRAIL_METRIC_ADD("gnn.lp_iterations", layers);
  if (prune != nullptr) {
    TRAIL_CHECK(prune->seed_hops != nullptr &&
                prune->seed_hops->size() == csr.num_nodes());
  }
  // Per-layer frontier sizes cost an extra O(num_classes) row scan per node,
  // so they are collected only under detailed metrics (tools/examples).
  const bool detail = obs::DetailedMetricsEnabled();

  const size_t n = csr.num_nodes();
  TRAIL_CHECK(labels.size() == n && seed_mask.size() == n);
  TRAIL_CHECK(num_classes > 0 && layers >= 1);

  // Precompute 1/sqrt(degree).
  std::vector<float> inv_sqrt_deg(n, 0.0f);
  for (size_t v = 0; v < n; ++v) {
    size_t deg = csr.Degree(v);
    if (deg > 0) {
      inv_sqrt_deg[v] = 1.0f / std::sqrt(static_cast<float>(deg));
    }
  }

  ml::Matrix f(n, num_classes);
  for (size_t v = 0; v < n; ++v) {
    if (seed_mask[v] && labels[v] >= 0 && labels[v] < num_classes) {
      f.At(v, labels[v]) = 1.0f;
    }
  }

  LabelPropagationResult result;
  result.scores = ml::Matrix(n, num_classes);
  ml::Matrix next(n, num_classes);
  for (int layer = 0; layer < layers; ++layer) {
    next.Fill(0.0f);
    std::atomic<int64_t> frontier{0};
    std::atomic<int64_t> pruned{0};
    // After this layer, row v of `next` (= F_{layer+1}) can be nonzero only
    // when a seed lies within layer+1 hops of v: skip rows the reachability
    // hint proves are out of reach — they stay the Fill(0.0f) the dense
    // update would have written, so the result is bit-identical.
    const int t = layer + 1;
    ParallelFor(n, [&](size_t begin, size_t end) {
      int64_t chunk_frontier = 0;
      int64_t chunk_pruned = 0;
      for (size_t v = begin; v < end; ++v) {
        if (prune != nullptr) {
          const uint8_t h = (*prune->seed_hops)[v];
          if (h == LpPruneHint::kFar ? t <= prune->max_hops
                                     : static_cast<int>(h) > t) {
            ++chunk_pruned;
            continue;
          }
        }
        auto dst = next.Row(v);
        const float dv = inv_sqrt_deg[v];
        if (dv == 0.0f) continue;
        for (const graph::NodeId* it = csr.NeighborsBegin(v);
             it != csr.NeighborsEnd(v); ++it) {
          const float w = dv * inv_sqrt_deg[*it];
          auto src = f.Row(*it);
          for (int c = 0; c < num_classes; ++c) dst[c] += w * src[c];
        }
        if (detail) {
          for (int c = 0; c < num_classes; ++c) {
            if (dst[c] > 0.0f) {
              ++chunk_frontier;
              break;
            }
          }
        }
      }
      if (chunk_frontier > 0) {
        frontier.fetch_add(chunk_frontier, std::memory_order_relaxed);
      }
      if (chunk_pruned > 0) {
        pruned.fetch_add(chunk_pruned, std::memory_order_relaxed);
      }
    }, /*min_chunk=*/1024);
    if (prune != nullptr) {
      TRAIL_METRIC_ADD("gnn.lp_pruned_rows",
                       pruned.load(std::memory_order_relaxed));
    }
    if (detail) {
      TRAIL_METRIC_OBSERVE("gnn.lp_frontier_size",
                           frontier.load(std::memory_order_relaxed));
    }
    std::swap(f, next);
    result.scores.AddInPlace(f);
  }

  result.predictions.assign(n, -1);
  result.confidence.assign(n, 0.0);
  for (size_t v = 0; v < n; ++v) {
    auto row = result.scores.Row(v);
    double total = 0.0;
    float best = 0.0f;
    int best_class = -1;
    for (int c = 0; c < num_classes; ++c) {
      total += row[c];
      if (row[c] > best) {
        best = row[c];
        best_class = c;
      }
    }
    if (best_class < 0 || total <= 0.0) continue;
    result.predictions[v] = best_class;
    // Softmax over the (nonzero) score row, per the paper.
    double denom = 0.0;
    for (int c = 0; c < num_classes; ++c) {
      denom += std::exp(static_cast<double>(row[c]) - best);
    }
    result.confidence[v] = 1.0 / denom;
  }
  return result;
}

}  // namespace trail::gnn
