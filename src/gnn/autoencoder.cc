#include "gnn/autoencoder.h"

#include <algorithm>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace trail::gnn {

namespace ag = ml::ag;

ag::VarPtr Autoencoder::EncodeVar(const ag::VarPtr& x) const {
  // Encoder inputs are sparse vectorizer features (one-hot-ish), so the
  // first layer takes the zero-skipping GEMM; everything downstream is
  // dense and uses the fused bias+ReLU kernels.
  ag::VarPtr h = ag::AddRowRelu(ag::MatMulSparseA(x, enc_w1_), enc_b1_);
  return ag::AddRow(ag::MatMul(h, enc_w2_), enc_b2_);
}

ag::VarPtr Autoencoder::DecodeVar(const ag::VarPtr& z) const {
  ag::VarPtr h = ag::AddRowRelu(ag::MatMul(z, dec_w1_), dec_b1_);
  return ag::AddRow(ag::MatMul(h, dec_w2_), dec_b2_);
}

double Autoencoder::Fit(const ml::Matrix& x, const AutoencoderOptions& options) {
  TRAIL_TRACE_SPAN("gnn.autoencoder_fit");
  TRAIL_CHECK(x.rows() > 0) << "empty autoencoder input";
  options_ = options;
  Rng rng(options.seed);
  const size_t in_dim = x.cols();

  enc_w1_ = ag::Param(ml::Matrix::GlorotUniform(in_dim, options.hidden, &rng));
  enc_b1_ = ag::Param(ml::Matrix(1, options.hidden));
  enc_w2_ = ag::Param(
      ml::Matrix::GlorotUniform(options.hidden, options.encoding, &rng));
  enc_b2_ = ag::Param(ml::Matrix(1, options.encoding));
  dec_w1_ = ag::Param(
      ml::Matrix::GlorotUniform(options.encoding, options.hidden, &rng));
  dec_b1_ = ag::Param(ml::Matrix(1, options.hidden));
  dec_w2_ = ag::Param(ml::Matrix::GlorotUniform(options.hidden, in_dim, &rng));
  dec_b2_ = ag::Param(ml::Matrix(1, in_dim));

  ag::Adam opt({enc_w1_, enc_b1_, enc_w2_, enc_b2_, dec_w1_, dec_b1_, dec_w2_,
                dec_b2_},
               options.learning_rate);

  std::vector<size_t> rows(x.rows());
  std::iota(rows.begin(), rows.end(), 0);
  if (rows.size() > options.max_train_rows) {
    rng.Shuffle(&rows);
    rows.resize(options.max_train_rows);
  }

  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    TRAIL_TRACE_SPAN("gnn.autoencoder_epoch");
    rng.Shuffle(&rows);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < rows.size(); start += options.batch_size) {
      size_t end = std::min(rows.size(), start + options.batch_size);
      std::vector<size_t> batch(rows.begin() + start, rows.begin() + end);
      ml::Matrix bx = x.SelectRows(batch);
      opt.ZeroGrad();
      ag::VarPtr input = ag::Constant(bx);
      ag::VarPtr loss = ag::MseLoss(DecodeVar(EncodeVar(input)), bx);
      ag::Backward(loss);
      opt.Step();
      epoch_loss += loss->value.At(0, 0);
      ++batches;
    }
    last_epoch_loss = batches > 0 ? epoch_loss / batches : 0.0;
    TRAIL_METRIC_INC("gnn.autoencoder_epochs_trained");
    TRAIL_METRIC_OBSERVE("gnn.autoencoder_epoch_loss", last_epoch_loss);
  }
  fitted_ = true;
  return last_epoch_loss;
}

void Autoencoder::SaveState(BinaryWriter* w) const {
  TRAIL_CHECK(fitted_) << "save before fit";
  w->U64(options_.hidden);
  w->U64(options_.encoding);
  w->I32(options_.epochs);
  w->U64(options_.batch_size);
  w->F64(options_.learning_rate);
  w->U64(options_.seed);
  w->U64(options_.max_train_rows);
  for (const ml::ag::VarPtr& p : {enc_w1_, enc_b1_, enc_w2_, enc_b2_, dec_w1_,
                                  dec_b1_, dec_w2_, dec_b2_}) {
    ml::WriteMatrix(w, p->value);
  }
}

Status Autoencoder::LoadState(BinaryReader* r) {
  AutoencoderOptions options;
  options.hidden = r->U64();
  options.encoding = r->U64();
  options.epochs = r->I32();
  options.batch_size = r->U64();
  options.learning_rate = r->F64();
  options.seed = r->U64();
  options.max_train_rows = r->U64();
  std::vector<ml::Matrix> weights;
  for (int i = 0; i < 8; ++i) weights.push_back(ml::ReadMatrix(r));
  if (!r->ok()) return Status::ParseError("truncated autoencoder state");
  const size_t in_dim = weights[0].rows();
  const bool shapes_ok =
      in_dim > 0 &&
      weights[0].cols() == options.hidden &&                       // enc_w1
      weights[1].rows() == 1 && weights[1].cols() == options.hidden &&
      weights[2].rows() == options.hidden &&
      weights[2].cols() == options.encoding &&                     // enc_w2
      weights[3].rows() == 1 && weights[3].cols() == options.encoding &&
      weights[4].rows() == options.encoding &&
      weights[4].cols() == options.hidden &&                       // dec_w1
      weights[5].rows() == 1 && weights[5].cols() == options.hidden &&
      weights[6].rows() == options.hidden && weights[6].cols() == in_dim &&
      weights[7].rows() == 1 && weights[7].cols() == in_dim;
  if (!shapes_ok) {
    r->MarkFailed();
    return Status::ParseError("inconsistent autoencoder weight shapes");
  }
  options_ = options;
  enc_w1_ = ag::Param(std::move(weights[0]));
  enc_b1_ = ag::Param(std::move(weights[1]));
  enc_w2_ = ag::Param(std::move(weights[2]));
  enc_b2_ = ag::Param(std::move(weights[3]));
  dec_w1_ = ag::Param(std::move(weights[4]));
  dec_b1_ = ag::Param(std::move(weights[5]));
  dec_w2_ = ag::Param(std::move(weights[6]));
  dec_b2_ = ag::Param(std::move(weights[7]));
  fitted_ = true;
  return Status::Ok();
}

ml::Matrix Autoencoder::Encode(const ml::Matrix& x) const {
  TRAIL_CHECK(fitted_) << "encode before fit";
  return EncodeVar(ag::Constant(x))->value;
}

ml::Matrix Autoencoder::Reconstruct(const ml::Matrix& x) const {
  TRAIL_CHECK(fitted_) << "reconstruct before fit";
  return DecodeVar(EncodeVar(ag::Constant(x)))->value;
}

double Autoencoder::ReconstructionError(const ml::Matrix& x) const {
  ml::Matrix rec = Reconstruct(x);
  double total = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double d = static_cast<double>(x.data()[i]) - rec.data()[i];
    total += d * d;
  }
  return total / x.size();
}

}  // namespace trail::gnn
