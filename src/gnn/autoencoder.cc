#include "gnn/autoencoder.h"

#include <algorithm>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace trail::gnn {

namespace ag = ml::ag;

ag::VarPtr Autoencoder::EncodeVar(const ag::VarPtr& x) const {
  ag::VarPtr h = ag::Relu(ag::AddRow(ag::MatMul(x, enc_w1_), enc_b1_));
  return ag::AddRow(ag::MatMul(h, enc_w2_), enc_b2_);
}

ag::VarPtr Autoencoder::DecodeVar(const ag::VarPtr& z) const {
  ag::VarPtr h = ag::Relu(ag::AddRow(ag::MatMul(z, dec_w1_), dec_b1_));
  return ag::AddRow(ag::MatMul(h, dec_w2_), dec_b2_);
}

double Autoencoder::Fit(const ml::Matrix& x, const AutoencoderOptions& options) {
  TRAIL_TRACE_SPAN("gnn.autoencoder_fit");
  TRAIL_CHECK(x.rows() > 0) << "empty autoencoder input";
  options_ = options;
  Rng rng(options.seed);
  const size_t in_dim = x.cols();

  enc_w1_ = ag::Param(ml::Matrix::GlorotUniform(in_dim, options.hidden, &rng));
  enc_b1_ = ag::Param(ml::Matrix(1, options.hidden));
  enc_w2_ = ag::Param(
      ml::Matrix::GlorotUniform(options.hidden, options.encoding, &rng));
  enc_b2_ = ag::Param(ml::Matrix(1, options.encoding));
  dec_w1_ = ag::Param(
      ml::Matrix::GlorotUniform(options.encoding, options.hidden, &rng));
  dec_b1_ = ag::Param(ml::Matrix(1, options.hidden));
  dec_w2_ = ag::Param(ml::Matrix::GlorotUniform(options.hidden, in_dim, &rng));
  dec_b2_ = ag::Param(ml::Matrix(1, in_dim));

  ag::Adam opt({enc_w1_, enc_b1_, enc_w2_, enc_b2_, dec_w1_, dec_b1_, dec_w2_,
                dec_b2_},
               options.learning_rate);

  std::vector<size_t> rows(x.rows());
  std::iota(rows.begin(), rows.end(), 0);
  if (rows.size() > options.max_train_rows) {
    rng.Shuffle(&rows);
    rows.resize(options.max_train_rows);
  }

  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    TRAIL_TRACE_SPAN("gnn.autoencoder_epoch");
    rng.Shuffle(&rows);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < rows.size(); start += options.batch_size) {
      size_t end = std::min(rows.size(), start + options.batch_size);
      std::vector<size_t> batch(rows.begin() + start, rows.begin() + end);
      ml::Matrix bx = x.SelectRows(batch);
      opt.ZeroGrad();
      ag::VarPtr input = ag::Constant(bx);
      ag::VarPtr loss = ag::MseLoss(DecodeVar(EncodeVar(input)), bx);
      ag::Backward(loss);
      opt.Step();
      epoch_loss += loss->value.At(0, 0);
      ++batches;
    }
    last_epoch_loss = batches > 0 ? epoch_loss / batches : 0.0;
    TRAIL_METRIC_INC("gnn.autoencoder_epochs_trained");
    TRAIL_METRIC_OBSERVE("gnn.autoencoder_epoch_loss", last_epoch_loss);
  }
  fitted_ = true;
  return last_epoch_loss;
}

ml::Matrix Autoencoder::Encode(const ml::Matrix& x) const {
  TRAIL_CHECK(fitted_) << "encode before fit";
  return EncodeVar(ag::Constant(x))->value;
}

ml::Matrix Autoencoder::Reconstruct(const ml::Matrix& x) const {
  TRAIL_CHECK(fitted_) << "reconstruct before fit";
  return DecodeVar(EncodeVar(ag::Constant(x)))->value;
}

double Autoencoder::ReconstructionError(const ml::Matrix& x) const {
  ml::Matrix rec = Reconstruct(x);
  double total = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double d = static_cast<double>(x.data()[i]) - rec.data()[i];
    total += d * d;
  }
  return total / x.size();
}

}  // namespace trail::gnn
