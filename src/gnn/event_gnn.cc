#include "gnn/event_gnn.h"

#include <algorithm>
#include <cmath>

#include "graph/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace trail::gnn {

namespace ag = ml::ag;

namespace {

/// Symmetric-normalized label propagation over the aggregation spec
/// (identical math to gnn::RunLabelPropagation, but on a GnnGraph and with
/// L1-normalized accumulated mass so the output is a per-node attribution
/// prior in [0, 1]). `edge_weights` (nullable, one per directed spec entry)
/// gates each edge — the GNNExplainer's mask must silence this pathway too,
/// or label evidence would leak around occluded edges.
ml::Matrix PropagateVisibleLabels(const GnnGraph& g,
                                  const std::vector<int>& visible_labels,
                                  int num_classes, int layers,
                                  const ml::Matrix* edge_weights) {
  const size_t n = g.num_nodes;
  std::vector<float> inv_sqrt_deg(n, 0.0f);
  for (size_t v = 0; v < n; ++v) {
    const uint64_t deg = g.spec.offsets[v + 1] - g.spec.offsets[v];
    if (deg > 0) inv_sqrt_deg[v] = 1.0f / std::sqrt(static_cast<float>(deg));
  }
  ml::Matrix f(n, num_classes);
  for (size_t v = 0; v < n; ++v) {
    if (visible_labels[v] >= 0 && visible_labels[v] < num_classes) {
      f.At(v, visible_labels[v]) = 1.0f;
    }
  }
  ml::Matrix scores(n, num_classes);
  ml::Matrix next(n, num_classes);
  for (int layer = 0; layer < layers; ++layer) {
    next.Fill(0.0f);
    ParallelFor(n, [&](size_t begin, size_t end) {
      for (size_t v = begin; v < end; ++v) {
        auto dst = next.Row(v);
        const float dv = inv_sqrt_deg[v];
        if (dv == 0.0f) continue;
        for (uint64_t e = g.spec.offsets[v]; e < g.spec.offsets[v + 1]; ++e) {
          const uint32_t u = g.spec.sources[e];
          float w = dv * inv_sqrt_deg[u];
          if (edge_weights != nullptr) w *= edge_weights->At(e, 0);
          auto src = f.Row(u);
          for (int c = 0; c < num_classes; ++c) dst[c] += w * src[c];
        }
      }
    }, /*min_chunk=*/1024);
    std::swap(f, next);
    scores.AddInPlace(f);
  }
  // L1 row normalization.
  for (size_t v = 0; v < n; ++v) {
    auto row = scores.Row(v);
    double total = 0.0;
    for (float x : row) total += x;
    if (total > 1e-12) {
      const float inv = static_cast<float>(1.0 / total);
      for (float& x : row) x *= inv;
    }
  }
  return scores;
}

}  // namespace

void EventGnn::BuildParams(size_t enc_dim, Rng* rng) {
  type_embed_ = ag::Param(
      ml::Matrix::GlorotUniform(graph::kNumNodeTypes, enc_dim, rng));
  label_embed_ = ag::Param(
      ml::Matrix::GlorotUniform(num_classes_ + 1, enc_dim, rng));
  edge_type_logits_ = ag::Param(ml::Matrix(graph::kNumEdgeTypes, 1, 0.0f));
  lp_proj_ = ag::Param(
      ml::Matrix::GlorotUniform(num_classes_, enc_dim, rng));
  layers_.clear();
  size_t in_dim = enc_dim;
  for (int l = 0; l < options_.layers; ++l) {
    const bool last = l + 1 == options_.layers;
    size_t out_dim = last ? static_cast<size_t>(num_classes_)
                          : options_.hidden;
    SageLayer layer;
    layer.weight = ag::Param(ml::Matrix::GlorotUniform(in_dim, out_dim, rng));
    layer.bias = ag::Param(ml::Matrix(1, out_dim));
    if (!last) {
      layer.label_embed = ag::Param(
          ml::Matrix::GlorotUniform(num_classes_ + 1, out_dim, rng));
    }
    layers_.push_back(std::move(layer));
    in_dim = out_dim;
  }
}

std::vector<ag::VarPtr> EventGnn::Params() const {
  std::vector<ag::VarPtr> params = {type_embed_, label_embed_,
                                    edge_type_logits_, lp_proj_};
  for (const SageLayer& layer : layers_) {
    params.push_back(layer.weight);
    params.push_back(layer.bias);
    if (layer.label_embed != nullptr) params.push_back(layer.label_embed);
  }
  return params;
}

ag::VarPtr EventGnn::ForwardLogits(const GnnGraph& g,
                                   const std::vector<int>& visible_labels,
                                   const ag::VarPtr& edge_mask, bool training,
                                   Rng* rng) const {
  TRAIL_CHECK(g.node_type.size() == g.num_nodes);
  TRAIL_CHECK(visible_labels.size() == g.num_nodes);

  // Input: encoded IOC features + node-type embedding + label embedding.
  std::vector<int> label_index(g.num_nodes, num_classes_);  // unknown slot
  for (size_t v = 0; v < g.num_nodes; ++v) {
    if (g.node_type[v] == static_cast<int>(graph::NodeType::kEvent) &&
        visible_labels[v] >= 0 && visible_labels[v] < num_classes_) {
      label_index[v] = visible_labels[v];
    }
  }
  ag::VarPtr h = ag::Add(
      ag::Add(ag::Constant(g.encoded), ag::Gather(type_embed_, g.node_type)),
      ag::Gather(label_embed_, label_index));
  if (options_.label_propagation_features) {
    // The explainer's mask gates this pathway as well (values only — the
    // mask gradient flows through the aggregation layers).
    ml::Matrix lp = PropagateVisibleLabels(
        g, visible_labels, num_classes_, options_.layers,
        edge_mask != nullptr ? &edge_mask->value : nullptr);
    h = ag::Add(h, ag::MatMul(ag::Constant(lp), lp_proj_));
  }

  // Per-edge aggregation weights from the learned per-type logits; the
  // explainer's soft mask (if any) multiplies on top.
  TRAIL_CHECK(g.edge_type.size() == g.spec.sources.size())
      << "GnnGraph missing edge types";
  ag::VarPtr edge_weights = ag::Scale(
      ag::Sigmoid(ag::Gather(edge_type_logits_, g.edge_type)), 2.0f);
  if (edge_mask != nullptr) {
    edge_weights = ag::Mul(edge_weights, edge_mask);
  }

  for (size_t l = 0; l < layers_.size(); ++l) {
    ag::VarPtr agg = ag::MeanAggregate(g.spec, h, edge_weights);
    ag::VarPtr wx = ag::MatMul(agg, layers_[l].weight);
    if (l + 1 == layers_.size()) {
      h = ag::AddRow(wx, layers_[l].bias);  // output logits, no activation
    } else {
      h = ag::AddRowRelu(wx, layers_[l].bias);
      if (options_.l2_normalize) h = ag::RowL2Normalize(h);
      // Re-inject visible labels so supervision survives aggregation
      // dilution across hops.
      h = ag::Add(h, ag::Gather(layers_[l].label_embed, label_index));
      if (options_.dropout > 0.0) {
        h = ag::Dropout(h, options_.dropout, rng, training);
      }
    }
  }
  return h;
}

void EventGnn::TrainEpochs(const GnnGraph& g,
                           const std::vector<int>& train_labels,
                           ag::Adam* opt, int epochs, Rng* rng) {
  // Labeled training events.
  std::vector<uint32_t> labeled_events;
  for (uint32_t v : g.events) {
    if (train_labels[v] >= 0) labeled_events.push_back(v);
  }
  TRAIL_CHECK(!labeled_events.empty()) << "no labeled training events";

  // Two fixed complementary halves, alternated across epochs (paper
  // protocol: the model predicts some training events while seeing the
  // labels of the others; alternating fixed halves keeps the gradient
  // stable while still covering every event in both roles).
  std::vector<uint32_t> shuffled = labeled_events;
  rng->Shuffle(&shuffled);
  const size_t visible_count = static_cast<size_t>(
      options_.label_visible_fraction * shuffled.size());

  for (int epoch = 0; epoch < epochs; ++epoch) {
    TRAIL_TRACE_SPAN("gnn.train_epoch");
    const bool flip = epoch % 2 == 1;
    std::vector<int> visible(g.num_nodes, -1);
    std::vector<int> loss_labels(g.num_nodes, -1);
    for (size_t i = 0; i < shuffled.size(); ++i) {
      bool is_visible = (i < visible_count) != flip;
      if (is_visible) {
        visible[shuffled[i]] = train_labels[shuffled[i]];
      } else {
        loss_labels[shuffled[i]] = train_labels[shuffled[i]];
      }
    }

    opt->ZeroGrad();
    ag::VarPtr logits =
        ForwardLogits(g, visible, /*edge_mask=*/nullptr, /*training=*/true,
                      rng);
    ag::VarPtr loss = ag::SoftmaxCrossEntropy(logits, loss_labels);
    ag::Backward(loss);
    opt->Step();
    TRAIL_METRIC_INC("gnn.epochs_trained");
    TRAIL_METRIC_OBSERVE("gnn.epoch_loss", loss->value.At(0, 0));
    // Each epoch's forward mean-aggregates every directed spec entry once
    // per layer (the "neighbor sampling" volume of a full-graph SAGE pass).
    TRAIL_METRIC_ADD("gnn.neighbors_aggregated",
                     g.spec.sources.size() * layers_.size());
  }
}

void EventGnn::Train(const GnnGraph& g, const std::vector<int>& train_labels,
                     int num_classes, const EventGnnOptions& options) {
  TRAIL_TRACE_SPAN("gnn.train");
  TRAIL_METRIC_INC("gnn.trainings");
  TRAIL_CHECK(train_labels.size() == g.num_nodes);
  options_ = options;
  num_classes_ = num_classes;
  Rng rng(options.seed);
  BuildParams(g.encoded.cols(), &rng);
  ag::Adam opt(Params(), options.learning_rate);
  TrainEpochs(g, train_labels, &opt, options.epochs, &rng);
  trained_ = true;
}

void EventGnn::FineTune(const GnnGraph& g, const std::vector<int>& train_labels,
                        int epochs, double learning_rate_scale) {
  TRAIL_CHECK(trained_) << "fine-tune before train";
  Rng rng(options_.seed ^ 0xF1E7);
  ag::Adam opt(Params(), options_.learning_rate * learning_rate_scale);
  TrainEpochs(g, train_labels, &opt, epochs, &rng);
}

namespace {

constexpr uint32_t kGnnMagic = 0x474E4E31;  // "GNN1"
constexpr uint32_t kGnnVersion = 1;

}  // namespace

void EventGnn::SaveState(BinaryWriter* w) const {
  TRAIL_CHECK(trained_) << "save before train";
  w->I32(options_.layers);
  w->U64(options_.hidden);
  w->F64(options_.learning_rate);
  w->I32(options_.epochs);
  w->F64(options_.dropout);
  w->U32(options_.l2_normalize ? 1 : 0);
  w->U64(options_.seed);
  w->F64(options_.label_visible_fraction);
  w->U32(options_.label_propagation_features ? 1 : 0);
  w->I32(num_classes_);
  ml::WriteMatrix(w, type_embed_->value);
  ml::WriteMatrix(w, label_embed_->value);
  ml::WriteMatrix(w, edge_type_logits_->value);
  ml::WriteMatrix(w, lp_proj_->value);
  for (const SageLayer& layer : layers_) {
    ml::WriteMatrix(w, layer.weight->value);
    ml::WriteMatrix(w, layer.bias->value);
    if (layer.label_embed != nullptr) {
      ml::WriteMatrix(w, layer.label_embed->value);
    }
  }
}

Status EventGnn::LoadState(BinaryReader* r) {
  EventGnnOptions options;
  options.layers = r->I32();
  options.hidden = r->U64();
  options.learning_rate = r->F64();
  options.epochs = r->I32();
  options.dropout = r->F64();
  options.l2_normalize = r->U32() != 0;
  options.seed = r->U64();
  options.label_visible_fraction = r->F64();
  options.label_propagation_features = r->U32() != 0;
  const int num_classes = r->I32();
  if (!r->ok() || options.layers < 1 || options.layers > 64 ||
      num_classes < 1 || num_classes > 1 << 20) {
    r->MarkFailed();
    return Status::ParseError("corrupt GNN state header");
  }
  ml::Matrix type_embed = ml::ReadMatrix(r);
  ml::Matrix label_embed = ml::ReadMatrix(r);
  ml::Matrix edge_logits = ml::ReadMatrix(r);
  ml::Matrix lp_proj = ml::ReadMatrix(r);
  std::vector<SageLayer> layers;
  size_t in_dim = type_embed.cols();
  for (int l = 0; l < options.layers; ++l) {
    const bool last = l + 1 == options.layers;
    const size_t out_dim =
        last ? static_cast<size_t>(num_classes) : options.hidden;
    SageLayer layer;
    ml::Matrix weight = ml::ReadMatrix(r);
    ml::Matrix bias = ml::ReadMatrix(r);
    if (!r->ok() || weight.rows() != in_dim || weight.cols() != out_dim ||
        bias.rows() != 1 || bias.cols() != out_dim) {
      r->MarkFailed();
      return Status::ParseError("inconsistent GNN layer shapes");
    }
    layer.weight = ag::Param(std::move(weight));
    layer.bias = ag::Param(std::move(bias));
    if (!last) {
      ml::Matrix table = ml::ReadMatrix(r);
      if (!r->ok() || table.rows() != static_cast<size_t>(num_classes) + 1 ||
          table.cols() != out_dim) {
        r->MarkFailed();
        return Status::ParseError("inconsistent GNN label-embed shapes");
      }
      layer.label_embed = ag::Param(std::move(table));
    }
    layers.push_back(std::move(layer));
    in_dim = out_dim;
  }
  const size_t enc_dim = type_embed.cols();
  if (!r->ok() || type_embed.rows() != graph::kNumNodeTypes || enc_dim == 0 ||
      label_embed.rows() != static_cast<size_t>(num_classes) + 1 ||
      label_embed.cols() != enc_dim ||
      edge_logits.rows() != graph::kNumEdgeTypes || edge_logits.cols() != 1 ||
      lp_proj.rows() != static_cast<size_t>(num_classes) ||
      lp_proj.cols() != enc_dim) {
    r->MarkFailed();
    return Status::ParseError("inconsistent GNN embedding shapes");
  }
  options_ = options;
  num_classes_ = num_classes;
  type_embed_ = ag::Param(std::move(type_embed));
  label_embed_ = ag::Param(std::move(label_embed));
  edge_type_logits_ = ag::Param(std::move(edge_logits));
  lp_proj_ = ag::Param(std::move(lp_proj));
  layers_ = std::move(layers);
  trained_ = true;
  return Status::Ok();
}

Status EventGnn::SaveState(const std::string& path) const {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  BinaryWriter w(f.get());
  w.U32(kGnnMagic);
  w.U32(kGnnVersion);
  SaveState(&w);
  if (!w.ok()) return Status::IoError("short write: " + path);
  return Status::Ok();
}

Status EventGnn::LoadState(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  BinaryReader r(f.get());
  if (r.U32() != kGnnMagic) {
    return Status::ParseError("bad magic in " + path);
  }
  if (r.U32() != kGnnVersion) {
    return Status::ParseError("unsupported GNN state version in " + path);
  }
  TRAIL_RETURN_NOT_OK(LoadState(&r));
  if (!r.ok()) return Status::ParseError("truncated GNN state in " + path);
  return Status::Ok();
}

ml::Matrix EventGnn::PredictProba(const GnnGraph& g,
                                  const std::vector<int>& visible_labels) const {
  return ml::RowSoftmax(PredictLogits(g, visible_labels));
}

ml::Matrix EventGnn::PredictLogits(
    const GnnGraph& g, const std::vector<int>& visible_labels) const {
  TRAIL_TRACE_SPAN("gnn.predict");
  TRAIL_CHECK(trained_) << "predict before train";
  Rng rng(0);
  ag::VarPtr logits = ForwardLogits(g, visible_labels, /*edge_mask=*/nullptr,
                                    /*training=*/false, &rng);
  return logits->value;
}

std::vector<int> EventGnn::PredictEvents(
    const GnnGraph& g, const std::vector<int>& visible_labels) const {
  ml::Matrix probs = PredictProba(g, visible_labels);
  std::vector<int> out(g.num_nodes, -1);
  for (uint32_t v : g.events) {
    auto row = probs.Row(v);
    out[v] = static_cast<int>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return out;
}

}  // namespace trail::gnn
