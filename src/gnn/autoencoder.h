#ifndef TRAIL_GNN_AUTOENCODER_H_
#define TRAIL_GNN_AUTOENCODER_H_

#include "ml/autograd.h"
#include "ml/matrix.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace trail::gnn {

struct AutoencoderOptions {
  size_t hidden = 256;    // paper uses 512; scaled with the synthetic world
  size_t encoding = 64;   // paper's encoding dimension
  int epochs = 25;
  size_t batch_size = 256;
  double learning_rate = 1e-3;
  uint64_t seed = 11;
  /// Training subsample cap (reconstruction converges long before the full
  /// secondary-domain population is seen).
  size_t max_train_rows = 6000;
};

/// The per-IOC-type autoencoder of the paper's Section VI-C (Eq. 5): a
/// two-layer encoder f and decoder g trained on reconstruction, used to
/// project URL / IP / domain features into a shared low-dimensional space
/// before GraphSAGE.
class Autoencoder {
 public:
  /// Trains on the rows of `x`; returns the final epoch's mean
  /// reconstruction loss.
  double Fit(const ml::Matrix& x, const AutoencoderOptions& options);

  /// Encodes rows into the latent space. Requires Fit.
  ml::Matrix Encode(const ml::Matrix& x) const;

  /// Full round trip g(f(x)) — used by tests to check information retention.
  ml::Matrix Reconstruct(const ml::Matrix& x) const;

  /// Mean squared reconstruction error over rows of `x`.
  double ReconstructionError(const ml::Matrix& x) const;

  size_t encoding_dim() const { return options_.encoding; }
  bool fitted() const { return fitted_; }

  /// Writes the fitted model (options + all eight weight matrices) to the
  /// stream — one section of the versioned Trail checkpoint blob.
  void SaveState(BinaryWriter* w) const;

  /// Restores a model written by SaveState. Shape inconsistencies and
  /// truncation fail the reader; the model is only usable when the returned
  /// status is OK.
  Status LoadState(BinaryReader* r);

 private:
  ml::ag::VarPtr EncodeVar(const ml::ag::VarPtr& x) const;
  ml::ag::VarPtr DecodeVar(const ml::ag::VarPtr& z) const;

  ml::ag::VarPtr enc_w1_, enc_b1_, enc_w2_, enc_b2_;
  ml::ag::VarPtr dec_w1_, dec_b1_, dec_w2_, dec_b2_;
  AutoencoderOptions options_;
  bool fitted_ = false;
};

}  // namespace trail::gnn

#endif  // TRAIL_GNN_AUTOENCODER_H_
