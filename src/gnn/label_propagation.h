#ifndef TRAIL_GNN_LABEL_PROPAGATION_H_
#define TRAIL_GNN_LABEL_PROPAGATION_H_

#include <vector>

#include "graph/csr.h"
#include "ml/matrix.h"

namespace trail::gnn {

struct LabelPropagationResult {
  /// Accumulated label mass per node (num_nodes x num_classes), i.e. the
  /// sum of F_n over the propagation iterations of the paper's Eq. 1.
  ml::Matrix scores;
  /// Argmax per node; -1 where no label mass arrived (unattributable —
  /// the LP limitation the paper discusses).
  std::vector<int> predictions;
  /// Softmax confidence of the predicted class (0 where unattributed).
  std::vector<double> confidence;
};

/// Frontier-pruning hint for RunLabelPropagation, derived from the evidence
/// path plane's reachability index (path::PathEngine::LabeledSeedHops).
/// `seed_hops[v]` must be a *lower bound* on v's hop distance to the
/// nearest seed — kFar meaning "farther than max_hops" — for a superset of
/// the seed mask (a superset only lowers distances, which keeps the bound
/// admissible). After n propagation layers a node's score row is nonzero
/// only if a seed lies within n hops, so rows provably out of reach are
/// skipped outright; they stay exactly the 0.0f the dense update would
/// have produced, making the pruned run bit-identical to the unpruned one.
struct LpPruneHint {
  static constexpr uint8_t kFar = 0xFF;
  const std::vector<uint8_t>* seed_hops = nullptr;
  /// The cap seed_hops was computed under (distances above it read kFar).
  int max_hops = 0;
};

/// Label propagation over the symmetric-normalized adjacency (Zhou et al.,
/// the paper's Eq. 1): F_n = D^-1/2 A D^-1/2 F_{n-1}, seeded with one-hot
/// labels on `seed_mask` nodes, iterated `layers` times with mass
/// accumulated across iterations. Labels of nodes outside the seed mask are
/// ignored (they are what we predict). `prune`, when provided, must satisfy
/// the LpPruneHint contract; it changes no output bit, only the work done.
LabelPropagationResult RunLabelPropagation(const graph::CsrGraph& csr,
                                           const std::vector<int>& labels,
                                           const std::vector<uint8_t>& seed_mask,
                                           int num_classes, int layers,
                                           const LpPruneHint* prune = nullptr);

}  // namespace trail::gnn

#endif  // TRAIL_GNN_LABEL_PROPAGATION_H_
