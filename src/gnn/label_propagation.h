#ifndef TRAIL_GNN_LABEL_PROPAGATION_H_
#define TRAIL_GNN_LABEL_PROPAGATION_H_

#include <vector>

#include "graph/csr.h"
#include "ml/matrix.h"

namespace trail::gnn {

struct LabelPropagationResult {
  /// Accumulated label mass per node (num_nodes x num_classes), i.e. the
  /// sum of F_n over the propagation iterations of the paper's Eq. 1.
  ml::Matrix scores;
  /// Argmax per node; -1 where no label mass arrived (unattributable —
  /// the LP limitation the paper discusses).
  std::vector<int> predictions;
  /// Softmax confidence of the predicted class (0 where unattributed).
  std::vector<double> confidence;
};

/// Label propagation over the symmetric-normalized adjacency (Zhou et al.,
/// the paper's Eq. 1): F_n = D^-1/2 A D^-1/2 F_{n-1}, seeded with one-hot
/// labels on `seed_mask` nodes, iterated `layers` times with mass
/// accumulated across iterations. Labels of nodes outside the seed mask are
/// ignored (they are what we predict).
LabelPropagationResult RunLabelPropagation(const graph::CsrGraph& csr,
                                           const std::vector<int>& labels,
                                           const std::vector<uint8_t>& seed_mask,
                                           int num_classes, int layers);

}  // namespace trail::gnn

#endif  // TRAIL_GNN_LABEL_PROPAGATION_H_
