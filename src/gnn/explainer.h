#ifndef TRAIL_GNN_EXPLAINER_H_
#define TRAIL_GNN_EXPLAINER_H_

#include <cstdint>
#include <vector>

#include "gnn/event_gnn.h"

namespace trail::gnn {

struct ExplainOptions {
  int steps = 150;
  double learning_rate = 0.1;
  /// Weight of the sparsity penalty on the mask (GNNExplainer's size
  /// regularizer).
  double sparsity = 0.05;
  uint64_t seed = 23;
};

/// One scored aggregation edge of the explained subgraph (local node ids of
/// the GnnGraph that was explained).
struct EdgeImportance {
  uint32_t src = 0;
  uint32_t dst = 0;
  double weight = 0.0;  // learned mask value in (0, 1)
};

struct Explanation {
  /// All undirected edges with their learned importance, descending.
  std::vector<EdgeImportance> edges;
  /// Model probability of the target class with the final mask applied.
  double masked_probability = 0.0;
  /// Probability with the full (unmasked) subgraph.
  double full_probability = 0.0;
};

/// GNNExplainer (Ying et al., 2019) over TRAIL's EventGnn: learns a soft
/// mask over the aggregation edges of `g` that maximizes the model's
/// probability of `target_class` for the event at local id `event_node`,
/// under a sparsity penalty. Gradients flow through the weighted
/// MeanAggregate op of the autograd engine. This reproduces the paper's
/// Fig. 10 analysis.
Explanation ExplainEvent(const EventGnn& model, const GnnGraph& g,
                         uint32_t event_node, int target_class,
                         const std::vector<int>& visible_labels,
                         const ExplainOptions& options);

/// Occlusion baseline: for each undirected edge incident to `event_node`,
/// the drop in P(target_class) when that edge alone is masked out. Slower
/// per edge but optimization-free — used to sanity-check the learned mask.
/// `weight` here is the probability drop (can be negative for edges whose
/// removal helps).
std::vector<EdgeImportance> OcclusionExplain(
    const EventGnn& model, const GnnGraph& g, uint32_t event_node,
    int target_class, const std::vector<int>& visible_labels);

}  // namespace trail::gnn

#endif  // TRAIL_GNN_EXPLAINER_H_
