#ifndef TRAIL_GNN_EVENT_GNN_H_
#define TRAIL_GNN_EVENT_GNN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/autograd.h"
#include "ml/matrix.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace trail::gnn {

/// The compiled model view of a (sub)graph: per-node type indices, the
/// pre-encoded IOC features (autoencoder outputs; zero rows for events and
/// ASNs), and the neighbor-aggregation structure. Node ids are local to this
/// view; `events` lists the rows that are event nodes.
struct GnnGraph {
  size_t num_nodes = 0;
  std::vector<int> node_type;      // graph::NodeType as int, per node
  ml::Matrix encoded;              // num_nodes x encoding_dim
  ml::ag::AggregateSpec spec;      // undirected neighbor structure
  std::vector<int> edge_type;      // EdgeType as int, per spec entry
  std::vector<uint32_t> events;    // local ids of event nodes
};

struct EventGnnOptions {
  /// Number of SAGE aggregation layers = receptive-field hops (the paper's
  /// GNN 2L/3L/4L).
  int layers = 3;
  size_t hidden = 64;
  double learning_rate = 1e-2;
  int epochs = 120;
  double dropout = 0.15;
  bool l2_normalize = true;  // Eq. 4; ablatable
  uint64_t seed = 17;
  /// During training, each epoch this fraction of the labeled training
  /// events expose their label as an input feature while the rest carry the
  /// loss (the paper's train/validation label-visibility protocol; it also
  /// prevents self-label leakage through 2-hop cycles).
  double label_visible_fraction = 0.5;
  /// Feed the propagated label mass of the visible labels (same depth as
  /// `layers`) as projected input features. This is the standard label-trick
  /// companion to the visibility protocol: the network starts from the
  /// topology-only attribution signal and learns feature-based corrections,
  /// rather than having to rediscover propagation through mean-aggregation
  /// dilution. Ablatable.
  bool label_propagation_features = true;
};

/// GraphSAGE event classifier (paper Section VI-C): mean neighbor
/// aggregation (Eq. 3) + L2 normalization (Eq. 4), on autoencoder-projected
/// IOC features plus learned node-type and label embeddings. Event nodes
/// with visible labels inject them as features, which is how "knowledge of
/// the labels in the validation set" flows through the graph.
class EventGnn {
 public:
  /// Trains from scratch. `train_labels[v]` is the class of training event v
  /// or -1 (non-events and held-out events must be -1).
  void Train(const GnnGraph& g, const std::vector<int>& train_labels,
             int num_classes, const EventGnnOptions& options);

  /// Continues training (monthly fine-tune of the longitudinal study) for
  /// `epochs` epochs at `learning_rate_scale` * the original rate.
  void FineTune(const GnnGraph& g, const std::vector<int>& train_labels,
                int epochs, double learning_rate_scale = 0.5);

  /// Softmax class probabilities for every node row (meaningful for event
  /// rows). `visible_labels[v]` >= 0 exposes that label as input.
  ml::Matrix PredictProba(const GnnGraph& g,
                          const std::vector<int>& visible_labels) const;

  /// Raw (pre-softmax) class logits for every node row — PredictProba is
  /// exactly RowSoftmax of this. The abstention head needs the logits for
  /// the energy score, which softmax normalization destroys.
  ml::Matrix PredictLogits(const GnnGraph& g,
                           const std::vector<int>& visible_labels) const;

  /// Argmax prediction restricted to event rows; others get -1.
  std::vector<int> PredictEvents(const GnnGraph& g,
                                 const std::vector<int>& visible_labels) const;

  /// Differentiable forward pass. `edge_mask` (nullable) weights each
  /// directed aggregation entry — the GNNExplainer hook.
  ml::ag::VarPtr ForwardLogits(const GnnGraph& g,
                               const std::vector<int>& visible_labels,
                               const ml::ag::VarPtr& edge_mask, bool training,
                               Rng* rng) const;

  int num_classes() const { return num_classes_; }
  bool trained() const { return trained_; }
  const EventGnnOptions& options() const { return options_; }

  /// Writes the trained model to `path` as a versioned binary blob (magic
  /// "GNN1"): options, class count, and every parameter matrix. The monthly
  /// warm-start path loads this instead of retraining from scratch.
  Status SaveState(const std::string& path) const;

  /// Restores a model written by SaveState. A wrong magic, unsupported
  /// version, truncated payload, or inconsistent shape fails cleanly; the
  /// model is trained() only after an OK load.
  Status LoadState(const std::string& path);

  /// Stream variants, for embedding the GNN section inside the combined
  /// Trail checkpoint (which also carries the per-IOC-type autoencoders).
  void SaveState(BinaryWriter* w) const;
  Status LoadState(BinaryReader* r);

 private:
  void BuildParams(size_t enc_dim, Rng* rng);
  std::vector<ml::ag::VarPtr> Params() const;
  void TrainEpochs(const GnnGraph& g, const std::vector<int>& train_labels,
                   ml::ag::Adam* opt, int epochs, Rng* rng);

  struct SageLayer {
    ml::ag::VarPtr weight;
    ml::ag::VarPtr bias;
    /// Per-layer label table ((num_classes + 1) x out_dim): visible event
    /// labels are re-injected after every hidden layer so the supervision
    /// signal survives mean-aggregation dilution over high-degree
    /// neighborhoods (the label-reuse trick of modern SAGE pipelines).
    ml::ag::VarPtr label_embed;
  };

  ml::ag::VarPtr type_embed_;   // kNumNodeTypes x enc_dim
  ml::ag::VarPtr label_embed_;  // (num_classes + 1) x enc_dim; last = unknown
  /// Learned per-edge-type aggregation weights (kNumEdgeTypes x 1 logits,
  /// mapped through 2*sigmoid): lets the model mute high-volume enrichment
  /// relations (A records to parked domains) relative to InReport edges
  /// instead of letting them dominate the neighbor mean.
  ml::ag::VarPtr edge_type_logits_;
  /// Projects the N x num_classes propagated-label-mass matrix into the
  /// input space (used when label_propagation_features is on).
  ml::ag::VarPtr lp_proj_;
  std::vector<SageLayer> layers_;
  EventGnnOptions options_;
  int num_classes_ = 0;
  bool trained_ = false;
};

}  // namespace trail::gnn

#endif  // TRAIL_GNN_EVENT_GNN_H_
