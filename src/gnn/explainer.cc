#include "gnn/explainer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"

namespace trail::gnn {

namespace ag = ml::ag;

Explanation ExplainEvent(const EventGnn& model, const GnnGraph& g,
                         uint32_t event_node, int target_class,
                         const std::vector<int>& visible_labels,
                         const ExplainOptions& options) {
  TRAIL_CHECK(model.trained());
  TRAIL_CHECK(event_node < g.num_nodes);
  const size_t num_entries = g.spec.sources.size();
  Rng rng(options.seed);

  // CE target: only the explained event carries loss.
  std::vector<int> loss_labels(g.num_nodes, -1);
  loss_labels[event_node] = target_class;

  // Baseline probability with the full subgraph.
  ml::Matrix full_probs = model.PredictProba(g, visible_labels);
  Explanation explanation;
  explanation.full_probability = full_probs.At(event_node, target_class);

  // Mask logits start at ~1 (sigmoid(1) ≈ 0.73): near-full graph.
  ag::VarPtr theta = ag::Param(ml::Matrix(num_entries, 1, 1.0f));
  ag::Adam opt({theta}, options.learning_rate);

  ml::Matrix probs;
  for (int step = 0; step < options.steps; ++step) {
    opt.ZeroGrad();
    ag::VarPtr mask = ag::Sigmoid(theta);
    ag::VarPtr logits = model.ForwardLogits(g, visible_labels, mask,
                                            /*training=*/false, &rng);
    ag::VarPtr ce = ag::SoftmaxCrossEntropy(logits, loss_labels, nullptr,
                                            step + 1 == options.steps
                                                ? &probs
                                                : nullptr);
    ag::VarPtr loss = ag::Add(
        ce, ag::Scale(ag::Mean(mask), static_cast<float>(options.sparsity)));
    ag::Backward(loss);
    opt.Step();
  }

  // Collapse directed entries to undirected edges (max of the two
  // directions), and record the masked-probability of the target.
  ml::Matrix final_mask(num_entries, 1);
  for (size_t e = 0; e < num_entries; ++e) {
    final_mask.At(e, 0) =
        1.0f / (1.0f + std::exp(-theta->value.At(e, 0)));
  }
  explanation.masked_probability =
      probs.rows() > event_node ? probs.At(event_node, target_class) : 0.0;

  std::unordered_map<uint64_t, EdgeImportance> best;
  for (size_t v = 0; v + 1 < g.spec.offsets.size(); ++v) {
    for (uint64_t e = g.spec.offsets[v]; e < g.spec.offsets[v + 1]; ++e) {
      uint32_t src = g.spec.sources[e];
      uint32_t dst = static_cast<uint32_t>(v);
      uint32_t lo = std::min(src, dst);
      uint32_t hi = std::max(src, dst);
      uint64_t key = (static_cast<uint64_t>(lo) << 32) | hi;
      double w = final_mask.At(e, 0);
      auto it = best.find(key);
      if (it == best.end()) {
        best.emplace(key, EdgeImportance{lo, hi, w});
      } else if (w > it->second.weight) {
        it->second.weight = w;
      }
    }
  }
  explanation.edges.reserve(best.size());
  for (const auto& [key, edge] : best) explanation.edges.push_back(edge);
  std::sort(explanation.edges.begin(), explanation.edges.end(),
            [](const EdgeImportance& a, const EdgeImportance& b) {
              return a.weight > b.weight;
            });
  return explanation;
}

std::vector<EdgeImportance> OcclusionExplain(
    const EventGnn& model, const GnnGraph& g, uint32_t event_node,
    int target_class, const std::vector<int>& visible_labels) {
  TRAIL_CHECK(model.trained());
  TRAIL_CHECK(event_node < g.num_nodes);
  Rng rng(0);

  auto probability_with_mask = [&](const ml::Matrix& mask) {
    ag::VarPtr logits = model.ForwardLogits(
        g, visible_labels, ag::Constant(mask), /*training=*/false, &rng);
    ml::Matrix probs = ml::RowSoftmax(logits->value);
    return static_cast<double>(probs.At(event_node, target_class));
  };

  const size_t num_entries = g.spec.sources.size();
  ml::Matrix full(num_entries, 1, 1.0f);
  const double baseline = probability_with_mask(full);

  // Directed entry indices of each undirected edge incident to the event.
  std::unordered_map<uint64_t, std::vector<size_t>> entries_of_edge;
  auto key_of = [](uint32_t a, uint32_t b) {
    uint32_t lo = std::min(a, b);
    uint32_t hi = std::max(a, b);
    return (static_cast<uint64_t>(lo) << 32) | hi;
  };
  for (size_t v = 0; v + 1 < g.spec.offsets.size(); ++v) {
    for (uint64_t e = g.spec.offsets[v]; e < g.spec.offsets[v + 1]; ++e) {
      uint32_t u = g.spec.sources[e];
      if (v != event_node && u != event_node) continue;
      entries_of_edge[key_of(static_cast<uint32_t>(v), u)].push_back(e);
    }
  }

  std::vector<EdgeImportance> importances;
  importances.reserve(entries_of_edge.size());
  for (const auto& [key, entries] : entries_of_edge) {
    ml::Matrix mask = full;
    for (size_t e : entries) mask.At(e, 0) = 0.0f;
    EdgeImportance importance;
    importance.src = static_cast<uint32_t>(key >> 32);
    importance.dst = static_cast<uint32_t>(key & 0xFFFFFFFFu);
    importance.weight = baseline - probability_with_mask(mask);
    importances.push_back(importance);
  }
  std::sort(importances.begin(), importances.end(),
            [](const EdgeImportance& a, const EdgeImportance& b) {
              return a.weight > b.weight;
            });
  return importances;
}

}  // namespace trail::gnn
