#include "graph/serialization.h"

#include <cstdio>
#include <memory>
#include <vector>

namespace trail::graph {

namespace {

constexpr uint32_t kMagic = 0x544B4731;  // "TKG1"
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

class Writer {
 public:
  explicit Writer(std::FILE* f) : f_(f) {}

  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Floats(const std::vector<float>& v) {
    U32(static_cast<uint32_t>(v.size()));
    Raw(v.data(), v.size() * sizeof(float));
  }
  bool ok() const { return ok_; }

 private:
  void Raw(const void* data, size_t size) {
    if (!ok_) return;
    if (size > 0 && std::fwrite(data, 1, size, f_) != size) ok_ = false;
  }
  std::FILE* f_;
  bool ok_ = true;
};

class Reader {
 public:
  explicit Reader(std::FILE* f) : f_(f) {}

  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  double F64() {
    double v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  std::string Str() {
    uint32_t len = U32();
    if (!ok_ || len > (1u << 24)) {
      ok_ = false;
      return {};
    }
    std::string s(len, '\0');
    Raw(s.data(), len);
    return s;
  }
  std::vector<float> Floats() {
    uint32_t len = U32();
    if (!ok_ || len > (1u << 24)) {
      ok_ = false;
      return {};
    }
    std::vector<float> v(len);
    Raw(v.data(), len * sizeof(float));
    return v;
  }
  bool ok() const { return ok_; }

 private:
  void Raw(void* data, size_t size) {
    if (!ok_) return;
    if (size > 0 && std::fread(data, 1, size, f_) != size) ok_ = false;
  }
  std::FILE* f_;
  bool ok_ = true;
};

}  // namespace

Status SaveGraph(const PropertyGraph& graph, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  Writer w(f.get());
  w.U32(kMagic);
  w.U32(kVersion);
  w.U64(graph.num_nodes());
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    w.U32(static_cast<uint32_t>(graph.type(id)));
    w.Str(graph.value(id));
    w.U32(static_cast<uint32_t>(graph.label(id)));
    w.U32(graph.first_order(id) ? 1 : 0);
    w.U32(static_cast<uint32_t>(graph.report_count(id)));
    w.F64(graph.timestamp(id));
    w.Floats(graph.features(id));
  }
  w.U64(graph.num_edges());
  for (const Edge& e : graph.edges()) {
    w.U32(e.src);
    w.U32(e.dst);
    w.U32(static_cast<uint32_t>(e.type));
  }
  if (!w.ok()) return Status::IoError("short write: " + path);
  return Status::Ok();
}

Result<PropertyGraph> LoadGraph(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  Reader r(f.get());
  if (r.U32() != kMagic) return Status::ParseError("bad magic in " + path);
  if (r.U32() != kVersion) {
    return Status::ParseError("unsupported version in " + path);
  }
  PropertyGraph graph;
  uint64_t num_nodes = r.U64();
  if (!r.ok() || num_nodes > (1ull << 32)) {
    return Status::ParseError("corrupt node count in " + path);
  }
  for (uint64_t i = 0; i < num_nodes; ++i) {
    uint32_t type = r.U32();
    std::string value = r.Str();
    uint32_t label = r.U32();
    uint32_t first_order = r.U32();
    uint32_t report_count = r.U32();
    double ts = r.F64();
    std::vector<float> features = r.Floats();
    if (!r.ok()) return Status::ParseError("truncated node data in " + path);
    if (type >= kNumNodeTypes) {
      return Status::ParseError("invalid node type in " + path);
    }
    NodeId id = graph.AddNode(static_cast<NodeType>(type), value);
    if (id != i) {
      return Status::ParseError("duplicate node key in " + path);
    }
    graph.SetLabel(id, static_cast<int>(label));
    graph.SetFirstOrder(id, first_order != 0);
    for (uint32_t c = 0; c < report_count; ++c) graph.IncrementReportCount(id);
    graph.SetTimestamp(id, ts);
    graph.SetFeatures(id, std::move(features));
  }
  uint64_t num_edges = r.U64();
  if (!r.ok()) return Status::ParseError("truncated edge count in " + path);
  for (uint64_t i = 0; i < num_edges; ++i) {
    uint32_t src = r.U32();
    uint32_t dst = r.U32();
    uint32_t type = r.U32();
    if (!r.ok()) return Status::ParseError("truncated edge data in " + path);
    if (src >= num_nodes || dst >= num_nodes || type >= kNumEdgeTypes) {
      return Status::ParseError("invalid edge in " + path);
    }
    graph.AddEdge(src, dst, static_cast<EdgeType>(type));
  }
  TRAIL_RETURN_NOT_OK(graph.CheckConsistency());
  return graph;
}

}  // namespace trail::graph
