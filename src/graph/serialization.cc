#include "graph/serialization.h"

#include <cstdio>
#include <vector>

#include "util/binary_io.h"

namespace trail::graph {

namespace {

constexpr uint32_t kMagic = 0x544B4731;  // "TKG1"
constexpr uint32_t kVersion = 1;

using Writer = BinaryWriter;
using Reader = BinaryReader;

}  // namespace

Status SaveGraph(const PropertyGraph& graph, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  Writer w(f.get());
  w.U32(kMagic);
  w.U32(kVersion);
  w.U64(graph.num_nodes());
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    w.U32(static_cast<uint32_t>(graph.type(id)));
    w.Str(graph.value(id));
    w.U32(static_cast<uint32_t>(graph.label(id)));
    w.U32(graph.first_order(id) ? 1 : 0);
    w.U32(static_cast<uint32_t>(graph.report_count(id)));
    w.F64(graph.timestamp(id));
    w.Floats(graph.features(id));
  }
  w.U64(graph.num_edges());
  for (const Edge& e : graph.edges()) {
    w.U32(e.src);
    w.U32(e.dst);
    w.U32(static_cast<uint32_t>(e.type));
  }
  if (!w.ok()) return Status::IoError("short write: " + path);
  return Status::Ok();
}

Result<PropertyGraph> LoadGraph(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  Reader r(f.get());
  if (r.U32() != kMagic) return Status::ParseError("bad magic in " + path);
  if (r.U32() != kVersion) {
    return Status::ParseError("unsupported version in " + path);
  }
  PropertyGraph graph;
  uint64_t num_nodes = r.U64();
  if (!r.ok() || num_nodes > (1ull << 32)) {
    return Status::ParseError("corrupt node count in " + path);
  }
  for (uint64_t i = 0; i < num_nodes; ++i) {
    uint32_t type = r.U32();
    std::string value = r.Str();
    uint32_t label = r.U32();
    uint32_t first_order = r.U32();
    uint32_t report_count = r.U32();
    double ts = r.F64();
    std::vector<float> features = r.Floats();
    if (!r.ok()) return Status::ParseError("truncated node data in " + path);
    if (type >= kNumNodeTypes) {
      return Status::ParseError("invalid node type in " + path);
    }
    NodeId id = graph.AddNode(static_cast<NodeType>(type), value);
    if (id != i) {
      return Status::ParseError("duplicate node key in " + path);
    }
    graph.SetLabel(id, static_cast<int>(label));
    graph.SetFirstOrder(id, first_order != 0);
    for (uint32_t c = 0; c < report_count; ++c) graph.IncrementReportCount(id);
    graph.SetTimestamp(id, ts);
    graph.SetFeatures(id, std::move(features));
  }
  uint64_t num_edges = r.U64();
  if (!r.ok()) return Status::ParseError("truncated edge count in " + path);
  for (uint64_t i = 0; i < num_edges; ++i) {
    uint32_t src = r.U32();
    uint32_t dst = r.U32();
    uint32_t type = r.U32();
    if (!r.ok()) return Status::ParseError("truncated edge data in " + path);
    if (src >= num_nodes || dst >= num_nodes || type >= kNumEdgeTypes) {
      return Status::ParseError("invalid edge in " + path);
    }
    graph.AddEdge(src, dst, static_cast<EdgeType>(type));
  }
  TRAIL_RETURN_NOT_OK(graph.CheckConsistency());
  return graph;
}

}  // namespace trail::graph
