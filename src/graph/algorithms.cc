#include "graph/algorithms.h"

#include <algorithm>
#include <deque>

#include "util/logging.h"

namespace trail::graph {

std::vector<int> BfsDistances(const CsrGraph& csr, NodeId source,
                              int max_depth) {
  const size_t n = csr.num_nodes();
  std::vector<int> dist(n, kUnreachable);
  if (source >= n || !csr.IsKept(source)) return dist;
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    NodeId v = queue.front();
    queue.pop_front();
    if (max_depth >= 0 && dist[v] >= max_depth) continue;
    for (const NodeId* it = csr.NeighborsBegin(v); it != csr.NeighborsEnd(v);
         ++it) {
      if (dist[*it] == kUnreachable) {
        dist[*it] = dist[v] + 1;
        queue.push_back(*it);
      }
    }
  }
  return dist;
}

ComponentResult ConnectedComponents(const CsrGraph& csr) {
  const size_t n = csr.num_nodes();
  ComponentResult result;
  result.component.assign(n, kUnreachable);
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (!csr.IsKept(start) || result.component[start] != kUnreachable) {
      continue;
    }
    int comp = static_cast<int>(result.num_components++);
    size_t size = 0;
    stack.push_back(start);
    result.component[start] = comp;
    while (!stack.empty()) {
      NodeId v = stack.back();
      stack.pop_back();
      ++size;
      for (const NodeId* it = csr.NeighborsBegin(v); it != csr.NeighborsEnd(v);
           ++it) {
        if (result.component[*it] == kUnreachable) {
          result.component[*it] = comp;
          stack.push_back(*it);
        }
      }
    }
    result.sizes.push_back(size);
  }
  if (!result.sizes.empty()) {
    result.largest_component = static_cast<int>(std::distance(
        result.sizes.begin(),
        std::max_element(result.sizes.begin(), result.sizes.end())));
  }
  return result;
}

namespace {

/// BFS returning (farthest node, its distance) within the component.
std::pair<NodeId, int> FarthestNode(const CsrGraph& csr, NodeId source) {
  std::vector<int> dist = BfsDistances(csr, source);
  NodeId best = source;
  int best_dist = 0;
  for (NodeId v = 0; v < dist.size(); ++v) {
    if (dist[v] > best_dist) {
      best_dist = dist[v];
      best = v;
    }
  }
  return {best, best_dist};
}

}  // namespace

int ExactDiameter(const CsrGraph& csr, NodeId seed) {
  std::vector<int> seed_dist = BfsDistances(csr, seed);
  int diameter = 0;
  for (NodeId v = 0; v < seed_dist.size(); ++v) {
    if (seed_dist[v] == kUnreachable) continue;
    auto [_, ecc] = FarthestNode(csr, v);
    diameter = std::max(diameter, ecc);
  }
  return diameter;
}

int DoubleSweepDiameter(const CsrGraph& csr, NodeId seed, int sweeps) {
  if (seed >= csr.num_nodes() || !csr.IsKept(seed)) return 0;
  NodeId frontier = seed;
  int best = 0;
  for (int i = 0; i < sweeps; ++i) {
    auto [far_node, dist] = FarthestNode(csr, frontier);
    if (dist <= best && i > 0) break;
    best = std::max(best, dist);
    frontier = far_node;
  }
  return best;
}

std::vector<NodeId> KHopNeighborhood(const CsrGraph& csr, NodeId center,
                                     int hops) {
  return KHopNeighborhood(csr, std::vector<NodeId>{center}, hops);
}

std::vector<NodeId> KHopNeighborhood(const CsrGraph& csr,
                                     const std::vector<NodeId>& centers,
                                     int hops) {
  TraversalScratch scratch;
  KHopNeighborhood(csr, centers, hops, &scratch);
  return std::move(scratch.order);
}

const std::vector<NodeId>& KHopNeighborhood(const CsrGraph& csr,
                                            const std::vector<NodeId>& centers,
                                            int hops,
                                            TraversalScratch* scratch) {
  const size_t n = csr.num_nodes();
  std::vector<int>& dist = scratch->dist;
  std::vector<NodeId>& order = scratch->order;
  std::vector<NodeId>& queue = scratch->queue;
  if (dist.size() != n) {
    dist.assign(n, kUnreachable);
  } else {
    for (NodeId v : order) dist[v] = kUnreachable;
  }
  order.clear();
  queue.clear();
  for (NodeId c : centers) {
    if (c < n && csr.IsKept(c) && dist[c] == kUnreachable) {
      dist[c] = 0;
      queue.push_back(c);
      order.push_back(c);
    }
  }
  for (size_t head = 0; head < queue.size(); ++head) {
    NodeId v = queue[head];
    if (dist[v] >= hops) continue;
    for (const NodeId* it = csr.NeighborsBegin(v); it != csr.NeighborsEnd(v);
         ++it) {
      if (dist[*it] == kUnreachable) {
        dist[*it] = dist[v] + 1;
        queue.push_back(*it);
        order.push_back(*it);
      }
    }
  }
  return order;
}

EgoNet ExtractEgoNet(const CsrGraph& csr, NodeId center, int hops) {
  TraversalScratch scratch;
  return ExtractEgoNet(csr, center, hops, &scratch);
}

EgoNet ExtractEgoNet(const CsrGraph& csr, NodeId center, int hops,
                     TraversalScratch* scratch) {
  EgoNet ego;
  ego.nodes =
      KHopNeighborhood(csr, std::vector<NodeId>{center}, hops, scratch);
  std::vector<uint32_t>& local = scratch->local;
  if (local.size() != csr.num_nodes()) {
    local.assign(csr.num_nodes(), static_cast<uint32_t>(-1));
  }
  for (uint32_t i = 0; i < ego.nodes.size(); ++i) {
    local[ego.nodes[i]] = i;
    // scratch->dist holds this traversal's hop distances, identical to
    // BfsDistances(csr, center, hops) on the visited set.
    ego.hop.push_back(scratch->dist[ego.nodes[i]]);
  }
  for (NodeId v : ego.nodes) {
    size_t idx = 0;
    for (const NodeId* it = csr.NeighborsBegin(v); it != csr.NeighborsEnd(v);
         ++it, ++idx) {
      if (*it > v) continue;  // each undirected pair once
      if (local[*it] == static_cast<uint32_t>(-1)) continue;
      ego.edges.emplace_back(local[v], local[*it]);
      ego.edge_types.push_back(csr.NeighborEdgeType(v, idx));
    }
  }
  // Restore the all--1 remap invariant for the next ExtractEgoNet on this
  // scratch.
  for (NodeId v : ego.nodes) local[v] = static_cast<uint32_t>(-1);
  return ego;
}

}  // namespace trail::graph
