#ifndef TRAIL_GRAPH_TYPES_H_
#define TRAIL_GRAPH_TYPES_H_

#include <cstdint>
#include <string>

namespace trail::graph {

/// Node identifier within one PropertyGraph. Dense, starting at 0.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Label value for unattributed nodes.
inline constexpr int kNoLabel = -1;

/// The five node kinds of the TKG schema (paper Fig. 2).
enum class NodeType : uint8_t {
  kEvent = 0,
  kIp = 1,
  kDomain = 2,
  kUrl = 3,
  kAsn = 4,
};
inline constexpr int kNumNodeTypes = 5;

/// The edge kinds of the TKG schema (paper Table I).
enum class EdgeType : uint8_t {
  kInReport = 0,    // Event -> {IP, Domain, URL}
  kARecord = 1,     // IP -> Domain (passive DNS historic resolution)
  kInGroup = 2,     // IP -> ASN
  kResolvesTo = 3,  // {URL, Domain} -> IP
  kHostedOn = 4,    // URL -> Domain
};
inline constexpr int kNumEdgeTypes = 5;

const char* NodeTypeName(NodeType type);
const char* EdgeTypeName(EdgeType type);

/// A directed typed edge.
struct Edge {
  NodeId src;
  NodeId dst;
  EdgeType type;

  bool operator==(const Edge& other) const {
    return src == other.src && dst == other.dst && type == other.type;
  }
};

/// Undirected neighbor reference stored in adjacency lists.
struct Neighbor {
  NodeId node;
  EdgeType type;
  bool is_outgoing;  // true when this node is the src of the schema edge
};

}  // namespace trail::graph

#endif  // TRAIL_GRAPH_TYPES_H_
