#ifndef TRAIL_GRAPH_PROPERTY_GRAPH_H_
#define TRAIL_GRAPH_PROPERTY_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace trail::graph {

/// A mutable in-memory typed property graph — TRAIL's replacement for the
/// neo4j database the paper stores the TKG in. Nodes are interned by
/// (type, value) so merging a new incident report into the TKG is idempotent:
/// re-adding an existing IOC returns its existing id and only appends the
/// edges that are new.
///
/// Per-node payloads:
///  * `value`        — the IOC text ("1.0.36.127", "evil.example", ...)
///  * `label`        — APT class for attributed events, kNoLabel otherwise
///  * `first_order`  — true when the IOC appeared directly in some report
///  * `report_count` — number of distinct events that listed this IOC
///  * `features`     — dense feature vector (layout fixed per node type)
///  * `timestamp`    — days since epoch of first observation
class PropertyGraph {
 public:
  PropertyGraph() = default;
  // The interning and edge-dedup indexes are rebuilt lazily after a bulk
  // load, so copies and moves manage that state explicitly (the mutex and
  // atomics are not copyable). Copying is safe while other threads read the
  // source graph; it is not safe concurrently with writes (same contract as
  // every other method).
  PropertyGraph(const PropertyGraph& other);
  PropertyGraph& operator=(const PropertyGraph& other);
  PropertyGraph(PropertyGraph&& other) noexcept;
  PropertyGraph& operator=(PropertyGraph&& other) noexcept;

  /// Adds (or finds) the node keyed by (type, value). Returns its id.
  NodeId AddNode(NodeType type, std::string_view value);

  /// Looks up a node by key; returns kInvalidNode when absent.
  NodeId FindNode(NodeType type, std::string_view value) const;

  /// Bulk-load fast path (segment-store materialization): appends a node row
  /// WITHOUT touching the intern table and marks the interning index stale.
  /// The index is rebuilt — one hash insert per node — on the first
  /// AddNode / FindNode / CheckConsistency afterwards. The caller must
  /// guarantee the (type, value) keys are unique; a duplicate slipped in here
  /// surfaces as an "interning not bijective" CheckConsistency failure, not
  /// as an error from this call.
  NodeId AppendNodeRow(NodeType type, std::string_view value);

  /// Bulk-load fast path for edges: requires an edge-free graph, verifies the
  /// whole batch (endpoint range, self loops, duplicates in either direction
  /// via a per-type sort), reserves every adjacency list to its exact final
  /// degree, then appends in batch order. The edge-dedup hash sets are left
  /// stale and rebuilt on the first AddEdge / HasEdge / CheckConsistency.
  Status AppendEdgeBatch(const std::vector<Edge>& batch);

  /// Pre-sizes the node/edge row arrays (not the lazy indexes — those
  /// reserve themselves when built). Store materialization knows the final
  /// counts up front; reserving once avoids ~20 doublings at paper scale.
  void Reserve(size_t nodes, size_t edges);

  /// Adds a typed edge if it does not already exist (in either direction for
  /// the same type). Returns true when a new edge was inserted. Self loops
  /// are rejected.
  bool AddEdge(NodeId src, NodeId dst, EdgeType type);

  bool HasEdge(NodeId src, NodeId dst, EdgeType type) const;

  size_t num_nodes() const { return types_.size(); }
  size_t num_edges() const { return edges_.size(); }

  NodeType type(NodeId id) const { return types_[id]; }
  const std::string& value(NodeId id) const { return values_[id]; }

  int label(NodeId id) const { return labels_[id]; }
  void SetLabel(NodeId id, int label) {
    labels_[id] = label;
    MarkDirty(id);
  }

  bool first_order(NodeId id) const { return first_order_[id]; }
  void SetFirstOrder(NodeId id, bool v) {
    first_order_[id] = v;
    MarkDirty(id);
  }

  int report_count(NodeId id) const { return report_counts_[id]; }
  void IncrementReportCount(NodeId id) {
    report_counts_[id]++;
    MarkDirty(id);
  }
  /// Restores a persisted count directly (store/snapshot load paths).
  void SetReportCount(NodeId id, int count) {
    report_counts_[id] = count;
    MarkDirty(id);
  }

  double timestamp(NodeId id) const { return timestamps_[id]; }
  void SetTimestamp(NodeId id, double ts) {
    timestamps_[id] = ts;
    MarkDirty(id);
  }

  const std::vector<float>& features(NodeId id) const { return features_[id]; }
  void SetFeatures(NodeId id, std::vector<float> f) {
    features_[id] = std::move(f);
  }
  /// Mutable feature slot so the store load path can decode straight into
  /// place instead of staging through a scratch vector (the dense feature
  /// plane is by far the largest payload — ~3 GiB at paper scale).
  std::vector<float>* MutableFeatures(NodeId id) { return &features_[id]; }
  bool has_features(NodeId id) const { return !features_[id].empty(); }

  /// Undirected neighbor view (both edge directions).
  const std::vector<Neighbor>& neighbors(NodeId id) const {
    return adjacency_[id];
  }
  size_t degree(NodeId id) const { return adjacency_[id].size(); }

  /// All schema edges, in insertion order.
  const std::vector<Edge>& edges() const { return edges_; }

  /// All node ids of the given type, in id order.
  std::vector<NodeId> NodesOfType(NodeType type) const;

  /// Count of nodes per type.
  std::vector<size_t> TypeCounts() const;

  /// Undirected degree restricted to nodes of the queried type — e.g. how
  /// many Event neighbors an IP has.
  size_t DegreeToType(NodeId id, NodeType type) const;

  /// Validates internal invariants (interning bijective, adjacency symmetric,
  /// edge endpoints in range). Used by tests and after deserialization.
  Status CheckConsistency() const;

  // --- Mutation journal (segment-store delta support) ----------------------
  // When enabled, every mutable-field setter (label, first_order,
  // report_count, timestamp) records the touched node id, so
  // StoreWriter::AppendDelta can patch mutations that come with no new
  // incident edge (e.g. the longitudinal study labeling a prior month's
  // events). Trail enables the journal when a store is attached; enabling
  // clears the set because a full store write has just persisted the
  // current state. Feature vectors are not journaled — the store format
  // treats them (with type and value) as immutable after a node's first
  // analysis.

  /// Turns the journal on and starts it empty.
  void EnableMutationJournal() {
    journal_enabled_ = true;
    dirty_nodes_.clear();
  }
  void DisableMutationJournal() {
    journal_enabled_ = false;
    dirty_nodes_.clear();
  }
  bool mutation_journal_enabled() const { return journal_enabled_; }

  /// Ids whose mutable fields changed since the journal was last cleared.
  const std::unordered_set<NodeId>& dirty_nodes() const { return dirty_nodes_; }

  /// Drops journaled ids after they have been persisted (delta committed).
  void ClearDirtyNodes() { dirty_nodes_.clear(); }

 private:
  static std::string MakeKey(NodeType type, std::string_view value);
  static uint64_t EdgeKey(NodeId src, NodeId dst, EdgeType type);

  /// Rebuild the lazy indexes if a bulk load left them stale. Safe to call
  /// from concurrent const readers: double-checked under index_mu_, with the
  /// built flags providing the acquire/release edge for the fast path.
  void EnsureInternIndex() const;
  void EnsureEdgeIndex() const;

  void MarkDirty(NodeId id) {
    if (journal_enabled_) dirty_nodes_.insert(id);
  }

  // The interning map and edge-dedup sets are *indexes over* the row vectors
  // below, rebuilt on demand after AppendNodeRow / AppendEdgeBatch. mutable +
  // the mutex lets const lookups trigger the rebuild.
  mutable std::unordered_map<std::string, NodeId> intern_;
  std::vector<NodeType> types_;
  std::vector<std::string> values_;
  std::vector<int> labels_;
  std::vector<uint8_t> first_order_;
  std::vector<int> report_counts_;
  std::vector<double> timestamps_;
  std::vector<std::vector<float>> features_;
  std::vector<std::vector<Neighbor>> adjacency_;
  std::vector<Edge> edges_;
  // One dedup set per edge type so the (src, dst) pair key fits in 64 bits.
  mutable std::unordered_set<uint64_t> edge_set_[kNumEdgeTypes];
  bool journal_enabled_ = false;
  std::unordered_set<NodeId> dirty_nodes_;
  mutable std::atomic<bool> intern_built_{true};
  mutable std::atomic<bool> edge_index_built_{true};
  mutable std::mutex index_mu_;
};

}  // namespace trail::graph

#endif  // TRAIL_GRAPH_PROPERTY_GRAPH_H_
