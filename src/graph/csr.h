#ifndef TRAIL_GRAPH_CSR_H_
#define TRAIL_GRAPH_CSR_H_

#include <cstdint>
#include <vector>

#include "graph/property_graph.h"
#include "graph/types.h"

namespace trail::graph {

/// An immutable compressed-sparse-row snapshot of a PropertyGraph's
/// undirected adjacency. Label propagation, the GNN, and the traversal
/// algorithms all run on this compact representation rather than the
/// pointer-chasing mutable store.
class CsrGraph {
 public:
  /// Compiles the undirected adjacency of `graph`. Optionally restricts to a
  /// node subset: `keep[v]` false drops node v and all its edges (used for
  /// the first-order-only connectivity ablation). Node ids are preserved.
  static CsrGraph Build(const PropertyGraph& graph,
                        const std::vector<uint8_t>* keep = nullptr);

  size_t num_nodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  size_t num_directed_entries() const { return targets_.size(); }

  /// Undirected degree of v (dropped nodes report 0).
  size_t Degree(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Neighbor ids of v.
  const NodeId* NeighborsBegin(NodeId v) const {
    return targets_.data() + offsets_[v];
  }
  const NodeId* NeighborsEnd(NodeId v) const {
    return targets_.data() + offsets_[v + 1];
  }

  /// Edge type of the i-th incident entry of v (parallel to neighbors).
  EdgeType NeighborEdgeType(NodeId v, size_t i) const {
    return edge_types_[offsets_[v] + i];
  }

  bool IsKept(NodeId v) const { return kept_[v] != 0; }
  size_t num_kept() const { return num_kept_; }

 private:
  std::vector<uint64_t> offsets_;  // size num_nodes + 1
  std::vector<NodeId> targets_;
  std::vector<EdgeType> edge_types_;
  std::vector<uint8_t> kept_;
  size_t num_kept_ = 0;
};

}  // namespace trail::graph

#endif  // TRAIL_GRAPH_CSR_H_
