#ifndef TRAIL_GRAPH_CSR_H_
#define TRAIL_GRAPH_CSR_H_

#include <cstdint>
#include <vector>

#include "graph/property_graph.h"
#include "graph/types.h"

namespace trail::graph {

/// A compressed-sparse-row snapshot of a PropertyGraph's undirected
/// adjacency. Label propagation, the GNN, and the traversal algorithms all
/// run on this compact representation rather than the pointer-chasing
/// mutable store. Snapshots are immutable except for Append, which extends
/// a full-graph snapshot in place with a delta of new nodes and edges (the
/// longitudinal monthly update).
class CsrGraph {
 public:
  /// Compiles the undirected adjacency of `graph`. Optionally restricts to a
  /// node subset: `keep[v]` false drops node v and all its edges (used for
  /// the first-order-only connectivity ablation). Node ids are preserved.
  static CsrGraph Build(const PropertyGraph& graph,
                        const std::vector<uint8_t>* keep = nullptr);

  /// Extends this snapshot with everything appended to `graph` since it was
  /// built: nodes >= num_nodes() are added and edges
  /// [from_edge, graph.num_edges()) are merged, reusing the two-pass
  /// parallel fill over the new edge range. PropertyGraph only ever appends
  /// (nodes are interned, edges deduped), so the result is bit-identical to
  /// a scratch Build(graph): a node's appended neighbors land at the tail
  /// of its adjacency, exactly where the serial edge-order fill puts them.
  /// Requires a full-graph snapshot (built without a keep mask) and
  /// `from_edge` equal to the edge count this snapshot was built from.
  void Append(const PropertyGraph& graph, size_t from_edge);

  size_t num_nodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  size_t num_directed_entries() const { return targets_.size(); }

  /// Undirected degree of v (dropped nodes report 0).
  size_t Degree(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Neighbor ids of v.
  const NodeId* NeighborsBegin(NodeId v) const {
    return targets_.data() + offsets_[v];
  }
  const NodeId* NeighborsEnd(NodeId v) const {
    return targets_.data() + offsets_[v + 1];
  }

  /// Edge type of the i-th incident entry of v (parallel to neighbors).
  EdgeType NeighborEdgeType(NodeId v, size_t i) const {
    return edge_types_[offsets_[v] + i];
  }

  bool IsKept(NodeId v) const { return kept_[v] != 0; }
  size_t num_kept() const { return num_kept_; }

 private:
  std::vector<uint64_t> offsets_;  // size num_nodes + 1
  std::vector<NodeId> targets_;
  std::vector<EdgeType> edge_types_;
  std::vector<uint8_t> kept_;
  size_t num_kept_ = 0;
};

}  // namespace trail::graph

#endif  // TRAIL_GRAPH_CSR_H_
