#include "graph/csr.h"

namespace trail::graph {

CsrGraph CsrGraph::Build(const PropertyGraph& graph,
                         const std::vector<uint8_t>* keep) {
  const size_t n = graph.num_nodes();
  CsrGraph csr;
  csr.kept_.assign(n, 1);
  if (keep != nullptr) {
    for (size_t v = 0; v < n; ++v) csr.kept_[v] = (*keep)[v];
  }
  for (size_t v = 0; v < n; ++v) {
    if (csr.kept_[v]) ++csr.num_kept_;
  }

  csr.offsets_.assign(n + 1, 0);
  for (const Edge& e : graph.edges()) {
    if (!csr.kept_[e.src] || !csr.kept_[e.dst]) continue;
    csr.offsets_[e.src + 1]++;
    csr.offsets_[e.dst + 1]++;
  }
  for (size_t v = 0; v < n; ++v) csr.offsets_[v + 1] += csr.offsets_[v];

  csr.targets_.resize(csr.offsets_[n]);
  csr.edge_types_.resize(csr.offsets_[n]);
  std::vector<uint64_t> cursor(csr.offsets_.begin(), csr.offsets_.end() - 1);
  for (const Edge& e : graph.edges()) {
    if (!csr.kept_[e.src] || !csr.kept_[e.dst]) continue;
    csr.targets_[cursor[e.src]] = e.dst;
    csr.edge_types_[cursor[e.src]++] = e.type;
    csr.targets_[cursor[e.dst]] = e.src;
    csr.edge_types_[cursor[e.dst]++] = e.type;
  }
  return csr;
}

}  // namespace trail::graph
