#include "graph/csr.h"

#include <algorithm>

#include "util/logging.h"
#include "util/parallel.h"

namespace trail::graph {

namespace {

/// Edge count below which the serial two-pass build wins; the parallel
/// build allocates O(chunks * nodes) count/cursor scratch.
constexpr size_t kParallelBuildMinEdges = 65536;
/// Fixed chunk count for the parallel build. Independent of the worker
/// count, so the adjacency layout is identical at any thread count (and
/// identical to the serial edge-order fill).
constexpr size_t kParallelBuildChunks = 8;

}  // namespace

CsrGraph CsrGraph::Build(const PropertyGraph& graph,
                         const std::vector<uint8_t>* keep) {
  const size_t n = graph.num_nodes();
  CsrGraph csr;
  csr.kept_.assign(n, 1);
  if (keep != nullptr) {
    for (size_t v = 0; v < n; ++v) csr.kept_[v] = (*keep)[v];
  }
  for (size_t v = 0; v < n; ++v) {
    if (csr.kept_[v]) ++csr.num_kept_;
  }

  const auto& edges = graph.edges();
  csr.offsets_.assign(n + 1, 0);

  if (edges.size() < kParallelBuildMinEdges) {
    for (const Edge& e : edges) {
      if (!csr.kept_[e.src] || !csr.kept_[e.dst]) continue;
      csr.offsets_[e.src + 1]++;
      csr.offsets_[e.dst + 1]++;
    }
    for (size_t v = 0; v < n; ++v) csr.offsets_[v + 1] += csr.offsets_[v];

    csr.targets_.resize(csr.offsets_[n]);
    csr.edge_types_.resize(csr.offsets_[n]);
    std::vector<uint64_t> cursor(csr.offsets_.begin(), csr.offsets_.end() - 1);
    for (const Edge& e : edges) {
      if (!csr.kept_[e.src] || !csr.kept_[e.dst]) continue;
      csr.targets_[cursor[e.src]] = e.dst;
      csr.edge_types_[cursor[e.src]++] = e.type;
      csr.targets_[cursor[e.dst]] = e.src;
      csr.edge_types_[cursor[e.dst]++] = e.type;
    }
    return csr;
  }

  // Parallel two-pass build over fixed edge chunks. Chunk k fills node v's
  // adjacency slots starting at offsets_[v] + sum of v's degree in chunks
  // before k — exactly the positions the serial edge-order fill produces,
  // so the result is bit-identical to the serial path.
  const size_t num_chunks = kParallelBuildChunks;
  const size_t per_chunk = (edges.size() + num_chunks - 1) / num_chunks;

  std::vector<std::vector<uint32_t>> chunk_counts(num_chunks);
  ParallelForEachIndex(num_chunks, [&](size_t k) {
    auto& counts = chunk_counts[k];
    counts.assign(n, 0);
    const size_t begin = k * per_chunk;
    const size_t end = std::min(edges.size(), begin + per_chunk);
    for (size_t i = begin; i < end; ++i) {
      const Edge& e = edges[i];
      if (!csr.kept_[e.src] || !csr.kept_[e.dst]) continue;
      ++counts[e.src];
      ++counts[e.dst];
    }
  }, /*min_chunk=*/1);

  for (size_t v = 0; v < n; ++v) {
    uint64_t degree = 0;
    for (size_t k = 0; k < num_chunks; ++k) degree += chunk_counts[k][v];
    csr.offsets_[v + 1] = csr.offsets_[v] + degree;
  }

  csr.targets_.resize(csr.offsets_[n]);
  csr.edge_types_.resize(csr.offsets_[n]);

  std::vector<std::vector<uint64_t>> chunk_cursor(
      num_chunks, std::vector<uint64_t>(n));
  for (size_t v = 0; v < n; ++v) {
    uint64_t running = csr.offsets_[v];
    for (size_t k = 0; k < num_chunks; ++k) {
      chunk_cursor[k][v] = running;
      running += chunk_counts[k][v];
    }
  }

  ParallelForEachIndex(num_chunks, [&](size_t k) {
    auto& cursor = chunk_cursor[k];
    const size_t begin = k * per_chunk;
    const size_t end = std::min(edges.size(), begin + per_chunk);
    for (size_t i = begin; i < end; ++i) {
      const Edge& e = edges[i];
      if (!csr.kept_[e.src] || !csr.kept_[e.dst]) continue;
      csr.targets_[cursor[e.src]] = e.dst;
      csr.edge_types_[cursor[e.src]++] = e.type;
      csr.targets_[cursor[e.dst]] = e.src;
      csr.edge_types_[cursor[e.dst]++] = e.type;
    }
  }, /*min_chunk=*/1);

  return csr;
}

void CsrGraph::Append(const PropertyGraph& graph, size_t from_edge) {
  const size_t n_old = num_nodes();
  const size_t n = graph.num_nodes();
  TRAIL_CHECK(num_kept_ == n_old) << "Append requires a full-graph snapshot";
  TRAIL_CHECK(n >= n_old) << "graph shrank since the snapshot";
  TRAIL_CHECK(from_edge <= graph.num_edges()) << "edge watermark out of range";
  const auto& edges = graph.edges();
  const size_t num_new = edges.size() - from_edge;

  kept_.resize(n, 1);
  num_kept_ = n;
  if (num_new == 0 && n == n_old) return;

  // Pass 1: per-node degree of the new edge range. Small deltas count
  // serially; large ones reuse the fixed-chunk parallel count (the chunk
  // layout depends only on the delta size, so the fill below is identical
  // at any thread count).
  const bool parallel = num_new >= kParallelBuildMinEdges;
  const size_t num_chunks = parallel ? kParallelBuildChunks : 1;
  const size_t per_chunk = (num_new + num_chunks - 1) / num_chunks;
  std::vector<std::vector<uint32_t>> chunk_counts(num_chunks);
  ParallelForEachIndex(num_chunks, [&](size_t k) {
    auto& counts = chunk_counts[k];
    counts.assign(n, 0);
    const size_t begin = from_edge + k * per_chunk;
    const size_t end = std::min(edges.size(), begin + per_chunk);
    for (size_t i = begin; i < end; ++i) {
      const Edge& e = edges[i];
      ++counts[e.src];
      ++counts[e.dst];
    }
  }, /*min_chunk=*/1);

  // New offsets: old degree (0 for appended nodes) plus the delta degree.
  std::vector<uint64_t> offsets(n + 1, 0);
  std::vector<std::vector<uint64_t>> chunk_cursor(
      num_chunks, std::vector<uint64_t>(n));
  for (size_t v = 0; v < n; ++v) {
    const uint64_t old_degree = v < n_old ? offsets_[v + 1] - offsets_[v] : 0;
    uint64_t running = offsets[v] + old_degree;
    for (size_t k = 0; k < num_chunks; ++k) {
      chunk_cursor[k][v] = running;
      running += chunk_counts[k][v];
    }
    offsets[v + 1] = running;
  }

  // Relocate each node's existing adjacency slice (disjoint destinations,
  // safe to move in parallel), then fill the new entries at each tail.
  std::vector<NodeId> targets(offsets[n]);
  std::vector<EdgeType> edge_types(offsets[n]);
  ParallelFor(n_old, [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      std::copy(targets_.begin() + offsets_[v], targets_.begin() + offsets_[v + 1],
                targets.begin() + offsets[v]);
      std::copy(edge_types_.begin() + offsets_[v],
                edge_types_.begin() + offsets_[v + 1],
                edge_types.begin() + offsets[v]);
    }
  }, /*min_chunk=*/4096);

  ParallelForEachIndex(num_chunks, [&](size_t k) {
    auto& cursor = chunk_cursor[k];
    const size_t begin = from_edge + k * per_chunk;
    const size_t end = std::min(edges.size(), begin + per_chunk);
    for (size_t i = begin; i < end; ++i) {
      const Edge& e = edges[i];
      targets[cursor[e.src]] = e.dst;
      edge_types[cursor[e.src]++] = e.type;
      targets[cursor[e.dst]] = e.src;
      edge_types[cursor[e.dst]++] = e.type;
    }
  }, /*min_chunk=*/1);

  offsets_ = std::move(offsets);
  targets_ = std::move(targets);
  edge_types_ = std::move(edge_types);
}

}  // namespace trail::graph
