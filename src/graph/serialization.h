#ifndef TRAIL_GRAPH_SERIALIZATION_H_
#define TRAIL_GRAPH_SERIALIZATION_H_

#include <string>

#include "graph/property_graph.h"
#include "util/status.h"

namespace trail::graph {

/// Writes the full graph — nodes, payloads, features, edges — to a binary
/// file. The format is versioned and little-endian-native (TRAIL targets a
/// single architecture per deployment, matching the paper's single-site
/// database).
Status SaveGraph(const PropertyGraph& graph, const std::string& path);

/// Reads a graph previously written by SaveGraph and validates consistency.
Result<PropertyGraph> LoadGraph(const std::string& path);

}  // namespace trail::graph

#endif  // TRAIL_GRAPH_SERIALIZATION_H_
