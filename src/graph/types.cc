#include "graph/types.h"

namespace trail::graph {

const char* NodeTypeName(NodeType type) {
  switch (type) {
    case NodeType::kEvent:
      return "Event";
    case NodeType::kIp:
      return "IP";
    case NodeType::kDomain:
      return "Domain";
    case NodeType::kUrl:
      return "URL";
    case NodeType::kAsn:
      return "ASN";
  }
  return "?";
}

const char* EdgeTypeName(EdgeType type) {
  switch (type) {
    case EdgeType::kInReport:
      return "InReport";
    case EdgeType::kARecord:
      return "ARecord";
    case EdgeType::kInGroup:
      return "InGroup";
    case EdgeType::kResolvesTo:
      return "ResolvesTo";
    case EdgeType::kHostedOn:
      return "HostedOn";
  }
  return "?";
}

}  // namespace trail::graph
