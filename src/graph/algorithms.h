#ifndef TRAIL_GRAPH_ALGORITHMS_H_
#define TRAIL_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace trail::graph {

inline constexpr int kUnreachable = -1;

/// BFS hop distances from `source` over the CSR adjacency; kUnreachable for
/// nodes not reached (or dropped). `max_depth` < 0 means unlimited.
std::vector<int> BfsDistances(const CsrGraph& csr, NodeId source,
                              int max_depth = -1);

/// Connected-components labeling. Dropped nodes get component kUnreachable.
struct ComponentResult {
  std::vector<int> component;   // per node id; -1 for dropped nodes
  std::vector<size_t> sizes;    // per component id
  size_t num_components = 0;
  int largest_component = -1;   // id of the largest component
};
ComponentResult ConnectedComponents(const CsrGraph& csr);

/// Exact eccentricity-based diameter of the component containing `seed`,
/// computed with BFS from every node in that component. O(V*E) — use only on
/// small graphs (tests).
int ExactDiameter(const CsrGraph& csr, NodeId seed);

/// Double-sweep lower bound on the diameter of the component containing
/// `seed` with `sweeps` refinement rounds: BFS to the farthest node, repeat.
/// Exact on trees and empirically tight on real graphs; this is how we report
/// the TKG diameter at scale.
int DoubleSweepDiameter(const CsrGraph& csr, NodeId seed, int sweeps = 4);

/// The set of nodes within `hops` of `center` (including the center), in BFS
/// order — the paper's k-hop ego-net.
std::vector<NodeId> KHopNeighborhood(const CsrGraph& csr, NodeId center,
                                     int hops);

/// K-hop neighborhood around several seeds at once.
std::vector<NodeId> KHopNeighborhood(const CsrGraph& csr,
                                     const std::vector<NodeId>& centers,
                                     int hops);

/// An extracted ego-net: the induced subgraph on a k-hop neighborhood, with
/// compact local ids and a mapping back to the parent graph.
struct EgoNet {
  std::vector<NodeId> nodes;            // local id -> global id (BFS order)
  std::vector<int> hop;                 // local id -> hop distance from ego
  std::vector<std::pair<uint32_t, uint32_t>> edges;  // local id pairs
  std::vector<EdgeType> edge_types;     // parallel to `edges`
};
EgoNet ExtractEgoNet(const CsrGraph& csr, NodeId center, int hops);

}  // namespace trail::graph

#endif  // TRAIL_GRAPH_ALGORITHMS_H_
