#ifndef TRAIL_GRAPH_ALGORITHMS_H_
#define TRAIL_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace trail::graph {

inline constexpr int kUnreachable = -1;

/// BFS hop distances from `source` over the CSR adjacency; kUnreachable for
/// nodes not reached (or dropped). `max_depth` < 0 means unlimited.
std::vector<int> BfsDistances(const CsrGraph& csr, NodeId source,
                              int max_depth = -1);

/// Connected-components labeling. Dropped nodes get component kUnreachable.
struct ComponentResult {
  std::vector<int> component;   // per node id; -1 for dropped nodes
  std::vector<size_t> sizes;    // per component id
  size_t num_components = 0;
  int largest_component = -1;   // id of the largest component
};
ComponentResult ConnectedComponents(const CsrGraph& csr);

/// Exact eccentricity-based diameter of the component containing `seed`,
/// computed with BFS from every node in that component. O(V*E) — use only on
/// small graphs (tests).
int ExactDiameter(const CsrGraph& csr, NodeId seed);

/// Double-sweep lower bound on the diameter of the component containing
/// `seed` with `sweeps` refinement rounds: BFS to the farthest node, repeat.
/// Exact on trees and empirically tight on real graphs; this is how we report
/// the TKG diameter at scale.
int DoubleSweepDiameter(const CsrGraph& csr, NodeId seed, int sweeps = 4);

/// Reusable buffers for the traversal helpers below. KHopNeighborhood /
/// ExtractEgoNet allocate O(num_nodes) of visited/frontier state per call;
/// callers that traverse in a loop (event triage, the evidence-path
/// engine, a serving micro-batch) hold one scratch and amortize the
/// allocation to a touched-entry reset.
///
/// After a scratch call, `dist` holds the hop distance of every visited
/// node (kUnreachable elsewhere) and `order` the visited nodes in BFS
/// order — both stay valid until the next traversal using this scratch.
/// Do not mutate the members between calls; the touched-entry reset relies
/// on `order` naming exactly the non-kUnreachable `dist` entries.
struct TraversalScratch {
  std::vector<int> dist;
  std::vector<NodeId> order;
  std::vector<NodeId> queue;    // internal BFS queue storage
  std::vector<uint32_t> local;  // internal local-id remap (ExtractEgoNet)
};

/// The set of nodes within `hops` of `center` (including the center), in BFS
/// order — the paper's k-hop ego-net.
std::vector<NodeId> KHopNeighborhood(const CsrGraph& csr, NodeId center,
                                     int hops);

/// K-hop neighborhood around several seeds at once.
std::vector<NodeId> KHopNeighborhood(const CsrGraph& csr,
                                     const std::vector<NodeId>& centers,
                                     int hops);

/// Scratch-buffer variant: identical result (returned by reference to
/// scratch->order), no per-call allocation once the scratch is warm.
const std::vector<NodeId>& KHopNeighborhood(const CsrGraph& csr,
                                            const std::vector<NodeId>& centers,
                                            int hops,
                                            TraversalScratch* scratch);

/// An extracted ego-net: the induced subgraph on a k-hop neighborhood, with
/// compact local ids and a mapping back to the parent graph.
struct EgoNet {
  std::vector<NodeId> nodes;            // local id -> global id (BFS order)
  std::vector<int> hop;                 // local id -> hop distance from ego
  std::vector<std::pair<uint32_t, uint32_t>> edges;  // local id pairs
  std::vector<EdgeType> edge_types;     // parallel to `edges`
};
EgoNet ExtractEgoNet(const CsrGraph& csr, NodeId center, int hops);

/// Scratch-buffer variant of ExtractEgoNet (identical result).
EgoNet ExtractEgoNet(const CsrGraph& csr, NodeId center, int hops,
                     TraversalScratch* scratch);

}  // namespace trail::graph

#endif  // TRAIL_GRAPH_ALGORITHMS_H_
