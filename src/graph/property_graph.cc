#include "graph/property_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace trail::graph {

std::string PropertyGraph::MakeKey(NodeType type, std::string_view value) {
  std::string key;
  key.reserve(value.size() + 2);
  key.push_back(static_cast<char>('0' + static_cast<int>(type)));
  key.push_back(':');
  key.append(value);
  return key;
}

uint64_t PropertyGraph::EdgeKey(NodeId src, NodeId dst, EdgeType /*type*/) {
  // Orientation-independent key: the schema never produces the same edge
  // type in both directions between one node pair, so a normalized key
  // dedupes symmetric re-insertions. The type selects the dedup set.
  NodeId lo = std::min(src, dst);
  NodeId hi = std::max(src, dst);
  return (static_cast<uint64_t>(lo) << 32) | static_cast<uint64_t>(hi);
}

PropertyGraph::PropertyGraph(const PropertyGraph& other) { *this = other; }

PropertyGraph& PropertyGraph::operator=(const PropertyGraph& other) {
  if (this == &other) return *this;
  // Hold both index mutexes so a concurrent lazy rebuild on `other` (a const
  // reader is allowed to trigger one) cannot be observed half-built.
  std::scoped_lock lock(index_mu_, other.index_mu_);
  intern_ = other.intern_;
  types_ = other.types_;
  values_ = other.values_;
  labels_ = other.labels_;
  first_order_ = other.first_order_;
  report_counts_ = other.report_counts_;
  timestamps_ = other.timestamps_;
  features_ = other.features_;
  adjacency_ = other.adjacency_;
  edges_ = other.edges_;
  for (int t = 0; t < kNumEdgeTypes; ++t) edge_set_[t] = other.edge_set_[t];
  journal_enabled_ = other.journal_enabled_;
  dirty_nodes_ = other.dirty_nodes_;
  intern_built_.store(other.intern_built_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  edge_index_built_.store(
      other.edge_index_built_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return *this;
}

PropertyGraph::PropertyGraph(PropertyGraph&& other) noexcept {
  *this = std::move(other);
}

PropertyGraph& PropertyGraph::operator=(PropertyGraph&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(index_mu_, other.index_mu_);
  intern_ = std::move(other.intern_);
  types_ = std::move(other.types_);
  values_ = std::move(other.values_);
  labels_ = std::move(other.labels_);
  first_order_ = std::move(other.first_order_);
  report_counts_ = std::move(other.report_counts_);
  timestamps_ = std::move(other.timestamps_);
  features_ = std::move(other.features_);
  adjacency_ = std::move(other.adjacency_);
  edges_ = std::move(other.edges_);
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    edge_set_[t] = std::move(other.edge_set_[t]);
  }
  journal_enabled_ = other.journal_enabled_;
  dirty_nodes_ = std::move(other.dirty_nodes_);
  intern_built_.store(other.intern_built_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  edge_index_built_.store(
      other.edge_index_built_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return *this;
}

void PropertyGraph::EnsureInternIndex() const {
  if (intern_built_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(index_mu_);
  if (intern_built_.load(std::memory_order_relaxed)) return;
  intern_.clear();
  intern_.reserve(types_.size());
  for (size_t id = 0; id < types_.size(); ++id) {
    // First key wins on a (corrupt) duplicate; CheckConsistency reports it
    // as "interning not bijective" via the size mismatch below.
    intern_.emplace(MakeKey(types_[id], values_[id]),
                    static_cast<NodeId>(id));
  }
  intern_built_.store(true, std::memory_order_release);
}

void PropertyGraph::EnsureEdgeIndex() const {
  if (edge_index_built_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(index_mu_);
  if (edge_index_built_.load(std::memory_order_relaxed)) return;
  size_t counts[kNumEdgeTypes] = {};
  for (const Edge& e : edges_) counts[static_cast<int>(e.type)]++;
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    edge_set_[t].clear();
    edge_set_[t].reserve(counts[t]);
  }
  for (const Edge& e : edges_) {
    edge_set_[static_cast<int>(e.type)].insert(EdgeKey(e.src, e.dst, e.type));
  }
  edge_index_built_.store(true, std::memory_order_release);
}

NodeId PropertyGraph::AddNode(NodeType type, std::string_view value) {
  EnsureInternIndex();
  std::string key = MakeKey(type, value);
  NodeId id = static_cast<NodeId>(types_.size());
  auto [it, inserted] = intern_.try_emplace(std::move(key), id);
  if (!inserted) return it->second;
  types_.push_back(type);
  values_.emplace_back(value);
  labels_.push_back(kNoLabel);
  first_order_.push_back(0);
  report_counts_.push_back(0);
  timestamps_.push_back(0.0);
  features_.emplace_back();
  adjacency_.emplace_back();
  return id;
}

NodeId PropertyGraph::FindNode(NodeType type, std::string_view value) const {
  EnsureInternIndex();
  auto it = intern_.find(MakeKey(type, value));
  if (it == intern_.end()) return kInvalidNode;
  return it->second;
}

NodeId PropertyGraph::AppendNodeRow(NodeType type, std::string_view value) {
  intern_built_.store(false, std::memory_order_relaxed);
  NodeId id = static_cast<NodeId>(types_.size());
  types_.push_back(type);
  values_.emplace_back(value);
  labels_.push_back(kNoLabel);
  first_order_.push_back(0);
  report_counts_.push_back(0);
  timestamps_.push_back(0.0);
  features_.emplace_back();
  adjacency_.emplace_back();
  return id;
}

Status PropertyGraph::AppendEdgeBatch(const std::vector<Edge>& batch) {
  if (!edges_.empty()) {
    return Status::FailedPrecondition(
        "AppendEdgeBatch requires an edge-free graph");
  }
  const size_t n = types_.size();
  std::vector<uint32_t> degree(n, 0);
  std::vector<uint64_t> keys[kNumEdgeTypes];
  for (const Edge& e : batch) {
    if (e.src >= n || e.dst >= n) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (e.src == e.dst) return Status::InvalidArgument("self loop in batch");
    int t = static_cast<int>(e.type);
    if (t < 0 || t >= kNumEdgeTypes) {
      return Status::InvalidArgument("edge type out of range");
    }
    degree[e.src]++;
    degree[e.dst]++;
    keys[t].push_back(EdgeKey(e.src, e.dst, e.type));
  }
  // Duplicate detection by sort instead of hash insert: same coverage as
  // AddEdge's dedup sets (orientation-normalized key, per type) at a
  // fraction of the load-path cost.
  for (auto& k : keys) {
    std::sort(k.begin(), k.end());
    if (std::adjacent_find(k.begin(), k.end()) != k.end()) {
      return Status::InvalidArgument("duplicate edge in batch");
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (degree[i] != 0) adjacency_[i].reserve(degree[i]);
  }
  edges_.reserve(batch.size());
  for (const Edge& e : batch) {
    edges_.push_back(e);
    adjacency_[e.src].push_back(Neighbor{e.dst, e.type, /*is_outgoing=*/true});
    adjacency_[e.dst].push_back(Neighbor{e.src, e.type, /*is_outgoing=*/false});
  }
  for (auto& s : edge_set_) s.clear();
  edge_index_built_.store(false, std::memory_order_relaxed);
  return Status::Ok();
}

void PropertyGraph::Reserve(size_t nodes, size_t edges) {
  // intern_ is deliberately not reserved: the bulk-load path never fills it
  // (EnsureInternIndex reserves when it actually builds the index).
  types_.reserve(nodes);
  values_.reserve(nodes);
  labels_.reserve(nodes);
  first_order_.reserve(nodes);
  report_counts_.reserve(nodes);
  timestamps_.reserve(nodes);
  features_.reserve(nodes);
  adjacency_.reserve(nodes);
  edges_.reserve(edges);
}

bool PropertyGraph::AddEdge(NodeId src, NodeId dst, EdgeType type) {
  EnsureEdgeIndex();
  TRAIL_CHECK(src < types_.size() && dst < types_.size())
      << "edge endpoint out of range";
  if (src == dst) return false;
  uint64_t key = EdgeKey(src, dst, type);
  if (!edge_set_[static_cast<int>(type)].insert(key).second) return false;
  edges_.push_back(Edge{src, dst, type});
  adjacency_[src].push_back(Neighbor{dst, type, /*is_outgoing=*/true});
  adjacency_[dst].push_back(Neighbor{src, type, /*is_outgoing=*/false});
  return true;
}

bool PropertyGraph::HasEdge(NodeId src, NodeId dst, EdgeType type) const {
  EnsureEdgeIndex();
  if (src >= types_.size() || dst >= types_.size()) return false;
  return edge_set_[static_cast<int>(type)].count(EdgeKey(src, dst, type)) > 0;
}

std::vector<NodeId> PropertyGraph::NodesOfType(NodeType type) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < types_.size(); ++id) {
    if (types_[id] == type) out.push_back(id);
  }
  return out;
}

std::vector<size_t> PropertyGraph::TypeCounts() const {
  std::vector<size_t> counts(kNumNodeTypes, 0);
  for (NodeType t : types_) counts[static_cast<int>(t)]++;
  return counts;
}

size_t PropertyGraph::DegreeToType(NodeId id, NodeType type) const {
  size_t n = 0;
  for (const Neighbor& nb : adjacency_[id]) {
    if (types_[nb.node] == type) ++n;
  }
  return n;
}

Status PropertyGraph::CheckConsistency() const {
  // Force both lazy indexes so a bulk load is fully cross-checked: duplicate
  // node keys collapse into one intern entry (size mismatch below), and
  // duplicate edges collapse in the dedup sets (set_total mismatch below).
  EnsureInternIndex();
  EnsureEdgeIndex();
  if (intern_.size() != types_.size()) {
    return Status::Internal("intern table size mismatch");
  }
  // Interning must be bijective: every node's key resolves back to its own
  // id (equal sizes alone would not catch two keys mapping to one id).
  for (NodeId id = 0; id < types_.size(); ++id) {
    if (FindNode(types_[id], values_[id]) != id) {
      return Status::Internal("interning not bijective at node " +
                              std::to_string(id));
    }
  }
  for (const auto& [key, id] : intern_) {
    if (id >= types_.size()) {
      return Status::Internal("interned id out of range");
    }
  }
  size_t adjacency_total = 0;
  for (NodeId id = 0; id < types_.size(); ++id) {
    adjacency_total += adjacency_[id].size();
    for (const Neighbor& nb : adjacency_[id]) {
      if (nb.node >= types_.size()) {
        return Status::Internal("neighbor id out of range");
      }
      // Symmetry: the mirrored entry must exist with flipped direction.
      const auto& back = adjacency_[nb.node];
      bool found = std::any_of(back.begin(), back.end(), [&](const Neighbor& b) {
        return b.node == id && b.type == nb.type &&
               b.is_outgoing != nb.is_outgoing;
      });
      if (!found) return Status::Internal("asymmetric adjacency entry");
    }
  }
  if (adjacency_total != 2 * edges_.size()) {
    return Status::Internal("adjacency count != 2 * edge count");
  }
  size_t set_total = 0;
  for (const auto& s : edge_set_) set_total += s.size();
  if (set_total != edges_.size()) {
    return Status::Internal("edge set / edge list size mismatch");
  }
  for (const Edge& e : edges_) {
    if (e.src >= types_.size() || e.dst >= types_.size()) {
      return Status::Internal("edge endpoint out of range");
    }
    if (e.src == e.dst) return Status::Internal("self loop present");
  }
  return Status::Ok();
}

}  // namespace trail::graph
