#include "graph/property_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace trail::graph {

std::string PropertyGraph::MakeKey(NodeType type, std::string_view value) {
  std::string key;
  key.reserve(value.size() + 2);
  key.push_back(static_cast<char>('0' + static_cast<int>(type)));
  key.push_back(':');
  key.append(value);
  return key;
}

uint64_t PropertyGraph::EdgeKey(NodeId src, NodeId dst, EdgeType /*type*/) {
  // Orientation-independent key: the schema never produces the same edge
  // type in both directions between one node pair, so a normalized key
  // dedupes symmetric re-insertions. The type selects the dedup set.
  NodeId lo = std::min(src, dst);
  NodeId hi = std::max(src, dst);
  return (static_cast<uint64_t>(lo) << 32) | static_cast<uint64_t>(hi);
}

NodeId PropertyGraph::AddNode(NodeType type, std::string_view value) {
  std::string key = MakeKey(type, value);
  auto it = intern_.find(key);
  if (it != intern_.end()) return it->second;
  NodeId id = static_cast<NodeId>(types_.size());
  intern_.emplace(std::move(key), id);
  types_.push_back(type);
  values_.emplace_back(value);
  labels_.push_back(kNoLabel);
  first_order_.push_back(0);
  report_counts_.push_back(0);
  timestamps_.push_back(0.0);
  features_.emplace_back();
  adjacency_.emplace_back();
  return id;
}

NodeId PropertyGraph::FindNode(NodeType type, std::string_view value) const {
  auto it = intern_.find(MakeKey(type, value));
  if (it == intern_.end()) return kInvalidNode;
  return it->second;
}

bool PropertyGraph::AddEdge(NodeId src, NodeId dst, EdgeType type) {
  TRAIL_CHECK(src < types_.size() && dst < types_.size())
      << "edge endpoint out of range";
  if (src == dst) return false;
  uint64_t key = EdgeKey(src, dst, type);
  if (!edge_set_[static_cast<int>(type)].insert(key).second) return false;
  edges_.push_back(Edge{src, dst, type});
  adjacency_[src].push_back(Neighbor{dst, type, /*is_outgoing=*/true});
  adjacency_[dst].push_back(Neighbor{src, type, /*is_outgoing=*/false});
  return true;
}

bool PropertyGraph::HasEdge(NodeId src, NodeId dst, EdgeType type) const {
  if (src >= types_.size() || dst >= types_.size()) return false;
  return edge_set_[static_cast<int>(type)].count(EdgeKey(src, dst, type)) > 0;
}

std::vector<NodeId> PropertyGraph::NodesOfType(NodeType type) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < types_.size(); ++id) {
    if (types_[id] == type) out.push_back(id);
  }
  return out;
}

std::vector<size_t> PropertyGraph::TypeCounts() const {
  std::vector<size_t> counts(kNumNodeTypes, 0);
  for (NodeType t : types_) counts[static_cast<int>(t)]++;
  return counts;
}

size_t PropertyGraph::DegreeToType(NodeId id, NodeType type) const {
  size_t n = 0;
  for (const Neighbor& nb : adjacency_[id]) {
    if (types_[nb.node] == type) ++n;
  }
  return n;
}

Status PropertyGraph::CheckConsistency() const {
  if (intern_.size() != types_.size()) {
    return Status::Internal("intern table size mismatch");
  }
  size_t adjacency_total = 0;
  for (NodeId id = 0; id < types_.size(); ++id) {
    adjacency_total += adjacency_[id].size();
    for (const Neighbor& nb : adjacency_[id]) {
      if (nb.node >= types_.size()) {
        return Status::Internal("neighbor id out of range");
      }
      // Symmetry: the mirrored entry must exist with flipped direction.
      const auto& back = adjacency_[nb.node];
      bool found = std::any_of(back.begin(), back.end(), [&](const Neighbor& b) {
        return b.node == id && b.type == nb.type &&
               b.is_outgoing != nb.is_outgoing;
      });
      if (!found) return Status::Internal("asymmetric adjacency entry");
    }
  }
  if (adjacency_total != 2 * edges_.size()) {
    return Status::Internal("adjacency count != 2 * edge count");
  }
  size_t set_total = 0;
  for (const auto& s : edge_set_) set_total += s.size();
  if (set_total != edges_.size()) {
    return Status::Internal("edge set / edge list size mismatch");
  }
  for (const Edge& e : edges_) {
    if (e.src >= types_.size() || e.dst >= types_.size()) {
      return Status::Internal("edge endpoint out of range");
    }
    if (e.src == e.dst) return Status::Internal("self loop present");
  }
  return Status::Ok();
}

}  // namespace trail::graph
