#ifndef TRAIL_GRAPH_ANALYTICS_H_
#define TRAIL_GRAPH_ANALYTICS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "graph/csr.h"

namespace trail::graph {

/// Degree histogram over kept nodes: degree -> node count. The TKG's
/// heavy-tailed degree distribution (hub C2 IPs, leaf parked domains) shows
/// up here.
std::map<size_t, size_t> DegreeHistogram(const CsrGraph& csr);

/// Local clustering coefficient of one node: closed wedges / possible
/// wedges among its neighbors. The paper's related work (Pelofske et al.)
/// observes that shared attack infrastructure forms dense cliques; this is
/// the standard measure of that density.
double LocalClusteringCoefficient(const CsrGraph& csr, NodeId v);

/// Mean local clustering coefficient over a sample of kept nodes with
/// degree >= 2 (exact when sample_cap >= population).
double AverageClusteringCoefficient(const CsrGraph& csr,
                                    size_t sample_cap = 4000,
                                    uint64_t seed = 17);

/// PageRank over the undirected view (damping `alpha`, `iterations` power
/// steps). Returns one score per node id (zeros for dropped nodes). Useful
/// for ranking IOC hubs during triage.
std::vector<double> PageRank(const CsrGraph& csr, double alpha = 0.85,
                             int iterations = 30);

}  // namespace trail::graph

#endif  // TRAIL_GRAPH_ANALYTICS_H_
