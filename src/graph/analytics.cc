#include "graph/analytics.h"

#include <algorithm>
#include <unordered_set>

#include "util/random.h"

namespace trail::graph {

std::map<size_t, size_t> DegreeHistogram(const CsrGraph& csr) {
  std::map<size_t, size_t> histogram;
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    if (!csr.IsKept(v)) continue;
    histogram[csr.Degree(v)]++;
  }
  return histogram;
}

double LocalClusteringCoefficient(const CsrGraph& csr, NodeId v) {
  const size_t degree = csr.Degree(v);
  if (degree < 2) return 0.0;
  std::unordered_set<NodeId> neighbors(csr.NeighborsBegin(v),
                                       csr.NeighborsEnd(v));
  neighbors.erase(v);
  size_t k = neighbors.size();
  if (k < 2) return 0.0;
  size_t closed = 0;
  for (NodeId u : neighbors) {
    for (const NodeId* it = csr.NeighborsBegin(u); it != csr.NeighborsEnd(u);
         ++it) {
      // Each triangle edge counted once per direction; halve at the end.
      if (*it != v && neighbors.count(*it) > 0) ++closed;
    }
  }
  return static_cast<double>(closed) / (static_cast<double>(k) * (k - 1));
}

double AverageClusteringCoefficient(const CsrGraph& csr, size_t sample_cap,
                                    uint64_t seed) {
  std::vector<NodeId> eligible;
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    if (csr.IsKept(v) && csr.Degree(v) >= 2) eligible.push_back(v);
  }
  if (eligible.empty()) return 0.0;
  if (eligible.size() > sample_cap) {
    Rng rng(seed);
    rng.Shuffle(&eligible);
    eligible.resize(sample_cap);
  }
  double total = 0.0;
  for (NodeId v : eligible) total += LocalClusteringCoefficient(csr, v);
  return total / eligible.size();
}

std::vector<double> PageRank(const CsrGraph& csr, double alpha,
                             int iterations) {
  const size_t n = csr.num_nodes();
  std::vector<double> rank(n, 0.0);
  if (csr.num_kept() == 0) return rank;
  const double uniform = 1.0 / csr.num_kept();
  for (NodeId v = 0; v < n; ++v) {
    if (csr.IsKept(v)) rank[v] = uniform;
  }
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      if (!csr.IsKept(v)) continue;
      const size_t degree = csr.Degree(v);
      if (degree == 0) {
        dangling += rank[v];
        continue;
      }
      const double share = rank[v] / degree;
      for (const NodeId* nb = csr.NeighborsBegin(v);
           nb != csr.NeighborsEnd(v); ++nb) {
        next[*nb] += share;
      }
    }
    const double redistribute =
        (1.0 - alpha) * uniform + alpha * dangling * uniform;
    for (NodeId v = 0; v < n; ++v) {
      if (!csr.IsKept(v)) continue;
      next[v] = alpha * next[v] + redistribute;
    }
    std::swap(rank, next);
  }
  return rank;
}

}  // namespace trail::graph
