#ifndef TRAIL_GRAPH_STORE_FORMAT_H_
#define TRAIL_GRAPH_STORE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "graph/types.h"

// On-disk format of the TKGS segmented graph store (docs/STORE.md has the
// full diagram). One file holds one TKG as a sequence of page-aligned
// segments plus a directory; appends write new segments and a new directory
// strictly AFTER the old directory, then atomically switch by rewriting the
// header (with an fsync barrier in between) — nothing the old header
// reaches is ever overwritten, so a crash mid-append leaves the previously
// committed store readable.
//
//   [header page][commit-0 segments...][page-checksums][directory]
//   after AppendDelta:
//   [header'][commit-0 segments...][page-checksums][dead old directory]
//            [commit-1 segments...][page-checksums'][directory']
//
// The superseded directory's page becomes dead space, reclaimed only by a
// full rewrite (compaction).
//
// Everything is little-endian-native, like the TKG1/TCK1 formats (single
// architecture per deployment).

namespace trail::graph::store {

/// Fixed page size. Segments start on page boundaries; the buffer manager
/// pins whole pages, and per-page checksums cover exactly one page each.
inline constexpr uint32_t kPageSize = 16384;

inline constexpr uint32_t kStoreMagic = 0x53474B54;      // "TKGS"
inline constexpr uint32_t kDirectoryMagic = 0x52494454;  // "TDIR"
inline constexpr uint32_t kStoreVersion = 1;

/// Segment kinds. Every commit (the base build is commit 0; each
/// AppendDelta adds one) contributes its own instances covering the node
/// range [node_lo, node_hi) and edge range [edge_lo, edge_hi) recorded in
/// its kMeta segment.
enum class SegmentKind : uint32_t {
  /// Commit watermarks, APT roster, event count.
  kMeta = 1,
  /// String dictionary: per-node value bytes + type, offset-indexed by id.
  kDict = 2,
  /// Hash-bucketed (hash, id) lookup region over this commit's dictionary.
  kDictHash = 3,
  /// Fixed-size typed node records (label, counters, feature reference).
  kNodes = 4,
  /// Sparse feature payloads referenced by kNodes records.
  kFeatures = 5,
  /// Directed schema edges of this commit, varint delta-encoded.
  kEdges = 6,
  /// Per-node entry/byte offsets into kCsrRuns (base commit only).
  kCsrOffsets = 7,
  /// Varint delta-compressed undirected neighbor runs (base commit only).
  kCsrRuns = 8,
  /// FNV-1a checksum of every data page this commit wrote.
  kPageChecksums = 9,
  /// Mutable-field patches for nodes of EARLIER commits (delta commits
  /// only): re-referencing an old IOC flips first_order / bumps
  /// report_count without creating a node, so the delta records the new
  /// field values instead of rewriting the old kNodes page.
  kNodePatches = 10,
};

/// File header, stored at offset 0 (rest of page 0 is zero). Rewritten at
/// every commit to point at the new directory.
struct StoreHeader {
  uint32_t magic = kStoreMagic;
  uint32_t version = kStoreVersion;
  uint32_t page_size = kPageSize;
  uint32_t reserved = 0;
  uint64_t file_bytes = 0;   // committed file size
  uint64_t dir_offset = 0;   // byte offset of the directory
  uint64_t dir_bytes = 0;    // directory length in bytes
  uint64_t num_commits = 0;  // base build counts as commit 0
  uint64_t checksum = 0;     // FNV-1a over the fields above
};

/// One directory entry. The directory is the only part of the file that is
/// rewritten on append; it lists every segment of every commit.
struct SegmentEntry {
  uint32_t kind = 0;    // SegmentKind
  uint32_t commit = 0;  // which commit wrote it
  uint64_t offset = 0;  // byte offset, page-aligned
  uint64_t bytes = 0;   // payload length (not padded)
  uint64_t checksum = 0;  // FNV-1a over the payload bytes
};

/// 32-byte fixed node record in kNodes (see docs/STORE.md).
struct NodeRecord {
  int32_t label = kNoLabel;
  uint32_t report_count = 0;
  double timestamp = 0.0;
  uint64_t feature_offset = 0;  // into this commit's kFeatures payload
  uint32_t feature_nonzeros = 0;
  uint16_t feature_dim = 0;
  uint8_t type = 0;
  uint8_t first_order = 0;
};
static_assert(sizeof(NodeRecord) == 32, "node records must stay 32 bytes");

/// One kNodePatches record: the full set of post-creation-mutable node
/// fields (features, type, and value are immutable once analyzed, so they
/// stay with the owning commit's record). Sorted strictly by id; ids are
/// always below the patching commit's node_lo.
struct NodePatch {
  uint32_t id = 0;
  int32_t label = kNoLabel;
  uint32_t report_count = 0;
  uint8_t first_order = 0;
  uint8_t pad[3] = {0, 0, 0};
  double timestamp = 0.0;
};
static_assert(sizeof(NodePatch) == 24, "node patches must stay 24 bytes");

/// Hash-bucket entry in kDictHash: open bucket lists sorted by bucket,
/// prefixed by a bucket start-index array (bucket_count + 1 entries).
struct DictHashEntry {
  uint64_t hash = 0;
  uint32_t id = 0;
  uint32_t pad = 0;
};
static_assert(sizeof(DictHashEntry) == 16, "dict hash entries are 16 bytes");

// --- Hashing ---------------------------------------------------------------

inline constexpr uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t Fnv1a(const void* data, size_t len,
                      uint64_t seed = kFnvOffset) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Dictionary hash of a node key: the type byte followed by the value bytes.
inline uint64_t DictKeyHash(NodeType type, std::string_view value) {
  uint8_t t = static_cast<uint8_t>(type);
  uint64_t h = Fnv1a(&t, 1);
  return Fnv1a(value.data(), value.size(), h);
}

// --- Varints ---------------------------------------------------------------

inline void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

/// Decodes one varint from [*p, end). Returns false (without advancing) on
/// truncation or a varint wider than 64 bits — corrupt bytes fail clean.
inline bool GetVarint(const uint8_t** p, const uint8_t* end, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  const uint8_t* q = *p;
  while (q < end && shift < 64) {
    uint8_t byte = *q++;
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *p = q;
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// --- Layout helpers --------------------------------------------------------

inline uint64_t PageAlign(uint64_t offset) {
  return (offset + kPageSize - 1) / kPageSize * kPageSize;
}

inline void AppendRaw(std::vector<uint8_t>* out, const void* data,
                      size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out->insert(out->end(), p, p + len);
}

template <typename T>
inline void AppendPod(std::vector<uint8_t>* out, const T& v) {
  AppendRaw(out, &v, sizeof(T));
}

}  // namespace trail::graph::store

#endif  // TRAIL_GRAPH_STORE_FORMAT_H_
