#include "graph/store/buffer_manager.h"

#include <algorithm>
#include <cstring>

namespace trail::graph::store {

Result<std::unique_ptr<BufferManager>> BufferManager::Open(
    const std::string& path, size_t cache_pages) {
  auto region = FileRegion::Open(path);
  if (!region.ok()) return region.status();
  auto manager = std::make_unique<BufferManager>();
  manager->region_ = std::move(region).value();
  manager->cache_pages_ = std::max<size_t>(cache_pages, 8);
  uint64_t pages =
      (manager->region_.size() + kPageSize - 1) / kPageSize;
  manager->stats_.total_pages = pages;
  manager->touched_.assign(pages, 0);
  return manager;
}

uint64_t BufferManager::PageLength(uint64_t page_no) const {
  uint64_t start = page_no * kPageSize;
  return std::min<uint64_t>(kPageSize, region_.size() - start);
}

void BufferManager::TouchLocked(uint64_t page_no, bool faulted) {
  ++stats_.pages_pinned;
  if (faulted) ++stats_.page_faults;
  if (touched_[page_no] == 0) {
    touched_[page_no] = 1;
    ++stats_.pages_touched;
  }
}

void BufferManager::EvictLocked() {
  while (cache_.size() > cache_pages_ && !lru_.empty()) {
    uint64_t victim = lru_.front();
    lru_.pop_front();
    auto it = cache_.find(victim);
    if (it != cache_.end() && it->second.pins == 0) cache_.erase(it);
  }
}

Result<BufferManager::PageRef> BufferManager::Pin(uint64_t page_no) {
  if (page_no >= stats_.total_pages) {
    return Status::OutOfRange("page " + std::to_string(page_no) +
                              " past end of store file");
  }
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t start = page_no * kPageSize;
  uint64_t len = PageLength(page_no);
  if (region_.mapped()) {
    // The OS faults the page on first touch; our counter mirrors the first
    // pin, which is when that touch happens on the store's access paths.
    TouchLocked(page_no, /*faulted=*/touched_[page_no] == 0);
    return PageRef{region_.data() + start, static_cast<uint32_t>(len),
                   page_no};
  }
  auto it = cache_.find(page_no);
  if (it != cache_.end()) {
    CachedPage& page = it->second;
    if (page.in_lru) {
      lru_.erase(page.lru_pos);
      page.in_lru = false;
    }
    ++page.pins;
    TouchLocked(page_no, /*faulted=*/false);
    return PageRef{page.bytes.data(), static_cast<uint32_t>(len), page_no};
  }
  std::vector<uint8_t> bytes(len);
  Status read = region_.Read(start, len, bytes.data());
  if (!read.ok()) return read;
  stats_.bytes_read += len;
  CachedPage& page = cache_[page_no];
  page.bytes = std::move(bytes);
  page.pins = 1;
  TouchLocked(page_no, /*faulted=*/true);
  EvictLocked();
  return PageRef{page.bytes.data(), static_cast<uint32_t>(len), page_no};
}

void BufferManager::Unpin(const PageRef& ref) {
  if (ref.data == nullptr || region_.mapped()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(ref.page);
  if (it == cache_.end() || it->second.pins == 0) return;
  if (--it->second.pins == 0) {
    it->second.lru_pos = lru_.insert(lru_.end(), ref.page);
    it->second.in_lru = true;
    EvictLocked();
  }
}

Status BufferManager::ReadBytes(uint64_t offset, uint64_t len, void* out) {
  if (offset > region_.size() || len > region_.size() - offset) {
    return Status::OutOfRange("store read past end: offset " +
                              std::to_string(offset) + " + " +
                              std::to_string(len));
  }
  uint8_t* dst = static_cast<uint8_t*>(out);
  uint64_t pos = offset;
  uint64_t remaining = len;
  while (remaining > 0) {
    uint64_t page_no = pos / kPageSize;
    uint64_t in_page = pos % kPageSize;
    auto pinned = Pin(page_no);
    if (!pinned.ok()) return pinned.status();
    uint64_t take = std::min<uint64_t>(remaining, pinned->length - in_page);
    std::memcpy(dst, pinned->data + in_page, take);
    Unpin(pinned.value());
    dst += take;
    pos += take;
    remaining -= take;
  }
  return Status::Ok();
}

Result<const uint8_t*> BufferManager::View(uint64_t offset, uint64_t len,
                                           std::vector<uint8_t>* scratch) {
  if (offset > region_.size() || len > region_.size() - offset) {
    return Status::OutOfRange("store view past end: offset " +
                              std::to_string(offset) + " + " +
                              std::to_string(len));
  }
  if (region_.mapped()) {
    // Count the touches page by page without copying.
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t first = offset / kPageSize;
    uint64_t last = len == 0 ? first : (offset + len - 1) / kPageSize;
    for (uint64_t p = first; p <= last && p < stats_.total_pages; ++p) {
      TouchLocked(p, /*faulted=*/touched_[p] == 0);
    }
    return region_.data() + offset;
  }
  scratch->resize(len);
  Status st = ReadBytes(offset, len, scratch->data());
  if (!st.ok()) return st;
  return static_cast<const uint8_t*>(scratch->data());
}

BufferStats BufferManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace trail::graph::store
