#include "graph/store/store_reader.h"

#include <algorithm>
#include <cstring>

#include "obs/trace.h"

namespace trail::graph::store {

namespace {

Status Corrupt(const std::string& what) {
  return Status::ParseError("store corrupt: " + what);
}

/// Reads a little-endian u64 at `p` (alignment-safe).
uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

Result<std::unique_ptr<GraphStore>> GraphStore::Open(const std::string& path,
                                                     size_t cache_pages) {
  TRAIL_TRACE_SPAN("store.open");
  auto buffers = BufferManager::Open(path, cache_pages);
  if (!buffers.ok()) return buffers.status();
  auto s = std::make_unique<GraphStore>();
  s->buffers_ = std::move(buffers).value();
  s->path_ = path;

  StoreHeader header;
  TRAIL_RETURN_NOT_OK(s->buffers_->ReadBytes(0, sizeof(header), &header));
  if (header.magic != kStoreMagic) return Corrupt("bad magic in " + path);
  if (header.version != kStoreVersion) {
    return Corrupt("unsupported version in " + path);
  }
  if (header.page_size != kPageSize) {
    return Corrupt("unsupported page size in " + path);
  }
  if (header.checksum != Fnv1a(&header, sizeof(header) - sizeof(uint64_t))) {
    return Corrupt("header checksum mismatch in " + path);
  }
  uint64_t file_bytes = s->buffers_->file_bytes();
  if (header.file_bytes > file_bytes) {
    return Corrupt("file truncated: header claims " +
                   std::to_string(header.file_bytes) + " bytes, file has " +
                   std::to_string(file_bytes));
  }
  if (header.dir_bytes < 16 || header.dir_bytes > (1ull << 24) ||
      header.dir_offset > header.file_bytes ||
      header.dir_offset + header.dir_bytes != header.file_bytes) {
    return Corrupt("directory bounds in " + path);
  }

  std::vector<uint8_t> dir(header.dir_bytes);
  TRAIL_RETURN_NOT_OK(
      s->buffers_->ReadBytes(header.dir_offset, dir.size(), dir.data()));
  uint32_t dir_magic, count;
  std::memcpy(&dir_magic, dir.data(), 4);
  std::memcpy(&count, dir.data() + 4, 4);
  if (dir_magic != kDirectoryMagic ||
      8 + static_cast<uint64_t>(count) * sizeof(SegmentEntry) + 8 !=
          dir.size()) {
    return Corrupt("directory header in " + path);
  }
  if (LoadU64(dir.data() + dir.size() - 8) !=
      Fnv1a(dir.data(), dir.size() - 8)) {
    return Corrupt("directory checksum in " + path);
  }
  s->entries_.resize(count);
  std::memcpy(s->entries_.data(), dir.data() + 8,
              count * sizeof(SegmentEntry));

  if (header.num_commits == 0 || header.num_commits > (1u << 20)) {
    return Corrupt("commit count in " + path);
  }
  s->commits_.resize(header.num_commits);
  for (size_t i = 0; i < s->entries_.size(); ++i) {
    const SegmentEntry& entry = s->entries_[i];
    if (entry.kind < 1 ||
        entry.kind > static_cast<uint32_t>(SegmentKind::kNodePatches)) {
      return Corrupt("segment kind " + std::to_string(entry.kind));
    }
    if (entry.commit >= header.num_commits) {
      return Corrupt("segment commit out of range");
    }
    if (entry.offset % kPageSize != 0 || entry.offset < kPageSize ||
        entry.offset > header.file_bytes ||
        entry.bytes > header.file_bytes - entry.offset) {
      return Corrupt("segment bounds (kind " + std::to_string(entry.kind) +
                     ")");
    }
    CommitInfo& commit = s->commits_[entry.commit];
    if (commit.seg[entry.kind] != -1) {
      return Corrupt("duplicate segment kind " + std::to_string(entry.kind) +
                     " in commit " + std::to_string(entry.commit));
    }
    commit.seg[entry.kind] = static_cast<int>(i);
  }

  // Decode every commit's meta: watermarks must chain, the roster and event
  // count come from the newest commit.
  for (size_t c = 0; c < s->commits_.size(); ++c) {
    CommitInfo& commit = s->commits_[c];
    const SegmentEntry* meta = s->Segment(commit, SegmentKind::kMeta);
    if (meta == nullptr) {
      return Corrupt("commit " + std::to_string(c) + " has no meta segment");
    }
    if (meta->bytes < 44) return Corrupt("meta segment too short");
    std::vector<uint8_t> bytes(meta->bytes);
    TRAIL_RETURN_NOT_OK(
        s->buffers_->ReadBytes(meta->offset, meta->bytes, bytes.data()));
    commit.node_lo = LoadU64(bytes.data());
    commit.node_hi = LoadU64(bytes.data() + 8);
    commit.edge_lo = LoadU64(bytes.data() + 16);
    commit.edge_hi = LoadU64(bytes.data() + 24);
    commit.num_events = LoadU64(bytes.data() + 32);
    if (commit.node_lo > commit.node_hi || commit.edge_lo > commit.edge_hi ||
        commit.node_hi >= kInvalidNode) {
      return Corrupt("meta watermarks in commit " + std::to_string(c));
    }
    uint64_t expected_node_lo = c == 0 ? 0 : s->commits_[c - 1].node_hi;
    uint64_t expected_edge_lo = c == 0 ? 0 : s->commits_[c - 1].edge_hi;
    if (commit.node_lo != expected_node_lo ||
        commit.edge_lo != expected_edge_lo) {
      return Corrupt("commit " + std::to_string(c) +
                     " does not continue the previous watermarks");
    }
    uint32_t apt_count;
    std::memcpy(&apt_count, bytes.data() + 40, 4);
    if (apt_count > 4096) return Corrupt("apt roster count");
    std::vector<std::string> roster;
    roster.reserve(apt_count);
    uint64_t pos = 44;
    for (uint32_t a = 0; a < apt_count; ++a) {
      if (pos + 4 > bytes.size()) return Corrupt("apt roster truncated");
      uint32_t len;
      std::memcpy(&len, bytes.data() + pos, 4);
      pos += 4;
      if (len > 4096 || pos + len > bytes.size()) {
        return Corrupt("apt roster entry length");
      }
      roster.emplace_back(reinterpret_cast<const char*>(bytes.data() + pos),
                          len);
      pos += len;
    }
    s->apt_names_ = std::move(roster);
    s->num_events_ = commit.num_events;

    const bool base = c == 0;
    const SegmentKind required_base[] = {
        SegmentKind::kDict,   SegmentKind::kDictHash,
        SegmentKind::kNodes,  SegmentKind::kFeatures,
        SegmentKind::kEdges,  SegmentKind::kCsrOffsets,
        SegmentKind::kCsrRuns, SegmentKind::kPageChecksums};
    const SegmentKind required_delta[] = {
        SegmentKind::kDict,  SegmentKind::kDictHash, SegmentKind::kNodes,
        SegmentKind::kFeatures, SegmentKind::kEdges,
        SegmentKind::kNodePatches, SegmentKind::kPageChecksums};
    if (base) {
      for (SegmentKind kind : required_base) {
        if (s->Segment(commit, kind) == nullptr) {
          return Corrupt("base commit missing segment kind " +
                         std::to_string(static_cast<uint32_t>(kind)));
        }
      }
    } else {
      for (SegmentKind kind : required_delta) {
        if (s->Segment(commit, kind) == nullptr) {
          return Corrupt("delta commit missing segment kind " +
                         std::to_string(static_cast<uint32_t>(kind)));
        }
      }
    }
  }
  s->num_nodes_ = s->commits_.back().node_hi;
  s->num_edges_ = s->commits_.back().edge_hi;
  return s;
}

const SegmentEntry* GraphStore::Segment(const CommitInfo& commit,
                                        SegmentKind kind) const {
  int index = commit.seg[static_cast<uint32_t>(kind)];
  return index < 0 ? nullptr : &entries_[index];
}

Result<const GraphStore::CommitInfo*> GraphStore::CommitForNode(
    NodeId id) const {
  if (id >= num_nodes_) {
    return Status::OutOfRange("node id " + std::to_string(id) +
                              " past store size " +
                              std::to_string(num_nodes_));
  }
  // Commits are sorted by node range; almost always 1-2 of them.
  for (const CommitInfo& commit : commits_) {
    if (id >= commit.node_lo && id < commit.node_hi) return &commit;
  }
  return Corrupt("node id " + std::to_string(id) + " in no commit range");
}

Result<std::string> GraphStore::Value(NodeId id) const {
  TRAIL_ASSIGN_OR_RETURN(const CommitInfo* commit, CommitForNode(id));
  const SegmentEntry* dict = Segment(*commit, SegmentKind::kDict);
  uint64_t count = commit->node_hi - commit->node_lo;
  uint64_t i = id - commit->node_lo;
  uint64_t offsets_at = dict->offset + 16 + i * 8;
  uint8_t raw[16];
  TRAIL_RETURN_NOT_OK(buffers_->ReadBytes(offsets_at, 16, raw));
  uint64_t begin = LoadU64(raw);
  uint64_t end = LoadU64(raw + 8);
  uint64_t blob_start = 16 + (count + 1) * 8 + count;  // dict-relative
  uint64_t blob_len = dict->bytes > blob_start ? dict->bytes - blob_start : 0;
  if (begin > end || end > blob_len || end - begin > (1u << 20)) {
    return Corrupt("dictionary offsets for node " + std::to_string(id));
  }
  std::string value(end - begin, '\0');
  TRAIL_RETURN_NOT_OK(buffers_->ReadBytes(dict->offset + blob_start + begin,
                                          value.size(), value.data()));
  return value;
}

Result<NodeType> GraphStore::Type(NodeId id) const {
  TRAIL_ASSIGN_OR_RETURN(const CommitInfo* commit, CommitForNode(id));
  const SegmentEntry* dict = Segment(*commit, SegmentKind::kDict);
  uint64_t count = commit->node_hi - commit->node_lo;
  uint64_t i = id - commit->node_lo;
  uint8_t type;
  TRAIL_RETURN_NOT_OK(
      buffers_->ReadBytes(dict->offset + 16 + (count + 1) * 8 + i, 1, &type));
  if (type >= kNumNodeTypes) {
    return Corrupt("node type byte for node " + std::to_string(id));
  }
  return static_cast<NodeType>(type);
}

Result<NodeId> GraphStore::Lookup(NodeType type,
                                  std::string_view value) const {
  uint64_t hash = DictKeyHash(type, value);
  // Newest commit first: an interned key exists in exactly one commit, but
  // fresh IOCs are the common probe target on the append path.
  for (auto it = commits_.rbegin(); it != commits_.rend(); ++it) {
    const CommitInfo& commit = *it;
    const SegmentEntry* index = Segment(commit, SegmentKind::kDictHash);
    if (index == nullptr || index->bytes < 16) continue;
    uint8_t head[16];
    TRAIL_RETURN_NOT_OK(buffers_->ReadBytes(index->offset, 16, head));
    uint64_t bucket_count = LoadU64(head);
    uint64_t entry_count = LoadU64(head + 8);
    if (bucket_count == 0 || (bucket_count & (bucket_count - 1)) != 0 ||
        bucket_count > (1ull << 32)) {
      return Corrupt("dict hash bucket count");
    }
    uint64_t starts_at = index->offset + 16;
    uint64_t entries_at = starts_at + (bucket_count + 1) * 8;
    if (entries_at + entry_count * sizeof(DictHashEntry) >
        index->offset + index->bytes) {
      return Corrupt("dict hash segment bounds");
    }
    uint64_t bucket = hash & (bucket_count - 1);
    uint8_t range[16];
    TRAIL_RETURN_NOT_OK(buffers_->ReadBytes(starts_at + bucket * 8, 16, range));
    uint64_t begin = LoadU64(range);
    uint64_t end = LoadU64(range + 8);
    if (begin > end || end > entry_count) {
      return Corrupt("dict hash bucket bounds");
    }
    for (uint64_t e = begin; e < end; ++e) {
      DictHashEntry entry;
      TRAIL_RETURN_NOT_OK(buffers_->ReadBytes(
          entries_at + e * sizeof(DictHashEntry), sizeof(entry), &entry));
      if (entry.hash != hash) continue;
      if (entry.id < commit.node_lo || entry.id >= commit.node_hi) {
        return Corrupt("dict hash id out of commit range");
      }
      auto got_type = Type(entry.id);
      if (!got_type.ok()) return got_type.status();
      if (got_type.value() != type) continue;
      auto got_value = Value(entry.id);
      if (!got_value.ok()) return got_value.status();
      if (got_value.value() == value) return static_cast<NodeId>(entry.id);
    }
  }
  return kInvalidNode;
}

Result<NodeRecord> GraphStore::Node(NodeId id) const {
  TRAIL_ASSIGN_OR_RETURN(const CommitInfo* commit, CommitForNode(id));
  const SegmentEntry* nodes = Segment(*commit, SegmentKind::kNodes);
  uint64_t i = id - commit->node_lo;
  uint64_t at = 16 + i * sizeof(NodeRecord);
  if (at + sizeof(NodeRecord) > nodes->bytes) {
    return Corrupt("node record bounds for node " + std::to_string(id));
  }
  NodeRecord record;
  TRAIL_RETURN_NOT_OK(
      buffers_->ReadBytes(nodes->offset + at, sizeof(record), &record));
  if (record.type >= kNumNodeTypes) {
    return Corrupt("node record type for node " + std::to_string(id));
  }
  // Later delta commits may have patched the mutable fields (first_order /
  // report_count flip when a new report re-references an old IOC). Newest
  // patch wins; patches never cover ids at or above their commit's node_lo.
  for (size_t c = commits_.size(); c-- > 0;) {
    const CommitInfo& later = commits_[c];
    if (later.node_lo <= id) break;
    const SegmentEntry* patches = Segment(later, SegmentKind::kNodePatches);
    if (patches == nullptr) continue;
    if (patches->bytes < 8) return Corrupt("node patch segment too short");
    uint8_t head[8];
    TRAIL_RETURN_NOT_OK(buffers_->ReadBytes(patches->offset, 8, head));
    uint64_t patch_count = LoadU64(head);
    if (8 + patch_count * sizeof(NodePatch) > patches->bytes) {
      return Corrupt("node patch count");
    }
    uint64_t lo = 0, hi = patch_count;
    while (lo < hi) {
      uint64_t mid = (lo + hi) / 2;
      NodePatch patch;
      TRAIL_RETURN_NOT_OK(buffers_->ReadBytes(
          patches->offset + 8 + mid * sizeof(NodePatch), sizeof(patch),
          &patch));
      if (patch.id < id) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < patch_count) {
      NodePatch patch;
      TRAIL_RETURN_NOT_OK(buffers_->ReadBytes(
          patches->offset + 8 + lo * sizeof(NodePatch), sizeof(patch),
          &patch));
      if (patch.id == id) {
        record.label = patch.label;
        record.report_count = patch.report_count;
        record.first_order = patch.first_order;
        record.timestamp = patch.timestamp;
        break;
      }
    }
  }
  return record;
}

Status GraphStore::FeaturesFromRecord(const CommitInfo& commit,
                                      const NodeRecord& record,
                                      std::vector<float>* out) const {
  out->assign(record.feature_dim, 0.0f);
  if (record.feature_nonzeros == 0) return Status::Ok();
  const SegmentEntry* features = Segment(commit, SegmentKind::kFeatures);
  if (record.feature_offset >= features->bytes) {
    return Corrupt("feature offset out of segment");
  }
  // Each nonzero is at most a 10-byte varint plus 4 raw bits-bytes.
  uint64_t max_len = std::min<uint64_t>(
      features->bytes - record.feature_offset,
      static_cast<uint64_t>(record.feature_nonzeros) * 14);
  std::vector<uint8_t> scratch;
  auto view = buffers_->View(features->offset + record.feature_offset,
                             max_len, &scratch);
  if (!view.ok()) return view.status();
  const uint8_t* p = view.value();
  const uint8_t* end = p + max_len;
  uint64_t index = 0;
  for (uint32_t k = 0; k < record.feature_nonzeros; ++k) {
    uint64_t delta;
    if (!GetVarint(&p, end, &delta) || p + 4 > end) {
      return Corrupt("feature payload truncated");
    }
    index += delta;
    if (index >= record.feature_dim) {
      return Corrupt("feature index past dimension");
    }
    uint32_t bits;
    std::memcpy(&bits, p, 4);
    p += 4;
    std::memcpy(&(*out)[index], &bits, 4);
  }
  return Status::Ok();
}

Result<std::vector<float>> GraphStore::Features(NodeId id) const {
  auto commit = CommitForNode(id);
  if (!commit.ok()) return commit.status();
  auto record = Node(id);
  if (!record.ok()) return record.status();
  std::vector<float> out;
  TRAIL_RETURN_NOT_OK(FeaturesFromRecord(*commit.value(), record.value(), &out));
  return out;
}

Status GraphStore::DecodeBaseRun(NodeId id, std::vector<Neighbor>* out) const {
  const CommitInfo& base = commits_.front();
  const SegmentEntry* offsets = Segment(base, SegmentKind::kCsrOffsets);
  const SegmentEntry* runs = Segment(base, SegmentKind::kCsrRuns);
  uint8_t raw[16];
  TRAIL_RETURN_NOT_OK(buffers_->ReadBytes(
      offsets->offset + 8 + static_cast<uint64_t>(id) * 8, 16, raw));
  uint64_t begin = LoadU64(raw);
  uint64_t end = LoadU64(raw + 8);
  if (begin > end || end > runs->bytes) {
    return Corrupt("csr run bounds for node " + std::to_string(id));
  }
  std::vector<uint8_t> scratch;
  auto view = buffers_->View(runs->offset + begin, end - begin, &scratch);
  if (!view.ok()) return view.status();
  const uint8_t* p = view.value();
  const uint8_t* stop = p + (end - begin);
  int64_t prev = 0;
  while (p < stop) {
    uint64_t delta;
    if (!GetVarint(&p, stop, &delta) || p >= stop) {
      return Corrupt("csr run truncated for node " + std::to_string(id));
    }
    int64_t target = prev + ZigzagDecode(delta);
    prev = target;
    uint8_t meta = *p++;
    uint8_t type = meta & 0x3F;
    if (target < 0 || static_cast<uint64_t>(target) >= base.node_hi ||
        type >= kNumEdgeTypes || (meta & 0x80) != 0) {
      return Corrupt("csr run entry for node " + std::to_string(id));
    }
    out->push_back(Neighbor{static_cast<NodeId>(target),
                            static_cast<EdgeType>(type),
                            (meta & 0x40) != 0});
  }
  return Status::Ok();
}

Status GraphStore::DecodeEdges(const CommitInfo& commit,
                               std::vector<Edge>* out) const {
  const SegmentEntry* edges = Segment(commit, SegmentKind::kEdges);
  if (edges->bytes < 16) return Corrupt("edge segment too short");
  std::vector<uint8_t> bytes(edges->bytes);
  TRAIL_RETURN_NOT_OK(
      buffers_->ReadBytes(edges->offset, edges->bytes, bytes.data()));
  uint64_t edge_lo = LoadU64(bytes.data());
  uint64_t count = LoadU64(bytes.data() + 8);
  if (edge_lo != commit.edge_lo || count != commit.edge_hi - commit.edge_lo) {
    return Corrupt("edge segment watermarks");
  }
  const uint8_t* p = bytes.data() + 16;
  const uint8_t* end = bytes.data() + bytes.size();
  int64_t prev_src = 0;
  int64_t prev_dst = 0;
  out->reserve(out->size() + count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t src_delta, dst_delta;
    if (!GetVarint(&p, end, &src_delta) || !GetVarint(&p, end, &dst_delta) ||
        p >= end) {
      return Corrupt("edge list truncated");
    }
    int64_t src = prev_src + ZigzagDecode(src_delta);
    int64_t dst = prev_dst + ZigzagDecode(dst_delta);
    prev_src = src;
    prev_dst = dst;
    uint8_t type = *p++;
    if (src < 0 || dst < 0 ||
        static_cast<uint64_t>(src) >= commit.node_hi ||
        static_cast<uint64_t>(dst) >= commit.node_hi ||
        type >= kNumEdgeTypes) {
      return Corrupt("edge endpoints in commit");
    }
    out->push_back(Edge{static_cast<NodeId>(src), static_cast<NodeId>(dst),
                        static_cast<EdgeType>(type)});
  }
  return Status::Ok();
}

Status GraphStore::EnsureDeltaOverlay() const {
  std::lock_guard<std::mutex> lock(overlay_mu_);
  if (overlay_built_) return Status::Ok();
  for (size_t c = 1; c < commits_.size(); ++c) {
    std::vector<Edge> edges;
    TRAIL_RETURN_NOT_OK(DecodeEdges(commits_[c], &edges));
    for (const Edge& e : edges) {
      overlay_[e.src].push_back(Neighbor{e.dst, e.type, true});
      overlay_[e.dst].push_back(Neighbor{e.src, e.type, false});
    }
  }
  overlay_built_ = true;
  return Status::Ok();
}

Result<std::vector<Neighbor>> GraphStore::Neighbors(NodeId id) const {
  if (id >= num_nodes_) {
    return Status::OutOfRange("node id " + std::to_string(id) +
                              " past store size");
  }
  std::vector<Neighbor> out;
  if (id < commits_.front().node_hi) {
    TRAIL_RETURN_NOT_OK(DecodeBaseRun(id, &out));
  }
  if (commits_.size() > 1) {
    TRAIL_RETURN_NOT_OK(EnsureDeltaOverlay());
    std::lock_guard<std::mutex> lock(overlay_mu_);
    auto it = overlay_.find(id);
    if (it != overlay_.end()) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  return out;
}

Status GraphStore::Materialize(PropertyGraph* out,
                               std::vector<std::string>* apt_names,
                               uint64_t* num_events) const {
  TRAIL_TRACE_SPAN("store.materialize");
  if (out->num_nodes() != 0) {
    return Status::FailedPrecondition(
        "Materialize needs an empty PropertyGraph");
  }
  out->Reserve(num_nodes_, num_edges_);
  std::vector<Edge> all_edges;
  all_edges.reserve(num_edges_);
  for (const CommitInfo& commit : commits_) {
    const SegmentEntry* dict = Segment(commit, SegmentKind::kDict);
    const SegmentEntry* nodes = Segment(commit, SegmentKind::kNodes);
    const uint64_t count = commit.node_hi - commit.node_lo;

    // Dictionary replay: AddNode in id order must hand back the stored ids.
    if (dict->bytes < 16 + (count + 1) * 8 + count) {
      return Corrupt("dict segment too short");
    }
    std::vector<uint8_t> dict_scratch;
    auto dict_view = buffers_->View(dict->offset, dict->bytes, &dict_scratch);
    if (!dict_view.ok()) return dict_view.status();
    const uint8_t* d = dict_view.value();
    if (LoadU64(d) != commit.node_lo || LoadU64(d + 8) != count) {
      return Corrupt("dict watermarks");
    }
    const uint8_t* offsets = d + 16;
    const uint8_t* types = offsets + (count + 1) * 8;
    const char* blob = reinterpret_cast<const char*>(types + count);
    uint64_t blob_len = dict->bytes - (16 + (count + 1) * 8 + count);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t begin = LoadU64(offsets + i * 8);
      uint64_t end = LoadU64(offsets + (i + 1) * 8);
      uint8_t type = types[i];
      if (begin > end || end > blob_len || type >= kNumNodeTypes) {
        return Corrupt("dict entry " + std::to_string(i));
      }
      // Bulk append without interning: ids are dense in dictionary order by
      // construction. Key uniqueness (dictionary bijectivity) is enforced by
      // StoreValidate and re-checked by any later CheckConsistency, which
      // rebuilds the intern index; paying 2M+ hash inserts here would
      // dominate the load path.
      NodeId got = out->AppendNodeRow(
          static_cast<NodeType>(type),
          std::string_view(blob + begin, end - begin));
      if (got != commit.node_lo + i) {
        return Corrupt("dictionary ids not dense: id " +
                       std::to_string(commit.node_lo + i) + " appended as " +
                       std::to_string(got));
      }
    }

    // Node payloads + features.
    if (nodes->bytes < 16 + count * sizeof(NodeRecord)) {
      return Corrupt("node segment too short");
    }
    std::vector<uint8_t> node_scratch;
    auto node_view =
        buffers_->View(nodes->offset, nodes->bytes, &node_scratch);
    if (!node_view.ok()) return node_view.status();
    const uint8_t* n = node_view.value();
    if (LoadU64(n) != commit.node_lo || LoadU64(n + 8) != count) {
      return Corrupt("node segment watermarks");
    }
    // One view of the whole feature segment per commit: per-node View calls
    // each take the buffer-pool lock for touch accounting, which dominates
    // at 2M+ nodes. The decode then runs lock-free off the base pointer,
    // straight into each node's slot — the dense feature plane is the
    // largest payload, and a scratch-then-copy would double its traffic.
    const SegmentEntry* feats = Segment(commit, SegmentKind::kFeatures);
    std::vector<uint8_t> feat_scratch;
    auto feat_view = buffers_->View(feats->offset, feats->bytes, &feat_scratch);
    if (!feat_view.ok()) return feat_view.status();
    const uint8_t* feat_base = feat_view.value();
    const uint8_t* feat_end = feat_base + feats->bytes;
    for (uint64_t i = 0; i < count; ++i) {
      NodeRecord record;
      std::memcpy(&record, n + 16 + i * sizeof(NodeRecord), sizeof(record));
      NodeId id = static_cast<NodeId>(commit.node_lo + i);
      if (record.type >= kNumNodeTypes ||
          static_cast<NodeType>(record.type) != out->type(id)) {
        return Corrupt("node record type disagrees with dictionary");
      }
      out->SetLabel(id, record.label);
      out->SetFirstOrder(id, record.first_order != 0);
      out->SetReportCount(id, static_cast<int>(record.report_count));
      out->SetTimestamp(id, record.timestamp);
      if (record.feature_dim > 0) {
        std::vector<float>* f = out->MutableFeatures(id);
        f->assign(record.feature_dim, 0.0f);
        if (record.feature_nonzeros > 0) {
          if (record.feature_offset >= feats->bytes) {
            return Corrupt("feature offset out of segment");
          }
          const uint8_t* p = feat_base + record.feature_offset;
          uint64_t index = 0;
          for (uint32_t k = 0; k < record.feature_nonzeros; ++k) {
            uint64_t delta;
            if (!GetVarint(&p, feat_end, &delta) || p + 4 > feat_end) {
              return Corrupt("feature payload truncated");
            }
            index += delta;
            if (index >= record.feature_dim) {
              return Corrupt("feature index past dimension");
            }
            std::memcpy(&(*f)[index], p, 4);
            p += 4;
          }
        }
      }
    }

    // Edges across all commits are collected and appended in one batch below:
    // concatenation in commit order is the original insertion order, and the
    // batch path can reserve every adjacency list to its exact final degree.
    TRAIL_RETURN_NOT_OK(DecodeEdges(commit, &all_edges));

    // Replay the commit's patches to older nodes' mutable fields.
    const SegmentEntry* patches = Segment(commit, SegmentKind::kNodePatches);
    if (patches != nullptr) {
      if (patches->bytes < 8) return Corrupt("node patch segment too short");
      std::vector<uint8_t> patch_bytes(patches->bytes);
      TRAIL_RETURN_NOT_OK(buffers_->ReadBytes(patches->offset, patches->bytes,
                                              patch_bytes.data()));
      uint64_t patch_count = LoadU64(patch_bytes.data());
      if (8 + patch_count * sizeof(NodePatch) > patches->bytes) {
        return Corrupt("node patch count");
      }
      for (uint64_t i = 0; i < patch_count; ++i) {
        NodePatch patch;
        std::memcpy(&patch, patch_bytes.data() + 8 + i * sizeof(NodePatch),
                    sizeof(patch));
        if (patch.id >= commit.node_lo) {
          return Corrupt("node patch id not older than its commit");
        }
        out->SetLabel(patch.id, patch.label);
        out->SetFirstOrder(patch.id, patch.first_order != 0);
        out->SetReportCount(patch.id, static_cast<int>(patch.report_count));
        out->SetTimestamp(patch.id, patch.timestamp);
      }
    }
  }
  {
    Status st = out->AppendEdgeBatch(all_edges);
    if (!st.ok()) return Corrupt("edge replay: " + st.message());
  }
  if (out->num_nodes() != num_nodes_ || out->num_edges() != num_edges_) {
    return Corrupt("materialized counts disagree with meta");
  }
  if (apt_names != nullptr) *apt_names = apt_names_;
  if (num_events != nullptr) *num_events = num_events_;
  return Status::Ok();
}

Status GraphStore::Validate() const {
  TRAIL_TRACE_SPAN("store.validate");
  // Segment payload checksums.
  for (const SegmentEntry& entry : entries_) {
    std::vector<uint8_t> scratch;
    auto view = buffers_->View(entry.offset, entry.bytes, &scratch);
    if (!view.ok()) return view.status();
    if (Fnv1a(view.value(), entry.bytes) != entry.checksum) {
      return Corrupt("segment checksum (kind " + std::to_string(entry.kind) +
                     ", commit " + std::to_string(entry.commit) + ")");
    }
  }
  // Padding between a segment payload and the next page boundary is written
  // as zeros. Data-segment padding is already covered by page checksums, but
  // the page-checksum segment cannot cover its own pages, so verify every
  // pad region explicitly — no byte of the file past the header page escapes
  // validation.
  for (const SegmentEntry& entry : entries_) {
    uint64_t pad_begin = entry.offset + entry.bytes;
    uint64_t pad_end = PageAlign(pad_begin);
    if (pad_end == pad_begin) continue;
    std::vector<uint8_t> scratch;
    auto view = buffers_->View(pad_begin, pad_end - pad_begin, &scratch);
    if (!view.ok()) return view.status();
    for (uint64_t i = 0; i < pad_end - pad_begin; ++i) {
      if (view.value()[i] != 0) {
        return Corrupt("segment padding not zero at byte " +
                       std::to_string(pad_begin + i));
      }
    }
  }
  // Per-page checksums of every commit's data pages.
  for (const CommitInfo& commit : commits_) {
    const SegmentEntry* checks = Segment(commit, SegmentKind::kPageChecksums);
    if (checks == nullptr) return Corrupt("missing page checksum segment");
    if (checks->bytes < 16) return Corrupt("page checksum segment too short");
    std::vector<uint8_t> bytes(checks->bytes);
    TRAIL_RETURN_NOT_OK(
        buffers_->ReadBytes(checks->offset, checks->bytes, bytes.data()));
    uint64_t first_page = LoadU64(bytes.data());
    uint64_t page_count = LoadU64(bytes.data() + 8);
    if (16 + page_count * 8 > checks->bytes) {
      return Corrupt("page checksum count");
    }
    for (uint64_t p = 0; p < page_count; ++p) {
      auto pinned = buffers_->Pin(first_page + p);
      if (!pinned.ok()) return pinned.status();
      uint64_t sum;
      if (pinned->length == kPageSize) {
        sum = Fnv1a(pinned->data, kPageSize);
      } else {
        // Final file page may be short on disk; checksums cover the padded
        // page the writer laid out.
        std::vector<uint8_t> padded(kPageSize, 0);
        std::memcpy(padded.data(), pinned->data, pinned->length);
        sum = Fnv1a(padded.data(), kPageSize);
      }
      buffers_->Unpin(pinned.value());
      if (sum != LoadU64(bytes.data() + 16 + p * 8)) {
        return Corrupt("page checksum at page " +
                       std::to_string(first_page + p));
      }
    }
  }
  return Status::Ok();
}

Status GraphStore::ValidateStructure() const {
  TRAIL_TRACE_SPAN("store.validate_structure");
  for (const CommitInfo& commit : commits_) {
    const uint64_t count = commit.node_hi - commit.node_lo;
    const SegmentEntry* dict = Segment(commit, SegmentKind::kDict);
    const SegmentEntry* index = Segment(commit, SegmentKind::kDictHash);
    const SegmentEntry* nodes = Segment(commit, SegmentKind::kNodes);
    const SegmentEntry* features = Segment(commit, SegmentKind::kFeatures);

    // Dictionary offsets: monotone, in bounds.
    if (dict->bytes < 16 + (count + 1) * 8 + count) {
      return Corrupt("dict segment too short");
    }
    uint64_t blob_len = dict->bytes - (16 + (count + 1) * 8 + count);
    uint64_t prev_off = 0;
    for (uint64_t i = 0; i <= count; ++i) {
      uint8_t raw[8];
      TRAIL_RETURN_NOT_OK(
          buffers_->ReadBytes(dict->offset + 16 + i * 8, 8, raw));
      uint64_t off = LoadU64(raw);
      if (off < prev_off || off > blob_len) {
        return Corrupt("dictionary offsets not monotone at entry " +
                       std::to_string(i));
      }
      prev_off = off;
    }
    if (prev_off != blob_len) {
      return Corrupt("dictionary blob length disagrees with offsets");
    }

    // Hash-index bijectivity: every id of the commit resolves back to
    // itself through Lookup, and the index has exactly one entry per id.
    if (index->bytes < 16) return Corrupt("dict hash segment too short");
    uint8_t head[16];
    TRAIL_RETURN_NOT_OK(buffers_->ReadBytes(index->offset, 16, head));
    uint64_t bucket_count = LoadU64(head);
    uint64_t entry_count = LoadU64(head + 8);
    if (entry_count != count) {
      return Corrupt("dict hash entry count disagrees with node count");
    }
    if (bucket_count == 0 || (bucket_count & (bucket_count - 1)) != 0) {
      return Corrupt("dict hash bucket count not a power of two");
    }
    uint64_t entries_at = index->offset + 16 + (bucket_count + 1) * 8;
    if (entries_at + entry_count * sizeof(DictHashEntry) >
        index->offset + index->bytes) {
      return Corrupt("dict hash segment bounds");
    }
    std::vector<uint8_t> seen(count, 0);
    uint64_t prev_start = 0;
    for (uint64_t b = 0; b <= bucket_count; ++b) {
      uint8_t raw[8];
      TRAIL_RETURN_NOT_OK(
          buffers_->ReadBytes(index->offset + 16 + b * 8, 8, raw));
      uint64_t start = LoadU64(raw);
      if (start < prev_start || start > entry_count) {
        return Corrupt("dict hash bucket starts not monotone");
      }
      prev_start = start;
    }
    if (prev_start != entry_count) {
      return Corrupt("dict hash bucket starts do not cover all entries");
    }
    for (uint64_t e = 0; e < entry_count; ++e) {
      DictHashEntry entry;
      TRAIL_RETURN_NOT_OK(buffers_->ReadBytes(
          entries_at + e * sizeof(DictHashEntry), sizeof(entry), &entry));
      if (entry.id < commit.node_lo || entry.id >= commit.node_hi) {
        return Corrupt("dict hash id out of range");
      }
      uint64_t slot = entry.id - commit.node_lo;
      if (seen[slot] != 0) {
        return Corrupt("dict hash lists id " + std::to_string(entry.id) +
                       " twice");
      }
      seen[slot] = 1;
      auto type = Type(entry.id);
      if (!type.ok()) return type.status();
      auto value = Value(entry.id);
      if (!value.ok()) return value.status();
      if (DictKeyHash(type.value(), value.value()) != entry.hash) {
        return Corrupt("dict hash disagrees with dictionary for id " +
                       std::to_string(entry.id));
      }
      auto found = Lookup(type.value(), value.value());
      if (!found.ok()) return found.status();
      if (found.value() != entry.id) {
        return Corrupt("dictionary not bijective: Lookup(" +
                       std::to_string(entry.id) + ") returned " +
                       std::to_string(found.value()));
      }
    }

    // Node records: bounds + feature references.
    if (nodes->bytes < 16 + count * sizeof(NodeRecord)) {
      return Corrupt("node segment too short");
    }
    for (uint64_t i = 0; i < count; ++i) {
      NodeRecord record;
      TRAIL_RETURN_NOT_OK(buffers_->ReadBytes(
          nodes->offset + 16 + i * sizeof(NodeRecord), sizeof(record),
          &record));
      if (record.type >= kNumNodeTypes) return Corrupt("node record type");
      if (record.feature_nonzeros > 0 &&
          record.feature_offset >= features->bytes) {
        return Corrupt("feature reference out of segment");
      }
      if (record.feature_nonzeros > record.feature_dim) {
        return Corrupt("more feature nonzeros than dimensions");
      }
    }

    // Edges decode cleanly and stay in range (DecodeEdges bounds-checks).
    std::vector<Edge> edges;
    TRAIL_RETURN_NOT_OK(DecodeEdges(commit, &edges));

    // Node patches: sorted strictly by id, every id older than the commit.
    const SegmentEntry* patches = Segment(commit, SegmentKind::kNodePatches);
    if (patches != nullptr) {
      if (patches->bytes < 8) return Corrupt("node patch segment too short");
      uint8_t head[8];
      TRAIL_RETURN_NOT_OK(buffers_->ReadBytes(patches->offset, 8, head));
      uint64_t patch_count = LoadU64(head);
      if (8 + patch_count * sizeof(NodePatch) > patches->bytes) {
        return Corrupt("node patch count");
      }
      uint64_t prev_id = 0;
      for (uint64_t i = 0; i < patch_count; ++i) {
        NodePatch patch;
        TRAIL_RETURN_NOT_OK(buffers_->ReadBytes(
            patches->offset + 8 + i * sizeof(NodePatch), sizeof(patch),
            &patch));
        if (patch.id >= commit.node_lo) {
          return Corrupt("node patch id not older than its commit");
        }
        if (i > 0 && patch.id <= prev_id) {
          return Corrupt("node patches not sorted by id");
        }
        prev_id = patch.id;
        if (patch.label < kNoLabel) return Corrupt("node patch label");
      }
    }
  }

  // Base CSR offsets: monotone byte offsets covering the runs segment.
  const CommitInfo& base = commits_.front();
  const SegmentEntry* offsets = Segment(base, SegmentKind::kCsrOffsets);
  const SegmentEntry* runs = Segment(base, SegmentKind::kCsrRuns);
  if (offsets != nullptr && runs != nullptr) {
    uint8_t raw[8];
    TRAIL_RETURN_NOT_OK(buffers_->ReadBytes(offsets->offset, 8, raw));
    uint64_t node_count = LoadU64(raw);
    if (node_count != base.node_hi - base.node_lo) {
      return Corrupt("csr node count disagrees with meta");
    }
    if (offsets->bytes < 8 + (node_count + 1) * 8) {
      return Corrupt("csr offsets segment too short");
    }
    uint64_t prev = 0;
    for (uint64_t i = 0; i <= node_count; ++i) {
      TRAIL_RETURN_NOT_OK(
          buffers_->ReadBytes(offsets->offset + 8 + i * 8, 8, raw));
      uint64_t off = LoadU64(raw);
      if (off < prev || off > runs->bytes) {
        return Corrupt("csr offsets not monotone at node " +
                       std::to_string(i));
      }
      prev = off;
    }
    if (prev != runs->bytes) {
      return Corrupt("csr runs length disagrees with final offset");
    }
  }
  return Status::Ok();
}

Status StoreValidate(const std::string& path) {
  auto store = GraphStore::Open(path);
  if (!store.ok()) return store.status();
  TRAIL_RETURN_NOT_OK(store.value()->Validate());
  return store.value()->ValidateStructure();
}

}  // namespace trail::graph::store
