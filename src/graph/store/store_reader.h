#ifndef TRAIL_GRAPH_STORE_STORE_READER_H_
#define TRAIL_GRAPH_STORE_STORE_READER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/property_graph.h"
#include "graph/store/buffer_manager.h"
#include "graph/store/format.h"
#include "graph/types.h"
#include "util/status.h"

namespace trail::graph::store {

/// Read side of the TKGS segment store. `Open` touches O(1) pages — header,
/// directory, and the per-commit meta segments — so opening a paper-scale
/// store is instant; everything else pages in on demand through the
/// BufferManager:
///
///  * `Lookup`/`Value`/`Node`/`Features`/`Neighbors` fault only the pages a
///    query actually crosses (hash bucket, dictionary slice, CSR run).
///  * `Materialize` streams every commit back into a PropertyGraph that is
///    bit-identical to the one the writer saw (same ids, same adjacency
///    order, same feature bits) — the warm path Trail uses at startup.
///  * `Validate` re-checksums every segment and data page; `ValidateStructure`
///    checks the structural invariants (dictionary bijectivity, CSR offset
///    monotonicity, record bounds) without checksums, so tests can verify
///    each layer independently. Corrupt or truncated input fails with a
///    Status on every path — never UB.
class GraphStore {
 public:
  /// Watermarks and segment handles of one commit (base build is commit 0).
  struct CommitInfo {
    uint64_t node_lo = 0;
    uint64_t node_hi = 0;
    uint64_t edge_lo = 0;
    uint64_t edge_hi = 0;
    uint64_t num_events = 0;
    /// Index into segments() per SegmentKind; -1 when absent.
    int seg[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                   -1, -1, -1, -1, -1, -1, -1, -1};
  };

  static Result<std::unique_ptr<GraphStore>> Open(
      const std::string& path,
      size_t cache_pages = BufferManager::kDefaultCachePages);

  GraphStore() = default;
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  /// Point lookup by (type, value); kInvalidNode when absent. Touches the
  /// hash bucket page(s) plus the dictionary pages of candidate ids.
  Result<NodeId> Lookup(NodeType type, std::string_view value) const;

  Result<std::string> Value(NodeId id) const;
  Result<NodeType> Type(NodeId id) const;
  Result<NodeRecord> Node(NodeId id) const;

  /// Decodes the node's sparse feature payload back to the dense vector
  /// (bit-exact floats; empty when the node has none).
  Result<std::vector<float>> Features(NodeId id) const;

  /// Undirected neighbors in exactly the heap graph's adjacency order: the
  /// base commit's CSR run followed by delta-commit edges in insertion
  /// order. First call that needs deltas builds the overlay lazily.
  Result<std::vector<Neighbor>> Neighbors(NodeId id) const;

  /// Rebuilds the full PropertyGraph (and APT roster / event count) by
  /// replaying every commit in order. The result is bit-identical to the
  /// graph that was written: same interning, ids, adjacency order, edge
  /// list, feature bits.
  Status Materialize(PropertyGraph* out, std::vector<std::string>* apt_names,
                     uint64_t* num_events) const;

  /// Deep integrity: every segment checksum and every data-page checksum.
  Status Validate() const;

  /// Structural invariants without checksums: dictionary bijectivity (every
  /// id resolves back to itself through the hash index), CSR offset
  /// monotonicity, node/edge record bounds, commit watermark continuity.
  Status ValidateStructure() const;

  uint64_t num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return num_edges_; }
  uint64_t num_events() const { return num_events_; }
  uint64_t num_commits() const { return commits_.size(); }
  const std::vector<std::string>& apt_names() const { return apt_names_; }
  const std::vector<SegmentEntry>& segments() const { return entries_; }
  const std::vector<CommitInfo>& commits() const { return commits_; }
  BufferStats buffer_stats() const { return buffers_->stats(); }
  bool mmapped() const { return buffers_->mmapped(); }

 private:
  const SegmentEntry* Segment(const CommitInfo& commit, SegmentKind kind) const;
  Result<const CommitInfo*> CommitForNode(NodeId id) const;
  /// Decodes one base-CSR neighbor run into `out`.
  Status DecodeBaseRun(NodeId id, std::vector<Neighbor>* out) const;
  /// Decodes a commit's kEdges segment, appending to `out`.
  Status DecodeEdges(const CommitInfo& commit, std::vector<Edge>* out) const;
  Status EnsureDeltaOverlay() const;
  Status FeaturesFromRecord(const CommitInfo& commit, const NodeRecord& record,
                            std::vector<float>* out) const;

  std::unique_ptr<BufferManager> buffers_;
  std::string path_;
  std::vector<SegmentEntry> entries_;
  std::vector<CommitInfo> commits_;
  std::vector<std::string> apt_names_;
  uint64_t num_nodes_ = 0;
  uint64_t num_edges_ = 0;
  uint64_t num_events_ = 0;

  /// Lazily built adjacency overlay for delta commits (commit >= 1).
  mutable std::mutex overlay_mu_;
  mutable bool overlay_built_ = false;
  mutable std::unordered_map<NodeId, std::vector<Neighbor>> overlay_;
};

/// Opens `path` and runs both validation passes; the `store-validate` cli
/// verb and the corruption tests go through this.
Status StoreValidate(const std::string& path);

}  // namespace trail::graph::store

#endif  // TRAIL_GRAPH_STORE_STORE_READER_H_
