#include "graph/store/store_writer.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>

#include "graph/store/format.h"
#include "graph/store/store_reader.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/binary_io.h"
#include "util/logging.h"

namespace trail::graph::store {

namespace {

struct SegmentBuf {
  SegmentKind kind;
  std::vector<uint8_t> bytes;
};

SegmentBuf BuildMeta(const PropertyGraph& graph,
                     const std::vector<std::string>& apt_names,
                     uint64_t num_events, uint64_t node_lo, uint64_t edge_lo) {
  SegmentBuf seg{SegmentKind::kMeta, {}};
  AppendPod(&seg.bytes, node_lo);
  AppendPod(&seg.bytes, static_cast<uint64_t>(graph.num_nodes()));
  AppendPod(&seg.bytes, edge_lo);
  AppendPod(&seg.bytes, static_cast<uint64_t>(graph.num_edges()));
  AppendPod(&seg.bytes, num_events);
  AppendPod(&seg.bytes, static_cast<uint32_t>(apt_names.size()));
  for (const std::string& name : apt_names) {
    AppendPod(&seg.bytes, static_cast<uint32_t>(name.size()));
    AppendRaw(&seg.bytes, name.data(), name.size());
  }
  return seg;
}

SegmentBuf BuildDict(const PropertyGraph& graph, uint64_t lo, uint64_t hi) {
  SegmentBuf seg{SegmentKind::kDict, {}};
  const uint64_t count = hi - lo;
  AppendPod(&seg.bytes, lo);
  AppendPod(&seg.bytes, count);
  // Blob-relative value offsets, then the type bytes, then the blob.
  uint64_t running = 0;
  for (uint64_t i = 0; i < count; ++i) {
    AppendPod(&seg.bytes, running);
    running += graph.value(static_cast<NodeId>(lo + i)).size();
  }
  AppendPod(&seg.bytes, running);
  for (uint64_t i = 0; i < count; ++i) {
    seg.bytes.push_back(
        static_cast<uint8_t>(graph.type(static_cast<NodeId>(lo + i))));
  }
  for (uint64_t i = 0; i < count; ++i) {
    const std::string& value = graph.value(static_cast<NodeId>(lo + i));
    AppendRaw(&seg.bytes, value.data(), value.size());
  }
  return seg;
}

SegmentBuf BuildDictHash(const PropertyGraph& graph, uint64_t lo,
                         uint64_t hi) {
  SegmentBuf seg{SegmentKind::kDictHash, {}};
  const uint64_t count = hi - lo;
  uint64_t bucket_count = 1;
  while (bucket_count < count * 2) bucket_count <<= 1;
  std::vector<uint64_t> hashes(count);
  std::vector<uint64_t> bucket_sizes(bucket_count, 0);
  for (uint64_t i = 0; i < count; ++i) {
    NodeId id = static_cast<NodeId>(lo + i);
    hashes[i] = DictKeyHash(graph.type(id), graph.value(id));
    ++bucket_sizes[hashes[i] & (bucket_count - 1)];
  }
  std::vector<uint64_t> starts(bucket_count + 1, 0);
  for (uint64_t b = 0; b < bucket_count; ++b) {
    starts[b + 1] = starts[b] + bucket_sizes[b];
  }
  // Counting sort by bucket, stable in id order.
  std::vector<DictHashEntry> entries(count);
  std::vector<uint64_t> cursor(starts.begin(), starts.end() - 1);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t b = hashes[i] & (bucket_count - 1);
    entries[cursor[b]++] = DictHashEntry{hashes[i],
                                         static_cast<uint32_t>(lo + i), 0};
  }
  AppendPod(&seg.bytes, bucket_count);
  AppendPod(&seg.bytes, count);
  AppendRaw(&seg.bytes, starts.data(), starts.size() * sizeof(uint64_t));
  AppendRaw(&seg.bytes, entries.data(),
            entries.size() * sizeof(DictHashEntry));
  return seg;
}

Status BuildNodesAndFeatures(const PropertyGraph& graph, uint64_t lo,
                             uint64_t hi, SegmentBuf* nodes,
                             SegmentBuf* features) {
  nodes->kind = SegmentKind::kNodes;
  features->kind = SegmentKind::kFeatures;
  const uint64_t count = hi - lo;
  AppendPod(&nodes->bytes, lo);
  AppendPod(&nodes->bytes, count);
  for (uint64_t i = 0; i < count; ++i) {
    NodeId id = static_cast<NodeId>(lo + i);
    const std::vector<float>& f = graph.features(id);
    if (f.size() > 65535) {
      return Status::InvalidArgument(
          "feature vector too wide for the store format: " +
          std::to_string(f.size()));
    }
    NodeRecord record;
    record.label = graph.label(id);
    record.report_count = static_cast<uint32_t>(graph.report_count(id));
    record.timestamp = graph.timestamp(id);
    record.feature_offset = features->bytes.size();
    record.feature_dim = static_cast<uint16_t>(f.size());
    record.type = static_cast<uint8_t>(graph.type(id));
    record.first_order = graph.first_order(id) ? 1 : 0;
    // Sparse encoding: one-hot-heavy IOC vectors are almost all zeros, so
    // (index-delta varint, raw f32 bits) pairs shrink the payload ~20x
    // while round-tripping every value bit-exactly.
    uint32_t nonzeros = 0;
    uint64_t prev = 0;
    for (uint64_t j = 0; j < f.size(); ++j) {
      uint32_t bits;
      std::memcpy(&bits, &f[j], sizeof(bits));
      if (bits == 0) continue;  // +0.0f exactly; -0.0f has the sign bit set
      PutVarint(&features->bytes, j - prev);
      prev = j;
      AppendPod(&features->bytes, bits);
      ++nonzeros;
    }
    record.feature_nonzeros = nonzeros;
    AppendPod(&nodes->bytes, record);
  }
  return Status::Ok();
}

SegmentBuf BuildEdges(const PropertyGraph& graph, uint64_t edge_lo,
                      uint64_t edge_hi) {
  SegmentBuf seg{SegmentKind::kEdges, {}};
  AppendPod(&seg.bytes, edge_lo);
  AppendPod(&seg.bytes, edge_hi - edge_lo);
  int64_t prev_src = 0;
  int64_t prev_dst = 0;
  const std::vector<Edge>& edges = graph.edges();
  for (uint64_t i = edge_lo; i < edge_hi; ++i) {
    const Edge& e = edges[i];
    PutVarint(&seg.bytes, ZigzagEncode(static_cast<int64_t>(e.src) - prev_src));
    PutVarint(&seg.bytes, ZigzagEncode(static_cast<int64_t>(e.dst) - prev_dst));
    seg.bytes.push_back(static_cast<uint8_t>(e.type));
    prev_src = static_cast<int64_t>(e.src);
    prev_dst = static_cast<int64_t>(e.dst);
  }
  return seg;
}

void BuildCsr(const PropertyGraph& graph, SegmentBuf* offsets,
              SegmentBuf* runs) {
  offsets->kind = SegmentKind::kCsrOffsets;
  runs->kind = SegmentKind::kCsrRuns;
  const uint64_t n = graph.num_nodes();
  std::vector<uint64_t> byte_offsets;
  byte_offsets.reserve(n + 1);
  byte_offsets.push_back(0);
  for (NodeId v = 0; v < n; ++v) {
    int64_t prev = 0;
    for (const Neighbor& nb : graph.neighbors(v)) {
      PutVarint(&runs->bytes, ZigzagEncode(static_cast<int64_t>(nb.node) - prev));
      prev = static_cast<int64_t>(nb.node);
      runs->bytes.push_back(static_cast<uint8_t>(nb.type) |
                            (nb.is_outgoing ? 0x40 : 0));
    }
    byte_offsets.push_back(runs->bytes.size());
  }
  AppendPod(&offsets->bytes, n);
  AppendRaw(&offsets->bytes, byte_offsets.data(),
            byte_offsets.size() * sizeof(uint64_t));
}

/// Pushes stdio buffers through to stable storage. The fsync is the write
/// barrier the commit protocol depends on: without it the kernel may
/// persist the new header before the data and directory it points at.
Status FlushAndSync(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0) return Status::IoError("flush failed: " + path);
  if (fsync(fileno(f)) != 0) return Status::IoError("fsync failed: " + path);
  return Status::Ok();
}

/// Writes the staged segments after `data_start`, then the page-checksum
/// segment, the full directory (old entries + new), and finally — behind an
/// fsync barrier — the header. Until that header lands, the old header and
/// directory are untouched on disk, so a crash at any point leaves the
/// previously committed store readable.
Result<StoreWriteStats> CommitSegments(
    const std::string& path, bool append, uint64_t data_start,
    uint32_t commit, std::vector<SegmentEntry> entries,
    std::vector<SegmentBuf> segments, uint64_t num_nodes,
    uint64_t num_edges) {
  FilePtr f(std::fopen(path.c_str(), append ? "rb+" : "wb+"));
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  if (append) {
    // A previous append may have crashed after writing data but before its
    // header: drop any bytes past the committed region (data_start is the
    // first page after the committed directory) so the new file ends
    // exactly at its directory.
    if (ftruncate(fileno(f.get()), static_cast<off_t>(data_start)) != 0) {
      return Status::IoError("truncate failed: " + path);
    }
  }

  auto write_at = [&](uint64_t offset, const void* data,
                      size_t len) -> Status {
    if (std::fseek(f.get(), static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IoError("seek failed in " + path);
    }
    if (len > 0 && std::fwrite(data, 1, len, f.get()) != len) {
      return Status::IoError("short write: " + path);
    }
    return Status::Ok();
  };

  uint64_t commit_bytes = 0;
  uint64_t offset = data_start;
  for (SegmentBuf& seg : segments) {
    SegmentEntry entry;
    entry.kind = static_cast<uint32_t>(seg.kind);
    entry.commit = commit;
    entry.offset = offset;
    entry.bytes = seg.bytes.size();
    entry.checksum = Fnv1a(seg.bytes.data(), seg.bytes.size());
    // Zero-pad to the page boundary so page checksums are well defined.
    seg.bytes.resize(PageAlign(seg.bytes.size()), 0);
    TRAIL_RETURN_NOT_OK(write_at(offset, seg.bytes.data(), seg.bytes.size()));
    entries.push_back(entry);
    commit_bytes += entry.bytes;
    offset += seg.bytes.size();
  }

  // Page checksums for this commit's data pages, computed from the staged
  // buffers (they are exactly what landed on disk, padding included).
  SegmentBuf checks{SegmentKind::kPageChecksums, {}};
  {
    uint64_t first_page = data_start / kPageSize;
    uint64_t page_count = (offset - data_start) / kPageSize;
    AppendPod(&checks.bytes, first_page);
    AppendPod(&checks.bytes, page_count);
    for (const SegmentBuf& seg : segments) {
      for (size_t p = 0; p < seg.bytes.size(); p += kPageSize) {
        uint64_t sum = Fnv1a(seg.bytes.data() + p, kPageSize);
        AppendPod(&checks.bytes, sum);
      }
    }
  }
  {
    SegmentEntry entry;
    entry.kind = static_cast<uint32_t>(SegmentKind::kPageChecksums);
    entry.commit = commit;
    entry.offset = offset;
    entry.bytes = checks.bytes.size();
    entry.checksum = Fnv1a(checks.bytes.data(), checks.bytes.size());
    checks.bytes.resize(PageAlign(checks.bytes.size()), 0);
    TRAIL_RETURN_NOT_OK(write_at(offset, checks.bytes.data(),
                                 checks.bytes.size()));
    entries.push_back(entry);
    commit_bytes += entry.bytes;
    offset += checks.bytes.size();
  }

  // Directory: every segment of every commit, oldest first.
  std::vector<uint8_t> dir;
  AppendPod(&dir, kDirectoryMagic);
  AppendPod(&dir, static_cast<uint32_t>(entries.size()));
  for (const SegmentEntry& entry : entries) AppendPod(&dir, entry);
  AppendPod(&dir, Fnv1a(dir.data(), dir.size()));
  uint64_t dir_offset = offset;
  TRAIL_RETURN_NOT_OK(write_at(dir_offset, dir.data(), dir.size()));
  // Barrier: data and directory must be durable before the header that
  // makes them reachable. Only then does the header switch commits.
  TRAIL_RETURN_NOT_OK(FlushAndSync(f.get(), path));

  StoreHeader header;
  header.file_bytes = dir_offset + dir.size();
  header.dir_offset = dir_offset;
  header.dir_bytes = dir.size();
  header.num_commits = commit + 1;
  header.checksum = Fnv1a(&header, sizeof(header) - sizeof(uint64_t));
  std::vector<uint8_t> header_page(kPageSize, 0);
  std::memcpy(header_page.data(), &header, sizeof(header));
  TRAIL_RETURN_NOT_OK(write_at(0, header_page.data(), header_page.size()));
  TRAIL_RETURN_NOT_OK(FlushAndSync(f.get(), path));

  StoreWriteStats stats;
  stats.file_bytes = header.file_bytes;
  stats.total_pages = (header.file_bytes + kPageSize - 1) / kPageSize;
  stats.commit_bytes = commit_bytes;
  stats.num_commits = header.num_commits;
  stats.num_nodes = num_nodes;
  stats.num_edges = num_edges;
  TRAIL_METRIC_INC("store.commits");
  TRAIL_METRIC_SET("store.file_bytes", static_cast<double>(stats.file_bytes));
  return stats;
}

/// Reads and validates just the header + directory of an existing store (the
/// append path needs the old entries and watermarks without paging data in).
Status ReadHeaderAndDirectory(const std::string& path, StoreHeader* header,
                              std::vector<SegmentEntry>* entries) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  BinaryReader r(f.get());
  r.Raw(header, sizeof(*header));
  if (!r.ok() || header->magic != kStoreMagic) {
    return Status::ParseError("bad store magic in " + path);
  }
  if (header->version != kStoreVersion) {
    return Status::ParseError("unsupported store version in " + path);
  }
  if (header->page_size != kPageSize) {
    return Status::ParseError("unsupported store page size in " + path);
  }
  uint64_t expected =
      Fnv1a(header, sizeof(*header) - sizeof(uint64_t));
  if (header->checksum != expected) {
    return Status::ParseError("store header checksum mismatch in " + path);
  }
  if (header->dir_offset + header->dir_bytes != header->file_bytes ||
      header->dir_bytes < 16 ||
      header->dir_bytes > (1ull << 24)) {
    return Status::ParseError("store directory bounds corrupt in " + path);
  }
  if (std::fseek(f.get(), static_cast<long>(header->dir_offset), SEEK_SET) !=
      0) {
    return Status::IoError("seek failed in " + path);
  }
  std::vector<uint8_t> dir(header->dir_bytes);
  r.Raw(dir.data(), dir.size());
  if (!r.ok()) return Status::ParseError("truncated store directory: " + path);
  uint32_t magic, count;
  std::memcpy(&magic, dir.data(), 4);
  std::memcpy(&count, dir.data() + 4, 4);
  if (magic != kDirectoryMagic ||
      8 + count * sizeof(SegmentEntry) + 8 != dir.size()) {
    return Status::ParseError("store directory corrupt in " + path);
  }
  uint64_t sum;
  std::memcpy(&sum, dir.data() + dir.size() - 8, 8);
  if (sum != Fnv1a(dir.data(), dir.size() - 8)) {
    return Status::ParseError("store directory checksum mismatch in " + path);
  }
  entries->resize(count);
  std::memcpy(entries->data(), dir.data() + 8,
              count * sizeof(SegmentEntry));
  return Status::Ok();
}

}  // namespace

Result<StoreWriteStats> StoreWriter::Write(
    const PropertyGraph& graph, const std::vector<std::string>& apt_names,
    uint64_t num_events, const std::string& path) {
  TRAIL_TRACE_SPAN("store.write");
  if (graph.num_nodes() >= static_cast<uint64_t>(kInvalidNode)) {
    return Status::InvalidArgument("graph too large for 32-bit node ids");
  }
  std::vector<SegmentBuf> segments;
  segments.push_back(BuildMeta(graph, apt_names, num_events, 0, 0));
  segments.push_back(BuildDict(graph, 0, graph.num_nodes()));
  segments.push_back(BuildDictHash(graph, 0, graph.num_nodes()));
  {
    SegmentBuf nodes, features;
    TRAIL_RETURN_NOT_OK(BuildNodesAndFeatures(graph, 0, graph.num_nodes(),
                                              &nodes, &features));
    segments.push_back(std::move(nodes));
    segments.push_back(std::move(features));
  }
  segments.push_back(BuildEdges(graph, 0, graph.num_edges()));
  {
    SegmentBuf offsets, runs;
    BuildCsr(graph, &offsets, &runs);
    segments.push_back(std::move(offsets));
    segments.push_back(std::move(runs));
  }
  return CommitSegments(path, /*append=*/false, /*data_start=*/kPageSize,
                        /*commit=*/0, {}, std::move(segments),
                        graph.num_nodes(), graph.num_edges());
}

Result<StoreWriteStats> StoreWriter::AppendDelta(
    const PropertyGraph& graph, const std::vector<std::string>& apt_names,
    uint64_t num_events, uint64_t node_lo, uint64_t edge_lo,
    const std::string& path) {
  TRAIL_TRACE_SPAN("store.append_delta");
  StoreHeader header;
  std::vector<SegmentEntry> entries;
  TRAIL_RETURN_NOT_OK(ReadHeaderAndDirectory(path, &header, &entries));
  // The delta must continue exactly where the store's last commit stopped:
  // find the newest meta watermarks.
  uint64_t store_nodes = 0;
  uint64_t store_edges = 0;
  uint32_t last_commit = 0;
  for (const SegmentEntry& entry : entries) {
    if (entry.kind != static_cast<uint32_t>(SegmentKind::kMeta)) continue;
    last_commit = std::max(last_commit, entry.commit);
  }
  for (const SegmentEntry& entry : entries) {
    if (entry.kind != static_cast<uint32_t>(SegmentKind::kMeta) ||
        entry.commit != last_commit) {
      continue;
    }
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (f == nullptr) return Status::IoError("cannot reopen: " + path);
    if (std::fseek(f.get(), static_cast<long>(entry.offset), SEEK_SET) != 0) {
      return Status::IoError("seek failed in " + path);
    }
    uint64_t meta[4];
    if (std::fread(meta, sizeof(meta), 1, f.get()) != 1) {
      return Status::ParseError("truncated store meta in " + path);
    }
    store_nodes = meta[1];
    store_edges = meta[3];
  }
  if (store_nodes != node_lo || store_edges != edge_lo) {
    return Status::FailedPrecondition(
        "delta watermarks do not continue the store: store has " +
        std::to_string(store_nodes) + " nodes / " +
        std::to_string(store_edges) + " edges, delta starts at " +
        std::to_string(node_lo) + " / " + std::to_string(edge_lo));
  }
  if (graph.num_nodes() < node_lo || graph.num_edges() < edge_lo) {
    return Status::FailedPrecondition("graph is behind the store watermarks");
  }

  std::vector<SegmentBuf> segments;
  segments.push_back(
      BuildMeta(graph, apt_names, num_events, node_lo, edge_lo));
  segments.push_back(BuildDict(graph, node_lo, graph.num_nodes()));
  segments.push_back(BuildDictHash(graph, node_lo, graph.num_nodes()));
  {
    SegmentBuf nodes, features;
    TRAIL_RETURN_NOT_OK(BuildNodesAndFeatures(graph, node_lo,
                                              graph.num_nodes(), &nodes,
                                              &features));
    segments.push_back(std::move(nodes));
    segments.push_back(std::move(features));
  }
  segments.push_back(BuildEdges(graph, edge_lo, graph.num_edges()));
  // Mutable fields of pre-existing nodes can change without a new node:
  // TkgBuilder ingest flips first_order / bumps report_count when a new
  // report re-references an old IOC (those nodes gain an incident delta
  // edge), and other mutators — Study::RunMonth labeling a prior month's
  // events — touch old nodes with NO new edge at all. Diff the union of
  // both candidate sets (old endpoints of the delta's edges, plus the
  // graph's mutation journal when enabled) against the effective on-store
  // state and record the changed ones as patches. Callers that mutate old
  // nodes outside report ingest must keep the journal enabled (Trail does
  // whenever a store is attached), or those changes will not persist.
  {
    auto store = GraphStore::Open(path);
    if (!store.ok()) return store.status();
    std::set<NodeId> candidates;
    for (size_t e = edge_lo; e < graph.num_edges(); ++e) {
      const Edge& edge = graph.edges()[e];
      if (edge.src < node_lo) candidates.insert(edge.src);
      if (edge.dst < node_lo) candidates.insert(edge.dst);
    }
    for (NodeId id : graph.dirty_nodes()) {
      if (id < node_lo) candidates.insert(id);
    }
    SegmentBuf patches{SegmentKind::kNodePatches, {}};
    std::vector<NodePatch> changed;
    for (NodeId id : candidates) {
      auto record = store.value()->Node(id);
      if (!record.ok()) return record.status();
      NodePatch patch;
      patch.id = id;
      patch.label = graph.label(id);
      patch.report_count = static_cast<uint32_t>(graph.report_count(id));
      patch.first_order = graph.first_order(id) ? 1 : 0;
      patch.timestamp = graph.timestamp(id);
      if (record->label != patch.label ||
          record->report_count != patch.report_count ||
          record->first_order != patch.first_order ||
          record->timestamp != patch.timestamp) {
        changed.push_back(patch);
      }
    }
    AppendPod(&patches.bytes, static_cast<uint64_t>(changed.size()));
    for (const NodePatch& patch : changed) AppendPod(&patches.bytes, patch);
    segments.push_back(std::move(patches));
  }
  // No CSR segments in deltas: the reader overlays delta edges onto the
  // base runs (small relative to the base; compaction = a fresh Write).
  //
  // New data starts on the first page AFTER the old directory, never on top
  // of it: the old header + directory must stay a valid recovery point
  // until the new header lands, or a crash mid-append would leave the old
  // header pointing at clobbered directory bytes and lose every committed
  // commit. The superseded directory's page becomes dead space, reclaimed
  // only by a full rewrite (compaction).
  return CommitSegments(
      path, /*append=*/true,
      /*data_start=*/PageAlign(header.dir_offset + header.dir_bytes),
      /*commit=*/last_commit + 1, std::move(entries), std::move(segments),
      graph.num_nodes(), graph.num_edges());
}

}  // namespace trail::graph::store
