#ifndef TRAIL_GRAPH_STORE_BUFFER_MANAGER_H_
#define TRAIL_GRAPH_STORE_BUFFER_MANAGER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/store/format.h"
#include "util/file_region.h"
#include "util/status.h"

namespace trail::graph::store {

/// Counters the bench and the cli surface: how much of the file a workload
/// actually touched. `page_faults` counts first-time page loads (the cold
/// cost), `pages_pinned` every pin (the touch rate); both are monotonic.
struct BufferStats {
  uint64_t total_pages = 0;
  uint64_t pages_touched = 0;  // distinct pages pinned at least once
  uint64_t page_faults = 0;    // pins that had to load the page
  uint64_t pages_pinned = 0;   // every pin, warm or cold
  uint64_t bytes_read = 0;     // pread mode only: bytes actually read
};

/// Pages a store file on demand. In mmap mode (the default) the file is
/// mapped once and a pin hands out a pointer into the mapping — the OS
/// faults the page in on first touch, and the manager's fault counter
/// mirrors that first touch. With TRAIL_NO_MMAP=1 (or when mmap fails) a
/// bounded page cache served by pread stands in: pins load pages into the
/// cache and an LRU sweep evicts unpinned pages past `cache_pages`.
///
/// Both modes return pointers that stay valid for the lifetime of the
/// PageRef (mmap: lifetime of the manager). All methods are internally
/// locked; the store reader calls them from whatever thread holds it.
class BufferManager {
 public:
  /// Default pread-mode cache capacity: 1024 pages = 16 MiB.
  static constexpr size_t kDefaultCachePages = 1024;

  static Result<std::unique_ptr<BufferManager>> Open(
      const std::string& path, size_t cache_pages = kDefaultCachePages);

  BufferManager() = default;
  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// A pinned page: `data` spans the page (the final page may be short).
  /// Valid until the owning BufferManager unpins past it (pread mode
  /// eviction never touches pages pinned by a live PageRef).
  struct PageRef {
    const uint8_t* data = nullptr;
    uint32_t length = 0;
    uint64_t page = 0;
  };

  /// Pins page `page_no`. Fails OutOfRange past EOF, IoError on read
  /// failure. Callers pair every Pin with Unpin (ReadBytes does this
  /// internally; the reader's decode helpers use ReadBytes).
  Result<PageRef> Pin(uint64_t page_no);
  void Unpin(const PageRef& ref);

  /// Copies [offset, offset + len) into `out`, pinning every page the range
  /// overlaps (so the stats see exactly which pages a decode touched).
  Status ReadBytes(uint64_t offset, uint64_t len, void* out);

  /// Like ReadBytes into a caller scratch buffer, but returns a zero-copy
  /// pointer when the range is contiguous in memory (always, in mmap mode).
  Result<const uint8_t*> View(uint64_t offset, uint64_t len,
                              std::vector<uint8_t>* scratch);

  uint64_t file_bytes() const { return region_.size(); }
  bool mmapped() const { return region_.mapped(); }
  BufferStats stats() const;

 private:
  struct CachedPage {
    std::vector<uint8_t> bytes;
    uint32_t pins = 0;
    std::list<uint64_t>::iterator lru_pos;
    bool in_lru = false;
  };

  uint64_t PageLength(uint64_t page_no) const;
  void TouchLocked(uint64_t page_no, bool faulted);
  void EvictLocked();

  FileRegion region_;
  size_t cache_pages_ = kDefaultCachePages;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, CachedPage> cache_;  // pread mode only
  std::list<uint64_t> lru_;  // unpinned cached pages, oldest first
  std::vector<uint8_t> touched_;  // one flag per page
  BufferStats stats_;
};

}  // namespace trail::graph::store

#endif  // TRAIL_GRAPH_STORE_BUFFER_MANAGER_H_
