#ifndef TRAIL_GRAPH_STORE_STORE_WRITER_H_
#define TRAIL_GRAPH_STORE_STORE_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/property_graph.h"
#include "util/status.h"

namespace trail::graph::store {

/// What a Write/AppendDelta commit put on disk (surfaced by trail_cli and
/// the store bench).
struct StoreWriteStats {
  uint64_t file_bytes = 0;
  uint64_t total_pages = 0;
  uint64_t commit_bytes = 0;  // segment payload bytes this commit wrote
  uint64_t num_commits = 0;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
};

/// Serializes a PropertyGraph into the TKGS segment format (docs/STORE.md).
/// `Write` lays down the base commit: dictionary + hash buckets, node
/// records, sparse feature payloads, the delta/varint-compressed CSR runs,
/// and the directed edge list. `AppendDelta` adds one commit covering only
/// the nodes/edges past the given watermarks — the monthly AppendReports
/// path — leaving every committed byte (data pages AND the old directory)
/// untouched until an fsync'd header rewrite switches to the new commit, so
/// a crash at any point keeps the previously committed store readable.
///
/// Output is a pure function of the graph + roster, byte for byte: the
/// committed golden fixture pins this (tools/update_goldens.sh).
class StoreWriter {
 public:
  /// Writes `path` from scratch as commit 0. Existing files are replaced.
  static Result<StoreWriteStats> Write(const PropertyGraph& graph,
                                       const std::vector<std::string>& apt_names,
                                       uint64_t num_events,
                                       const std::string& path);

  /// Appends one delta commit: nodes >= node_lo and edges >= edge_lo (the
  /// TkgAppendDelta watermarks). Fails FailedPrecondition when the
  /// watermarks do not line up with the store's current node/edge counts.
  /// Mutations to OLDER nodes are persisted as kNodePatches for the union
  /// of (a) old endpoints of the delta's edges and (b) the graph's mutation
  /// journal — callers that mutate old nodes outside report ingest must
  /// have `PropertyGraph::EnableMutationJournal` active for those changes
  /// to reach the file (Trail does whenever a store is attached).
  static Result<StoreWriteStats> AppendDelta(
      const PropertyGraph& graph, const std::vector<std::string>& apt_names,
      uint64_t num_events, uint64_t node_lo, uint64_t edge_lo,
      const std::string& path);
};

}  // namespace trail::graph::store

#endif  // TRAIL_GRAPH_STORE_STORE_WRITER_H_
