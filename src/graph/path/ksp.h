#ifndef TRAIL_GRAPH_PATH_KSP_H_
#define TRAIL_GRAPH_PATH_KSP_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace trail::graph::path {

/// One IOC reuse chain: a loop-free walk from a queried event to a node of
/// the target set (an APT's infrastructure). nodes[0] is the source,
/// nodes.back() the reached target; edges[i] is the schema type of the hop
/// nodes[i] -> nodes[i+1] (so edges.size() == nodes.size() - 1).
struct EvidencePath {
  std::vector<NodeId> nodes;
  std::vector<EdgeType> edges;
  double cost = 0.0;

  int hops() const { return static_cast<int>(edges.size()); }

  bool operator==(const EvidencePath& other) const {
    return nodes == other.nodes && edges == other.edges;
  }
};

struct KspOptions {
  /// Number of paths requested.
  size_t k = 3;
  /// Maximum hop count of a returned path.
  int max_hops = 6;
  /// Safety valve: total priority-queue pops across all Dijkstra runs of
  /// one KShortestPaths call. Generous — the A* bound prunes long before
  /// this fires on real worlds.
  size_t max_expansions = 1 << 20;
};

/// Yen's k-shortest loopless paths from `source` to the *target set*
/// {v : target_dist[v] == 0} over the undirected CSR view.
///
/// Path cost is the sum of node-entering costs: stepping onto v costs
/// node_cost[v] (the source itself is free). TRAIL derives node_cost from
/// IOC-type rarity — rare types are cheap, so paths through scarce,
/// discriminative infrastructure (ASNs, URLs) outrank paths through
/// commodity nodes — and keeps every cost in (1, 2] so hop count always
/// dominates: a shorter chain is never beaten by a longer one.
///
/// `target_dist` doubles as the A*-style admissible bound: it must hold
/// capped hop distances to the target set (kFar = farther than
/// `target_cap`), exactly what ReachabilityIndex::GroupDistances provides.
/// A node u reached in h hops is expanded only if h + target_dist[u] can
/// still finish within max_hops.
///
/// Deterministic everywhere ties can arise: the priority queue breaks equal
/// costs by node id, relaxation is strict-improvement in CSR adjacency
/// order (tie on cost prefers fewer hops, then the smaller parent id), and
/// Yen's candidate pool is ordered by (cost, node sequence). Results are
/// sorted by (cost, node sequence), pairwise distinct node sequences.
/// `region`, when non-null, restricts the search to nodes with a
/// non-negative entry (e.g. the BfsDistances/KHopNeighborhood scratch array
/// for the source's max_hops neighborhood). Any node on a valid path is
/// within max_hops of the source, so the restriction is a pure prune.
std::vector<EvidencePath> KShortestPaths(const CsrGraph& csr,
                                         const std::vector<float>& node_cost,
                                         NodeId source,
                                         const std::vector<uint8_t>& target_dist,
                                         int target_cap,
                                         const KspOptions& options,
                                         const std::vector<int>* region = nullptr);

}  // namespace trail::graph::path

#endif  // TRAIL_GRAPH_PATH_KSP_H_
