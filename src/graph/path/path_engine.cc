#include "graph/path/path_engine.h"

#include <algorithm>
#include <optional>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace trail::graph::path {

std::vector<std::vector<NodeId>> PathEngine::CollectSeeds(
    const PropertyGraph& graph, size_t num_apts,
    std::vector<NodeId>* labeled) {
  std::vector<std::vector<NodeId>> groups(num_apts + 1);
  labeled->clear();
  for (NodeId event : graph.NodesOfType(NodeType::kEvent)) {
    const int label = graph.label(event);
    if (label < 0 || static_cast<size_t>(label) >= num_apts) continue;
    labeled->push_back(event);
    groups[num_apts].push_back(event);
    for (const Neighbor& nb : graph.neighbors(event)) {
      if (graph.type(nb.node) != NodeType::kEvent) {
        groups[label].push_back(nb.node);
      }
    }
  }
  // NodesOfType is id-ordered, so `labeled` is already sorted and unique.
  return groups;
}

void PathEngine::RefreshCosts(const PropertyGraph& graph) {
  const size_t n = graph.num_nodes();
  const std::vector<size_t> counts = graph.TypeCounts();
  std::array<float, kNumNodeTypes> type_cost{};
  for (int t = 0; t < kNumNodeTypes; ++t) {
    type_cost[t] =
        1.0f + (n == 0 ? 0.0f
                       : static_cast<float>(counts[t]) / static_cast<float>(n));
  }
  node_cost_.resize(n);
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    node_cost_[v] = type_cost[static_cast<int>(graph.type(v))];
  }
}

PathEngine PathEngine::Build(const PropertyGraph& graph, const CsrGraph& csr,
                             size_t num_apts, const Options& options) {
  PathEngine engine;
  engine.options_ = options;
  engine.num_apts_ = num_apts;
  engine.num_nodes_ = graph.num_nodes();
  engine.num_edges_ = graph.num_edges();
  std::vector<std::vector<NodeId>> groups =
      CollectSeeds(graph, num_apts, &engine.labeled_seeds_);
  engine.index_ = ReachabilityIndex::Build(csr, groups, options.max_hops);
  engine.RefreshCosts(graph);
  return engine;
}

void PathEngine::Extend(const PropertyGraph& graph, const CsrGraph& csr,
                        size_t num_apts) {
  // Groups can only be added (a new report naming a new APT); the index
  // scratch-builds those and repairs the rest from the edge watermark.
  num_apts_ = std::max(num_apts_, num_apts);
  std::vector<std::vector<NodeId>> groups =
      CollectSeeds(graph, num_apts_, &labeled_seeds_);
  index_.Extend(csr, groups, graph.edges(), num_edges_);
  num_nodes_ = graph.num_nodes();
  num_edges_ = graph.num_edges();
  RefreshCosts(graph);
}

bool PathEngine::Matches(const PropertyGraph& graph, size_t num_apts) const {
  if (num_apts_ != num_apts || num_nodes_ != graph.num_nodes() ||
      num_edges_ != graph.num_edges()) {
    return false;
  }
  // Same node/edge counts: the engine is stale only if labels moved (the
  // longitudinal study labels prior months' events in place).
  std::vector<NodeId> labeled;
  for (NodeId event : graph.NodesOfType(NodeType::kEvent)) {
    const int label = graph.label(event);
    if (label >= 0 && static_cast<size_t>(label) < num_apts_) {
      labeled.push_back(event);
    }
  }
  return labeled == labeled_seeds_;
}

bool PathEngine::WithinHops(NodeId v, size_t apt, int k) const {
  TRAIL_METRIC_INC("path.reach_queries");
  if (apt >= num_apts_) return false;
  return index_.WithinHops(v, apt, k);
}

std::vector<EvidencePath> PathEngine::Explain(const CsrGraph& csr,
                                              NodeId event, size_t apt,
                                              size_t k,
                                              TraversalScratch* scratch) const {
  TRAIL_METRIC_INC("path.ksp_queries");
  std::optional<obs::TraceSpan> span;
  if (obs::DetailedMetricsEnabled()) {
    static obs::Histogram* hist =
        obs::MetricsRegistry::Global().GetHistogram("span.path.ksp");
    span.emplace("path.ksp", hist);
  }
  if (apt >= num_apts_ || static_cast<size_t>(event) >= num_nodes_) return {};
  // Fast negative from the index before any search work.
  if (!index_.WithinHops(event, apt, options_.max_hops)) return {};
  KspOptions ksp;
  ksp.k = k == 0 ? options_.default_k : k;
  ksp.max_hops = options_.max_hops;
  ksp.max_expansions = options_.max_expansions;
  const std::vector<int>* region = nullptr;
  if (scratch != nullptr) {
    KHopNeighborhood(csr, std::vector<NodeId>{event}, options_.max_hops,
                     scratch);
    region = &scratch->dist;
  }
  return KShortestPaths(csr, node_cost_, event, index_.GroupDistances(apt),
                        options_.max_hops, ksp, region);
}

}  // namespace trail::graph::path
