#include "graph/path/reachability_index.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "util/parallel.h"

namespace trail::graph::path {

namespace {

/// Appends id to a canonical interval list under construction (ids must
/// arrive in strictly increasing order).
void PushId(std::vector<IdInterval>* list, NodeId id) {
  if (!list->empty() && list->back().hi + 1 == id) {
    list->back().hi = id;
  } else {
    list->push_back({id, id});
  }
}

/// Merges sorted, unique `added` ids into a canonical interval list. The
/// result is the canonical list of (old set ∪ added). Linear in
/// |old intervals| + |added|, so patching after a monthly delta never costs
/// a full re-scan of the distance array.
std::vector<IdInterval> MergeIds(const std::vector<IdInterval>& old,
                                 const std::vector<NodeId>& added) {
  std::vector<IdInterval> out;
  out.reserve(old.size() + added.size());
  size_t i = 0;
  size_t j = 0;
  auto push_interval = [&out](IdInterval iv) {
    if (!out.empty() && out.back().hi + 1 >= iv.lo) {
      out.back().hi = std::max(out.back().hi, iv.hi);
    } else {
      out.push_back(iv);
    }
  };
  while (i < old.size() || j < added.size()) {
    if (j >= added.size() ||
        (i < old.size() && old[i].lo <= added[j])) {
      push_interval(old[i]);
      ++i;
    } else {
      push_interval({added[j], added[j]});
      ++j;
    }
  }
  return out;
}

}  // namespace

void ReachabilityIndex::BfsGroup(const CsrGraph& csr,
                                 const std::vector<NodeId>& seeds,
                                 int max_hops, std::vector<uint8_t>* dist) {
  const size_t n = csr.num_nodes();
  dist->assign(n, kFar);
  std::vector<NodeId> frontier;
  frontier.reserve(seeds.size());
  for (NodeId s : seeds) {
    if (static_cast<size_t>(s) >= n || !csr.IsKept(s)) continue;
    if ((*dist)[s] != 0) {
      (*dist)[s] = 0;
      frontier.push_back(s);
    }
  }
  std::vector<NodeId> next;
  for (int d = 0; d < max_hops && !frontier.empty(); ++d) {
    next.clear();
    for (NodeId u : frontier) {
      const NodeId* it = csr.NeighborsBegin(u);
      const NodeId* end = csr.NeighborsEnd(u);
      for (; it != end; ++it) {
        if ((*dist)[*it] == kFar) {
          (*dist)[*it] = static_cast<uint8_t>(d + 1);
          next.push_back(*it);
        }
      }
    }
    frontier.swap(next);
  }
}

std::vector<std::vector<IdInterval>> ReachabilityIndex::CompressGroup(
    const std::vector<uint8_t>& dist, int max_hops) {
  std::vector<std::vector<IdInterval>> levels(max_hops + 1);
  for (NodeId v = 0; v < static_cast<NodeId>(dist.size()); ++v) {
    const uint8_t d = dist[v];
    if (d == kFar) continue;
    // A node at distance d belongs to every hop budget h >= d.
    for (int h = d; h <= max_hops; ++h) PushId(&levels[h], v);
  }
  return levels;
}

ReachabilityIndex ReachabilityIndex::Build(
    const CsrGraph& csr, const std::vector<std::vector<NodeId>>& group_seeds,
    int max_hops) {
  ReachabilityIndex index;
  index.max_hops_ = max_hops;
  index.num_nodes_ = csr.num_nodes();
  index.generation_ = 1;
  const size_t groups = group_seeds.size();
  index.dist_.resize(groups);
  index.intervals_.resize(groups);
  index.seeds_.resize(groups);
  // Groups are independent: each slot is written by exactly one task and the
  // per-group BFS is serial, so the result is identical at any worker count.
  trail::ParallelForEachIndex(groups, [&](size_t g) {
    std::vector<NodeId> seeds = group_seeds[g];
    std::sort(seeds.begin(), seeds.end());
    seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
    BfsGroup(csr, seeds, max_hops, &index.dist_[g]);
    index.intervals_[g] = CompressGroup(index.dist_[g], max_hops);
    index.seeds_[g] = std::move(seeds);
  });
  return index;
}

bool ReachabilityIndex::RepairGroup(
    const CsrGraph& csr, const std::vector<NodeId>& seeds,
    const std::vector<Edge>& edges, size_t from_edge, size_t group,
    std::vector<std::pair<NodeId, uint8_t>>* changed) {
  std::vector<uint8_t>& dist = dist_[group];
  const std::vector<NodeId>& old_seeds = seeds_[group];
  // The monotone contract: seeds only ever grow (new labeled events bring
  // new infrastructure). If a seed disappeared, distances could need to
  // *increase*, which a repair relaxation cannot express.
  if (!std::includes(seeds.begin(), seeds.end(), old_seeds.begin(),
                     old_seeds.end())) {
    return false;
  }
  const size_t n = csr.num_nodes();
  dist.resize(n, kFar);

  // Bucket queue over distances 0..max_hops. Every node whose distance
  // drops is re-examined from its new level, so the relaxation reaches the
  // same unique fixpoint a scratch BFS computes — distances only decrease
  // under node/edge/seed growth, and the fixpoint of "dist[v] = min(seed
  // indicator, 1 + min over neighbors)" capped at max_hops is unique.
  std::vector<std::vector<NodeId>> buckets(max_hops_ + 1);
  auto lower = [&](NodeId v, uint8_t d, uint8_t* old_out) {
    if (d < dist[v]) {
      if (old_out != nullptr) *old_out = dist[v];
      dist[v] = d;
      buckets[d].push_back(v);
      return true;
    }
    return false;
  };

  std::vector<std::pair<NodeId, uint8_t>> touched;
  auto record = [&](NodeId v, uint8_t old_d) { touched.push_back({v, old_d}); };

  for (NodeId s : seeds) {
    if (static_cast<size_t>(s) >= n || !csr.IsKept(s)) continue;
    uint8_t old_d = kFar;
    if (lower(s, 0, &old_d)) record(s, old_d);
  }
  // New edges can shortcut old regions: relax both endpoints once; any
  // further consequences propagate through the bucket sweep below.
  for (size_t e = from_edge; e < edges.size(); ++e) {
    const Edge& edge = edges[e];
    if (!csr.IsKept(edge.src) || !csr.IsKept(edge.dst)) continue;
    if (dist[edge.src] != kFar && dist[edge.src] < max_hops_) {
      uint8_t old_d = kFar;
      if (lower(edge.dst, static_cast<uint8_t>(dist[edge.src] + 1), &old_d)) {
        record(edge.dst, old_d);
      }
    }
    if (dist[edge.dst] != kFar && dist[edge.dst] < max_hops_) {
      uint8_t old_d = kFar;
      if (lower(edge.src, static_cast<uint8_t>(dist[edge.dst] + 1), &old_d)) {
        record(edge.src, old_d);
      }
    }
  }
  for (int d = 0; d < max_hops_; ++d) {
    // lower() may append to buckets[d] while we sweep it (a neighbor drops
    // to the current level via a different path) — index loop, not iterator.
    for (size_t i = 0; i < buckets[d].size(); ++i) {
      const NodeId u = buckets[d][i];
      if (dist[u] != d) continue;  // re-lowered since enqueued
      const NodeId* it = csr.NeighborsBegin(u);
      const NodeId* end = csr.NeighborsEnd(u);
      for (; it != end; ++it) {
        uint8_t old_d = kFar;
        if (lower(*it, static_cast<uint8_t>(d + 1), &old_d)) record(*it, old_d);
      }
    }
  }

  // A node touched twice keeps only its first (largest) old distance.
  std::sort(touched.begin(), touched.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first
                                        : a.second > b.second;
            });
  touched.erase(std::unique(touched.begin(), touched.end(),
                            [](const auto& a, const auto& b) {
                              return a.first == b.first;
                            }),
                touched.end());
  *changed = std::move(touched);
  return true;
}

void ReachabilityIndex::Extend(
    const CsrGraph& csr, const std::vector<std::vector<NodeId>>& group_seeds,
    const std::vector<Edge>& edges, size_t from_edge) {
  const size_t old_groups = dist_.size();
  const size_t groups = group_seeds.size();
  assert(groups >= old_groups);
  dist_.resize(groups);
  intervals_.resize(groups);
  seeds_.resize(groups);
  num_nodes_ = csr.num_nodes();
  ++generation_;
  trail::ParallelForEachIndex(groups, [&](size_t g) {
    std::vector<NodeId> seeds = group_seeds[g];
    std::sort(seeds.begin(), seeds.end());
    seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
    if (g >= old_groups) {
      // A brand-new group (first report naming this APT): scratch build.
      BfsGroup(csr, seeds, max_hops_, &dist_[g]);
      intervals_[g] = CompressGroup(dist_[g], max_hops_);
      seeds_[g] = std::move(seeds);
      return;
    }
    std::vector<std::pair<NodeId, uint8_t>> changed;
    if (!RepairGroup(csr, seeds, edges, from_edge, g, &changed)) {
      BfsGroup(csr, seeds, max_hops_, &dist_[g]);
      intervals_[g] = CompressGroup(dist_[g], max_hops_);
      seeds_[g] = std::move(seeds);
      return;
    }
    // Patch interval lists: a node whose distance dropped from old_d to
    // new_d joins every budget h in [new_d, min(old_d, max_hops_) - 1] — it
    // was already a member of budgets >= old_d.
    std::vector<std::vector<NodeId>> added(max_hops_ + 1);
    for (const auto& [v, old_d] : changed) {
      const int hi = std::min<int>(old_d, max_hops_ + 1);
      for (int h = dist_[g][v]; h < hi; ++h) added[h].push_back(v);
    }
    for (int h = 0; h <= max_hops_; ++h) {
      if (added[h].empty()) continue;
      intervals_[g][h] = MergeIds(intervals_[g][h], added[h]);
    }
    seeds_[g] = std::move(seeds);
  });
}

bool ReachabilityIndex::WithinHops(NodeId v, size_t group, int k) const {
  if (k < 0 || group >= intervals_.size() ||
      static_cast<size_t>(v) >= num_nodes_) {
    return false;
  }
  const std::vector<IdInterval>& list =
      intervals_[group][std::min(k, max_hops_)];
  // First interval with lo > v; the candidate container is its predecessor.
  auto it = std::upper_bound(
      list.begin(), list.end(), v,
      [](NodeId id, const IdInterval& iv) { return id < iv.lo; });
  return it != list.begin() && std::prev(it)->hi >= v;
}

size_t ReachabilityIndex::interval_count() const {
  size_t total = 0;
  for (const auto& group : intervals_) {
    for (const auto& level : group) total += level.size();
  }
  return total;
}

size_t ReachabilityIndex::resident_bytes() const {
  size_t bytes = interval_count() * sizeof(IdInterval);
  for (const auto& d : dist_) bytes += d.capacity() * sizeof(uint8_t);
  for (const auto& s : seeds_) bytes += s.capacity() * sizeof(NodeId);
  return bytes;
}

}  // namespace trail::graph::path
