#ifndef TRAIL_GRAPH_PATH_PATH_ENGINE_H_
#define TRAIL_GRAPH_PATH_PATH_ENGINE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "graph/algorithms.h"
#include "graph/csr.h"
#include "graph/path/ksp.h"
#include "graph/path/reachability_index.h"
#include "graph/property_graph.h"
#include "graph/types.h"

namespace trail::graph::path {

/// The online evidence-path plane: one reachability group per APT (seeds =
/// the APT's *infrastructure*, i.e. the non-event IOC neighbors of its
/// labeled events) plus a final group of the labeled events themselves
/// (the label-propagation frontier-pruning hint), and the IOC-type-rarity
/// weights the k-shortest-path queries rank reuse chains by.
///
/// The engine holds no pointer into the graph it was built from — query
/// methods take the CSR to traverse — so an Epoch can share it across
/// hot-swaps and Trail can deep-copy it into append-published epochs like
/// the other epoch planes.
struct PathEngineOptions {
  /// Hop horizon of the reachability index and the evidence-path search.
  int max_hops = 6;
  /// Paths returned when the caller does not ask for a specific k.
  size_t default_k = 3;
  /// Safety valve for one Explain call (see KspOptions).
  size_t max_expansions = 1 << 20;
};

class PathEngine {
 public:
  using Options = PathEngineOptions;

  PathEngine() = default;

  /// Builds the engine against the current graph + CSR snapshot.
  static PathEngine Build(const PropertyGraph& graph, const CsrGraph& csr,
                          size_t num_apts, const Options& options = Options());

  /// Incrementally extends the engine after the graph/CSR were appended to
  /// (and/or labels were added): re-collects seed groups and repairs the
  /// reachability index from the internal node/edge watermarks. The result
  /// is identical to Build on the current state (the index repair falls
  /// back to a per-group scratch BFS if a seed set shrank).
  void Extend(const PropertyGraph& graph, const CsrGraph& csr,
              size_t num_apts);

  /// True when the engine still describes `graph` exactly: watermarks match
  /// and no event gained or lost a label since Build/Extend.
  bool Matches(const PropertyGraph& graph, size_t num_apts) const;

  /// "Is v within k hops of APT `apt`'s infrastructure?" — one interval
  /// binary search. Counted as path.reach_queries.
  bool WithinHops(NodeId v, size_t apt, int k) const;

  /// K-shortest IOC reuse chains from `event` to APT `apt`'s
  /// infrastructure. k == 0 means Options::default_k. `scratch`, when
  /// provided, is reused for the source-neighborhood prune (serving reuses
  /// one scratch across a whole micro-batch). Counted as path.ksp_queries;
  /// emits a span.path.ksp trace span under detailed metrics.
  std::vector<EvidencePath> Explain(const CsrGraph& csr, NodeId event,
                                    size_t apt, size_t k,
                                    TraversalScratch* scratch = nullptr) const;

  /// Capped hop distances to the nearest *labeled* event — the LP pruning
  /// hint (ReachabilityIndex::kFar beyond max_hops).
  const std::vector<uint8_t>& LabeledSeedHops() const {
    return index_.GroupDistances(num_apts_);
  }
  /// The labeled event ids (sorted) the engine was last built/extended
  /// with; LP checks these against its own seed set before pruning.
  const std::vector<NodeId>& labeled_seeds() const { return labeled_seeds_; }

  const ReachabilityIndex& index() const { return index_; }
  const std::vector<float>& node_costs() const { return node_cost_; }

  size_t num_apts() const { return num_apts_; }
  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return num_edges_; }
  int max_hops() const { return options_.max_hops; }
  uint64_t generation() const { return index_.generation(); }
  size_t interval_count() const { return index_.interval_count(); }
  size_t resident_bytes() const {
    return index_.resident_bytes() + node_cost_.capacity() * sizeof(float) +
           labeled_seeds_.capacity() * sizeof(NodeId);
  }

  bool operator==(const PathEngine& other) const {
    return num_apts_ == other.num_apts_ && num_nodes_ == other.num_nodes_ &&
           num_edges_ == other.num_edges_ && index_ == other.index_ &&
           node_cost_ == other.node_cost_ &&
           labeled_seeds_ == other.labeled_seeds_;
  }

 private:
  /// groups[0..num_apts): per-APT infrastructure; groups[num_apts]: the
  /// labeled events. `labeled` collects the sorted labeled event ids.
  static std::vector<std::vector<NodeId>> CollectSeeds(
      const PropertyGraph& graph, size_t num_apts,
      std::vector<NodeId>* labeled);
  void RefreshCosts(const PropertyGraph& graph);

  Options options_;
  size_t num_apts_ = 0;
  /// Graph watermarks at the last Build/Extend.
  size_t num_nodes_ = 0;
  size_t num_edges_ = 0;
  ReachabilityIndex index_;
  /// node_cost_[v] = 1 + frequency(type(v)) in (1, 2]: rare IOC types are
  /// cheaper, and every hop costs more than 1, so shorter chains always
  /// win and ties go to the chain through scarcer infrastructure.
  std::vector<float> node_cost_;
  std::vector<NodeId> labeled_seeds_;
};

}  // namespace trail::graph::path

#endif  // TRAIL_GRAPH_PATH_PATH_ENGINE_H_
