#include "graph/path/ksp.h"

#include <algorithm>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace trail::graph::path {

namespace {

constexpr uint8_t kFarDist = 0xFF;

struct NodeState {
  double cost = 0.0;
  int hops = 0;
  NodeId parent = kInvalidNode;
  bool settled = false;
};

struct PqEntry {
  double cost;
  NodeId node;
};

/// Min-heap order: smallest cost first, ties broken toward the smaller node
/// id so the settle order — and with it every downstream tie — is the same
/// on every run.
struct PqGreater {
  bool operator()(const PqEntry& a, const PqEntry& b) const {
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.node > b.node;
  }
};

uint64_t PairKey(NodeId a, NodeId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

/// Bounded single-shortest-path Dijkstra from `source` to the target set.
/// State lives in a hash map, so the cost is proportional to the explored
/// region (bounded by `budget` hops and the A* prune), not to graph size —
/// this runs once per Yen spur on a paper-scale CSR.
bool BoundedDijkstra(const CsrGraph& csr, const std::vector<float>& node_cost,
                     NodeId source, const std::vector<uint8_t>& target_dist,
                     int target_cap, int budget,
                     const std::unordered_set<NodeId>& banned_nodes,
                     const std::unordered_set<uint64_t>& banned_pairs,
                     const std::vector<int>* region, size_t max_expansions,
                     size_t* expansions, std::vector<NodeId>* out_nodes,
                     double* out_cost) {
  if (budget < 0 || static_cast<size_t>(source) >= csr.num_nodes() ||
      !csr.IsKept(source)) {
    return false;
  }
  // Admissible bound from the reachability index: a node whose capped
  // distance to the targets exceeds the hops it has left cannot finish.
  auto can_finish = [&](NodeId v, int hops_used) {
    const int remaining = budget - hops_used;
    const uint8_t bound = target_dist[v];
    if (bound == kFarDist) return remaining > target_cap;
    return bound <= remaining;
  };
  if (!can_finish(source, 0)) return false;

  std::unordered_map<NodeId, NodeState> state;
  std::priority_queue<PqEntry, std::vector<PqEntry>, PqGreater> pq;
  state[source] = NodeState{0.0, 0, kInvalidNode, false};
  pq.push({0.0, source});
  while (!pq.empty()) {
    const PqEntry top = pq.top();
    pq.pop();
    NodeState& st = state[top.node];
    if (st.settled || top.cost != st.cost) continue;  // stale entry
    st.settled = true;
    if (++*expansions > max_expansions) return false;
    if (target_dist[top.node] == 0) {
      out_nodes->clear();
      for (NodeId v = top.node; v != kInvalidNode; v = state[v].parent) {
        out_nodes->push_back(v);
      }
      std::reverse(out_nodes->begin(), out_nodes->end());
      *out_cost = st.cost;
      return true;
    }
    if (st.hops >= budget) continue;
    const double base_cost = st.cost;
    const int next_hops = st.hops + 1;
    const NodeId u = top.node;
    const NodeId* it = csr.NeighborsBegin(u);
    const NodeId* end = csr.NeighborsEnd(u);
    for (; it != end; ++it) {
      const NodeId w = *it;
      if (region != nullptr && (*region)[w] < 0) continue;
      if (!can_finish(w, next_hops)) continue;
      if (banned_nodes.count(w) != 0) continue;
      if (!banned_pairs.empty() && banned_pairs.count(PairKey(u, w)) != 0) {
        continue;
      }
      const double nc = base_cost + node_cost[w];
      auto [slot, inserted] = state.try_emplace(w);
      NodeState& sw = slot->second;
      if (inserted) {
        sw = NodeState{nc, next_hops, u, false};
        pq.push({nc, w});
      } else if (!sw.settled) {
        if (nc < sw.cost) {
          sw = NodeState{nc, next_hops, u, false};
          pq.push({nc, w});
        } else if (nc == sw.cost &&
                   (next_hops < sw.hops ||
                    (next_hops == sw.hops && u < sw.parent))) {
          // Same cost through a canonical-smaller route: keep the queue
          // entry (position unchanged) and just rewire the parent.
          sw.hops = next_hops;
          sw.parent = u;
        }
      }
    }
  }
  return false;
}

/// Schema type of the hop u -> w: the first matching entry in u's CSR
/// adjacency (deterministic; parallel typed edges resolve to the one that
/// was ingested first).
EdgeType FirstEdgeType(const CsrGraph& csr, NodeId u, NodeId w) {
  const NodeId* begin = csr.NeighborsBegin(u);
  const NodeId* end = csr.NeighborsEnd(u);
  for (const NodeId* it = begin; it != end; ++it) {
    if (*it == w) return csr.NeighborEdgeType(u, it - begin);
  }
  return EdgeType::kInReport;  // unreachable for paths built from the CSR
}

/// Canonical path cost: left-to-right sum of node-entering costs. Candidate
/// costs from different Yen spur decompositions of the same walk would
/// otherwise differ in the last ulp (double addition is not associative).
double CanonicalCost(const std::vector<NodeId>& nodes,
                     const std::vector<float>& node_cost) {
  double cost = 0.0;
  for (size_t i = 1; i < nodes.size(); ++i) cost += node_cost[nodes[i]];
  return cost;
}

}  // namespace

std::vector<EvidencePath> KShortestPaths(
    const CsrGraph& csr, const std::vector<float>& node_cost, NodeId source,
    const std::vector<uint8_t>& target_dist, int target_cap,
    const KspOptions& options, const std::vector<int>* region) {
  std::vector<EvidencePath> result;
  if (options.k == 0) return result;
  size_t expansions = 0;
  std::vector<NodeId> nodes;
  double cost = 0.0;
  const std::unordered_set<NodeId> no_nodes;
  const std::unordered_set<uint64_t> no_pairs;
  if (!BoundedDijkstra(csr, node_cost, source, target_dist, target_cap,
                       options.max_hops, no_nodes, no_pairs, region,
                       options.max_expansions, &expansions, &nodes, &cost)) {
    return result;
  }
  EvidencePath first;
  first.cost = CanonicalCost(nodes, node_cost);
  first.nodes = std::move(nodes);
  result.push_back(std::move(first));

  // Yen's algorithm. `candidates` is the B set ordered by (cost, node
  // sequence); `seen` prevents re-adding a sequence that is already a
  // result or a pending candidate.
  auto candidate_less = [](const EvidencePath& a, const EvidencePath& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.nodes < b.nodes;
  };
  std::set<EvidencePath, decltype(candidate_less)> candidates(candidate_less);
  std::set<std::vector<NodeId>> seen;
  seen.insert(result[0].nodes);

  while (result.size() < options.k) {
    const std::vector<NodeId> prev = result.back().nodes;
    for (size_t i = 0; i + 1 < prev.size(); ++i) {
      const NodeId spur = prev[i];
      // Ban the outgoing hop of every known shortest path sharing this
      // root, and the root's interior nodes, so the spur search can only
      // produce a genuinely new deviation.
      std::unordered_set<uint64_t> banned_pairs;
      for (const EvidencePath& p : result) {
        if (p.nodes.size() > i + 1 &&
            std::equal(prev.begin(), prev.begin() + i + 1, p.nodes.begin())) {
          banned_pairs.insert(PairKey(p.nodes[i], p.nodes[i + 1]));
        }
      }
      std::unordered_set<NodeId> banned_nodes(prev.begin(), prev.begin() + i);
      std::vector<NodeId> spur_nodes;
      double spur_cost = 0.0;
      if (!BoundedDijkstra(csr, node_cost, spur, target_dist, target_cap,
                           options.max_hops - static_cast<int>(i),
                           banned_nodes, banned_pairs, region,
                           options.max_expansions, &expansions, &spur_nodes,
                           &spur_cost)) {
        continue;
      }
      EvidencePath candidate;
      candidate.nodes.assign(prev.begin(), prev.begin() + i);
      candidate.nodes.insert(candidate.nodes.end(), spur_nodes.begin(),
                             spur_nodes.end());
      if (!seen.insert(candidate.nodes).second) continue;
      candidate.cost = CanonicalCost(candidate.nodes, node_cost);
      candidates.insert(std::move(candidate));
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }

  for (EvidencePath& path : result) {
    path.edges.reserve(path.nodes.size() - 1);
    for (size_t i = 0; i + 1 < path.nodes.size(); ++i) {
      path.edges.push_back(FirstEdgeType(csr, path.nodes[i], path.nodes[i + 1]));
    }
  }
  return result;
}

}  // namespace trail::graph::path
