#ifndef TRAIL_GRAPH_PATH_REACHABILITY_INDEX_H_
#define TRAIL_GRAPH_PATH_REACHABILITY_INDEX_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace trail::graph::path {

/// A closed, inclusive id interval [lo, hi]. Interval lists are sorted,
/// non-overlapping, and non-adjacent (maximal), so two lists describing the
/// same id set are bitwise identical — the canonical form the
/// incremental-extend-equals-scratch-build guarantee rests on.
struct IdInterval {
  NodeId lo;
  NodeId hi;

  bool operator==(const IdInterval& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

/// A FERRARI-style interval-compressed reachability index, bounded-hop
/// variant. For each seed *group* g (an APT's infrastructure, the labeled
/// LP seeds, ...) and each hop budget h in [0, max_hops], the index stores
/// the set of node ids within h hops of any seed of g as a sorted
/// id-interval list. Node ids are assigned in ingest order, so a campaign's
/// events and infrastructure cluster into contiguous id runs and the
/// interval lists stay far smaller than the sets they describe.
///
/// Queries ("is event X within k hops of APT Y's infrastructure?") are one
/// binary search over the (group, min(k, max_hops)) interval list —
/// microseconds at paper scale instead of a per-query BFS.
///
/// The per-group capped hop-distance arrays the intervals are derived from
/// are retained: they answer exact HopsToGroup lookups, drive the k-shortest
/// path engine's A*-style pruning, and make Extend incremental (distances
/// under edge/seed growth only ever decrease, so a bounded repair
/// relaxation from the changed frontier reconverges to the unique fixpoint
/// without re-traversing the whole graph).
class ReachabilityIndex {
 public:
  /// Hop distance recorded for nodes farther than max_hops from every seed
  /// of a group (possibly unreachable outright).
  static constexpr uint8_t kFar = 0xFF;

  ReachabilityIndex() = default;

  /// Builds the index: one bounded multi-source BFS per group plus the
  /// interval compression, parallelized over groups via the thread pool.
  /// Groups are independent, so the result is bit-identical at any worker
  /// count. Seed ids out of range or dropped from the CSR are ignored.
  static ReachabilityIndex Build(
      const CsrGraph& csr, const std::vector<std::vector<NodeId>>& group_seeds,
      int max_hops);

  /// Extends the index after the CSR was Append-ed: `new_edges` is the
  /// appended schema-edge range (PropertyGraph::edges()[from_edge, ...)),
  /// `group_seeds` the *current* (possibly grown) seed sets. New nodes get
  /// kFar entries, then a repair relaxation seeded from new seeds and the
  /// endpoints of new edges re-lowers exactly the distances that changed,
  /// and the touched ids are merge-patched into the interval lists. The
  /// result is bit-identical to Build on the extended inputs. A group whose
  /// seed set shrank (labels were retracted — outside the monotone append
  /// contract) falls back to a scratch rebuild of that group alone.
  void Extend(const CsrGraph& csr,
              const std::vector<std::vector<NodeId>>& group_seeds,
              const std::vector<Edge>& edges, size_t from_edge);

  /// True when v is within k hops of any seed of `group`. k is clamped to
  /// max_hops (the index cannot see farther); negative k is always false.
  bool WithinHops(NodeId v, size_t group, int k) const;

  /// Exact hop distance from v to the nearest seed of `group`, or kFar when
  /// farther than max_hops.
  uint8_t HopsToGroup(NodeId v, size_t group) const {
    return dist_[group][v];
  }

  /// The full capped distance array of one group (the LP pruning hint and
  /// the KSP engine's A* bound).
  const std::vector<uint8_t>& GroupDistances(size_t group) const {
    return dist_[group];
  }

  /// Interval list of (group, hop budget h), h in [0, max_hops].
  const std::vector<IdInterval>& Intervals(size_t group, int h) const {
    return intervals_[group][h];
  }

  size_t num_groups() const { return dist_.size(); }
  size_t num_nodes() const { return num_nodes_; }
  int max_hops() const { return max_hops_; }

  /// Bumped by Build (to 1) and by every Extend.
  uint64_t generation() const { return generation_; }

  /// Total interval count across all groups and hop budgets.
  size_t interval_count() const;
  /// Approximate heap footprint of the index (intervals + distance arrays).
  size_t resident_bytes() const;

  bool operator==(const ReachabilityIndex& other) const {
    return max_hops_ == other.max_hops_ && num_nodes_ == other.num_nodes_ &&
           dist_ == other.dist_ && intervals_ == other.intervals_;
  }

 private:
  /// Bounded multi-source BFS of one group from scratch into dist.
  static void BfsGroup(const CsrGraph& csr, const std::vector<NodeId>& seeds,
                       int max_hops, std::vector<uint8_t>* dist);
  /// Canonical interval lists (one per hop budget) from a distance array.
  static std::vector<std::vector<IdInterval>> CompressGroup(
      const std::vector<uint8_t>& dist, int max_hops);
  /// Repair relaxation of one group for Extend; returns the changed node
  /// ids (sorted, unique) with their old distances for interval patching,
  /// or false when the seed set shrank and the group needs a scratch
  /// rebuild.
  bool RepairGroup(const CsrGraph& csr, const std::vector<NodeId>& seeds,
                   const std::vector<Edge>& edges, size_t from_edge,
                   size_t group, std::vector<std::pair<NodeId, uint8_t>>* changed);

  int max_hops_ = 0;
  size_t num_nodes_ = 0;
  uint64_t generation_ = 0;
  /// dist_[group][node]: capped hop distance to the group's seeds.
  std::vector<std::vector<uint8_t>> dist_;
  /// intervals_[group][h]: ids within h hops, interval-compressed.
  std::vector<std::vector<std::vector<IdInterval>>> intervals_;
  /// Seed sets the index was last built/extended with (sorted, unique);
  /// Extend uses them to detect seed growth vs retraction.
  std::vector<std::vector<NodeId>> seeds_;
};

}  // namespace trail::graph::path

#endif  // TRAIL_GRAPH_PATH_REACHABILITY_INDEX_H_
