#ifndef TRAIL_OBS_SLIDING_WINDOW_H_
#define TRAIL_OBS_SLIDING_WINDOW_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "util/json.h"

namespace trail::obs {

/// Rolling request accounting for a live server: one-second buckets in a
/// fixed circular array, aggregated on demand into 1m/5m/1h views. A bucket
/// holds a request count, an error count, an SLO-miss count (ok but slower
/// than the configured latency objective), and a compact geometric latency
/// histogram reusing Histogram's bucket math — so window percentiles come
/// out of the same bound approximation as the process-lifetime histograms.
///
/// Rotation is stamp-based instead of cursor-based: every bucket remembers
/// the absolute second it was last written for, and both Record and
/// aggregation ignore buckets whose stamp does not match the second they
/// would represent. Seconds that saw no traffic therefore cost nothing to
/// skip, and a burst after an idle hour cannot double-count stale buckets.
///
/// All methods take the current time explicitly (seconds on the caller's
/// monotonic clock) so window rotation and burn-rate math are unit-testable
/// without sleeping; SloTracker below layers the real clock on top.
class SlidingWindow {
 public:
  /// One hour of one-second buckets — the largest aggregation window.
  static constexpr int kNumBuckets = 3600;
  /// Latency resolution: Histogram's first 48 geometric buckets span 1ns to
  /// ~280s, far beyond any serving latency this system produces.
  static constexpr int kLatencyBuckets = 48;

  struct Snapshot {
    int64_t total = 0;
    int64_t errors = 0;      // !ok outcomes (shed, expired, failed)
    int64_t slo_misses = 0;  // ok but over the latency objective
    /// 1.0 when the window saw no traffic (no data is not an outage).
    double availability = 1.0;
    /// errors + slo_misses over total (the "bad event" fraction burn rates
    /// are computed from); 0.0 on an empty window.
    double bad_fraction = 0.0;
    double p50_s = 0.0, p95_s = 0.0, p99_s = 0.0;
  };

  /// Records one finished request into the bucket for `now_s`.
  void Record(int64_t now_s, double latency_s, bool ok, bool within_slo);

  /// Aggregates the `window_s` seconds ending at `now_s` (inclusive).
  /// `window_s` is clamped to kNumBuckets.
  Snapshot Over(int64_t now_s, int window_s) const;

 private:
  struct Bucket {
    int64_t second = -1;  // absolute second this bucket currently holds
    int64_t total = 0;
    int64_t errors = 0;
    int64_t slo_misses = 0;
    std::array<int32_t, kLatencyBuckets> latency{};
  };

  mutable std::mutex mu_;
  std::vector<Bucket> buckets_{static_cast<size_t>(kNumBuckets)};
};

struct SloOptions {
  /// Latency objective: an ok reply slower than this is an SLO miss.
  double latency_ms = 250.0;
  /// Availability/latency objective the error budget is measured against,
  /// e.g. 0.999 = "99.9% of requests succeed within latency_ms".
  double objective = 0.999;
};

/// The serving SLO view over a SlidingWindow: availability and latency
/// percentiles per window, plus multi-window burn rates — the rate at which
/// the error budget (1 - objective) is being consumed. Burn rate 1.0 means
/// "spending the budget exactly as fast as the objective allows"; the
/// classic page-worthy signal is a high burn on a short AND a long window
/// simultaneously (fast burn that is not just one bad second).
class SloTracker {
 public:
  explicit SloTracker(SloOptions options = {}) : options_(options) {}

  const SloOptions& options() const { return options_; }

  /// Records a finished request at the tracker's own monotonic clock.
  void Record(double latency_s, bool ok) {
    RecordAt(NowSeconds(), latency_s, ok);
  }
  /// Deterministic-time variant for tests.
  void RecordAt(int64_t now_s, double latency_s, bool ok) {
    window_.Record(now_s, latency_s, ok,
                   latency_s * 1e3 <= options_.latency_ms);
  }

  SlidingWindow::Snapshot Window(int window_s) const {
    return WindowAt(NowSeconds(), window_s);
  }
  SlidingWindow::Snapshot WindowAt(int64_t now_s, int window_s) const {
    return window_.Over(now_s, window_s);
  }

  /// bad_fraction / (1 - objective) over the window; 0.0 on empty windows.
  double BurnRate(int window_s) const {
    return BurnRateAt(NowSeconds(), window_s);
  }
  double BurnRateAt(int64_t now_s, int window_s) const;

  /// {"latency_slo_ms", "objective", "windows": {"1m": {...}, ...},
  ///  "burn_rate": {"5m": x, "1h": y}} — the /statusz "slo" section.
  JsonValue ToJson() const;

  /// Publishes the serve.slo.* gauges (availability/p50/p95/p99 per window,
  /// burn rates, and the configured objective) into the global registry so
  /// /metrics scrapes and periodic Prometheus flushes see fresh values.
  void PublishGauges() const;

  /// Seconds on the process monotonic clock (steady_clock based).
  static int64_t NowSeconds();

 private:
  SloOptions options_;
  SlidingWindow window_;
};

}  // namespace trail::obs

#endif  // TRAIL_OBS_SLIDING_WINDOW_H_
