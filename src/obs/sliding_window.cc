#include "obs/sliding_window.h"

#include <algorithm>
#include <chrono>

namespace trail::obs {

void SlidingWindow::Record(int64_t now_s, double latency_s, bool ok,
                           bool within_slo) {
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& bucket = buckets_[static_cast<size_t>(
      ((now_s % kNumBuckets) + kNumBuckets) % kNumBuckets)];
  if (bucket.second != now_s) {
    // Stale bucket from >= kNumBuckets seconds ago: restamp and zero.
    bucket.second = now_s;
    bucket.total = 0;
    bucket.errors = 0;
    bucket.slo_misses = 0;
    bucket.latency.fill(0);
  }
  ++bucket.total;
  if (!ok) {
    ++bucket.errors;
  } else if (!within_slo) {
    ++bucket.slo_misses;
  }
  int idx = Histogram::BucketIndex(latency_s);
  idx = std::min(idx, kLatencyBuckets - 1);
  ++bucket.latency[static_cast<size_t>(idx)];
}

SlidingWindow::Snapshot SlidingWindow::Over(int64_t now_s,
                                            int window_s) const {
  window_s = std::clamp(window_s, 1, kNumBuckets);
  Snapshot snap;
  std::array<int64_t, kLatencyBuckets> latency{};
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int back = 0; back < window_s; ++back) {
      const int64_t second = now_s - back;
      if (second < 0) break;
      const Bucket& bucket = buckets_[static_cast<size_t>(
          second % kNumBuckets)];
      if (bucket.second != second) continue;  // idle or stale second
      snap.total += bucket.total;
      snap.errors += bucket.errors;
      snap.slo_misses += bucket.slo_misses;
      for (int i = 0; i < kLatencyBuckets; ++i) {
        latency[static_cast<size_t>(i)] +=
            bucket.latency[static_cast<size_t>(i)];
      }
    }
  }
  if (snap.total == 0) return snap;
  snap.availability = 1.0 - static_cast<double>(snap.errors) /
                                static_cast<double>(snap.total);
  snap.bad_fraction = static_cast<double>(snap.errors + snap.slo_misses) /
                      static_cast<double>(snap.total);
  // Same bound approximation as Histogram::Quantile: the upper bound of the
  // bucket where the cumulative count crosses the rank.
  auto quantile = [&](double q) {
    const int64_t rank = static_cast<int64_t>(
        q * static_cast<double>(snap.total) + 0.5);
    int64_t cumulative = 0;
    for (int i = 0; i < kLatencyBuckets; ++i) {
      cumulative += latency[static_cast<size_t>(i)];
      if (cumulative >= rank && cumulative > 0) {
        return Histogram::BucketBound(i);
      }
    }
    return Histogram::BucketBound(kLatencyBuckets - 1);
  };
  snap.p50_s = quantile(0.50);
  snap.p95_s = quantile(0.95);
  snap.p99_s = quantile(0.99);
  return snap;
}

double SloTracker::BurnRateAt(int64_t now_s, int window_s) const {
  const SlidingWindow::Snapshot snap = window_.Over(now_s, window_s);
  const double budget = 1.0 - options_.objective;
  if (budget <= 0.0) return snap.bad_fraction > 0.0 ? 1e9 : 0.0;
  return snap.bad_fraction / budget;
}

namespace {

JsonValue SnapshotToJson(const SlidingWindow::Snapshot& snap) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("total", JsonValue::MakeNumber(static_cast<double>(snap.total)));
  out.Set("errors", JsonValue::MakeNumber(static_cast<double>(snap.errors)));
  out.Set("slo_misses",
          JsonValue::MakeNumber(static_cast<double>(snap.slo_misses)));
  out.Set("availability", JsonValue::MakeNumber(snap.availability));
  out.Set("p50_ms", JsonValue::MakeNumber(snap.p50_s * 1e3));
  out.Set("p95_ms", JsonValue::MakeNumber(snap.p95_s * 1e3));
  out.Set("p99_ms", JsonValue::MakeNumber(snap.p99_s * 1e3));
  return out;
}

}  // namespace

JsonValue SloTracker::ToJson() const {
  const int64_t now_s = NowSeconds();
  JsonValue out = JsonValue::MakeObject();
  out.Set("latency_slo_ms", JsonValue::MakeNumber(options_.latency_ms));
  out.Set("objective", JsonValue::MakeNumber(options_.objective));
  JsonValue windows = JsonValue::MakeObject();
  windows.Set("1m", SnapshotToJson(window_.Over(now_s, 60)));
  windows.Set("5m", SnapshotToJson(window_.Over(now_s, 300)));
  windows.Set("1h", SnapshotToJson(window_.Over(now_s, 3600)));
  out.Set("windows", std::move(windows));
  JsonValue burn = JsonValue::MakeObject();
  burn.Set("5m", JsonValue::MakeNumber(BurnRateAt(now_s, 300)));
  burn.Set("1h", JsonValue::MakeNumber(BurnRateAt(now_s, 3600)));
  out.Set("burn_rate", std::move(burn));
  return out;
}

void SloTracker::PublishGauges() const {
  const int64_t now_s = NowSeconds();
  const SlidingWindow::Snapshot m1 = window_.Over(now_s, 60);
  const SlidingWindow::Snapshot m5 = window_.Over(now_s, 300);
  const SlidingWindow::Snapshot h1 = window_.Over(now_s, 3600);
  TRAIL_METRIC_SET("serve.slo.availability_1m", m1.availability);
  TRAIL_METRIC_SET("serve.slo.availability_5m", m5.availability);
  TRAIL_METRIC_SET("serve.slo.availability_1h", h1.availability);
  TRAIL_METRIC_SET("serve.slo.p50_ms_1m", m1.p50_s * 1e3);
  TRAIL_METRIC_SET("serve.slo.p95_ms_1m", m1.p95_s * 1e3);
  TRAIL_METRIC_SET("serve.slo.p99_ms_1m", m1.p99_s * 1e3);
  TRAIL_METRIC_SET("serve.slo.burn_rate_5m", BurnRateAt(now_s, 300));
  TRAIL_METRIC_SET("serve.slo.burn_rate_1h", BurnRateAt(now_s, 3600));
  TRAIL_METRIC_SET("serve.slo.latency_target_ms", options_.latency_ms);
  TRAIL_METRIC_SET("serve.slo.objective", options_.objective);
}

int64_t SloTracker::NowSeconds() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

}  // namespace trail::obs
