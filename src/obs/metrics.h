#ifndef TRAIL_OBS_METRICS_H_
#define TRAIL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/json.h"

namespace trail::obs {

/// Naming convention (see docs/OBSERVABILITY.md): `subsystem.verb_noun`,
/// e.g. "osint.reports_fetched", "graph.events_ingested". Span latency
/// histograms are auto-named "span.<span name>".

/// Monotonically increasing count. Increment is a single relaxed atomic
/// add — safe and cheap from any thread, including ParallelFor workers.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. "graph.nodes").
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary latency/size histogram. Buckets are geometric: bucket i
/// holds observations in (kFirstBound * 2^(i-1), kFirstBound * 2^i], with
/// bucket 0 catching everything <= kFirstBound and the last bucket open
/// above. With kFirstBound = 1e-9 the 64 buckets cover one nanosecond to
/// ~18e9 units, which spans both second-denominated span latencies and
/// count-valued observations (frontier sizes, epoch losses). The hot path
/// is a log2 + three relaxed atomic adds — no locks.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;
  static constexpr double kFirstBound = 1e-9;

  void Observe(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double mean() const {
    int64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }
  int64_t bucket_count(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper boundary of bucket i (inclusive).
  static double BucketBound(int i);
  /// Index of the bucket `value` falls into.
  static int BucketIndex(double value);
  /// Approximate quantile: the upper bound of the bucket where the
  /// cumulative count crosses `q * count()`. Returns 0 when empty.
  double Quantile(double q) const;
  /// Named latency percentiles, for serving summary tables and the
  /// snapshot/export paths (same bucket-bound approximation as Quantile).
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::string name) : name_(std::move(name)) {}
  void Reset();
  void AddToSum(double delta);

  std::string name_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time value of one metric, for manifests and summaries.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;        // counter/gauge value; histogram sum
  int64_t count = 0;         // histogram observation count
  double mean = 0.0;         // histogram only
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;  // histogram only
};

/// Process-global registry. Lookup takes a mutex; instrumented call sites
/// amortize it by caching the returned handle in a function-local static
/// (see TRAIL_METRIC_* below). Handles stay valid for the process lifetime —
/// ResetForTest zeroes values but never invalidates pointers.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// All metrics in registration order.
  std::vector<MetricSnapshot> Snapshot() const;

  /// {"name": {...}} object with every metric's current value; embedded in
  /// run manifests.
  JsonValue ToJson() const;

  /// Prometheus text exposition format (0.0.4) of every registered metric,
  /// for `--metrics-out` scraping of long-running deployments. Dotted names
  /// are sanitized to `trail_<name with '.' -> '_'>`; counters gain the
  /// conventional `_total` suffix; histograms emit cumulative `_bucket`
  /// series (with an `le="+Inf"` catch-all) plus `_sum` and `_count`. The
  /// original dotted name travels in the `# HELP` line, escaped per the
  /// exposition spec (backslash and newline).
  std::string ToPrometheusText() const;

  /// Zeroes every registered metric. Handles remain valid.
  void ResetForTest();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;

  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::vector<Entry> entries_;                       // registration order
  std::unordered_map<std::string, size_t> index_;  // kind:name -> entries_ idx
};

/// Detailed (higher-overhead) metrics gate: per-layer frontier sizes and
/// similar O(n)-extra-work collection. Off by default so microbenchmarks
/// and library users pay nothing; RunContext turns it on for tools and
/// examples.
bool DetailedMetricsEnabled();
void SetDetailedMetrics(bool enabled);

/// Wires the thread-pool runtime into the registry: every top-level
/// ParallelFor reports `pool.tasks` (chunks executed), the
/// `pool.queue_depth` gauge, and a `span.parallel_for` latency histogram,
/// and `pool.workers` records the resolved worker count. util cannot link
/// obs (obs depends on util), so the pool exposes an observer hook and this
/// function installs the registry-publishing side. Idempotent; called by
/// RunContext and the bench harness.
void InstallParallelMetricsBridge();

}  // namespace trail::obs

/// Handle-cached instrumentation macros: the registry lookup happens once
/// per call site, after which the cost is one relaxed atomic op.
#define TRAIL_METRIC_INC(name)                                             \
  do {                                                                     \
    static ::trail::obs::Counter* _trail_c =                               \
        ::trail::obs::MetricsRegistry::Global().GetCounter(name);          \
    _trail_c->Increment();                                                 \
  } while (false)

#define TRAIL_METRIC_ADD(name, delta)                                      \
  do {                                                                     \
    static ::trail::obs::Counter* _trail_c =                               \
        ::trail::obs::MetricsRegistry::Global().GetCounter(name);          \
    _trail_c->Increment(static_cast<int64_t>(delta));                      \
  } while (false)

#define TRAIL_METRIC_SET(name, value)                                      \
  do {                                                                     \
    static ::trail::obs::Gauge* _trail_g =                                 \
        ::trail::obs::MetricsRegistry::Global().GetGauge(name);            \
    _trail_g->Set(static_cast<double>(value));                             \
  } while (false)

#define TRAIL_METRIC_OBSERVE(name, value)                                  \
  do {                                                                     \
    static ::trail::obs::Histogram* _trail_h =                             \
        ::trail::obs::MetricsRegistry::Global().GetHistogram(name);        \
    _trail_h->Observe(static_cast<double>(value));                         \
  } while (false)

#endif  // TRAIL_OBS_METRICS_H_
