#ifndef TRAIL_OBS_MANIFEST_H_
#define TRAIL_OBS_MANIFEST_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/log_sinks.h"
#include "util/json.h"
#include "util/status.h"

namespace trail::obs {

/// Compile-time provenance baked in by src/obs/CMakeLists.txt.
struct BuildInfo {
  std::string git_describe;
  std::string build_type;
  std::string compiler;
  std::string cxx_flags;
};
const BuildInfo& GetBuildInfo();

/// Machine-readable record of one run: tool name + argv, build provenance,
/// caller-supplied option structs, every metric in the registry, and the
/// per-phase timings derived from "span.phase.*" histograms. This is the
/// artifact the longitudinal staleness study and the BENCH_*.json
/// trajectory compare across months/commits.
class RunManifest {
 public:
  explicit RunManifest(std::string tool) : tool_(std::move(tool)) {}

  void SetArgs(int argc, char** argv);
  /// Attaches an option struct (e.g. core::OptionsToJson(trail_options)).
  void AddOption(const std::string& key, JsonValue value);
  void SetTraceFile(std::string path) { trace_file_ = std::move(path); }
  void SetExitCode(int code) { exit_code_ = code; }

  /// Schema: {"tool", "args", "build": {...}, "options": {...},
  ///          "phases": {...seconds...}, "metrics": {...}, "trace_file",
  ///          "exit_code"}.
  JsonValue ToJson() const;
  Status WriteFile(const std::string& path) const;

 private:
  std::string tool_;
  std::vector<std::string> args_;
  JsonValue options_ = JsonValue::MakeObject();
  std::string trace_file_;
  int exit_code_ = 0;
};

/// Fixes the exit-only metrics gap for long-running servers: a background
/// thread rewrites `path` with the registry's Prometheus text every
/// `interval_s` seconds (and once more on Stop), via write-to-temp +
/// atomic rename so a concurrent scraper of the file never sees a torn or
/// half-written dump. Independent of the HTTP introspection endpoint — this
/// is the file-based path for hosts where only a node-exporter-style
/// textfile collector is available.
class PeriodicMetricsFlusher {
 public:
  /// `pre_flush` (optional) runs before every dump — e.g. refreshing the
  /// serve.slo.* gauges so the file carries current window values.
  PeriodicMetricsFlusher(std::string path, double interval_s,
                         std::function<void()> pre_flush = nullptr);
  ~PeriodicMetricsFlusher();

  /// Flushes once more and joins the thread. Idempotent.
  void Stop();

  /// Dumps the registry to `path` via temp-file + rename. Also usable
  /// standalone for one-shot atomic dumps.
  static Status WriteAtomic(const std::string& path);

  int64_t flushes() const { return flushes_.load(); }

  PeriodicMetricsFlusher(const PeriodicMetricsFlusher&) = delete;
  PeriodicMetricsFlusher& operator=(const PeriodicMetricsFlusher&) = delete;

 private:
  void Loop();
  void FlushOnce();

  std::string path_;
  double interval_s_;
  std::function<void()> pre_flush_;
  std::atomic<int64_t> flushes_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

/// Program-scope observability harness for tools, examples, and benches.
/// Construction parses the shared flags (both "--flag value" and
/// "--flag=value" forms; unknown flags are left for the caller):
///
///   --log-level LEVEL     debug|info|warning|error
///   --log-json FILE       add a JSON-lines log sink (stderr stays on)
///   --trace-out FILE      enable tracing; Chrome trace written at exit
///   --manifest-out FILE   manifest path ("none" disables; default
///                         run_manifest.json)
///   --threads N           worker threads for the parallel runtime
///                         (overrides TRAIL_THREADS; see docs/PARALLELISM.md)
///   --metrics-out FILE    write the metrics registry in Prometheus text
///                         format at exit
///
/// Environment fallbacks: TRAIL_TRACE_OUT, TRAIL_RUN_MANIFEST,
/// TRAIL_LOG_LEVEL, TRAIL_THREADS, TRAIL_METRICS_OUT. Destruction writes
/// the trace file, the manifest, and the Prometheus dump. Detailed metrics
/// collection (and the pool.* metrics bridge) is enabled for the scope's
/// lifetime.
class RunContext {
 public:
  RunContext(std::string tool, int argc, char** argv);
  ~RunContext();

  RunManifest& manifest() { return manifest_; }
  const std::string& manifest_path() const { return manifest_path_; }
  const std::string& trace_path() const { return trace_path_; }
  const std::string& metrics_path() const { return metrics_path_; }
  void set_exit_code(int code) { manifest_.SetExitCode(code); }

  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

 private:
  RunManifest manifest_;
  std::string manifest_path_ = "run_manifest.json";
  std::string trace_path_;
  std::string metrics_path_;
  std::unique_ptr<JsonLinesFileSink> json_sink_;
};

}  // namespace trail::obs

#endif  // TRAIL_OBS_MANIFEST_H_
