#include "obs/request_trace.h"

#include <algorithm>

namespace trail::obs {

JsonValue RequestTrace::ToJson() const {
  JsonValue out = JsonValue::MakeObject();
  out.Set("trace_id", JsonValue::MakeNumber(static_cast<double>(trace_id)));
  out.Set("batch_id", JsonValue::MakeNumber(static_cast<double>(batch_id)));
  out.Set("batch_size",
          JsonValue::MakeNumber(static_cast<double>(batch_size)));
  out.Set("status_code",
          JsonValue::MakeNumber(static_cast<double>(status_code)));
  out.Set("queued_us", JsonValue::MakeNumber(static_cast<double>(queued_us)));
  out.Set("admitted_us",
          JsonValue::MakeNumber(static_cast<double>(admitted_us)));
  out.Set("batched_us",
          JsonValue::MakeNumber(static_cast<double>(batched_us)));
  out.Set("inferred_us",
          JsonValue::MakeNumber(static_cast<double>(inferred_us)));
  out.Set("replied_us",
          JsonValue::MakeNumber(static_cast<double>(replied_us)));
  out.Set("wall_queued_us",
          JsonValue::MakeNumber(static_cast<double>(wall_queued_us)));
  out.Set("total_ms", JsonValue::MakeNumber(TotalSeconds() * 1e3));
  return out;
}

RequestTraceRing::RequestTraceRing(size_t capacity) {
  size_t rounded = 2;
  while (rounded < capacity) rounded <<= 1;
  slots_ = std::vector<Slot>(rounded);
  mask_ = rounded - 1;
  exemplars_.reserve(kNumExemplars);
}

void RequestTraceRing::Publish(const RequestTrace& trace) {
  Slot& slot = slots_[next_.fetch_add(1, std::memory_order_relaxed) & mask_];
  // Claim the slot: even -> odd. A failed claim means another publisher
  // lapped the ring into this very slot mid-write; losing one sample beats
  // spinning on the serving hot path.
  uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  if ((seq & 1) != 0 ||
      !slot.seq.compare_exchange_strong(seq, seq + 1,
                                        std::memory_order_acq_rel)) {
    contended_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.trace_id.store(trace.trace_id, std::memory_order_relaxed);
  slot.batch_id.store(trace.batch_id, std::memory_order_relaxed);
  slot.batch_size.store(trace.batch_size, std::memory_order_relaxed);
  slot.status_code.store(trace.status_code, std::memory_order_relaxed);
  slot.queued_us.store(trace.queued_us, std::memory_order_relaxed);
  slot.admitted_us.store(trace.admitted_us, std::memory_order_relaxed);
  slot.batched_us.store(trace.batched_us, std::memory_order_relaxed);
  slot.inferred_us.store(trace.inferred_us, std::memory_order_relaxed);
  slot.replied_us.store(trace.replied_us, std::memory_order_relaxed);
  slot.wall_queued_us.store(trace.wall_queued_us, std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);

  // Tail-latency exemplars: fast requests bail on one relaxed load.
  const int64_t total_us = trace.replied_us - trace.queued_us;
  if (total_us < exemplar_floor_us_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  if (exemplars_.size() >= kNumExemplars &&
      total_us <= exemplars_.back().replied_us - exemplars_.back().queued_us) {
    return;  // floor raced ahead; still not slow enough
  }
  exemplars_.push_back(trace);
  std::sort(exemplars_.begin(), exemplars_.end(),
            [](const RequestTrace& a, const RequestTrace& b) {
              return a.replied_us - a.queued_us > b.replied_us - b.queued_us;
            });
  if (exemplars_.size() > kNumExemplars) exemplars_.resize(kNumExemplars);
  if (exemplars_.size() == kNumExemplars) {
    exemplar_floor_us_.store(
        exemplars_.back().replied_us - exemplars_.back().queued_us,
        std::memory_order_relaxed);
  }
}

bool RequestTraceRing::ReadSlot(const Slot& slot, RequestTrace* out) {
  const uint64_t before = slot.seq.load(std::memory_order_acquire);
  if (before == 0 || (before & 1) != 0) return false;
  out->trace_id = slot.trace_id.load(std::memory_order_relaxed);
  out->batch_id = slot.batch_id.load(std::memory_order_relaxed);
  out->batch_size = slot.batch_size.load(std::memory_order_relaxed);
  out->status_code = slot.status_code.load(std::memory_order_relaxed);
  out->queued_us = slot.queued_us.load(std::memory_order_relaxed);
  out->admitted_us = slot.admitted_us.load(std::memory_order_relaxed);
  out->batched_us = slot.batched_us.load(std::memory_order_relaxed);
  out->inferred_us = slot.inferred_us.load(std::memory_order_relaxed);
  out->replied_us = slot.replied_us.load(std::memory_order_relaxed);
  out->wall_queued_us = slot.wall_queued_us.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  return slot.seq.load(std::memory_order_relaxed) == before;
}

std::vector<RequestTrace> RequestTraceRing::Snapshot(size_t limit) const {
  const uint64_t end = next_.load(std::memory_order_acquire);
  const uint64_t span =
      std::min<uint64_t>(end, static_cast<uint64_t>(slots_.size()));
  std::vector<RequestTrace> out;
  out.reserve(limit > 0 ? std::min<uint64_t>(span, limit) : span);
  for (uint64_t back = 1; back <= span; ++back) {
    if (limit > 0 && out.size() >= limit) break;
    RequestTrace trace;
    if (ReadSlot(slots_[(end - back) & mask_], &trace)) {
      out.push_back(trace);
    }
  }
  return out;
}

std::vector<RequestTrace> RequestTraceRing::SlowestExemplars() const {
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  return exemplars_;
}

JsonValue RequestTraceRing::ToJson(size_t limit) const {
  JsonValue out = JsonValue::MakeObject();
  out.Set("published",
          JsonValue::MakeNumber(static_cast<double>(published())));
  out.Set("capacity",
          JsonValue::MakeNumber(static_cast<double>(capacity())));
  out.Set("contended",
          JsonValue::MakeNumber(static_cast<double>(contended())));
  JsonValue traces = JsonValue::MakeArray();
  for (const RequestTrace& trace : Snapshot(limit)) {
    traces.Append(trace.ToJson());
  }
  out.Set("traces", std::move(traces));
  JsonValue slowest = JsonValue::MakeArray();
  for (const RequestTrace& trace : SlowestExemplars()) {
    slowest.Append(trace.ToJson());
  }
  out.Set("slowest", std::move(slowest));
  return out;
}

}  // namespace trail::obs
