#ifndef TRAIL_OBS_HTTP_INTROSPECT_H_
#define TRAIL_OBS_HTTP_INTROSPECT_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace trail::obs {

struct HttpRequest {
  std::string method;  // "GET"
  std::string path;    // "/statusz" (query string stripped)
  std::string query;   // "limit=32" (no leading '?')

  /// Numeric query parameter, `fallback` when absent or non-numeric.
  int64_t QueryInt(const std::string& key, int64_t fallback) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;

  static HttpResponse Json(const std::string& body);
  static HttpResponse Text(const std::string& body);
  static HttpResponse NotFound(const std::string& what);
  /// 503 with a plain-text body — the not-ready /readyz shape.
  static HttpResponse Unavailable(const std::string& why);
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// A minimal dependency-free HTTP/1.1 server for live introspection of a
/// long-running process: GET-only, exact-path routing, one response per
/// connection (Connection: close). Built on the same loopback-socket
/// pattern as serve::LineServer — accept thread plus one short-lived thread
/// per connection, reaped as they finish — because scrape requests are tiny
/// and rare compared to serving traffic; this is an admin plane, not a web
/// server. Handlers run on the connection's thread and must be thread-safe
/// against each other and against the process they introspect.
class HttpIntrospectServer {
 public:
  HttpIntrospectServer();
  ~HttpIntrospectServer();

  HttpIntrospectServer(const HttpIntrospectServer&) = delete;
  HttpIntrospectServer& operator=(const HttpIntrospectServer&) = delete;

  /// Registers `handler` for exact path `path` (e.g. "/metrics"). Must be
  /// called before Start.
  void Handle(const std::string& path, HttpHandler handler);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port()) and
  /// starts the accept thread.
  Status Start(int port);

  /// The bound port (after Start succeeds).
  int port() const { return port_; }

  /// Registered paths, sorted — the "/" index page body.
  std::vector<std::string> paths() const;

  /// Stops accepting, unblocks in-flight connections, joins all threads.
  /// Idempotent; also run by the destructor.
  void Stop();

 private:
  struct Connection;

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  HttpResponse Dispatch(const HttpRequest& request) const;
  void Reap(bool all);

  std::map<std::string, HttpHandler> handlers_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;

  std::mutex mu_;  // guards connections_, stopping_
  std::vector<std::unique_ptr<Connection>> connections_;
  bool stopping_ = false;
};

}  // namespace trail::obs

#endif  // TRAIL_OBS_HTTP_INTROSPECT_H_
