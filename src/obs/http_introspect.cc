#include "obs/http_introspect.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace trail::obs {

int64_t HttpRequest::QueryInt(const std::string& key, int64_t fallback) const {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.compare(0, eq, key) == 0) {
      const std::string value = pair.substr(eq + 1);
      char* end = nullptr;
      const long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (end != value.c_str() && *end == '\0') return parsed;
      return fallback;
    }
    pos = amp + 1;
  }
  return fallback;
}

HttpResponse HttpResponse::Json(const std::string& body) {
  HttpResponse r;
  r.body = body;
  return r;
}

HttpResponse HttpResponse::Text(const std::string& body) {
  HttpResponse r;
  r.content_type = "text/plain; charset=utf-8";
  r.body = body;
  return r;
}

HttpResponse HttpResponse::NotFound(const std::string& what) {
  HttpResponse r;
  r.status = 404;
  r.content_type = "text/plain; charset=utf-8";
  r.body = "not found: " + what + "\n";
  return r;
}

HttpResponse HttpResponse::Unavailable(const std::string& why) {
  HttpResponse r;
  r.status = 503;
  r.content_type = "text/plain; charset=utf-8";
  r.body = why + "\n";
  return r;
}

/// One in-flight scrape connection (same reap discipline as
/// serve::LineServer::Connection, minus the reply pipeline — HTTP here is
/// strictly one request, one response, close).
struct HttpIntrospectServer::Connection {
  int fd = -1;
  std::thread worker;
  std::atomic<bool> finished{false};
};

HttpIntrospectServer::HttpIntrospectServer() = default;

HttpIntrospectServer::~HttpIntrospectServer() { Stop(); }

void HttpIntrospectServer::Handle(const std::string& path,
                                  HttpHandler handler) {
  handlers_[path] = std::move(handler);
}

std::vector<std::string> HttpIntrospectServer::paths() const {
  std::vector<std::string> out;
  out.reserve(handlers_.size());
  for (const auto& [path, handler] : handlers_) out.push_back(path);
  return out;
}

Status HttpIntrospectServer::Start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  TRAIL_LOG(Info) << "introspection endpoints on 127.0.0.1:" << port_;
  return Status::Ok();
}

void HttpIntrospectServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        if (fd >= 0) ::close(fd);
        return;
      }
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed under us
    }
    // A stalled scraper must not pin a connection thread forever.
    timeval timeout{};
    timeout.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    Connection* raw = conn.get();
    raw->fd = fd;
    raw->worker = std::thread([this, raw] { ServeConnection(raw); });
    {
      std::lock_guard<std::mutex> lock(mu_);
      connections_.push_back(std::move(conn));
    }
    Reap(/*all=*/false);
  }
}

namespace {

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// `head` omits the body but keeps Content-Length describing what a GET
/// would have returned, per the HEAD contract.
std::string RenderResponse(const HttpResponse& response, bool head) {
  const char* reason = "OK";
  switch (response.status) {
    case 200: reason = "OK"; break;
    case 400: reason = "Bad Request"; break;
    case 404: reason = "Not Found"; break;
    case 405: reason = "Method Not Allowed"; break;
    case 503: reason = "Service Unavailable"; break;
    default: reason = "Status"; break;
  }
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    reason + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (!head) out += response.body;
  return out;
}

/// Reads until the end of the request headers ("\r\n\r\n"). GET requests
/// have no body, so nothing further is consumed. False on EOF/timeout or a
/// header block past the sanity cap.
bool ReadHeaders(int fd, std::string* raw) {
  constexpr size_t kMaxHeaderBytes = 64 * 1024;
  char buf[4096];
  while (raw->find("\r\n\r\n") == std::string::npos) {
    if (raw->size() > kMaxHeaderBytes) return false;
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    raw->append(buf, static_cast<size_t>(n));
  }
  return true;
}

}  // namespace

HttpResponse HttpIntrospectServer::Dispatch(const HttpRequest& request)
    const {
  if (request.method != "GET" && request.method != "HEAD") {
    HttpResponse r;
    r.status = 405;
    r.content_type = "text/plain; charset=utf-8";
    r.body = "only GET is supported\n";
    return r;
  }
  auto it = handlers_.find(request.path);
  if (it == handlers_.end()) {
    if (request.path == "/") {
      std::string index;
      for (const std::string& path : paths()) index += path + "\n";
      return HttpResponse::Text(index);
    }
    return HttpResponse::NotFound(request.path);
  }
  return it->second(request);
}

void HttpIntrospectServer::ServeConnection(Connection* conn) {
  std::string raw;
  HttpResponse response;
  bool head = false;
  if (!ReadHeaders(conn->fd, &raw)) {
    response.status = 400;
    response.content_type = "text/plain; charset=utf-8";
    response.body = "malformed request\n";
  } else {
    // Request line: METHOD SP TARGET SP VERSION.
    const size_t line_end = raw.find("\r\n");
    const std::string line = raw.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                : line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos) {
      response.status = 400;
      response.content_type = "text/plain; charset=utf-8";
      response.body = "malformed request line\n";
    } else {
      HttpRequest request;
      request.method = line.substr(0, sp1);
      std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const size_t question = target.find('?');
      if (question != std::string::npos) {
        request.query = target.substr(question + 1);
        target.resize(question);
      }
      request.path = std::move(target);
      head = request.method == "HEAD";
      response = Dispatch(request);
    }
  }
  SendAll(conn->fd, RenderResponse(response, head));
  ::shutdown(conn->fd, SHUT_WR);
  conn->finished.store(true, std::memory_order_release);
}

void HttpIntrospectServer::Reap(bool all) {
  std::vector<std::unique_ptr<Connection>> dead;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      if (all || (*it)->finished.load(std::memory_order_acquire)) {
        dead.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::unique_ptr<Connection>& conn : dead) {
    ::shutdown(conn->fd, SHUT_RDWR);  // unblocks a still-live recv
    if (conn->worker.joinable()) conn->worker.join();
    ::close(conn->fd);
  }
}

void HttpIntrospectServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept()
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  Reap(/*all=*/true);
}

}  // namespace trail::obs
