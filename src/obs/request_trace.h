#ifndef TRAIL_OBS_REQUEST_TRACE_H_
#define TRAIL_OBS_REQUEST_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "util/json.h"

namespace trail::obs {

/// One served request's life, as five stage timestamps on the process trace
/// clock (TraceRecorder::NowMicros — the same epoch --trace-out spans use,
/// so a /tracez entry lines up with a Chrome trace of the same run):
///
///   queued   — submission arrived (before admission control)
///   admitted — passed the bounded admission queue (0 when shed)
///   batched  — the micro-batch containing it was formed
///   inferred — the shared GNN forward for that batch finished (0 when the
///              request was answered before inference: shed, expired,
///              parse/lookup failures)
///   replied  — the response was resolved to the caller
///
/// `wall_queued_us` is the wall clock (Unix epoch microseconds) at the
/// queued stage, the bridge for correlating /tracez with /logz and external
/// systems. `batch_id`/`batch_size` link a slow request to the exact batch
/// that served it (0 when it never reached one).
struct RequestTrace {
  uint64_t trace_id = 0;
  uint64_t batch_id = 0;
  uint32_t batch_size = 0;
  /// util StatusCode as int; 0 == ok.
  int32_t status_code = 0;
  int64_t queued_us = 0;
  int64_t admitted_us = 0;
  int64_t batched_us = 0;
  int64_t inferred_us = 0;
  int64_t replied_us = 0;
  int64_t wall_queued_us = 0;

  /// End-to-end latency (replied - queued), in seconds.
  double TotalSeconds() const {
    return static_cast<double>(replied_us - queued_us) * 1e-6;
  }
  JsonValue ToJson() const;
};

/// Bounded ring of the most recent completed request traces, plus a small
/// set of slowest-request exemplars. Publication is lock-free: the writer
/// claims a slot with one fetch_add and guards it with a per-slot seqlock
/// (odd = write in progress), every payload field a relaxed atomic — so the
/// serving hot path never takes a lock and a concurrent /tracez scrape
/// never blocks it. Readers that catch a slot mid-write skip it (the
/// snapshot is a sample, not an audit log). The exemplar table is updated
/// under a mutex, but only after a relaxed threshold check that makes the
/// common (fast-request) case one atomic load.
class RequestTraceRing {
 public:
  static constexpr size_t kNumExemplars = 8;

  /// `capacity` is rounded up to a power of two; minimum 2.
  explicit RequestTraceRing(size_t capacity = 2048);

  /// Publishes a completed trace. Thread-safe, lock-free on the ring path.
  void Publish(const RequestTrace& trace);

  /// Most recent traces, newest first, at most `limit` (0 = all readable).
  /// Slots being concurrently rewritten are skipped.
  std::vector<RequestTrace> Snapshot(size_t limit = 0) const;

  /// The slowest completed requests seen so far, slowest first.
  std::vector<RequestTrace> SlowestExemplars() const;

  size_t capacity() const { return slots_.size(); }
  /// Total traces ever published (ring overwrites are not drops).
  uint64_t published() const {
    return next_.load(std::memory_order_relaxed);
  }
  /// Traces skipped because their slot was contended mid-wrap.
  uint64_t contended() const {
    return contended_.load(std::memory_order_relaxed);
  }

  /// {"published": N, "traces": [...], "slowest": [...]} — the /tracez body.
  JsonValue ToJson(size_t limit = 256) const;

 private:
  /// Seqlock-guarded slot. Payload fields are relaxed atomics (not a plain
  /// struct) so concurrent read/write is defined behavior; the seq check
  /// gives the consistency.
  struct Slot {
    std::atomic<uint64_t> seq{0};  // even = stable, odd = being written
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> batch_id{0};
    std::atomic<uint32_t> batch_size{0};
    std::atomic<int32_t> status_code{0};
    std::atomic<int64_t> queued_us{0};
    std::atomic<int64_t> admitted_us{0};
    std::atomic<int64_t> batched_us{0};
    std::atomic<int64_t> inferred_us{0};
    std::atomic<int64_t> replied_us{0};
    std::atomic<int64_t> wall_queued_us{0};
  };

  /// Reads `slot` into `out` iff a consistent (even, unchanged) seq pair
  /// brackets the field reads.
  static bool ReadSlot(const Slot& slot, RequestTrace* out);

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> contended_{0};

  /// Fast-path filter for the exemplar table: publishes below this total
  /// latency (microseconds) skip the mutex entirely.
  std::atomic<int64_t> exemplar_floor_us_{0};
  mutable std::mutex exemplar_mu_;
  std::vector<RequestTrace> exemplars_;  // sorted slowest first
};

}  // namespace trail::obs

#endif  // TRAIL_OBS_REQUEST_TRACE_H_
