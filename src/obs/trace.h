#ifndef TRAIL_OBS_TRACE_H_
#define TRAIL_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace trail::obs {

/// One completed span, in Chrome trace_event "X" (complete-event) terms.
struct TraceEvent {
  const char* name;   // span name; must outlive the recorder (string literal)
  int64_t start_us;   // microseconds since process trace epoch
  int64_t dur_us;
  int tid;            // small dense thread index, not the OS id
};

/// Process-global timeline recorder. Disabled by default: spans then cost
/// only their latency-histogram observation. When enabled (--trace-out),
/// completed spans are buffered and can be written as Chrome trace-event
/// JSON loadable in chrome://tracing or Perfetto.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void RecordComplete(const char* name, int64_t start_us, int64_t dur_us);

  size_t num_events() const;
  /// Events dropped after the buffer cap was reached.
  int64_t num_dropped() const { return dropped_.load(); }
  void Clear();

  /// {"traceEvents": [...], "displayTimeUnit": "ms"}.
  JsonValue ToJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  /// Microseconds since the process trace epoch (first call).
  static int64_t NowMicros();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

 private:
  TraceRecorder() = default;
  int TidIndexLocked(std::thread::id id);

  static constexpr size_t kMaxEvents = 1 << 20;

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::unordered_map<std::thread::id, int> tids_;
};

/// RAII scope timer: on destruction records wall time into `histogram`
/// (seconds) and, when tracing is enabled, appends a timeline event. Use
/// via TRAIL_TRACE_SPAN so the histogram handle is cached per call site.
class TraceSpan {
 public:
  TraceSpan(const char* name, Histogram* histogram)
      : name_(name),
        histogram_(histogram),
        start_(std::chrono::steady_clock::now()),
        start_us_(TraceRecorder::Global().enabled() ? TraceRecorder::NowMicros()
                                                    : -1) {}

  ~TraceSpan() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const double seconds =
        std::chrono::duration<double>(elapsed).count();
    if (histogram_ != nullptr) histogram_->Observe(seconds);
    if (start_us_ >= 0) {
      TraceRecorder::Global().RecordComplete(
          name_, start_us_,
          std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
              .count());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
  int64_t start_us_;
};

/// Prints a one-line summary of every "span.phase.*" histogram, in
/// registration (i.e. execution) order: `[phases] ingest 1.20s | train 3.4s`.
void PrintPhaseSummary();

}  // namespace trail::obs

#define TRAIL_OBS_CONCAT_INNER(a, b) a##b
#define TRAIL_OBS_CONCAT(a, b) TRAIL_OBS_CONCAT_INNER(a, b)

/// Scoped span: records wall time into histogram "span.<name>" and into the
/// --trace-out timeline. `name` must be a string literal (it is retained by
/// the recorder unescaped and un-copied).
#define TRAIL_TRACE_SPAN(name)                                              \
  static ::trail::obs::Histogram* TRAIL_OBS_CONCAT(_trail_span_hist_,       \
                                                   __LINE__) =              \
      ::trail::obs::MetricsRegistry::Global().GetHistogram("span." name);   \
  ::trail::obs::TraceSpan TRAIL_OBS_CONCAT(_trail_span_, __LINE__)(         \
      name, TRAIL_OBS_CONCAT(_trail_span_hist_, __LINE__))

#endif  // TRAIL_OBS_TRACE_H_
