#ifndef TRAIL_OBS_LOG_SINKS_H_
#define TRAIL_OBS_LOG_SINKS_H_

#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/logging.h"
#include "util/status.h"

namespace trail::obs {

/// The default text format, made explicit: one "[LEVEL file:line] msg" line
/// per record, a single fwrite each. Register it alongside other sinks to
/// keep stderr output once a sink list exists.
class StderrTextSink : public LogSink {
 public:
  void Write(const LogRecord& record) override;
};

/// JSON-lines structured log file: one compact object per record —
/// {"ts_us":..., "level":"INFO", "file":"x.cc", "line":12, "msg":"..."}.
class JsonLinesFileSink : public LogSink {
 public:
  /// Opens `path` for appending; `ok()` is false when the open failed (the
  /// sink then drops records).
  explicit JsonLinesFileSink(const std::string& path);
  ~JsonLinesFileSink() override;

  bool ok() const { return file_ != nullptr; }
  void Write(const LogRecord& record) override;
  void Flush();

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
};

/// Bounded in-memory sink: keeps the most recent `capacity` records
/// (formatted copies) so tests can inspect log output without scraping
/// stderr, and so a live server can expose its log tail at /logz. Entries
/// carry both the record's monotonic timestamp (`time_us`, process log
/// epoch) and a wall clock captured at write time (`wall_us`, Unix epoch
/// microseconds) — the wall stamp is what lets a /logz line be correlated
/// with a /tracez request trace or an external log pipeline.
class RingBufferSink : public LogSink {
 public:
  struct Entry {
    LogLevel level;
    std::string file;
    int line;
    std::string message;
    int64_t time_us = 0;  // monotonic, process log epoch
    int64_t wall_us = 0;  // wall clock, Unix epoch microseconds
  };

  explicit RingBufferSink(size_t capacity = 256) : capacity_(capacity) {}

  void Write(const LogRecord& record) override;

  std::vector<Entry> entries() const;
  size_t size() const;
  /// True when any buffered message contains `substring`.
  bool Contains(std::string_view substring) const;
  void Clear();

  /// {"entries": [{"level","file","line","msg","ts_us","wall_us"}...]},
  /// oldest first — the /logz body.
  JsonValue ToJson() const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::deque<Entry> entries_;
};

/// RAII registration so sinks always deregister before destruction.
class ScopedLogSink {
 public:
  explicit ScopedLogSink(LogSink* sink) : sink_(sink) { AddLogSink(sink_); }
  ~ScopedLogSink() { RemoveLogSink(sink_); }

  ScopedLogSink(const ScopedLogSink&) = delete;
  ScopedLogSink& operator=(const ScopedLogSink&) = delete;

 private:
  LogSink* sink_;
};

}  // namespace trail::obs

#endif  // TRAIL_OBS_LOG_SINKS_H_
