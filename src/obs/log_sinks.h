#ifndef TRAIL_OBS_LOG_SINKS_H_
#define TRAIL_OBS_LOG_SINKS_H_

#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/status.h"

namespace trail::obs {

/// The default text format, made explicit: one "[LEVEL file:line] msg" line
/// per record, a single fwrite each. Register it alongside other sinks to
/// keep stderr output once a sink list exists.
class StderrTextSink : public LogSink {
 public:
  void Write(const LogRecord& record) override;
};

/// JSON-lines structured log file: one compact object per record —
/// {"ts_us":..., "level":"INFO", "file":"x.cc", "line":12, "msg":"..."}.
class JsonLinesFileSink : public LogSink {
 public:
  /// Opens `path` for appending; `ok()` is false when the open failed (the
  /// sink then drops records).
  explicit JsonLinesFileSink(const std::string& path);
  ~JsonLinesFileSink() override;

  bool ok() const { return file_ != nullptr; }
  void Write(const LogRecord& record) override;
  void Flush();

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
};

/// Bounded in-memory sink for tests: keeps the most recent `capacity`
/// records (formatted copies) so assertions can inspect log output without
/// scraping stderr.
class RingBufferSink : public LogSink {
 public:
  struct Entry {
    LogLevel level;
    std::string file;
    int line;
    std::string message;
  };

  explicit RingBufferSink(size_t capacity = 256) : capacity_(capacity) {}

  void Write(const LogRecord& record) override;

  std::vector<Entry> entries() const;
  size_t size() const;
  /// True when any buffered message contains `substring`.
  bool Contains(std::string_view substring) const;
  void Clear();

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::deque<Entry> entries_;
};

/// RAII registration so sinks always deregister before destruction.
class ScopedLogSink {
 public:
  explicit ScopedLogSink(LogSink* sink) : sink_(sink) { AddLogSink(sink_); }
  ~ScopedLogSink() { RemoveLogSink(sink_); }

  ScopedLogSink(const ScopedLogSink&) = delete;
  ScopedLogSink& operator=(const ScopedLogSink&) = delete;

 private:
  LogSink* sink_;
};

}  // namespace trail::obs

#endif  // TRAIL_OBS_LOG_SINKS_H_
