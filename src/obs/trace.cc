#include "obs/trace.h"

#include <cstdio>
#include <fstream>

#include "util/string_util.h"

namespace trail::obs {

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never freed
  return *recorder;
}

int64_t TraceRecorder::NowMicros() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

int TraceRecorder::TidIndexLocked(std::thread::id id) {
  auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  int tid = static_cast<int>(tids_.size());
  tids_.emplace(id, tid);
  return tid;
}

void TraceRecorder::RecordComplete(const char* name, int64_t start_us,
                                   int64_t dur_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(TraceEvent{name, start_us, dur_us,
                               TidIndexLocked(std::this_thread::get_id())});
}

size_t TraceRecorder::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0);
}

JsonValue TraceRecorder::ToJson() const {
  JsonValue trace_events = JsonValue::MakeArray();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const TraceEvent& event : events_) {
      JsonValue e = JsonValue::MakeObject();
      e.Set("name", JsonValue::MakeString(event.name));
      e.Set("cat", JsonValue::MakeString("trail"));
      e.Set("ph", JsonValue::MakeString("X"));
      e.Set("ts", JsonValue::MakeNumber(static_cast<double>(event.start_us)));
      e.Set("dur", JsonValue::MakeNumber(static_cast<double>(event.dur_us)));
      e.Set("pid", JsonValue::MakeNumber(1));
      e.Set("tid", JsonValue::MakeNumber(event.tid));
      trace_events.Append(std::move(e));
    }
  }
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("traceEvents", std::move(trace_events));
  doc.Set("displayTimeUnit", JsonValue::MakeString("ms"));
  return doc;
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot write trace file: " + path);
  file << ToJson().Dump(2) << "\n";
  if (!file.good()) return Status::IoError("trace write failed: " + path);
  return Status::Ok();
}

void PrintPhaseSummary() {
  constexpr std::string_view kPrefix = "span.phase.";
  std::string line;
  double total = 0.0;
  for (const MetricSnapshot& snap : MetricsRegistry::Global().Snapshot()) {
    if (snap.kind != MetricKind::kHistogram) continue;
    if (snap.name.compare(0, kPrefix.size(), kPrefix) != 0) continue;
    if (!line.empty()) line += " | ";
    line += snap.name.substr(kPrefix.size());
    line += " " + FormatDouble(snap.value, 2) + "s";
    total += snap.value;
  }
  if (line.empty()) return;
  std::printf("[phases] %s (total %s s)\n", line.c_str(),
              FormatDouble(total, 2).c_str());
}

}  // namespace trail::obs
