#include "obs/manifest.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/parallel.h"

#ifndef TRAIL_GIT_DESCRIBE
#define TRAIL_GIT_DESCRIBE "unknown"
#endif
#ifndef TRAIL_BUILD_TYPE
#define TRAIL_BUILD_TYPE "unknown"
#endif
#ifndef TRAIL_COMPILER
#define TRAIL_COMPILER "unknown"
#endif
#ifndef TRAIL_CXX_FLAGS
#define TRAIL_CXX_FLAGS ""
#endif

namespace trail::obs {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info{TRAIL_GIT_DESCRIBE, TRAIL_BUILD_TYPE,
                              TRAIL_COMPILER, TRAIL_CXX_FLAGS};
  return info;
}

void RunManifest::SetArgs(int argc, char** argv) {
  args_.assign(argv, argv + argc);
}

void RunManifest::AddOption(const std::string& key, JsonValue value) {
  options_.Set(key, std::move(value));
}

JsonValue RunManifest::ToJson() const {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("tool", JsonValue::MakeString(tool_));

  JsonValue args = JsonValue::MakeArray();
  for (const std::string& arg : args_) {
    args.Append(JsonValue::MakeString(arg));
  }
  doc.Set("args", std::move(args));

  const BuildInfo& info = GetBuildInfo();
  JsonValue build = JsonValue::MakeObject();
  build.Set("git_describe", JsonValue::MakeString(info.git_describe));
  build.Set("build_type", JsonValue::MakeString(info.build_type));
  build.Set("compiler", JsonValue::MakeString(info.compiler));
  build.Set("cxx_flags", JsonValue::MakeString(info.cxx_flags));
  doc.Set("build", std::move(build));

  doc.Set("options", options_);
  // Worker-thread count of the parallel runtime, so BENCH_*.json
  // trajectories can tell a 1-thread run from an N-thread run.
  doc.Set("threads", JsonValue::MakeNumber(ParallelWorkers()));

  // Phase wall times, derived from the span histograms the phases recorded.
  constexpr std::string_view kPhasePrefix = "span.phase.";
  JsonValue phases = JsonValue::MakeObject();
  for (const MetricSnapshot& snap : MetricsRegistry::Global().Snapshot()) {
    if (snap.kind != MetricKind::kHistogram) continue;
    if (snap.name.compare(0, kPhasePrefix.size(), kPhasePrefix) != 0) continue;
    phases.Set(snap.name.substr(kPhasePrefix.size()),
               JsonValue::MakeNumber(snap.value));
  }
  doc.Set("phases", std::move(phases));

  doc.Set("metrics", MetricsRegistry::Global().ToJson());

  if (!trace_file_.empty()) {
    doc.Set("trace_file", JsonValue::MakeString(trace_file_));
  }
  doc.Set("exit_code", JsonValue::MakeNumber(exit_code_));
  return doc;
}

Status RunManifest::WriteFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot write manifest: " + path);
  file << ToJson().Dump(2) << "\n";
  if (!file.good()) return Status::IoError("manifest write failed: " + path);
  return Status::Ok();
}

namespace {

/// Fetches "--name value" or "--name=value" from argv; empty when absent.
std::string FlagValue(int argc, char** argv, std::string_view name) {
  const std::string eq = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == name && i + 1 < argc) return argv[i + 1];
    if (arg.size() > eq.size() && arg.compare(0, eq.size(), eq) == 0) {
      return std::string(arg.substr(eq.size()));
    }
  }
  return "";
}

StderrTextSink* StderrSinkSingleton() {
  static StderrTextSink* sink = new StderrTextSink();  // never freed
  return sink;
}

/// Command-line flag wins; environment variable is the fallback.
std::string FlagOrEnv(int argc, char** argv, std::string_view flag,
                      const char* env) {
  std::string value = FlagValue(argc, argv, flag);
  if (!value.empty()) return value;
  const char* from_env = std::getenv(env);
  return from_env != nullptr ? from_env : "";
}

}  // namespace

PeriodicMetricsFlusher::PeriodicMetricsFlusher(
    std::string path, double interval_s, std::function<void()> pre_flush)
    : path_(std::move(path)),
      interval_s_(interval_s),
      pre_flush_(std::move(pre_flush)) {
  thread_ = std::thread([this] { Loop(); });
}

PeriodicMetricsFlusher::~PeriodicMetricsFlusher() { Stop(); }

void PeriodicMetricsFlusher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  FlushOnce();  // the final dump reflects everything up to Stop
}

void PeriodicMetricsFlusher::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto interval = std::chrono::duration<double>(
      interval_s_ > 0.0 ? interval_s_ : 1.0);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) break;
    lock.unlock();
    FlushOnce();
    lock.lock();
  }
}

void PeriodicMetricsFlusher::FlushOnce() {
  if (pre_flush_) pre_flush_();
  Status st = WriteAtomic(path_);
  if (!st.ok()) {
    TRAIL_LOG(Warning) << "periodic metrics flush failed: " << st;
    return;
  }
  flushes_.fetch_add(1);
}

Status PeriodicMetricsFlusher::WriteAtomic(const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp);
    if (!file) return Status::IoError("cannot write " + tmp);
    file << MetricsRegistry::Global().ToPrometheusText();
    if (!file.good()) return Status::IoError("metrics write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename to " + path + " failed");
  }
  return Status::Ok();
}

RunContext::RunContext(std::string tool, int argc, char** argv)
    : manifest_(std::move(tool)) {
  manifest_.SetArgs(argc, argv);
  SetDetailedMetrics(true);
  InstallParallelMetricsBridge();

  std::string threads = FlagValue(argc, argv, "--threads");
  if (!threads.empty()) {
    const int n = std::atoi(threads.c_str());
    if (n > 0) {
      SetParallelWorkers(n);
      TRAIL_METRIC_SET("pool.workers", ParallelWorkers());
    } else {
      TRAIL_LOG(Warning) << "ignoring non-positive --threads '" << threads
                         << "'";
    }
  }

  std::string level_name =
      FlagOrEnv(argc, argv, "--log-level", "TRAIL_LOG_LEVEL");
  if (!level_name.empty()) {
    LogLevel level;
    if (ParseLogLevel(level_name, &level)) {
      SetLogLevel(level);
    } else {
      TRAIL_LOG(Warning) << "unknown --log-level '" << level_name
                         << "', keeping current level";
    }
  }

  std::string log_json = FlagValue(argc, argv, "--log-json");
  if (!log_json.empty()) {
    json_sink_ = std::make_unique<JsonLinesFileSink>(log_json);
    if (json_sink_->ok()) {
      // Keep human-readable stderr alongside the structured file.
      AddLogSink(StderrSinkSingleton());
      AddLogSink(json_sink_.get());
    } else {
      TRAIL_LOG(Warning) << "cannot open --log-json file " << log_json;
      json_sink_.reset();
    }
  }

  trace_path_ = FlagOrEnv(argc, argv, "--trace-out", "TRAIL_TRACE_OUT");
  if (!trace_path_.empty()) {
    TraceRecorder::Global().SetEnabled(true);
    manifest_.SetTraceFile(trace_path_);
  }

  std::string manifest_flag =
      FlagOrEnv(argc, argv, "--manifest-out", "TRAIL_RUN_MANIFEST");
  if (!manifest_flag.empty()) manifest_path_ = manifest_flag;

  metrics_path_ = FlagOrEnv(argc, argv, "--metrics-out", "TRAIL_METRICS_OUT");
}

RunContext::~RunContext() {
  SetDetailedMetrics(false);
  if (!trace_path_.empty()) {
    TraceRecorder::Global().SetEnabled(false);
    Status st = TraceRecorder::Global().WriteChromeTrace(trace_path_);
    if (!st.ok()) TRAIL_LOG(Error) << "trace write failed: " << st;
  }
  if (!manifest_path_.empty() && manifest_path_ != "none") {
    Status st = manifest_.WriteFile(manifest_path_);
    if (!st.ok()) TRAIL_LOG(Error) << "manifest write failed: " << st;
  }
  if (!metrics_path_.empty()) {
    std::ofstream file(metrics_path_);
    if (file) {
      file << MetricsRegistry::Global().ToPrometheusText();
    }
    if (!file.good()) {
      TRAIL_LOG(Error) << "metrics write failed: " << metrics_path_;
    }
  }
  if (json_sink_ != nullptr) {
    RemoveLogSink(json_sink_.get());
    RemoveLogSink(StderrSinkSingleton());
    json_sink_->Flush();
  }
}

}  // namespace trail::obs
