#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

#include "util/parallel.h"

namespace trail::obs {

namespace {
std::atomic<bool> g_detailed_metrics{false};
}  // namespace

bool DetailedMetricsEnabled() {
  return g_detailed_metrics.load(std::memory_order_relaxed);
}

void SetDetailedMetrics(bool enabled) {
  g_detailed_metrics.store(enabled, std::memory_order_relaxed);
}

void Histogram::AddToSum(double delta) {
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + delta,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const {
  return sum_.load(std::memory_order_relaxed);
}

int Histogram::BucketIndex(double value) {
  if (!(value > kFirstBound)) return 0;  // also catches NaN and negatives
  int idx = static_cast<int>(std::ceil(std::log2(value / kFirstBound)));
  if (idx < 1) idx = 1;
  if (idx >= kNumBuckets) return kNumBuckets - 1;
  // log2 rounding can land one bucket off right at a boundary; nudge so
  // bucket i really is (BucketBound(i-1), BucketBound(i)].
  if (value <= BucketBound(idx - 1)) {
    --idx;
  } else if (value > BucketBound(idx) && idx + 1 < kNumBuckets) {
    ++idx;
  }
  return idx;
}

double Histogram::BucketBound(int i) {
  return kFirstBound * std::exp2(static_cast<double>(i));
}

void Histogram::Observe(double value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AddToSum(value);
}

double Histogram::Quantile(double q) const {
  const int64_t n = count();
  if (n <= 0) return 0.0;
  const double target = q * static_cast<double>(n);
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += bucket_count(i);
    if (static_cast<double>(cumulative) >= target) return BucketBound(i);
  }
  return BucketBound(kNumBuckets - 1);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

namespace {

/// The lookup key carries the kind so the same name requested as two
/// different kinds yields two independent metrics instead of a nullptr
/// from the mismatched entry.
std::string IndexKey(MetricKind kind, std::string_view name) {
  std::string key;
  key.reserve(name.size() + 2);
  switch (kind) {
    case MetricKind::kCounter:
      key += "c:";
      break;
    case MetricKind::kGauge:
      key += "g:";
      break;
    case MetricKind::kHistogram:
      key += "h:";
      break;
  }
  key += name;
  return key;
}

}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = IndexKey(MetricKind::kCounter, name);
  auto it = index_.find(key);
  if (it != index_.end()) return entries_[it->second].counter.get();
  Entry entry;
  entry.kind = MetricKind::kCounter;
  entry.counter.reset(new Counter(std::string(name)));
  Counter* out = entry.counter.get();
  index_.emplace(std::move(key), entries_.size());
  entries_.push_back(std::move(entry));
  return out;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = IndexKey(MetricKind::kGauge, name);
  auto it = index_.find(key);
  if (it != index_.end()) return entries_[it->second].gauge.get();
  Entry entry;
  entry.kind = MetricKind::kGauge;
  entry.gauge.reset(new Gauge(std::string(name)));
  Gauge* out = entry.gauge.get();
  index_.emplace(std::move(key), entries_.size());
  entries_.push_back(std::move(entry));
  return out;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = IndexKey(MetricKind::kHistogram, name);
  auto it = index_.find(key);
  if (it != index_.end()) return entries_[it->second].histogram.get();
  Entry entry;
  entry.kind = MetricKind::kHistogram;
  entry.histogram.reset(new Histogram(std::string(name)));
  Histogram* out = entry.histogram.get();
  index_.emplace(std::move(key), entries_.size());
  entries_.push_back(std::move(entry));
  return out;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    MetricSnapshot snap;
    snap.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        snap.name = entry.counter->name();
        snap.value = static_cast<double>(entry.counter->value());
        break;
      case MetricKind::kGauge:
        snap.name = entry.gauge->name();
        snap.value = entry.gauge->value();
        break;
      case MetricKind::kHistogram:
        snap.name = entry.histogram->name();
        snap.value = entry.histogram->sum();
        snap.count = entry.histogram->count();
        snap.mean = entry.histogram->mean();
        snap.p50 = entry.histogram->P50();
        snap.p95 = entry.histogram->P95();
        snap.p99 = entry.histogram->P99();
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

JsonValue MetricsRegistry::ToJson() const {
  JsonValue metrics = JsonValue::MakeObject();
  for (const MetricSnapshot& snap : Snapshot()) {
    switch (snap.kind) {
      case MetricKind::kCounter: {
        JsonValue m = JsonValue::MakeObject();
        m.Set("type", JsonValue::MakeString("counter"));
        m.Set("value", JsonValue::MakeNumber(snap.value));
        metrics.Set(snap.name, std::move(m));
        break;
      }
      case MetricKind::kGauge: {
        JsonValue m = JsonValue::MakeObject();
        m.Set("type", JsonValue::MakeString("gauge"));
        m.Set("value", JsonValue::MakeNumber(snap.value));
        metrics.Set(snap.name, std::move(m));
        break;
      }
      case MetricKind::kHistogram: {
        JsonValue m = JsonValue::MakeObject();
        m.Set("type", JsonValue::MakeString("histogram"));
        m.Set("count", JsonValue::MakeNumber(static_cast<double>(snap.count)));
        m.Set("sum", JsonValue::MakeNumber(snap.value));
        m.Set("mean", JsonValue::MakeNumber(snap.mean));
        m.Set("p50", JsonValue::MakeNumber(snap.p50));
        m.Set("p95", JsonValue::MakeNumber(snap.p95));
        m.Set("p99", JsonValue::MakeNumber(snap.p99));
        metrics.Set(snap.name, std::move(m));
        break;
      }
    }
  }
  return metrics;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else (the dots
/// of the registry convention, quotes, spaces) collapses to '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = "trail_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// HELP text escaping per the exposition format: backslash and newline.
std::string PrometheusHelpEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string PrometheusNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendHeader(std::string* out, const std::string& pname,
                  const std::string& raw_name, const char* type) {
  *out += "# HELP " + pname + " " + PrometheusHelpEscape(raw_name) + "\n";
  *out += "# TYPE " + pname + " ";
  *out += type;
  *out += "\n";
}

}  // namespace

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const Entry& entry : entries_) {
    switch (entry.kind) {
      case MetricKind::kCounter: {
        const std::string pname =
            PrometheusName(entry.counter->name()) + "_total";
        AppendHeader(&out, pname, entry.counter->name(), "counter");
        out += pname + " " + std::to_string(entry.counter->value()) + "\n";
        break;
      }
      case MetricKind::kGauge: {
        const std::string pname = PrometheusName(entry.gauge->name());
        AppendHeader(&out, pname, entry.gauge->name(), "gauge");
        out += pname + " " + PrometheusNumber(entry.gauge->value()) + "\n";
        break;
      }
      case MetricKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        const std::string pname = PrometheusName(h.name());
        AppendHeader(&out, pname, h.name(), "histogram");
        int64_t cumulative = 0;
        // Skip the all-zero tail: emit up to the last non-empty bucket so
        // 64-bucket geometric histograms stay readable, then +Inf.
        int last_used = -1;
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          if (h.bucket_count(i) > 0) last_used = i;
        }
        for (int i = 0; i <= last_used; ++i) {
          cumulative += h.bucket_count(i);
          out += pname + "_bucket{le=\"" +
                 PrometheusNumber(Histogram::BucketBound(i)) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(h.count()) +
               "\n";
        out += pname + "_sum " + PrometheusNumber(h.sum()) + "\n";
        out += pname + "_count " + std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

namespace {

void PublishParallelForEvent(const ParallelForEvent& event) {
  TRAIL_METRIC_ADD("pool.tasks", event.chunks);
  TRAIL_METRIC_SET("pool.queue_depth", event.queue_depth);
  TRAIL_METRIC_OBSERVE("span.parallel_for", event.seconds);
}

}  // namespace

void InstallParallelMetricsBridge() {
  SetParallelForObserver(&PublishParallelForEvent);
  TRAIL_METRIC_SET("pool.workers", ParallelWorkers());
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& entry : entries_) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        entry.counter->Reset();
        break;
      case MetricKind::kGauge:
        entry.gauge->Reset();
        break;
      case MetricKind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

}  // namespace trail::obs
