#include "obs/log_sinks.h"

#include <chrono>

#include "util/json.h"

namespace trail::obs {

void StderrTextSink::Write(const LogRecord& record) {
  std::string line;
  line.reserve(record.message.size() + 32);
  line += '[';
  line += LogLevelName(record.level);
  line += ' ';
  line += record.file;
  line += ':';
  line += std::to_string(record.line);
  line += "] ";
  line += record.message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

JsonLinesFileSink::JsonLinesFileSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "a")) {}

JsonLinesFileSink::~JsonLinesFileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonLinesFileSink::Write(const LogRecord& record) {
  if (file_ == nullptr) return;
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("ts_us", JsonValue::MakeNumber(static_cast<double>(record.time_us)));
  obj.Set("level", JsonValue::MakeString(LogLevelName(record.level)));
  obj.Set("file", JsonValue::MakeString(record.file));
  obj.Set("line", JsonValue::MakeNumber(record.line));
  obj.Set("msg", JsonValue::MakeString(std::string(record.message)));
  std::string line = obj.Dump();
  line += '\n';
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(line.data(), 1, line.size(), file_);
}

void JsonLinesFileSink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fflush(file_);
}

void RingBufferSink::Write(const LogRecord& record) {
  const int64_t wall_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() >= capacity_) entries_.pop_front();
  entries_.push_back(Entry{record.level, record.file, record.line,
                           std::string(record.message), record.time_us,
                           wall_us});
}

std::vector<RingBufferSink::Entry> RingBufferSink::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Entry>(entries_.begin(), entries_.end());
}

size_t RingBufferSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

bool RingBufferSink::Contains(std::string_view substring) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& entry : entries_) {
    if (entry.message.find(substring) != std::string::npos) return true;
  }
  return false;
}

void RingBufferSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

JsonValue RingBufferSink::ToJson() const {
  JsonValue out = JsonValue::MakeObject();
  JsonValue entries = JsonValue::MakeArray();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& entry : entries_) {
      JsonValue obj = JsonValue::MakeObject();
      obj.Set("level", JsonValue::MakeString(LogLevelName(entry.level)));
      obj.Set("file", JsonValue::MakeString(entry.file));
      obj.Set("line", JsonValue::MakeNumber(entry.line));
      obj.Set("msg", JsonValue::MakeString(entry.message));
      obj.Set("ts_us",
              JsonValue::MakeNumber(static_cast<double>(entry.time_us)));
      obj.Set("wall_us",
              JsonValue::MakeNumber(static_cast<double>(entry.wall_us)));
      entries.Append(std::move(obj));
    }
  }
  out.Set("entries", std::move(entries));
  return out;
}

}  // namespace trail::obs
