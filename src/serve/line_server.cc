#include "serve/line_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"

namespace trail::serve {

/// Per-connection state. The reader thread parses request lines and pushes
/// replies (futures) onto a bounded queue; the writer thread resolves and
/// writes them in order, so pipelined clients get responses in request
/// order even though batches complete asynchronously.
struct LineServer::Connection {
  int fd = -1;
  std::thread reader;
  std::thread writer;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<Reply> replies;
  bool reader_done = false;
  bool finished = false;  // both threads exited; safe to reap

  /// Pipelining bound: with this many replies unwritten the reader stops
  /// pulling from the socket, pushing backpressure into the client's TCP
  /// window instead of buffering unboundedly.
  static constexpr size_t kMaxPipelined = 1024;
};

LineServer::LineServer(Frontend* frontend) : frontend_(frontend) {}

LineServer::~LineServer() { Stop(); }

namespace {

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Status LineServer::Start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  TRAIL_LOG(Info) << "serving LDJSON on 127.0.0.1:" << port_;
  return Status::Ok();
}

void LineServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        if (fd >= 0) ::close(fd);
        return;
      }
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed under us
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    Connection* raw = conn.get();
    raw->fd = fd;
    raw->reader = std::thread([this, raw] { ReaderLoop(raw); });
    raw->writer = std::thread([this, raw] { WriterLoop(raw); });
    {
      std::lock_guard<std::mutex> lock(mu_);
      connections_.push_back(std::move(conn));
    }
    Reap(/*all=*/false);
  }
}

void LineServer::ReaderLoop(Connection* conn) {
  std::string pending;
  char buf[1 << 16];
  bool overflowed = false;
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF, error, or Stop()'s shutdown(fd)
    pending.append(buf, static_cast<size_t>(n));
    if (pending.size() > kMaxLineBytes &&
        pending.find('\n') == std::string::npos) {
      // An unterminated line past the cap: reply with a protocol error and
      // drop the connection rather than buffering the stream unboundedly.
      overflowed = true;
      break;
    }
    size_t start = 0;
    for (size_t nl = pending.find('\n', start); nl != std::string::npos;
         nl = pending.find('\n', start)) {
      std::string line = pending.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.size() > kMaxLineBytes) {
        overflowed = true;
        break;
      }
      Reply reply = frontend_->Handle(line);
      std::unique_lock<std::mutex> lock(conn->mu);
      conn->cv.wait(lock, [conn] {
        return conn->replies.size() < Connection::kMaxPipelined;
      });
      conn->replies.push_back(std::move(reply));
      conn->cv.notify_all();
    }
    if (overflowed) break;
    pending.erase(0, start);
  }
  if (overflowed) {
    // One last in-order reply so the client learns why, then close (the
    // reader_done flag below makes the writer drain and half-close).
    TRAIL_METRIC_INC("serve.line_overflow");
    std::promise<std::string> line;
    line.set_value(
        "{\"ok\":false,\"code\":\"InvalidArgument\",\"error\":\"request line "
        "exceeds " +
        std::to_string(kMaxLineBytes) + " bytes; closing connection\"}");
    Reply reply;
    reply.line = line.get_future();
    std::unique_lock<std::mutex> lock(conn->mu);
    conn->replies.push_back(std::move(reply));
    conn->cv.notify_all();
  }
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->reader_done = true;
  conn->cv.notify_all();
}

void LineServer::WriterLoop(Connection* conn) {
  for (;;) {
    Reply reply;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      conn->cv.wait(lock, [conn] {
        return !conn->replies.empty() || conn->reader_done;
      });
      if (conn->replies.empty()) break;  // reader done and queue drained
      reply = std::move(conn->replies.front());
      conn->replies.pop_front();
      conn->cv.notify_all();  // reopen the pipelining window
    }
    // Resolving the future may block on the micro-batch; that is the point
    // of the two-thread split — the reader keeps admitting meanwhile.
    std::string line = reply.line.get();
    line += '\n';
    if (!SendAll(conn->fd, line)) break;
    if (reply.shutdown) SignalStop();
  }
  // Half-close so a still-reading client sees EOF even if our reader is
  // blocked; full teardown happens in Reap/Stop.
  ::shutdown(conn->fd, SHUT_WR);
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->finished = true;
}

void LineServer::SignalStop() {
  std::lock_guard<std::mutex> lock(mu_);
  stop_requested_ = true;
  stop_cv_.notify_all();
}

void LineServer::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  stop_cv_.wait(lock, [this] { return stop_requested_ || stopping_; });
}

void LineServer::Reap(bool all) {
  // Joins must not hold mu_: a writer thread takes mu_ inside SignalStop,
  // so extract the connections to tear down first, then join unlocked.
  std::vector<std::unique_ptr<Connection>> dead;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      Connection* conn = it->get();
      bool done;
      {
        std::lock_guard<std::mutex> conn_lock(conn->mu);
        done = conn->finished && conn->reader_done;
      }
      if (done || all) {
        dead.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::unique_ptr<Connection>& conn : dead) {
    ::shutdown(conn->fd, SHUT_RDWR);  // unblocks a still-live reader/writer
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
    ::close(conn->fd);
  }
}

void LineServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    stop_requested_ = true;
    stop_cv_.notify_all();
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept()
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  Reap(/*all=*/true);
}

}  // namespace trail::serve
