#ifndef TRAIL_SERVE_LINE_SERVER_H_
#define TRAIL_SERVE_LINE_SERVER_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/frontend.h"
#include "util/status.h"

namespace trail::serve {

/// A minimal LDJSON-over-TCP front door for AttributionService: one JSON
/// request per line in, one JSON response per line out, responses in
/// request order per connection. Connections are pipelined — a reader
/// thread admits requests into the micro-batcher while a writer thread
/// drains earlier replies, which is what keeps batches full from even a
/// single connection. Loopback only (binds 127.0.0.1): this is a bench and
/// integration harness, not a hardened network service.
class LineServer {
 public:
  // Both out of line: Connection is incomplete here and the
  // vector<unique_ptr<Connection>> member needs it complete.
  explicit LineServer(Frontend* frontend);
  ~LineServer();

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port()) and
  /// starts the accept thread.
  Status Start(int port);

  /// The bound port (after Start succeeds).
  int port() const { return port_; }

  /// Blocks until a client sends {"op":"shutdown"} or Stop() is called.
  void Wait();

  /// Stops accepting, unblocks every connection, joins all threads.
  /// Idempotent; also run by the destructor. Does not touch the service.
  void Stop();

  /// A single request line larger than this gets an inline error reply and
  /// the connection is closed — a client streaming an unterminated line must
  /// not grow the read buffer without bound.
  static constexpr size_t kMaxLineBytes = 1 << 20;

 private:
  struct Connection;

  void AcceptLoop();
  void ReaderLoop(Connection* conn);
  void WriterLoop(Connection* conn);
  void SignalStop();
  /// Joins and frees connections whose threads have finished.
  void Reap(bool all);

  Frontend* frontend_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;

  std::mutex mu_;  // guards connections_, stopping_, stop_requested_
  std::condition_variable stop_cv_;
  std::vector<std::unique_ptr<Connection>> connections_;
  bool stopping_ = false;
  bool stop_requested_ = false;
};

}  // namespace trail::serve

#endif  // TRAIL_SERVE_LINE_SERVER_H_
