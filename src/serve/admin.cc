#include "serve/admin.h"

#include <thread>

#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"

namespace trail::serve {

using obs::HttpRequest;
using obs::HttpResponse;

AdminPlane::AdminPlane(AttributionService* service,
                       const obs::RingBufferSink* log_ring)
    : service_(service),
      log_ring_(log_ring),
      started_us_(obs::TraceRecorder::NowMicros()) {
  http_.Handle("/metrics", [this](const HttpRequest&) {
    // Refresh the SLO gauges so every scrape carries current windows, not
    // whatever the last request happened to leave behind.
    service_->UpdateSloGauges();
    HttpResponse response =
        HttpResponse::Text(obs::MetricsRegistry::Global().ToPrometheusText());
    response.content_type = "text/plain; version=0.0.4";
    return response;
  });

  http_.Handle("/healthz", [](const HttpRequest&) {
    return HttpResponse::Text("ok\n");
  });

  http_.Handle("/readyz", [this](const HttpRequest&) {
    if (service_->Ready()) return HttpResponse::Text("ready\n");
    return HttpResponse::Unavailable("not ready\n");
  });

  http_.Handle("/statusz", [this](const HttpRequest&) {
    JsonValue out = JsonValue::MakeObject();
    const obs::BuildInfo& build = obs::GetBuildInfo();
    JsonValue build_json = JsonValue::MakeObject();
    build_json.Set("git_describe", JsonValue::MakeString(build.git_describe));
    build_json.Set("build_type", JsonValue::MakeString(build.build_type));
    build_json.Set("compiler", JsonValue::MakeString(build.compiler));
    out.Set("build", std::move(build_json));
    out.Set("uptime_s",
            JsonValue::MakeNumber(
                static_cast<double>(obs::TraceRecorder::NowMicros() -
                                    started_us_) *
                1e-6));
    out.Set("hardware_threads",
            JsonValue::MakeNumber(
                static_cast<double>(std::thread::hardware_concurrency())));
    out.Set("service", service_->StatusJson());
    return HttpResponse::Json(out.Dump());
  });

  http_.Handle("/tracez", [this](const HttpRequest& request) {
    const obs::RequestTraceRing* ring = service_->trace_ring();
    if (ring == nullptr) {
      JsonValue out = JsonValue::MakeObject();
      out.Set("enabled", JsonValue::MakeBool(false));
      out.Set("traces", JsonValue::MakeArray());
      return HttpResponse::Json(out.Dump());
    }
    const int64_t limit = request.QueryInt("limit", 256);
    return HttpResponse::Json(
        ring->ToJson(static_cast<size_t>(limit < 0 ? 0 : limit)).Dump());
  });

  http_.Handle("/logz", [this](const HttpRequest&) {
    if (log_ring_ == nullptr) {
      JsonValue out = JsonValue::MakeObject();
      out.Set("enabled", JsonValue::MakeBool(false));
      out.Set("entries", JsonValue::MakeArray());
      return HttpResponse::Json(out.Dump());
    }
    return HttpResponse::Json(log_ring_->ToJson().Dump());
  });
}

Status AdminPlane::Start(int port) { return http_.Start(port); }

}  // namespace trail::serve
