#ifndef TRAIL_SERVE_ATTRIBUTION_SERVICE_H_
#define TRAIL_SERVE_ATTRIBUTION_SERVICE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/trail.h"
#include "obs/request_trace.h"
#include "obs/sliding_window.h"
#include "util/status.h"

namespace trail::serve {

/// Cross-connection admission class. Interactive attributions (an analyst
/// waiting on a verdict) are admitted ahead of bulk backfill (historical
/// re-attribution sweeps, batch ingests), bounded by
/// ServeOptions::bulk_starvation_bound so bulk always makes progress.
enum class Priority : uint8_t {
  kInteractive = 0,
  kBulk = 1,
};

/// Number of admission classes (the two-level queue).
inline constexpr size_t kNumPriorities = 2;

/// Tuning knobs of the serving subsystem (see docs/SERVING.md).
struct ServeOptions {
  /// Flush a micro-batch when this many requests have coalesced...
  size_t max_batch_size = 32;
  /// ...or when the batch has lingered this long since it was opened,
  /// whichever comes first. 0 flushes immediately (no coalescing beyond
  /// whatever is already queued).
  int64_t max_linger_us = 2000;
  /// Admission bound per priority class: requests beyond this many queued
  /// in their class are shed with an explicit kOverloaded status instead of
  /// queueing unboundedly. (Per-class so a bulk backfill flood can never
  /// crowd interactive traffic out of the admission queue.)
  size_t queue_depth = 256;
  /// Number of independent inference workers. Each forms its own
  /// micro-batches from the shared two-level admission queue and flushes
  /// them concurrently against its pinned epoch (core::Trail::PinEpoch), so
  /// batches overlap on multi-core hosts without any reader lock.
  size_t workers = 1;
  /// Starvation bound of the two-level queue: after this many consecutive
  /// interactive batches formed while bulk requests were waiting, the next
  /// batch is taken from the bulk queue regardless. 0 disables the bound
  /// (bulk is served only when no interactive request waits).
  size_t bulk_starvation_bound = 4;
  /// Deadline applied to requests that do not carry their own, in
  /// milliseconds from submission. 0 disables the default deadline.
  int64_t default_deadline_ms = 0;
  /// Forwarded to Trail::Attribute(Batch)WithGnn: when true the model sees
  /// no analyst labels at all (the paper's "realistic setting").
  bool hide_neighbor_labels = false;
  /// When false the worker thread is not started by the constructor; call
  /// Start() explicitly. Tests use this to exercise admission control
  /// deterministically against a stopped drain.
  bool auto_start = true;
  /// Capacity of the recent-request trace ring behind /tracez (rounded up
  /// to a power of two). 0 disables per-request trace retention entirely —
  /// requests still get trace ids, but nothing is recorded.
  size_t trace_ring_capacity = 2048;
  /// Latency objective and error-budget target for the rolling SLO tracker
  /// (availability, window percentiles, burn rates; docs/OBSERVABILITY.md).
  obs::SloOptions slo;
};

/// What a request resolves to. `status` is always meaningful: kOverloaded
/// when the admission queue shed the request, kDeadlineExceeded when its
/// deadline passed (before or during the batch), otherwise whatever the
/// underlying attribution returned. The attribution fields are valid only
/// when status.ok().
struct ServeResponse {
  Status status;
  core::Trail::Attribution attribution;
  /// Evidence paths backing the attribution (Trail::ExplainOnEpoch), filled
  /// only when the request asked for an explanation and the path engine
  /// answered. May be empty even then: the event provably shares no
  /// infrastructure with the predicted APT within the hop horizon.
  std::vector<core::Trail::ExplainedPath> evidence;
  /// True when the explain plane ran for this request (evidence is
  /// meaningful, possibly empty).
  bool explained = false;
  /// The resolved event node (also for ingest-then-attribute requests).
  graph::NodeId event = graph::kInvalidNode;
  /// Size of the micro-batch this request was served in (0 when shed).
  size_t batch_size = 0;
  /// Seconds the request waited in the admission queue before its batch
  /// was formed.
  double queue_seconds = 0.0;
  /// Unique per-submission id, echoed as "trace_id" in LDJSON replies and
  /// resolvable in the /tracez recent-request ring. Never 0.
  uint64_t trace_id = 0;
};

/// The in-process attribution server: accepts concurrent requests from any
/// thread, coalesces them in dynamic micro-batchers (flush on
/// max_batch_size or max_linger_us, whichever first), and runs each batch
/// through Trail::AttributeBatchOnEpoch so the GNN forward cost is
/// amortized over the whole batch — the PR 4 follow-up of keeping GEMM `n`
/// large under serving traffic. Admission is a two-level priority queue
/// (interactive ahead of bulk, starvation-bounded) and bounded per class:
/// beyond `queue_depth` waiting requests of a class, submissions resolve
/// immediately with kOverloaded (shed, never silently dropped), and
/// per-request deadlines resolve to kDeadlineExceeded. Raw incident-report
/// JSON is delta-appended to the TKG (Trail::AppendReportsAndPublish)
/// before its batch is attributed.
///
/// Threading: submissions and stats are safe from any thread. N worker
/// threads (`options.workers`) each form micro-batches from the shared
/// admission queue and flush them concurrently: at flush time a worker pins
/// the current epoch (one atomic acquire load — no graph lock anywhere on
/// the inference path) and every read of its batch happens against that
/// immutable snapshot. Appends and checkpoint hot-swaps build the next
/// epoch off to the side and publish it with one atomic store; in-flight
/// batches keep serving their pinned epoch until they drain, and the
/// retired epoch frees itself when the last pin drops — zero downtime,
/// zero failed requests, no reader-writer convoy. The Trail may be mutated
/// concurrently only through this service (or Trail's *AndPublish
/// mutators); classic mutators (Ingest, TrainModels, FineTuneGnn) still
/// require the service to be drained first.
class AttributionService {
 public:
  AttributionService(core::Trail* trail, ServeOptions options);
  ~AttributionService();

  AttributionService(const AttributionService&) = delete;
  AttributionService& operator=(const AttributionService&) = delete;

  /// Starts the worker threads (idempotent; the constructor already does
  /// this unless options.auto_start is false).
  void Start();

  /// Stops admission (subsequent submissions are shed), drains every
  /// queued request through the normal batch path, and joins the workers.
  /// Idempotent; also run by the destructor.
  void Shutdown();

  /// Attribute an existing event node. `deadline_ms` < 0 applies the
  /// configured default; 0 means no deadline. With `explain` the reply also
  /// carries up to `explain_k` evidence paths (0 = the engine default),
  /// computed inside the same micro-batch against the same pinned epoch —
  /// and priced into the request's deadline.
  std::future<ServeResponse> SubmitEvent(
      graph::NodeId event, int64_t deadline_ms = -1,
      Priority priority = Priority::kInteractive, bool explain = false,
      size_t explain_k = 0);

  /// Attribute the event of an already-ingested report by its report id.
  std::future<ServeResponse> SubmitReportId(
      std::string report_id, int64_t deadline_ms = -1,
      Priority priority = Priority::kInteractive, bool explain = false,
      size_t explain_k = 0);

  /// Ingest a raw incident-report JSON (the feed wire format) into the TKG
  /// via delta-append, then attribute its event in the same micro-batch.
  /// Duplicate deliveries attribute the already-ingested event.
  std::future<ServeResponse> SubmitReportJson(
      std::string report_json, int64_t deadline_ms = -1,
      Priority priority = Priority::kInteractive, bool explain = false,
      size_t explain_k = 0);

  /// Swaps in the models of a SaveCheckpoint blob with zero downtime: the
  /// new model slot (including its pre-encoded view of the current graph)
  /// is built on this thread while batches keep serving, then installed
  /// with one atomic pointer store; the retired generation is freed when
  /// its last in-flight batch drains. Concurrent hot-swaps serialize.
  Status HotSwapCheckpoint(const std::string& path);

  /// Writes the currently served models as a checkpoint (the blob
  /// HotSwapCheckpoint consumes).
  Status SaveCheckpoint(const std::string& path) const;

  /// Report ids of up to `limit` event nodes, sampled evenly across the
  /// graph — the load generator's working set.
  std::vector<std::string> SampleEventIds(size_t limit) const;

  /// Per-worker counters (index = worker number).
  struct WorkerStats {
    uint64_t batches = 0;
    uint64_t requests = 0;
    size_t last_batch_size = 0;
  };

  /// Point-in-time serving counters (also exported via the serve.* metrics;
  /// this struct is for in-process callers like the stats op and tests).
  struct Stats {
    uint64_t submitted = 0;         // admitted into the queue
    uint64_t shed = 0;              // rejected with kOverloaded
    uint64_t completed = 0;         // answered via a batch (any status)
    uint64_t deadline_expired = 0;  // resolved kDeadlineExceeded
    uint64_t explained = 0;         // replies that carried evidence paths
    uint64_t batches = 0;
    uint64_t hot_swaps = 0;
    size_t max_batch_size = 0;
    /// Admission split by class (submitted + shed partition per class).
    uint64_t interactive_submitted = 0;
    uint64_t bulk_submitted = 0;
    uint64_t interactive_shed = 0;
    uint64_t bulk_shed = 0;
    /// Bulk batches forced by the starvation bound while interactive
    /// requests were still waiting (the anti-starvation promotions).
    uint64_t bulk_promotions = 0;
    /// batch size -> number of batches of that size.
    std::map<size_t, uint64_t> batch_size_counts;
    /// One entry per inference worker.
    std::vector<WorkerStats> workers;
  };
  Stats GetStats() const;

  /// Requests currently waiting for a batch (excludes batches in flight),
  /// summed over both priority classes.
  size_t QueueDepth() const;
  /// Waiting requests of one priority class.
  size_t QueueDepth(Priority priority) const;

  /// Generation of the epoch new batches pin (core::Trail::epoch_generation)
  /// — bumps on every append publish and hot-swap; surfaced in /statusz.
  uint64_t EpochGeneration() const { return trail_->epoch_generation(); }

  /// True while the service is accepting and the model plane is stable:
  /// started, not shutting down, and no hot-swap staging in flight. /readyz
  /// serves this — a load balancer drains traffic for the staging window of
  /// a swap instead of racing it.
  bool Ready() const;

  /// The served model generation (core::Trail::model_generation) — bumps on
  /// every successful hot-swap; surfaced in /statusz.
  uint64_t ModelGeneration() const { return trail_->model_generation(); }

  /// Recent-request trace ring behind /tracez; nullptr when
  /// options.trace_ring_capacity == 0.
  const obs::RequestTraceRing* trace_ring() const {
    return trace_ring_.get();
  }

  /// Rolling SLO windows over everything this service resolved.
  const obs::SloTracker& slo() const { return slo_; }

  /// Publishes the serve.slo.* gauges from the current windows. Called by
  /// /metrics scrapes and the periodic flush so exports are never stale.
  void UpdateSloGauges() const { slo_.PublishGauges(); }

  /// Point-in-time service status (ready, generation, queue, stats, SLO
  /// windows) — the service-level section of /statusz.
  JsonValue StatusJson() const;

  const ServeOptions& options() const { return options_; }
  const core::Trail& trail() const { return *trail_; }

 private:
  struct Request {
    enum class Kind { kEvent, kReportId, kReportJson };
    Kind kind = Kind::kEvent;
    Priority priority = Priority::kInteractive;
    graph::NodeId event = graph::kInvalidNode;
    std::string payload;  // report id or raw report JSON
    std::chrono::steady_clock::time_point submitted_at;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
    /// Attach evidence paths to the reply (k = explain_k; 0 = engine
    /// default).
    bool explain = false;
    size_t explain_k = 0;
    std::promise<ServeResponse> promise;
    /// Per-request trace state (stage stamps on the process trace clock;
    /// 0 = the request never reached that stage).
    uint64_t trace_id = 0;
    uint64_t batch_id = 0;
    int64_t queued_us = 0;
    int64_t admitted_us = 0;
    int64_t batched_us = 0;
    int64_t inferred_us = 0;
    int64_t wall_queued_us = 0;
  };

  std::future<ServeResponse> Submit(Request request, int64_t deadline_ms);
  /// The single exit point for every request: stamps the replied stage,
  /// publishes the trace to the ring, records the SLO sample, and resolves
  /// the promise. Every promise.set_value in this class goes through here.
  void Resolve(Request* request, ServeResponse response);
  void WorkerLoop(size_t worker_index);
  void RunBatch(std::vector<Request> batch, size_t worker_index);
  /// Delta-appends the batch's raw-JSON requests (publishing a new epoch)
  /// and resolves their event nodes; failed requests are answered and
  /// marked done.
  void IngestBatchReports(std::vector<Request>* batch,
                          std::vector<bool>* done);

  size_t TotalQueuedLocked() const {
    return queues_[0].size() + queues_[1].size();
  }
  /// Which class the next batch should be formed from; requires at least
  /// one non-empty queue. Implements interactive-first with the bulk
  /// starvation bound. Caller must hold mu_.
  size_t PickClassLocked() const;

  core::Trail* trail_;
  const ServeOptions options_;

  mutable std::mutex mu_;  // guards queues_, stopping_, started_, counters
  std::condition_variable cv_;
  /// Two-level admission queue, indexed by Priority.
  std::array<std::deque<Request>, kNumPriorities> queues_;
  /// Consecutive interactive batches formed while bulk requests waited;
  /// reset whenever a bulk batch is formed or the bulk queue drains.
  size_t consecutive_interactive_ = 0;
  bool started_ = false;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  /// Serializes concurrent HotSwapCheckpoint callers.
  std::mutex swap_mu_;

  mutable std::mutex stats_mu_;
  Stats stats_;

  std::unique_ptr<obs::RequestTraceRing> trace_ring_;
  mutable obs::SloTracker slo_;
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> next_batch_id_{1};
  /// True while HotSwapCheckpoint is staging a new slot (the /readyz
  /// transient-not-ready window).
  std::atomic<bool> swapping_{false};
};

}  // namespace trail::serve

#endif  // TRAIL_SERVE_ATTRIBUTION_SERVICE_H_
