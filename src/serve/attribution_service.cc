#include "serve/attribution_service.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "osint/report.h"
#include "util/logging.h"

namespace trail::serve {

using Clock = std::chrono::steady_clock;

namespace {

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

AttributionService::AttributionService(core::Trail* trail,
                                       ServeOptions options)
    : trail_(trail), options_(options), slo_(options.slo) {
  TRAIL_CHECK(trail_ != nullptr);
  if (options_.trace_ring_capacity > 0) {
    trace_ring_ = std::make_unique<obs::RequestTraceRing>(
        options_.trace_ring_capacity);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.workers.resize(std::max<size_t>(1, options_.workers));
  }
  // The serving read path runs entirely on pinned epochs; publish a fresh
  // one up front so the first batch never races a lazily built snapshot
  // (and so a Trail mutated between service instances is re-snapshotted).
  // Untrained models have no epoch to publish — batches then resolve
  // FailedPrecondition exactly as the classic path did.
  if (trail_->models_trained()) {
    Status published = trail_->PublishEpoch();
    TRAIL_CHECK(published.ok()) << published;
  }
  if (options_.auto_start) Start();
}

AttributionService::~AttributionService() { Shutdown(); }

void AttributionService::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ || stopping_) return;
  started_ = true;
  const size_t n = std::max<size_t>(1, options_.workers);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void AttributionService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // A concurrent or earlier Shutdown owns the join; nothing to do here
      // beyond waiting for the workers via the joinable checks below.
    }
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // Never started: answer whatever queued (possible with auto_start=false).
  std::array<std::deque<Request>, kNumPriorities> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queues_);
  }
  for (std::deque<Request>& queue : leftover) {
    for (Request& request : queue) {
      ServeResponse response;
      response.status = Status::Overloaded("service shut down before serving");
      Resolve(&request, std::move(response));
    }
  }
}

void AttributionService::Resolve(Request* request, ServeResponse response) {
  response.trace_id = request->trace_id;
  const int64_t replied_us = obs::TraceRecorder::NowMicros();
  if (trace_ring_ != nullptr) {
    obs::RequestTrace trace;
    trace.trace_id = request->trace_id;
    trace.batch_id = request->batch_id;
    trace.batch_size = static_cast<uint32_t>(response.batch_size);
    trace.status_code = static_cast<int32_t>(response.status.code());
    trace.queued_us = request->queued_us;
    trace.admitted_us = request->admitted_us;
    trace.batched_us = request->batched_us;
    trace.inferred_us = request->inferred_us;
    trace.replied_us = replied_us;
    trace.wall_queued_us = request->wall_queued_us;
    trace_ring_->Publish(trace);
  }
  slo_.Record(static_cast<double>(replied_us - request->queued_us) * 1e-6,
              response.status.ok());
  request->promise.set_value(std::move(response));
}

std::future<ServeResponse> AttributionService::Submit(Request request,
                                                      int64_t deadline_ms) {
  TRAIL_METRIC_INC("serve.requests");
  request.submitted_at = Clock::now();
  request.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  request.queued_us = obs::TraceRecorder::NowMicros();
  request.wall_queued_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  if (deadline_ms < 0) deadline_ms = options_.default_deadline_ms;
  if (deadline_ms > 0) {
    request.has_deadline = true;
    request.deadline =
        request.submitted_at + std::chrono::milliseconds(deadline_ms);
  }
  std::future<ServeResponse> future = request.promise.get_future();
  const size_t cls = static_cast<size_t>(request.priority);
  const bool bulk = request.priority == Priority::kBulk;
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || queues_[cls].size() >= options_.queue_depth) {
      shed = true;
    } else {
      request.admitted_us = obs::TraceRecorder::NowMicros();
      queues_[cls].push_back(std::move(request));
      TRAIL_METRIC_SET("serve.queue_depth", TotalQueuedLocked());
    }
  }
  if (shed) {
    TRAIL_METRIC_INC("serve.shed");
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.shed;
      ++(bulk ? stats_.bulk_shed : stats_.interactive_shed);
    }
    ServeResponse response;
    response.status = Status::Overloaded(
        "admission queue full (depth " +
        std::to_string(options_.queue_depth) + "); request shed");
    Resolve(&request, std::move(response));
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
    ++(bulk ? stats_.bulk_submitted : stats_.interactive_submitted);
  }
  cv_.notify_one();
  return future;
}

std::future<ServeResponse> AttributionService::SubmitEvent(
    graph::NodeId event, int64_t deadline_ms, Priority priority, bool explain,
    size_t explain_k) {
  Request request;
  request.kind = Request::Kind::kEvent;
  request.priority = priority;
  request.event = event;
  request.explain = explain;
  request.explain_k = explain_k;
  return Submit(std::move(request), deadline_ms);
}

std::future<ServeResponse> AttributionService::SubmitReportId(
    std::string report_id, int64_t deadline_ms, Priority priority,
    bool explain, size_t explain_k) {
  Request request;
  request.kind = Request::Kind::kReportId;
  request.priority = priority;
  request.payload = std::move(report_id);
  request.explain = explain;
  request.explain_k = explain_k;
  return Submit(std::move(request), deadline_ms);
}

std::future<ServeResponse> AttributionService::SubmitReportJson(
    std::string report_json, int64_t deadline_ms, Priority priority,
    bool explain, size_t explain_k) {
  Request request;
  request.kind = Request::Kind::kReportJson;
  request.priority = priority;
  request.payload = std::move(report_json);
  request.explain = explain;
  request.explain_k = explain_k;
  return Submit(std::move(request), deadline_ms);
}

size_t AttributionService::PickClassLocked() const {
  constexpr size_t kInteractiveIdx =
      static_cast<size_t>(Priority::kInteractive);
  constexpr size_t kBulkIdx = static_cast<size_t>(Priority::kBulk);
  if (queues_[kBulkIdx].empty()) return kInteractiveIdx;
  if (queues_[kInteractiveIdx].empty()) return kBulkIdx;
  // Both classes are waiting: interactive wins, unless it has already won
  // `bulk_starvation_bound` times in a row with bulk still waiting.
  if (options_.bulk_starvation_bound > 0 &&
      consecutive_interactive_ >= options_.bulk_starvation_bound) {
    return kBulkIdx;
  }
  return kInteractiveIdx;
}

void AttributionService::WorkerLoop(size_t worker_index) {
  for (;;) {
    std::vector<Request> batch;
    bool promoted_bulk = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock,
               [this] { return stopping_ || TotalQueuedLocked() > 0; });
      if (TotalQueuedLocked() == 0) return;  // stopping and fully drained
      // Dynamic micro-batching: the batch opens with the first waiting
      // request of the picked class and closes on max_batch_size or
      // max_linger_us, whichever comes first. Batches are homogeneous in
      // priority so an interactive flush is never delayed by bulk work
      // coalesced behind it. While draining a shutdown, flush immediately.
      size_t cls = PickClassLocked();
      if (!stopping_ && options_.max_linger_us > 0) {
        const Clock::time_point flush_at =
            Clock::now() + std::chrono::microseconds(options_.max_linger_us);
        while (queues_[cls].size() < options_.max_batch_size && !stopping_) {
          if (cv_.wait_until(lock, flush_at) == std::cv_status::timeout) {
            break;
          }
        }
      }
      if (queues_[cls].empty()) {
        // Another worker drained this class while we lingered (or the
        // linger admitted only the other class); re-pick from the top.
        continue;
      }
      constexpr size_t kBulkIdx = static_cast<size_t>(Priority::kBulk);
      if (cls == static_cast<size_t>(Priority::kInteractive)) {
        // Starvation accounting: count this interactive batch only if bulk
        // work is actually waiting behind it.
        if (!queues_[kBulkIdx].empty()) {
          ++consecutive_interactive_;
        } else {
          consecutive_interactive_ = 0;
        }
      } else {
        promoted_bulk = !queues_[static_cast<size_t>(Priority::kInteractive)]
                             .empty();
        consecutive_interactive_ = 0;
      }
      const size_t take =
          std::min(queues_[cls].size(), options_.max_batch_size);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queues_[cls].front()));
        queues_[cls].pop_front();
      }
      TRAIL_METRIC_SET("serve.queue_depth", TotalQueuedLocked());
    }
    if (promoted_bulk) {
      TRAIL_METRIC_INC("serve.bulk_promotions");
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.bulk_promotions;
    }
    RunBatch(std::move(batch), worker_index);
  }
}

void AttributionService::IngestBatchReports(std::vector<Request>* batch,
                                            std::vector<bool>* done) {
  std::vector<osint::PulseReport> reports;
  std::vector<size_t> report_requests;  // batch index per reports entry
  for (size_t i = 0; i < batch->size(); ++i) {
    Request& request = (*batch)[i];
    if ((*done)[i] || request.kind != Request::Kind::kReportJson) continue;
    auto parsed = osint::PulseReport::FromJsonString(request.payload);
    if (!parsed.ok()) {
      ServeResponse response;
      response.status = parsed.status();
      Resolve(&request, std::move(response));
      (*done)[i] = true;
      continue;
    }
    reports.push_back(std::move(parsed).value());
    report_requests.push_back(i);
  }
  if (reports.empty()) return;

  // Serializes internally against other appending workers and hot-swaps on
  // the Trail's publish mutex, then publishes a new epoch; batches already
  // in flight elsewhere keep their pinned snapshot.
  auto delta = trail_->AppendReportsAndPublish(reports);
  if (!delta.ok()) {
    for (size_t i : report_requests) {
      ServeResponse response;
      response.status = delta.status();
      Resolve(&(*batch)[i], std::move(response));
      (*done)[i] = true;
    }
    return;
  }
  // Duplicate lookups read the epoch this append just published (it
  // contains every event this delta touched); the builder graph itself may
  // already be mutating under a concurrent worker's append.
  std::shared_ptr<const core::Epoch> epoch = trail_->PinEpoch();
  for (size_t r = 0; r < report_requests.size(); ++r) {
    const size_t i = report_requests[r];
    graph::NodeId event = delta->event_nodes[r];
    if (event == graph::kInvalidNode) {
      // Duplicate delivery: the report is already in the TKG; attribute the
      // event it produced back then.
      event = epoch != nullptr
                  ? epoch->graph->FindNode(graph::NodeType::kEvent,
                                           reports[r].id)
                  : trail_->FindEvent(reports[r].id);
    }
    if (event == graph::kInvalidNode) {
      ServeResponse response;
      response.status =
          Status::NotFound("report ingested but its event was not found: " +
                           reports[r].id);
      Resolve(&(*batch)[i], std::move(response));
      (*done)[i] = true;
    } else {
      (*batch)[i].event = event;
    }
  }
}

void AttributionService::RunBatch(std::vector<Request> batch,
                                  size_t worker_index) {
  TRAIL_TRACE_SPAN("serve.batch");
  TRAIL_METRIC_INC("serve.batches");
  TRAIL_METRIC_OBSERVE("serve.batch_size", batch.size());
  const Clock::time_point formed_at = Clock::now();
  const uint64_t batch_id =
      next_batch_id_.fetch_add(1, std::memory_order_relaxed);
  const int64_t batched_us = obs::TraceRecorder::NowMicros();
  for (Request& request : batch) {
    request.batch_id = batch_id;
    request.batched_us = batched_us;
  }
  {
    // `completed` is bumped up front: every request in a formed batch is
    // answered before RunBatch returns (the DCHECK below), and counting
    // here keeps the stat ordered before any of the batch's promises
    // resolve — a caller who just got a reply sees itself counted.
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.batches;
    ++stats_.batch_size_counts[batch.size()];
    stats_.max_batch_size = std::max(stats_.max_batch_size, batch.size());
    stats_.completed += batch.size();
    if (worker_index < stats_.workers.size()) {
      WorkerStats& ws = stats_.workers[worker_index];
      ++ws.batches;
      ws.requests += batch.size();
      ws.last_batch_size = batch.size();
    }
  }

  std::vector<bool> done(batch.size(), false);

  // 1. Shed requests whose deadline already passed while they queued.
  for (size_t i = 0; i < batch.size(); ++i) {
    Request& request = batch[i];
    if (request.has_deadline && request.deadline < formed_at) {
      TRAIL_METRIC_INC("serve.deadline_expired");
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.deadline_expired;
      }
      ServeResponse response;
      response.status =
          Status::DeadlineExceeded("deadline passed in the admission queue");
      response.queue_seconds = Seconds(formed_at - request.submitted_at);
      Resolve(&request, std::move(response));
      done[i] = true;
    }
  }

  // 2. Delta-append raw incident reports (publishes a new epoch).
  IngestBatchReports(&batch, &done);

  // 3. Pin the current epoch — one atomic acquire load, no lock — and run
  // one batched GNN forward for everything still live against that
  // immutable snapshot. Appends and hot-swaps landing from here on publish
  // later epochs and cannot perturb this batch; the pin is dropped when
  // `epoch` goes out of scope (retiring the epoch if it was the last).
  std::shared_ptr<const core::Epoch> epoch = trail_->PinEpoch();
  std::vector<size_t> live;
  std::vector<graph::NodeId> events;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (done[i]) continue;
    if (batch[i].kind == Request::Kind::kReportId) {
      batch[i].event =
          epoch != nullptr
              ? epoch->graph->FindNode(graph::NodeType::kEvent,
                                       batch[i].payload)
              : trail_->FindEvent(batch[i].payload);
      if (batch[i].event == graph::kInvalidNode) {
        ServeResponse response;
        response.status =
            Status::NotFound("no ingested report with id: " +
                             batch[i].payload);
        Resolve(&batch[i], std::move(response));
        done[i] = true;
        continue;
      }
    }
    live.push_back(i);
    events.push_back(batch[i].event);
  }
  if (!events.empty()) {
    // No epoch means the models were never trained (nothing was ever
    // published): answer with the same FailedPrecondition the classic
    // batch path produces.
    auto results =
        epoch != nullptr
            ? core::Trail::AttributeBatchOnEpoch(*epoch, events,
                                                 options_.hide_neighbor_labels)
            : trail_->AttributeBatchWithGnn(events,
                                            options_.hide_neighbor_labels);
    const Clock::time_point finished_at = Clock::now();
    const int64_t inferred_us = obs::TraceRecorder::NowMicros();
    // One traversal scratch serves every explain of this batch (the
    // source-neighborhood prune buffers are reused across calls).
    graph::TraversalScratch explain_scratch;
    uint64_t explained_count = 0;
    for (size_t r = 0; r < live.size(); ++r) {
      Request& request = batch[live[r]];
      request.inferred_us = inferred_us;
      ServeResponse response;
      response.event = events[r];
      response.batch_size = batch.size();
      response.queue_seconds = Seconds(formed_at - request.submitted_at);
      // Evidence paths are priced into the deadline: they are computed only
      // while the request is still inside its budget (shed-safe — a request
      // that already blew its deadline skips the path search entirely), and
      // the deadline check below uses the explain-inclusive finish time.
      Clock::time_point done_at = finished_at;
      if (request.explain && results[r].ok() && epoch != nullptr &&
          !(request.has_deadline && request.deadline < finished_at)) {
        auto evidence = core::Trail::ExplainOnEpoch(
            *epoch, events[r], results[r].value().apt, request.explain_k,
            &explain_scratch);
        if (evidence.ok()) {
          response.evidence = std::move(evidence).value();
          response.explained = true;
        }
        done_at = Clock::now();
      }
      if (request.has_deadline && request.deadline < done_at) {
        // The work happened but too late to be useful; report that
        // honestly instead of pretending the deadline held.
        TRAIL_METRIC_INC("serve.deadline_expired");
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.deadline_expired;
        response.status =
            Status::DeadlineExceeded("batch finished after the deadline");
        response.evidence.clear();
        response.explained = false;
      } else if (results[r].ok()) {
        response.status = Status::Ok();
        response.attribution = std::move(results[r]).value();
      } else {
        response.status = results[r].status();
      }
      if (response.explained) ++explained_count;
      Resolve(&request, std::move(response));
      done[live[r]] = true;
    }
    if (explained_count > 0) {
      TRAIL_METRIC_ADD("serve.explained_replies", explained_count);
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.explained += explained_count;
    }
  }

  size_t answered = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (done[i]) ++answered;
  }
  TRAIL_DCHECK(answered == batch.size())
      << "every request must be answered";
}

Status AttributionService::HotSwapCheckpoint(const std::string& path) {
  TRAIL_TRACE_SPAN("serve.hot_swap");
  // Serialize swappers here; against appending workers the swap serializes
  // on the Trail's publish mutex inside LoadCheckpointAndPublish. Batches
  // never wait: staging (blob parse + EncodeAll of the new slot) happens
  // off to the side and the new epoch lands with one atomic store, while
  // in-flight batches keep serving their pinned epoch until they drain.
  std::lock_guard<std::mutex> swap_lock(swap_mu_);
  // /readyz goes transiently not-ready for the staging window so a load
  // balancer can drain instead of racing the swap.
  swapping_.store(true, std::memory_order_release);
  Status loaded = trail_->LoadCheckpointAndPublish(path);
  swapping_.store(false, std::memory_order_release);
  TRAIL_RETURN_NOT_OK(loaded);
  TRAIL_METRIC_INC("serve.hot_swaps");
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.hot_swaps;
  }
  TRAIL_LOG(Info) << "hot-swapped checkpoint " << path;
  return Status::Ok();
}

Status AttributionService::SaveCheckpoint(const std::string& path) const {
  // Trail::SaveCheckpoint serializes internally against epoch publishers.
  return trail_->SaveCheckpoint(path);
}

std::vector<std::string> AttributionService::SampleEventIds(
    size_t limit) const {
  // Read the pinned epoch's graph — immutable under concurrent appends.
  // Before the first publish (untrained models) the builder graph is only
  // mutated by this service's own workers, which cannot run attribution
  // either, so the direct read is safe in the states this is called in.
  std::shared_ptr<const core::Epoch> epoch = trail_->PinEpoch();
  const graph::PropertyGraph& g =
      epoch != nullptr ? *epoch->graph : trail_->graph();
  std::vector<graph::NodeId> events =
      g.NodesOfType(graph::NodeType::kEvent);
  std::vector<std::string> out;
  if (events.empty() || limit == 0) return out;
  const size_t stride = std::max<size_t>(1, events.size() / limit);
  for (size_t i = 0; i < events.size() && out.size() < limit; i += stride) {
    out.push_back(g.value(events[i]));
  }
  return out;
}

AttributionService::Stats AttributionService::GetStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

size_t AttributionService::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return TotalQueuedLocked();
}

size_t AttributionService::QueueDepth(Priority priority) const {
  std::lock_guard<std::mutex> lock(mu_);
  return queues_[static_cast<size_t>(priority)].size();
}

bool AttributionService::Ready() const {
  if (swapping_.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return started_ && !stopping_;
}

JsonValue AttributionService::StatusJson() const {
  JsonValue out = JsonValue::MakeObject();
  out.Set("ready", JsonValue::MakeBool(Ready()));
  out.Set("model_generation",
          JsonValue::MakeNumber(static_cast<double>(ModelGeneration())));
  out.Set("epoch_generation",
          JsonValue::MakeNumber(static_cast<double>(EpochGeneration())));
  out.Set("queue_depth",
          JsonValue::MakeNumber(static_cast<double>(QueueDepth())));
  JsonValue queue_json = JsonValue::MakeObject();
  queue_json.Set("interactive",
                 JsonValue::MakeNumber(static_cast<double>(
                     QueueDepth(Priority::kInteractive))));
  queue_json.Set("bulk", JsonValue::MakeNumber(static_cast<double>(
                             QueueDepth(Priority::kBulk))));
  out.Set("queue", std::move(queue_json));
  const Stats stats = GetStats();
  JsonValue stats_json = JsonValue::MakeObject();
  stats_json.Set("submitted",
                 JsonValue::MakeNumber(static_cast<double>(stats.submitted)));
  stats_json.Set("shed",
                 JsonValue::MakeNumber(static_cast<double>(stats.shed)));
  stats_json.Set("completed",
                 JsonValue::MakeNumber(static_cast<double>(stats.completed)));
  stats_json.Set("deadline_expired",
                 JsonValue::MakeNumber(
                     static_cast<double>(stats.deadline_expired)));
  stats_json.Set("explained",
                 JsonValue::MakeNumber(static_cast<double>(stats.explained)));
  stats_json.Set("batches",
                 JsonValue::MakeNumber(static_cast<double>(stats.batches)));
  stats_json.Set("hot_swaps",
                 JsonValue::MakeNumber(static_cast<double>(stats.hot_swaps)));
  stats_json.Set("max_batch_size",
                 JsonValue::MakeNumber(
                     static_cast<double>(stats.max_batch_size)));
  stats_json.Set("interactive_submitted",
                 JsonValue::MakeNumber(
                     static_cast<double>(stats.interactive_submitted)));
  stats_json.Set("bulk_submitted",
                 JsonValue::MakeNumber(
                     static_cast<double>(stats.bulk_submitted)));
  stats_json.Set("interactive_shed",
                 JsonValue::MakeNumber(
                     static_cast<double>(stats.interactive_shed)));
  stats_json.Set("bulk_shed",
                 JsonValue::MakeNumber(static_cast<double>(stats.bulk_shed)));
  stats_json.Set("bulk_promotions",
                 JsonValue::MakeNumber(
                     static_cast<double>(stats.bulk_promotions)));
  out.Set("stats", std::move(stats_json));
  JsonValue workers_json = JsonValue::MakeArray();
  for (const WorkerStats& ws : stats.workers) {
    JsonValue worker = JsonValue::MakeObject();
    worker.Set("batches",
               JsonValue::MakeNumber(static_cast<double>(ws.batches)));
    worker.Set("requests",
               JsonValue::MakeNumber(static_cast<double>(ws.requests)));
    worker.Set("last_batch_size",
               JsonValue::MakeNumber(
                   static_cast<double>(ws.last_batch_size)));
    workers_json.Append(std::move(worker));
  }
  out.Set("workers", std::move(workers_json));
  // The evidence-path plane of the epoch new batches would pin: the index
  // generation must track epoch_generation (every publish re-stamps it), or
  // explains are answering from a stale graph.
  JsonValue paths_json = JsonValue::MakeObject();
  std::shared_ptr<const core::Epoch> epoch = trail_->PinEpoch();
  if (epoch != nullptr && epoch->paths != nullptr) {
    paths_json.Set("present", JsonValue::MakeBool(true));
    paths_json.Set("index_generation",
                   JsonValue::MakeNumber(
                       static_cast<double>(epoch->paths_generation)));
    paths_json.Set("groups",
                   JsonValue::MakeNumber(static_cast<double>(
                       epoch->paths->num_apts() + 1)));
    paths_json.Set("max_hops",
                   JsonValue::MakeNumber(
                       static_cast<double>(epoch->paths->max_hops())));
    paths_json.Set("interval_count",
                   JsonValue::MakeNumber(static_cast<double>(
                       epoch->paths->interval_count())));
    paths_json.Set("resident_bytes",
                   JsonValue::MakeNumber(static_cast<double>(
                       epoch->paths->resident_bytes())));
  } else {
    paths_json.Set("present", JsonValue::MakeBool(false));
  }
  out.Set("paths", std::move(paths_json));
  out.Set("slo", slo_.ToJson());
  JsonValue options_json = JsonValue::MakeObject();
  options_json.Set("max_batch_size",
                   JsonValue::MakeNumber(
                       static_cast<double>(options_.max_batch_size)));
  options_json.Set("max_linger_us",
                   JsonValue::MakeNumber(
                       static_cast<double>(options_.max_linger_us)));
  options_json.Set("queue_depth",
                   JsonValue::MakeNumber(
                       static_cast<double>(options_.queue_depth)));
  options_json.Set("workers",
                   JsonValue::MakeNumber(
                       static_cast<double>(std::max<size_t>(
                           1, options_.workers))));
  options_json.Set("bulk_starvation_bound",
                   JsonValue::MakeNumber(
                       static_cast<double>(options_.bulk_starvation_bound)));
  options_json.Set("trace_ring_capacity",
                   JsonValue::MakeNumber(
                       static_cast<double>(options_.trace_ring_capacity)));
  out.Set("options", std::move(options_json));
  return out;
}

}  // namespace trail::serve
