#ifndef TRAIL_SERVE_FRONTEND_H_
#define TRAIL_SERVE_FRONTEND_H_

#include <future>
#include <string>

#include "serve/attribution_service.h"

namespace trail::serve {

/// One handled request line. `line` resolves to the LDJSON response (one
/// compact JSON object, no trailing newline); for batched ops it blocks on
/// the micro-batch, so callers should buffer several replies before
/// draining them in order (pipelining). `shutdown` is set when the client
/// asked the server to stop after this reply.
struct Reply {
  std::future<std::string> line;
  bool shutdown = false;
};

/// The LDJSON protocol: each request is one JSON object per line with an
/// "op" field, each response one JSON object per line echoing the request's
/// optional "id". See docs/SERVING.md for the op reference:
///
///   {"op":"ping"}
///   {"op":"attribute","report":"<report id>","deadline_ms":50}
///   {"op":"attribute","report":"...","explain":true,"explain_k":3}
///   {"op":"attribute_event","node":123}
///   {"op":"ingest","report":{...feed wire format...}}
///   {"op":"list_events","limit":64}
///   {"op":"stats"}
///   {"op":"save_checkpoint","path":"..."}
///   {"op":"hot_swap","path":"..."}
///   {"op":"shutdown"}
///
/// Responses carry "ok" (bool), "code"/"error" when !ok (the StatusCode
/// name — "Overloaded" and "DeadlineExceeded" are load-shedding, not
/// protocol failures), and op-specific payload fields.
class Frontend {
 public:
  explicit Frontend(AttributionService* service) : service_(service) {}

  /// Parses and dispatches one request line. Never throws; malformed input
  /// yields an immediately-ready error reply. Thread-safe: ops delegate to
  /// the service, which serializes internally (hot_swap runs on the calling
  /// connection's thread, staging concurrently with serving batches).
  Reply Handle(const std::string& line);

 private:
  AttributionService* service_;
};

}  // namespace trail::serve

#endif  // TRAIL_SERVE_FRONTEND_H_
