#include "serve/frontend.h"

#include <algorithm>
#include <utility>

#include "util/json.h"

namespace trail::serve {

namespace {

Reply Ready(std::string line, bool shutdown = false) {
  std::promise<std::string> p;
  p.set_value(std::move(line));
  Reply reply;
  reply.line = p.get_future();
  reply.shutdown = shutdown;
  return reply;
}

JsonValue BaseResponse(const JsonValue& request) {
  JsonValue out = JsonValue::MakeObject();
  if (const JsonValue* id = request.Get("id")) out.Set("id", *id);
  return out;
}

JsonValue ErrorBody(const JsonValue& request, const Status& status) {
  JsonValue out = BaseResponse(request);
  out.Set("ok", JsonValue::MakeBool(false));
  out.Set("code", JsonValue::MakeString(StatusCodeName(status.code())));
  out.Set("error", JsonValue::MakeString(std::string(status.message())));
  return out;
}

std::string RenderServeResponse(const JsonValue& request,
                                const ServeResponse& response) {
  if (!response.status.ok()) {
    JsonValue out = ErrorBody(request, response.status);
    out.Set("batch_size",
            JsonValue::MakeNumber(static_cast<double>(response.batch_size)));
    out.Set("trace_id",
            JsonValue::MakeNumber(static_cast<double>(response.trace_id)));
    return out.Dump();
  }
  JsonValue out = BaseResponse(request);
  out.Set("ok", JsonValue::MakeBool(true));
  out.Set("trace_id",
          JsonValue::MakeNumber(static_cast<double>(response.trace_id)));
  out.Set("apt", JsonValue::MakeString(response.attribution.apt_name));
  out.Set("confidence", JsonValue::MakeNumber(response.attribution.confidence));
  // Open-set fields: `verdict` is "unknown" when the epoch's abstention
  // policy fired (apt/confidence still carry the forced-label answer for
  // comparison); novelty_score and energy are always populated.
  out.Set("verdict", JsonValue::MakeString(
                         response.attribution.unknown ? "unknown" : "known"));
  out.Set("novelty_score",
          JsonValue::MakeNumber(response.attribution.novelty_score));
  out.Set("energy", JsonValue::MakeNumber(response.attribution.energy));
  out.Set("event", JsonValue::MakeNumber(static_cast<double>(response.event)));
  out.Set("batch_size",
          JsonValue::MakeNumber(static_cast<double>(response.batch_size)));
  out.Set("queue_ms", JsonValue::MakeNumber(response.queue_seconds * 1e3));
  JsonValue dist = JsonValue::MakeArray();
  for (const auto& [name, p] : response.attribution.distribution) {
    JsonValue entry = JsonValue::MakeArray();
    entry.Append(JsonValue::MakeString(name));
    entry.Append(JsonValue::MakeNumber(p));
    dist.Append(std::move(entry));
  }
  out.Set("distribution", std::move(dist));
  if (response.explained) {
    // Evidence paths (docs/PATHS.md wire format): one object per reuse
    // chain, cheapest first; "path" walks event -> infrastructure with the
    // schema edge traversed into each hop ("edge" absent on the first).
    JsonValue evidence = JsonValue::MakeArray();
    for (const core::Trail::ExplainedPath& path : response.evidence) {
      JsonValue path_json = JsonValue::MakeObject();
      path_json.Set("cost", JsonValue::MakeNumber(path.cost));
      path_json.Set("hops",
                    JsonValue::MakeNumber(static_cast<double>(
                        path.hops.empty() ? 0 : path.hops.size() - 1)));
      JsonValue hops_json = JsonValue::MakeArray();
      for (const core::Trail::ExplainedPath::Hop& hop : path.hops) {
        JsonValue hop_json = JsonValue::MakeObject();
        hop_json.Set("node",
                     JsonValue::MakeNumber(static_cast<double>(hop.node)));
        hop_json.Set("type", JsonValue::MakeString(hop.type));
        hop_json.Set("value", JsonValue::MakeString(hop.value));
        if (!hop.edge.empty()) {
          hop_json.Set("edge", JsonValue::MakeString(hop.edge));
        }
        hops_json.Append(std::move(hop_json));
      }
      path_json.Set("path", std::move(hops_json));
      evidence.Append(std::move(path_json));
    }
    out.Set("evidence", std::move(evidence));
  }
  return out.Dump();
}

/// Wraps a service future so the writer side renders the JSON only when it
/// drains the reply (deferred), preserving submission order per connection.
Reply Deferred(const JsonValue& request,
               std::future<ServeResponse> response) {
  Reply reply;
  reply.line = std::async(
      std::launch::deferred,
      [request, moved = std::move(response)]() mutable {
        return RenderServeResponse(request, moved.get());
      });
  return reply;
}

}  // namespace

Reply Frontend::Handle(const std::string& line) {
  auto parsed = JsonValue::Parse(line);
  if (!parsed.ok()) {
    return Ready(ErrorBody(JsonValue::MakeObject(),
                           Status::ParseError("bad request line: " +
                                              std::string(
                                                  parsed.status().message())))
                     .Dump());
  }
  JsonValue request = std::move(parsed).value();
  if (!request.is_object()) {
    return Ready(
        ErrorBody(JsonValue::MakeObject(),
                  Status::InvalidArgument("request must be a JSON object"))
            .Dump());
  }
  const std::string op = request.GetString("op");
  const int64_t deadline_ms =
      static_cast<int64_t>(request.GetNumber("deadline_ms", -1.0));
  // Cross-connection admission class; anything but "bulk" (including the
  // absent default) is interactive — an analyst waiting on a verdict should
  // not need to say so.
  const Priority priority = request.GetString("priority") == "bulk"
                                ? Priority::kBulk
                                : Priority::kInteractive;
  // "explain": true asks for evidence paths in the reply; "explain_k"
  // bounds how many (clamped to a sane ceiling; 0 = the engine default).
  const bool explain = request.GetBool("explain");
  const size_t explain_k = static_cast<size_t>(
      std::min(std::max(request.GetNumber("explain_k", 0.0), 0.0), 16.0));

  if (op == "ping") {
    JsonValue out = BaseResponse(request);
    out.Set("ok", JsonValue::MakeBool(true));
    out.Set("op", JsonValue::MakeString("ping"));
    return Ready(out.Dump());
  }

  if (op == "attribute") {
    const std::string report = request.GetString("report");
    if (report.empty()) {
      return Ready(ErrorBody(request, Status::InvalidArgument(
                                          "attribute needs a \"report\" id"))
                       .Dump());
    }
    return Deferred(request,
                    service_->SubmitReportId(report, deadline_ms, priority,
                                             explain, explain_k));
  }

  if (op == "attribute_event") {
    const JsonValue* node = request.Get("node");
    if (node == nullptr || !node->is_number()) {
      return Ready(ErrorBody(request,
                             Status::InvalidArgument(
                                 "attribute_event needs a numeric \"node\""))
                       .Dump());
    }
    return Deferred(request,
                    service_->SubmitEvent(
                        static_cast<graph::NodeId>(node->AsInt()),
                        deadline_ms, priority, explain, explain_k));
  }

  if (op == "ingest") {
    const JsonValue* report = request.Get("report");
    if (report == nullptr || !report->is_object()) {
      return Ready(ErrorBody(request,
                             Status::InvalidArgument(
                                 "ingest needs a \"report\" object"))
                       .Dump());
    }
    return Deferred(request,
                    service_->SubmitReportJson(report->Dump(), deadline_ms,
                                               priority, explain, explain_k));
  }

  if (op == "list_events") {
    const size_t limit =
        static_cast<size_t>(request.GetNumber("limit", 64.0));
    JsonValue out = BaseResponse(request);
    out.Set("ok", JsonValue::MakeBool(true));
    JsonValue events = JsonValue::MakeArray();
    for (std::string& id : service_->SampleEventIds(limit)) {
      events.Append(JsonValue::MakeString(std::move(id)));
    }
    out.Set("events", std::move(events));
    return Ready(out.Dump());
  }

  if (op == "stats") {
    const AttributionService::Stats stats = service_->GetStats();
    JsonValue out = BaseResponse(request);
    out.Set("ok", JsonValue::MakeBool(true));
    out.Set("submitted",
            JsonValue::MakeNumber(static_cast<double>(stats.submitted)));
    out.Set("shed", JsonValue::MakeNumber(static_cast<double>(stats.shed)));
    out.Set("completed",
            JsonValue::MakeNumber(static_cast<double>(stats.completed)));
    out.Set("deadline_expired",
            JsonValue::MakeNumber(
                static_cast<double>(stats.deadline_expired)));
    out.Set("explained",
            JsonValue::MakeNumber(static_cast<double>(stats.explained)));
    out.Set("batches",
            JsonValue::MakeNumber(static_cast<double>(stats.batches)));
    out.Set("hot_swaps",
            JsonValue::MakeNumber(static_cast<double>(stats.hot_swaps)));
    out.Set("max_batch_size",
            JsonValue::MakeNumber(static_cast<double>(stats.max_batch_size)));
    out.Set("interactive_submitted",
            JsonValue::MakeNumber(
                static_cast<double>(stats.interactive_submitted)));
    out.Set("bulk_submitted",
            JsonValue::MakeNumber(static_cast<double>(stats.bulk_submitted)));
    out.Set("bulk_promotions",
            JsonValue::MakeNumber(static_cast<double>(stats.bulk_promotions)));
    out.Set("epoch_generation",
            JsonValue::MakeNumber(
                static_cast<double>(service_->EpochGeneration())));
    out.Set("queue_depth",
            JsonValue::MakeNumber(
                static_cast<double>(service_->QueueDepth())));
    JsonValue sizes = JsonValue::MakeObject();
    for (const auto& [size, count] : stats.batch_size_counts) {
      sizes.Set(std::to_string(size),
                JsonValue::MakeNumber(static_cast<double>(count)));
    }
    out.Set("batch_size_counts", std::move(sizes));
    return Ready(out.Dump());
  }

  if (op == "save_checkpoint" || op == "hot_swap") {
    const std::string path = request.GetString("path");
    if (path.empty()) {
      return Ready(
          ErrorBody(request, Status::InvalidArgument(op + " needs a \"path\""))
              .Dump());
    }
    const Status status = op == "hot_swap"
                              ? service_->HotSwapCheckpoint(path)
                              : service_->SaveCheckpoint(path);
    if (!status.ok()) return Ready(ErrorBody(request, status).Dump());
    JsonValue out = BaseResponse(request);
    out.Set("ok", JsonValue::MakeBool(true));
    out.Set("op", JsonValue::MakeString(op));
    return Ready(out.Dump());
  }

  if (op == "shutdown") {
    JsonValue out = BaseResponse(request);
    out.Set("ok", JsonValue::MakeBool(true));
    out.Set("op", JsonValue::MakeString("shutdown"));
    return Ready(out.Dump(), /*shutdown=*/true);
  }

  return Ready(
      ErrorBody(request, Status::InvalidArgument("unknown op: \"" + op + "\""))
          .Dump());
}

}  // namespace trail::serve
