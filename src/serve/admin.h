#ifndef TRAIL_SERVE_ADMIN_H_
#define TRAIL_SERVE_ADMIN_H_

#include <memory>
#include <string>

#include "obs/http_introspect.h"
#include "obs/log_sinks.h"
#include "serve/attribution_service.h"

namespace trail::serve {

/// The serving admin plane: wires an AttributionService (and optionally the
/// process log ring) into an obs::HttpIntrospectServer. Endpoints
/// (docs/OBSERVABILITY.md has the full reference):
///
///   /metrics   live Prometheus text (serve.slo.* gauges refreshed per
///              scrape)
///   /healthz   liveness — 200 "ok" whenever the process answers
///   /readyz    readiness — 503 while not started / stopping / a hot-swap
///              is staging its new model slot
///   /statusz   JSON: build info, uptime, model generation, queue depth,
///              serving stats, SLO windows and burn rates
///   /tracez    JSON: the recent-request trace ring, newest first, plus the
///              slowest-request exemplars (?limit=N caps the list)
///   /logz      JSON: the in-memory log tail (?limit=N caps the list)
///
/// The HTTP server itself lives in obs and knows nothing about serving;
/// this class is the only place the two meet.
class AdminPlane {
 public:
  /// `log_ring` may be null; /logz then reports an empty tail with
  /// "enabled": false.
  AdminPlane(AttributionService* service, const obs::RingBufferSink* log_ring);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port()).
  Status Start(int port);
  int port() const { return http_.port(); }
  void Stop() { http_.Stop(); }

  obs::HttpIntrospectServer& http() { return http_; }

 private:
  AttributionService* service_;
  const obs::RingBufferSink* log_ring_;
  /// Process trace epoch at construction — /statusz uptime.
  int64_t started_us_ = 0;
  obs::HttpIntrospectServer http_;
};

}  // namespace trail::serve

#endif  // TRAIL_SERVE_ADMIN_H_
