#ifndef TRAIL_UTIL_PARALLEL_H_
#define TRAIL_UTIL_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace trail {

/// Number of worker threads the global pool runs. Precedence:
/// SetParallelWorkers (the `--threads` flag) > TRAIL_THREADS environment
/// variable > std::thread::hardware_concurrency (uncapped; 4 when unknown).
int ParallelWorkers();

/// Overrides the worker count (n <= 0 restores auto-detection). If the
/// global pool is already running it is drained and resized, so tests can
/// re-run the same workload at 1, 2, and 8 threads in one process. Must not
/// be called while a ParallelFor is in flight.
void SetParallelWorkers(int n);

/// Resolves the effective worker count from the precedence chain above
/// without touching the pool. Used by ThreadPool::Global() at first start.
int ResolveParallelWorkers();

/// How ParallelFor splits [0, n): `chunks` chunks of `per_chunk` indices
/// (the last chunk may be short). The split depends ONLY on n and
/// min_chunk — never on the worker count — so per-chunk scratch, partial
/// sums, and RNG consumption are bit-identical at any thread count.
struct ParallelChunking {
  size_t chunks = 1;
  size_t per_chunk = 0;
};
ParallelChunking ComputeParallelChunking(size_t n, size_t min_chunk);

/// Runs fn(begin, end) over the deterministic partition of [0, n) described
/// by ComputeParallelChunking. Chunks beyond the first are offered to the
/// global ThreadPool while the calling thread executes chunk 0 inline and
/// then helps drain the rest; the call blocks until every chunk finished.
/// Nested calls (from inside a pool worker) run all chunks inline, in
/// order. The callback must write only to disjoint output ranges. If fn
/// throws, the first exception is rethrown on the caller after in-flight
/// chunks finish; chunks not yet started are abandoned.
void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn,
                 size_t min_chunk = 1024);

/// Per-index convenience wrapper: fn(i) for every i in [0, n), chunked as
/// ParallelFor. min_chunk defaults to 1 because callers typically hand in
/// coarse items (one tree, one feature, one report).
template <typename Fn>
void ParallelForEachIndex(size_t n, Fn&& fn, size_t min_chunk = 1) {
  const Fn& f = fn;
  ParallelFor(
      n,
      [&f](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) f(i);
      },
      min_chunk);
}

/// Deterministic parallel reduction: `map(begin, end)` produces one partial
/// per chunk, and `combine` folds the partials **in chunk order** starting
/// from `identity`. Because the chunking is thread-count independent and the
/// combine order is fixed, floating-point reductions return bit-identical
/// results at any worker count (including 1). With a single chunk the result
/// equals the plain serial loop.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(size_t n, T identity, MapFn&& map, CombineFn&& combine,
                 size_t min_chunk = 1024) {
  if (n == 0) return identity;
  const ParallelChunking split = ComputeParallelChunking(n, min_chunk);
  if (split.chunks == 1) return combine(std::move(identity), map(0, n));
  std::vector<T> partials(split.chunks, identity);
  const MapFn& m = map;
  ParallelFor(
      split.chunks,
      [&](size_t cb, size_t ce) {
        for (size_t c = cb; c < ce; ++c) {
          const size_t begin = c * split.per_chunk;
          const size_t end = std::min(n, begin + split.per_chunk);
          partials[c] = m(begin, end);
        }
      },
      /*min_chunk=*/1);
  T acc = std::move(identity);
  for (T& partial : partials) acc = combine(std::move(acc), std::move(partial));
  return acc;
}

/// Observability hook: invoked after every top-level ParallelFor with its
/// wall time and shape. Installed by obs::InstallParallelMetricsBridge so
/// trail_util never links against the metrics registry (obs depends on
/// util, not the reverse).
struct ParallelForEvent {
  double seconds = 0.0;   // wall time of the whole call
  size_t items = 0;       // n
  size_t chunks = 0;      // tasks the call split into
  size_t queue_depth = 0; // pool queue depth observed at completion
};
using ParallelForObserver = void (*)(const ParallelForEvent&);
void SetParallelForObserver(ParallelForObserver observer);

}  // namespace trail

#endif  // TRAIL_UTIL_PARALLEL_H_
