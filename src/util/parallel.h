#ifndef TRAIL_UTIL_PARALLEL_H_
#define TRAIL_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace trail {

/// Number of worker threads ParallelFor will use (hardware concurrency,
/// capped at 16).
int ParallelWorkers();

/// Runs fn(begin, end) over a partition of [0, n) across worker threads.
/// Falls back to a single inline call for small n. Blocks until done. The
/// callback must write only to disjoint output ranges.
void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn,
                 size_t min_chunk = 1024);

}  // namespace trail

#endif  // TRAIL_UTIL_PARALLEL_H_
