#ifndef TRAIL_UTIL_THREAD_POOL_H_
#define TRAIL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace trail {

/// A persistent worker pool: threads are started lazily on first Submit and
/// then reused for the lifetime of the pool, so hot loops (matrix kernels,
/// per-tree fits, split scans) pay a queue push instead of a thread spawn.
///
/// The process-global pool behind ParallelFor/ParallelReduce is
/// ThreadPool::Global(); its size comes from SetParallelWorkers (the
/// `--threads` flag), the TRAIL_THREADS environment variable, or
/// hardware_concurrency, in that order of precedence (see util/parallel.h).
class ThreadPool {
 public:
  /// The process-global pool. Created on first use; sized by
  /// ResolveParallelWorkers(). Never destroyed (workers are detached-joined
  /// at exit by the OS; the pool outlives all library callers).
  static ThreadPool& Global();

  /// A standalone pool with `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Workers are started on the first call. Tasks must
  /// not block waiting for later-submitted tasks (ParallelFor's chunk-claim
  /// protocol never does).
  void Submit(std::function<void()> task);

  /// Number of worker threads this pool runs once started.
  int num_threads() const;

  /// Joins every worker (after the queue drains) and restarts lazily with
  /// the new count. Must not be called from inside a worker. Callers must
  /// guarantee no ParallelFor is in flight (tests and CLI startup do).
  void Resize(int num_threads);

  /// True when the calling thread is a worker of *any* ThreadPool. Nested
  /// parallel constructs use this to degrade to inline execution instead of
  /// deadlocking on their own pool.
  static bool OnWorkerThread();

  /// Tasks currently waiting in the queue (excludes running tasks).
  size_t QueueDepth() const;

  /// Total tasks ever submitted (monotonic, for observability bridges).
  uint64_t TotalSubmitted() const;

 private:
  void StartLocked();
  void StopAndJoin();
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int num_threads_;
  uint64_t total_submitted_ = 0;
  bool started_ = false;
  bool stopping_ = false;
};

}  // namespace trail

#endif  // TRAIL_UTIL_THREAD_POOL_H_
