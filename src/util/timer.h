#ifndef TRAIL_UTIL_TIMER_H_
#define TRAIL_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace trail {

/// Wall-clock stopwatch for coarse phase timing in benches and examples.
/// Supports lap accumulation: Stop() banks the elapsed time, Resume()
/// continues, and the Elapsed* accessors always report the accumulated
/// total (plus the running lap, when running).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Clears accumulated time and restarts the stopwatch.
  void Reset() {
    accumulated_ = Clock::duration::zero();
    start_ = Clock::now();
    running_ = true;
  }

  /// Banks the current lap; no-op when already stopped.
  void Stop() {
    if (!running_) return;
    accumulated_ += Clock::now() - start_;
    running_ = false;
  }

  /// Starts a new lap; no-op when already running.
  void Resume() {
    if (running_) return;
    start_ = Clock::now();
    running_ = true;
  }

  bool running() const { return running_; }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Elapsed())
        .count();
  }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Elapsed()).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;

  Clock::duration Elapsed() const {
    Clock::duration total = accumulated_;
    if (running_) total += Clock::now() - start_;
    return total;
  }

  Clock::time_point start_;
  Clock::duration accumulated_ = Clock::duration::zero();
  bool running_ = true;
};

}  // namespace trail

#endif  // TRAIL_UTIL_TIMER_H_
