#ifndef TRAIL_UTIL_JSON_H_
#define TRAIL_UTIL_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace trail {

/// A small owning JSON document model. The OSINT feed emits incident reports
/// as JSON (mirroring the paper's raw-OTX-pulse ingestion path) and the TKG
/// builder parses them back, so TRAIL carries its own reader/writer instead
/// of depending on an external JSON library.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double d);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }

  /// Array access.
  const std::vector<JsonValue>& items() const { return array_; }
  void Append(JsonValue v) { array_.push_back(std::move(v)); }
  size_t size() const { return array_.size(); }
  const JsonValue& operator[](size_t i) const { return array_[i]; }

  /// Object access. `Get` returns nullptr for a missing key.
  const JsonValue* Get(std::string_view key) const;
  void Set(std::string key, JsonValue v);
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }

  /// Convenience typed getters with fallbacks, for tolerant report parsing.
  std::string GetString(std::string_view key, std::string fallback = "") const;
  double GetNumber(std::string_view key, double fallback = 0.0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;

  /// Serializes to compact JSON; `indent` > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

  /// Parses a complete JSON document. Trailing garbage is an error.
  static Result<JsonValue> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace trail

#endif  // TRAIL_UTIL_JSON_H_
