#include "util/table_printer.h"

#include <algorithm>
#include <iostream>

#include "util/logging.h"

namespace trail {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  TRAIL_CHECK(row.size() == headers_.size())
      << "row arity " << row.size() << " != header arity " << headers_.size();
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) {
        line.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    line.push_back('\n');
    return line;
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out.push_back('\n');
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::cout << ToString() << std::flush; }

}  // namespace trail
