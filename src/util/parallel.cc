#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "util/thread_pool.h"

namespace trail {

namespace {

/// Upper bound on chunks per call. Fixed (not worker-derived) so chunk
/// boundaries never depend on the thread count; large enough that up to 256
/// workers still all get work, small enough that queue traffic stays cheap.
constexpr size_t kMaxChunks = 256;

std::atomic<int> g_requested_workers{0};  // 0 = auto-detect
std::atomic<ParallelForObserver> g_observer{nullptr};

/// Shared state of one ParallelFor call. Chunks are claimed via an atomic
/// cursor: assignment of chunk -> thread varies run to run, but the chunk
/// boundaries (and therefore everything the callback can observe) do not.
struct ParallelForState {
  ParallelForState(const std::function<void(size_t, size_t)>& body, size_t n,
                   ParallelChunking split)
      : fn(body), n(n), per_chunk(split.per_chunk), chunks(split.chunks) {}

  const std::function<void(size_t, size_t)>& fn;
  const size_t n;
  const size_t per_chunk;
  const size_t chunks;
  std::atomic<size_t> next_chunk{1};  // chunk 0 is reserved for the caller
  std::atomic<size_t> done{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex mu;
  std::condition_variable cv;

  void RunChunk(size_t c) {
    if (!failed.load(std::memory_order_relaxed)) {
      try {
        const size_t begin = c * per_chunk;
        const size_t end = std::min(n, begin + per_chunk);
        fn(begin, end);
      } catch (...) {
        if (!failed.exchange(true, std::memory_order_acq_rel)) {
          std::lock_guard<std::mutex> lock(mu);
          error = std::current_exception();
        }
      }
    }
    if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
      std::lock_guard<std::mutex> lock(mu);
      cv.notify_all();
    }
  }

  /// Claims and runs chunks until the cursor is exhausted.
  void Drain() {
    for (;;) {
      const size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      RunChunk(c);
    }
  }
};

void RunChunksInline(size_t n, const std::function<void(size_t, size_t)>& fn,
                     const ParallelChunking& split) {
  for (size_t c = 0; c < split.chunks; ++c) {
    const size_t begin = c * split.per_chunk;
    const size_t end = std::min(n, begin + split.per_chunk);
    fn(begin, end);
  }
}

}  // namespace

int ResolveParallelWorkers() {
  const int requested = g_requested_workers.load(std::memory_order_relaxed);
  if (requested > 0) return requested;
  const char* env = std::getenv("TRAIL_THREADS");
  if (env != nullptr && env[0] != '\0') {
    const int from_env = std::atoi(env);
    if (from_env > 0) return from_env;
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  return static_cast<int>(hw);
}

int ParallelWorkers() { return ThreadPool::Global().num_threads(); }

void SetParallelWorkers(int n) {
  g_requested_workers.store(n > 0 ? n : 0, std::memory_order_relaxed);
  ThreadPool::Global().Resize(ResolveParallelWorkers());
}

void SetParallelForObserver(ParallelForObserver observer) {
  g_observer.store(observer, std::memory_order_relaxed);
}

ParallelChunking ComputeParallelChunking(size_t n, size_t min_chunk) {
  ParallelChunking split;
  if (n == 0) return split;
  if (min_chunk == 0) min_chunk = 1;
  size_t chunks = (n + min_chunk - 1) / min_chunk;
  chunks = std::min(chunks, kMaxChunks);
  split.per_chunk = (n + chunks - 1) / chunks;
  // Recompute so a short tail never yields an empty chunk.
  split.chunks = (n + split.per_chunk - 1) / split.per_chunk;
  return split;
}

void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn,
                 size_t min_chunk) {
  if (n == 0) return;
  const ParallelChunking split = ComputeParallelChunking(n, min_chunk);

  // Nested parallelism (a ParallelFor inside a pool task) degrades to the
  // same chunked loop inline: submitting to the pool we are running on
  // could deadlock, and the outer call already owns the workers.
  if (ThreadPool::OnWorkerThread()) {
    RunChunksInline(n, fn, split);
    return;
  }

  ThreadPool& pool = ThreadPool::Global();
  const int workers = pool.num_threads();
  const ParallelForObserver observer =
      g_observer.load(std::memory_order_relaxed);
  const auto t0 = observer != nullptr ? std::chrono::steady_clock::now()
                                      : std::chrono::steady_clock::time_point();

  if (split.chunks == 1 || workers <= 1) {
    // Serial path: identical chunk boundaries, zero queue traffic.
    RunChunksInline(n, fn, split);
  } else {
    auto state = std::make_shared<ParallelForState>(fn, n, split);
    // One helper per worker is enough: each helper drains the shared chunk
    // cursor rather than owning a single chunk.
    const size_t helpers =
        std::min<size_t>(static_cast<size_t>(workers), split.chunks - 1);
    for (size_t h = 0; h < helpers; ++h) {
      pool.Submit([state]() { state->Drain(); });
    }
    // The caller is a full participant: chunk 0 runs inline here, then this
    // thread helps drain whatever the workers have not claimed yet.
    state->RunChunk(0);
    state->Drain();
    {
      std::unique_lock<std::mutex> lock(state->mu);
      state->cv.wait(lock, [&]() {
        return state->done.load(std::memory_order_acquire) == state->chunks;
      });
    }
    if (state->failed.load(std::memory_order_acquire)) {
      std::rethrow_exception(state->error);
    }
  }

  if (observer != nullptr) {
    ParallelForEvent event;
    event.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    event.items = n;
    event.chunks = split.chunks;
    event.queue_depth = pool.QueueDepth();
    observer(event);
  }
}

}  // namespace trail
