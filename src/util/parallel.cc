#include "util/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace trail {

int ParallelWorkers() {
  static const int workers = []() {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 4;
    return static_cast<int>(std::min(hw, 16u));
  }();
  return workers;
}

void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn,
                 size_t min_chunk) {
  if (n == 0) return;
  const int workers = ParallelWorkers();
  if (workers <= 1 || n <= min_chunk) {
    fn(0, n);
    return;
  }
  const size_t chunks = std::min<size_t>(workers, (n + min_chunk - 1) / min_chunk);
  const size_t per_chunk = (n + chunks - 1) / chunks;
  std::vector<std::thread> threads;
  threads.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * per_chunk;
    size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    threads.emplace_back([&fn, begin, end]() { fn(begin, end); });
  }
  for (auto& t : threads) t.join();
}

}  // namespace trail
