#include "util/random.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace trail {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

int Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  const double limit = std::exp(-mean);
  double product = UniformDouble();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= UniformDouble();
  }
  return count;
}

int Rng::HeavyTailCount(double mean_extra) {
  if (mean_extra <= 0.0) return 1;
  double u = UniformDouble();
  if (u < 1e-300) u = 1e-300;
  return 1 + static_cast<int>(-mean_extra * std::log(u));
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) return NextBounded(weights.empty() ? 1 : weights.size());
  double target = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

size_t Rng::Zipf(size_t n, double s) {
  if (n <= 1) return 0;
  // Inverse-CDF on the harmonic weights; n in TRAIL is small enough that the
  // O(n) normalization cost is irrelevant next to graph construction.
  double h = 0.0;
  for (size_t i = 1; i <= n; ++i) h += 1.0 / std::pow(static_cast<double>(i), s);
  double target = UniformDouble() * h;
  double acc = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (target < acc) return i - 1;
  }
  return n - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  k = std::min(k, n);
  if (k == 0) return {};
  if (k * 3 >= n) {
    std::vector<size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    Shuffle(&all);
    all.resize(k);
    return all;
  }
  std::unordered_set<size_t> seen;
  std::vector<size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    size_t candidate = NextBounded(n);
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace trail
