#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"
#include "util/parallel.h"

namespace trail {

namespace {
thread_local bool tl_on_worker_thread = false;
}  // namespace

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool =
      new ThreadPool(ResolveParallelWorkers());  // never freed
  return *pool;
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {}

ThreadPool::~ThreadPool() { StopAndJoin(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) StartLocked();
    queue_.push_back(std::move(task));
    ++total_submitted_;
  }
  cv_.notify_one();
}

int ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_threads_;
}

void ThreadPool::Resize(int num_threads) {
  TRAIL_CHECK(!OnWorkerThread()) << "ThreadPool::Resize from a worker thread";
  StopAndJoin();
  std::lock_guard<std::mutex> lock(mu_);
  num_threads_ = std::max(1, num_threads);
  // Workers restart lazily on the next Submit.
}

bool ThreadPool::OnWorkerThread() { return tl_on_worker_thread; }

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

uint64_t ThreadPool::TotalSubmitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_submitted_;
}

void ThreadPool::StartLocked() {
  stopping_ = false;
  workers_.reserve(num_threads_);
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
  started_ = true;
}

void ThreadPool::StopAndJoin() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
    to_join.swap(workers_);
    started_ = false;
  }
  cv_.notify_all();
  for (std::thread& t : to_join) t.join();
}

void ThreadPool::WorkerLoop() {
  tl_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping so Resize never drops work.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace trail
