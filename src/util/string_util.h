#ifndef TRAIL_UTIL_STRING_UTIL_H_
#define TRAIL_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace trail {

/// Splits `s` on every occurrence of `sep`; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins strings with the given separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing (IOC values are ASCII by construction).
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True when every character is an ASCII digit (and s is non-empty).
bool IsDigits(std::string_view s);

/// Count of characters in `s` equal to `c`.
size_t CountChar(std::string_view s, char c);

/// Shannon entropy over byte frequencies, in bits per character.
double ShannonEntropy(std::string_view s);

/// Formats a double with fixed precision (benchmark table output helper).
std::string FormatDouble(double v, int precision);

/// Renders an integer with thousands separators ("2,125,066").
std::string WithThousands(int64_t v);

}  // namespace trail

#endif  // TRAIL_UTIL_STRING_UTIL_H_
