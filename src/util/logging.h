#ifndef TRAIL_UTIL_LOGGING_H_
#define TRAIL_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace trail {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Benchmarks raise this
/// to kWarning so tables are not interleaved with progress chatter.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define TRAIL_LOG(level)                                            \
  ::trail::internal::LogMessage(::trail::LogLevel::k##level,        \
                                __FILE__, __LINE__)

/// Invariant check: aborts with a message when `cond` is false. Used for
/// programming errors only; recoverable failures go through Status.
#define TRAIL_CHECK(cond)                                           \
  if (cond) {                                                       \
  } else                                                            \
    ::trail::internal::FatalMessage(__FILE__, __LINE__, #cond)

#define TRAIL_DCHECK(cond) TRAIL_CHECK(cond)

}  // namespace trail

#endif  // TRAIL_UTIL_LOGGING_H_
