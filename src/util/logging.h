#ifndef TRAIL_UTIL_LOGGING_H_
#define TRAIL_UTIL_LOGGING_H_

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

namespace trail {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Benchmarks raise this
/// to kWarning so tables are not interleaved with progress chatter. Level
/// reads/writes are atomic — safe from ParallelFor workers.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warning" / "error" (case-insensitive; "warn"
/// accepted). Returns false and leaves `out` untouched on unknown names.
bool ParseLogLevel(std::string_view name, LogLevel* out);
const char* LogLevelName(LogLevel level);

/// One emitted log message, as handed to sinks. `message` is the streamed
/// payload without the "[LEVEL file:line]" prefix; `file` is the basename.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  const char* file = "";
  int line = 0;
  int64_t time_us = 0;  // microseconds since the process log epoch
  std::string_view message;
};

/// Pluggable destination behind TRAIL_LOG. When no sink is registered the
/// default stderr text sink applies (one write(2)-equivalent per message,
/// so concurrent logs never tear mid-line). Implementations live in
/// src/obs/log_sinks.h; sinks must be thread-safe and are not owned by the
/// registry.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogRecord& record) = 0;
};

/// Registers / removes a sink. While at least one sink is registered the
/// built-in stderr emission is suppressed (register an obs::StderrTextSink
/// to keep it alongside others). RemoveLogSink returns false when `sink`
/// was not registered.
void AddLogSink(LogSink* sink);
bool RemoveLogSink(LogSink* sink);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define TRAIL_LOG(level)                                            \
  ::trail::internal::LogMessage(::trail::LogLevel::k##level,        \
                                __FILE__, __LINE__)

/// Invariant check: aborts with a message when `cond` is false. Used for
/// programming errors only; recoverable failures go through Status.
#define TRAIL_CHECK(cond)                                           \
  if (cond) {                                                       \
  } else                                                            \
    ::trail::internal::FatalMessage(__FILE__, __LINE__, #cond)

/// Debug-only invariant: full TRAIL_CHECK in debug builds, compiled out in
/// NDEBUG builds. The short-circuit keeps `cond` type-checked but never
/// evaluated, so release hot paths pay nothing.
#ifdef NDEBUG
#define TRAIL_DCHECK(cond) TRAIL_CHECK(true || (cond))
#else
#define TRAIL_DCHECK(cond) TRAIL_CHECK(cond)
#endif

}  // namespace trail

#endif  // TRAIL_UTIL_LOGGING_H_
