#include "util/file_region.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace trail {

namespace {

bool MmapDisabled() {
  const char* env = std::getenv("TRAIL_NO_MMAP");
  return env != nullptr && env[0] == '1';
}

}  // namespace

FileRegion::~FileRegion() { Close(); }

FileRegion::FileRegion(FileRegion&& other) noexcept
    : fd_(other.fd_), map_(other.map_), size_(other.size_) {
  other.fd_ = -1;
  other.map_ = nullptr;
  other.size_ = 0;
}

FileRegion& FileRegion::operator=(FileRegion&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    map_ = std::exchange(other.map_, nullptr);
    size_ = std::exchange(other.size_, uint64_t{0});
  }
  return *this;
}

void FileRegion::Close() {
  if (map_ != nullptr) {
    ::munmap(map_, size_);
    map_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  size_ = 0;
}

Result<FileRegion> FileRegion::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open for read: " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IoError("fstat failed: " + path + ": " +
                           std::strerror(err));
  }
  FileRegion region;
  region.fd_ = fd;
  region.size_ = static_cast<uint64_t>(st.st_size);
  if (region.size_ > 0 && !MmapDisabled()) {
    void* map = ::mmap(nullptr, region.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) region.map_ = map;
    // MAP_FAILED: fall back to pread silently — same bytes, slower path.
  }
  return region;
}

Status FileRegion::Read(uint64_t offset, uint64_t len, void* out) const {
  if (offset > size_ || len > size_ - offset) {
    return Status::OutOfRange("file read past end: offset " +
                              std::to_string(offset) + " + " +
                              std::to_string(len) + " > " +
                              std::to_string(size_));
  }
  if (len == 0) return Status::Ok();
  if (map_ != nullptr) {
    std::memcpy(out, static_cast<const uint8_t*>(map_) + offset, len);
    return Status::Ok();
  }
  uint8_t* dst = static_cast<uint8_t*>(out);
  uint64_t remaining = len;
  uint64_t pos = offset;
  while (remaining > 0) {
    ssize_t n = ::pread(fd_, dst, remaining, static_cast<off_t>(pos));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pread failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) return Status::IoError("pread hit unexpected EOF");
    dst += n;
    pos += static_cast<uint64_t>(n);
    remaining -= static_cast<uint64_t>(n);
  }
  return Status::Ok();
}

}  // namespace trail
