#ifndef TRAIL_UTIL_BINARY_IO_H_
#define TRAIL_UTIL_BINARY_IO_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace trail {

/// Closes the wrapped FILE* on scope exit; shared by every binary format
/// (graph snapshots, model checkpoints).
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// Little-endian-native binary writer over a FILE*. Errors are sticky: the
/// first short write flips ok() and every later call is a no-op, so callers
/// check once at the end (TRAIL targets a single architecture per
/// deployment, matching the paper's single-site database).
class BinaryWriter {
 public:
  explicit BinaryWriter(std::FILE* f) : f_(f) {}

  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Floats(const std::vector<float>& v) {
    U32(static_cast<uint32_t>(v.size()));
    Raw(v.data(), v.size() * sizeof(float));
  }
  void Raw(const void* data, size_t size) {
    if (!ok_) return;
    if (size > 0 && std::fwrite(data, 1, size, f_) != size) ok_ = false;
  }
  bool ok() const { return ok_; }

 private:
  std::FILE* f_;
  bool ok_ = true;
};

/// Matching reader. Errors are sticky; a truncated or corrupt payload turns
/// every later read into a zero value with ok() false, never UB — length
/// prefixes are bounded before allocation so a flipped size byte cannot
/// trigger a giant allocation.
class BinaryReader {
 public:
  /// Largest accepted string/float-array length prefix (16M entries).
  static constexpr uint32_t kMaxLen = 1u << 24;

  explicit BinaryReader(std::FILE* f) : f_(f) {}

  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  int32_t I32() {
    int32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  double F64() {
    double v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  std::string Str() {
    uint32_t len = U32();
    if (!ok_ || len > kMaxLen) {
      ok_ = false;
      return {};
    }
    std::string s(len, '\0');
    Raw(s.data(), len);
    return s;
  }
  std::vector<float> Floats() {
    uint32_t len = U32();
    if (!ok_ || len > kMaxLen) {
      ok_ = false;
      return {};
    }
    std::vector<float> v(len);
    Raw(v.data(), len * sizeof(float));
    return v;
  }
  void Raw(void* data, size_t size) {
    if (!ok_) return;
    if (size > 0 && std::fread(data, 1, size, f_) != size) ok_ = false;
  }
  bool ok() const { return ok_; }
  /// Marks the stream failed (semantic validation errors during load).
  void MarkFailed() { ok_ = false; }

 private:
  std::FILE* f_;
  bool ok_ = true;
};

}  // namespace trail

#endif  // TRAIL_UTIL_BINARY_IO_H_
