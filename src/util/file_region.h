#ifndef TRAIL_UTIL_FILE_REGION_H_
#define TRAIL_UTIL_FILE_REGION_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace trail {

/// A read-only byte view of a whole file, memory-mapped when the platform
/// allows it and backed by pread otherwise. The store's buffer manager
/// (src/graph/store/buffer_manager.h) pages segments through this; nothing
/// above it needs to know which mode is active.
///
/// Mode selection: mmap by default; setting TRAIL_NO_MMAP=1 in the
/// environment (checked at Open) forces the pread path, which tests use to
/// prove both modes decode identically. When mmap itself fails (e.g. a
/// filesystem without mapping support) Open quietly falls back to pread —
/// the fallback is a slower equivalent, not an error.
class FileRegion {
 public:
  FileRegion() = default;
  ~FileRegion();

  FileRegion(FileRegion&& other) noexcept;
  FileRegion& operator=(FileRegion&& other) noexcept;
  FileRegion(const FileRegion&) = delete;
  FileRegion& operator=(const FileRegion&) = delete;

  /// Opens `path` read-only and maps it (or prepares pread access).
  /// Zero-length files open fine with size() == 0 and data() == nullptr.
  static Result<FileRegion> Open(const std::string& path);

  /// Total file size in bytes at Open time.
  uint64_t size() const { return size_; }

  /// True when the file is memory-mapped; data() is then non-null for
  /// non-empty files and spans the whole file.
  bool mapped() const { return map_ != nullptr; }

  /// Base pointer of the mapping; nullptr in pread mode (use Read).
  const uint8_t* data() const { return static_cast<const uint8_t*>(map_); }

  /// Copies [offset, offset + len) into `out`. Works in both modes;
  /// out-of-range reads fail with OutOfRange and copy nothing.
  Status Read(uint64_t offset, uint64_t len, void* out) const;

 private:
  int fd_ = -1;
  void* map_ = nullptr;
  uint64_t size_ = 0;

  void Close();
};

}  // namespace trail

#endif  // TRAIL_UTIL_FILE_REGION_H_
