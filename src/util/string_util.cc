#include "util/string_util.h"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace trail {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool IsDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

size_t CountChar(std::string_view s, char c) {
  size_t n = 0;
  for (char ch : s) {
    if (ch == c) ++n;
  }
  return n;
}

double ShannonEntropy(std::string_view s) {
  if (s.empty()) return 0.0;
  std::array<int, 256> counts{};
  for (unsigned char c : s) counts[c]++;
  double entropy = 0.0;
  const double n = static_cast<double>(s.size());
  for (int count : counts) {
    if (count == 0) continue;
    double p = count / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string WithThousands(int64_t v) {
  // Magnitude via unsigned arithmetic so INT64_MIN does not overflow.
  uint64_t magnitude =
      v < 0 ? ~static_cast<uint64_t>(v) + 1 : static_cast<uint64_t>(v);
  std::string digits = std::to_string(magnitude);
  std::string out;
  int counter = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (counter > 0 && counter % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++counter;
  }
  if (v < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace trail
