#ifndef TRAIL_UTIL_RANDOM_H_
#define TRAIL_UTIL_RANDOM_H_

#include <cstdint>
#include <cmath>
#include <vector>

namespace trail {

/// Deterministic, seedable pseudo-random generator (xoshiro256**), used
/// everywhere in TRAIL instead of std::mt19937 so that synthetic worlds,
/// data splits, and model initializations are reproducible across platforms
/// and standard-library implementations.
class Rng {
 public:
  /// Seeds the four-word state from a single seed via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller (no cached spare; stateless per call pair).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Poisson-distributed count (Knuth's method; fine for small means).
  int Poisson(double mean);

  /// Geometric-ish heavy-tailed count >= 1: 1 + floor of an exponential.
  int HeavyTailCount(double mean_extra);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights need not be normalized; all-zero weights sample uniformly.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Samples an index in [0, n) from a Zipf-like distribution with
  /// exponent `s` (rank 0 most likely). Used for realistic IOC reuse skew.
  size_t Zipf(size_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k clamped to n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; streams do not overlap in
  /// practice because the derivation passes through SplitMix64.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace trail

#endif  // TRAIL_UTIL_RANDOM_H_
