#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace trail {

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::MakeObject() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

const JsonValue* JsonValue::Get(std::string_view key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue v) {
  type_ = Type::kObject;
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

std::string JsonValue::GetString(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = Get(key);
  if (v != nullptr && v->is_string()) return v->AsString();
  return fallback;
}

double JsonValue::GetNumber(std::string_view key, double fallback) const {
  const JsonValue* v = Get(key);
  if (v != nullptr && v->is_number()) return v->AsNumber();
  return fallback;
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* v = Get(key);
  if (v != nullptr && v->is_bool()) return v->AsBool();
  return fallback;
}

namespace {

void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void NumberTo(double d, std::string* out) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    *out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    *out += buf;
  }
}

void Indent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      NumberTo(number_, out);
      break;
    case Type::kString:
      EscapeTo(string_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Indent(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) Indent(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Indent(out, indent, depth + 1);
        EscapeTo(object_[i].first, out);
        *out += indent > 0 ? ": " : ":";
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) Indent(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    TRAIL_RETURN_NOT_OK(ParseValue(&v));
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing characters at offset " +
                                std::to_string(pos_));
    }
    return v;
  }

 private:
  Status ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    // The parser is recursive; bound nesting so hostile feed content cannot
    // exhaust the stack.
    if (depth_ > kMaxDepth) return Err("nesting too deep");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        TRAIL_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::MakeString(std::move(s));
        return Status::Ok();
      }
      case 't':
        return ParseLiteral("true", JsonValue::MakeBool(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue::MakeBool(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue::MakeNull(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view lit, JsonValue v, JsonValue* out) {
    if (text_.substr(pos_, lit.size()) != lit) return Err("bad literal");
    pos_ += lit.size();
    *out = std::move(v);
    return Status::Ok();
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool any = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
      any = true;
    }
    if (!any) return Err("invalid number");
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') return Err("invalid number");
    *out = JsonValue::MakeNumber(d);
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("unterminated escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Err("bad \\u escape");
              }
            }
            // UTF-8 encode (basic multilingual plane only; IOC text is ASCII).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Err("unknown escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Err("unterminated string");
  }

  Status ParseArray(JsonValue* out) {
    *out = JsonValue::MakeArray();
    ++depth_;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      --depth_;
      return Status::Ok();
    }
    for (;;) {
      JsonValue item;
      SkipWs();
      TRAIL_RETURN_NOT_OK(ParseValue(&item));
      out->Append(std::move(item));
      SkipWs();
      if (pos_ >= text_.size()) return Err("unterminated array");
      char c = text_[pos_++];
      if (c == ']') {
        --depth_;
        return Status::Ok();
      }
      if (c != ',') return Err("expected ',' or ']' in array");
    }
  }

  Status ParseObject(JsonValue* out) {
    *out = JsonValue::MakeObject();
    ++depth_;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      --depth_;
      return Status::Ok();
    }
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key");
      }
      std::string key;
      TRAIL_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_++] != ':') {
        return Err("expected ':' in object");
      }
      SkipWs();
      JsonValue value;
      TRAIL_RETURN_NOT_OK(ParseValue(&value));
      out->Set(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Err("unterminated object");
      char c = text_[pos_++];
      if (c == '}') {
        --depth_;
        return Status::Ok();
      }
      if (c != ',') return Err("expected ',' or '}' in object");
    }
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Err(std::string_view what) {
    return Status::ParseError(std::string(what) + " at offset " +
                              std::to_string(pos_));
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace trail
