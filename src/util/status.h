#ifndef TRAIL_UTIL_STATUS_H_
#define TRAIL_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace trail {

/// Error categories used across the TRAIL library. The set is intentionally
/// small: callers almost always branch only on ok-vs-not-ok and use the
/// message for diagnostics, mirroring the Arrow/RocksDB Status idiom.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kParseError,
  kInternal,
  /// The admission queue of a serving component is full; the request was
  /// shed, not enqueued. Retry after backoff (see src/serve/).
  kOverloaded,
  /// The request's deadline passed before a result could be produced.
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value. Functions in TRAIL that can fail
/// return `Status` (or `Result<T>` when they also produce a value) instead of
/// throwing; exceptions are reserved for programming errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error holder, analogous to arrow::Result. Access to the value
/// of a failed Result aborts (programming error), so callers must check
/// `ok()` first or use `ValueOr`.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}              // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {}       // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk = Status::Ok();
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  /// Returns the held value, or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(data_);
    return fallback;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status from an expression, Arrow-style.
#define TRAIL_RETURN_NOT_OK(expr)                   \
  do {                                              \
    ::trail::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                      \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define TRAIL_ASSIGN_OR_RETURN(lhs, rexpr)          \
  auto _res_##__LINE__ = (rexpr);                   \
  if (!_res_##__LINE__.ok()) return _res_##__LINE__.status(); \
  lhs = std::move(_res_##__LINE__).value()

}  // namespace trail

#endif  // TRAIL_UTIL_STATUS_H_
