#include "util/logging.h"

#include <atomic>

namespace trail {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level));
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load());
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_min_level.load()), level_(level) {
  if (enabled_) {
    const char* basename = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') basename = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << basename << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << std::endl;
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalMessage::~FatalMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace trail
