#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

namespace trail {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

std::mutex& SinkMutex() {
  static std::mutex* mu = new std::mutex();  // never freed
  return *mu;
}

std::vector<LogSink*>& Sinks() {
  static std::vector<LogSink*>* sinks = new std::vector<LogSink*>();
  return *sinks;
}

int64_t LogNowMicros() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

const char* Basename(const char* file) {
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  return basename;
}

/// Formats the default text line and emits it with a single fwrite, so
/// concurrent messages from worker threads interleave at line granularity
/// rather than tearing mid-line (stderr is unbuffered).
void EmitStderrLine(const LogRecord& record) {
  std::string line;
  line.reserve(record.message.size() + 32);
  line += '[';
  line += LogLevelName(record.level);
  line += ' ';
  line += record.file;
  line += ':';
  line += std::to_string(record.line);
  line += "] ";
  line += record.message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

void Dispatch(const LogRecord& record) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (Sinks().empty()) {
    EmitStderrLine(record);
    return;
  }
  for (LogSink* sink : Sinks()) sink->Write(record);
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

bool ParseLogLevel(std::string_view name, LogLevel* out) {
  std::string lower(name);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *out = LogLevel::kWarning;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void AddLogSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  Sinks().push_back(sink);
}

bool RemoveLogSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  auto& sinks = Sinks();
  for (auto it = sinks.begin(); it != sinks.end(); ++it) {
    if (*it == sink) {
      sinks.erase(it);
      return true;
    }
  }
  return false;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level),
      file_(Basename(file)),
      line_(line) {}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  const std::string message = stream_.str();
  LogRecord record;
  record.level = level_;
  record.file = file_;
  record.line = line_;
  record.time_us = LogNowMicros();
  record.message = message;
  Dispatch(record);
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition)
    : file_(Basename(file)), line_(line) {
  stream_ << "Check failed: " << condition << " ";
}

FatalMessage::~FatalMessage() {
  const std::string message = stream_.str();
  // Route through sinks too (a test ring buffer may capture it), but always
  // hit stderr directly — this is the last thing the process says.
  LogRecord record;
  record.level = LogLevel::kError;
  record.file = file_;
  record.line = line_;
  record.time_us = LogNowMicros();
  record.message = message;
  {
    std::lock_guard<std::mutex> lock(SinkMutex());
    for (LogSink* sink : Sinks()) sink->Write(record);
  }
  std::string line = "[FATAL ";
  line += file_;
  line += ':';
  line += std::to_string(line_);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::abort();
}

}  // namespace internal
}  // namespace trail
