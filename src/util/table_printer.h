#ifndef TRAIL_UTIL_TABLE_PRINTER_H_
#define TRAIL_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace trail {

/// Renders aligned plain-text tables; every reproduction bench uses it so
/// output rows look like the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with a header separator line.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace trail

#endif  // TRAIL_UTIL_TABLE_PRINTER_H_
