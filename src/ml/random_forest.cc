#include "ml/random_forest.h"

#include <algorithm>

#include "util/logging.h"
#include "util/parallel.h"

namespace trail::ml {

void RandomForest::Fit(const Dataset& train, const RandomForestOptions& options,
                       Rng* rng) {
  TRAIL_CHECK(train.size() > 0) << "empty training set";
  num_classes_ = train.num_classes;
  trees_.assign(options.num_trees, DecisionTree());
  const size_t sample_count = std::max<size_t>(
      1, static_cast<size_t>(train.size() * options.sample_fraction));

  // One RNG stream per tree, forked in tree order from the caller's
  // generator. Keying the stream by tree index (never by thread id) is what
  // makes the fit bit-identical at any worker count.
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(trees_.size());
  for (size_t t = 0; t < trees_.size(); ++t) tree_rngs.push_back(rng->Fork());

  ParallelForEachIndex(trees_.size(), [&](size_t t) {
    Rng& tree_rng = tree_rngs[t];
    std::vector<size_t> bootstrap(sample_count);
    for (size_t& index : bootstrap) {
      index = tree_rng.NextBounded(train.size());
    }
    trees_[t].Fit(train.x, train.y, num_classes_, bootstrap, options.tree,
                  &tree_rng);
  });
}

std::vector<float> RandomForest::PredictProba(
    std::span<const float> row) const {
  std::vector<float> probs(num_classes_, 0.0f);
  for (const auto& tree : trees_) {
    std::vector<float> p = tree.PredictProba(row);
    for (int c = 0; c < num_classes_; ++c) probs[c] += p[c];
  }
  const float inv = 1.0f / static_cast<float>(trees_.size());
  for (float& p : probs) p *= inv;
  return probs;
}

int RandomForest::Predict(std::span<const float> row) const {
  std::vector<float> probs = PredictProba(row);
  return static_cast<int>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

std::vector<int> RandomForest::PredictBatch(const Matrix& x) const {
  std::vector<int> out(x.rows());
  ParallelFor(x.rows(), [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) out[r] = Predict(x.Row(r));
  }, /*min_chunk=*/32);
  return out;
}

Matrix RandomForest::PredictProbaBatch(const Matrix& x) const {
  Matrix out(x.rows(), num_classes_);
  ParallelFor(x.rows(), [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      std::vector<float> probs = PredictProba(x.Row(r));
      auto dst = out.Row(r);
      std::copy(probs.begin(), probs.end(), dst.begin());
    }
  }, /*min_chunk=*/32);
  return out;
}

}  // namespace trail::ml
