#include "ml/random_forest.h"

#include <algorithm>

#include "util/logging.h"

namespace trail::ml {

void RandomForest::Fit(const Dataset& train, const RandomForestOptions& options,
                       Rng* rng) {
  TRAIL_CHECK(train.size() > 0) << "empty training set";
  num_classes_ = train.num_classes;
  trees_.assign(options.num_trees, DecisionTree());
  const size_t sample_count = std::max<size_t>(
      1, static_cast<size_t>(train.size() * options.sample_fraction));
  for (auto& tree : trees_) {
    std::vector<size_t> bootstrap(sample_count);
    for (size_t& index : bootstrap) index = rng->NextBounded(train.size());
    tree.Fit(train.x, train.y, num_classes_, bootstrap, options.tree, rng);
  }
}

std::vector<float> RandomForest::PredictProba(
    std::span<const float> row) const {
  std::vector<float> probs(num_classes_, 0.0f);
  for (const auto& tree : trees_) {
    std::vector<float> p = tree.PredictProba(row);
    for (int c = 0; c < num_classes_; ++c) probs[c] += p[c];
  }
  const float inv = 1.0f / static_cast<float>(trees_.size());
  for (float& p : probs) p *= inv;
  return probs;
}

int RandomForest::Predict(std::span<const float> row) const {
  std::vector<float> probs = PredictProba(row);
  return static_cast<int>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

std::vector<int> RandomForest::PredictBatch(const Matrix& x) const {
  std::vector<int> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) out[r] = Predict(x.Row(r));
  return out;
}

Matrix RandomForest::PredictProbaBatch(const Matrix& x) const {
  Matrix out(x.rows(), num_classes_);
  for (size_t r = 0; r < x.rows(); ++r) {
    std::vector<float> probs = PredictProba(x.Row(r));
    auto dst = out.Row(r);
    std::copy(probs.begin(), probs.end(), dst.begin());
  }
  return out;
}

}  // namespace trail::ml
