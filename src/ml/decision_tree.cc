#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/logging.h"
#include "util/parallel.h"

namespace trail::ml {

namespace {

/// Gini impurity of a class histogram with `total` samples.
double Gini(const std::vector<double>& counts, double total) {
  if (total <= 0) return 0.0;
  double sum_sq = 0.0;
  for (double c : counts) sum_sq += c * c;
  return 1.0 - sum_sq / (total * total);
}

/// Best split found while scanning a single candidate feature. Each
/// candidate's scan is self-contained (own sort buffer, own histograms), so
/// candidates can be evaluated in parallel and reduced in candidate order —
/// the result is bit-identical to the serial scan at any thread count.
struct CandidateSplit {
  double gain = 0.0;
  float threshold = 0.0f;
  bool valid = false;
};

/// Samples at a node below which the per-feature scan runs serially; deep,
/// small nodes would otherwise pay more in task overhead than the scan
/// costs. The gate only changes scheduling, never results.
constexpr size_t kParallelSplitMinSamples = 1024;

}  // namespace

void DecisionTree::Fit(const Matrix& x, const std::vector<int>& y,
                       int num_classes, const std::vector<size_t>& indices,
                       const DecisionTreeOptions& options, Rng* rng) {
  TRAIL_CHECK(!indices.empty()) << "empty training subset";
  nodes_.clear();
  num_classes_ = num_classes;
  max_depth_reached_ = 0;
  std::vector<size_t> work = indices;
  BuildNode(x, y, &work, 0, work.size(), 0, options, rng);
}

int DecisionTree::MakeLeaf(const std::vector<int>& y,
                           const std::vector<size_t>& indices, size_t begin,
                           size_t end) {
  Node leaf;
  leaf.class_probs.assign(num_classes_, 0.0f);
  for (size_t i = begin; i < end; ++i) leaf.class_probs[y[indices[i]]] += 1.0f;
  const float inv = 1.0f / static_cast<float>(end - begin);
  for (float& p : leaf.class_probs) p *= inv;
  nodes_.push_back(std::move(leaf));
  return static_cast<int>(nodes_.size() - 1);
}

int DecisionTree::BuildNode(const Matrix& x, const std::vector<int>& y,
                            std::vector<size_t>* indices, size_t begin,
                            size_t end, int depth,
                            const DecisionTreeOptions& options, Rng* rng) {
  max_depth_reached_ = std::max(max_depth_reached_, depth);
  const size_t n = end - begin;

  // Purity check.
  bool pure = true;
  int first_label = y[(*indices)[begin]];
  for (size_t i = begin + 1; i < end; ++i) {
    if (y[(*indices)[i]] != first_label) {
      pure = false;
      break;
    }
  }
  if (pure || depth >= options.max_depth ||
      n < static_cast<size_t>(options.min_samples_split)) {
    return MakeLeaf(y, *indices, begin, end);
  }

  // Candidate feature subset.
  size_t num_features = x.cols();
  size_t features_to_try;
  if (options.max_features < 0) {
    features_to_try = num_features;
  } else if (options.max_features == 0) {
    features_to_try = std::max<size_t>(
        1, static_cast<size_t>(std::sqrt(static_cast<double>(num_features))));
  } else {
    features_to_try =
        std::min<size_t>(options.max_features, num_features);
  }
  std::vector<size_t> feature_candidates =
      rng->SampleWithoutReplacement(num_features, features_to_try);

  // Parent histogram.
  std::vector<double> parent_counts(num_classes_, 0.0);
  for (size_t i = begin; i < end; ++i) parent_counts[y[(*indices)[i]]] += 1.0;
  const double parent_gini = Gini(parent_counts, static_cast<double>(n));

  // Scan each candidate feature independently, then reduce in candidate
  // order with a strict > (first candidate wins ties) so the winner matches
  // the serial scan exactly regardless of how the scans were scheduled.
  std::vector<CandidateSplit> candidate_splits(feature_candidates.size());
  auto scan_candidate = [&](size_t j) {
    const size_t feature = feature_candidates[j];
    std::vector<std::pair<float, int>> sorted(n);
    for (size_t i = 0; i < n; ++i) {
      size_t sample = (*indices)[begin + i];
      sorted[i] = {x.At(sample, feature), y[sample]};
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) return;

    CandidateSplit best;
    std::vector<double> left_counts(num_classes_, 0.0);
    std::vector<double> right_counts = parent_counts;
    for (size_t i = 0; i + 1 < n; ++i) {
      left_counts[sorted[i].second] += 1.0;
      right_counts[sorted[i].second] -= 1.0;
      if (sorted[i].first == sorted[i + 1].first) continue;
      const size_t left_n = i + 1;
      const size_t right_n = n - left_n;
      if (left_n < static_cast<size_t>(options.min_samples_leaf) ||
          right_n < static_cast<size_t>(options.min_samples_leaf)) {
        continue;
      }
      double weighted =
          (left_n * Gini(left_counts, left_n) +
           right_n * Gini(right_counts, right_n)) /
          static_cast<double>(n);
      double gain = parent_gini - weighted;
      if (!best.valid || gain > best.gain) {
        best.gain = gain;
        best.threshold = 0.5f * (sorted[i].first + sorted[i + 1].first);
        best.valid = true;
      }
    }
    candidate_splits[j] = best;
  };
  if (n >= kParallelSplitMinSamples && feature_candidates.size() > 1) {
    ParallelForEachIndex(feature_candidates.size(), scan_candidate);
  } else {
    for (size_t j = 0; j < feature_candidates.size(); ++j) scan_candidate(j);
  }

  int best_feature = -1;
  float best_threshold = 0.0f;
  double best_gain = 1e-12;
  for (size_t j = 0; j < feature_candidates.size(); ++j) {
    const CandidateSplit& split = candidate_splits[j];
    if (split.valid && split.gain > best_gain) {
      best_gain = split.gain;
      best_feature = static_cast<int>(feature_candidates[j]);
      best_threshold = split.threshold;
    }
  }

  if (best_feature < 0) return MakeLeaf(y, *indices, begin, end);

  // Partition indices in place.
  auto middle = std::partition(
      indices->begin() + begin, indices->begin() + end, [&](size_t sample) {
        return x.At(sample, best_feature) <= best_threshold;
      });
  size_t split = static_cast<size_t>(middle - indices->begin());
  if (split == begin || split == end) return MakeLeaf(y, *indices, begin, end);

  int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  int left =
      BuildNode(x, y, indices, begin, split, depth + 1, options, rng);
  int right = BuildNode(x, y, indices, split, end, depth + 1, options, rng);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

std::vector<float> DecisionTree::PredictProba(
    std::span<const float> row) const {
  TRAIL_CHECK(!nodes_.empty()) << "predict before fit";
  int index = 0;
  for (;;) {
    const Node& node = nodes_[index];
    if (node.feature < 0) return node.class_probs;
    index = row[node.feature] <= node.threshold ? node.left : node.right;
  }
}

int DecisionTree::Predict(std::span<const float> row) const {
  std::vector<float> probs = PredictProba(row);
  return static_cast<int>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

}  // namespace trail::ml
