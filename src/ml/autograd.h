#ifndef TRAIL_ML_AUTOGRAD_H_
#define TRAIL_ML_AUTOGRAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ml/matrix.h"
#include "util/random.h"

namespace trail::ml::ag {

/// A node in the dynamic computation graph: a value, its gradient, and the
/// closure that pushes the gradient to its parents. TRAIL's neural models
/// (the paper's MLP, the per-IOC-type autoencoders, GraphSAGE, and the
/// GNNExplainer edge mask) are all trained through this engine — it replaces
/// the paper's PyTorch / PyTorch-Geometric dependency.
class Var {
 public:
  Var(Matrix value, bool requires_grad)
      : value(std::move(value)), requires_grad(requires_grad) {}

  Matrix value;
  Matrix grad;  // allocated lazily, same shape as value
  bool requires_grad;

  std::vector<std::shared_ptr<Var>> parents;
  std::function<void()> backward_fn;  // reads this->grad, accumulates parents

  /// Zero-initializes the gradient buffer if absent.
  void EnsureGrad();
  void ZeroGrad();
};

using VarPtr = std::shared_ptr<Var>;

/// Leaf with gradient tracking (trainable parameter).
VarPtr Param(Matrix value);
/// Leaf without gradient tracking (input data).
VarPtr Constant(Matrix value);

// ---- Operators. Each returns a new node wired into the graph. ----

VarPtr MatMul(const VarPtr& a, const VarPtr& b);
/// MatMul for row-sparse `a` (one-hot encoder inputs): the forward skips
/// zero elements of `a` and the backward pass for `b` skips the same
/// entries. Agrees with MatMul to float rounding (the sparse path
/// accumulates straight into the output row instead of using the dense
/// reduction blocking) and is itself fully deterministic; only profitable
/// when most of `a` is zeros.
VarPtr MatMulSparseA(const VarPtr& a, const VarPtr& b);
/// Element-wise sum of same-shape matrices.
VarPtr Add(const VarPtr& a, const VarPtr& b);
/// Element-wise (Hadamard) product of same-shape matrices.
VarPtr Mul(const VarPtr& a, const VarPtr& b);
/// x + bias where bias is 1 x C, broadcast over rows.
VarPtr AddRow(const VarPtr& x, const VarPtr& bias);
/// Fused relu(x + bias): one pass over memory forward and backward,
/// bit-identical to Relu(AddRow(x, bias)). The hidden-layer hot path of
/// the MLP, autoencoders, and GraphSAGE.
VarPtr AddRowRelu(const VarPtr& x, const VarPtr& bias);
VarPtr Relu(const VarPtr& x);
VarPtr Sigmoid(const VarPtr& x);
VarPtr Scale(const VarPtr& x, float s);
/// Inverted dropout; identity when `training` is false or rate == 0.
VarPtr Dropout(const VarPtr& x, double rate, Rng* rng, bool training);
/// Row-wise L2 normalization (GraphSAGE Eq. 4). Zero rows pass through.
VarPtr RowL2Normalize(const VarPtr& x);
/// Mean over all entries -> 1x1 scalar.
VarPtr Mean(const VarPtr& x);

/// Row gather: out[i] = table[indices[i]]. Backward scatter-adds into the
/// table — the embedding-lookup primitive (node-type and label embeddings in
/// the GNN).
VarPtr Gather(const VarPtr& table, std::vector<int> indices);

/// Batch normalization over the row (batch) dimension with running-stat
/// tracking. `running_mean` / `running_var` (1 x C) are updated in training
/// mode and consumed in inference mode.
VarPtr BatchNorm(const VarPtr& x, const VarPtr& gamma, const VarPtr& beta,
                 Matrix* running_mean, Matrix* running_var, double momentum,
                 double eps, bool training);

/// Fixed gather-aggregate structure for neighbor mean pooling: output row v
/// averages input rows `sources[offsets[v]..offsets[v+1])`. With
/// `edge_weights` (num entries x 1) the average is weighted — this is the
/// hook the GNNExplainer's learned soft edge mask differentiates through.
struct AggregateSpec {
  std::vector<uint64_t> offsets;  // size num_outputs + 1
  std::vector<uint32_t> sources;
};
VarPtr MeanAggregate(const AggregateSpec& spec, const VarPtr& x,
                     const VarPtr& edge_weights = nullptr);

/// Mean softmax cross-entropy over rows where mask (if given) is nonzero.
/// Rows with label < 0 are always skipped. If `out_probs` is non-null it
/// receives the full softmax matrix.
VarPtr SoftmaxCrossEntropy(const VarPtr& logits, const std::vector<int>& labels,
                           const std::vector<uint8_t>* row_mask = nullptr,
                           Matrix* out_probs = nullptr);

/// Mean squared error against a constant target (autoencoder loss, Eq. 5).
VarPtr MseLoss(const VarPtr& pred, const Matrix& target);

/// Reverse-mode sweep from `root` (seeded with unit gradient).
void Backward(const VarPtr& root);

/// Adam optimizer over a parameter list.
class Adam {
 public:
  explicit Adam(std::vector<VarPtr> params, double lr = 1e-3,
                double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);

  void ZeroGrad();
  void Step();

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }
  const std::vector<VarPtr>& params() const { return params_; }

 private:
  std::vector<VarPtr> params_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  int64_t t_ = 0;
};

}  // namespace trail::ml::ag

#endif  // TRAIL_ML_AUTOGRAD_H_
