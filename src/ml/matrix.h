#ifndef TRAIL_ML_MATRIX_H_
#define TRAIL_ML_MATRIX_H_

#include <cstddef>
#include <new>
#include <span>
#include <vector>

#include "util/binary_io.h"
#include "util/random.h"

namespace trail::ml {

/// Minimal over-aligned allocator so Matrix rows start on cache-line (and
/// AVX) boundaries: vector loads in the kernel layer never straddle lines
/// and the packed-B panels can use aligned loads.
template <typename T, size_t Alignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// 64-byte-aligned float storage: Matrix data and kernel scratch buffers.
using AlignedFloats = std::vector<float, AlignedAllocator<float, 64>>;

/// Dense row-major float matrix. The whole ML substrate (trees, MLP,
/// autoencoders, GraphSAGE) runs on this one type. Storage is 64-byte
/// aligned and the MatMul family below dispatches into the blocked/SIMD
/// kernel layer (ml/kernels.h), which pins the accumulation policy: all
/// GEMM reductions accumulate in float32 with a shape-only blocking order,
/// so results are bit-identical across thread counts and dispatch targets.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }

  /// Glorot-uniform initialization, the default for all trainable weights.
  static Matrix GlorotUniform(size_t rows, size_t cols, Rng* rng);

  /// Builds from nested initializer-like data (tests).
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  float& operator()(size_t r, size_t c) { return At(r, c); }
  float operator()(size_t r, size_t c) const { return At(r, c); }

  std::span<float> Row(size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const float> Row(size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void Fill(float v) { data_.assign(data_.size(), v); }

  /// Element-wise in-place helpers used by the optimizers.
  void AddInPlace(const Matrix& other, float scale = 1.0f);
  void ScaleInPlace(float scale);

  /// Returns the subset of rows given by `indices`.
  Matrix SelectRows(const std::vector<size_t>& indices) const;

  /// Appends the rows of `other` below this matrix (column counts must
  /// match; appending to an empty matrix adopts the other's shape). Grows
  /// the GNN's node-feature rows when a month of reports is delta-appended.
  void AppendRows(const Matrix& other);

  /// Sum / mean over all entries.
  float Sum() const;

  /// Frobenius norm.
  float Norm() const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  size_t rows_;
  size_t cols_;
  AlignedFloats data_;
};

/// C = A * B.
Matrix MatMul(const Matrix& a, const Matrix& b);
/// C = A * B^T (used by backward passes to avoid materializing transposes).
Matrix MatMulTransB(const Matrix& a, const Matrix& b);
/// C = A^T * B.
Matrix MatMulTransA(const Matrix& a, const Matrix& b);

Matrix Transpose(const Matrix& a);

/// out[r] = a[r] + row (broadcast add of a 1 x C bias row).
Matrix AddRowBroadcast(const Matrix& a, const Matrix& row);

/// Column-wise mean / variance (1 x C each), for scalers and batch norm.
Matrix ColumnMean(const Matrix& a);
Matrix ColumnVariance(const Matrix& a, const Matrix& mean);

/// Row-wise softmax.
Matrix RowSoftmax(const Matrix& logits);

/// Binary serialization (shape header + raw row-major floats), used by the
/// model checkpoint formats.
void WriteMatrix(BinaryWriter* w, const Matrix& m);
/// Reads a matrix written by WriteMatrix. Dimension prefixes are bounded
/// (BinaryReader::kMaxLen per axis and for the total size) so corrupt blobs
/// fail the reader instead of allocating wildly.
Matrix ReadMatrix(BinaryReader* r);

}  // namespace trail::ml

#endif  // TRAIL_ML_MATRIX_H_
