#include "ml/tpe.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace trail::ml {

ParamSpec ParamSpec::Uniform(std::string name, double lo, double hi) {
  ParamSpec spec;
  spec.name = std::move(name);
  spec.kind = Kind::kUniform;
  spec.lo = lo;
  spec.hi = hi;
  return spec;
}

ParamSpec ParamSpec::LogUniform(std::string name, double lo, double hi) {
  TRAIL_CHECK(lo > 0 && hi > lo) << "log-uniform bounds must be positive";
  ParamSpec spec;
  spec.name = std::move(name);
  spec.kind = Kind::kLogUniform;
  spec.lo = lo;
  spec.hi = hi;
  return spec;
}

ParamSpec ParamSpec::Int(std::string name, int lo, int hi) {
  ParamSpec spec;
  spec.name = std::move(name);
  spec.kind = Kind::kInt;
  spec.lo = lo;
  spec.hi = hi;
  return spec;
}

ParamSpec ParamSpec::Categorical(std::string name, int num_choices) {
  TRAIL_CHECK(num_choices > 0);
  ParamSpec spec;
  spec.name = std::move(name);
  spec.kind = Kind::kCategorical;
  spec.num_choices = num_choices;
  return spec;
}

TpeOptimizer::TpeOptimizer(std::vector<ParamSpec> space, TpeOptions options,
                           uint64_t seed)
    : space_(std::move(space)), options_(options), rng_(seed) {}

std::vector<double> TpeOptimizer::SampleRandom() {
  std::vector<double> values(space_.size());
  for (size_t d = 0; d < space_.size(); ++d) {
    const ParamSpec& spec = space_[d];
    switch (spec.kind) {
      case ParamSpec::Kind::kUniform:
        values[d] = rng_.UniformDouble(spec.lo, spec.hi);
        break;
      case ParamSpec::Kind::kLogUniform:
        values[d] = std::exp(
            rng_.UniformDouble(std::log(spec.lo), std::log(spec.hi)));
        break;
      case ParamSpec::Kind::kInt:
        values[d] = static_cast<double>(
            rng_.UniformInt(static_cast<int64_t>(spec.lo),
                            static_cast<int64_t>(spec.hi)));
        break;
      case ParamSpec::Kind::kCategorical:
        values[d] = static_cast<double>(rng_.NextBounded(spec.num_choices));
        break;
    }
  }
  return values;
}

double TpeOptimizer::LogDensity(const std::vector<const Trial*>& trials,
                                size_t dim, double value) const {
  const ParamSpec& spec = space_[dim];
  if (spec.kind == ParamSpec::Kind::kCategorical) {
    // Laplace-smoothed categorical frequency.
    double count = 1.0;
    for (const Trial* trial : trials) {
      if (static_cast<int>(trial->values[dim]) == static_cast<int>(value)) {
        count += 1.0;
      }
    }
    return std::log(count /
                    (trials.size() + static_cast<double>(spec.num_choices)));
  }

  // Parzen window of Gaussians centered on observed values; bandwidth
  // proportional to the range over the observation count (Bergstra's
  // heuristic, simplified). Log-uniform dims are modeled in log space.
  const bool log_space = spec.kind == ParamSpec::Kind::kLogUniform;
  const double lo = log_space ? std::log(spec.lo) : spec.lo;
  const double hi = log_space ? std::log(spec.hi) : spec.hi;
  const double x = log_space ? std::log(value) : value;
  const double range = hi - lo;
  const double bandwidth =
      std::max(range / (1.0 + static_cast<double>(trials.size())), range * 0.02);
  double density = 1e-12;
  for (const Trial* trial : trials) {
    const double mu =
        log_space ? std::log(trial->values[dim]) : trial->values[dim];
    const double z = (x - mu) / bandwidth;
    density += std::exp(-0.5 * z * z) / bandwidth;
  }
  // Uniform floor keeps unexplored regions reachable.
  density += 1.0 / std::max(range, 1e-12);
  return std::log(density / (trials.size() + 1.0));
}

std::vector<double> TpeOptimizer::Suggest() {
  if (trials_.size() < static_cast<size_t>(options_.num_startup_trials)) {
    return SampleRandom();
  }
  // Partition into good/bad by loss quantile.
  std::vector<size_t> order(trials_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return trials_[a].loss < trials_[b].loss;
  });
  size_t num_good = std::max<size_t>(
      1, static_cast<size_t>(options_.gamma * trials_.size()));
  std::vector<const Trial*> good;
  std::vector<const Trial*> bad;
  for (size_t i = 0; i < order.size(); ++i) {
    (i < num_good ? good : bad).push_back(&trials_[order[i]]);
  }
  if (bad.empty()) return SampleRandom();

  // Candidates: perturbations of good trials plus fresh random points,
  // scored by sum over dims of log l(x) - log g(x).
  std::vector<double> best_candidate;
  double best_score = -1e300;
  for (int c = 0; c < options_.num_candidates; ++c) {
    std::vector<double> candidate;
    if (c % 3 == 0) {
      candidate = SampleRandom();
    } else {
      const Trial* base = good[rng_.NextBounded(good.size())];
      candidate = base->values;
      // Jitter one random dimension.
      size_t dim = rng_.NextBounded(space_.size());
      const ParamSpec& spec = space_[dim];
      switch (spec.kind) {
        case ParamSpec::Kind::kUniform: {
          double jitter = (spec.hi - spec.lo) * 0.1 * rng_.Normal();
          candidate[dim] =
              std::clamp(candidate[dim] + jitter, spec.lo, spec.hi);
          break;
        }
        case ParamSpec::Kind::kLogUniform: {
          double log_v = std::log(candidate[dim]) +
                         0.1 * (std::log(spec.hi) - std::log(spec.lo)) *
                             rng_.Normal();
          candidate[dim] = std::clamp(std::exp(log_v), spec.lo, spec.hi);
          break;
        }
        case ParamSpec::Kind::kInt: {
          double jitter = (spec.hi - spec.lo) * 0.15 * rng_.Normal();
          candidate[dim] = std::clamp(std::round(candidate[dim] + jitter),
                                      spec.lo, spec.hi);
          break;
        }
        case ParamSpec::Kind::kCategorical:
          candidate[dim] =
              static_cast<double>(rng_.NextBounded(spec.num_choices));
          break;
      }
    }
    double score = 0.0;
    for (size_t d = 0; d < space_.size(); ++d) {
      score += LogDensity(good, d, candidate[d]) -
               LogDensity(bad, d, candidate[d]);
    }
    if (score > best_score) {
      best_score = score;
      best_candidate = std::move(candidate);
    }
  }
  return best_candidate;
}

void TpeOptimizer::Report(std::vector<double> values, double loss) {
  TRAIL_CHECK(values.size() == space_.size()) << "trial arity mismatch";
  trials_.push_back(Trial{std::move(values), loss});
  if (trials_.size() == 1 || loss < trials_[best_index_].loss) {
    best_index_ = trials_.size() - 1;
  }
}

const Trial& TpeOptimizer::best() const {
  TRAIL_CHECK(!trials_.empty()) << "no trials reported";
  return trials_[best_index_];
}

Trial TpeMinimize(const std::vector<ParamSpec>& space,
                  const std::function<double(const std::vector<double>&)>& fn,
                  int num_trials, uint64_t seed, TpeOptions options) {
  TpeOptimizer opt(space, options, seed);
  for (int t = 0; t < num_trials; ++t) {
    std::vector<double> values = opt.Suggest();
    double loss = fn(values);
    opt.Report(std::move(values), loss);
  }
  return opt.best();
}

}  // namespace trail::ml
