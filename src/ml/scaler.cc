#include "ml/scaler.h"

#include <cmath>

#include "util/logging.h"

namespace trail::ml {

void StandardScaler::Fit(const Matrix& x) {
  mean_ = ColumnMean(x);
  Matrix var = ColumnVariance(x, mean_);
  stddev_ = Matrix(1, x.cols());
  for (size_t c = 0; c < x.cols(); ++c) {
    float sd = std::sqrt(var.At(0, c));
    stddev_.At(0, c) = sd > 1e-8f ? sd : 1.0f;
  }
  fitted_ = true;
}

Matrix StandardScaler::Transform(const Matrix& x) const {
  TRAIL_CHECK(fitted_) << "StandardScaler used before Fit";
  TRAIL_CHECK(x.cols() == mean_.cols()) << "scaler column mismatch";
  Matrix out = x;
  for (size_t r = 0; r < x.rows(); ++r) {
    auto row = out.Row(r);
    for (size_t c = 0; c < x.cols(); ++c) {
      row[c] = (row[c] - mean_.At(0, c)) / stddev_.At(0, c);
    }
  }
  return out;
}

}  // namespace trail::ml
