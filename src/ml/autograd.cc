#include "ml/autograd.h"

#include <cmath>
#include <unordered_set>

#include "ml/kernels.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace trail::ml::ag {

void Var::EnsureGrad() {
  if (grad.rows() != value.rows() || grad.cols() != value.cols()) {
    grad = Matrix(value.rows(), value.cols());
  }
}

void Var::ZeroGrad() {
  if (grad.SameShape(value)) {
    grad.Fill(0.0f);
  } else {
    grad = Matrix(value.rows(), value.cols());
  }
}

VarPtr Param(Matrix value) {
  return std::make_shared<Var>(std::move(value), /*requires_grad=*/true);
}

VarPtr Constant(Matrix value) {
  return std::make_shared<Var>(std::move(value), /*requires_grad=*/false);
}

namespace {

VarPtr MakeNode(Matrix value, std::vector<VarPtr> parents) {
  bool requires_grad = false;
  for (const VarPtr& p : parents) requires_grad |= p->requires_grad;
  auto node = std::make_shared<Var>(std::move(value), requires_grad);
  node->parents = std::move(parents);
  return node;
}

}  // namespace

VarPtr MatMul(const VarPtr& a, const VarPtr& b) {
  VarPtr node = MakeNode(ml::MatMul(a->value, b->value), {a, b});
  Var* self = node.get();
  VarPtr pa = a;
  VarPtr pb = b;
  node->backward_fn = [self, pa, pb]() {
    // Accumulating GEMM variants: no temporary, same bits as
    // grad.AddInPlace(MatMulTransX(...)).
    if (pa->requires_grad) {
      pa->EnsureGrad();
      kernels::GemmTransB(self->grad, pb->value, &pa->grad,
                          /*accumulate=*/true);
    }
    if (pb->requires_grad) {
      pb->EnsureGrad();
      kernels::GemmTransA(pa->value, self->grad, &pb->grad,
                          /*accumulate=*/true, /*skip_zeros_in_a=*/false);
    }
  };
  return node;
}

VarPtr MatMulSparseA(const VarPtr& a, const VarPtr& b) {
  TRAIL_CHECK(a->value.cols() == b->value.rows())
      << "MatMulSparseA shape mismatch";
  Matrix out(a->value.rows(), b->value.cols());
  kernels::GemmSparseA(a->value, b->value, &out, /*accumulate=*/true);
  VarPtr node = MakeNode(std::move(out), {a, b});
  Var* self = node.get();
  VarPtr pa = a;
  VarPtr pb = b;
  node->backward_fn = [self, pa, pb]() {
    if (pa->requires_grad) {
      pa->EnsureGrad();
      kernels::GemmTransB(self->grad, pb->value, &pa->grad,
                          /*accumulate=*/true);
    }
    if (pb->requires_grad) {
      pb->EnsureGrad();
      // The sparsity of a carries over: terms with a[r][i] == 0 contribute
      // nothing to b's gradient, so skip them.
      kernels::GemmTransA(pa->value, self->grad, &pb->grad,
                          /*accumulate=*/true, /*skip_zeros_in_a=*/true);
    }
  };
  return node;
}

VarPtr Add(const VarPtr& a, const VarPtr& b) {
  TRAIL_CHECK(a->value.SameShape(b->value)) << "Add shape mismatch";
  Matrix out = a->value;
  out.AddInPlace(b->value);
  VarPtr node = MakeNode(std::move(out), {a, b});
  Var* self = node.get();
  VarPtr pa = a;
  VarPtr pb = b;
  node->backward_fn = [self, pa, pb]() {
    if (pa->requires_grad) {
      pa->EnsureGrad();
      pa->grad.AddInPlace(self->grad);
    }
    if (pb->requires_grad) {
      pb->EnsureGrad();
      pb->grad.AddInPlace(self->grad);
    }
  };
  return node;
}

VarPtr Mul(const VarPtr& a, const VarPtr& b) {
  TRAIL_CHECK(a->value.SameShape(b->value)) << "Mul shape mismatch";
  Matrix out = a->value;
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] *= b->value.data()[i];
  }
  VarPtr node = MakeNode(std::move(out), {a, b});
  Var* self = node.get();
  VarPtr pa = a;
  VarPtr pb = b;
  node->backward_fn = [self, pa, pb]() {
    const size_t n = self->value.size();
    if (pa->requires_grad) {
      pa->EnsureGrad();
      for (size_t i = 0; i < n; ++i) {
        pa->grad.data()[i] += self->grad.data()[i] * pb->value.data()[i];
      }
    }
    if (pb->requires_grad) {
      pb->EnsureGrad();
      for (size_t i = 0; i < n; ++i) {
        pb->grad.data()[i] += self->grad.data()[i] * pa->value.data()[i];
      }
    }
  };
  return node;
}

VarPtr AddRow(const VarPtr& x, const VarPtr& bias) {
  VarPtr node = MakeNode(AddRowBroadcast(x->value, bias->value), {x, bias});
  Var* self = node.get();
  VarPtr px = x;
  VarPtr pbias = bias;
  node->backward_fn = [self, px, pbias]() {
    if (px->requires_grad) {
      px->EnsureGrad();
      px->grad.AddInPlace(self->grad);
    }
    if (pbias->requires_grad) {
      pbias->EnsureGrad();
      for (size_t r = 0; r < self->grad.rows(); ++r) {
        auto row = self->grad.Row(r);
        for (size_t c = 0; c < row.size(); ++c) pbias->grad.At(0, c) += row[c];
      }
    }
  };
  return node;
}

VarPtr AddRowRelu(const VarPtr& x, const VarPtr& bias) {
  TRAIL_CHECK(bias->value.rows() == 1 && bias->value.cols() == x->value.cols())
      << "AddRowRelu bias shape mismatch";
  Matrix out(x->value.rows(), x->value.cols());
  kernels::BiasAddRelu(x->value, bias->value, &out);
  VarPtr node = MakeNode(std::move(out), {x, bias});
  Var* self = node.get();
  VarPtr px = x;
  VarPtr pbias = bias;
  node->backward_fn = [self, px, pbias]() {
    // out > 0 iff the pre-activation x + bias > 0, so the forward output
    // doubles as the ReLU mask and the pre-activation never materializes.
    if (px->requires_grad) px->EnsureGrad();
    if (pbias->requires_grad) pbias->EnsureGrad();
    kernels::BiasAddReluBackward(
        self->value, self->grad, px->requires_grad ? &px->grad : nullptr,
        pbias->requires_grad ? &pbias->grad : nullptr);
  };
  return node;
}

VarPtr Relu(const VarPtr& x) {
  Matrix out = x->value;
  for (size_t r = 0; r < out.rows(); ++r) {
    for (float& v : out.Row(r)) v = v > 0.0f ? v : 0.0f;
  }
  VarPtr node = MakeNode(std::move(out), {x});
  Var* self = node.get();
  VarPtr px = x;
  node->backward_fn = [self, px]() {
    if (!px->requires_grad) return;
    px->EnsureGrad();
    const float* value = px->value.data();
    const float* grad_out = self->grad.data();
    float* grad_in = px->grad.data();
    for (size_t i = 0; i < px->value.size(); ++i) {
      if (value[i] > 0.0f) grad_in[i] += grad_out[i];
    }
  };
  return node;
}

VarPtr Sigmoid(const VarPtr& x) {
  Matrix out = x->value;
  for (size_t r = 0; r < out.rows(); ++r) {
    for (float& v : out.Row(r)) v = 1.0f / (1.0f + std::exp(-v));
  }
  VarPtr node = MakeNode(std::move(out), {x});
  Var* self = node.get();
  VarPtr px = x;
  node->backward_fn = [self, px]() {
    if (!px->requires_grad) return;
    px->EnsureGrad();
    const float* s = self->value.data();
    const float* grad_out = self->grad.data();
    float* grad_in = px->grad.data();
    for (size_t i = 0; i < px->value.size(); ++i) {
      grad_in[i] += grad_out[i] * s[i] * (1.0f - s[i]);
    }
  };
  return node;
}

VarPtr Scale(const VarPtr& x, float s) {
  Matrix out = x->value;
  out.ScaleInPlace(s);
  VarPtr node = MakeNode(std::move(out), {x});
  Var* self = node.get();
  VarPtr px = x;
  node->backward_fn = [self, px, s]() {
    if (!px->requires_grad) return;
    px->EnsureGrad();
    px->grad.AddInPlace(self->grad, s);
  };
  return node;
}

VarPtr Dropout(const VarPtr& x, double rate, Rng* rng, bool training) {
  if (!training || rate <= 0.0) return x;
  TRAIL_CHECK(rate < 1.0) << "dropout rate must be < 1";
  auto mask = std::make_shared<std::vector<float>>(x->value.size());
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate));
  Matrix out = x->value;
  float* data = out.data();
  for (size_t i = 0; i < out.size(); ++i) {
    float m = rng->Bernoulli(rate) ? 0.0f : keep_scale;
    (*mask)[i] = m;
    data[i] *= m;
  }
  VarPtr node = MakeNode(std::move(out), {x});
  Var* self = node.get();
  VarPtr px = x;
  node->backward_fn = [self, px, mask]() {
    if (!px->requires_grad) return;
    px->EnsureGrad();
    const float* grad_out = self->grad.data();
    float* grad_in = px->grad.data();
    for (size_t i = 0; i < px->value.size(); ++i) {
      grad_in[i] += grad_out[i] * (*mask)[i];
    }
  };
  return node;
}

VarPtr RowL2Normalize(const VarPtr& x) {
  const size_t rows = x->value.rows();
  const size_t cols = x->value.cols();
  auto norms = std::make_shared<std::vector<float>>(rows);
  Matrix out = x->value;
  for (size_t r = 0; r < rows; ++r) {
    auto row = out.Row(r);
    double total = 0.0;
    for (float v : row) total += static_cast<double>(v) * v;
    float norm = static_cast<float>(std::sqrt(total));
    (*norms)[r] = norm;
    if (norm > 1e-12f) {
      for (float& v : row) v /= norm;
    }
  }
  VarPtr node = MakeNode(std::move(out), {x});
  Var* self = node.get();
  VarPtr px = x;
  node->backward_fn = [self, px, norms, cols]() {
    if (!px->requires_grad) return;
    px->EnsureGrad();
    // d/dx (x/||x||) = (I - y y^T)/||x|| applied to upstream grad, where
    // y = x/||x||.
    for (size_t r = 0; r < px->value.rows(); ++r) {
      float norm = (*norms)[r];
      auto grad_out = self->grad.Row(r);
      auto y = self->value.Row(r);
      auto grad_in = px->grad.Row(r);
      if (norm <= 1e-12f) {
        for (size_t c = 0; c < cols; ++c) grad_in[c] += grad_out[c];
        continue;
      }
      double dot = 0.0;
      for (size_t c = 0; c < cols; ++c) {
        dot += static_cast<double>(grad_out[c]) * y[c];
      }
      for (size_t c = 0; c < cols; ++c) {
        grad_in[c] += (grad_out[c] - static_cast<float>(dot) * y[c]) / norm;
      }
    }
  };
  return node;
}

VarPtr Mean(const VarPtr& x) {
  Matrix out(1, 1);
  out.At(0, 0) = x->value.Sum() / static_cast<float>(x->value.size());
  VarPtr node = MakeNode(std::move(out), {x});
  Var* self = node.get();
  VarPtr px = x;
  node->backward_fn = [self, px]() {
    if (!px->requires_grad) return;
    px->EnsureGrad();
    const float g = self->grad.At(0, 0) / static_cast<float>(px->value.size());
    float* grad_in = px->grad.data();
    for (size_t i = 0; i < px->value.size(); ++i) grad_in[i] += g;
  };
  return node;
}

VarPtr Gather(const VarPtr& table, std::vector<int> indices) {
  const size_t cols = table->value.cols();
  Matrix out(indices.size(), cols);
  for (size_t i = 0; i < indices.size(); ++i) {
    TRAIL_CHECK(indices[i] >= 0 &&
                indices[i] < static_cast<int>(table->value.rows()))
        << "gather index out of range";
    auto src = table->value.Row(indices[i]);
    auto dst = out.Row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  VarPtr node = MakeNode(std::move(out), {table});
  Var* self = node.get();
  VarPtr ptable = table;
  auto idx = std::make_shared<std::vector<int>>(std::move(indices));
  node->backward_fn = [self, ptable, idx]() {
    if (!ptable->requires_grad) return;
    ptable->EnsureGrad();
    const size_t cols = ptable->value.cols();
    for (size_t i = 0; i < idx->size(); ++i) {
      auto grad_out = self->grad.Row(i);
      auto grad_in = ptable->grad.Row((*idx)[i]);
      for (size_t c = 0; c < cols; ++c) grad_in[c] += grad_out[c];
    }
  };
  return node;
}

VarPtr BatchNorm(const VarPtr& x, const VarPtr& gamma, const VarPtr& beta,
                 Matrix* running_mean, Matrix* running_var, double momentum,
                 double eps, bool training) {
  const size_t rows = x->value.rows();
  const size_t cols = x->value.cols();
  TRAIL_CHECK(gamma->value.cols() == cols && beta->value.cols() == cols);

  Matrix mean(1, cols);
  Matrix var(1, cols);
  if (training && rows > 1) {
    mean = ColumnMean(x->value);
    var = ColumnVariance(x->value, mean);
    if (running_mean != nullptr) {
      if (running_mean->cols() != cols) {
        *running_mean = Matrix(1, cols);
        *running_var = Matrix(1, cols, 1.0f);
      }
      for (size_t c = 0; c < cols; ++c) {
        running_mean->At(0, c) =
            static_cast<float>((1 - momentum) * running_mean->At(0, c) +
                               momentum * mean.At(0, c));
        running_var->At(0, c) =
            static_cast<float>((1 - momentum) * running_var->At(0, c) +
                               momentum * var.At(0, c));
      }
    }
  } else {
    if (running_mean != nullptr && running_mean->cols() == cols) {
      mean = *running_mean;
      var = *running_var;
    } else {
      var = Matrix(1, cols, 1.0f);
    }
  }

  auto inv_std = std::make_shared<std::vector<float>>(cols);
  for (size_t c = 0; c < cols; ++c) {
    (*inv_std)[c] =
        static_cast<float>(1.0 / std::sqrt(var.At(0, c) + eps));
  }
  auto x_hat = std::make_shared<Matrix>(rows, cols);
  Matrix out(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    auto in = x->value.Row(r);
    auto hat = x_hat->Row(r);
    auto o = out.Row(r);
    for (size_t c = 0; c < cols; ++c) {
      hat[c] = (in[c] - mean.At(0, c)) * (*inv_std)[c];
      o[c] = gamma->value.At(0, c) * hat[c] + beta->value.At(0, c);
    }
  }

  VarPtr node = MakeNode(std::move(out), {x, gamma, beta});
  Var* self = node.get();
  VarPtr px = x;
  VarPtr pgamma = gamma;
  VarPtr pbeta = beta;
  const bool use_batch_stats = training && rows > 1;
  node->backward_fn = [self, px, pgamma, pbeta, x_hat, inv_std,
                       use_batch_stats]() {
    const size_t rows = self->value.rows();
    const size_t cols = self->value.cols();
    if (pgamma->requires_grad) {
      pgamma->EnsureGrad();
      pbeta->EnsureGrad();
      for (size_t r = 0; r < rows; ++r) {
        auto g = self->grad.Row(r);
        auto hat = x_hat->Row(r);
        for (size_t c = 0; c < cols; ++c) {
          pgamma->grad.At(0, c) += g[c] * hat[c];
          pbeta->grad.At(0, c) += g[c];
        }
      }
    }
    if (!px->requires_grad) return;
    px->EnsureGrad();
    if (!use_batch_stats) {
      // Inference path: y = gamma * (x - const_mean) * inv_std + beta.
      for (size_t r = 0; r < rows; ++r) {
        auto g = self->grad.Row(r);
        auto grad_in = px->grad.Row(r);
        for (size_t c = 0; c < cols; ++c) {
          grad_in[c] += g[c] * pgamma->value.At(0, c) * (*inv_std)[c];
        }
      }
      return;
    }
    // Training path: mean/var depend on x.
    std::vector<double> sum_dy(cols, 0.0);
    std::vector<double> sum_dy_xhat(cols, 0.0);
    for (size_t r = 0; r < rows; ++r) {
      auto g = self->grad.Row(r);
      auto hat = x_hat->Row(r);
      for (size_t c = 0; c < cols; ++c) {
        double dxhat = static_cast<double>(g[c]) * pgamma->value.At(0, c);
        sum_dy[c] += dxhat;
        sum_dy_xhat[c] += dxhat * hat[c];
      }
    }
    const double inv_n = 1.0 / static_cast<double>(rows);
    for (size_t r = 0; r < rows; ++r) {
      auto g = self->grad.Row(r);
      auto hat = x_hat->Row(r);
      auto grad_in = px->grad.Row(r);
      for (size_t c = 0; c < cols; ++c) {
        double dxhat = static_cast<double>(g[c]) * pgamma->value.At(0, c);
        double dx = (*inv_std)[c] *
                    (dxhat - inv_n * sum_dy[c] - hat[c] * inv_n * sum_dy_xhat[c]);
        grad_in[c] += static_cast<float>(dx);
      }
    }
  };
  return node;
}

VarPtr MeanAggregate(const AggregateSpec& spec, const VarPtr& x,
                     const VarPtr& edge_weights) {
  const size_t num_out = spec.offsets.size() - 1;
  const size_t cols = x->value.cols();
  const bool weighted = edge_weights != nullptr;
  if (weighted) {
    TRAIL_CHECK(edge_weights->value.rows() == spec.sources.size() &&
                edge_weights->value.cols() == 1)
        << "edge weight shape mismatch";
  }

  Matrix out(num_out, cols);
  auto weight_sums = std::make_shared<std::vector<float>>(num_out, 0.0f);
  // Edge-weight matrices are (num_edges x 1), so the value buffer doubles
  // as the CSR edge-weight array.
  kernels::SpmmMeanForward(spec.offsets.data(), num_out, spec.sources.data(),
                           weighted ? edge_weights->value.data() : nullptr,
                           x->value, &out, weight_sums->data());

  std::vector<VarPtr> parents = {x};
  if (weighted) parents.push_back(edge_weights);
  VarPtr node = MakeNode(std::move(out), std::move(parents));
  Var* self = node.get();
  VarPtr px = x;
  VarPtr pw = edge_weights;
  const AggregateSpec* spec_ptr = &spec;
  // AggregateSpec must outlive the backward pass; models own their specs.
  node->backward_fn = [self, px, pw, spec_ptr, weight_sums, weighted]() {
    const size_t cols = self->value.cols();
    const size_t num_out = spec_ptr->offsets.size() - 1;
    if (px->requires_grad) px->EnsureGrad();
    if (weighted && pw->requires_grad) pw->EnsureGrad();
    if (px->requires_grad) {
      kernels::SpmmMeanBackwardX(
          spec_ptr->offsets.data(), num_out, spec_ptr->sources.data(),
          weighted ? pw->value.data() : nullptr, weight_sums->data(),
          self->grad, &px->grad);
    }
    if (weighted && pw->requires_grad) {
      for (size_t v = 0; v < num_out; ++v) {
        const float total_w = (*weight_sums)[v];
        if (total_w <= 1e-12f) continue;
        auto grad_out = self->grad.Row(v);
        auto out_row = self->value.Row(v);
        const float inv = 1.0f / total_w;
        for (uint64_t e = spec_ptr->offsets[v]; e < spec_ptr->offsets[v + 1];
             ++e) {
          // d out_v / d w_e = (x_src - out_v) / W_v.
          auto src_row = px->value.Row(spec_ptr->sources[e]);
          double dot = 0.0;
          for (size_t c = 0; c < cols; ++c) {
            dot += static_cast<double>(grad_out[c]) *
                   (src_row[c] - out_row[c]);
          }
          pw->grad.At(e, 0) += static_cast<float>(dot * inv);
        }
      }
    }
  };
  return node;
}

VarPtr SoftmaxCrossEntropy(const VarPtr& logits, const std::vector<int>& labels,
                           const std::vector<uint8_t>* row_mask,
                           Matrix* out_probs) {
  const size_t rows = logits->value.rows();
  const size_t cols = logits->value.cols();
  TRAIL_CHECK(labels.size() == rows) << "label count mismatch";

  auto active = std::make_shared<std::vector<uint8_t>>(rows, 0);
  size_t count = 0;
  for (size_t r = 0; r < rows; ++r) {
    if (labels[r] < 0) continue;
    if (row_mask != nullptr && (*row_mask)[r] == 0) continue;
    (*active)[r] = 1;
    ++count;
  }

  // Fused row pass: softmax and the active rows' -log(p_label) in one sweep
  // over the logits; the loss itself reduces serially in row order so the
  // result is thread-count independent.
  auto probs = std::make_shared<Matrix>(rows, cols);
  std::vector<float> row_losses(rows, 0.0f);
  const float* logit_data = logits->value.data();
  ParallelFor(rows, [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      row_losses[r] = kernels::SoftmaxRow(
          logit_data + r * cols, probs->data() + r * cols, cols,
          (*active)[r] ? labels[r] : -1);
    }
  }, /*min_chunk=*/512);
  double loss = 0.0;
  for (size_t r = 0; r < rows; ++r) {
    if ((*active)[r]) loss += row_losses[r];
  }
  if (count > 0) loss /= count;
  if (out_probs != nullptr) *out_probs = *probs;

  Matrix out(1, 1);
  out.At(0, 0) = static_cast<float>(loss);
  VarPtr node = MakeNode(std::move(out), {logits});
  Var* self = node.get();
  VarPtr plogits = logits;
  auto labels_copy = std::make_shared<std::vector<int>>(labels);
  node->backward_fn = [self, plogits, probs, active, labels_copy, count,
                       cols]() {
    if (!plogits->requires_grad || count == 0) return;
    plogits->EnsureGrad();
    const float g = self->grad.At(0, 0) / static_cast<float>(count);
    for (size_t r = 0; r < plogits->value.rows(); ++r) {
      if (!(*active)[r]) continue;
      auto grad_in = plogits->grad.Row(r);
      auto p = probs->Row(r);
      const int label = (*labels_copy)[r];
      for (size_t c = 0; c < cols; ++c) {
        float delta = (static_cast<int>(c) == label) ? 1.0f : 0.0f;
        grad_in[c] += g * (p[c] - delta);
      }
    }
  };
  return node;
}

VarPtr MseLoss(const VarPtr& pred, const Matrix& target) {
  TRAIL_CHECK(pred->value.SameShape(target)) << "MSE shape mismatch";
  double loss = 0.0;
  const float* p = pred->value.data();
  const float* t = target.data();
  const size_t n = pred->value.size();
  for (size_t i = 0; i < n; ++i) {
    double d = static_cast<double>(p[i]) - t[i];
    loss += d * d;
  }
  loss /= n;
  Matrix out(1, 1);
  out.At(0, 0) = static_cast<float>(loss);
  VarPtr node = MakeNode(std::move(out), {pred});
  Var* self = node.get();
  VarPtr ppred = pred;
  auto target_copy = std::make_shared<Matrix>(target);
  node->backward_fn = [self, ppred, target_copy]() {
    if (!ppred->requires_grad) return;
    ppred->EnsureGrad();
    const size_t n = ppred->value.size();
    const float g = self->grad.At(0, 0) * 2.0f / static_cast<float>(n);
    const float* p = ppred->value.data();
    const float* t = target_copy->data();
    float* grad_in = ppred->grad.data();
    for (size_t i = 0; i < n; ++i) grad_in[i] += g * (p[i] - t[i]);
  };
  return node;
}

void Backward(const VarPtr& root) {
  TRAIL_CHECK(root->value.rows() == 1 && root->value.cols() == 1)
      << "Backward expects a scalar root";
  // Topological order via iterative DFS.
  std::vector<Var*> order;
  std::unordered_set<Var*> visited;
  std::vector<std::pair<Var*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, child] = stack.back();
    if (child < node->parents.size()) {
      Var* parent = node->parents[child].get();
      ++child;
      if (visited.insert(parent).second) stack.emplace_back(parent, 0);
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  root->EnsureGrad();
  root->grad.At(0, 0) = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward_fn && (*it)->requires_grad &&
        (*it)->grad.SameShape((*it)->value)) {
      (*it)->backward_fn();
    }
  }
}

Adam::Adam(std::vector<VarPtr> params, double lr, double beta1, double beta2,
           double eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  for (const VarPtr& p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::ZeroGrad() {
  for (const VarPtr& p : params_) p->ZeroGrad();
}

void Adam::Step() {
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = *params_[i];
    if (!p.grad.SameShape(p.value)) continue;  // never touched this step
    float* value = p.value.data();
    const float* grad = p.grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (size_t j = 0; j < p.value.size(); ++j) {
      m[j] = static_cast<float>(beta1_ * m[j] + (1.0 - beta1_) * grad[j]);
      v[j] = static_cast<float>(beta2_ * v[j] +
                                (1.0 - beta2_) * grad[j] * grad[j]);
      const double m_hat = m[j] / bias1;
      const double v_hat = v[j] / bias2;
      value[j] -= static_cast<float>(lr_ * m_hat /
                                     (std::sqrt(v_hat) + eps_));
    }
  }
}

}  // namespace trail::ml::ag
