#ifndef TRAIL_ML_GBT_H_
#define TRAIL_ML_GBT_H_

#include <span>
#include <vector>

#include "ml/dataset.h"
#include "util/random.h"

namespace trail::ml {

/// One node of a boosted regression tree. `cover` (training sample count
/// reaching the node) is retained for TreeSHAP.
struct GbtNode {
  int feature = -1;  // -1 for leaves
  float threshold = 0.0f;
  int left = -1;
  int right = -1;
  float leaf_value = 0.0f;
  float cover = 0.0f;
};

/// A single regression tree of the ensemble.
struct GbtTree {
  std::vector<GbtNode> nodes;

  float Predict(std::span<const float> row) const;
};

struct GbtOptions {
  int num_rounds = 40;
  int max_depth = 5;
  double learning_rate = 0.25;
  double reg_lambda = 1.0;   // L2 on leaf weights
  double gamma = 0.0;        // min split gain
  double min_child_weight = 1.0;
  double subsample = 0.8;    // row subsample per round
  /// Features sampled per tree; 0 = all, fraction of total otherwise.
  double colsample_bytree = 0.25;
  /// Histogram bins for split finding.
  int num_bins = 32;
};

/// Multiclass gradient-boosted trees with the XGBoost objective: second-order
/// Taylor expansion of softmax cross-entropy ("multi:softprob"), per-class
/// trees each round, histogram split finding, shrinkage, row/column
/// subsampling, and L2 leaf regularization.
class GbtClassifier {
 public:
  void Fit(const Dataset& train, const GbtOptions& options, Rng* rng);

  /// Raw additive margins (pre-softmax), one per class.
  std::vector<float> PredictMargin(std::span<const float> row) const;
  std::vector<float> PredictProba(std::span<const float> row) const;
  int Predict(std::span<const float> row) const;
  std::vector<int> PredictBatch(const Matrix& x) const;
  Matrix PredictProbaBatch(const Matrix& x) const;

  int num_classes() const { return num_classes_; }
  int num_rounds() const { return static_cast<int>(trees_.size()); }

  /// trees()[round][class] — exposed for TreeSHAP.
  const std::vector<std::vector<GbtTree>>& trees() const { return trees_; }

 private:
  std::vector<std::vector<GbtTree>> trees_;
  int num_classes_ = 0;
  float base_score_ = 0.0f;
};

}  // namespace trail::ml

#endif  // TRAIL_ML_GBT_H_
