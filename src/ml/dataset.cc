#include "ml/dataset.h"

#include <algorithm>

namespace trail::ml {

std::vector<size_t> Dataset::ClassCounts() const {
  std::vector<size_t> counts(num_classes, 0);
  for (int label : y) {
    if (label >= 0 && label < num_classes) counts[label]++;
  }
  return counts;
}

Dataset Dataset::Select(const std::vector<size_t>& indices) const {
  Dataset out;
  out.x = x.SelectRows(indices);
  out.y.reserve(indices.size());
  for (size_t i : indices) out.y.push_back(y[i]);
  out.num_classes = num_classes;
  return out;
}

Status Dataset::Validate() const {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("feature rows != label count");
  }
  if (num_classes <= 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  for (int label : y) {
    if (label < 0 || label >= num_classes) {
      return Status::InvalidArgument("label out of range: " +
                                     std::to_string(label));
    }
  }
  return Status::Ok();
}

std::vector<Fold> StratifiedKFold(const std::vector<int>& y, int k, Rng* rng) {
  // Group indices per class, shuffle, then deal them round-robin to folds.
  int num_classes = 0;
  for (int label : y) num_classes = std::max(num_classes, label + 1);
  std::vector<std::vector<size_t>> per_class(num_classes);
  for (size_t i = 0; i < y.size(); ++i) per_class[y[i]].push_back(i);

  std::vector<std::vector<size_t>> fold_test(k);
  for (auto& members : per_class) {
    rng->Shuffle(&members);
    for (size_t i = 0; i < members.size(); ++i) {
      fold_test[i % k].push_back(members[i]);
    }
  }

  std::vector<Fold> folds(k);
  for (int f = 0; f < k; ++f) {
    std::vector<uint8_t> in_test(y.size(), 0);
    for (size_t i : fold_test[f]) in_test[i] = 1;
    folds[f].test = fold_test[f];
    std::sort(folds[f].test.begin(), folds[f].test.end());
    for (size_t i = 0; i < y.size(); ++i) {
      if (!in_test[i]) folds[f].train.push_back(i);
    }
  }
  return folds;
}

Fold StratifiedSplit(const std::vector<int>& y, double test_fraction,
                     Rng* rng) {
  int num_classes = 0;
  for (int label : y) num_classes = std::max(num_classes, label + 1);
  std::vector<std::vector<size_t>> per_class(num_classes);
  for (size_t i = 0; i < y.size(); ++i) per_class[y[i]].push_back(i);

  Fold fold;
  for (auto& members : per_class) {
    rng->Shuffle(&members);
    size_t test_count = static_cast<size_t>(members.size() * test_fraction);
    if (test_count == 0 && members.size() > 1 && test_fraction > 0) {
      test_count = 1;
    }
    for (size_t i = 0; i < members.size(); ++i) {
      (i < test_count ? fold.test : fold.train).push_back(members[i]);
    }
  }
  std::sort(fold.train.begin(), fold.train.end());
  std::sort(fold.test.begin(), fold.test.end());
  return fold;
}

}  // namespace trail::ml
