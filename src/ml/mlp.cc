#include "ml/mlp.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace trail::ml {

ag::VarPtr MlpClassifier::Forward(const Matrix& x, bool training,
                                  Rng* rng) const {
  ag::VarPtr h = ag::Constant(x);
  for (const Layer& layer : layers_) {
    h = ag::AddRowRelu(ag::MatMul(h, layer.weight), layer.bias);
    if (layer.has_batch_norm) {
      h = ag::BatchNorm(h, layer.gamma, layer.beta, &layer.running_mean,
                        &layer.running_var, /*momentum=*/0.1, /*eps=*/1e-5,
                        training);
    }
    if (layer.dropout > 0.0) {
      h = ag::Dropout(h, layer.dropout, rng, training);
    }
  }
  return ag::AddRow(ag::MatMul(h, out_weight_), out_bias_);
}

void MlpClassifier::Fit(const Dataset& train, const MlpOptions& options) {
  TRAIL_CHECK(train.size() > 0) << "empty training set";
  options_ = options;
  num_classes_ = train.num_classes;
  Rng rng(options.seed);

  layers_.clear();
  size_t in_dim = train.x.cols();
  int layer_index = 0;
  for (size_t width : options.hidden_sizes) {
    Layer layer;
    layer.weight = ag::Param(Matrix::GlorotUniform(in_dim, width, &rng));
    layer.bias = ag::Param(Matrix(1, width));
    layer.has_batch_norm = options.batch_norm;
    if (layer.has_batch_norm) {
      layer.gamma = ag::Param(Matrix(1, width, 1.0f));
      layer.beta = ag::Param(Matrix(1, width));
    }
    if (layer_index < options.dropout_layers) layer.dropout = options.dropout;
    layers_.push_back(std::move(layer));
    in_dim = width;
    ++layer_index;
  }
  out_weight_ =
      ag::Param(Matrix::GlorotUniform(in_dim, num_classes_, &rng));
  out_bias_ = ag::Param(Matrix(1, num_classes_));

  std::vector<ag::VarPtr> params;
  for (const Layer& layer : layers_) {
    params.push_back(layer.weight);
    params.push_back(layer.bias);
    if (layer.has_batch_norm) {
      params.push_back(layer.gamma);
      params.push_back(layer.beta);
    }
  }
  params.push_back(out_weight_);
  params.push_back(out_bias_);
  ag::Adam opt(params, options.learning_rate);

  std::vector<size_t> indices(train.size());
  std::iota(indices.begin(), indices.end(), 0);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&indices);
    for (size_t start = 0; start < indices.size();
         start += options.batch_size) {
      size_t end = std::min(indices.size(), start + options.batch_size);
      std::vector<size_t> batch(indices.begin() + start,
                                indices.begin() + end);
      if (batch.size() < 2) continue;  // batch norm needs > 1 row
      Matrix bx = train.x.SelectRows(batch);
      std::vector<int> by;
      by.reserve(batch.size());
      for (size_t i : batch) by.push_back(train.y[i]);

      opt.ZeroGrad();
      ag::VarPtr logits = Forward(bx, /*training=*/true, &rng);
      ag::VarPtr loss = ag::SoftmaxCrossEntropy(logits, by);
      ag::Backward(loss);
      opt.Step();
    }
  }
}

Matrix MlpClassifier::PredictProbaBatch(const Matrix& x) const {
  TRAIL_CHECK(!layers_.empty() || out_weight_ != nullptr) << "predict before fit";
  Rng rng(0);
  ag::VarPtr logits = Forward(x, /*training=*/false, &rng);
  return RowSoftmax(logits->value);
}

std::vector<int> MlpClassifier::PredictBatch(const Matrix& x) const {
  Matrix probs = PredictProbaBatch(x);
  std::vector<int> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    auto row = probs.Row(r);
    out[r] = static_cast<int>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return out;
}

int MlpClassifier::Predict(std::span<const float> row) const {
  Matrix x(1, row.size());
  std::copy(row.begin(), row.end(), x.Row(0).begin());
  return PredictBatch(x)[0];
}

}  // namespace trail::ml
