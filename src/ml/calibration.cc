#include "ml/calibration.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace trail::ml {

namespace {

/// Mean negative log-likelihood of temperature-scaled probabilities.
double ScaledNll(const Matrix& probs, const std::vector<int>& labels,
                 double temperature) {
  double nll = 0.0;
  size_t count = 0;
  const double inv_t = 1.0 / temperature;
  for (size_t r = 0; r < probs.rows(); ++r) {
    if (labels[r] < 0) continue;
    // softmax(log(p)/T) — compute the target class's scaled probability.
    double denom = 0.0;
    for (size_t c = 0; c < probs.cols(); ++c) {
      denom += std::pow(std::max<double>(probs.At(r, c), 1e-12), inv_t);
    }
    double target =
        std::pow(std::max<double>(probs.At(r, labels[r]), 1e-12), inv_t) /
        denom;
    nll -= std::log(std::max(target, 1e-12));
    ++count;
  }
  return count == 0 ? 0.0 : nll / count;
}

}  // namespace

void TemperatureScaler::Fit(const Matrix& probs,
                            const std::vector<int>& labels) {
  TRAIL_CHECK(probs.rows() == labels.size()) << "label count mismatch";
  // Golden-section search over log T in [log 0.1, log 10].
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = std::log(0.1);
  double hi = std::log(10.0);
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double f1 = ScaledNll(probs, labels, std::exp(x1));
  double f2 = ScaledNll(probs, labels, std::exp(x2));
  for (int it = 0; it < 60; ++it) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = ScaledNll(probs, labels, std::exp(x1));
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = ScaledNll(probs, labels, std::exp(x2));
    }
  }
  temperature_ = std::exp((lo + hi) / 2.0);
  fitted_ = true;
}

Matrix TemperatureScaler::Apply(const Matrix& probs) const {
  TRAIL_CHECK(fitted_) << "apply before fit";
  Matrix out(probs.rows(), probs.cols());
  const double inv_t = 1.0 / temperature_;
  for (size_t r = 0; r < probs.rows(); ++r) {
    double denom = 0.0;
    for (size_t c = 0; c < probs.cols(); ++c) {
      out.At(r, c) = static_cast<float>(
          std::pow(std::max<double>(probs.At(r, c), 1e-12), inv_t));
      denom += out.At(r, c);
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (size_t c = 0; c < probs.cols(); ++c) out.At(r, c) *= inv;
  }
  return out;
}

double ExpectedCalibrationError(const Matrix& probs,
                                const std::vector<int>& labels, int bins) {
  TRAIL_CHECK(probs.rows() == labels.size());
  TRAIL_CHECK(bins > 0);
  std::vector<double> bin_conf(bins, 0.0);
  std::vector<double> bin_acc(bins, 0.0);
  std::vector<size_t> bin_count(bins, 0);
  size_t total = 0;
  for (size_t r = 0; r < probs.rows(); ++r) {
    if (labels[r] < 0) continue;
    size_t best = 0;
    for (size_t c = 1; c < probs.cols(); ++c) {
      if (probs.At(r, c) > probs.At(r, best)) best = c;
    }
    double confidence = probs.At(r, best);
    int bin = std::min(bins - 1,
                       static_cast<int>(confidence * bins));
    bin_conf[bin] += confidence;
    bin_acc[bin] += static_cast<int>(best) == labels[r] ? 1.0 : 0.0;
    bin_count[bin]++;
    ++total;
  }
  if (total == 0) return 0.0;
  double ece = 0.0;
  for (int b = 0; b < bins; ++b) {
    if (bin_count[b] == 0) continue;
    double conf = bin_conf[b] / bin_count[b];
    double acc = bin_acc[b] / bin_count[b];
    ece += (static_cast<double>(bin_count[b]) / total) *
           std::abs(conf - acc);
  }
  return ece;
}

double EnergyScore(const double* logits, size_t n) {
  TRAIL_CHECK(n > 0) << "energy of an empty logit row";
  double max_logit = logits[0];
  for (size_t c = 1; c < n; ++c) max_logit = std::max(max_logit, logits[c]);
  double sum = 0.0;
  for (size_t c = 0; c < n; ++c) sum += std::exp(logits[c] - max_logit);
  return -(max_logit + std::log(sum));
}

double EnergyScore(const std::vector<double>& logits) {
  return EnergyScore(logits.data(), logits.size());
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::min(1.0, std::max(0.0, q));
  const double pos = q * (values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double Auroc(const std::vector<double>& scores,
             const std::vector<uint8_t>& is_positive) {
  TRAIL_CHECK(scores.size() == is_positive.size());
  size_t num_pos = 0;
  for (uint8_t p : is_positive) num_pos += p ? 1 : 0;
  const size_t num_neg = scores.size() - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.5;
  // Average ranks (1-based), ties sharing the mean rank of their run.
  std::vector<size_t> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  double pos_rank_sum = 0.0;
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j < order.size() && scores[order[j]] == scores[order[i]]) ++j;
    const double mean_rank = 0.5 * (static_cast<double>(i + 1) +
                                    static_cast<double>(j));
    for (size_t k = i; k < j; ++k) {
      if (is_positive[order[k]]) pos_rank_sum += mean_rank;
    }
    i = j;
  }
  const double u = pos_rank_sum -
                   static_cast<double>(num_pos) * (num_pos + 1) / 2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

}  // namespace trail::ml
