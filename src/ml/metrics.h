#ifndef TRAIL_ML_METRICS_H_
#define TRAIL_ML_METRICS_H_

#include <string>
#include <vector>

namespace trail::ml {

/// Plain accuracy. `predicted` entries < 0 count as wrong (abstentions).
double Accuracy(const std::vector<int>& truth,
                const std::vector<int>& predicted);

/// Balanced accuracy: mean per-class recall over classes present in `truth`.
/// The paper reports this alongside accuracy because the APT classes are
/// imbalanced.
double BalancedAccuracy(const std::vector<int>& truth,
                        const std::vector<int>& predicted, int num_classes);

/// Row = true class, column = predicted class. Predictions < 0 are dropped.
std::vector<std::vector<int>> ConfusionMatrix(const std::vector<int>& truth,
                                              const std::vector<int>& predicted,
                                              int num_classes);

/// Macro-averaged F1 over classes present in `truth`.
double MacroF1(const std::vector<int>& truth, const std::vector<int>& predicted,
               int num_classes);

/// Per-class F1 (one entry per class). Unlike ConfusionMatrix/MacroF1,
/// abstentions (predicted < 0) count as false negatives for the true class —
/// an abstaining classifier pays for the events it refuses to label. Classes
/// absent from `truth` get F1 = 0.
std::vector<double> PerClassF1(const std::vector<int>& truth,
                               const std::vector<int>& predicted,
                               int num_classes);

/// Mean and (population) standard deviation of a sample, for the
/// "acc ± std over folds" rows of Table IV.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};
MeanStd ComputeMeanStd(const std::vector<double>& values);

/// Formats "0.8236 ± 0.0061".
std::string FormatMeanStd(const MeanStd& ms, int precision = 4);

}  // namespace trail::ml

#endif  // TRAIL_ML_METRICS_H_
