#include "ml/matrix.h"

#include <cmath>

#include "ml/kernels.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace trail::ml {

Matrix Matrix::GlorotUniform(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  const float limit =
      std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (float& v : m.data_) {
    v = static_cast<float>(rng->UniformDouble(-limit, limit));
  }
  return m;
}

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    TRAIL_CHECK(rows[r].size() == m.cols_) << "ragged rows";
    for (size_t c = 0; c < m.cols_; ++c) m.At(r, c) = rows[r][c];
  }
  return m;
}

void Matrix::AddInPlace(const Matrix& other, float scale) {
  TRAIL_CHECK(SameShape(other)) << "AddInPlace shape mismatch";
  kernels::Axpy(other, scale, this);
}

void Matrix::ScaleInPlace(float scale) { kernels::Scal(scale, this); }

Matrix Matrix::SelectRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    TRAIL_CHECK(indices[i] < rows_) << "row index out of range";
    auto src = Row(indices[i]);
    auto dst = out.Row(i);
    for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

void Matrix::AppendRows(const Matrix& other) {
  if (other.rows_ == 0) return;
  if (rows_ == 0) {
    *this = other;
    return;
  }
  TRAIL_CHECK(cols_ == other.cols_) << "AppendRows column mismatch";
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  rows_ += other.rows_;
}

float Matrix::Sum() const {
  // Fixed-chunk-order combine: the chunking depends only on the element
  // count, so the float result is identical at any thread count (and to
  // the serial loop whenever a single chunk suffices).
  double total = ParallelReduce<double>(
      data_.size(), 0.0,
      [&](size_t begin, size_t end) {
        double partial = 0.0;
        for (size_t i = begin; i < end; ++i) partial += data_[i];
        return partial;
      },
      [](double a, double b) { return a + b; }, /*min_chunk=*/4096);
  return static_cast<float>(total);
}

float Matrix::Norm() const {
  double total = ParallelReduce<double>(
      data_.size(), 0.0,
      [&](size_t begin, size_t end) {
        double partial = 0.0;
        for (size_t i = begin; i < end; ++i) {
          partial += static_cast<double>(data_[i]) * data_[i];
        }
        return partial;
      },
      [](double a, double b) { return a + b; }, /*min_chunk=*/4096);
  return static_cast<float>(std::sqrt(total));
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  kernels::Gemm(a, b, &c, /*accumulate=*/true);  // fresh c is already zero
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  kernels::GemmTransB(a, b, &c, /*accumulate=*/true);
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  kernels::GemmTransA(a, b, &c, /*accumulate=*/true,
                      /*skip_zeros_in_a=*/false);
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) t.At(c, r) = a.At(r, c);
  }
  return t;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  TRAIL_CHECK(row.rows() == 1 && row.cols() == a.cols())
      << "broadcast row shape mismatch";
  Matrix out = a;
  for (size_t r = 0; r < a.rows(); ++r) {
    auto dst = out.Row(r);
    auto src = row.Row(0);
    for (size_t c = 0; c < a.cols(); ++c) dst[c] += src[c];
  }
  return out;
}

Matrix ColumnMean(const Matrix& a) {
  Matrix mean(1, a.cols());
  if (a.rows() == 0) return mean;
  for (size_t r = 0; r < a.rows(); ++r) {
    auto row = a.Row(r);
    for (size_t c = 0; c < a.cols(); ++c) mean.At(0, c) += row[c];
  }
  mean.ScaleInPlace(1.0f / static_cast<float>(a.rows()));
  return mean;
}

Matrix ColumnVariance(const Matrix& a, const Matrix& mean) {
  Matrix var(1, a.cols());
  if (a.rows() == 0) return var;
  for (size_t r = 0; r < a.rows(); ++r) {
    auto row = a.Row(r);
    for (size_t c = 0; c < a.cols(); ++c) {
      float d = row[c] - mean.At(0, c);
      var.At(0, c) += d * d;
    }
  }
  var.ScaleInPlace(1.0f / static_cast<float>(a.rows()));
  return var;
}

Matrix RowSoftmax(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  kernels::RowSoftmaxInto(logits, &out);
  return out;
}

void WriteMatrix(BinaryWriter* w, const Matrix& m) {
  w->U64(m.rows());
  w->U64(m.cols());
  w->Raw(m.data(), m.size() * sizeof(float));
}

Matrix ReadMatrix(BinaryReader* r) {
  const uint64_t rows = r->U64();
  const uint64_t cols = r->U64();
  if (!r->ok() || rows > BinaryReader::kMaxLen || cols > BinaryReader::kMaxLen ||
      rows * cols > BinaryReader::kMaxLen) {
    r->MarkFailed();
    return Matrix();
  }
  Matrix m(rows, cols);
  r->Raw(m.data(), m.size() * sizeof(float));
  if (!r->ok()) return Matrix();
  return m;
}

}  // namespace trail::ml
