#include "ml/matrix.h"

#include <cmath>

#include "util/logging.h"
#include "util/parallel.h"

namespace trail::ml {

Matrix Matrix::GlorotUniform(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  const float limit =
      std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (float& v : m.data_) {
    v = static_cast<float>(rng->UniformDouble(-limit, limit));
  }
  return m;
}

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    TRAIL_CHECK(rows[r].size() == m.cols_) << "ragged rows";
    for (size_t c = 0; c < m.cols_; ++c) m.At(r, c) = rows[r][c];
  }
  return m;
}

void Matrix::AddInPlace(const Matrix& other, float scale) {
  TRAIL_CHECK(SameShape(other)) << "AddInPlace shape mismatch";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

void Matrix::ScaleInPlace(float scale) {
  for (float& v : data_) v *= scale;
}

Matrix Matrix::SelectRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    TRAIL_CHECK(indices[i] < rows_) << "row index out of range";
    auto src = Row(indices[i]);
    auto dst = out.Row(i);
    for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

void Matrix::AppendRows(const Matrix& other) {
  if (other.rows_ == 0) return;
  if (rows_ == 0) {
    *this = other;
    return;
  }
  TRAIL_CHECK(cols_ == other.cols_) << "AppendRows column mismatch";
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  rows_ += other.rows_;
}

float Matrix::Sum() const {
  // Fixed-chunk-order combine: the chunking depends only on the element
  // count, so the float result is identical at any thread count (and to
  // the serial loop whenever a single chunk suffices).
  double total = ParallelReduce<double>(
      data_.size(), 0.0,
      [&](size_t begin, size_t end) {
        double partial = 0.0;
        for (size_t i = begin; i < end; ++i) partial += data_[i];
        return partial;
      },
      [](double a, double b) { return a + b; }, /*min_chunk=*/4096);
  return static_cast<float>(total);
}

float Matrix::Norm() const {
  double total = ParallelReduce<double>(
      data_.size(), 0.0,
      [&](size_t begin, size_t end) {
        double partial = 0.0;
        for (size_t i = begin; i < end; ++i) {
          partial += static_cast<double>(data_[i]) * data_[i];
        }
        return partial;
      },
      [](double a, double b) { return a + b; }, /*min_chunk=*/4096);
  return static_cast<float>(std::sqrt(total));
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  TRAIL_CHECK(a.cols() == b.rows()) << "MatMul shape mismatch";
  Matrix c(a.rows(), b.cols());
  const size_t n = a.rows();
  const size_t k = a.cols();
  const size_t m = b.cols();
  ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      float* crow = c.data() + i * m;
      const float* arow = a.data() + i * k;
      for (size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;  // one-hot inputs are mostly zero
        const float* brow = b.data() + p * m;
        for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
      }
    }
  }, /*min_chunk=*/64);
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  TRAIL_CHECK(a.cols() == b.cols()) << "MatMulTransB shape mismatch";
  Matrix c(a.rows(), b.rows());
  const size_t k = a.cols();
  ParallelFor(a.rows(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const float* arow = a.data() + i * k;
      for (size_t j = 0; j < b.rows(); ++j) {
        const float* brow = b.data() + j * k;
        double dot = 0.0;
        for (size_t p = 0; p < k; ++p) {
          dot += static_cast<double>(arow[p]) * brow[p];
        }
        c.At(i, j) = static_cast<float>(dot);
      }
    }
  }, /*min_chunk=*/64);
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  TRAIL_CHECK(a.rows() == b.rows()) << "MatMulTransA shape mismatch";
  Matrix c(a.cols(), b.cols());
  const size_t m = b.cols();
  // Split over output rows (columns of a) so threads write disjoint ranges.
  ParallelFor(a.cols(), [&](size_t begin, size_t end) {
    for (size_t r = 0; r < a.rows(); ++r) {
      const float* arow = a.data() + r * a.cols();
      const float* brow = b.data() + r * m;
      for (size_t i = begin; i < end; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* crow = c.data() + i * m;
        for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
      }
    }
  }, /*min_chunk=*/16);
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) t.At(c, r) = a.At(r, c);
  }
  return t;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  TRAIL_CHECK(row.rows() == 1 && row.cols() == a.cols())
      << "broadcast row shape mismatch";
  Matrix out = a;
  for (size_t r = 0; r < a.rows(); ++r) {
    auto dst = out.Row(r);
    auto src = row.Row(0);
    for (size_t c = 0; c < a.cols(); ++c) dst[c] += src[c];
  }
  return out;
}

Matrix ColumnMean(const Matrix& a) {
  Matrix mean(1, a.cols());
  if (a.rows() == 0) return mean;
  for (size_t r = 0; r < a.rows(); ++r) {
    auto row = a.Row(r);
    for (size_t c = 0; c < a.cols(); ++c) mean.At(0, c) += row[c];
  }
  mean.ScaleInPlace(1.0f / static_cast<float>(a.rows()));
  return mean;
}

Matrix ColumnVariance(const Matrix& a, const Matrix& mean) {
  Matrix var(1, a.cols());
  if (a.rows() == 0) return var;
  for (size_t r = 0; r < a.rows(); ++r) {
    auto row = a.Row(r);
    for (size_t c = 0; c < a.cols(); ++c) {
      float d = row[c] - mean.At(0, c);
      var.At(0, c) += d * d;
    }
  }
  var.ScaleInPlace(1.0f / static_cast<float>(a.rows()));
  return var;
}

Matrix RowSoftmax(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  for (size_t r = 0; r < logits.rows(); ++r) {
    auto in = logits.Row(r);
    auto dst = out.Row(r);
    float max_v = in[0];
    for (float v : in) max_v = std::max(max_v, v);
    double total = 0.0;
    for (size_t c = 0; c < in.size(); ++c) {
      dst[c] = std::exp(in[c] - max_v);
      total += dst[c];
    }
    const float inv = static_cast<float>(1.0 / total);
    for (size_t c = 0; c < in.size(); ++c) dst[c] *= inv;
  }
  return out;
}

void WriteMatrix(BinaryWriter* w, const Matrix& m) {
  w->U64(m.rows());
  w->U64(m.cols());
  w->Raw(m.data(), m.size() * sizeof(float));
}

Matrix ReadMatrix(BinaryReader* r) {
  const uint64_t rows = r->U64();
  const uint64_t cols = r->U64();
  if (!r->ok() || rows > BinaryReader::kMaxLen || cols > BinaryReader::kMaxLen ||
      rows * cols > BinaryReader::kMaxLen) {
    r->MarkFailed();
    return Matrix();
  }
  Matrix m(rows, cols);
  r->Raw(m.data(), m.size() * sizeof(float));
  if (!r->ok()) return Matrix();
  return m;
}

}  // namespace trail::ml
