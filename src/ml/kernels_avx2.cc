// AVX2 implementations of the KernelOps table. Compiled as its own
// translation unit with -mavx2 -ffp-contract=off (and WITHOUT -mfma): every
// mul/add here rounds exactly like the scalar expression, and vector lanes
// run only along axes the pinned policy allows (output columns, or the
// 8-lane stripes of the TransB dot), so this target is bit-identical to the
// scalar one. See kernels.h for the policy and kernels_internal.h for the
// per-entry contracts.

#include "ml/kernels_internal.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cmath>

namespace trail::ml::kernels::detail {
namespace {

void Avx2GemmBlock(const float* a, const float* b, float* c, size_t i0,
                   size_t i1, size_t p0, size_t p1, size_t k, size_t m) {
  for (size_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * m;
    size_t j = 0;
    for (; j + 8 <= m; j += 8) {
      __m256 acc = _mm256_setzero_ps();
      for (size_t p = p0; p < p1; ++p) {
        const __m256 av = _mm256_set1_ps(arow[p]);
        const __m256 bv = _mm256_loadu_ps(b + p * m + j);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(av, bv));
      }
      _mm256_storeu_ps(crow + j,
                       _mm256_add_ps(_mm256_loadu_ps(crow + j), acc));
    }
    for (; j < m; ++j) {
      float acc = 0.0f;
      for (size_t p = p0; p < p1; ++p) acc += arow[p] * b[p * m + j];
      crow[j] += acc;
    }
  }
}

void Avx2GemmBlockPacked(const float* a, const float* bpack, float* c,
                         size_t i0, size_t i1, size_t p0, size_t p1, size_t k,
                         size_t m) {
  const size_t pk = p1 - p0;
  static_assert(kPackNr == 8, "packed panels are one AVX2 vector wide");
  for (size_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * m;
    size_t j = 0;
    for (size_t panel = 0; panel * kPackNr < m; ++panel, j += kPackNr) {
      const float* bp = bpack + panel * pk * kPackNr;
      __m256 acc = _mm256_setzero_ps();
      for (size_t p = 0; p < pk; ++p) {
        const __m256 av = _mm256_set1_ps(arow[p0 + p]);
        const __m256 bv = _mm256_load_ps(bp + p * kPackNr);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(av, bv));
      }
      if (m - j >= kPackNr) {
        _mm256_storeu_ps(crow + j,
                         _mm256_add_ps(_mm256_loadu_ps(crow + j), acc));
      } else {
        alignas(32) float lanes[8];
        _mm256_store_ps(lanes, acc);
        for (size_t l = 0; l < m - j; ++l) crow[j + l] += lanes[l];
      }
    }
  }
}

void Avx2GemmSparseRows(const float* a, const float* b, float* c, size_t i0,
                        size_t i1, size_t k, size_t m) {
  for (size_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * m;
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * m;
      const __m256 avv = _mm256_set1_ps(av);
      size_t j = 0;
      for (; j + 8 <= m; j += 8) {
        const __m256 prod = _mm256_mul_ps(avv, _mm256_loadu_ps(brow + j));
        _mm256_storeu_ps(crow + j,
                         _mm256_add_ps(_mm256_loadu_ps(crow + j), prod));
      }
      for (; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

void Avx2GemmTransBRows(const float* a, const float* b, float* c, size_t i0,
                        size_t i1, size_t k, size_t bn) {
  for (size_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * bn;
    for (size_t j = 0; j < bn; ++j) {
      const float* brow = b + j * k;
      __m256 acc = _mm256_setzero_ps();
      size_t p = 0;
      for (; p + 8 <= k; p += 8) {
        acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_loadu_ps(arow + p),
                                               _mm256_loadu_ps(brow + p)));
      }
      alignas(32) float lanes[8];
      _mm256_store_ps(lanes, acc);
      for (; p < k; ++p) lanes[p % 8] += arow[p] * brow[p];
      crow[j] += CombineLanes8(lanes);
    }
  }
}

void Avx2GemmTransABlock(const float* a, const float* b, float* c, size_t i0,
                         size_t i1, size_t r0, size_t r1, size_t ac, size_t m,
                         bool skip_zeros) {
  for (size_t i = i0; i < i1; ++i) {
    float* crow = c + i * m;
    size_t j = 0;
    for (; j + 8 <= m; j += 8) {
      __m256 acc = _mm256_setzero_ps();
      for (size_t r = r0; r < r1; ++r) {
        const float av = a[r * ac + i];
        if (skip_zeros && av == 0.0f) continue;
        acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(av),
                                               _mm256_loadu_ps(b + r * m + j)));
      }
      _mm256_storeu_ps(crow + j,
                       _mm256_add_ps(_mm256_loadu_ps(crow + j), acc));
    }
    for (; j < m; ++j) {
      float acc = 0.0f;
      for (size_t r = r0; r < r1; ++r) {
        const float av = a[r * ac + i];
        if (skip_zeros && av == 0.0f) continue;
        acc += av * b[r * m + j];
      }
      crow[j] += acc;
    }
  }
}

void Avx2Axpy(float* y, const float* x, float s, size_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(sv, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) y[i] += s * x[i];
}

void Avx2Scal(float* y, float s, size_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(sv, _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] *= s;
}

void Avx2BiasReluRows(const float* x, const float* bias, float* out,
                      size_t r0, size_t r1, size_t cols) {
  const __m256 zero = _mm256_setzero_ps();
  for (size_t r = r0; r < r1; ++r) {
    const float* in = x + r * cols;
    float* o = out + r * cols;
    size_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      const __m256 v = _mm256_add_ps(_mm256_loadu_ps(in + c),
                                     _mm256_loadu_ps(bias + c));
      _mm256_storeu_ps(o + c, _mm256_max_ps(v, zero));
    }
    for (; c < cols; ++c) {
      const float v = in[c] + bias[c];
      o[c] = v > 0.0f ? v : 0.0f;
    }
  }
}

void Avx2BiasTanhRows(const float* x, const float* bias, float* out,
                      size_t r0, size_t r1, size_t cols) {
  // tanh stays scalar libm (a vector polynomial would change results); the
  // fusion win here is the single pass, not the transcendental itself.
  for (size_t r = r0; r < r1; ++r) {
    const float* in = x + r * cols;
    float* o = out + r * cols;
    for (size_t c = 0; c < cols; ++c) o[c] = std::tanh(in[c] + bias[c]);
  }
}

void Avx2ReluMaskAddRows(const float* out, const float* grad_out,
                         float* grad_x, size_t r0, size_t r1, size_t cols) {
  const __m256 zero = _mm256_setzero_ps();
  for (size_t r = r0; r < r1; ++r) {
    const float* o = out + r * cols;
    const float* g = grad_out + r * cols;
    float* gx = grad_x + r * cols;
    size_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      const __m256 mask = _mm256_cmp_ps(_mm256_loadu_ps(o + c), zero,
                                        _CMP_GT_OQ);
      const __m256 add = _mm256_and_ps(mask, _mm256_loadu_ps(g + c));
      _mm256_storeu_ps(gx + c, _mm256_add_ps(_mm256_loadu_ps(gx + c), add));
    }
    for (; c < cols; ++c) {
      if (o[c] > 0.0f) gx[c] += g[c];
    }
  }
}

void Avx2ReluBiasGrad(const float* out, const float* grad_out,
                      float* grad_bias, size_t rows, size_t cols) {
  const __m256 zero = _mm256_setzero_ps();
  for (size_t r = 0; r < rows; ++r) {
    const float* o = out + r * cols;
    const float* g = grad_out + r * cols;
    size_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      const __m256 mask = _mm256_cmp_ps(_mm256_loadu_ps(o + c), zero,
                                        _CMP_GT_OQ);
      const __m256 add = _mm256_and_ps(mask, _mm256_loadu_ps(g + c));
      _mm256_storeu_ps(grad_bias + c,
                       _mm256_add_ps(_mm256_loadu_ps(grad_bias + c), add));
    }
    for (; c < cols; ++c) {
      if (o[c] > 0.0f) grad_bias[c] += g[c];
    }
  }
}

void Avx2SpmmMeanRows(const uint64_t* offsets, const uint32_t* sources,
                      const float* edge_weights, const float* x, float* out,
                      float* weight_sums, size_t v0, size_t v1, size_t cols) {
  for (size_t v = v0; v < v1; ++v) {
    float* dst = out + v * cols;
    double total_w = 0.0;
    for (uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      const float w = edge_weights != nullptr ? edge_weights[e] : 1.0f;
      total_w += w;
      const float* src = x + static_cast<size_t>(sources[e]) * cols;
      const __m256 wv = _mm256_set1_ps(w);
      size_t c = 0;
      for (; c + 8 <= cols; c += 8) {
        const __m256 prod = _mm256_mul_ps(wv, _mm256_loadu_ps(src + c));
        _mm256_storeu_ps(dst + c,
                         _mm256_add_ps(_mm256_loadu_ps(dst + c), prod));
      }
      for (; c < cols; ++c) dst[c] += w * src[c];
    }
    weight_sums[v] = static_cast<float>(total_w);
    if (total_w > 1e-12) {
      const float inv = static_cast<float>(1.0 / total_w);
      const __m256 iv = _mm256_set1_ps(inv);
      size_t c = 0;
      for (; c + 8 <= cols; c += 8) {
        _mm256_storeu_ps(dst + c, _mm256_mul_ps(iv, _mm256_loadu_ps(dst + c)));
      }
      for (; c < cols; ++c) dst[c] *= inv;
    } else {
      for (size_t c = 0; c < cols; ++c) dst[c] = 0.0f;
    }
  }
}

void Avx2SpmmMeanBackXCols(const uint64_t* offsets, size_t num_out,
                           const uint32_t* sources, const float* edge_weights,
                           const float* weight_sums, const float* grad_out,
                           float* grad_x, size_t c0, size_t c1, size_t cols) {
  for (size_t v = 0; v < num_out; ++v) {
    const float total_w = weight_sums[v];
    if (total_w <= 1e-12f) continue;
    const float* gout = grad_out + v * cols;
    const float inv = 1.0f / total_w;
    for (uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      const float scale =
          (edge_weights != nullptr ? edge_weights[e] : 1.0f) * inv;
      float* gx = grad_x + static_cast<size_t>(sources[e]) * cols;
      const __m256 sv = _mm256_set1_ps(scale);
      size_t c = c0;
      for (; c + 8 <= c1; c += 8) {
        const __m256 prod = _mm256_mul_ps(sv, _mm256_loadu_ps(gout + c));
        _mm256_storeu_ps(gx + c, _mm256_add_ps(_mm256_loadu_ps(gx + c), prod));
      }
      for (; c < c1; ++c) gx[c] += scale * gout[c];
    }
  }
}

constexpr KernelOps kAvx2Ops = {
    "avx2",
    &Avx2GemmBlock,
    &Avx2GemmBlockPacked,
    &Avx2GemmSparseRows,
    &Avx2GemmTransBRows,
    &Avx2GemmTransABlock,
    &Avx2Axpy,
    &Avx2Scal,
    &Avx2BiasReluRows,
    &Avx2BiasTanhRows,
    &Avx2ReluMaskAddRows,
    &Avx2ReluBiasGrad,
    &Avx2SpmmMeanRows,
    &Avx2SpmmMeanBackXCols,
};

}  // namespace

const KernelOps* GetAvx2Ops() { return &kAvx2Ops; }

}  // namespace trail::ml::kernels::detail

#else  // !defined(__AVX2__)

namespace trail::ml::kernels::detail {
const KernelOps* GetAvx2Ops() { return nullptr; }
}  // namespace trail::ml::kernels::detail

#endif  // defined(__AVX2__)
