#ifndef TRAIL_ML_RANDOM_FOREST_H_
#define TRAIL_ML_RANDOM_FOREST_H_

#include <vector>

#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "util/random.h"

namespace trail::ml {

struct RandomForestOptions {
  int num_trees = 100;
  DecisionTreeOptions tree;
  /// Bootstrap sample fraction per tree.
  double sample_fraction = 1.0;

  RandomForestOptions() {
    tree.max_features = 0;  // sqrt(num_features), Breiman's default
    tree.max_depth = 20;
  }
};

/// Breiman random forest: bagged CART trees on bootstrap samples with
/// per-split feature subsampling, soft-voted at prediction time.
class RandomForest {
 public:
  void Fit(const Dataset& train, const RandomForestOptions& options, Rng* rng);

  std::vector<float> PredictProba(std::span<const float> row) const;
  int Predict(std::span<const float> row) const;
  std::vector<int> PredictBatch(const Matrix& x) const;
  Matrix PredictProbaBatch(const Matrix& x) const;

  size_t num_trees() const { return trees_.size(); }
  int num_classes() const { return num_classes_; }

 private:
  std::vector<DecisionTree> trees_;
  int num_classes_ = 0;
};

}  // namespace trail::ml

#endif  // TRAIL_ML_RANDOM_FOREST_H_
