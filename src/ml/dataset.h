#ifndef TRAIL_ML_DATASET_H_
#define TRAIL_ML_DATASET_H_

#include <vector>

#include "ml/matrix.h"
#include "util/random.h"
#include "util/status.h"

namespace trail::ml {

/// A labeled tabular dataset: one feature row per sample plus an integer
/// class label in [0, num_classes).
struct Dataset {
  Matrix x;
  std::vector<int> y;
  int num_classes = 0;

  size_t size() const { return y.size(); }

  /// Class frequency histogram.
  std::vector<size_t> ClassCounts() const;

  /// Subset by sample indices.
  Dataset Select(const std::vector<size_t>& indices) const;

  Status Validate() const;
};

/// One train/test split of sample indices.
struct Fold {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// Stratified k-fold: every fold's test set preserves class proportions (the
/// paper's five-fold cross-validation protocol). Classes with fewer samples
/// than k still land at most once per fold. Deterministic given `rng`.
std::vector<Fold> StratifiedKFold(const std::vector<int>& y, int k, Rng* rng);

/// Stratified holdout split; `test_fraction` of each class goes to test.
Fold StratifiedSplit(const std::vector<int>& y, double test_fraction,
                     Rng* rng);

}  // namespace trail::ml

#endif  // TRAIL_ML_DATASET_H_
