#include "ml/gbt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/parallel.h"

namespace trail::ml {

float GbtTree::Predict(std::span<const float> row) const {
  int index = 0;
  for (;;) {
    const GbtNode& node = nodes[index];
    if (node.feature < 0) return node.leaf_value;
    index = row[node.feature] <= node.threshold ? node.left : node.right;
  }
}

namespace {

/// Per-feature quantile bin edges plus the precomputed bin id of every
/// (sample, feature) pair. Built once per Fit; all trees share it.
class BinIndex {
 public:
  BinIndex(const Matrix& x, int num_bins, Rng* rng) : num_bins_(num_bins) {
    const size_t n = x.rows();
    const size_t d = x.cols();
    edges_.resize(d);
    bins_.resize(n * d);

    const size_t quantile_sample =
        std::min<size_t>(n, 2000);
    std::vector<size_t> sample_rows =
        rng->SampleWithoutReplacement(n, quantile_sample);
    cols_ = d;
    // Each feature's edges and bin column are independent of the others, so
    // features bin in parallel (writes to edges_[f] and the f-strided
    // column of bins_ are disjoint).
    ParallelForEachIndex(d, [&](size_t f) {
      std::vector<float> values;
      values.reserve(sample_rows.size());
      for (size_t r : sample_rows) values.push_back(x.At(r, f));
      std::sort(values.begin(), values.end());
      values.erase(std::unique(values.begin(), values.end()), values.end());
      auto& cuts = edges_[f];
      if (values.size() <= 1) {
        // Constant feature — no cuts, everything lands in bin 0.
      } else if (values.size() <= static_cast<size_t>(num_bins_)) {
        for (size_t i = 0; i + 1 < values.size(); ++i) {
          cuts.push_back(0.5f * (values[i] + values[i + 1]));
        }
      } else {
        for (int b = 1; b < num_bins_; ++b) {
          size_t idx = values.size() * b / num_bins_;
          cuts.push_back(values[idx]);
        }
        cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
      }
      for (size_t r = 0; r < n; ++r) {
        bins_[r * d + f] = BinOf(f, x.At(r, f));
      }
    });
  }

  uint8_t Bin(size_t row, size_t feature) const {
    return bins_[row * cols_ + feature];
  }
  int NumBins(size_t feature) const {
    return static_cast<int>(edges_[feature].size()) + 1;
  }
  /// Threshold value separating bins b and b+1.
  float Edge(size_t feature, int b) const { return edges_[feature][b]; }

 private:
  uint8_t BinOf(size_t feature, float value) const {
    const auto& cuts = edges_[feature];
    // First bin whose upper edge is >= value; edges are "left-inclusive".
    int lo = static_cast<int>(
        std::lower_bound(cuts.begin(), cuts.end(), value) - cuts.begin());
    return static_cast<uint8_t>(lo);
  }

  int num_bins_;
  size_t cols_ = 0;
  std::vector<std::vector<float>> edges_;
  std::vector<uint8_t> bins_;
};

struct GradHess {
  double g = 0.0;
  double h = 0.0;
};

/// Best split found while scanning a single candidate feature's histogram.
/// Each feature's scan is self-contained (own histogram), so features can be
/// scanned in parallel and reduced in feature order — bit-identical to the
/// serial scan at any thread count.
struct FeatureSplit {
  double gain = 0.0;
  int bin = -1;
  bool valid = false;
};

/// Node size below which the per-feature histogram scan runs serially; small
/// nodes would pay more in task overhead than the scan costs. Changes
/// scheduling only, never results.
constexpr size_t kParallelHistMinSamples = 1024;

class TreeBuilder {
 public:
  TreeBuilder(const BinIndex& bins, const std::vector<float>& grad,
              const std::vector<float>& hess,
              const std::vector<size_t>& features, const GbtOptions& options)
      : bins_(bins),
        grad_(grad),
        hess_(hess),
        features_(features),
        options_(options) {}

  GbtTree Build(std::vector<size_t> rows) {
    tree_.nodes.clear();
    BuildNode(&rows, 0, rows.size(), 0);
    return std::move(tree_);
  }

 private:
  static double LeafObjective(double g, double h, double lambda) {
    return g * g / (h + lambda);
  }

  int MakeLeaf(const std::vector<size_t>& rows, size_t begin, size_t end) {
    double g = 0.0;
    double h = 0.0;
    for (size_t i = begin; i < end; ++i) {
      g += grad_[rows[i]];
      h += hess_[rows[i]];
    }
    GbtNode leaf;
    leaf.leaf_value =
        static_cast<float>(-g / (h + options_.reg_lambda));
    leaf.cover = static_cast<float>(end - begin);
    tree_.nodes.push_back(leaf);
    return static_cast<int>(tree_.nodes.size() - 1);
  }

  int BuildNode(std::vector<size_t>* rows, size_t begin, size_t end,
                int depth) {
    const size_t n = end - begin;
    double total_g = 0.0;
    double total_h = 0.0;
    for (size_t i = begin; i < end; ++i) {
      total_g += grad_[(*rows)[i]];
      total_h += hess_[(*rows)[i]];
    }
    if (depth >= options_.max_depth || n < 2 ||
        total_h < 2 * options_.min_child_weight) {
      return MakeLeaf(*rows, begin, end);
    }

    const double parent_obj =
        LeafObjective(total_g, total_h, options_.reg_lambda);

    // Scan every candidate feature's histogram independently, then reduce
    // the per-feature winners in feature order with a strict > (first
    // feature wins ties, first bin wins within a feature) — exactly the
    // order the old serial loop visited them, so the chosen (feature, bin)
    // is identical at any thread count.
    std::vector<FeatureSplit> feature_splits(features_.size());
    auto scan_feature = [&](size_t j) {
      const size_t feature = features_[j];
      const int nbins = bins_.NumBins(feature);
      if (nbins <= 1) return;
      std::vector<GradHess> hist(nbins);
      for (size_t i = begin; i < end; ++i) {
        size_t r = (*rows)[i];
        auto& cell = hist[bins_.Bin(r, feature)];
        cell.g += grad_[r];
        cell.h += hess_[r];
      }
      FeatureSplit best;
      double left_g = 0.0;
      double left_h = 0.0;
      for (int b = 0; b + 1 < nbins; ++b) {
        left_g += hist[b].g;
        left_h += hist[b].h;
        const double right_g = total_g - left_g;
        const double right_h = total_h - left_h;
        if (left_h < options_.min_child_weight ||
            right_h < options_.min_child_weight) {
          continue;
        }
        double gain =
            0.5 * (LeafObjective(left_g, left_h, options_.reg_lambda) +
                   LeafObjective(right_g, right_h, options_.reg_lambda) -
                   parent_obj);
        if (!best.valid || gain > best.gain) {
          best.gain = gain;
          best.bin = b;
          best.valid = true;
        }
      }
      feature_splits[j] = best;
    };
    if (n >= kParallelHistMinSamples && features_.size() > 1) {
      ParallelForEachIndex(features_.size(), scan_feature);
    } else {
      for (size_t j = 0; j < features_.size(); ++j) scan_feature(j);
    }

    int best_feature = -1;
    int best_bin = -1;
    double best_gain = options_.gamma + 1e-12;
    for (size_t j = 0; j < features_.size(); ++j) {
      const FeatureSplit& split = feature_splits[j];
      if (split.valid && split.gain > best_gain) {
        best_gain = split.gain;
        best_feature = static_cast<int>(features_[j]);
        best_bin = split.bin;
      }
    }

    if (best_feature < 0) return MakeLeaf(*rows, begin, end);

    const float threshold = bins_.Edge(best_feature, best_bin);
    auto middle =
        std::partition(rows->begin() + begin, rows->begin() + end,
                       [&](size_t r) {
                         return bins_.Bin(r, best_feature) <=
                                static_cast<uint8_t>(best_bin);
                       });
    size_t split = static_cast<size_t>(middle - rows->begin());
    if (split == begin || split == end) return MakeLeaf(*rows, begin, end);

    int node_index = static_cast<int>(tree_.nodes.size());
    tree_.nodes.emplace_back();
    tree_.nodes[node_index].feature = best_feature;
    // Bin b holds values in (Edge(b-1), Edge(b)], so "left = bins <= b" is
    // exactly the raw-value test x <= Edge(b).
    tree_.nodes[node_index].threshold = threshold;
    tree_.nodes[node_index].cover = static_cast<float>(n);
    int left = BuildNode(rows, begin, split, depth + 1);
    int right = BuildNode(rows, split, end, depth + 1);
    tree_.nodes[node_index].left = left;
    tree_.nodes[node_index].right = right;
    return node_index;
  }

  const BinIndex& bins_;
  const std::vector<float>& grad_;
  const std::vector<float>& hess_;
  const std::vector<size_t>& features_;
  const GbtOptions& options_;
  GbtTree tree_;
};

}  // namespace

void GbtClassifier::Fit(const Dataset& train, const GbtOptions& options,
                        Rng* rng) {
  TRAIL_CHECK(train.size() > 0) << "empty training set";
  num_classes_ = train.num_classes;
  trees_.clear();
  const size_t n = train.size();
  const size_t d = train.x.cols();

  BinIndex bins(train.x, options.num_bins, rng);

  // margins[r * K + c] — running additive scores.
  std::vector<float> margins(n * num_classes_, base_score_);
  std::vector<float> grad(n);
  std::vector<float> hess(n);
  std::vector<float> probs(num_classes_);

  for (int round = 0; round < options.num_rounds; ++round) {
    // Row subsample for this round.
    std::vector<size_t> rows;
    if (options.subsample >= 1.0) {
      rows.resize(n);
      for (size_t i = 0; i < n; ++i) rows[i] = i;
    } else {
      for (size_t i = 0; i < n; ++i) {
        if (rng->Bernoulli(options.subsample)) rows.push_back(i);
      }
      if (rows.empty()) rows.push_back(rng->NextBounded(n));
    }

    trees_.emplace_back();
    auto& round_trees = trees_.back();
    round_trees.reserve(num_classes_);

    // Softmax probabilities per subsampled row are shared across the K
    // per-class trees of this round.
    std::vector<float> round_probs(rows.size() * num_classes_);
    ParallelFor(rows.size(), [&](size_t chunk_begin, size_t chunk_end) {
      for (size_t i = chunk_begin; i < chunk_end; ++i) {
        const size_t r = rows[i];
        float max_m = margins[r * num_classes_];
        for (int c = 1; c < num_classes_; ++c) {
          max_m = std::max(max_m, margins[r * num_classes_ + c]);
        }
        double total = 0.0;
        for (int c = 0; c < num_classes_; ++c) {
          float e = std::exp(margins[r * num_classes_ + c] - max_m);
          round_probs[i * num_classes_ + c] = e;
          total += e;
        }
        const float inv = static_cast<float>(1.0 / total);
        for (int c = 0; c < num_classes_; ++c) {
          round_probs[i * num_classes_ + c] *= inv;
        }
      }
    }, /*min_chunk=*/256);

    for (int cls = 0; cls < num_classes_; ++cls) {
      ParallelFor(rows.size(), [&](size_t chunk_begin, size_t chunk_end) {
        for (size_t i = chunk_begin; i < chunk_end; ++i) {
          const size_t r = rows[i];
          const float p = round_probs[i * num_classes_ + cls];
          grad[r] = p - (train.y[r] == cls ? 1.0f : 0.0f);
          hess[r] = std::max(p * (1.0f - p), 1e-6f);
        }
      }, /*min_chunk=*/1024);
      // Column subsample per (round, class) tree.
      std::vector<size_t> features;
      if (options.colsample_bytree <= 0.0 || options.colsample_bytree >= 1.0) {
        features.resize(d);
        for (size_t f = 0; f < d; ++f) features[f] = f;
      } else {
        size_t count = std::max<size_t>(
            1, static_cast<size_t>(d * options.colsample_bytree));
        features = rng->SampleWithoutReplacement(d, count);
      }

      TreeBuilder builder(bins, grad, hess, features, options);
      GbtTree tree = builder.Build(rows);

      // Apply shrinkage and update margins for the subsampled rows and all
      // other rows (full margin update keeps later rounds consistent).
      for (GbtNode& node : tree.nodes) {
        if (node.feature < 0) {
          node.leaf_value *= static_cast<float>(options.learning_rate);
        }
      }
      ParallelFor(n, [&](size_t chunk_begin, size_t chunk_end) {
        for (size_t r = chunk_begin; r < chunk_end; ++r) {
          margins[r * num_classes_ + cls] += tree.Predict(train.x.Row(r));
        }
      }, /*min_chunk=*/256);
      round_trees.push_back(std::move(tree));
    }
  }
}

std::vector<float> GbtClassifier::PredictMargin(
    std::span<const float> row) const {
  std::vector<float> margin(num_classes_, base_score_);
  for (const auto& round_trees : trees_) {
    for (int c = 0; c < num_classes_; ++c) {
      margin[c] += round_trees[c].Predict(row);
    }
  }
  return margin;
}

std::vector<float> GbtClassifier::PredictProba(
    std::span<const float> row) const {
  std::vector<float> margin = PredictMargin(row);
  float max_m = *std::max_element(margin.begin(), margin.end());
  double total = 0.0;
  for (float& m : margin) {
    m = std::exp(m - max_m);
    total += m;
  }
  for (float& m : margin) m = static_cast<float>(m / total);
  return margin;
}

int GbtClassifier::Predict(std::span<const float> row) const {
  std::vector<float> margin = PredictMargin(row);
  return static_cast<int>(
      std::max_element(margin.begin(), margin.end()) - margin.begin());
}

std::vector<int> GbtClassifier::PredictBatch(const Matrix& x) const {
  std::vector<int> out(x.rows());
  ParallelFor(x.rows(), [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) out[r] = Predict(x.Row(r));
  }, /*min_chunk=*/32);
  return out;
}

Matrix GbtClassifier::PredictProbaBatch(const Matrix& x) const {
  Matrix out(x.rows(), num_classes_);
  ParallelFor(x.rows(), [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      std::vector<float> probs = PredictProba(x.Row(r));
      std::copy(probs.begin(), probs.end(), out.Row(r).begin());
    }
  }, /*min_chunk=*/32);
  return out;
}

}  // namespace trail::ml
