#ifndef TRAIL_ML_KERNELS_H_
#define TRAIL_ML_KERNELS_H_

// Vectorized compute-kernel layer for the ML substrate: cache-blocked,
// register-tiled GEMM (MatMul / MatMulTransA / MatMulTransB), a CSR-driven
// SpMM for neighbor mean-aggregation, and fused elementwise passes
// (bias-add+ReLU/tanh, softmax-cross-entropy row pass, axpy/scal). The GNN
// training loop spends nearly all of its time here, so these kernels are
// what "as fast as the hardware allows" means for TRAIL's neural models.
//
// ## Dispatch
//
// A scalar baseline is always available. On x86-64 an AVX2 implementation
// is compiled into its own translation unit and selected at first use when
// the CPU supports it. The TRAIL_KERNELS environment variable overrides
// the choice for A/B testing and reproducibility:
//
//   TRAIL_KERNELS=scalar   force the scalar baseline
//   TRAIL_KERNELS=native   best target the host supports (the default)
//   TRAIL_KERNELS=avx2     require AVX2 (aborts if the host lacks it)
//
// ## Accumulation policy (pinned by tests/ml/kernels_test.cc)
//
// All GEMM-family kernels accumulate in float32. FMA contraction is
// disabled (the ISA TUs build with -ffp-contract=off and without -mfma):
// every multiply and add rounds exactly as the scalar expression does,
// which is what makes the scalar and vector targets BIT-IDENTICAL — the
// vector kernels only reassociate where the policy below says they may,
// and the scalar kernels implement the same association order:
//
//   - MatMul (C = A*B) and MatMulTransA (C = A^T*B): the reduction axis is
//     processed in consecutive blocks of 256 elements; within a block each
//     output element accumulates sequentially in reduction order, and the
//     block partials are added to C in ascending block order. Vector lanes
//     run along the j (output-column) axis, which never reassociates.
//   - MatMulTransB (C = A*B^T): each dot product accumulates in 8 striped
//     lanes (index p contributes to lane p % 8) combined by the fixed tree
//     of kernels_internal.h CombineLanes8.
//   - The sparse-row fast path (one-hot inputs) accumulates directly into
//     the C row, sequentially over the nonzero reduction indices.
//   - SpMM, axpy/scal and the fused elementwise kernels perform no
//     cross-element reduction at all (per-column/per-element arithmetic in
//     a fixed order), so vectorization cannot change their results.
//
// Consequences: results are bit-identical across dispatch targets AND
// across thread counts (chunking is shape-only, see util/parallel.h), so
// TRAIL_KERNELS and --threads are pure performance knobs. The policy DOES
// differ from naive sequential float accumulation (blocking reassociates
// across 256-element block boundaries) and from the pre-kernel code that
// accumulated MatMulTransB in double — goldens were regenerated once when
// this layer landed.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ml/matrix.h"

namespace trail::ml::kernels {

/// Name of the dispatch target currently in effect ("scalar" or "avx2").
const char* ActiveTargetName();

/// Dispatch targets reachable on this host, best last ("scalar" always;
/// "avx2" when compiled in and supported by the CPU).
std::vector<std::string> AvailableTargets();

/// Test/bench hook: force a target by name ("scalar", "avx2", "native")
/// for the lifetime of the object, then restore the previous choice. Not
/// thread-safe — construct only while no kernel calls are in flight.
class ScopedTargetOverride {
 public:
  explicit ScopedTargetOverride(const std::string& name);
  ~ScopedTargetOverride();

  ScopedTargetOverride(const ScopedTargetOverride&) = delete;
  ScopedTargetOverride& operator=(const ScopedTargetOverride&) = delete;
};

// ---- GEMM family. All variants ADD into *c when `accumulate` is true and
// overwrite it (after a zero fill) otherwise; `c` must be pre-sized to the
// result shape. Rows are parallelized over the global pool with shape-only
// chunking. ----

/// C (+)= A * B. Dense: no zero skipping (see GemmSparseA).
void Gemm(const Matrix& a, const Matrix& b, Matrix* c, bool accumulate);

/// C (+)= A * B for row-sparse A (one-hot encoder inputs): skips zero
/// elements of A. Only profitable when most of A is zeros.
void GemmSparseA(const Matrix& a, const Matrix& b, Matrix* c,
                 bool accumulate);

/// C (+)= A * B^T.
void GemmTransB(const Matrix& a, const Matrix& b, Matrix* c,
                bool accumulate);

/// C (+)= A^T * B. With `skip_zeros_in_a`, zero elements of A are skipped
/// (the backward companion of GemmSparseA).
void GemmTransA(const Matrix& a, const Matrix& b, Matrix* c, bool accumulate,
                bool skip_zeros_in_a);

// ---- Fused elementwise kernels. ----

/// y += scale * x (same shape).
void Axpy(const Matrix& x, float scale, Matrix* y);

/// y *= scale.
void Scal(float scale, Matrix* y);

/// out[r, c] = max(0, x[r, c] + bias[c]); bias is 1 x C. One pass.
void BiasAddRelu(const Matrix& x, const Matrix& bias, Matrix* out);

/// out[r, c] = tanh(x[r, c] + bias[c]); bias is 1 x C. One pass.
void BiasAddTanh(const Matrix& x, const Matrix& bias, Matrix* out);

/// Backward of BiasAddRelu: using out_value (= the forward output, whose
/// positivity equals the pre-activation's), accumulates
///   grad_x[r, c]    += grad_out[r, c] * (out_value[r, c] > 0)
///   grad_bias[0, c] += grad_out[r, c] * (out_value[r, c] > 0)  (r ascending)
/// Either gradient pointer may be null to skip that half.
void BiasAddReluBackward(const Matrix& out_value, const Matrix& grad_out,
                         Matrix* grad_x, Matrix* grad_bias);

/// Fused softmax(+cross-entropy) row pass: writes the softmax of
/// logits[0..cols) into probs and, when label >= 0, returns
/// -log(max(probs[label], 1e-12)); returns 0.0 otherwise. Identical
/// numerics to the historical RowSoftmax (max-shifted exp, double sum).
float SoftmaxRow(const float* logits, float* probs, size_t cols, int label);

/// Row-parallel softmax into a pre-sized matrix (same shape as logits).
void RowSoftmaxInto(const Matrix& logits, Matrix* out);

// ---- CSR SpMM (the MeanAggregate forward/backward, driven directly over
// the aggregation spec's row ranges instead of per-edge autograd gathers).
// `offsets` has num_out + 1 entries; `sources` indexes rows of x. ----

/// out[v, :] = weighted mean of x[sources[e], :] over v's edge range;
/// weight_sums[v] (size num_out) receives the per-row total weight.
/// edge_weights may be null (unweighted mean).
void SpmmMeanForward(const uint64_t* offsets, size_t num_out,
                     const uint32_t* sources, const float* edge_weights,
                     const Matrix& x, Matrix* out, float* weight_sums);

/// Accumulates the x-gradient of SpmmMeanForward into grad_x
/// (column-partitioned across the pool so writes stay disjoint).
void SpmmMeanBackwardX(const uint64_t* offsets, size_t num_out,
                       const uint32_t* sources, const float* edge_weights,
                       const float* weight_sums, const Matrix& grad_out,
                       Matrix* grad_x);

}  // namespace trail::ml::kernels

#endif  // TRAIL_ML_KERNELS_H_
