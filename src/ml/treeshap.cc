#include "ml/treeshap.h"

#include "util/logging.h"

namespace trail::ml {

namespace {

struct PathElement {
  int feature = -1;
  double zero_fraction = 1.0;
  double one_fraction = 1.0;
  double pweight = 0.0;
};

/// Appends a split to the decomposition path, updating subset weights.
void Extend(std::vector<PathElement>* path, double zero_fraction,
            double one_fraction, int feature) {
  const int depth = static_cast<int>(path->size());
  path->push_back(PathElement{feature, zero_fraction, one_fraction,
                              depth == 0 ? 1.0 : 0.0});
  auto& m = *path;
  for (int i = depth - 1; i >= 0; --i) {
    m[i + 1].pweight +=
        one_fraction * m[i].pweight * (i + 1) / (depth + 1.0);
    m[i].pweight =
        zero_fraction * m[i].pweight * (depth - i) / (depth + 1.0);
  }
}

/// Removes the split at `index` from the path (inverse of Extend).
void Unwind(std::vector<PathElement>* path, int index) {
  auto& m = *path;
  const int depth = static_cast<int>(m.size()) - 1;
  const double one_fraction = m[index].one_fraction;
  const double zero_fraction = m[index].zero_fraction;
  double next_one_portion = m[depth].pweight;
  for (int i = depth - 1; i >= 0; --i) {
    if (one_fraction != 0.0) {
      const double tmp = m[i].pweight;
      m[i].pweight =
          next_one_portion * (depth + 1.0) / ((i + 1) * one_fraction);
      next_one_portion =
          tmp - m[i].pweight * zero_fraction * (depth - i) / (depth + 1.0);
    } else {
      m[i].pweight =
          m[i].pweight * (depth + 1.0) / (zero_fraction * (depth - i));
    }
  }
  for (int i = index; i < depth; ++i) {
    m[i].feature = m[i + 1].feature;
    m[i].zero_fraction = m[i + 1].zero_fraction;
    m[i].one_fraction = m[i + 1].one_fraction;
  }
  m.pop_back();
}

/// Total weight the path would have if the split at `index` were unwound
/// (without mutating the path).
double UnwoundSum(const std::vector<PathElement>& m, int index) {
  const int depth = static_cast<int>(m.size()) - 1;
  const double one_fraction = m[index].one_fraction;
  const double zero_fraction = m[index].zero_fraction;
  double next_one_portion = m[depth].pweight;
  double total = 0.0;
  for (int i = depth - 1; i >= 0; --i) {
    if (one_fraction != 0.0) {
      const double tmp =
          next_one_portion * (depth + 1.0) / ((i + 1) * one_fraction);
      total += tmp;
      next_one_portion =
          m[i].pweight - tmp * zero_fraction * (depth - i) / (depth + 1.0);
    } else {
      total += m[i].pweight * (depth + 1.0) / (zero_fraction * (depth - i));
    }
  }
  return total;
}

class ShapWalker {
 public:
  ShapWalker(const GbtTree& tree, std::span<const float> row,
             std::vector<double>* phi)
      : tree_(tree), row_(row), phi_(phi) {}

  void Run() {
    std::vector<PathElement> path;
    Recurse(0, path, 1.0, 1.0, -1);
  }

 private:
  void Recurse(int node_index, std::vector<PathElement> path,
               double parent_zero_fraction, double parent_one_fraction,
               int parent_feature) {
    Extend(&path, parent_zero_fraction, parent_one_fraction, parent_feature);
    const GbtNode& node = tree_.nodes[node_index];
    if (node.feature < 0) {
      for (int i = 1; i < static_cast<int>(path.size()); ++i) {
        const double w = UnwoundSum(path, i);
        (*phi_)[path[i].feature] +=
            w * (path[i].one_fraction - path[i].zero_fraction) *
            node.leaf_value;
      }
      return;
    }

    const bool go_left = row_[node.feature] <= node.threshold;
    const int hot = go_left ? node.left : node.right;
    const int cold = go_left ? node.right : node.left;
    const double hot_cover = tree_.nodes[hot].cover;
    const double cold_cover = tree_.nodes[cold].cover;
    const double node_cover = node.cover > 0 ? node.cover : 1.0;

    double incoming_zero = 1.0;
    double incoming_one = 1.0;
    // Undo a previous split on the same feature along this path.
    for (int k = 1; k < static_cast<int>(path.size()); ++k) {
      if (path[k].feature == node.feature) {
        incoming_zero = path[k].zero_fraction;
        incoming_one = path[k].one_fraction;
        Unwind(&path, k);
        break;
      }
    }

    Recurse(hot, path, incoming_zero * hot_cover / node_cover, incoming_one,
            node.feature);
    Recurse(cold, path, incoming_zero * cold_cover / node_cover, 0.0,
            node.feature);
  }

  const GbtTree& tree_;
  std::span<const float> row_;
  std::vector<double>* phi_;
};

/// Cover-weighted expected leaf value of one tree.
double TreeExpectedValue(const GbtTree& tree, int node_index) {
  const GbtNode& node = tree.nodes[node_index];
  if (node.feature < 0) return node.leaf_value;
  const double left_cover = tree.nodes[node.left].cover;
  const double right_cover = tree.nodes[node.right].cover;
  const double total = left_cover + right_cover;
  if (total <= 0) return 0.0;
  return (left_cover * TreeExpectedValue(tree, node.left) +
          right_cover * TreeExpectedValue(tree, node.right)) /
         total;
}

}  // namespace

void TreeShap(const GbtTree& tree, std::span<const float> row,
              std::vector<double>* phi) {
  TRAIL_CHECK(!tree.nodes.empty());
  if (tree.nodes[0].feature < 0) return;  // constant tree contributes nothing
  ShapWalker walker(tree, row, phi);
  walker.Run();
}

std::vector<double> ShapValues(const GbtClassifier& model,
                               std::span<const float> row, int cls) {
  std::vector<double> phi(row.size(), 0.0);
  for (const auto& round_trees : model.trees()) {
    TreeShap(round_trees[cls], row, &phi);
  }
  return phi;
}

double ExpectedMargin(const GbtClassifier& model, int cls) {
  double total = 0.0;
  for (const auto& round_trees : model.trees()) {
    total += TreeExpectedValue(round_trees[cls], 0);
  }
  return total;
}

}  // namespace trail::ml
