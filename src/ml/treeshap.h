#ifndef TRAIL_ML_TREESHAP_H_
#define TRAIL_ML_TREESHAP_H_

#include <span>
#include <vector>

#include "ml/gbt.h"

namespace trail::ml {

/// Adds the exact SHAP contributions of one regression tree for sample
/// `row` into `phi` (size = num features; phi is not cleared). Implements
/// the polynomial-time Tree SHAP algorithm of Lundberg et al. (2018) using
/// node covers as the background distribution — the same explainer the
/// paper's Fig. 9 beeswarm is built from.
void TreeShap(const GbtTree& tree, std::span<const float> row,
              std::vector<double>* phi);

/// SHAP values of the full GBT ensemble for one class margin: the sum of
/// per-tree contributions over every round's tree for `cls`. Returns a
/// vector of size num-features.
std::vector<double> ShapValues(const GbtClassifier& model,
                               std::span<const float> row, int cls);

/// The expected margin of class `cls` over the tree backgrounds (phi_0):
/// model margin = ExpectedMargin + sum(ShapValues).
double ExpectedMargin(const GbtClassifier& model, int cls);

}  // namespace trail::ml

#endif  // TRAIL_ML_TREESHAP_H_
