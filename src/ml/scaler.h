#ifndef TRAIL_ML_SCALER_H_
#define TRAIL_ML_SCALER_H_

#include "ml/matrix.h"

namespace trail::ml {

/// Standard (z-score) scaler: fit on training data, apply everywhere, per
/// the paper's preprocessing ("mean 0, variance 1" using training-set
/// statistics). Constant columns pass through centered but unscaled.
class StandardScaler {
 public:
  void Fit(const Matrix& x);

  /// Returns the transformed copy of `x`. Must be fitted first.
  Matrix Transform(const Matrix& x) const;

  Matrix FitTransform(const Matrix& x) {
    Fit(x);
    return Transform(x);
  }

  bool fitted() const { return fitted_; }
  const Matrix& mean() const { return mean_; }
  const Matrix& stddev() const { return stddev_; }

 private:
  Matrix mean_;
  Matrix stddev_;
  bool fitted_ = false;
};

}  // namespace trail::ml

#endif  // TRAIL_ML_SCALER_H_
