#ifndef TRAIL_ML_TPE_H_
#define TRAIL_ML_TPE_H_

#include <functional>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace trail::ml {

/// One tunable dimension of a search space.
struct ParamSpec {
  enum class Kind { kUniform, kLogUniform, kInt, kCategorical };

  static ParamSpec Uniform(std::string name, double lo, double hi);
  static ParamSpec LogUniform(std::string name, double lo, double hi);
  static ParamSpec Int(std::string name, int lo, int hi);
  static ParamSpec Categorical(std::string name, int num_choices);

  std::string name;
  Kind kind = Kind::kUniform;
  double lo = 0.0;
  double hi = 1.0;
  int num_choices = 0;  // categorical only
};

struct Trial {
  std::vector<double> values;  // one per ParamSpec, in order
  double loss = 0.0;
};

struct TpeOptions {
  int num_startup_trials = 10;  // pure random before the Parzen model kicks in
  int num_candidates = 24;      // EI candidates sampled per suggestion
  double gamma = 0.25;          // fraction of trials deemed "good"
};

/// Tree-of-Parzen-Estimators sequential optimizer (Bergstra et al., 2013) —
/// the Hyperopt TPE the paper uses to tune XGBoost and Random Forest. Models
/// good/bad trial densities l(x), g(x) per dimension with Parzen windows and
/// proposes the candidate maximizing l(x)/g(x). Minimizes the reported loss.
class TpeOptimizer {
 public:
  TpeOptimizer(std::vector<ParamSpec> space, TpeOptions options,
               uint64_t seed);

  /// Next configuration to evaluate.
  std::vector<double> Suggest();

  /// Records an evaluated configuration.
  void Report(std::vector<double> values, double loss);

  /// Best (lowest-loss) trial so far. Requires >= 1 reported trial.
  const Trial& best() const;

  const std::vector<Trial>& trials() const { return trials_; }
  const std::vector<ParamSpec>& space() const { return space_; }

 private:
  std::vector<double> SampleRandom();
  double LogDensity(const std::vector<const Trial*>& trials, size_t dim,
                    double value) const;

  std::vector<ParamSpec> space_;
  TpeOptions options_;
  Rng rng_;
  std::vector<Trial> trials_;
  size_t best_index_ = 0;
};

/// Convenience driver: runs `num_trials` suggest/evaluate/report rounds and
/// returns the best configuration.
Trial TpeMinimize(const std::vector<ParamSpec>& space,
                  const std::function<double(const std::vector<double>&)>& fn,
                  int num_trials, uint64_t seed,
                  TpeOptions options = TpeOptions());

}  // namespace trail::ml

#endif  // TRAIL_ML_TPE_H_
