#ifndef TRAIL_ML_SMOTE_H_
#define TRAIL_ML_SMOTE_H_

#include "ml/dataset.h"
#include "util/random.h"

namespace trail::ml {

struct SmoteOptions {
  /// Neighbors considered when interpolating (Chawla et al. use 5).
  int k_neighbors = 5;
  /// Per-class cap on samples scanned for neighbor search, to bound the
  /// quadratic kNN on very large classes.
  size_t max_neighbors_pool = 2000;
  /// Oversample each class up to this fraction of the majority count.
  double target_ratio = 1.0;
};

/// SMOTE oversampling (Chawla et al., 2002): synthesizes minority-class
/// samples by interpolating between a real sample and one of its k nearest
/// same-class neighbors. TRAIL applies it to the IOC training folds before
/// fitting the traditional classifiers (paper Section VI-A). Returns a new
/// dataset with the original samples first, synthetic samples appended.
Dataset SmoteOversample(const Dataset& data, const SmoteOptions& options,
                        Rng* rng);

}  // namespace trail::ml

#endif  // TRAIL_ML_SMOTE_H_
