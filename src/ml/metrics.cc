#include "ml/metrics.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace trail::ml {

double Accuracy(const std::vector<int>& truth,
                const std::vector<int>& predicted) {
  TRAIL_CHECK(truth.size() == predicted.size());
  if (truth.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (predicted[i] >= 0 && predicted[i] == truth[i]) ++correct;
  }
  return static_cast<double>(correct) / truth.size();
}

double BalancedAccuracy(const std::vector<int>& truth,
                        const std::vector<int>& predicted, int num_classes) {
  TRAIL_CHECK(truth.size() == predicted.size());
  std::vector<size_t> support(num_classes, 0);
  std::vector<size_t> hits(num_classes, 0);
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] < 0 || truth[i] >= num_classes) continue;
    support[truth[i]]++;
    if (predicted[i] == truth[i]) hits[truth[i]]++;
  }
  double total = 0.0;
  int present = 0;
  for (int c = 0; c < num_classes; ++c) {
    if (support[c] == 0) continue;
    total += static_cast<double>(hits[c]) / support[c];
    ++present;
  }
  return present == 0 ? 0.0 : total / present;
}

std::vector<std::vector<int>> ConfusionMatrix(
    const std::vector<int>& truth, const std::vector<int>& predicted,
    int num_classes) {
  TRAIL_CHECK(truth.size() == predicted.size());
  std::vector<std::vector<int>> cm(num_classes,
                                   std::vector<int>(num_classes, 0));
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] < 0 || truth[i] >= num_classes) continue;
    if (predicted[i] < 0 || predicted[i] >= num_classes) continue;
    cm[truth[i]][predicted[i]]++;
  }
  return cm;
}

double MacroF1(const std::vector<int>& truth, const std::vector<int>& predicted,
               int num_classes) {
  auto cm = ConfusionMatrix(truth, predicted, num_classes);
  double f1_total = 0.0;
  int present = 0;
  for (int c = 0; c < num_classes; ++c) {
    int tp = cm[c][c];
    int fn = 0;
    int fp = 0;
    for (int other = 0; other < num_classes; ++other) {
      if (other == c) continue;
      fn += cm[c][other];
      fp += cm[other][c];
    }
    if (tp + fn == 0) continue;  // class absent from truth
    ++present;
    if (tp == 0) continue;
    double precision = static_cast<double>(tp) / (tp + fp);
    double recall = static_cast<double>(tp) / (tp + fn);
    f1_total += 2.0 * precision * recall / (precision + recall);
  }
  return present == 0 ? 0.0 : f1_total / present;
}

std::vector<double> PerClassF1(const std::vector<int>& truth,
                               const std::vector<int>& predicted,
                               int num_classes) {
  auto cm = ConfusionMatrix(truth, predicted, num_classes);
  std::vector<double> f1(num_classes, 0.0);
  for (int c = 0; c < num_classes; ++c) {
    double tp = cm[c][c];
    double fn = 0.0, fp = 0.0;
    for (int o = 0; o < num_classes; ++o) {
      if (o == c) continue;
      fn += cm[c][o];
      fp += cm[o][c];
    }
    // Count abstentions (predicted < 0) as misses.
    for (size_t i = 0; i < truth.size(); ++i) {
      if (truth[i] == c && predicted[i] < 0) fn += 1.0;
    }
    const double denom = 2.0 * tp + fp + fn;
    f1[c] = denom > 0.0 ? 2.0 * tp / denom : 0.0;
  }
  return f1;
}

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  MeanStd ms;
  if (values.empty()) return ms;
  for (double v : values) ms.mean += v;
  ms.mean /= values.size();
  for (double v : values) ms.std += (v - ms.mean) * (v - ms.mean);
  ms.std = std::sqrt(ms.std / values.size());
  return ms;
}

std::string FormatMeanStd(const MeanStd& ms, int precision) {
  return FormatDouble(ms.mean, precision) + " ± " +
         FormatDouble(ms.std, precision);
}

}  // namespace trail::ml
