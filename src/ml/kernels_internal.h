#ifndef TRAIL_ML_KERNELS_INTERNAL_H_
#define TRAIL_ML_KERNELS_INTERNAL_H_

// Shared between the dispatch driver (kernels.cc) and the ISA-specific
// translation units (kernels_avx2.cc). Every function pointer in KernelOps
// must implement the accumulation policy documented in kernels.h EXACTLY —
// the cross-target bit-identity contract depends on it.

#include <cstddef>
#include <cstdint>

namespace trail::ml::kernels::detail {

/// Canonical reduction block: the k axis of C = A*B and the r axis of
/// C = A^T*B are processed in consecutive blocks of this many elements,
/// each block accumulated in registers and added to C in ascending block
/// order. Part of the pinned numeric policy — changing it changes results.
constexpr size_t kReductionBlock = 256;

/// B-panel width used by PackB / gemm_block_packed.
constexpr size_t kPackNr = 8;

/// Fixed combine tree for the 8-lane striped dot product (C = A*B^T).
/// Lane l holds the partial sum over indices p with p % 8 == l. This exact
/// association order is what _mm256 lo/hi + pairwise adds produce, so the
/// scalar path reproduces the vector path bit for bit.
inline float CombineLanes8(const float* l) {
  const float s0 = l[0] + l[4];
  const float s1 = l[1] + l[5];
  const float s2 = l[2] + l[6];
  const float s3 = l[3] + l[7];
  const float t0 = s0 + s2;
  const float t1 = s1 + s3;
  return t0 + t1;
}

/// Row-range compute kernels over raw row-major buffers. All "gemm" entries
/// ACCUMULATE into C (callers zero-fill or deliberately accumulate).
struct KernelOps {
  const char* name;

  /// C[i0..i1, 0..m) += A[i0..i1, p0..p1) * B[p0..p1, 0..m).
  /// lda == k, ldb == m, ldc == m. Register accumulation over [p0, p1),
  /// sequential in p per output element, then one add into C.
  void (*gemm_block)(const float* a, const float* b, float* c, size_t i0,
                     size_t i1, size_t p0, size_t p1, size_t k, size_t m);

  /// Same contract, B pre-packed by PackB (panel-major, kPackNr columns per
  /// panel, zero-padded tail panel).
  void (*gemm_block_packed)(const float* a, const float* bpack, float* c,
                            size_t i0, size_t i1, size_t p0, size_t p1,
                            size_t k, size_t m);

  /// Sparse-row fast path: C[i, :] += a[i][p] * B[p, :] for every NONZERO
  /// a[i][p], p ascending, accumulating directly into the C row (no
  /// reduction blocking). Only used for one-hot-style inputs.
  void (*gemm_sparse_rows)(const float* a, const float* b, float* c,
                           size_t i0, size_t i1, size_t k, size_t m);

  /// C[i0..i1, j) += dot(A_i, B_j) for j in [0, bn), 8-lane striped
  /// accumulation over the full k with the CombineLanes8 tree. lda=ldb=k.
  void (*gemm_transb_rows)(const float* a, const float* b, float* c,
                           size_t i0, size_t i1, size_t k, size_t bn);

  /// C[i0..i1, 0..m) += sum_r A[r, i] * B[r, 0..m) over r in [r0, r1).
  /// A is ar x ac (i indexes columns of A), B is ar x m. Register
  /// accumulation sequential in r per output element. With skip_zeros,
  /// terms with a[r][i] == 0.0f are skipped (identical skip decision in
  /// every target).
  void (*gemm_transa_block)(const float* a, const float* b, float* c,
                            size_t i0, size_t i1, size_t r0, size_t r1,
                            size_t ac, size_t m, bool skip_zeros);

  /// y[i] += s * x[i].
  void (*axpy)(float* y, const float* x, float s, size_t n);
  /// y[i] *= s.
  void (*scal)(float* y, float s, size_t n);

  /// out[r, c] = max(0, x[r, c] + bias[c]) for r in [r0, r1).
  void (*bias_relu_rows)(const float* x, const float* bias, float* out,
                         size_t r0, size_t r1, size_t cols);
  /// out[r, c] = tanh(x[r, c] + bias[c]).
  void (*bias_tanh_rows)(const float* x, const float* bias, float* out,
                         size_t r0, size_t r1, size_t cols);
  /// grad_x[r, c] += grad_out[r, c] where out[r, c] > 0 (fused
  /// bias-add+ReLU backward, input-gradient half).
  void (*relu_mask_add_rows)(const float* out, const float* grad_out,
                             float* grad_x, size_t r0, size_t r1,
                             size_t cols);
  /// grad_bias[c] += grad_out[r, c] where out[r, c] > 0, r ascending
  /// (fused bias-add+ReLU backward, bias half; single-threaded).
  void (*relu_bias_grad)(const float* out, const float* grad_out,
                         float* grad_bias, size_t rows, size_t cols);

  /// Mean aggregation over CSR row ranges: for v in [v0, v1):
  ///   out[v, :] = sum_e w_e * x[sources[e], :] / sum_e w_e
  /// over e in [offsets[v], offsets[v+1]), edge order ascending, per-column
  /// float accumulation, weight sum in double. weight_sums[v] receives the
  /// total weight (0-neighbor rows produce zero output).
  void (*spmm_mean_rows)(const uint64_t* offsets, const uint32_t* sources,
                         const float* edge_weights, const float* x,
                         float* out, float* weight_sums, size_t v0,
                         size_t v1, size_t cols);

  /// Backward of spmm_mean_rows w.r.t. x over the column range [c0, c1):
  ///   grad_x[src, c] += (w_e / weight_sums[v]) * grad_out[v, c]
  /// iterating v ascending then e ascending (matches the forward edge
  /// order; column-partitioned so parallel writers stay disjoint).
  void (*spmm_mean_backx_cols)(const uint64_t* offsets, size_t num_out,
                               const uint32_t* sources,
                               const float* edge_weights,
                               const float* weight_sums,
                               const float* grad_out, float* grad_x,
                               size_t c0, size_t c1, size_t cols);
};

/// Always available.
const KernelOps* GetScalarOps();

/// Compiled only when the toolchain supports -mavx2 (TRAIL_HAVE_AVX2_TU);
/// callers must additionally runtime-check CPU support before using it.
const KernelOps* GetAvx2Ops();

/// Packs B rows [p0, p1) x [0, m) into kPackNr-wide column panels:
/// element (p, j) lands at bpack[((j / Nr) * (p1 - p0) + (p - p0)) * Nr +
/// j % Nr]; the final panel is zero-padded to Nr columns. Pure data
/// movement — no arithmetic, so packing never affects results.
void PackB(const float* b, size_t p0, size_t p1, size_t m, float* bpack);

}  // namespace trail::ml::kernels::detail

#endif  // TRAIL_ML_KERNELS_INTERNAL_H_
