#include "ml/smote.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/parallel.h"

namespace trail::ml {

namespace {

/// Indices (into `pool`) of the k nearest pool rows to row `q` of `x`,
/// excluding an identical index. Brute force; the pool is capped.
std::vector<size_t> KNearest(const Matrix& x, size_t q,
                             const std::vector<size_t>& pool, int k) {
  std::vector<std::pair<float, size_t>> dists;
  dists.reserve(pool.size());
  auto qrow = x.Row(q);
  for (size_t idx : pool) {
    if (idx == q) continue;
    auto row = x.Row(idx);
    double d2 = 0.0;
    for (size_t c = 0; c < qrow.size(); ++c) {
      double d = static_cast<double>(qrow[c]) - row[c];
      d2 += d * d;
    }
    dists.emplace_back(static_cast<float>(d2), idx);
  }
  size_t keep = std::min<size_t>(k, dists.size());
  std::partial_sort(dists.begin(), dists.begin() + keep, dists.end());
  std::vector<size_t> out;
  out.reserve(keep);
  for (size_t i = 0; i < keep; ++i) out.push_back(dists[i].second);
  return out;
}

}  // namespace

Dataset SmoteOversample(const Dataset& data, const SmoteOptions& options,
                        Rng* rng) {
  std::vector<size_t> counts = data.ClassCounts();
  size_t majority = 0;
  for (size_t c : counts) majority = std::max(majority, c);
  size_t target =
      static_cast<size_t>(std::llround(majority * options.target_ratio));

  std::vector<std::vector<size_t>> per_class(data.num_classes);
  for (size_t i = 0; i < data.y.size(); ++i) {
    per_class[data.y[i]].push_back(i);
  }

  std::vector<std::vector<float>> synthetic_rows;
  std::vector<int> synthetic_labels;
  for (int cls = 0; cls < data.num_classes; ++cls) {
    const auto& members = per_class[cls];
    if (members.size() < 2 || members.size() >= target) continue;
    std::vector<size_t> pool = members;
    if (pool.size() > options.max_neighbors_pool) {
      rng->Shuffle(&pool);
      pool.resize(options.max_neighbors_pool);
    }
    size_t needed = target - members.size();

    // One RNG stream per synthetic sample, forked in sample order. Keying
    // the stream by sample index (never by thread id) is what keeps the
    // oversample bit-identical at any worker count; the dominant cost per
    // sample is the brute-force KNearest scan.
    std::vector<Rng> sample_rngs;
    sample_rngs.reserve(needed);
    for (size_t s = 0; s < needed; ++s) sample_rngs.push_back(rng->Fork());

    std::vector<std::vector<float>> cls_rows(needed);
    std::vector<char> cls_valid(needed, 0);
    ParallelForEachIndex(needed, [&](size_t s) {
      Rng& sample_rng = sample_rngs[s];
      size_t base = members[sample_rng.NextBounded(members.size())];
      std::vector<size_t> neighbors =
          KNearest(data.x, base, pool, options.k_neighbors);
      if (neighbors.empty()) return;
      size_t nb = neighbors[sample_rng.NextBounded(neighbors.size())];
      float gap = static_cast<float>(sample_rng.UniformDouble());
      auto brow = data.x.Row(base);
      auto nrow = data.x.Row(nb);
      std::vector<float> row(brow.size());
      for (size_t c = 0; c < brow.size(); ++c) {
        row[c] = brow[c] + gap * (nrow[c] - brow[c]);
      }
      cls_rows[s] = std::move(row);
      cls_valid[s] = 1;
    }, /*min_chunk=*/8);

    // Append in sample order so the output layout never depends on
    // scheduling.
    for (size_t s = 0; s < needed; ++s) {
      if (!cls_valid[s]) continue;
      synthetic_rows.push_back(std::move(cls_rows[s]));
      synthetic_labels.push_back(cls);
    }
  }

  Dataset out;
  out.num_classes = data.num_classes;
  out.x = Matrix(data.x.rows() + synthetic_rows.size(), data.x.cols());
  for (size_t r = 0; r < data.x.rows(); ++r) {
    auto src = data.x.Row(r);
    auto dst = out.x.Row(r);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  for (size_t s = 0; s < synthetic_rows.size(); ++s) {
    auto dst = out.x.Row(data.x.rows() + s);
    std::copy(synthetic_rows[s].begin(), synthetic_rows[s].end(), dst.begin());
  }
  out.y = data.y;
  out.y.insert(out.y.end(), synthetic_labels.begin(), synthetic_labels.end());
  return out;
}

}  // namespace trail::ml
