#ifndef TRAIL_ML_DECISION_TREE_H_
#define TRAIL_ML_DECISION_TREE_H_

#include <span>
#include <vector>

#include "ml/dataset.h"
#include "util/random.h"

namespace trail::ml {

struct DecisionTreeOptions {
  int max_depth = 16;
  int min_samples_split = 2;
  int min_samples_leaf = 1;
  /// Features examined per split; -1 = all, 0 = floor(sqrt(num_features)).
  int max_features = -1;
};

/// A CART classification tree with Gini impurity splits and class-probability
/// leaves — the unit of the RandomForest below.
class DecisionTree {
 public:
  struct Node {
    int feature = -1;         // -1 for leaves
    float threshold = 0.0f;   // go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    std::vector<float> class_probs;  // populated for leaves
  };

  /// Fits on the subset `indices` of (x, y). `rng` drives feature sampling.
  void Fit(const Matrix& x, const std::vector<int>& y, int num_classes,
           const std::vector<size_t>& indices,
           const DecisionTreeOptions& options, Rng* rng);

  /// Per-class probabilities for one sample row.
  std::vector<float> PredictProba(std::span<const float> row) const;

  int Predict(std::span<const float> row) const;

  size_t num_nodes() const { return nodes_.size(); }
  int max_depth_reached() const { return max_depth_reached_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  int num_classes() const { return num_classes_; }

 private:
  int BuildNode(const Matrix& x, const std::vector<int>& y,
                std::vector<size_t>* indices, size_t begin, size_t end,
                int depth, const DecisionTreeOptions& options, Rng* rng);
  int MakeLeaf(const std::vector<int>& y, const std::vector<size_t>& indices,
               size_t begin, size_t end);

  std::vector<Node> nodes_;
  int num_classes_ = 0;
  int max_depth_reached_ = 0;
};

}  // namespace trail::ml

#endif  // TRAIL_ML_DECISION_TREE_H_
