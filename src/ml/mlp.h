#ifndef TRAIL_ML_MLP_H_
#define TRAIL_ML_MLP_H_

#include <vector>

#include "ml/autograd.h"
#include "ml/dataset.h"

namespace trail::ml {

struct MlpOptions {
  /// Hidden layer widths. The paper's architecture is
  /// {2048, 1024, 512, 128, 64}; TRAIL's default is a proportionally scaled
  /// stack that trains in seconds on CPU at the synthetic-world scale.
  std::vector<size_t> hidden_sizes = {256, 128, 64};
  /// Dropout rate applied to the first `dropout_layers` hidden layers
  /// (paper: 50% on the first three).
  double dropout = 0.5;
  int dropout_layers = 3;
  bool batch_norm = true;
  double learning_rate = 1e-3;
  int epochs = 60;
  size_t batch_size = 128;
  uint64_t seed = 7;
};

/// Feed-forward classifier: Linear -> ReLU -> BatchNorm -> Dropout per
/// hidden layer, softmax cross-entropy output — the "NN" row of the paper's
/// Tables III/IV.
class MlpClassifier {
 public:
  void Fit(const Dataset& train, const MlpOptions& options);

  Matrix PredictProbaBatch(const Matrix& x) const;
  std::vector<int> PredictBatch(const Matrix& x) const;
  int Predict(std::span<const float> row) const;

  int num_classes() const { return num_classes_; }

 private:
  ag::VarPtr Forward(const Matrix& x, bool training, Rng* rng) const;

  struct Layer {
    ag::VarPtr weight;
    ag::VarPtr bias;
    ag::VarPtr gamma;  // batch-norm scale (1 x C)
    ag::VarPtr beta;   // batch-norm shift
    mutable Matrix running_mean;
    mutable Matrix running_var;
    bool has_batch_norm = false;
    double dropout = 0.0;
  };

  std::vector<Layer> layers_;
  ag::VarPtr out_weight_;
  ag::VarPtr out_bias_;
  MlpOptions options_;
  int num_classes_ = 0;
};

}  // namespace trail::ml

#endif  // TRAIL_ML_MLP_H_
