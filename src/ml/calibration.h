#ifndef TRAIL_ML_CALIBRATION_H_
#define TRAIL_ML_CALIBRATION_H_

#include <cstdint>
#include <vector>

#include "ml/matrix.h"

namespace trail::ml {

/// Temperature scaling (Guo et al., 2017): a single scalar T > 0 that
/// rescales logits (or log-probabilities) so predicted confidences match
/// empirical accuracy. The companion to the paper's proposed
/// confidence-thresholding future work — thresholds are only meaningful on
/// calibrated probabilities.
class TemperatureScaler {
 public:
  /// Fits T by minimizing NLL of `probs` (rows = samples, cols = classes,
  /// each row a distribution) against `labels` via golden-section search
  /// on log T. Rows with label < 0 are ignored.
  void Fit(const Matrix& probs, const std::vector<int>& labels);

  /// Recalibrated copy of `probs` (softmax of log(p)/T).
  Matrix Apply(const Matrix& probs) const;

  double temperature() const { return temperature_; }
  bool fitted() const { return fitted_; }

 private:
  double temperature_ = 1.0;
  bool fitted_ = false;
};

/// Expected Calibration Error with `bins` equal-width confidence bins:
/// mean |confidence - accuracy| weighted by bin mass. Rows with label < 0
/// are ignored.
double ExpectedCalibrationError(const Matrix& probs,
                                const std::vector<int>& labels,
                                int bins = 10);

// -- Abstention / open-set helpers (docs/SCENARIOS.md, "Abstention math").
// All of these are sequential double-precision loops: results are
// bit-identical at any thread count and on every kernel backend.

/// Energy score E(x) = -log Σ_c exp(logit_c), computed with a max shift for
/// stability. Lower energy = the model recognizes the input; high energy =
/// out-of-distribution (Liu et al., 2020). `n` must be > 0.
double EnergyScore(const double* logits, size_t n);
double EnergyScore(const std::vector<double>& logits);

/// q-quantile (q in [0,1]) of `values` with linear interpolation between
/// order statistics (the "linear" / type-7 convention). Empty input -> 0.
double Quantile(std::vector<double> values, double q);

/// Rank-based AUROC (Mann-Whitney U with average ranks on ties) of `scores`
/// separating positives from negatives: the probability a random positive
/// scores higher than a random negative. 0.5 when either side is empty.
double Auroc(const std::vector<double>& scores,
             const std::vector<uint8_t>& is_positive);

}  // namespace trail::ml

#endif  // TRAIL_ML_CALIBRATION_H_
