#ifndef TRAIL_ML_CALIBRATION_H_
#define TRAIL_ML_CALIBRATION_H_

#include <vector>

#include "ml/matrix.h"

namespace trail::ml {

/// Temperature scaling (Guo et al., 2017): a single scalar T > 0 that
/// rescales logits (or log-probabilities) so predicted confidences match
/// empirical accuracy. The companion to the paper's proposed
/// confidence-thresholding future work — thresholds are only meaningful on
/// calibrated probabilities.
class TemperatureScaler {
 public:
  /// Fits T by minimizing NLL of `probs` (rows = samples, cols = classes,
  /// each row a distribution) against `labels` via golden-section search
  /// on log T. Rows with label < 0 are ignored.
  void Fit(const Matrix& probs, const std::vector<int>& labels);

  /// Recalibrated copy of `probs` (softmax of log(p)/T).
  Matrix Apply(const Matrix& probs) const;

  double temperature() const { return temperature_; }
  bool fitted() const { return fitted_; }

 private:
  double temperature_ = 1.0;
  bool fitted_ = false;
};

/// Expected Calibration Error with `bins` equal-width confidence bins:
/// mean |confidence - accuracy| weighted by bin mass. Rows with label < 0
/// are ignored.
double ExpectedCalibrationError(const Matrix& probs,
                                const std::vector<int>& labels,
                                int bins = 10);

}  // namespace trail::ml

#endif  // TRAIL_ML_CALIBRATION_H_
