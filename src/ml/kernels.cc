#include "ml/kernels.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "ml/kernels_internal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace trail::ml::kernels {

namespace detail {

// ---------------------------------------------------------------------------
// Scalar target. Every loop mirrors the canonical accumulation order the
// vector targets use (see kernels.h), so "scalar" vs "avx2" is bit-exact.
// ---------------------------------------------------------------------------

namespace {

void ScalarGemmBlock(const float* a, const float* b, float* c, size_t i0,
                     size_t i1, size_t p0, size_t p1, size_t k, size_t m) {
  // j in strips of 8 with a local partial per output element: sequential
  // over p within the block, one add into C afterwards.
  for (size_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * m;
    size_t j = 0;
    for (; j + 8 <= m; j += 8) {
      float acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
      for (size_t p = p0; p < p1; ++p) {
        const float av = arow[p];
        const float* brow = b + p * m + j;
        for (int l = 0; l < 8; ++l) acc[l] += av * brow[l];
      }
      for (int l = 0; l < 8; ++l) crow[j + l] += acc[l];
    }
    for (; j < m; ++j) {
      float acc = 0.0f;
      for (size_t p = p0; p < p1; ++p) acc += arow[p] * b[p * m + j];
      crow[j] += acc;
    }
  }
}

void ScalarGemmBlockPacked(const float* a, const float* bpack, float* c,
                           size_t i0, size_t i1, size_t p0, size_t p1,
                           size_t k, size_t m) {
  const size_t pk = p1 - p0;
  for (size_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * m;
    size_t j = 0;
    for (size_t panel = 0; panel * kPackNr < m; ++panel, j += kPackNr) {
      const float* bp = bpack + panel * pk * kPackNr;
      float acc[kPackNr] = {0, 0, 0, 0, 0, 0, 0, 0};
      for (size_t p = 0; p < pk; ++p) {
        const float av = arow[p0 + p];
        const float* bv = bp + p * kPackNr;
        for (size_t l = 0; l < kPackNr; ++l) acc[l] += av * bv[l];
      }
      const size_t width = m - j < kPackNr ? m - j : kPackNr;
      for (size_t l = 0; l < width; ++l) crow[j + l] += acc[l];
    }
  }
}

void ScalarGemmSparseRows(const float* a, const float* b, float* c, size_t i0,
                          size_t i1, size_t k, size_t m) {
  for (size_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * m;
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * m;
      for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

void ScalarGemmTransBRows(const float* a, const float* b, float* c, size_t i0,
                          size_t i1, size_t k, size_t bn) {
  for (size_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * bn;
    for (size_t j = 0; j < bn; ++j) {
      const float* brow = b + j * k;
      float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
      for (size_t p = 0; p < k; ++p) lanes[p % 8] += arow[p] * brow[p];
      crow[j] += CombineLanes8(lanes);
    }
  }
}

void ScalarGemmTransABlock(const float* a, const float* b, float* c,
                           size_t i0, size_t i1, size_t r0, size_t r1,
                           size_t ac, size_t m, bool skip_zeros) {
  for (size_t i = i0; i < i1; ++i) {
    float* crow = c + i * m;
    size_t j = 0;
    for (; j + 8 <= m; j += 8) {
      float acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
      for (size_t r = r0; r < r1; ++r) {
        const float av = a[r * ac + i];
        if (skip_zeros && av == 0.0f) continue;
        const float* brow = b + r * m + j;
        for (int l = 0; l < 8; ++l) acc[l] += av * brow[l];
      }
      for (int l = 0; l < 8; ++l) crow[j + l] += acc[l];
    }
    for (; j < m; ++j) {
      float acc = 0.0f;
      for (size_t r = r0; r < r1; ++r) {
        const float av = a[r * ac + i];
        if (skip_zeros && av == 0.0f) continue;
        acc += av * b[r * m + j];
      }
      crow[j] += acc;
    }
  }
}

void ScalarAxpy(float* y, const float* x, float s, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += s * x[i];
}

void ScalarScal(float* y, float s, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] *= s;
}

void ScalarBiasReluRows(const float* x, const float* bias, float* out,
                        size_t r0, size_t r1, size_t cols) {
  for (size_t r = r0; r < r1; ++r) {
    const float* in = x + r * cols;
    float* o = out + r * cols;
    for (size_t c = 0; c < cols; ++c) {
      const float v = in[c] + bias[c];
      o[c] = v > 0.0f ? v : 0.0f;
    }
  }
}

void ScalarBiasTanhRows(const float* x, const float* bias, float* out,
                        size_t r0, size_t r1, size_t cols) {
  for (size_t r = r0; r < r1; ++r) {
    const float* in = x + r * cols;
    float* o = out + r * cols;
    for (size_t c = 0; c < cols; ++c) o[c] = std::tanh(in[c] + bias[c]);
  }
}

void ScalarReluMaskAddRows(const float* out, const float* grad_out,
                           float* grad_x, size_t r0, size_t r1, size_t cols) {
  for (size_t r = r0; r < r1; ++r) {
    const float* o = out + r * cols;
    const float* g = grad_out + r * cols;
    float* gx = grad_x + r * cols;
    for (size_t c = 0; c < cols; ++c) {
      if (o[c] > 0.0f) gx[c] += g[c];
    }
  }
}

void ScalarReluBiasGrad(const float* out, const float* grad_out,
                        float* grad_bias, size_t rows, size_t cols) {
  for (size_t r = 0; r < rows; ++r) {
    const float* o = out + r * cols;
    const float* g = grad_out + r * cols;
    for (size_t c = 0; c < cols; ++c) {
      if (o[c] > 0.0f) grad_bias[c] += g[c];
    }
  }
}

void ScalarSpmmMeanRows(const uint64_t* offsets, const uint32_t* sources,
                        const float* edge_weights, const float* x, float* out,
                        float* weight_sums, size_t v0, size_t v1,
                        size_t cols) {
  for (size_t v = v0; v < v1; ++v) {
    float* dst = out + v * cols;
    double total_w = 0.0;
    for (uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      const float w = edge_weights != nullptr ? edge_weights[e] : 1.0f;
      total_w += w;
      const float* src = x + static_cast<size_t>(sources[e]) * cols;
      for (size_t c = 0; c < cols; ++c) dst[c] += w * src[c];
    }
    weight_sums[v] = static_cast<float>(total_w);
    if (total_w > 1e-12) {
      const float inv = static_cast<float>(1.0 / total_w);
      for (size_t c = 0; c < cols; ++c) dst[c] *= inv;
    } else {
      for (size_t c = 0; c < cols; ++c) dst[c] = 0.0f;
    }
  }
}

void ScalarSpmmMeanBackXCols(const uint64_t* offsets, size_t num_out,
                             const uint32_t* sources,
                             const float* edge_weights,
                             const float* weight_sums, const float* grad_out,
                             float* grad_x, size_t c0, size_t c1,
                             size_t cols) {
  for (size_t v = 0; v < num_out; ++v) {
    const float total_w = weight_sums[v];
    if (total_w <= 1e-12f) continue;
    const float* gout = grad_out + v * cols;
    const float inv = 1.0f / total_w;
    for (uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      const float scale =
          (edge_weights != nullptr ? edge_weights[e] : 1.0f) * inv;
      float* gx = grad_x + static_cast<size_t>(sources[e]) * cols;
      for (size_t c = c0; c < c1; ++c) gx[c] += scale * gout[c];
    }
  }
}

constexpr KernelOps kScalarOps = {
    "scalar",
    &ScalarGemmBlock,
    &ScalarGemmBlockPacked,
    &ScalarGemmSparseRows,
    &ScalarGemmTransBRows,
    &ScalarGemmTransABlock,
    &ScalarAxpy,
    &ScalarScal,
    &ScalarBiasReluRows,
    &ScalarBiasTanhRows,
    &ScalarReluMaskAddRows,
    &ScalarReluBiasGrad,
    &ScalarSpmmMeanRows,
    &ScalarSpmmMeanBackXCols,
};

}  // namespace

const KernelOps* GetScalarOps() { return &kScalarOps; }

void PackB(const float* b, size_t p0, size_t p1, size_t m, float* bpack) {
  const size_t pk = p1 - p0;
  const size_t num_panels = (m + kPackNr - 1) / kPackNr;
  for (size_t panel = 0; panel < num_panels; ++panel) {
    const size_t j0 = panel * kPackNr;
    const size_t width = m - j0 < kPackNr ? m - j0 : kPackNr;
    float* dst = bpack + panel * pk * kPackNr;
    for (size_t p = 0; p < pk; ++p) {
      const float* src = b + (p0 + p) * m + j0;
      for (size_t l = 0; l < width; ++l) dst[p * kPackNr + l] = src[l];
      for (size_t l = width; l < kPackNr; ++l) dst[p * kPackNr + l] = 0.0f;
    }
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

namespace {

using detail::KernelOps;

const KernelOps* ResolveTarget(const char* request) {
  const KernelOps* best = detail::GetScalarOps();
#if defined(__x86_64__) || defined(_M_X64)
  const KernelOps* avx2 = detail::GetAvx2Ops();
  if (avx2 != nullptr && __builtin_cpu_supports("avx2")) {
    best = avx2;
  } else {
    avx2 = nullptr;
  }
#else
  const KernelOps* avx2 = nullptr;
#endif
  if (request == nullptr || std::strcmp(request, "native") == 0) return best;
  if (std::strcmp(request, "scalar") == 0) return detail::GetScalarOps();
  if (std::strcmp(request, "avx2") == 0) {
    TRAIL_CHECK(avx2 != nullptr)
        << "TRAIL_KERNELS=avx2 requested but AVX2 is unavailable on this "
           "host/build";
    return avx2;
  }
  TRAIL_CHECK(false) << "unknown TRAIL_KERNELS value '" << request
                     << "' (expected scalar|native|avx2)";
  return best;
}

/// The active table. Resolved once from TRAIL_KERNELS at first use;
/// ScopedTargetOverride swaps it temporarily (tests/benches only).
const KernelOps*& ActiveOpsSlot() {
  static const KernelOps* active =
      ResolveTarget(std::getenv("TRAIL_KERNELS"));
  return active;
}

const KernelOps& Ops() { return *ActiveOpsSlot(); }

const KernelOps* g_override_saved = nullptr;

}  // namespace

const char* ActiveTargetName() { return Ops().name; }

std::vector<std::string> AvailableTargets() {
  std::vector<std::string> targets = {"scalar"};
#if defined(__x86_64__) || defined(_M_X64)
  if (detail::GetAvx2Ops() != nullptr && __builtin_cpu_supports("avx2")) {
    targets.push_back("avx2");
  }
#endif
  return targets;
}

ScopedTargetOverride::ScopedTargetOverride(const std::string& name) {
  TRAIL_CHECK(g_override_saved == nullptr)
      << "nested ScopedTargetOverride is not supported";
  g_override_saved = ActiveOpsSlot();
  ActiveOpsSlot() = ResolveTarget(name.c_str());
}

ScopedTargetOverride::~ScopedTargetOverride() {
  ActiveOpsSlot() = g_override_saved;
  g_override_saved = nullptr;
}

// ---------------------------------------------------------------------------
// High-level drivers: shape checks, shape-only blocking/threading, metrics.
// ---------------------------------------------------------------------------

namespace {

using detail::kPackNr;
using detail::kReductionBlock;

void BumpGemmFlops(size_t n, size_t k, size_t m) {
  // Nominal dense flop count (2*n*k*m), also for the sparse fast path.
  TRAIL_METRIC_ADD("ml.gemm_flops", 2 * n * k * m);
}

/// Packing pays off when the B panel is re-read across many A rows.
bool ShouldPackB(size_t n, size_t k, size_t m) {
  return n >= 32 && m >= kPackNr && k >= 16;
}

void GemmImpl(const Matrix& a, const Matrix& b, Matrix* c) {
  const size_t n = a.rows();
  const size_t k = a.cols();
  const size_t m = b.cols();
  if (n == 0 || k == 0 || m == 0) return;
  const KernelOps& ops = Ops();
  if (ShouldPackB(n, k, m)) {
    const size_t num_panels = (m + kPackNr - 1) / kPackNr;
    AlignedFloats bpack(k * num_panels * kPackNr);
    // Whole-B pack, panel-major per reduction block so the block kernels
    // read contiguous panels: pack each 256-row block separately.
    for (size_t p0 = 0; p0 < k; p0 += kReductionBlock) {
      const size_t p1 = std::min(k, p0 + kReductionBlock);
      // Block band lives at column-panel stride within the shared buffer:
      // store band-by-band (band base = p0 * panels * Nr).
      detail::PackB(b.data(), p0, p1, m, bpack.data() + p0 * num_panels * kPackNr);
    }
    ParallelFor(n, [&](size_t i0, size_t i1) {
      for (size_t p0 = 0; p0 < k; p0 += kReductionBlock) {
        const size_t p1 = std::min(k, p0 + kReductionBlock);
        ops.gemm_block_packed(a.data(),
                              bpack.data() + p0 * num_panels * kPackNr,
                              c->data(), i0, i1, p0, p1, k, m);
      }
    }, /*min_chunk=*/16);
  } else {
    ParallelFor(n, [&](size_t i0, size_t i1) {
      for (size_t p0 = 0; p0 < k; p0 += kReductionBlock) {
        const size_t p1 = std::min(k, p0 + kReductionBlock);
        ops.gemm_block(a.data(), b.data(), c->data(), i0, i1, p0, p1, k, m);
      }
    }, /*min_chunk=*/16);
  }
}

}  // namespace

void Gemm(const Matrix& a, const Matrix& b, Matrix* c, bool accumulate) {
  TRAIL_CHECK(a.cols() == b.rows()) << "Gemm shape mismatch";
  TRAIL_CHECK(c->rows() == a.rows() && c->cols() == b.cols())
      << "Gemm output shape mismatch";
  if (!accumulate) c->Fill(0.0f);
  BumpGemmFlops(a.rows(), a.cols(), b.cols());
  if (obs::DetailedMetricsEnabled()) {
    TRAIL_TRACE_SPAN("kernel.gemm");
    GemmImpl(a, b, c);
    return;
  }
  GemmImpl(a, b, c);
}

void GemmSparseA(const Matrix& a, const Matrix& b, Matrix* c,
                 bool accumulate) {
  TRAIL_CHECK(a.cols() == b.rows()) << "GemmSparseA shape mismatch";
  TRAIL_CHECK(c->rows() == a.rows() && c->cols() == b.cols())
      << "GemmSparseA output shape mismatch";
  if (!accumulate) c->Fill(0.0f);
  const size_t n = a.rows();
  const size_t k = a.cols();
  const size_t m = b.cols();
  if (n == 0 || k == 0 || m == 0) return;
  BumpGemmFlops(n, k, m);
  const KernelOps& ops = Ops();
  ParallelFor(n, [&](size_t i0, size_t i1) {
    ops.gemm_sparse_rows(a.data(), b.data(), c->data(), i0, i1, k, m);
  }, /*min_chunk=*/32);
}

void GemmTransB(const Matrix& a, const Matrix& b, Matrix* c,
                bool accumulate) {
  TRAIL_CHECK(a.cols() == b.cols()) << "GemmTransB shape mismatch";
  TRAIL_CHECK(c->rows() == a.rows() && c->cols() == b.rows())
      << "GemmTransB output shape mismatch";
  if (!accumulate) c->Fill(0.0f);
  const size_t n = a.rows();
  const size_t k = a.cols();
  const size_t bn = b.rows();
  if (n == 0 || k == 0 || bn == 0) return;
  BumpGemmFlops(n, k, bn);
  const KernelOps& ops = Ops();
  ParallelFor(n, [&](size_t i0, size_t i1) {
    ops.gemm_transb_rows(a.data(), b.data(), c->data(), i0, i1, k, bn);
  }, /*min_chunk=*/32);
}

void GemmTransA(const Matrix& a, const Matrix& b, Matrix* c, bool accumulate,
                bool skip_zeros_in_a) {
  TRAIL_CHECK(a.rows() == b.rows()) << "GemmTransA shape mismatch";
  TRAIL_CHECK(c->rows() == a.cols() && c->cols() == b.cols())
      << "GemmTransA output shape mismatch";
  if (!accumulate) c->Fill(0.0f);
  const size_t ar = a.rows();
  const size_t ac = a.cols();
  const size_t m = b.cols();
  if (ar == 0 || ac == 0 || m == 0) return;
  BumpGemmFlops(ar, ac, m);
  const KernelOps& ops = Ops();
  // Split over output rows (columns of A) so threads write disjoint ranges.
  ParallelFor(ac, [&](size_t i0, size_t i1) {
    for (size_t r0 = 0; r0 < ar; r0 += kReductionBlock) {
      const size_t r1 = std::min(ar, r0 + kReductionBlock);
      ops.gemm_transa_block(a.data(), b.data(), c->data(), i0, i1, r0, r1,
                            ac, m, skip_zeros_in_a);
    }
  }, /*min_chunk=*/8);
}

void Axpy(const Matrix& x, float scale, Matrix* y) {
  TRAIL_CHECK(y->SameShape(x)) << "Axpy shape mismatch";
  Ops().axpy(y->data(), x.data(), scale, x.size());
}

void Scal(float scale, Matrix* y) { Ops().scal(y->data(), scale, y->size()); }

void BiasAddRelu(const Matrix& x, const Matrix& bias, Matrix* out) {
  TRAIL_CHECK(bias.rows() == 1 && bias.cols() == x.cols())
      << "BiasAddRelu bias shape mismatch";
  TRAIL_CHECK(out->SameShape(x)) << "BiasAddRelu output shape mismatch";
  const KernelOps& ops = Ops();
  const size_t cols = x.cols();
  ParallelFor(x.rows(), [&](size_t r0, size_t r1) {
    ops.bias_relu_rows(x.data(), bias.data(), out->data(), r0, r1, cols);
  }, /*min_chunk=*/256);
}

void BiasAddTanh(const Matrix& x, const Matrix& bias, Matrix* out) {
  TRAIL_CHECK(bias.rows() == 1 && bias.cols() == x.cols())
      << "BiasAddTanh bias shape mismatch";
  TRAIL_CHECK(out->SameShape(x)) << "BiasAddTanh output shape mismatch";
  const KernelOps& ops = Ops();
  const size_t cols = x.cols();
  ParallelFor(x.rows(), [&](size_t r0, size_t r1) {
    ops.bias_tanh_rows(x.data(), bias.data(), out->data(), r0, r1, cols);
  }, /*min_chunk=*/256);
}

void BiasAddReluBackward(const Matrix& out_value, const Matrix& grad_out,
                         Matrix* grad_x, Matrix* grad_bias) {
  TRAIL_CHECK(grad_out.SameShape(out_value));
  const KernelOps& ops = Ops();
  const size_t cols = out_value.cols();
  if (grad_x != nullptr) {
    TRAIL_CHECK(grad_x->SameShape(out_value));
    ParallelFor(out_value.rows(), [&](size_t r0, size_t r1) {
      ops.relu_mask_add_rows(out_value.data(), grad_out.data(),
                             grad_x->data(), r0, r1, cols);
    }, /*min_chunk=*/256);
  }
  if (grad_bias != nullptr) {
    TRAIL_CHECK(grad_bias->rows() == 1 && grad_bias->cols() == cols);
    ops.relu_bias_grad(out_value.data(), grad_out.data(), grad_bias->data(),
                       out_value.rows(), cols);
  }
}

float SoftmaxRow(const float* logits, float* probs, size_t cols, int label) {
  float max_v = logits[0];
  for (size_t c = 1; c < cols; ++c) max_v = std::max(max_v, logits[c]);
  double total = 0.0;
  for (size_t c = 0; c < cols; ++c) {
    probs[c] = std::exp(logits[c] - max_v);
    total += probs[c];
  }
  const float inv = static_cast<float>(1.0 / total);
  for (size_t c = 0; c < cols; ++c) probs[c] *= inv;
  if (label < 0) return 0.0f;
  return -std::log(std::max(probs[label], 1e-12f));
}

void RowSoftmaxInto(const Matrix& logits, Matrix* out) {
  TRAIL_CHECK(out->SameShape(logits)) << "RowSoftmaxInto shape mismatch";
  const size_t cols = logits.cols();
  if (cols == 0) return;
  ParallelFor(logits.rows(), [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      SoftmaxRow(logits.data() + r * cols, out->data() + r * cols, cols, -1);
    }
  }, /*min_chunk=*/512);
}

void SpmmMeanForward(const uint64_t* offsets, size_t num_out,
                     const uint32_t* sources, const float* edge_weights,
                     const Matrix& x, Matrix* out, float* weight_sums) {
  TRAIL_CHECK(out->rows() == num_out && out->cols() == x.cols())
      << "SpmmMeanForward output shape mismatch";
  const size_t cols = x.cols();
  TRAIL_METRIC_ADD("ml.spmm_edges", offsets[num_out]);
  const KernelOps& ops = Ops();
  ParallelFor(num_out, [&](size_t v0, size_t v1) {
    ops.spmm_mean_rows(offsets, sources, edge_weights, x.data(), out->data(),
                       weight_sums, v0, v1, cols);
  }, /*min_chunk=*/512);
}

void SpmmMeanBackwardX(const uint64_t* offsets, size_t num_out,
                       const uint32_t* sources, const float* edge_weights,
                       const float* weight_sums, const Matrix& grad_out,
                       Matrix* grad_x) {
  const size_t cols = grad_x->cols();
  TRAIL_CHECK(grad_out.rows() == num_out && grad_out.cols() == cols)
      << "SpmmMeanBackwardX shape mismatch";
  const KernelOps& ops = Ops();
  // Column-partitioned: sources repeat across rows, so the per-thread
  // write ranges must be disjoint in the column axis.
  ParallelFor(cols, [&](size_t c0, size_t c1) {
    ops.spmm_mean_backx_cols(offsets, num_out, sources, edge_weights,
                             weight_sums, grad_out.data(), grad_x->data(),
                             c0, c1, cols);
  }, /*min_chunk=*/8);
}

}  // namespace trail::ml::kernels
