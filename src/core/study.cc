#include "core/study.h"

#include <algorithm>

#include "ml/calibration.h"
#include "ml/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace trail::core {

const char* RetrainModeName(RetrainMode mode) {
  switch (mode) {
    case RetrainMode::kScratch:
      return "scratch";
    case RetrainMode::kIncremental:
      return "incremental";
    case RetrainMode::kAuto:
      return "auto";
  }
  return "unknown";
}

namespace {

// Fills the open-set block of `outcome` from truth/predicted/forced/novelty.
// "Novel" means truth < 0: the report's actor tag was unknown to the roster.
// Open-set scoring maps both novel truth and abstentions onto an extra
// "unknown" class K and evaluates macro-F1 over K+1 classes; the forced
// variant scores the argmax predictions in the same K+1 space, where a
// forced-label classifier can never be right about a novel event.
void ComputeOpenSetMetrics(MonthOutcome* outcome, int num_classes) {
  const size_t n = outcome->truth.size();
  size_t attributable = 0, abstained = 0, novel = 0, abstained_novel = 0;
  std::vector<uint8_t> is_novel(n, 0);
  std::vector<int> open_truth(n), open_predicted(n), open_forced(n);
  for (size_t i = 0; i < n; ++i) {
    const int truth = outcome->truth[i];
    const int predicted = outcome->predicted[i];
    const int forced = outcome->forced[i];
    const bool did_abstain = forced >= 0 && predicted < 0;
    is_novel[i] = truth < 0 ? 1 : 0;
    if (forced >= 0) ++attributable;
    if (did_abstain) ++abstained;
    if (truth < 0) ++novel;
    if (did_abstain && truth < 0) ++abstained_novel;
    open_truth[i] = truth < 0 ? num_classes : truth;
    open_predicted[i] = predicted < 0 ? num_classes : predicted;
    open_forced[i] = forced < 0 ? num_classes : forced;
  }
  outcome->abstention_rate =
      attributable > 0 ? static_cast<double>(abstained) / attributable : 0.0;
  outcome->open_set_precision =
      abstained > 0 ? static_cast<double>(abstained_novel) / abstained : 0.0;
  outcome->open_set_recall =
      novel > 0 ? static_cast<double>(abstained_novel) / novel : 0.0;
  outcome->open_set_auroc = ml::Auroc(outcome->novelty, is_novel);
  outcome->open_set_macro_f1 =
      ml::MacroF1(open_truth, open_predicted, num_classes + 1);
  outcome->forced_open_set_macro_f1 =
      ml::MacroF1(open_truth, open_forced, num_classes + 1);
}

}  // namespace

Result<MonthOutcome> Study::RunMonth(
    const std::vector<const osint::PulseReport*>& reports) {
  TRAIL_TRACE_SPAN("study.run_month");
  if (!trail_->models_trained()) {
    return Status::FailedPrecondition("train models before running a study");
  }
  Timer month_timer;
  MonthOutcome outcome;
  outcome.month_index = static_cast<int>(history_.size()) + 1;

  // The month arrives as one unattributed batch: strip the actor tags
  // (attribution is the system's job) and delta-append, then attribute
  // every new event against the incrementally extended TKG.
  std::vector<osint::PulseReport> incoming;
  incoming.reserve(reports.size());
  std::vector<int> truth;
  truth.reserve(reports.size());
  for (const osint::PulseReport* report : reports) {
    osint::PulseReport stripped = *report;
    int actor_id = -1;
    for (size_t c = 0; c < trail_->apt_names().size(); ++c) {
      if (trail_->apt_names()[c] == stripped.apt) {
        actor_id = static_cast<int>(c);
      }
    }
    stripped.apt.clear();
    incoming.push_back(std::move(stripped));
    truth.push_back(actor_id);
  }
  auto delta = trail_->AppendReports(incoming);
  if (!delta.ok()) return delta.status();

  for (size_t i = 0; i < delta->event_nodes.size(); ++i) {
    graph::NodeId event = delta->event_nodes[i];
    if (event == graph::kInvalidNode) continue;  // duplicate delivery
    outcome.event_nodes.push_back(event);
    outcome.truth.push_back(truth[i]);
  }
  // One shared forward for the whole month: every appended event is
  // unlabeled (tags were stripped above, labels merge only after scoring),
  // so the batch is bit-identical to the old per-event AttributeWithGnn
  // loop — just one GNN pass instead of N.
  auto attributions = trail_->AttributeBatchWithGnn(outcome.event_nodes);
  for (size_t i = 0; i < attributions.size(); ++i) {
    const auto& attribution = attributions[i];
    const int forced = attribution.ok() ? attribution->apt : -1;
    const bool abstain =
        attribution.ok() &&
        options_.abstention.ShouldAbstain(attribution->confidence,
                                          attribution->energy);
    outcome.forced.push_back(forced);
    outcome.predicted.push_back(abstain ? -1 : forced);
    outcome.novelty.push_back(attribution.ok() ? attribution->novelty_score
                                               : 0.0);
    outcome.energy.push_back(attribution.ok() ? attribution->energy : 0.0);
  }
  outcome.num_reports = outcome.truth.size();
  const int num_classes = static_cast<int>(trail_->apt_names().size());
  outcome.accuracy = ml::Accuracy(outcome.truth, outcome.predicted);
  outcome.balanced_accuracy =
      ml::BalancedAccuracy(outcome.truth, outcome.predicted, num_classes);
  outcome.macro_f1 = ml::MacroF1(outcome.truth, outcome.predicted, num_classes);
  outcome.per_class_f1 =
      ml::PerClassF1(outcome.truth, outcome.predicted, num_classes);
  ComputeOpenSetMetrics(&outcome, num_classes);

  if (options_.retrain_monthly && outcome.num_reports > 0) {
    for (size_t i = 0; i < outcome.event_nodes.size(); ++i) {
      if (outcome.truth[i] >= 0) {
        trail_->mutable_graph().SetLabel(outcome.event_nodes[i],
                                         outcome.truth[i]);
      }
    }
    TRAIL_RETURN_NOT_OK(Retrain(&outcome));
  }
  best_macro_f1_ = std::max(best_macro_f1_, outcome.macro_f1);
  outcome.wall_ms = month_timer.ElapsedMillis();

  TRAIL_METRIC_INC("study.months_run");
  TRAIL_METRIC_OBSERVE("study.month_macro_f1", outcome.macro_f1);
  TRAIL_METRIC_OBSERVE("study.month_wall_ms", outcome.wall_ms);
  TRAIL_METRIC_OBSERVE("study.retrain_wall_ms", outcome.retrain_wall_ms);
  history_.push_back(outcome);
  return outcome;
}

Status Study::Retrain(MonthOutcome* outcome) {
  TRAIL_TRACE_SPAN("study.retrain");
  Timer retrain_timer;
  RetrainMode mode = options_.retrain_mode;
  bool fallback = false;

  if (mode == RetrainMode::kAuto) {
    const double drop = best_macro_f1_ - outcome->macro_f1;
    if (drop > options_.auto_scratch_drop) {
      // Staleness policy: quality cratered relative to the best month —
      // treat it as concept drift and rebuild the model from scratch.
      mode = RetrainMode::kScratch;
      fallback = true;
      TRAIL_METRIC_INC("study.auto_scratch_fallbacks");
    } else if (options_.abstention.enabled &&
               outcome->abstention_rate > options_.auto_scratch_abstention) {
      // The model stopped recognizing the stream: a surge of abstentions is
      // drift even when macro-F1 over the events it *did* label holds up
      // (novel actors and churned infrastructure don't dent closed-set F1).
      mode = RetrainMode::kScratch;
      fallback = true;
      TRAIL_METRIC_INC("study.abstention_scratch_fallbacks");
    } else {
      mode = RetrainMode::kIncremental;
    }
  }
  if (mode == RetrainMode::kIncremental) {
    Status fine_tune = trail_->FineTuneGnn(options_.fine_tune_epochs);
    if (!fine_tune.ok() &&
        fine_tune.code() == StatusCode::kFailedPrecondition) {
      // The month introduced APT classes the model cannot grow into by
      // fine-tuning; scratch retraining is the only correct update.
      mode = RetrainMode::kScratch;
      fallback = true;
      TRAIL_METRIC_INC("study.class_growth_fallbacks");
    } else {
      TRAIL_RETURN_NOT_OK(fine_tune);
    }
  }
  if (mode == RetrainMode::kScratch) {
    TRAIL_RETURN_NOT_OK(trail_->TrainModels());
  }

  outcome->mode_used = mode;
  outcome->retrained = true;
  outcome->scratch_fallback = fallback;
  outcome->retrain_wall_ms = retrain_timer.ElapsedMillis();
  // The metric macros cache their handle per call site, so each name needs
  // its own site.
  if (mode == RetrainMode::kScratch) {
    TRAIL_METRIC_INC("study.scratch_retrains");
  } else {
    TRAIL_METRIC_INC("study.incremental_retrains");
  }
  return Status::Ok();
}

}  // namespace trail::core
