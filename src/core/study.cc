#include "core/study.h"

#include "ml/metrics.h"

namespace trail::core {

Result<MonthOutcome> Study::RunMonth(
    const std::vector<const osint::PulseReport*>& reports) {
  if (!trail_->models_trained()) {
    return Status::FailedPrecondition("train models before running a study");
  }
  MonthOutcome outcome;
  outcome.month_index = static_cast<int>(history_.size()) + 1;

  for (const osint::PulseReport* report : reports) {
    osint::PulseReport incoming = *report;
    const std::string actor = incoming.apt;
    incoming.apt.clear();  // attribution is the system's job
    auto event = trail_->IngestReport(incoming);
    if (!event.ok()) continue;  // duplicates etc. are skipped, not fatal
    auto attribution = trail_->AttributeWithGnn(event.value());

    int actor_id = -1;
    for (size_t c = 0; c < trail_->apt_names().size(); ++c) {
      if (trail_->apt_names()[c] == actor) actor_id = static_cast<int>(c);
    }
    outcome.event_nodes.push_back(event.value());
    outcome.truth.push_back(actor_id);
    outcome.predicted.push_back(attribution.ok() ? attribution->apt : -1);
  }
  outcome.num_reports = outcome.truth.size();
  outcome.accuracy = ml::Accuracy(outcome.truth, outcome.predicted);
  outcome.balanced_accuracy = ml::BalancedAccuracy(
      outcome.truth, outcome.predicted,
      static_cast<int>(trail_->apt_names().size()));

  if (options_.retrain_monthly && outcome.num_reports > 0) {
    for (size_t i = 0; i < outcome.event_nodes.size(); ++i) {
      if (outcome.truth[i] >= 0) {
        trail_->mutable_graph().SetLabel(outcome.event_nodes[i],
                                         outcome.truth[i]);
      }
    }
    TRAIL_RETURN_NOT_OK(trail_->FineTuneGnn(options_.fine_tune_epochs));
  }
  history_.push_back(outcome);
  return outcome;
}

}  // namespace trail::core
