#include "core/attribution_report.h"

#include <map>

namespace trail::core {

using graph::NodeId;
using graph::NodeType;

JsonValue AttributionReport::ToJson() const {
  JsonValue root = JsonValue::MakeObject();
  root.Set("event", JsonValue::MakeString(event_id));

  auto verdict_json = [](const Trail::Attribution& attribution) {
    JsonValue v = JsonValue::MakeObject();
    v.Set("apt", JsonValue::MakeString(attribution.apt_name));
    v.Set("confidence", JsonValue::MakeNumber(attribution.confidence));
    JsonValue dist = JsonValue::MakeArray();
    for (size_t i = 0; i < attribution.distribution.size() && i < 5; ++i) {
      JsonValue entry = JsonValue::MakeObject();
      entry.Set("apt", JsonValue::MakeString(attribution.distribution[i].first));
      entry.Set("p", JsonValue::MakeNumber(attribution.distribution[i].second));
      dist.Append(std::move(entry));
    }
    v.Set("distribution", std::move(dist));
    return v;
  };
  if (lp_ok) root.Set("label_propagation", verdict_json(lp));
  if (gnn_ok) root.Set("gnn", verdict_json(gnn));

  JsonValue evidence_array = JsonValue::MakeArray();
  for (const Evidence& item : evidence) {
    JsonValue e = JsonValue::MakeObject();
    e.Set("type", JsonValue::MakeString(item.ioc_type));
    e.Set("indicator", JsonValue::MakeString(item.ioc_value));
    e.Set("direct", JsonValue::MakeBool(item.direct));
    JsonValue linked = JsonValue::MakeArray();
    for (const auto& [apt, count] : item.linked_events) {
      JsonValue l = JsonValue::MakeObject();
      l.Set("apt", JsonValue::MakeString(apt));
      l.Set("events", JsonValue::MakeNumber(count));
      linked.Append(std::move(l));
    }
    e.Set("linked_events", std::move(linked));
    evidence_array.Append(std::move(e));
  }
  root.Set("evidence", std::move(evidence_array));
  return root;
}

namespace {

/// Attributed events adjacent to `ioc`, excluding `self`.
std::vector<std::pair<std::string, int>> LinkedEvents(
    const Trail& trail, NodeId ioc, NodeId self) {
  const graph::PropertyGraph& g = trail.graph();
  std::map<std::string, int> counts;
  for (const graph::Neighbor& nb : g.neighbors(ioc)) {
    if (nb.node == self) continue;
    if (g.type(nb.node) != NodeType::kEvent) continue;
    if (g.label(nb.node) < 0) continue;
    counts[trail.apt_names()[g.label(nb.node)]]++;
  }
  return {counts.begin(), counts.end()};
}

}  // namespace

Result<AttributionReport> BuildAttributionReport(const Trail& trail,
                                                 NodeId event,
                                                 int max_evidence) {
  const graph::PropertyGraph& g = trail.graph();
  if (event >= g.num_nodes() || g.type(event) != NodeType::kEvent) {
    return Status::InvalidArgument("not an event node");
  }
  AttributionReport report;
  report.event_id = g.value(event);

  auto lp = trail.AttributeWithLp(event);
  if (lp.ok()) {
    report.lp = lp.value();
    report.lp_ok = true;
  }
  if (trail.models_trained()) {
    auto gnn = trail.AttributeWithGnn(event);
    if (gnn.ok()) {
      report.gnn = gnn.value();
      report.gnn_ok = true;
    }
  }

  // Direct evidence: reported IOCs shared with other attributed events.
  for (const graph::Neighbor& nb : g.neighbors(event)) {
    if (static_cast<int>(report.evidence.size()) >= max_evidence) break;
    auto linked = LinkedEvents(trail, nb.node, event);
    if (linked.empty()) continue;
    Evidence item;
    item.ioc_type = graph::NodeTypeName(g.type(nb.node));
    item.ioc_value = g.value(nb.node);
    item.direct = true;
    item.linked_events = std::move(linked);
    report.evidence.push_back(std::move(item));
  }
  // Indirect evidence: infrastructure one step removed (the enrichment
  // discoveries the paper's case study surfaces).
  for (const graph::Neighbor& nb : g.neighbors(event)) {
    if (static_cast<int>(report.evidence.size()) >= max_evidence) break;
    for (const graph::Neighbor& nb2 : g.neighbors(nb.node)) {
      if (static_cast<int>(report.evidence.size()) >= max_evidence) break;
      if (nb2.node == event || g.type(nb2.node) == NodeType::kEvent) continue;
      auto linked = LinkedEvents(trail, nb2.node, event);
      if (linked.empty()) continue;
      Evidence item;
      item.ioc_type = graph::NodeTypeName(g.type(nb2.node));
      item.ioc_value = g.value(nb2.node);
      item.direct = false;
      item.linked_events = std::move(linked);
      report.evidence.push_back(std::move(item));
    }
  }
  return report;
}

}  // namespace trail::core
