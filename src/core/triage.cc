#include "core/triage.h"

#include <algorithm>
#include <unordered_set>

#include "graph/algorithms.h"
#include "graph/analytics.h"
#include "util/logging.h"

namespace trail::core {

using graph::NodeId;
using graph::NodeType;

std::vector<TriageItem> TriageEvent(const graph::PropertyGraph& g,
                                    const graph::CsrGraph& csr,
                                    NodeId event,
                                    const TriageOptions& options,
                                    graph::TraversalScratch* scratch) {
  TRAIL_CHECK(event < g.num_nodes() && g.type(event) == NodeType::kEvent)
      << "triage target must be an event node";

  std::vector<double> pagerank =
      graph::PageRank(csr, 0.85, options.pagerank_iterations);
  double max_rank = 1e-12;
  for (double r : pagerank) max_rank = std::max(max_rank, r);
  int max_reuse = 1;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_reuse = std::max(max_reuse, g.report_count(v));
  }

  std::unordered_set<NodeId> direct;
  for (const graph::Neighbor& nb : g.neighbors(event)) {
    direct.insert(nb.node);
  }

  graph::TraversalScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  std::vector<TriageItem> items;
  for (NodeId node :
       graph::KHopNeighborhood(csr, std::vector<NodeId>{event}, 2, scratch)) {
    if (node == event) continue;
    NodeType type = g.type(node);
    if (type == NodeType::kEvent || type == NodeType::kAsn) continue;
    TriageItem item;
    item.node = node;
    item.type_name = graph::NodeTypeName(type);
    item.value = g.value(node);
    item.reuse_count = g.report_count(node);
    item.direct = direct.count(node) > 0;
    const double centrality = pagerank[node] / max_rank;
    const double reuse =
        static_cast<double>(item.reuse_count) / max_reuse;
    item.score = options.centrality_weight * centrality +
                 (1.0 - options.centrality_weight) * reuse +
                 (item.direct ? 0.05 : 0.0);  // tie-break toward reported IOCs
    items.push_back(std::move(item));
  }
  std::sort(items.begin(), items.end(),
            [](const TriageItem& a, const TriageItem& b) {
              return a.score > b.score;
            });
  if (static_cast<int>(items.size()) > options.max_items) {
    items.resize(options.max_items);
  }
  return items;
}

}  // namespace trail::core
