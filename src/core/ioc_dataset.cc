#include "core/ioc_dataset.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace trail::core {

using graph::NodeId;
using graph::NodeType;

namespace {

IocDataset ExtractImpl(const graph::PropertyGraph& graph, NodeType type,
                       int num_classes,
                       const std::vector<uint8_t>* event_visible) {
  IocDataset out;
  std::vector<std::vector<float>> rows;
  std::vector<int> labels;
  for (NodeId node : graph.NodesOfType(type)) {
    if (!graph.first_order(node) || !graph.has_features(node)) continue;
    int label = graph::kNoLabel;
    bool multi = false;
    for (const graph::Neighbor& nb : graph.neighbors(node)) {
      if (graph.type(nb.node) != NodeType::kEvent) continue;
      if (event_visible != nullptr && !(*event_visible)[nb.node]) continue;
      int event_label = graph.label(nb.node);
      if (event_label < 0) continue;
      if (label == graph::kNoLabel) {
        label = event_label;
      } else if (label != event_label) {
        multi = true;
        break;
      }
    }
    if (multi || label < 0 || label >= num_classes) continue;
    rows.push_back(graph.features(node));
    labels.push_back(label);
    out.nodes.push_back(node);
  }
  out.data.x = ml::Matrix::FromRows(rows);
  out.data.y = std::move(labels);
  out.data.num_classes = num_classes;
  return out;
}

}  // namespace

IocDataset ExtractIocDataset(const graph::PropertyGraph& graph,
                             NodeType type, int num_classes) {
  return ExtractImpl(graph, type, num_classes, nullptr);
}

IocDataset ExtractIocDatasetMasked(const graph::PropertyGraph& graph,
                                   NodeType type, int num_classes,
                                   const std::vector<uint8_t>& event_visible) {
  return ExtractImpl(graph, type, num_classes, &event_visible);
}

EventIocIndex BuildEventIocIndex(const graph::PropertyGraph& graph,
                                 const IocDataset& dataset) {
  std::unordered_map<NodeId, size_t> row_of;
  for (size_t i = 0; i < dataset.nodes.size(); ++i) {
    row_of.emplace(dataset.nodes[i], i);
  }
  EventIocIndex index;
  for (NodeId event : graph.NodesOfType(NodeType::kEvent)) {
    std::vector<size_t> rows;
    for (const graph::Neighbor& nb : graph.neighbors(event)) {
      auto it = row_of.find(nb.node);
      if (it != row_of.end()) rows.push_back(it->second);
    }
    index.events.push_back(event);
    index.rows_per_event.push_back(std::move(rows));
  }
  return index;
}

int ModeVote(const std::vector<int>& ioc_predictions,
             const std::vector<size_t>& rows) {
  if (rows.empty()) return -1;
  std::unordered_map<int, int> counts;
  for (size_t row : rows) {
    TRAIL_CHECK(row < ioc_predictions.size());
    if (ioc_predictions[row] >= 0) counts[ioc_predictions[row]]++;
  }
  int best = -1;
  int best_count = 0;
  for (const auto& [cls, count] : counts) {
    if (count > best_count || (count == best_count && cls < best)) {
      best = cls;
      best_count = count;
    }
  }
  return best;
}

}  // namespace trail::core
