#ifndef TRAIL_CORE_IOC_DATASET_H_
#define TRAIL_CORE_IOC_DATASET_H_

#include <vector>

#include "graph/property_graph.h"
#include "ml/dataset.h"

namespace trail::core {

/// A labeled IOC dataset extracted from the TKG plus the originating node
/// ids (parallel to the dataset rows).
struct IocDataset {
  ml::Dataset data;
  std::vector<graph::NodeId> nodes;
};

/// Extracts the individual-IOC attribution dataset for one IOC node type
/// (paper Section VII-A): first-order IOCs adjacent to exactly one distinct
/// event label — multi-labeled and secondary IOCs are excluded. Labels are
/// the adjacent events' APT ids; `num_classes` fixes the label arity.
IocDataset ExtractIocDataset(const graph::PropertyGraph& graph,
                             graph::NodeType type, int num_classes);

/// Fold-aware variant: only events with `event_visible[node] != 0` supply
/// labels, so an IOC shared between a training and a held-out event is
/// labeled purely from the training side (no label leakage in the
/// event-attribution protocol). `event_visible` is indexed by node id.
IocDataset ExtractIocDatasetMasked(const graph::PropertyGraph& graph,
                                   graph::NodeType type, int num_classes,
                                   const std::vector<uint8_t>& event_visible);

/// The per-event IOC membership used for event-level voting: for each event
/// node, the dataset row indices (into `dataset.nodes`) of its first-order
/// IOCs.
struct EventIocIndex {
  std::vector<graph::NodeId> events;
  std::vector<std::vector<size_t>> rows_per_event;  // parallel to events
};
EventIocIndex BuildEventIocIndex(const graph::PropertyGraph& graph,
                                 const IocDataset& dataset);

/// Majority vote (mode) over per-IOC predictions for one event; ties break
/// toward the lower class id; -1 when `rows` is empty — the paper's
/// event-level protocol for the traditional classifiers.
int ModeVote(const std::vector<int>& ioc_predictions,
             const std::vector<size_t>& rows);

}  // namespace trail::core

#endif  // TRAIL_CORE_IOC_DATASET_H_
