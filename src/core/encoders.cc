#include "core/encoders.h"

#include <unordered_map>

#include "util/logging.h"

namespace trail::core {

using graph::NodeId;
using graph::NodeType;

namespace {

ml::Matrix FeaturesOfType(const graph::PropertyGraph& graph, NodeType type) {
  std::vector<std::vector<float>> rows;
  for (NodeId node : graph.NodesOfType(type)) {
    if (graph.has_features(node)) rows.push_back(graph.features(node));
  }
  return ml::Matrix::FromRows(rows);
}

}  // namespace

void IocEncoders::Fit(const graph::PropertyGraph& graph,
                      const gnn::AutoencoderOptions& options) {
  encoding_dim_ = options.encoding;
  ml::Matrix url_x = FeaturesOfType(graph, NodeType::kUrl);
  ml::Matrix ip_x = FeaturesOfType(graph, NodeType::kIp);
  ml::Matrix domain_x = FeaturesOfType(graph, NodeType::kDomain);
  TRAIL_CHECK(url_x.rows() > 0 && ip_x.rows() > 0 && domain_x.rows() > 0)
      << "graph lacks featured IOCs of every type";
  gnn::AutoencoderOptions url_opts = options;
  gnn::AutoencoderOptions ip_opts = options;
  ip_opts.seed = options.seed + 1;
  gnn::AutoencoderOptions domain_opts = options;
  domain_opts.seed = options.seed + 2;
  url_.Fit(url_x, url_opts);
  ip_.Fit(ip_x, ip_opts);
  domain_.Fit(domain_x, domain_opts);
  fitted_ = true;
}

ml::Matrix IocEncoders::EncodeAll(const graph::PropertyGraph& graph) const {
  TRAIL_CHECK(fitted_) << "encode before fit";
  ml::Matrix out(graph.num_nodes(), encoding_dim_);

  auto encode_type = [&](NodeType type, const gnn::Autoencoder& encoder) {
    std::vector<NodeId> nodes;
    std::vector<std::vector<float>> rows;
    for (NodeId node : graph.NodesOfType(type)) {
      if (!graph.has_features(node)) continue;
      nodes.push_back(node);
      rows.push_back(graph.features(node));
    }
    if (nodes.empty()) return;
    ml::Matrix encoded = encoder.Encode(ml::Matrix::FromRows(rows));
    for (size_t i = 0; i < nodes.size(); ++i) {
      auto src = encoded.Row(i);
      auto dst = out.Row(nodes[i]);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  };
  encode_type(NodeType::kUrl, url_);
  encode_type(NodeType::kIp, ip_);
  encode_type(NodeType::kDomain, domain_);
  return out;
}

ml::Matrix IocEncoders::EncodeFrom(const graph::PropertyGraph& graph,
                                   NodeId first_node) const {
  TRAIL_CHECK(fitted_) << "encode before fit";
  TRAIL_CHECK(first_node <= graph.num_nodes());
  ml::Matrix out(graph.num_nodes() - first_node, encoding_dim_);

  auto encode_type = [&](NodeType type, const gnn::Autoencoder& encoder) {
    std::vector<NodeId> nodes;
    std::vector<std::vector<float>> rows;
    for (NodeId node : graph.NodesOfType(type)) {
      if (node < first_node || !graph.has_features(node)) continue;
      nodes.push_back(node);
      rows.push_back(graph.features(node));
    }
    if (nodes.empty()) return;
    ml::Matrix encoded = encoder.Encode(ml::Matrix::FromRows(rows));
    for (size_t i = 0; i < nodes.size(); ++i) {
      auto src = encoded.Row(i);
      auto dst = out.Row(nodes[i] - first_node);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  };
  encode_type(NodeType::kUrl, url_);
  encode_type(NodeType::kIp, ip_);
  encode_type(NodeType::kDomain, domain_);
  return out;
}

void IocEncoders::SaveState(BinaryWriter* w) const {
  TRAIL_CHECK(fitted_) << "save before fit";
  w->U64(encoding_dim_);
  url_.SaveState(w);
  ip_.SaveState(w);
  domain_.SaveState(w);
}

Status IocEncoders::LoadState(BinaryReader* r) {
  const size_t encoding_dim = r->U64();
  TRAIL_RETURN_NOT_OK(url_.LoadState(r));
  TRAIL_RETURN_NOT_OK(ip_.LoadState(r));
  TRAIL_RETURN_NOT_OK(domain_.LoadState(r));
  if (url_.encoding_dim() != encoding_dim ||
      ip_.encoding_dim() != encoding_dim ||
      domain_.encoding_dim() != encoding_dim) {
    r->MarkFailed();
    return Status::ParseError("IOC encoder dimensions disagree");
  }
  encoding_dim_ = encoding_dim;
  fitted_ = true;
  return Status::Ok();
}

gnn::GnnGraph BuildGnnGraph(const graph::PropertyGraph& graph,
                            const ml::Matrix& encoded) {
  TRAIL_CHECK(encoded.rows() == graph.num_nodes());
  gnn::GnnGraph g;
  g.num_nodes = graph.num_nodes();
  g.node_type.resize(g.num_nodes);
  g.encoded = encoded;
  g.spec.offsets.assign(g.num_nodes + 1, 0);
  for (NodeId v = 0; v < g.num_nodes; ++v) {
    g.node_type[v] = static_cast<int>(graph.type(v));
    g.spec.offsets[v + 1] = g.spec.offsets[v] + graph.degree(v);
    if (graph.type(v) == NodeType::kEvent) g.events.push_back(v);
  }
  g.spec.sources.resize(g.spec.offsets[g.num_nodes]);
  g.edge_type.resize(g.spec.offsets[g.num_nodes]);
  size_t cursor = 0;
  for (NodeId v = 0; v < g.num_nodes; ++v) {
    for (const graph::Neighbor& nb : graph.neighbors(v)) {
      g.spec.sources[cursor] = nb.node;
      g.edge_type[cursor++] = static_cast<int>(nb.type);
    }
  }
  return g;
}

gnn::GnnGraph BuildGnnSubgraph(const graph::PropertyGraph& graph,
                               const ml::Matrix& encoded,
                               const std::vector<NodeId>& nodes) {
  std::unordered_map<NodeId, uint32_t> local;
  local.reserve(nodes.size());
  for (uint32_t i = 0; i < nodes.size(); ++i) local.emplace(nodes[i], i);

  gnn::GnnGraph g;
  g.num_nodes = nodes.size();
  g.node_type.resize(g.num_nodes);
  g.encoded = ml::Matrix(g.num_nodes, encoded.cols());
  g.spec.offsets.assign(g.num_nodes + 1, 0);

  std::vector<std::vector<std::pair<uint32_t, int>>> local_adj(g.num_nodes);
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    NodeId v = nodes[i];
    g.node_type[i] = static_cast<int>(graph.type(v));
    auto src = encoded.Row(v);
    auto dst = g.encoded.Row(i);
    std::copy(src.begin(), src.end(), dst.begin());
    if (graph.type(v) == NodeType::kEvent) g.events.push_back(i);
    for (const graph::Neighbor& nb : graph.neighbors(v)) {
      auto it = local.find(nb.node);
      if (it != local.end()) {
        local_adj[i].emplace_back(it->second, static_cast<int>(nb.type));
      }
    }
  }
  for (uint32_t i = 0; i < g.num_nodes; ++i) {
    g.spec.offsets[i + 1] = g.spec.offsets[i] + local_adj[i].size();
  }
  g.spec.sources.resize(g.spec.offsets[g.num_nodes]);
  g.edge_type.resize(g.spec.offsets[g.num_nodes]);
  size_t cursor = 0;
  for (uint32_t i = 0; i < g.num_nodes; ++i) {
    for (const auto& [nb, type] : local_adj[i]) {
      g.spec.sources[cursor] = nb;
      g.edge_type[cursor++] = type;
    }
  }
  return g;
}

void ExtendGnnGraph(const graph::PropertyGraph& graph,
                    const ml::Matrix& encoded_new, gnn::GnnGraph* g) {
  const size_t old_n = g->num_nodes;
  TRAIL_CHECK(old_n + encoded_new.rows() == graph.num_nodes())
      << "encoded_new does not cover exactly the appended nodes";
  g->encoded.AppendRows(encoded_new);
  g->num_nodes = graph.num_nodes();
  g->node_type.resize(g->num_nodes);
  for (NodeId v = old_n; v < g->num_nodes; ++v) {
    g->node_type[v] = static_cast<int>(graph.type(v));
    if (graph.type(v) == NodeType::kEvent) g->events.push_back(v);
  }
  // Appended edges extend old nodes' neighborhoods too, so the spec is
  // rebuilt over the full graph (cheap next to encoding/training).
  g->spec.offsets.assign(g->num_nodes + 1, 0);
  for (NodeId v = 0; v < g->num_nodes; ++v) {
    g->spec.offsets[v + 1] = g->spec.offsets[v] + graph.degree(v);
  }
  g->spec.sources.resize(g->spec.offsets[g->num_nodes]);
  g->edge_type.resize(g->spec.offsets[g->num_nodes]);
  size_t cursor = 0;
  for (NodeId v = 0; v < g->num_nodes; ++v) {
    for (const graph::Neighbor& nb : graph.neighbors(v)) {
      g->spec.sources[cursor] = nb.node;
      g->edge_type[cursor++] = static_cast<int>(nb.type);
    }
  }
}

}  // namespace trail::core
