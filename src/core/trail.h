#ifndef TRAIL_CORE_TRAIL_H_
#define TRAIL_CORE_TRAIL_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/encoders.h"
#include "core/tkg_builder.h"
#include "gnn/event_gnn.h"
#include "graph/csr.h"
#include "util/json.h"

namespace trail::core {

struct TrailOptions {
  TkgBuildOptions build;
  gnn::AutoencoderOptions autoencoder;
  gnn::EventGnnOptions gnn;
  /// Label-propagation depth used by AttributeWithLp.
  int lp_layers = 4;
};

/// Serializes the full option tree for run manifests, so every recorded run
/// can be reproduced from its manifest alone.
JsonValue OptionsToJson(const TrailOptions& options);

/// The TRAIL system facade — the paper's full pipeline behind one object:
/// ingest attributed OSINT reports into the TKG, train the analysis models,
/// and attribute (new) events by label propagation or by the GNN. Examples
/// and the longitudinal study drive this API; the reproduction benches use
/// the lower-level modules directly for their k-fold protocols.
class Trail {
 public:
  Trail(const osint::FeedClient* feed, TrailOptions options);

  /// Merges reports into the TKG (initial load or monthly updates).
  Status Ingest(const std::vector<std::string>& report_jsons);
  Result<graph::NodeId> IngestReport(const osint::PulseReport& report);

  /// Delta-appends a batch (typically one month) of parsed reports and
  /// incrementally extends the derived caches instead of invalidating them:
  /// the CSR grows via CsrGraph::Append over the new edge range, and the
  /// model view encodes only the new nodes (IocEncoders::EncodeFrom +
  /// ExtendGnnGraph). Both extensions are bitwise identical to a
  /// from-scratch rebuild, so every attribution after an append matches the
  /// Ingest-then-rebuild path exactly — just without the O(graph) rebuild.
  Result<TkgAppendDelta> AppendReports(
      const std::vector<osint::PulseReport>& reports);

  /// Fits the autoencoders (once) and trains the GNN from scratch on every
  /// currently-labeled event.
  Status TrainModels();

  /// Continues GNN training on the current TKG (the paper's monthly
  /// fine-tune: "<10 epochs before convergence"). Fails FailedPrecondition
  /// when the TKG has discovered APT classes the trained model does not
  /// know about — the caller must retrain from scratch to grow the class
  /// space.
  Status FineTuneGnn(int epochs = 8);

  /// Writes the trained models (APT label space, the three IOC
  /// autoencoders, and the GNN) to `path` as one versioned binary blob
  /// (magic "TCK1"). The longitudinal warm start loads this instead of
  /// refitting encoders and retraining from scratch.
  Status SaveCheckpoint(const std::string& path) const;

  /// Restores models written by SaveCheckpoint. The checkpoint's APT label
  /// space must exactly match this instance's TKG (same names, same order);
  /// a corrupt, truncated, or mismatched blob fails cleanly and leaves the
  /// models untrained.
  ///
  /// Hot-swap semantics: the new model slot — encoders, GNN, and the
  /// pre-encoded model view of the current graph — is built entirely off to
  /// the side and installed with one atomic shared-ptr store. Attribution
  /// calls in flight on other threads keep the slot they snapshotted at
  /// entry, which retires only when the last such reader drains, so a
  /// serving deployment (serve::AttributionService) swaps monthly retrains
  /// in with zero downtime and zero torn reads. LoadCheckpoint is the only
  /// mutator that is safe to run concurrently with attribution reads; every
  /// other mutator (Ingest, AppendReports, TrainModels, FineTuneGnn) still
  /// requires external write exclusion.
  Status LoadCheckpoint(const std::string& path);

  struct Attribution {
    int apt = -1;
    std::string apt_name;
    double confidence = 0.0;
    /// Full class distribution, descending by probability.
    std::vector<std::pair<std::string, double>> distribution;
  };

  /// Attributes an event node via label propagation, seeding from every
  /// other labeled event. Fails NotFound when no label mass reaches it.
  Result<Attribution> AttributeWithLp(graph::NodeId event) const;

  /// Attributes an event node with the trained GNN. When
  /// `hide_neighbor_labels` is true the model sees no labels at all (the
  /// case study's "realistic setting").
  Result<Attribution> AttributeWithGnn(graph::NodeId event,
                                       bool hide_neighbor_labels = false) const;

  /// Attributes a batch of event nodes in (at best) one GNN forward pass.
  /// Element i is exactly what AttributeWithGnn(events[i],
  /// hide_neighbor_labels) would return — same statuses, bit-identical
  /// probabilities — but events whose visible-label vector coincides share
  /// a single forward. Unlabeled events (every serving request: the node
  /// under attribution carries no analyst label yet) and all events under
  /// hide_neighbor_labels see the identical label context, so a serving
  /// micro-batch of N requests costs one forward instead of N. Already
  /// labeled events each exclude their own label and therefore fall back to
  /// a per-event forward (deduplicated by node id).
  std::vector<Result<Attribution>> AttributeBatchWithGnn(
      const std::vector<graph::NodeId>& events,
      bool hide_neighbor_labels = false) const;

  /// Event node for a report id; kInvalidNode when absent.
  graph::NodeId FindEvent(const std::string& report_id) const;

  /// Writes a run manifest (build info, the option tree, graph scale, and
  /// every registry metric) to `path` — the machine-readable record of what
  /// this pipeline instance did.
  Status WriteRunManifest(const std::string& path) const;

  const graph::PropertyGraph& graph() const { return builder_.graph(); }
  graph::PropertyGraph& mutable_graph() { return builder_.mutable_graph(); }
  const TkgBuilder& builder() const { return builder_; }
  const std::vector<std::string>& apt_names() const {
    return builder_.apt_names();
  }
  /// References into the currently installed model slot. Valid until the
  /// next LoadCheckpoint (hot-swap) retires the slot; single-threaded
  /// callers (benches, examples, tests) never notice.
  const IocEncoders& encoders() const { return Slot()->encoders; }
  const gnn::EventGnn& event_gnn() const { return Slot()->gnn; }
  bool models_trained() const { return Slot()->gnn.trained(); }

  /// Monotonic model generation: 0 until the first TrainModels /
  /// LoadCheckpoint succeeds, then bumped by every successful one. A
  /// serving deployment surfaces this in /statusz so an operator can
  /// confirm a hot-swap actually took.
  uint64_t model_generation() const {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  /// One generation of the trained models plus the lazily built model view
  /// of the TKG they encode. Attribution readers snapshot the slot pointer
  /// once at entry; LoadCheckpoint installs a fully built replacement with
  /// an atomic store, and the old generation is freed when its last
  /// in-flight reader releases it (drain-before-retire by refcount).
  struct ModelSlot {
    IocEncoders encoders;
    gnn::EventGnn gnn;
    /// Model view of the graph under `encoders`; built on first use under
    /// `view_mu`, extended in place by AppendReports (write-exclusive), and
    /// prebuilt eagerly by LoadCheckpoint so a hot-swap never stalls the
    /// first post-swap batch on EncodeAll.
    mutable std::mutex view_mu;
    std::shared_ptr<gnn::GnnGraph> view;
  };

  std::shared_ptr<ModelSlot> Slot() const {
    return models_.load(std::memory_order_acquire);
  }
  void InvalidateCaches();
  const graph::CsrGraph& Csr() const;
  /// The slot's model view, built lazily from the current graph.
  const gnn::GnnGraph& ViewOf(ModelSlot& slot) const;
  Attribution MakeAttribution(const std::vector<double>& probs) const;

  TrailOptions options_;
  TkgBuilder builder_;
  std::atomic<std::shared_ptr<ModelSlot>> models_;
  std::atomic<uint64_t> generation_{0};

  mutable std::unique_ptr<graph::CsrGraph> csr_cache_;
};

}  // namespace trail::core

#endif  // TRAIL_CORE_TRAIL_H_
