#ifndef TRAIL_CORE_TRAIL_H_
#define TRAIL_CORE_TRAIL_H_

#include <atomic>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/encoders.h"
#include "core/tkg_builder.h"
#include "gnn/event_gnn.h"
#include "graph/csr.h"
#include "graph/path/path_engine.h"
#include "util/json.h"

namespace trail::core {

/// The abstention (open-set) operating point: when attribution should say
/// "unknown" instead of forcing a label. Two complementary detectors —
/// max-softmax confidence (novelty_score = 1 - confidence) and the energy
/// score E = -logsumexp(logits) — each with its own threshold; either one
/// firing abstains. Thresholds come from Trail::CalibrateAbstention, which
/// pins them to quantiles of held-out known-actor events (docs/SCENARIOS.md).
/// Disabled by default: every reply then carries novelty_score/energy but
/// `unknown` stays false, preserving pre-abstention behavior bit for bit.
struct AbstentionPolicy {
  bool enabled = false;
  /// Abstain when max-softmax confidence falls strictly below this.
  double min_confidence = 0.0;
  /// Abstain when the energy score rises strictly above this.
  double max_energy = std::numeric_limits<double>::infinity();

  bool ShouldAbstain(double confidence, double energy) const {
    return enabled && (confidence < min_confidence || energy > max_energy);
  }
};

struct TrailOptions {
  TkgBuildOptions build;
  gnn::AutoencoderOptions autoencoder;
  gnn::EventGnnOptions gnn;
  /// Label-propagation depth used by AttributeWithLp.
  int lp_layers = 4;
  /// Initial abstention operating point (usually recalibrated at runtime via
  /// Trail::CalibrateAbstention).
  AbstentionPolicy abstention;
};

/// Serializes the full option tree for run manifests, so every recorded run
/// can be reproduced from its manifest alone.
JsonValue OptionsToJson(const TrailOptions& options);

/// One immutable, atomically published snapshot of everything the inference
/// path reads: the TKG, its CSR form, the trained models, and the encoded
/// model view — the RCU generalization of the model hot-swap slot. Readers
/// pin an epoch with one acquire load (Trail::PinEpoch) and hold it for the
/// duration of a batch; publishers build the next epoch entirely off to the
/// side and install it with one atomic store. Nothing in an epoch is ever
/// mutated after publication, so a pinned epoch is bitwise stable no matter
/// how many appends or hot-swaps land while a batch is in flight, and a
/// retired epoch frees itself when the last in-flight reader drops its
/// reference (drain-before-retire by shared_ptr refcount — no reader locks,
/// no reader-writer convoy).
struct Epoch {
  /// Bumped by every publish (append, hot-swap, or explicit PublishEpoch).
  uint64_t epoch_generation = 0;
  /// Trail::model_generation at publish time (bumps only on model swaps).
  uint64_t model_generation = 0;
  std::shared_ptr<const graph::PropertyGraph> graph;
  std::shared_ptr<const graph::CsrGraph> csr;
  /// Alias into the owning model slot: keeps the whole slot alive.
  std::shared_ptr<const IocEncoders> encoders;
  std::shared_ptr<const gnn::EventGnn> gnn;
  std::shared_ptr<const gnn::GnnGraph> view;
  /// The evidence-path plane (reachability index + k-shortest-path weights)
  /// consistent with `graph`/`csr`. Shared structurally across hot-swaps
  /// (the TKG did not change), deep-copied on append publishes.
  std::shared_ptr<const graph::path::PathEngine> paths;
  /// Bumps with every publish (== epoch_generation): /statusz surfaces it
  /// so an operator can confirm the evidence index tracked the epoch.
  uint64_t paths_generation = 0;
  std::vector<std::string> apt_names;
  /// Abstention operating point at publish time: a pinned batch applies one
  /// consistent policy even while SetAbstentionPolicy races it.
  AbstentionPolicy abstention;

  /// Test-only retirement hook (SetEpochRetireProbeForTest): fires from the
  /// destructor of the epoch, i.e. exactly when the last pin drops.
  std::function<void(uint64_t)> retire_probe;
  ~Epoch() {
    if (retire_probe) retire_probe(epoch_generation);
  }
};

/// The TRAIL system facade — the paper's full pipeline behind one object:
/// ingest attributed OSINT reports into the TKG, train the analysis models,
/// and attribute (new) events by label propagation or by the GNN. Examples
/// and the longitudinal study drive this API; the reproduction benches use
/// the lower-level modules directly for their k-fold protocols.
class Trail {
 public:
  Trail(const osint::FeedClient* feed, TrailOptions options);

  /// Merges reports into the TKG (initial load or monthly updates).
  Status Ingest(const std::vector<std::string>& report_jsons);
  Result<graph::NodeId> IngestReport(const osint::PulseReport& report);

  /// Delta-appends a batch (typically one month) of parsed reports and
  /// incrementally extends the derived caches instead of invalidating them:
  /// the CSR grows via CsrGraph::Append over the new edge range, and the
  /// model view encodes only the new nodes (IocEncoders::EncodeFrom +
  /// ExtendGnnGraph). Both extensions are bitwise identical to a
  /// from-scratch rebuild, so every attribution after an append matches the
  /// Ingest-then-rebuild path exactly — just without the O(graph) rebuild.
  Result<TkgAppendDelta> AppendReports(
      const std::vector<osint::PulseReport>& reports);

  /// Fits the autoencoders (once) and trains the GNN from scratch on every
  /// currently-labeled event.
  Status TrainModels();

  /// Continues GNN training on the current TKG (the paper's monthly
  /// fine-tune: "<10 epochs before convergence"). Fails FailedPrecondition
  /// when the TKG has discovered APT classes the trained model does not
  /// know about — the caller must retrain from scratch to grow the class
  /// space.
  Status FineTuneGnn(int epochs = 8);

  /// Writes the trained models (APT label space, the three IOC
  /// autoencoders, and the GNN) to `path` as one versioned binary blob
  /// (magic "TCK1"). The longitudinal warm start loads this instead of
  /// refitting encoders and retraining from scratch.
  Status SaveCheckpoint(const std::string& path) const;

  // --- Segment store (persistent TKG; see docs/STORE.md) -------------------

  /// Writes the current TKG (graph, APT roster, event count) to `path` as a
  /// TKGS segment store and attaches it: subsequent AppendReports calls
  /// append a delta commit to the same file, and SaveCheckpoint records the
  /// store reference so a cold start can restore the graph without
  /// reparsing reports.
  Status SaveStore(const std::string& path);

  /// Opens a store file, materializes its graph into this (empty) Trail,
  /// and attaches the store for delta appends. FailedPrecondition when this
  /// instance has already ingested anything.
  Status OpenStore(const std::string& path);

  /// The attached store file; empty when none. A store detaches itself when
  /// a delta append fails to reach disk (the in-memory TKG is then ahead of
  /// the file, and silently appending later deltas would corrupt history) —
  /// callers that need durability re-attach with SaveStore.
  const std::string& store_path() const { return store_path_; }

  /// Restores models written by SaveCheckpoint. The checkpoint's APT label
  /// space must exactly match this instance's TKG (same names, same order);
  /// a corrupt, truncated, or mismatched blob fails cleanly and leaves the
  /// models untrained.
  ///
  /// Hot-swap semantics: the new model slot — encoders, GNN, and the
  /// pre-encoded model view of the current graph — is built entirely off to
  /// the side and installed with one atomic shared-ptr store. Attribution
  /// calls in flight on other threads keep the slot they snapshotted at
  /// entry, which retires only when the last such reader drains, so a
  /// serving deployment (serve::AttributionService) swaps monthly retrains
  /// in with zero downtime and zero torn reads. LoadCheckpoint is the only
  /// mutator that is safe to run concurrently with attribution reads; every
  /// other mutator (Ingest, AppendReports, TrainModels, FineTuneGnn) still
  /// requires external write exclusion.
  Status LoadCheckpoint(const std::string& path);

  struct Attribution {
    int apt = -1;
    std::string apt_name;
    double confidence = 0.0;
    /// Full class distribution, descending by probability.
    std::vector<std::pair<std::string, double>> distribution;
    /// 1 - max-softmax: always populated, policy or not — the cheap novelty
    /// signal every reply carries.
    double novelty_score = 0.0;
    /// Energy score -logsumexp(logits); 0 on paths without logits (LP).
    double energy = 0.0;
    /// True when the active AbstentionPolicy abstained: the caller should
    /// treat the event as an unknown (possibly novel) actor. `apt`,
    /// `apt_name`, and `distribution` still carry the forced-label answer so
    /// downstream consumers can compare the two policies.
    bool unknown = false;
  };

  /// Attributes an event node via label propagation, seeding from every
  /// other labeled event. Fails NotFound when no label mass reaches it.
  Result<Attribution> AttributeWithLp(graph::NodeId event) const;

  /// Attributes an event node with the trained GNN. When
  /// `hide_neighbor_labels` is true the model sees no labels at all (the
  /// case study's "realistic setting").
  Result<Attribution> AttributeWithGnn(graph::NodeId event,
                                       bool hide_neighbor_labels = false) const;

  /// Attributes a batch of event nodes in (at best) one GNN forward pass.
  /// Element i is exactly what AttributeWithGnn(events[i],
  /// hide_neighbor_labels) would return — same statuses, bit-identical
  /// probabilities — but events whose visible-label vector coincides share
  /// a single forward. Unlabeled events (every serving request: the node
  /// under attribution carries no analyst label yet) and all events under
  /// hide_neighbor_labels see the identical label context, so a serving
  /// micro-batch of N requests costs one forward instead of N. Already
  /// labeled events each exclude their own label and therefore fall back to
  /// a per-event forward (deduplicated by node id).
  std::vector<Result<Attribution>> AttributeBatchWithGnn(
      const std::vector<graph::NodeId>& events,
      bool hide_neighbor_labels = false) const;

  /// Event node for a report id; kInvalidNode when absent.
  graph::NodeId FindEvent(const std::string& report_id) const;

  // --- Evidence paths (online attribution explanations; docs/PATHS.md) -----

  /// One resolved IOC reuse chain backing an attribution: the node sequence
  /// from the queried event to a piece of the APT's known infrastructure,
  /// with types, IOC values, and the schema edge traversed into each hop
  /// (`edge` is empty on the first hop).
  struct ExplainedPath {
    struct Hop {
      graph::NodeId node = graph::kInvalidNode;
      std::string type;
      std::string value;
      std::string edge;
    };
    std::vector<Hop> hops;
    double cost = 0.0;
  };

  /// Up to k shortest IOC reuse chains from `event` to APT `apt`'s
  /// infrastructure — the `explain` payload of an attribution reply.
  /// Resolves against the pinned epoch when one is published (lock-free,
  /// safe under concurrent appends/hot-swaps); otherwise answers from the
  /// classic plane, lazily building the path engine. An empty vector means
  /// the event provably shares no infrastructure with the APT within the
  /// engine's hop horizon.
  Result<std::vector<ExplainedPath>> ExplainAttribution(graph::NodeId event,
                                                        int apt,
                                                        size_t k = 3) const;

  /// ExplainAttribution evaluated entirely against a pinned epoch (the
  /// serving plane; reads nothing from the mutable Trail). `scratch` may be
  /// shared across the calls of one micro-batch.
  static Result<std::vector<ExplainedPath>> ExplainOnEpoch(
      const Epoch& epoch, graph::NodeId event, int apt, size_t k,
      graph::TraversalScratch* scratch = nullptr);

  /// The classic-plane path engine, built lazily from the current graph and
  /// kept fresh: appends extend it incrementally (AppendReports), and label
  /// changes outside an append (the study labeling old events) trigger a
  /// monotone repair on first use. Requires external write exclusion, like
  /// Csr().
  const graph::path::PathEngine& Paths() const;

  // --- Abstention / novelty head ------------------------------------------

  /// Installs the abstention operating point. Takes effect immediately on
  /// the classic attribution paths; the epoch plane picks it up at the next
  /// publish (PublishEpoch / *AndPublish), so pinned batches stay internally
  /// consistent. Safe to call concurrently with attribution reads.
  void SetAbstentionPolicy(const AbstentionPolicy& policy);

  /// The currently installed operating point.
  AbstentionPolicy abstention_policy() const { return *Abstention(); }

  /// Calibrates confidence/energy thresholds on held-out known-actor events
  /// (typically the most recent training months): attributes them with the
  /// GNN, then pins min_confidence to the (rate/2)-quantile of their
  /// confidences and max_energy to the (1 - rate/2)-quantile of their
  /// energies — a known-actor stream abstains at most ≈`target_abstain_rate`
  /// while novel actors, landing outside both tails, trip the thresholds.
  /// Installs the policy via SetAbstentionPolicy and returns it.
  Result<AbstentionPolicy> CalibrateAbstention(
      const std::vector<graph::NodeId>& holdout_events,
      double target_abstain_rate = 0.02, bool hide_neighbor_labels = false);

  // --- Epoch plane (serving read path; see struct Epoch) -------------------
  //
  // Mutators that end in `AndPublish` serialize against each other on an
  // internal publish mutex that readers never take: PinEpoch is one atomic
  // acquire load, so the inference path is lock-free regardless of how many
  // appends and hot-swaps are racing it.

  /// The currently published epoch, pinned for as long as the caller holds
  /// the returned pointer. Nullptr until the first successful PublishEpoch /
  /// *AndPublish mutator.
  std::shared_ptr<const Epoch> PinEpoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Publishes an initial epoch snapshotting the current graph + models.
  /// FailedPrecondition until TrainModels / LoadCheckpoint has succeeded.
  /// Idempotent in effect (republishing the same state is harmless).
  Status PublishEpoch();

  /// AppendReports, then publish the resulting state as a new epoch. The
  /// classic in-place caches (CSR cache, model-slot view) are extended
  /// incrementally exactly as AppendReports does; the new epoch then deep-
  /// copies graph + CSR + view off to the side so already-pinned epochs stay
  /// bitwise stable. When no epoch is published yet (models untrained) this
  /// degrades to plain AppendReports.
  Result<TkgAppendDelta> AppendReportsAndPublish(
      const std::vector<osint::PulseReport>& reports);

  /// LoadCheckpoint (the model hot-swap), then publish a new epoch pairing
  /// the freshly installed models with the current graph. The graph + CSR
  /// are shared structurally with the previous epoch when one exists — a
  /// hot-swap does not change the TKG, only the model view.
  Status LoadCheckpointAndPublish(const std::string& path);

  /// Generation of the most recently published epoch (0 = none yet).
  uint64_t epoch_generation() const {
    return epoch_generation_.load(std::memory_order_acquire);
  }

  /// Installs a hook copied into every subsequently published epoch and
  /// fired from its destructor — i.e. at the exact moment the retired epoch's
  /// last pin drops. Test-only (epoch_lifecycle_test uses it to prove
  /// drain-before-retire); pass nullptr to clear.
  void SetEpochRetireProbeForTest(std::function<void(uint64_t)> probe);

  /// AttributeBatchWithGnn evaluated entirely against a pinned epoch: reads
  /// only `epoch`, never this Trail's mutable state, so any number of
  /// workers can run it concurrently with appends and hot-swaps. Element i
  /// is bit-identical to what the sequential AttributeWithGnn(events[i])
  /// loop would produce against the same snapshot.
  static std::vector<Result<Attribution>> AttributeBatchOnEpoch(
      const Epoch& epoch, const std::vector<graph::NodeId>& events,
      bool hide_neighbor_labels = false);

  /// Writes a run manifest (build info, the option tree, graph scale, and
  /// every registry metric) to `path` — the machine-readable record of what
  /// this pipeline instance did.
  Status WriteRunManifest(const std::string& path) const;

  const graph::PropertyGraph& graph() const { return builder_.graph(); }
  graph::PropertyGraph& mutable_graph() { return builder_.mutable_graph(); }
  const TkgBuilder& builder() const { return builder_; }
  const std::vector<std::string>& apt_names() const {
    return builder_.apt_names();
  }
  /// References into the currently installed model slot. Valid until the
  /// next LoadCheckpoint (hot-swap) retires the slot; single-threaded
  /// callers (benches, examples, tests) never notice.
  const IocEncoders& encoders() const { return Slot()->encoders; }
  const gnn::EventGnn& event_gnn() const { return Slot()->gnn; }
  bool models_trained() const { return Slot()->gnn.trained(); }

  /// Monotonic model generation: 0 until the first TrainModels /
  /// LoadCheckpoint succeeds, then bumped by every successful one. A
  /// serving deployment surfaces this in /statusz so an operator can
  /// confirm a hot-swap actually took.
  uint64_t model_generation() const {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  /// One generation of the trained models plus the lazily built model view
  /// of the TKG they encode. Attribution readers snapshot the slot pointer
  /// once at entry; LoadCheckpoint installs a fully built replacement with
  /// an atomic store, and the old generation is freed when its last
  /// in-flight reader releases it (drain-before-retire by refcount).
  struct ModelSlot {
    IocEncoders encoders;
    gnn::EventGnn gnn;
    /// Model view of the graph under `encoders`; built on first use under
    /// `view_mu`, extended in place by AppendReports (write-exclusive), and
    /// prebuilt eagerly by LoadCheckpoint so a hot-swap never stalls the
    /// first post-swap batch on EncodeAll.
    mutable std::mutex view_mu;
    std::shared_ptr<gnn::GnnGraph> view;
  };

  std::shared_ptr<ModelSlot> Slot() const {
    return models_.load(std::memory_order_acquire);
  }
  std::shared_ptr<const AbstentionPolicy> Abstention() const {
    return abstention_.load(std::memory_order_acquire);
  }
  void InvalidateCaches();
  const graph::CsrGraph& Csr() const;
  /// The slot's model view, built lazily from the current graph.
  const gnn::GnnGraph& ViewOf(ModelSlot& slot) const;
  Attribution MakeAttribution(const std::vector<double>& probs) const;

  /// Builds the next epoch from the current builder/caches/slot state and
  /// installs it. Caller must hold publish_mu_. `share_graph_from` (may be
  /// null) donates graph + CSR shared_ptrs when the TKG itself is unchanged
  /// (hot-swap); otherwise both are deep-copied from the current state.
  void PublishEpochLocked(const Epoch* share_graph_from);

  TrailOptions options_;
  TkgBuilder builder_;
  std::atomic<std::shared_ptr<ModelSlot>> models_;
  std::atomic<std::shared_ptr<const AbstentionPolicy>> abstention_;
  std::atomic<uint64_t> generation_{0};

  mutable std::unique_ptr<graph::CsrGraph> csr_cache_;
  /// Classic-plane evidence path engine over csr_cache_ (see Paths()).
  mutable std::unique_ptr<graph::path::PathEngine> paths_cache_;

  /// Attached TKGS store file (empty = none). Mutated only by the write
  /// side (SaveStore/OpenStore/AppendReports), which requires external
  /// write exclusion anyway.
  std::string store_path_;

  /// Epoch plane. Publishers (PublishEpoch, *AndPublish, SaveCheckpoint's
  /// roster read) serialize on publish_mu_; readers only ever touch epoch_.
  mutable std::mutex publish_mu_;
  std::atomic<std::shared_ptr<const Epoch>> epoch_{nullptr};
  std::atomic<uint64_t> epoch_generation_{0};
  std::function<void(uint64_t)> epoch_retire_probe_;
};

}  // namespace trail::core

#endif  // TRAIL_CORE_TRAIL_H_
