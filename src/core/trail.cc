#include "core/trail.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "gnn/label_propagation.h"
#include "graph/store/store_reader.h"
#include "graph/store/store_writer.h"
#include "ml/calibration.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace trail::core {

using graph::NodeId;
using graph::NodeType;

Trail::Trail(const osint::FeedClient* feed, TrailOptions options)
    : options_(options), builder_(feed, options.build) {
  models_.store(std::make_shared<ModelSlot>(), std::memory_order_release);
  abstention_.store(std::make_shared<const AbstentionPolicy>(
                        options_.abstention),
                    std::memory_order_release);
}

void Trail::InvalidateCaches() {
  csr_cache_.reset();
  paths_cache_.reset();
  std::shared_ptr<ModelSlot> slot = Slot();
  std::lock_guard<std::mutex> lock(slot->view_mu);
  slot->view.reset();
}

const graph::CsrGraph& Trail::Csr() const {
  if (csr_cache_ == nullptr) {
    csr_cache_ = std::make_unique<graph::CsrGraph>(
        graph::CsrGraph::Build(builder_.graph()));
  }
  return *csr_cache_;
}

const graph::path::PathEngine& Trail::Paths() const {
  const graph::PropertyGraph& g = builder_.graph();
  const size_t num_apts = builder_.num_apts();
  if (paths_cache_ == nullptr) {
    TRAIL_TRACE_SPAN("core.build_paths");
    paths_cache_ = std::make_unique<graph::path::PathEngine>(
        graph::path::PathEngine::Build(g, Csr(), num_apts));
    TRAIL_METRIC_INC("core.paths_builds");
  } else if (!paths_cache_->Matches(g, num_apts)) {
    // Labels moved without an append (the study labels old events in
    // place): repair the index from the engine's watermarks — monotone
    // seed growth patches incrementally, retractions rebuild per group.
    TRAIL_TRACE_SPAN("core.build_paths");
    paths_cache_->Extend(g, Csr(), num_apts);
    TRAIL_METRIC_INC("core.paths_incremental_extends");
  }
  return *paths_cache_;
}

const gnn::GnnGraph& Trail::ViewOf(ModelSlot& slot) const {
  TRAIL_CHECK(slot.encoders.fitted()) << "TrainModels before GNN attribution";
  std::lock_guard<std::mutex> lock(slot.view_mu);
  if (slot.view == nullptr) {
    ml::Matrix encoded = slot.encoders.EncodeAll(builder_.graph());
    slot.view = std::make_shared<gnn::GnnGraph>(
        BuildGnnGraph(builder_.graph(), encoded));
  }
  return *slot.view;
}

Status Trail::Ingest(const std::vector<std::string>& report_jsons) {
  TRAIL_METRIC_ADD("core.reports_ingested", report_jsons.size());
  TRAIL_RETURN_NOT_OK(builder_.IngestAll(report_jsons));
  InvalidateCaches();
  return Status::Ok();
}

Result<NodeId> Trail::IngestReport(const osint::PulseReport& report) {
  TRAIL_METRIC_INC("core.reports_ingested");
  auto event = builder_.IngestReport(report);
  if (event.ok()) InvalidateCaches();
  return event;
}

Result<TkgAppendDelta> Trail::AppendReports(
    const std::vector<osint::PulseReport>& reports) {
  TRAIL_TRACE_SPAN("core.append_reports");
  TRAIL_METRIC_ADD("core.reports_ingested", reports.size());
  auto delta = builder_.AppendReports(reports);
  if (!delta.ok()) {
    // The builder may have partially ingested; stale caches would be wrong.
    InvalidateCaches();
    return delta.status();
  }
  if (csr_cache_ != nullptr) {
    csr_cache_->Append(builder_.graph(), delta->first_new_edge);
    TRAIL_METRIC_INC("core.csr_incremental_extends");
  }
  if (paths_cache_ != nullptr) {
    // The engine repairs its reachability index from its own watermarks
    // (== delta->first_new_edge here) instead of re-traversing the graph.
    paths_cache_->Extend(builder_.graph(), Csr(), builder_.num_apts());
    TRAIL_METRIC_INC("core.paths_incremental_extends");
  }
  std::shared_ptr<ModelSlot> slot = Slot();
  {
    std::lock_guard<std::mutex> lock(slot->view_mu);
    if (slot->view != nullptr) {
      if (slot->encoders.fitted()) {
        ml::Matrix encoded_new =
            slot->encoders.EncodeFrom(builder_.graph(), delta->first_new_node);
        ExtendGnnGraph(builder_.graph(), encoded_new, slot->view.get());
        TRAIL_METRIC_INC("core.gnn_cache_incremental_extends");
      } else {
        slot->view.reset();
      }
    }
  }
  if (!store_path_.empty()) {
    // Persist the same delta to the attached store. A failure here means
    // the file is now behind the in-memory TKG; detach it so a later append
    // cannot stack a mis-anchored commit on top (see store_path() docs).
    auto written = graph::store::StoreWriter::AppendDelta(
        builder_.graph(), builder_.apt_names(), builder_.num_events(),
        delta->first_new_node, delta->first_new_edge, store_path_);
    if (written.ok()) {
      // Journaled mutations are now on disk (as this commit's node records
      // or patches); start the next delta's journal window.
      builder_.mutable_graph().ClearDirtyNodes();
      TRAIL_METRIC_INC("core.store_delta_appends");
    } else {
      TRAIL_LOG(Warning) << "detaching store " << store_path_
                         << ": delta append failed: "
                         << written.status().message();
      TRAIL_METRIC_INC("core.store_delta_append_failures");
      store_path_.clear();
      builder_.mutable_graph().DisableMutationJournal();
    }
  }
  return delta;
}

Status Trail::SaveStore(const std::string& path) {
  TRAIL_TRACE_SPAN("core.save_store");
  std::lock_guard<std::mutex> lock(publish_mu_);
  auto stats = graph::store::StoreWriter::Write(
      builder_.graph(), builder_.apt_names(), builder_.num_events(), path);
  if (!stats.ok()) return stats.status();
  store_path_ = path;
  // Journal every later mutable-field change so the next delta commit can
  // patch old nodes even when they gain no new incident edge (e.g. the
  // study labeling last month's events before a retrain).
  builder_.mutable_graph().EnableMutationJournal();
  TRAIL_LOG(Info) << "saved TKG store " << path << ": " << stats->num_nodes
                  << " nodes, " << stats->num_edges << " edges, "
                  << stats->file_bytes << " bytes";
  TRAIL_METRIC_INC("core.store_saves");
  return Status::Ok();
}

Status Trail::OpenStore(const std::string& path) {
  TRAIL_TRACE_SPAN("core.open_store");
  if (builder_.graph().num_nodes() != 0 || builder_.num_events() != 0) {
    return Status::FailedPrecondition(
        "OpenStore needs an empty Trail (cold start)");
  }
  auto store = graph::store::GraphStore::Open(path);
  if (!store.ok()) return store.status();
  graph::PropertyGraph g;
  std::vector<std::string> apts;
  uint64_t num_events = 0;
  TRAIL_RETURN_NOT_OK(store.value()->Materialize(&g, &apts, &num_events));
  TRAIL_RETURN_NOT_OK(builder_.AdoptGraph(std::move(g), std::move(apts),
                                          static_cast<size_t>(num_events)));
  store_path_ = path;
  builder_.mutable_graph().EnableMutationJournal();
  InvalidateCaches();
  TRAIL_METRIC_INC("core.store_opens");
  return Status::Ok();
}

namespace {

constexpr uint32_t kCheckpointMagic = 0x54434B31;  // "TCK1"
// v2 adds the TKGS store reference after the version word; v1 blobs (no
// store field) still load.
constexpr uint32_t kCheckpointVersion = 2;

}  // namespace

Status Trail::SaveCheckpoint(const std::string& path) const {
  TRAIL_TRACE_SPAN("core.save_checkpoint");
  // The APT roster lives in builder_, which concurrent
  // AppendReportsAndPublish calls mutate; serialize with publishers so a
  // live checkpoint save never reads a half-grown roster.
  std::lock_guard<std::mutex> lock(publish_mu_);
  std::shared_ptr<ModelSlot> slot = Slot();
  if (!slot->gnn.trained() || !slot->encoders.fitted()) {
    return Status::FailedPrecondition("TrainModels before SaveCheckpoint");
  }
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  BinaryWriter w(f.get());
  w.U32(kCheckpointMagic);
  w.U32(kCheckpointVersion);
  w.U32(store_path_.empty() ? 0 : 1);
  w.Str(store_path_);
  const std::vector<std::string>& apts = builder_.apt_names();
  w.U32(static_cast<uint32_t>(apts.size()));
  for (const std::string& name : apts) w.Str(name);
  slot->encoders.SaveState(&w);
  slot->gnn.SaveState(&w);
  if (!w.ok()) return Status::IoError("short write: " + path);
  TRAIL_METRIC_INC("core.checkpoints_saved");
  return Status::Ok();
}

Status Trail::LoadCheckpoint(const std::string& path) {
  TRAIL_TRACE_SPAN("core.load_checkpoint");
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  BinaryReader r(f.get());
  if (r.U32() != kCheckpointMagic) {
    return Status::ParseError("bad magic in " + path);
  }
  const uint32_t version = r.U32();
  if (version < 1 || version > kCheckpointVersion) {
    return Status::ParseError("unsupported checkpoint version in " + path);
  }
  if (version >= 2) {
    const bool has_store = r.U32() != 0;
    std::string store_ref = r.Str();
    if (!r.ok()) return Status::ParseError("truncated checkpoint in " + path);
    // A cold start (empty TKG) pulls the graph from the referenced store
    // before restoring models; a warm instance keeps the graph it has.
    if (has_store && builder_.graph().num_nodes() == 0) {
      TRAIL_RETURN_NOT_OK(OpenStore(store_ref));
    }
  }
  const uint32_t num_apts = r.U32();
  if (!r.ok() || num_apts > BinaryReader::kMaxLen) {
    return Status::ParseError("corrupt checkpoint header in " + path);
  }
  std::vector<std::string> apts(num_apts);
  for (std::string& name : apts) name = r.Str();
  if (!r.ok()) return Status::ParseError("truncated checkpoint in " + path);
  if (apts != builder_.apt_names()) {
    return Status::FailedPrecondition(
        "checkpoint APT label space does not match the TKG: " + path);
  }
  // Stage into a fresh model slot so a mid-blob failure cannot leave this
  // Trail with half-restored models, and so the install below is one atomic
  // pointer store (the hot-swap protocol; see the header).
  auto staged = std::make_shared<ModelSlot>();
  TRAIL_RETURN_NOT_OK(staged->encoders.LoadState(&r));
  TRAIL_RETURN_NOT_OK(staged->gnn.LoadState(&r));
  if (!r.ok()) return Status::ParseError("truncated checkpoint in " + path);
  if (staged->gnn.num_classes() != static_cast<int>(num_apts)) {
    return Status::ParseError(
        "checkpoint GNN class count disagrees with its APT list: " + path);
  }
  // The old slot's view was encoded by the old encoders; prebuild the new
  // one off to the side (still before the install) so in-flight readers
  // keep serving the old generation and the first post-swap batch starts
  // on a ready view instead of stalling on EncodeAll.
  if (builder_.graph().num_nodes() > 0 && staged->encoders.fitted()) {
    ml::Matrix encoded = staged->encoders.EncodeAll(builder_.graph());
    staged->view = std::make_shared<gnn::GnnGraph>(
        BuildGnnGraph(builder_.graph(), encoded));
  }
  models_.store(staged, std::memory_order_release);
  TRAIL_METRIC_INC("core.checkpoints_loaded");
  TRAIL_METRIC_SET("core.model_generation",
                   generation_.fetch_add(1, std::memory_order_acq_rel) + 1);
  return Status::Ok();
}

Status Trail::TrainModels() {
  TRAIL_TRACE_SPAN("core.train_models");
  const graph::PropertyGraph& g = builder_.graph();
  if (builder_.num_events() == 0) {
    return Status::FailedPrecondition("no events ingested");
  }
  std::shared_ptr<ModelSlot> slot = Slot();
  if (!slot->encoders.fitted()) {
    slot->encoders.Fit(g, options_.autoencoder);
  }
  {
    std::lock_guard<std::mutex> lock(slot->view_mu);
    slot->view.reset();  // encodings (or the graph under them) changed
  }

  std::vector<int> train_labels(g.num_nodes(), -1);
  size_t labeled = 0;
  for (NodeId event : g.NodesOfType(NodeType::kEvent)) {
    if (g.label(event) >= 0) {
      train_labels[event] = g.label(event);
      ++labeled;
    }
  }
  if (labeled < 2) {
    return Status::FailedPrecondition("need at least two labeled events");
  }
  TRAIL_LOG(Info) << "training GNN on " << labeled << " labeled events, "
                  << builder_.num_apts() << " classes";
  slot->gnn.Train(ViewOf(*slot), train_labels, builder_.num_apts(),
                  options_.gnn);
  TRAIL_LOG(Info) << "models trained";
  TRAIL_METRIC_SET("core.model_generation",
                   generation_.fetch_add(1, std::memory_order_acq_rel) + 1);
  return Status::Ok();
}

Status Trail::FineTuneGnn(int epochs) {
  TRAIL_TRACE_SPAN("core.fine_tune_gnn");
  std::shared_ptr<ModelSlot> slot = Slot();
  if (!slot->gnn.trained()) {
    return Status::FailedPrecondition("TrainModels before FineTuneGnn");
  }
  if (builder_.num_apts() != slot->gnn.num_classes()) {
    return Status::FailedPrecondition(
        "TKG discovered new APT classes; retrain from scratch to grow the"
        " class space");
  }
  const graph::PropertyGraph& g = builder_.graph();
  std::vector<int> train_labels(g.num_nodes(), -1);
  for (NodeId event : g.NodesOfType(NodeType::kEvent)) {
    if (g.label(event) >= 0) train_labels[event] = g.label(event);
  }
  slot->gnn.FineTune(ViewOf(*slot), train_labels, epochs);
  return Status::Ok();
}

namespace {

Trail::Attribution MakeAttributionFrom(
    const std::vector<std::string>& apt_names,
    const std::vector<double>& probs, double energy,
    const AbstentionPolicy& policy) {
  Trail::Attribution attribution;
  for (size_t c = 0; c < probs.size(); ++c) {
    attribution.distribution.emplace_back(apt_names[c], probs[c]);
  }
  std::sort(attribution.distribution.begin(), attribution.distribution.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (!attribution.distribution.empty()) {
    attribution.apt_name = attribution.distribution[0].first;
    attribution.confidence = attribution.distribution[0].second;
    for (size_t c = 0; c < probs.size(); ++c) {
      if (apt_names[c] == attribution.apt_name) {
        attribution.apt = static_cast<int>(c);
      }
    }
  }
  attribution.novelty_score = 1.0 - attribution.confidence;
  attribution.energy = energy;
  attribution.unknown =
      policy.ShouldAbstain(attribution.confidence, attribution.energy);
  return attribution;
}

/// Energy score of one node row of a logits matrix: a sequential double
/// loop (via ml::EnergyScore), deterministic at any thread count.
double RowEnergy(const ml::Matrix& logits, NodeId row) {
  auto r = logits.Row(row);
  std::vector<double> vals(r.begin(), r.end());
  return ml::EnergyScore(vals);
}

/// The one batch-attribution implementation, shared by the classic
/// (slot-view) path and the epoch path so the two are bit-identical by
/// construction: both hand this function a graph, a trained GNN, and a
/// model view of that graph — where those come from is the caller's policy.
std::vector<Result<Trail::Attribution>> AttributeBatchImpl(
    const graph::PropertyGraph& g, const gnn::EventGnn& gnn,
    const gnn::GnnGraph& view, const std::vector<std::string>& apt_names,
    const std::vector<NodeId>& events, bool hide_neighbor_labels,
    const AbstentionPolicy& policy) {
  std::vector<Result<Trail::Attribution>> out;
  out.reserve(events.size());
  if (!gnn.trained()) {
    for (size_t i = 0; i < events.size(); ++i) {
      out.push_back(
          Status::FailedPrecondition("TrainModels before GNN attribution"));
    }
    return out;
  }

  // The visible-label context every request shares: all analyst labels.
  // AttributeWithGnn(e) removes e's own label from it — a no-op for
  // unlabeled events (the serving case), so those share one forward pass.
  // Labeled events genuinely see a different context and each get their
  // own pass (one per distinct node; duplicates share).
  std::vector<int> base(g.num_nodes(), -1);
  {
    TRAIL_TRACE_SPAN("core.batch_label_context");
    if (!hide_neighbor_labels) {
      for (NodeId v : g.NodesOfType(NodeType::kEvent)) {
        if (g.label(v) >= 0) base[v] = g.label(v);
      }
    }
  }

  bool need_shared = false;
  for (NodeId event : events) {
    if (event < g.num_nodes() && g.type(event) == NodeType::kEvent &&
        (hide_neighbor_labels || g.label(event) < 0)) {
      need_shared = true;
      break;
    }
  }
  // Logits are kept alongside the softmax probabilities: the abstention
  // head's energy score needs the pre-softmax row, and PredictProba is
  // exactly RowSoftmax(PredictLogits) so the probabilities are unchanged.
  ml::Matrix shared_logits, shared_probs;
  std::map<NodeId, std::pair<ml::Matrix, ml::Matrix>> labeled;  // logits,probs
  {
    // The inference stage proper, separated from the context build above so
    // a serving trace can tell model time from bookkeeping time (the
    // "batched -> inferred" stage in /tracez is dominated by this block).
    TRAIL_TRACE_SPAN("core.batch_forward");
    if (need_shared) {
      TRAIL_METRIC_INC("core.gnn_batch_forwards");
      shared_logits = gnn.PredictLogits(view, base);
      shared_probs = ml::RowSoftmax(shared_logits);
    }
    // Per-event forwards for already-labeled events, deduplicated by node.
    for (NodeId event : events) {
      if (event >= g.num_nodes() || g.type(event) != NodeType::kEvent) {
        continue;
      }
      if (hide_neighbor_labels || g.label(event) < 0) continue;
      if (labeled.count(event) > 0) continue;
      TRAIL_METRIC_INC("core.gnn_batch_forwards");
      std::vector<int> visible = base;
      visible[event] = -1;
      ml::Matrix logits = gnn.PredictLogits(view, visible);
      ml::Matrix probs = ml::RowSoftmax(logits);
      labeled.emplace(event,
                      std::make_pair(std::move(logits), std::move(probs)));
    }
  }

  for (NodeId event : events) {
    if (event >= g.num_nodes() || g.type(event) != NodeType::kEvent) {
      out.push_back(Status::InvalidArgument("not an event node"));
      continue;
    }
    const bool shared = hide_neighbor_labels || g.label(event) < 0;
    const ml::Matrix& logits_matrix =
        shared ? shared_logits : labeled.at(event).first;
    const ml::Matrix& probs_matrix =
        shared ? shared_probs : labeled.at(event).second;
    auto row = probs_matrix.Row(event);
    std::vector<double> probs(row.begin(), row.end());
    out.push_back(MakeAttributionFrom(apt_names, probs,
                                      RowEnergy(logits_matrix, event),
                                      policy));
  }
  return out;
}

}  // namespace

Trail::Attribution Trail::MakeAttribution(
    const std::vector<double>& probs) const {
  // Label propagation carries no logits: energy stays 0 and the abstention
  // policy is not applied (the LP path predates — and sidesteps — the
  // novelty head; novelty_score is still populated from the confidence).
  return MakeAttributionFrom(builder_.apt_names(), probs, /*energy=*/0.0,
                             AbstentionPolicy());
}

Result<Trail::Attribution> Trail::AttributeWithLp(NodeId event) const {
  TRAIL_TRACE_SPAN("core.attribute_lp");
  TRAIL_METRIC_INC("core.lp_attributions");
  const graph::PropertyGraph& g = builder_.graph();
  if (event >= g.num_nodes() || g.type(event) != NodeType::kEvent) {
    return Status::InvalidArgument("not an event node");
  }
  const int num_classes = builder_.num_apts();
  std::vector<int> labels(g.num_nodes(), -1);
  std::vector<uint8_t> seeds(g.num_nodes(), 0);
  for (NodeId v : g.NodesOfType(NodeType::kEvent)) {
    if (v != event && g.label(v) >= 0) {
      labels[v] = g.label(v);
      seeds[v] = 1;
    }
  }
  // Prune the propagation frontier with the evidence plane's reachability
  // index: Paths() just guaranteed the engine matches the current labels,
  // so its labeled-seed distances are a valid lower bound for LP's seed set
  // (engine seeds ⊇ LP seeds — LP only drops the queried event, and a
  // superset can only lower distances). Bit-identical results, less work.
  const graph::path::PathEngine& engine = Paths();
  gnn::LpPruneHint hint;
  hint.seed_hops = &engine.LabeledSeedHops();
  hint.max_hops = engine.max_hops();
  auto lp = gnn::RunLabelPropagation(Csr(), labels, seeds, num_classes,
                                     options_.lp_layers, &hint);
  if (lp.predictions[event] < 0) {
    TRAIL_METRIC_INC("core.lp_unattributable");
    return Status::NotFound("no label mass reached the event (unattributable"
                            " by resource reuse)");
  }
  auto row = lp.scores.Row(event);
  double total = 0.0;
  for (int c = 0; c < num_classes; ++c) total += row[c];
  std::vector<double> probs(num_classes, 0.0);
  for (int c = 0; c < num_classes; ++c) probs[c] = row[c] / total;
  return MakeAttribution(probs);
}

Result<Trail::Attribution> Trail::AttributeWithGnn(
    NodeId event, bool hide_neighbor_labels) const {
  TRAIL_TRACE_SPAN("core.attribute_gnn");
  TRAIL_METRIC_INC("core.gnn_attributions");
  std::shared_ptr<ModelSlot> slot = Slot();
  if (!slot->gnn.trained()) {
    return Status::FailedPrecondition("TrainModels before GNN attribution");
  }
  const graph::PropertyGraph& g = builder_.graph();
  if (event >= g.num_nodes() || g.type(event) != NodeType::kEvent) {
    return Status::InvalidArgument("not an event node");
  }
  std::vector<int> visible(g.num_nodes(), -1);
  if (!hide_neighbor_labels) {
    for (NodeId v : g.NodesOfType(NodeType::kEvent)) {
      if (v != event && g.label(v) >= 0) visible[v] = g.label(v);
    }
  }
  ml::Matrix logits = slot->gnn.PredictLogits(ViewOf(*slot), visible);
  ml::Matrix prob_matrix = ml::RowSoftmax(logits);
  auto row = prob_matrix.Row(event);
  std::vector<double> probs(row.begin(), row.end());
  return MakeAttributionFrom(builder_.apt_names(), probs,
                             RowEnergy(logits, event), *Abstention());
}

std::vector<Result<Trail::Attribution>> Trail::AttributeBatchWithGnn(
    const std::vector<NodeId>& events, bool hide_neighbor_labels) const {
  TRAIL_TRACE_SPAN("core.attribute_gnn_batch");
  TRAIL_METRIC_ADD("core.gnn_attributions", events.size());
  std::shared_ptr<ModelSlot> slot = Slot();
  if (!slot->gnn.trained()) {
    std::vector<Result<Attribution>> out;
    out.reserve(events.size());
    for (size_t i = 0; i < events.size(); ++i) {
      out.push_back(
          Status::FailedPrecondition("TrainModels before GNN attribution"));
    }
    return out;
  }
  return AttributeBatchImpl(builder_.graph(), slot->gnn, ViewOf(*slot),
                            builder_.apt_names(), events,
                            hide_neighbor_labels, *Abstention());
}

namespace {

/// The one explain implementation, shared by the classic and epoch planes:
/// run the path engine, then resolve node/edge names against the graph the
/// engine was built from.
Result<std::vector<Trail::ExplainedPath>> ExplainImpl(
    const graph::PropertyGraph& g, const graph::CsrGraph& csr,
    const graph::path::PathEngine& engine, NodeId event, int apt, size_t k,
    graph::TraversalScratch* scratch) {
  if (event >= g.num_nodes() || g.type(event) != NodeType::kEvent) {
    return Status::InvalidArgument("not an event node");
  }
  if (apt < 0 || static_cast<size_t>(apt) >= engine.num_apts()) {
    return Status::InvalidArgument("unknown APT class");
  }
  std::vector<Trail::ExplainedPath> out;
  for (const graph::path::EvidencePath& path :
       engine.Explain(csr, event, static_cast<size_t>(apt), k, scratch)) {
    Trail::ExplainedPath resolved;
    resolved.cost = path.cost;
    resolved.hops.reserve(path.nodes.size());
    for (size_t i = 0; i < path.nodes.size(); ++i) {
      Trail::ExplainedPath::Hop hop;
      hop.node = path.nodes[i];
      hop.type = graph::NodeTypeName(g.type(path.nodes[i]));
      hop.value = g.value(path.nodes[i]);
      if (i > 0) hop.edge = graph::EdgeTypeName(path.edges[i - 1]);
      resolved.hops.push_back(std::move(hop));
    }
    out.push_back(std::move(resolved));
  }
  return out;
}

}  // namespace

Result<std::vector<Trail::ExplainedPath>> Trail::ExplainAttribution(
    NodeId event, int apt, size_t k) const {
  TRAIL_TRACE_SPAN("core.explain_attribution");
  std::shared_ptr<const Epoch> epoch = PinEpoch();
  if (epoch != nullptr && epoch->paths != nullptr) {
    return ExplainOnEpoch(*epoch, event, apt, k);
  }
  return ExplainImpl(builder_.graph(), Csr(), Paths(), event, apt, k,
                     /*scratch=*/nullptr);
}

Result<std::vector<Trail::ExplainedPath>> Trail::ExplainOnEpoch(
    const Epoch& epoch, NodeId event, int apt, size_t k,
    graph::TraversalScratch* scratch) {
  TRAIL_TRACE_SPAN("core.explain_attribution");
  if (epoch.paths == nullptr) {
    return Status::FailedPrecondition("epoch carries no path engine");
  }
  return ExplainImpl(*epoch.graph, *epoch.csr, *epoch.paths, event, apt, k,
                     scratch);
}

std::vector<Result<Trail::Attribution>> Trail::AttributeBatchOnEpoch(
    const Epoch& epoch, const std::vector<NodeId>& events,
    bool hide_neighbor_labels) {
  TRAIL_TRACE_SPAN("core.attribute_gnn_batch");
  TRAIL_METRIC_ADD("core.gnn_attributions", events.size());
  return AttributeBatchImpl(*epoch.graph, *epoch.gnn, *epoch.view,
                            epoch.apt_names, events, hide_neighbor_labels,
                            epoch.abstention);
}

void Trail::PublishEpochLocked(const Epoch* share_graph_from) {
  std::shared_ptr<ModelSlot> slot = Slot();
  auto next = std::make_shared<Epoch>();
  next->model_generation = model_generation();
  next->apt_names = builder_.apt_names();
  next->abstention = *Abstention();
  next->retire_probe = epoch_retire_probe_;
  if (share_graph_from != nullptr) {
    // The TKG did not change (model hot-swap): share the immutable graph
    // and CSR structurally with the previous epoch instead of copying. The
    // path engine is graph-pointer-free, so it is shared the same way.
    next->graph = share_graph_from->graph;
    next->csr = share_graph_from->csr;
    next->paths = share_graph_from->paths;
  } else {
    // Deep-copy the graph + CSR off to the side. Already-pinned epochs and
    // the classic in-place caches are untouched; the copy is the honest
    // price of publication (O(graph) memcpy-heavy work, no re-encode —
    // the incremental extension already happened in the mutable caches).
    next->graph =
        std::make_shared<const graph::PropertyGraph>(builder_.graph());
    next->csr = std::make_shared<const graph::CsrGraph>(Csr());
  }
  if (next->paths == nullptr) {
    // Ensure-fresh (build or incremental extend) and deep-copy the mutable
    // cache engine, like the graph/CSR above.
    next->paths = std::make_shared<const graph::path::PathEngine>(Paths());
  }
  // Aliasing pointers into the model slot keep the whole slot alive for as
  // long as any pin of this epoch survives — the original hot-swap
  // drain-before-retire contract, now extended to the graph.
  next->encoders = std::shared_ptr<const IocEncoders>(slot, &slot->encoders);
  next->gnn = std::shared_ptr<const gnn::EventGnn>(slot, &slot->gnn);
  // The view is always copied, never aliased: classic AppendReports extends
  // slot->view's matrices in place, which may reallocate under a concurrent
  // epoch reader.
  next->view = std::make_shared<const gnn::GnnGraph>(ViewOf(*slot));
  const uint64_t gen =
      epoch_generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  next->epoch_generation = gen;
  // The path-index generation advances with every publish — the /statusz
  // "did the explain plane follow the epoch?" invariant.
  next->paths_generation = gen;
  TRAIL_METRIC_SET("path.index_generation", static_cast<double>(gen));
  TRAIL_METRIC_SET("path.interval_count",
                   static_cast<double>(next->paths->interval_count()));
  TRAIL_METRIC_SET("path.resident_bytes",
                   static_cast<double>(next->paths->resident_bytes()));
  epoch_.store(std::shared_ptr<const Epoch>(std::move(next)),
               std::memory_order_release);
  TRAIL_METRIC_SET("core.epoch_generation", static_cast<double>(gen));
  TRAIL_METRIC_INC("core.epochs_published");
}

Status Trail::PublishEpoch() {
  TRAIL_TRACE_SPAN("core.publish_epoch");
  std::lock_guard<std::mutex> lock(publish_mu_);
  std::shared_ptr<ModelSlot> slot = Slot();
  if (!slot->gnn.trained() || !slot->encoders.fitted()) {
    return Status::FailedPrecondition("TrainModels before PublishEpoch");
  }
  PublishEpochLocked(nullptr);
  return Status::Ok();
}

Result<TkgAppendDelta> Trail::AppendReportsAndPublish(
    const std::vector<osint::PulseReport>& reports) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  auto delta = AppendReports(reports);
  if (!delta.ok()) return delta;
  // Before the first publish (models untrained) there is nothing to
  // snapshot; the call degrades to a plain serialized append.
  if (PinEpoch() != nullptr) PublishEpochLocked(nullptr);
  return delta;
}

Status Trail::LoadCheckpointAndPublish(const std::string& path) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  std::shared_ptr<const Epoch> prev = PinEpoch();
  TRAIL_RETURN_NOT_OK(LoadCheckpoint(path));
  PublishEpochLocked(prev.get());
  return Status::Ok();
}

void Trail::SetEpochRetireProbeForTest(std::function<void(uint64_t)> probe) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  epoch_retire_probe_ = std::move(probe);
}

NodeId Trail::FindEvent(const std::string& report_id) const {
  return builder_.graph().FindNode(NodeType::kEvent, report_id);
}

void Trail::SetAbstentionPolicy(const AbstentionPolicy& policy) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  abstention_.store(std::make_shared<const AbstentionPolicy>(policy),
                    std::memory_order_release);
  // Re-publish so epoch-pinned workers pick up the new policy. Neither the
  // TKG nor the models changed, so the fresh epoch shares the graph and CSR
  // structurally with the previous one (the cheap hot-swap path).
  std::shared_ptr<const Epoch> prev = PinEpoch();
  if (prev != nullptr) PublishEpochLocked(prev.get());
  TRAIL_METRIC_SET("core.abstention_enabled", policy.enabled ? 1.0 : 0.0);
}

Result<AbstentionPolicy> Trail::CalibrateAbstention(
    const std::vector<NodeId>& holdout_events, double target_abstain_rate,
    bool hide_neighbor_labels) {
  TRAIL_TRACE_SPAN("core.calibrate_abstention");
  if (holdout_events.empty()) {
    return Status::InvalidArgument("no holdout events to calibrate on");
  }
  auto results = AttributeBatchWithGnn(holdout_events, hide_neighbor_labels);
  std::vector<double> confidences, energies;
  for (const auto& result : results) {
    if (!result.ok()) continue;
    confidences.push_back(result->confidence);
    energies.push_back(result->energy);
  }
  if (confidences.empty()) {
    return Status::FailedPrecondition(
        "no holdout event was attributable; train models first");
  }
  // Each detector gets half the abstention budget: known-actor traffic
  // abstains at most ≈ target_abstain_rate (the two tails can overlap, so
  // usually less), while events outside both tails — the novel actors this
  // is for — trip at least one threshold.
  const double tail =
      std::min(0.5, std::max(0.0, target_abstain_rate * 0.5));
  AbstentionPolicy policy;
  policy.enabled = true;
  policy.min_confidence = ml::Quantile(confidences, tail);
  policy.max_energy = ml::Quantile(energies, 1.0 - tail);
  SetAbstentionPolicy(policy);
  TRAIL_METRIC_SET("core.abstention_min_confidence", policy.min_confidence);
  TRAIL_METRIC_SET("core.abstention_max_energy", policy.max_energy);
  return policy;
}

JsonValue OptionsToJson(const TrailOptions& options) {
  JsonValue build = JsonValue::MakeObject();
  build.Set("enrichment_hops",
            JsonValue::MakeNumber(options.build.enrichment_hops));
  build.Set("drop_invalid_indicators",
            JsonValue::MakeBool(options.build.drop_invalid_indicators));

  JsonValue ae = JsonValue::MakeObject();
  ae.Set("hidden", JsonValue::MakeNumber(
                       static_cast<double>(options.autoencoder.hidden)));
  ae.Set("encoding", JsonValue::MakeNumber(
                         static_cast<double>(options.autoencoder.encoding)));
  ae.Set("epochs", JsonValue::MakeNumber(options.autoencoder.epochs));
  ae.Set("batch_size", JsonValue::MakeNumber(
                           static_cast<double>(options.autoencoder.batch_size)));
  ae.Set("learning_rate",
         JsonValue::MakeNumber(options.autoencoder.learning_rate));
  ae.Set("seed", JsonValue::MakeNumber(
                     static_cast<double>(options.autoencoder.seed)));
  ae.Set("max_train_rows",
         JsonValue::MakeNumber(
             static_cast<double>(options.autoencoder.max_train_rows)));

  JsonValue gnn = JsonValue::MakeObject();
  gnn.Set("layers", JsonValue::MakeNumber(options.gnn.layers));
  gnn.Set("hidden",
          JsonValue::MakeNumber(static_cast<double>(options.gnn.hidden)));
  gnn.Set("learning_rate", JsonValue::MakeNumber(options.gnn.learning_rate));
  gnn.Set("epochs", JsonValue::MakeNumber(options.gnn.epochs));
  gnn.Set("dropout", JsonValue::MakeNumber(options.gnn.dropout));
  gnn.Set("l2_normalize", JsonValue::MakeBool(options.gnn.l2_normalize));
  gnn.Set("seed",
          JsonValue::MakeNumber(static_cast<double>(options.gnn.seed)));
  gnn.Set("label_visible_fraction",
          JsonValue::MakeNumber(options.gnn.label_visible_fraction));
  gnn.Set("label_propagation_features",
          JsonValue::MakeBool(options.gnn.label_propagation_features));

  JsonValue abstention = JsonValue::MakeObject();
  abstention.Set("enabled", JsonValue::MakeBool(options.abstention.enabled));
  abstention.Set("min_confidence",
                 JsonValue::MakeNumber(options.abstention.min_confidence));
  // +inf is not representable in JSON; the disabled sentinel maps to 0.
  abstention.Set("max_energy",
                 JsonValue::MakeNumber(
                     std::isfinite(options.abstention.max_energy)
                         ? options.abstention.max_energy
                         : 0.0));

  JsonValue out = JsonValue::MakeObject();
  out.Set("build", std::move(build));
  out.Set("autoencoder", std::move(ae));
  out.Set("gnn", std::move(gnn));
  out.Set("lp_layers", JsonValue::MakeNumber(options.lp_layers));
  out.Set("abstention", std::move(abstention));
  return out;
}

Status Trail::WriteRunManifest(const std::string& path) const {
  obs::RunManifest manifest("trail");
  manifest.AddOption("trail", OptionsToJson(options_));

  JsonValue state = JsonValue::MakeObject();
  state.Set("nodes", JsonValue::MakeNumber(
                         static_cast<double>(graph().num_nodes())));
  state.Set("edges", JsonValue::MakeNumber(
                         static_cast<double>(graph().num_edges())));
  state.Set("events", JsonValue::MakeNumber(
                          static_cast<double>(builder_.num_events())));
  state.Set("apts", JsonValue::MakeNumber(builder_.num_apts()));
  state.Set("models_trained", JsonValue::MakeBool(models_trained()));
  manifest.AddOption("tkg", std::move(state));
  return manifest.WriteFile(path);
}

}  // namespace trail::core
