#include "core/stats.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "graph/csr.h"

namespace trail::core {

using graph::NodeId;
using graph::NodeType;

TkgStatsReport ComputeTkgStats(const graph::PropertyGraph& graph) {
  TkgStatsReport report;
  report.num_edges = graph.num_edges();
  size_t total_first_order_denominator = 0;
  size_t total_first_order = 0;
  size_t total_reuse_count = 0;
  size_t total_reuse_denominator = 0;

  for (int t = 0; t < graph::kNumNodeTypes; ++t) {
    NodeType type = static_cast<NodeType>(t);
    TypeStats stats;
    stats.type_name = graph::NodeTypeName(type);
    size_t first_order = 0;
    size_t reuse_sum = 0;
    for (NodeId node : graph.NodesOfType(type)) {
      stats.nodes++;
      stats.edge_endpoints += graph.degree(node);
      if (graph.first_order(node)) {
        ++first_order;
        reuse_sum += graph.report_count(node);
      }
    }
    stats.avg_degree = stats.nodes == 0
                           ? 0.0
                           : static_cast<double>(stats.edge_endpoints) /
                                 stats.nodes;
    const bool ioc_type = type == NodeType::kIp || type == NodeType::kUrl ||
                          type == NodeType::kDomain;
    if (ioc_type && stats.nodes > 0) {
      stats.first_order_fraction =
          static_cast<double>(first_order) / stats.nodes;
      stats.avg_reuse = first_order == 0
                            ? 0.0
                            : static_cast<double>(reuse_sum) / first_order;
      total_first_order_denominator += stats.nodes;
      total_first_order += first_order;
      total_reuse_count += reuse_sum;
      total_reuse_denominator += first_order;
    }
    report.per_type.push_back(stats);
  }

  report.total.type_name = "Total";
  for (const TypeStats& stats : report.per_type) {
    report.total.nodes += stats.nodes;
    report.total.edge_endpoints += stats.edge_endpoints;
  }
  report.total.avg_degree =
      report.total.nodes == 0
          ? 0.0
          : static_cast<double>(report.total.edge_endpoints) /
                report.total.nodes;
  if (total_first_order_denominator > 0) {
    report.total.first_order_fraction =
        static_cast<double>(total_first_order) /
        total_first_order_denominator;
  }
  if (total_reuse_denominator > 0) {
    report.total.avg_reuse = static_cast<double>(total_reuse_count) /
                             total_reuse_denominator;
  }
  return report;
}

std::map<int, size_t> ReuseHistogram(const graph::PropertyGraph& graph,
                                     NodeType type) {
  std::map<int, size_t> histogram;
  for (NodeId node : graph.NodesOfType(type)) {
    if (!graph.first_order(node)) continue;
    histogram[graph.report_count(node)]++;
  }
  return histogram;
}

ConnectivityReport ComputeConnectivity(const graph::PropertyGraph& graph) {
  ConnectivityReport report;

  graph::CsrGraph full = graph::CsrGraph::Build(graph);
  auto full_cc = graph::ConnectedComponents(full);
  report.full_components = full_cc.num_components;
  if (full_cc.largest_component >= 0) {
    report.full_largest = full_cc.sizes[full_cc.largest_component];
    report.full_largest_fraction =
        static_cast<double>(report.full_largest) / graph.num_nodes();
    // Seed the sweep inside the largest component.
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      if (full_cc.component[v] == full_cc.largest_component) {
        report.full_diameter = graph::DoubleSweepDiameter(full, v);
        break;
      }
    }
  }

  // First-order-only subgraph: events + first-order IOCs (ASNs dropped, as
  // they are enrichment products).
  std::vector<uint8_t> keep(graph.num_nodes(), 0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.type(v) == NodeType::kEvent || graph.first_order(v)) keep[v] = 1;
  }
  graph::CsrGraph first_order = graph::CsrGraph::Build(graph, &keep);
  auto fo_cc = graph::ConnectedComponents(first_order);
  report.first_order_components = fo_cc.num_components;
  if (fo_cc.largest_component >= 0) {
    report.first_order_largest = fo_cc.sizes[fo_cc.largest_component];
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      if (keep[v] && fo_cc.component[v] == fo_cc.largest_component) {
        report.first_order_diameter =
            graph::DoubleSweepDiameter(first_order, v);
        break;
      }
    }
  }

  // Fraction of events with another event exactly 2 hops away (shared
  // first-order IOC) in the full graph.
  std::vector<NodeId> events = graph.NodesOfType(NodeType::kEvent);
  size_t with_neighbor_event = 0;
  for (NodeId event : events) {
    bool found = false;
    for (const graph::Neighbor& nb : graph.neighbors(event)) {
      for (const graph::Neighbor& nb2 : graph.neighbors(nb.node)) {
        if (nb2.node != event &&
            graph.type(nb2.node) == NodeType::kEvent) {
          found = true;
          break;
        }
      }
      if (found) break;
    }
    if (found) ++with_neighbor_event;
  }
  report.events_within_two_hops =
      events.empty() ? 0.0
                     : static_cast<double>(with_neighbor_event) / events.size();
  return report;
}

}  // namespace trail::core
