#ifndef TRAIL_CORE_STUDY_H_
#define TRAIL_CORE_STUDY_H_

#include <vector>

#include "core/trail.h"
#include "osint/report.h"

namespace trail::core {

/// How the monthly-retraining track updates the model after each month.
enum class RetrainMode {
  /// Retrain the GNN from scratch on the grown TKG every month (the
  /// paper's baseline protocol; most faithful, most expensive).
  kScratch,
  /// Warm-start: delta-append the month into the TKG/CSR/model view and
  /// fine-tune the existing GNN for a few epochs.
  kIncremental,
  /// Incremental by default, falling back to a scratch retrain when the
  /// month's macro-F1 drops more than `auto_scratch_drop` below the best
  /// month seen so far — the staleness policy's concept-drift response.
  kAuto,
};

const char* RetrainModeName(RetrainMode mode);

/// One evaluated month of the longitudinal protocol.
struct MonthOutcome {
  int month_index = 0;
  size_t num_reports = 0;
  double accuracy = 0.0;
  double balanced_accuracy = 0.0;
  double macro_f1 = 0.0;
  /// Wall time of the whole month (append + attribution + retrain) and of
  /// just the model update, for the scratch-vs-incremental comparison.
  double wall_ms = 0.0;
  double retrain_wall_ms = 0.0;
  /// What actually ran this month. `mode_used` records the executed update
  /// (kScratch when auto or class growth forced a fallback), `retrained`
  /// whether any update ran, `scratch_fallback` whether an incremental
  /// request was escalated to scratch.
  RetrainMode mode_used = RetrainMode::kIncremental;
  bool retrained = false;
  bool scratch_fallback = false;
  std::vector<graph::NodeId> event_nodes;
  std::vector<int> truth;       // APT ids (-1 unknown actor tag)
  std::vector<int> predicted;   // -1 = unattributable OR abstained
  /// Forced-label (argmax) predictions, ignoring the abstention policy —
  /// the pre-open-set behavior, kept so every month can compare the two.
  std::vector<int> forced;
  /// Per-event novelty score (1 - max softmax) and energy, aligned with
  /// `truth`; NaN-free (0 for failed attributions).
  std::vector<double> novelty;
  std::vector<double> energy;
  /// Per-class F1 of `predicted` (abstentions count as misses), one entry
  /// per known class — the schema shared by fig8 and the scenario matrix.
  std::vector<double> per_class_f1;

  // Open-set quality of the abstention head. "Novel" = truth < 0 (the actor
  // tag was unknown to the training roster).
  double abstention_rate = 0.0;   // abstained / attributable events
  double open_set_precision = 0.0;  // of abstained: fraction truly novel
  double open_set_recall = 0.0;     // of novel: fraction abstained
  double open_set_auroc = 0.5;      // novelty score ranks novel above known
  /// Macro-F1 over K+1 classes (novel truth and abstentions both map to the
  /// extra "unknown" class K) — the honest open-set score.
  double open_set_macro_f1 = 0.0;
  /// Same K+1 scoring applied to `forced`: a forced-label classifier never
  /// predicts "unknown", so novel events are always wrong. The gap to
  /// open_set_macro_f1 is what the abstention head buys.
  double forced_open_set_macro_f1 = 0.0;
};

struct StudyOptions {
  /// After evaluating a month, merge its confirmed labels into the TKG and
  /// update the model (the paper's monthly-retraining track). When false
  /// the model and label set stay frozen (the staleness track).
  bool retrain_monthly = true;
  RetrainMode retrain_mode = RetrainMode::kIncremental;
  int fine_tune_epochs = 8;
  /// kAuto falls back to scratch when a month's macro-F1 is more than this
  /// far below the best month observed so far.
  double auto_scratch_drop = 0.15;
  /// Study-side abstention operating point applied to each month's
  /// attributions. Independent of the Trail-installed serving policy so a
  /// study can sweep thresholds without mutating the serving plane;
  /// disabled by default (predicted == forced, the pre-open-set behavior).
  AbstentionPolicy abstention;
  /// kAuto also falls back to scratch when a month's abstention rate
  /// exceeds this — "the model stopped recognizing the stream" is concept
  /// drift even when macro-F1 hasn't cratered yet. > 1 disables (default).
  double auto_scratch_abstention = 1.1;
};

/// Drives the paper's Section VII-C months-long investigation over one
/// Trail instance: each month's reports arrive unattributed and are
/// delta-appended as one batch, every new event is attributed with the GNN,
/// then (optionally) the confirmed labels are merged and the model updated
/// — incrementally, from scratch, or adaptively — before the next month.
class Study {
 public:
  Study(Trail* trail, StudyOptions options)
      : trail_(trail), options_(options) {}

  /// Evaluates one month of reports and, in retraining mode, updates the
  /// system afterwards. Reports whose actor tag is unknown to the roster
  /// count as truth -1 (always scored wrong, like the paper's unseen-APT
  /// caveat).
  Result<MonthOutcome> RunMonth(
      const std::vector<const osint::PulseReport*>& reports);

  const std::vector<MonthOutcome>& history() const { return history_; }

  /// Best monthly macro-F1 observed so far (the kAuto staleness baseline).
  double best_macro_f1() const { return best_macro_f1_; }

 private:
  /// Runs the post-evaluation model update and returns the executed mode.
  Status Retrain(MonthOutcome* outcome);

  Trail* trail_;
  StudyOptions options_;
  std::vector<MonthOutcome> history_;
  double best_macro_f1_ = 0.0;
};

}  // namespace trail::core

#endif  // TRAIL_CORE_STUDY_H_
