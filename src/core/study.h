#ifndef TRAIL_CORE_STUDY_H_
#define TRAIL_CORE_STUDY_H_

#include <vector>

#include "core/trail.h"
#include "osint/report.h"

namespace trail::core {

/// One evaluated month of the longitudinal protocol.
struct MonthOutcome {
  int month_index = 0;
  size_t num_reports = 0;
  double accuracy = 0.0;
  double balanced_accuracy = 0.0;
  std::vector<graph::NodeId> event_nodes;
  std::vector<int> truth;       // APT ids (-1 unknown actor tag)
  std::vector<int> predicted;   // -1 = unattributable
};

struct StudyOptions {
  /// After evaluating a month, merge its confirmed labels into the TKG and
  /// fine-tune (the paper's monthly-retraining track). When false the model
  /// and label set stay frozen (the staleness track).
  bool retrain_monthly = true;
  int fine_tune_epochs = 8;
};

/// Drives the paper's Section VII-C months-long investigation over one
/// Trail instance: each month's reports arrive unattributed, are attributed
/// on arrival with the GNN, then (optionally) their confirmed labels are
/// merged and the model fine-tuned before the next month.
class Study {
 public:
  Study(Trail* trail, StudyOptions options)
      : trail_(trail), options_(options) {}

  /// Evaluates one month of reports and, in retraining mode, updates the
  /// system afterwards. Reports whose actor tag is unknown to the roster
  /// count as truth -1 (always scored wrong, like the paper's unseen-APT
  /// caveat).
  Result<MonthOutcome> RunMonth(
      const std::vector<const osint::PulseReport*>& reports);

  const std::vector<MonthOutcome>& history() const { return history_; }

 private:
  Trail* trail_;
  StudyOptions options_;
  std::vector<MonthOutcome> history_;
};

}  // namespace trail::core

#endif  // TRAIL_CORE_STUDY_H_
