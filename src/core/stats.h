#ifndef TRAIL_CORE_STATS_H_
#define TRAIL_CORE_STATS_H_

#include <map>
#include <string>
#include <vector>

#include "graph/property_graph.h"

namespace trail::core {

/// One row of the paper's Table II.
struct TypeStats {
  std::string type_name;
  size_t nodes = 0;
  size_t edge_endpoints = 0;   // sum of degrees over nodes of this type
  double avg_degree = 0.0;
  double first_order_fraction = -1.0;  // -1 = n/a (events, ASNs)
  double avg_reuse = -1.0;             // mean report_count of 1st-order IOCs
};

/// Table II: per-type node/edge/degree statistics plus totals.
struct TkgStatsReport {
  std::vector<TypeStats> per_type;
  TypeStats total;
  size_t num_edges = 0;
};
TkgStatsReport ComputeTkgStats(const graph::PropertyGraph& graph);

/// Fig. 4: IOC reuse histogram — for each node type, reuse count ->
/// number of first-order IOCs appearing in that many reports.
std::map<int, size_t> ReuseHistogram(const graph::PropertyGraph& graph,
                                     graph::NodeType type);

/// Section V connectivity: component counts and diameters for the full TKG
/// vs the first-order-only subgraph, plus the fraction of events within two
/// hops of another event.
struct ConnectivityReport {
  size_t full_components = 0;
  size_t full_largest = 0;
  double full_largest_fraction = 0.0;
  int full_diameter = 0;   // double-sweep lower bound on the largest CC
  size_t first_order_components = 0;
  size_t first_order_largest = 0;
  int first_order_diameter = 0;
  double events_within_two_hops = 0.0;
};
ConnectivityReport ComputeConnectivity(const graph::PropertyGraph& graph);

}  // namespace trail::core

#endif  // TRAIL_CORE_STATS_H_
