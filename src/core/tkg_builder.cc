#include "core/tkg_builder.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "ioc/ioc.h"
#include "ioc/url.h"
#include "ioc/vectorizers.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace trail::core {

using graph::EdgeType;
using graph::NodeId;
using graph::NodeType;

TkgBuilder::TkgBuilder(const osint::FeedClient* feed, TkgBuildOptions options)
    : feed_(feed), options_(options) {}

int TkgBuilder::AptIdFor(const std::string& name) {
  auto it = apt_ids_.find(name);
  if (it != apt_ids_.end()) return it->second;
  int id = static_cast<int>(apt_names_.size());
  apt_ids_.emplace(name, id);
  apt_names_.push_back(name);
  return id;
}

Status TkgBuilder::AdoptGraph(graph::PropertyGraph graph,
                              std::vector<std::string> apt_names,
                              size_t num_events) {
  if (graph_.num_nodes() != 0 || num_events_ != 0) {
    return Status::FailedPrecondition(
        "AdoptGraph needs an untouched builder");
  }
  const int num_apts = static_cast<int>(apt_names.size());
  std::unordered_set<NodeId> analyzed;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    switch (graph.type(id)) {
      case NodeType::kIp:
      case NodeType::kDomain:
      case NodeType::kUrl:
        analyzed.insert(id);
        break;
      default:
        break;
    }
    if (graph.label(id) >= num_apts) {
      return Status::FailedPrecondition(
          "adopted graph labels node " + std::to_string(id) +
          " outside the APT roster");
    }
  }
  graph_ = std::move(graph);
  analyzed_ = std::move(analyzed);
  apt_names_ = std::move(apt_names);
  apt_ids_.clear();
  for (int i = 0; i < num_apts; ++i) apt_ids_.emplace(apt_names_[i], i);
  num_events_ = num_events;
  TRAIL_LOG(Info) << "adopted TKG from store: " << graph_.num_nodes()
                  << " nodes, " << graph_.num_edges() << " edges, "
                  << num_events_ << " events, " << num_apts << " APTs";
  return Status::Ok();
}

Result<NodeId> TkgBuilder::IngestReportJson(const std::string& json) {
  auto report = osint::PulseReport::FromJsonString(json);
  if (!report.ok()) return report.status();
  return IngestReport(report.value());
}

Status TkgBuilder::IngestAll(const std::vector<std::string>& report_jsons) {
  TRAIL_TRACE_SPAN("graph.ingest_all");
  const size_t n = report_jsons.size();

  // Phase 1: parse every report in parallel into indexed slots. Ingest
  // order below stays serial, so node ids, APT ids, and error behavior are
  // identical to a fully serial run.
  std::vector<osint::PulseReport> reports(n);
  std::vector<Status> parse_status(n);
  ParallelForEachIndex(n, [&](size_t i) {
    auto report = osint::PulseReport::FromJsonString(report_jsons[i]);
    if (report.ok()) {
      reports[i] = std::move(report).value();
    } else {
      parse_status[i] = report.status();
    }
  }, /*min_chunk=*/8);

  // Reports past the first parse failure are unreachable in the serial
  // path too, so exclude them from ingest and prefetch alike.
  size_t limit = n;
  for (size_t i = 0; i < n; ++i) {
    if (!parse_status[i].ok()) {
      limit = i;
      break;
    }
  }

  // Phase 2: analyze + vectorize all new hop-1 indicators in parallel; the
  // serial ingest consumes the caches instead of querying the feed.
  PrefetchHop1Analyses(reports, limit);

  for (size_t i = 0; i < limit; ++i) {
    auto event = IngestReport(reports[i]);
    if (!event.ok()) {
      ClearAnalysisCaches();
      return event.status();
    }
  }
  ClearAnalysisCaches();
  if (limit < n) return parse_status[limit];
  TRAIL_LOG(Info) << "ingested " << report_jsons.size() << " reports; TKG now "
                  << graph_.num_nodes() << " nodes, " << graph_.num_edges()
                  << " edges";
  return Status::Ok();
}

Result<TkgAppendDelta> TkgBuilder::AppendReports(
    const std::vector<osint::PulseReport>& reports) {
  TRAIL_TRACE_SPAN("graph.append_reports");
  TkgAppendDelta delta;
  delta.first_new_node = graph_.num_nodes();
  delta.first_new_edge = graph_.num_edges();
  delta.event_nodes.reserve(reports.size());

  PrefetchHop1Analyses(reports, reports.size());
  for (const osint::PulseReport& report : reports) {
    auto event = IngestReport(report);
    if (event.ok()) {
      delta.event_nodes.push_back(event.value());
    } else if (event.status().code() == StatusCode::kAlreadyExists) {
      delta.event_nodes.push_back(graph::kInvalidNode);
    } else {
      ClearAnalysisCaches();
      return event.status();
    }
  }
  ClearAnalysisCaches();

  delta.num_new_nodes = graph_.num_nodes() - delta.first_new_node;
  delta.num_new_edges = graph_.num_edges() - delta.first_new_edge;
  TRAIL_METRIC_INC("graph.appends");
  TRAIL_METRIC_OBSERVE("graph.append_new_nodes",
                       static_cast<double>(delta.num_new_nodes));
  TRAIL_METRIC_OBSERVE("graph.append_new_edges",
                       static_cast<double>(delta.num_new_edges));
  return delta;
}

void TkgBuilder::PrefetchHop1Analyses(
    const std::vector<osint::PulseReport>& reports, size_t limit) {
  TRAIL_TRACE_SPAN("graph.prefetch_analyses");
  // Unique, not-yet-analyzed hop-1 indicators in first-seen order, after
  // the same normalization IngestReport applies. Nodes analyzed by an
  // earlier ingest keep their features — the serial path never re-queries
  // them, so neither does the prefetch.
  std::vector<std::string> ip_values;
  std::vector<std::string> domain_values;
  std::vector<std::string> url_values;
  std::unordered_set<std::string> seen_ips;
  std::unordered_set<std::string> seen_domains;
  std::unordered_set<std::string> seen_urls;
  for (size_t i = 0; i < limit; ++i) {
    for (const osint::ReportedIndicator& indicator : reports[i].indicators) {
      std::string value = ioc::Refang(indicator.value);
      ioc::IocType type = ioc::ClassifyIoc(value);
      if (type == ioc::IocType::kUnknown) continue;
      if (type == ioc::IocType::kDomain) value = ToLower(value);
      NodeId existing = graph_.FindNode(ioc::ToNodeType(type), value);
      if (existing != graph::kInvalidNode && analyzed_.count(existing) > 0) {
        continue;
      }
      switch (type) {
        case ioc::IocType::kIp:
          if (seen_ips.insert(value).second) {
            ip_values.push_back(std::move(value));
          }
          break;
        case ioc::IocType::kDomain:
          if (seen_domains.insert(value).second) {
            domain_values.push_back(std::move(value));
          }
          break;
        case ioc::IocType::kUrl:
          if (seen_urls.insert(value).second) {
            url_values.push_back(std::move(value));
          }
          break;
        case ioc::IocType::kUnknown:
          break;
      }
    }
  }

  // Feed lookups land in indexed slots (the underlying World is immutable
  // and the metric counters are atomic, so concurrent lookups are safe).
  std::vector<CachedIpAnalysis> ips(ip_values.size());
  ParallelForEachIndex(ip_values.size(), [&](size_t i) {
    auto analysis = feed_->GetIpAnalysis(ip_values[i]);
    ips[i].found = analysis.ok();
    if (analysis.ok()) ips[i].data = std::move(analysis).value();
  }, /*min_chunk=*/4);
  std::vector<CachedDomainAnalysis> domains(domain_values.size());
  ParallelForEachIndex(domain_values.size(), [&](size_t i) {
    auto analysis = feed_->GetDomainAnalysis(domain_values[i]);
    domains[i].found = analysis.ok();
    if (analysis.ok()) domains[i].data = std::move(analysis).value();
  }, /*min_chunk=*/4);
  std::vector<CachedUrlAnalysis> urls(url_values.size());
  ParallelForEachIndex(url_values.size(), [&](size_t i) {
    auto analysis = feed_->GetUrlAnalysis(url_values[i]);
    urls[i].found = analysis.ok();
    if (analysis.ok()) urls[i].data = std::move(analysis).value();
  }, /*min_chunk=*/4);

  // Vectorize through the batch APIs (parallel inside; a missed lookup
  // vectorizes its default-constructed analysis, same as AnalyzeNode).
  {
    std::vector<const ioc::IpAnalysis*> ptrs(ips.size());
    for (size_t i = 0; i < ips.size(); ++i) ptrs[i] = &ips[i].data;
    std::vector<std::vector<float>> features = ioc::VectorizeIpBatch(ptrs);
    for (size_t i = 0; i < ips.size(); ++i) {
      ips[i].features = std::move(features[i]);
    }
  }
  {
    std::vector<std::string_view> views(domain_values.begin(),
                                        domain_values.end());
    std::vector<const ioc::DomainAnalysis*> ptrs(domains.size());
    for (size_t i = 0; i < domains.size(); ++i) ptrs[i] = &domains[i].data;
    std::vector<std::vector<float>> features =
        ioc::VectorizeDomainBatch(views, ptrs);
    for (size_t i = 0; i < domains.size(); ++i) {
      domains[i].features = std::move(features[i]);
    }
  }
  {
    std::vector<std::string_view> views(url_values.begin(), url_values.end());
    std::vector<const ioc::UrlAnalysis*> ptrs(urls.size());
    for (size_t i = 0; i < urls.size(); ++i) ptrs[i] = &urls[i].data;
    std::vector<std::vector<float>> features =
        ioc::VectorizeUrlBatch(views, ptrs);
    for (size_t i = 0; i < urls.size(); ++i) {
      urls[i].features = std::move(features[i]);
    }
  }

  for (size_t i = 0; i < ip_values.size(); ++i) {
    ip_cache_.emplace(std::move(ip_values[i]), std::move(ips[i]));
  }
  for (size_t i = 0; i < domain_values.size(); ++i) {
    domain_cache_.emplace(std::move(domain_values[i]), std::move(domains[i]));
  }
  for (size_t i = 0; i < url_values.size(); ++i) {
    url_cache_.emplace(std::move(url_values[i]), std::move(urls[i]));
  }
}

void TkgBuilder::ClearAnalysisCaches() {
  ip_cache_.clear();
  domain_cache_.clear();
  url_cache_.clear();
}

Result<NodeId> TkgBuilder::IngestReport(const osint::PulseReport& report) {
  TRAIL_TRACE_SPAN("graph.ingest_report");
  if (report.id.empty()) {
    return Status::InvalidArgument("report without id");
  }
  NodeId event = graph_.AddNode(NodeType::kEvent, report.id);
  if (graph_.degree(event) > 0) {
    TRAIL_METRIC_INC("graph.merge_collisions");
    return Status::AlreadyExists("report already ingested: " + report.id);
  }
  if (!report.apt.empty()) {
    graph_.SetLabel(event, AptIdFor(report.apt));
  }
  graph_.SetTimestamp(event, report.day);
  ++num_events_;

  for (const osint::ReportedIndicator& indicator : report.indicators) {
    std::string value = ioc::Refang(indicator.value);
    ioc::IocType type = ioc::ClassifyIoc(value);
    if (type == ioc::IocType::kUnknown) {
      ++num_dropped_;
      TRAIL_METRIC_INC("graph.indicators_dropped");
      continue;
    }
    if (type == ioc::IocType::kDomain) value = ToLower(value);
    NodeId node = TouchIoc(type, value, /*hop=*/1);
    graph_.SetFirstOrder(node, true);
    if (graph_.AddEdge(event, node, EdgeType::kInReport)) {
      graph_.IncrementReportCount(node);
    }
  }
  TRAIL_METRIC_INC("graph.events_ingested");
  TRAIL_METRIC_SET("graph.nodes", graph_.num_nodes());
  TRAIL_METRIC_SET("graph.edges", graph_.num_edges());
  return event;
}

NodeId TkgBuilder::TouchIoc(ioc::IocType type, const std::string& value,
                            int hop) {
  NodeId node = graph_.AddNode(ioc::ToNodeType(type), value);
  if (analyzed_.insert(node).second) {
    TRAIL_METRIC_INC("graph.iocs_analyzed");
    if (hop > 1) TRAIL_METRIC_INC("graph.secondary_iocs_discovered");
    AnalyzeNode(node, type, value, hop);
  }
  return node;
}

void TkgBuilder::AnalyzeNode(NodeId node, ioc::IocType type,
                             const std::string& value, int hop) {
  const bool may_spawn = hop < options_.enrichment_hops;
  switch (type) {
    case ioc::IocType::kIp: {
      ioc::IpAnalysis data;
      std::vector<float> features;
      bool found;
      auto cached = ip_cache_.find(value);
      if (cached != ip_cache_.end()) {
        found = cached->second.found;
        data = std::move(cached->second.data);
        features = std::move(cached->second.features);
        ip_cache_.erase(cached);
      } else {
        auto analysis = feed_->GetIpAnalysis(value);
        found = analysis.ok();
        if (found) data = std::move(analysis).value();
        features = ioc::VectorizeIp(data);
      }
      if (!found) {
        ++num_analysis_misses_;
        TRAIL_METRIC_INC("graph.analysis_misses");
      }
      graph_.SetFeatures(node, std::move(features));
      graph_.SetTimestamp(node, data.first_seen_days);
      if (data.asn >= 0) {
        // ASNs are lightweight group nodes; they never spawn further IOCs,
        // so materialize regardless of hop (paper: InGroup edges from any
        // analyzed IP).
        NodeId asn =
            graph_.AddNode(NodeType::kAsn, "AS" + std::to_string(data.asn));
        graph_.AddEdge(node, asn, EdgeType::kInGroup);
      }
      for (const std::string& domain_name : data.resolved_domains) {
        std::string domain = ToLower(domain_name);
        NodeId existing = graph_.FindNode(NodeType::kDomain, domain);
        if (existing == graph::kInvalidNode && !may_spawn) continue;
        NodeId target = may_spawn
                            ? TouchIoc(ioc::IocType::kDomain, domain, hop + 1)
                            : existing;
        graph_.AddEdge(node, target, EdgeType::kARecord);
      }
      break;
    }
    case ioc::IocType::kDomain: {
      ioc::DomainAnalysis data;
      std::vector<float> features;
      bool found;
      auto cached = domain_cache_.find(value);
      if (cached != domain_cache_.end()) {
        found = cached->second.found;
        data = std::move(cached->second.data);
        features = std::move(cached->second.features);
        domain_cache_.erase(cached);
      } else {
        auto analysis = feed_->GetDomainAnalysis(value);
        found = analysis.ok();
        if (found) data = std::move(analysis).value();
        features = ioc::VectorizeDomain(value, data);
      }
      if (!found) {
        ++num_analysis_misses_;
        TRAIL_METRIC_INC("graph.analysis_misses");
      }
      graph_.SetFeatures(node, std::move(features));
      graph_.SetTimestamp(node, data.first_seen_days);
      for (const std::string& addr : data.resolved_ips) {
        NodeId existing = graph_.FindNode(NodeType::kIp, addr);
        if (existing == graph::kInvalidNode && !may_spawn) continue;
        NodeId target = may_spawn
                            ? TouchIoc(ioc::IocType::kIp, addr, hop + 1)
                            : existing;
        graph_.AddEdge(node, target, EdgeType::kResolvesTo);
      }
      break;
    }
    case ioc::IocType::kUrl: {
      ioc::UrlAnalysis data;
      std::vector<float> features;
      bool found;
      auto cached = url_cache_.find(value);
      if (cached != url_cache_.end()) {
        found = cached->second.found;
        data = std::move(cached->second.data);
        features = std::move(cached->second.features);
        url_cache_.erase(cached);
      } else {
        auto analysis = feed_->GetUrlAnalysis(value);
        found = analysis.ok();
        if (found) data = std::move(analysis).value();
        features = ioc::VectorizeUrl(value, data);
      }
      if (!found) {
        ++num_analysis_misses_;
        TRAIL_METRIC_INC("graph.analysis_misses");
      }
      graph_.SetFeatures(node, std::move(features));
      // HostedOn is derivable lexically even with no analysis (paper
      // Table I).
      auto parsed = ioc::ParseUrl(value);
      if (parsed.ok()) {
        const std::string host = ioc::HostDomain(parsed.value());
        if (!host.empty()) {
          NodeId existing = graph_.FindNode(NodeType::kDomain, host);
          if (existing != graph::kInvalidNode || may_spawn) {
            NodeId target =
                may_spawn ? TouchIoc(ioc::IocType::kDomain, host, hop + 1)
                          : existing;
            graph_.AddEdge(node, target, EdgeType::kHostedOn);
          }
        } else if (parsed.value().host_is_ip) {
          // URL directly on an IP literal.
          NodeId existing =
              graph_.FindNode(NodeType::kIp, parsed.value().host);
          if (existing != graph::kInvalidNode || may_spawn) {
            NodeId target =
                may_spawn
                    ? TouchIoc(ioc::IocType::kIp, parsed.value().host, hop + 1)
                    : existing;
            graph_.AddEdge(node, target, EdgeType::kResolvesTo);
          }
        }
      }
      if (!data.resolved_ip.empty()) {
        NodeId existing = graph_.FindNode(NodeType::kIp, data.resolved_ip);
        if (existing != graph::kInvalidNode || may_spawn) {
          NodeId target =
              may_spawn
                  ? TouchIoc(ioc::IocType::kIp, data.resolved_ip, hop + 1)
                  : existing;
          graph_.AddEdge(node, target, EdgeType::kResolvesTo);
        }
      }
      break;
    }
    case ioc::IocType::kUnknown:
      break;
  }
}

}  // namespace trail::core
