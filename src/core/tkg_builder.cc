#include "core/tkg_builder.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "ioc/ioc.h"
#include "ioc/url.h"
#include "ioc/vectorizers.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace trail::core {

using graph::EdgeType;
using graph::NodeId;
using graph::NodeType;

TkgBuilder::TkgBuilder(const osint::FeedClient* feed, TkgBuildOptions options)
    : feed_(feed), options_(options) {}

int TkgBuilder::AptIdFor(const std::string& name) {
  auto it = apt_ids_.find(name);
  if (it != apt_ids_.end()) return it->second;
  int id = static_cast<int>(apt_names_.size());
  apt_ids_.emplace(name, id);
  apt_names_.push_back(name);
  return id;
}

Result<NodeId> TkgBuilder::IngestReportJson(const std::string& json) {
  auto report = osint::PulseReport::FromJsonString(json);
  if (!report.ok()) return report.status();
  return IngestReport(report.value());
}

Status TkgBuilder::IngestAll(const std::vector<std::string>& report_jsons) {
  TRAIL_TRACE_SPAN("graph.ingest_all");
  for (const std::string& json : report_jsons) {
    auto event = IngestReportJson(json);
    if (!event.ok()) return event.status();
  }
  TRAIL_LOG(Info) << "ingested " << report_jsons.size() << " reports; TKG now "
                  << graph_.num_nodes() << " nodes, " << graph_.num_edges()
                  << " edges";
  return Status::Ok();
}

Result<NodeId> TkgBuilder::IngestReport(const osint::PulseReport& report) {
  TRAIL_TRACE_SPAN("graph.ingest_report");
  if (report.id.empty()) {
    return Status::InvalidArgument("report without id");
  }
  NodeId event = graph_.AddNode(NodeType::kEvent, report.id);
  if (graph_.degree(event) > 0) {
    TRAIL_METRIC_INC("graph.merge_collisions");
    return Status::AlreadyExists("report already ingested: " + report.id);
  }
  if (!report.apt.empty()) {
    graph_.SetLabel(event, AptIdFor(report.apt));
  }
  graph_.SetTimestamp(event, report.day);
  ++num_events_;

  for (const osint::ReportedIndicator& indicator : report.indicators) {
    std::string value = ioc::Refang(indicator.value);
    ioc::IocType type = ioc::ClassifyIoc(value);
    if (type == ioc::IocType::kUnknown) {
      ++num_dropped_;
      TRAIL_METRIC_INC("graph.indicators_dropped");
      continue;
    }
    if (type == ioc::IocType::kDomain) value = ToLower(value);
    NodeId node = TouchIoc(type, value, /*hop=*/1);
    graph_.SetFirstOrder(node, true);
    if (graph_.AddEdge(event, node, EdgeType::kInReport)) {
      graph_.IncrementReportCount(node);
    }
  }
  TRAIL_METRIC_INC("graph.events_ingested");
  TRAIL_METRIC_SET("graph.nodes", graph_.num_nodes());
  TRAIL_METRIC_SET("graph.edges", graph_.num_edges());
  return event;
}

NodeId TkgBuilder::TouchIoc(ioc::IocType type, const std::string& value,
                            int hop) {
  NodeId node = graph_.AddNode(ioc::ToNodeType(type), value);
  if (analyzed_.insert(node).second) {
    TRAIL_METRIC_INC("graph.iocs_analyzed");
    if (hop > 1) TRAIL_METRIC_INC("graph.secondary_iocs_discovered");
    AnalyzeNode(node, type, value, hop);
  }
  return node;
}

void TkgBuilder::AnalyzeNode(NodeId node, ioc::IocType type,
                             const std::string& value, int hop) {
  const bool may_spawn = hop < options_.enrichment_hops;
  switch (type) {
    case ioc::IocType::kIp: {
      auto analysis = feed_->GetIpAnalysis(value);
      ioc::IpAnalysis data;
      if (analysis.ok()) {
        data = analysis.value();
      } else {
        ++num_analysis_misses_;
        TRAIL_METRIC_INC("graph.analysis_misses");
      }
      graph_.SetFeatures(node, ioc::VectorizeIp(data));
      graph_.SetTimestamp(node, data.first_seen_days);
      if (data.asn >= 0) {
        // ASNs are lightweight group nodes; they never spawn further IOCs,
        // so materialize regardless of hop (paper: InGroup edges from any
        // analyzed IP).
        NodeId asn =
            graph_.AddNode(NodeType::kAsn, "AS" + std::to_string(data.asn));
        graph_.AddEdge(node, asn, EdgeType::kInGroup);
      }
      for (const std::string& domain_name : data.resolved_domains) {
        std::string domain = ToLower(domain_name);
        NodeId existing = graph_.FindNode(NodeType::kDomain, domain);
        if (existing == graph::kInvalidNode && !may_spawn) continue;
        NodeId target = may_spawn
                            ? TouchIoc(ioc::IocType::kDomain, domain, hop + 1)
                            : existing;
        graph_.AddEdge(node, target, EdgeType::kARecord);
      }
      break;
    }
    case ioc::IocType::kDomain: {
      auto analysis = feed_->GetDomainAnalysis(value);
      ioc::DomainAnalysis data;
      if (analysis.ok()) {
        data = analysis.value();
      } else {
        ++num_analysis_misses_;
        TRAIL_METRIC_INC("graph.analysis_misses");
      }
      graph_.SetFeatures(node, ioc::VectorizeDomain(value, data));
      graph_.SetTimestamp(node, data.first_seen_days);
      for (const std::string& addr : data.resolved_ips) {
        NodeId existing = graph_.FindNode(NodeType::kIp, addr);
        if (existing == graph::kInvalidNode && !may_spawn) continue;
        NodeId target = may_spawn
                            ? TouchIoc(ioc::IocType::kIp, addr, hop + 1)
                            : existing;
        graph_.AddEdge(node, target, EdgeType::kResolvesTo);
      }
      break;
    }
    case ioc::IocType::kUrl: {
      auto analysis = feed_->GetUrlAnalysis(value);
      ioc::UrlAnalysis data;
      if (analysis.ok()) {
        data = analysis.value();
      } else {
        ++num_analysis_misses_;
        TRAIL_METRIC_INC("graph.analysis_misses");
      }
      graph_.SetFeatures(node, ioc::VectorizeUrl(value, data));
      // HostedOn is derivable lexically even with no analysis (paper
      // Table I).
      auto parsed = ioc::ParseUrl(value);
      if (parsed.ok()) {
        const std::string host = ioc::HostDomain(parsed.value());
        if (!host.empty()) {
          NodeId existing = graph_.FindNode(NodeType::kDomain, host);
          if (existing != graph::kInvalidNode || may_spawn) {
            NodeId target =
                may_spawn ? TouchIoc(ioc::IocType::kDomain, host, hop + 1)
                          : existing;
            graph_.AddEdge(node, target, EdgeType::kHostedOn);
          }
        } else if (parsed.value().host_is_ip) {
          // URL directly on an IP literal.
          NodeId existing =
              graph_.FindNode(NodeType::kIp, parsed.value().host);
          if (existing != graph::kInvalidNode || may_spawn) {
            NodeId target =
                may_spawn
                    ? TouchIoc(ioc::IocType::kIp, parsed.value().host, hop + 1)
                    : existing;
            graph_.AddEdge(node, target, EdgeType::kResolvesTo);
          }
        }
      }
      if (!data.resolved_ip.empty()) {
        NodeId existing = graph_.FindNode(NodeType::kIp, data.resolved_ip);
        if (existing != graph::kInvalidNode || may_spawn) {
          NodeId target =
              may_spawn
                  ? TouchIoc(ioc::IocType::kIp, data.resolved_ip, hop + 1)
                  : existing;
          graph_.AddEdge(node, target, EdgeType::kResolvesTo);
        }
      }
      break;
    }
    case ioc::IocType::kUnknown:
      break;
  }
}

}  // namespace trail::core
