#ifndef TRAIL_CORE_ENCODERS_H_
#define TRAIL_CORE_ENCODERS_H_

#include "gnn/autoencoder.h"
#include "gnn/event_gnn.h"
#include "graph/property_graph.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace trail::core {

/// The trio of per-IOC-type autoencoders of the paper's Section VI-C,
/// fitted unsupervised on the TKG's feature matrices and used to project
/// URL / IP / domain features into one shared latent space.
class IocEncoders {
 public:
  /// Trains all three autoencoders on the features present in `graph`.
  void Fit(const graph::PropertyGraph& graph,
           const gnn::AutoencoderOptions& options);

  /// Encoded feature matrix for every node of `graph` (zeros for events,
  /// ASNs, and feature-less nodes), in node-id order.
  ml::Matrix EncodeAll(const graph::PropertyGraph& graph) const;

  /// Encoded features for nodes [first_node, num_nodes) only — one row per
  /// such node, in node-id order. Because every encoder op is row-independent
  /// with a fixed accumulation order, row (v - first_node) here is bitwise
  /// identical to row v of EncodeAll; the incremental monthly append encodes
  /// just the new nodes and still matches a from-scratch encoding exactly.
  ml::Matrix EncodeFrom(const graph::PropertyGraph& graph,
                        graph::NodeId first_node) const;

  bool fitted() const { return fitted_; }
  size_t encoding_dim() const { return encoding_dim_; }

  /// Writes the three fitted autoencoders as one checkpoint section.
  void SaveState(BinaryWriter* w) const;

  /// Restores a section written by SaveState; fails cleanly on truncation
  /// or inconsistent encoder dimensions.
  Status LoadState(BinaryReader* r);

  const gnn::Autoencoder& url() const { return url_; }
  const gnn::Autoencoder& ip() const { return ip_; }
  const gnn::Autoencoder& domain() const { return domain_; }

 private:
  gnn::Autoencoder url_;
  gnn::Autoencoder ip_;
  gnn::Autoencoder domain_;
  size_t encoding_dim_ = 0;
  bool fitted_ = false;
};

/// Compiles the model view of the TKG: node types, encoded features, the
/// neighbor-aggregation spec, and the event list. Node ids are preserved.
gnn::GnnGraph BuildGnnGraph(const graph::PropertyGraph& graph,
                            const ml::Matrix& encoded);

/// Induced model view on a node subset (e.g. a k-hop ego-net for the
/// explainer). `nodes[i]` becomes local id i; returns the view plus nothing
/// else — callers keep `nodes` as the local->global map.
gnn::GnnGraph BuildGnnSubgraph(const graph::PropertyGraph& graph,
                               const ml::Matrix& encoded,
                               const std::vector<graph::NodeId>& nodes);

/// Grows an existing model view in place after a TKG append: `g` was built
/// over the first g->num_nodes nodes of `graph`, `encoded_new` holds one row
/// per node added since (from IocEncoders::EncodeFrom). Old encoded rows are
/// kept verbatim (IOC features are frozen after first analysis); the
/// aggregation spec is rebuilt from the full graph because appended edges
/// also extend old nodes' neighborhoods. The result is bitwise identical to
/// BuildGnnGraph(graph, EncodeAll(graph)).
void ExtendGnnGraph(const graph::PropertyGraph& graph,
                    const ml::Matrix& encoded_new, gnn::GnnGraph* g);

}  // namespace trail::core

#endif  // TRAIL_CORE_ENCODERS_H_
