#ifndef TRAIL_CORE_ENCODERS_H_
#define TRAIL_CORE_ENCODERS_H_

#include "gnn/autoencoder.h"
#include "gnn/event_gnn.h"
#include "graph/property_graph.h"

namespace trail::core {

/// The trio of per-IOC-type autoencoders of the paper's Section VI-C,
/// fitted unsupervised on the TKG's feature matrices and used to project
/// URL / IP / domain features into one shared latent space.
class IocEncoders {
 public:
  /// Trains all three autoencoders on the features present in `graph`.
  void Fit(const graph::PropertyGraph& graph,
           const gnn::AutoencoderOptions& options);

  /// Encoded feature matrix for every node of `graph` (zeros for events,
  /// ASNs, and feature-less nodes), in node-id order.
  ml::Matrix EncodeAll(const graph::PropertyGraph& graph) const;

  bool fitted() const { return fitted_; }
  size_t encoding_dim() const { return encoding_dim_; }

  const gnn::Autoencoder& url() const { return url_; }
  const gnn::Autoencoder& ip() const { return ip_; }
  const gnn::Autoencoder& domain() const { return domain_; }

 private:
  gnn::Autoencoder url_;
  gnn::Autoencoder ip_;
  gnn::Autoencoder domain_;
  size_t encoding_dim_ = 0;
  bool fitted_ = false;
};

/// Compiles the model view of the TKG: node types, encoded features, the
/// neighbor-aggregation spec, and the event list. Node ids are preserved.
gnn::GnnGraph BuildGnnGraph(const graph::PropertyGraph& graph,
                            const ml::Matrix& encoded);

/// Induced model view on a node subset (e.g. a k-hop ego-net for the
/// explainer). `nodes[i]` becomes local id i; returns the view plus nothing
/// else — callers keep `nodes` as the local->global map.
gnn::GnnGraph BuildGnnSubgraph(const graph::PropertyGraph& graph,
                               const ml::Matrix& encoded,
                               const std::vector<graph::NodeId>& nodes);

}  // namespace trail::core

#endif  // TRAIL_CORE_ENCODERS_H_
