#ifndef TRAIL_CORE_TKG_BUILDER_H_
#define TRAIL_CORE_TKG_BUILDER_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/property_graph.h"
#include "osint/feed_client.h"
#include "osint/report.h"
#include "util/status.h"

namespace trail::core {

struct TkgBuildOptions {
  /// IOC-discovery radius from the event (paper: "we limit it to two hops").
  /// Nodes at the limit are still analyzed for features and for edges to
  /// already-known nodes; they just stop spawning new nodes.
  int enrichment_hops = 2;
  /// Drop indicators that fail IOC classification (the paper's scrubbed
  /// "javascript snippet" artifacts).
  bool drop_invalid_indicators = true;
};

/// Watermarks describing what one AppendReports call added to the TKG.
/// Downstream incremental consumers (CsrGraph::Append, the warm-start GNN
/// cache) key off the node/edge boundaries; everything at id >=
/// first_new_node / first_new_edge is this month's delta.
struct TkgAppendDelta {
  graph::NodeId first_new_node = 0;
  size_t first_new_edge = 0;
  size_t num_new_nodes = 0;
  size_t num_new_edges = 0;
  /// Event node per input report, in order; graph::kInvalidNode for reports
  /// that were already ingested (duplicate feed deliveries are skipped, not
  /// errors, on the append path).
  std::vector<graph::NodeId> event_nodes;
};

/// Builds the TRAIL Knowledge Graph (paper Section IV / Fig. 1a): parses
/// incident-report JSON, interns event + IOC nodes, queries the feed's
/// analysis services to extract features and secondary IOCs, and merges
/// everything into one PropertyGraph. Ingestion is incremental — the
/// longitudinal study keeps calling IngestReport as new months arrive.
class TkgBuilder {
 public:
  TkgBuilder(const osint::FeedClient* feed, TkgBuildOptions options);

  /// Ingests a raw JSON report (the feed wire format).
  Result<graph::NodeId> IngestReportJson(const std::string& json);

  /// Ingests a parsed report. Returns the event node id.
  Result<graph::NodeId> IngestReport(const osint::PulseReport& report);

  /// Ingests every report in the list; stops on the first error.
  Status IngestAll(const std::vector<std::string>& report_jsons);

  /// Delta-appends one batch (typically a month) of parsed reports: hop-1
  /// analyses are prefetched in parallel, then reports ingest serially in
  /// order, exactly as IngestAll would — the resulting graph is identical
  /// to having ingested these reports one by one. Returns the node/edge
  /// watermarks of the appended delta. Duplicate reports are skipped (their
  /// event_nodes entry is kInvalidNode); any other per-report failure stops
  /// the append and returns its status.
  Result<TkgAppendDelta> AppendReports(
      const std::vector<osint::PulseReport>& reports);

  const graph::PropertyGraph& graph() const { return graph_; }
  graph::PropertyGraph& mutable_graph() { return graph_; }

  /// Replaces this (empty) builder's graph with one materialized from the
  /// segment store, rebuilding the derived ingest state the store does not
  /// carry verbatim: the APT id map, the analyzed-IOC set (every persisted
  /// IP/domain/URL node was analyzed when it was first ingested), and the
  /// event counter. After adoption, AppendReports continues exactly as if
  /// this builder had ingested the persisted reports itself.
  Status AdoptGraph(graph::PropertyGraph graph,
                    std::vector<std::string> apt_names, size_t num_events);

  /// APT-name <-> label mapping discovered from report tags, in first-seen
  /// order. Unknown adversary tags get fresh ids.
  int AptIdFor(const std::string& name);
  const std::vector<std::string>& apt_names() const { return apt_names_; }
  int num_apts() const { return static_cast<int>(apt_names_.size()); }

  size_t num_events() const { return num_events_; }
  size_t num_dropped_indicators() const { return num_dropped_; }
  size_t num_analysis_misses() const { return num_analysis_misses_; }

 private:
  /// One prefetched analysis: the feed lookup's outcome, its raw data, and
  /// the feature vector computed from it. AnalyzeNode consumes cache
  /// entries instead of re-querying the feed, so a batch prefetch can run
  /// the expensive lookups + vectorization in parallel while ingest itself
  /// (node interning, edge wiring, label assignment) stays serial and
  /// order-identical.
  struct CachedIpAnalysis {
    bool found = false;
    ioc::IpAnalysis data;
    std::vector<float> features;
  };
  struct CachedDomainAnalysis {
    bool found = false;
    ioc::DomainAnalysis data;
    std::vector<float> features;
  };
  struct CachedUrlAnalysis {
    bool found = false;
    ioc::UrlAnalysis data;
    std::vector<float> features;
  };

  /// Ensures the IOC node exists, runs its analysis once, writes features,
  /// and (when allowed) materializes secondary IOCs. `hop` is the node's
  /// distance from its first event.
  graph::NodeId TouchIoc(ioc::IocType type, const std::string& value, int hop);
  void AnalyzeNode(graph::NodeId node, ioc::IocType type,
                   const std::string& value, int hop);

  /// Analyzes + vectorizes every new hop-1 indicator of reports[0, limit)
  /// in parallel, filling the caches AnalyzeNode consumes. Only touches
  /// indicators whose node is not already analyzed, so feed lookup counts
  /// match the serial path.
  void PrefetchHop1Analyses(const std::vector<osint::PulseReport>& reports,
                            size_t limit);
  void ClearAnalysisCaches();

  const osint::FeedClient* feed_;
  TkgBuildOptions options_;
  graph::PropertyGraph graph_;
  std::unordered_map<std::string, int> apt_ids_;
  std::vector<std::string> apt_names_;
  std::unordered_set<graph::NodeId> analyzed_;
  std::unordered_map<std::string, CachedIpAnalysis> ip_cache_;
  std::unordered_map<std::string, CachedDomainAnalysis> domain_cache_;
  std::unordered_map<std::string, CachedUrlAnalysis> url_cache_;
  size_t num_events_ = 0;
  size_t num_dropped_ = 0;
  size_t num_analysis_misses_ = 0;
};

}  // namespace trail::core

#endif  // TRAIL_CORE_TKG_BUILDER_H_
