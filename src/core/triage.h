#ifndef TRAIL_CORE_TRIAGE_H_
#define TRAIL_CORE_TRIAGE_H_

#include <string>
#include <vector>

#include "graph/algorithms.h"
#include "graph/csr.h"
#include "graph/property_graph.h"

namespace trail::core {

/// One triage row: an IOC of (or near) an event, scored for analyst
/// attention. The paper's Section VII-D closes with exactly this use case —
/// "analysts may still use the IOCs identified as important to continue
/// their search".
struct TriageItem {
  graph::NodeId node = graph::kInvalidNode;
  std::string type_name;
  std::string value;
  double score = 0.0;
  int reuse_count = 0;      // distinct reports listing this IOC
  bool direct = false;      // listed in the event vs discovered by enrichment
};

struct TriageOptions {
  int max_items = 20;
  /// Weight of graph centrality (PageRank over the TKG) vs reuse evidence.
  double centrality_weight = 0.5;
  int pagerank_iterations = 20;
};

/// Ranks the IOCs within two hops of `event` by a combination of report
/// reuse (direct evidence of shared infrastructure) and PageRank centrality
/// in the TKG (hub infrastructure worth pivoting on). Returns descending by
/// score. `scratch`, when provided, is reused for the two-hop traversal so
/// a caller triaging many events avoids an O(num_nodes) allocation per
/// event.
std::vector<TriageItem> TriageEvent(const graph::PropertyGraph& graph,
                                    const graph::CsrGraph& csr,
                                    graph::NodeId event,
                                    const TriageOptions& options = {},
                                    graph::TraversalScratch* scratch = nullptr);

}  // namespace trail::core

#endif  // TRAIL_CORE_TRIAGE_H_
