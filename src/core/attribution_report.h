#ifndef TRAIL_CORE_ATTRIBUTION_REPORT_H_
#define TRAIL_CORE_ATTRIBUTION_REPORT_H_

#include <string>
#include <vector>

#include "core/trail.h"
#include "util/json.h"

namespace trail::core {

/// A piece of supporting evidence for an attribution verdict: an indicator
/// shared (directly or one step removed) with previously attributed events.
struct Evidence {
  std::string ioc_type;
  std::string ioc_value;
  bool direct = false;  // true: listed in the report; false: via enrichment
  /// Attributed events reachable through this IOC, as (apt, count).
  std::vector<std::pair<std::string, int>> linked_events;
};

/// The analyst-facing output of one attribution: verdicts from both
/// analyzers plus the concrete reuse evidence, serializable to JSON so it
/// can be pushed back to an exchange or a ticketing system.
struct AttributionReport {
  std::string event_id;
  Trail::Attribution lp;
  bool lp_ok = false;
  Trail::Attribution gnn;
  bool gnn_ok = false;
  std::vector<Evidence> evidence;

  JsonValue ToJson() const;
};

/// Builds the full report for an event already merged into the TKG:
/// runs both analyzers and collects up to `max_evidence` reuse indicators
/// (direct first, then one-hop-removed infrastructure).
Result<AttributionReport> BuildAttributionReport(const Trail& trail,
                                                 graph::NodeId event,
                                                 int max_evidence = 10);

}  // namespace trail::core

#endif  // TRAIL_CORE_ATTRIBUTION_REPORT_H_
