#ifndef TRAIL_IOC_FEATURE_SCHEMA_H_
#define TRAIL_IOC_FEATURE_SCHEMA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace trail::ioc {

/// An ordered categorical vocabulary with reverse lookup. Feature vectors
/// one-hot against these; the OSINT simulator samples from the same lists so
/// the "top-N categories" the paper tracks are closed-world here.
class Vocab {
 public:
  explicit Vocab(std::vector<std::string> entries);

  /// Index of `value`, or -1 when out-of-vocabulary (maps to an all-zero
  /// one-hot block, exactly like an unseen category under a top-N encoder).
  int IndexOf(std::string_view value) const;

  const std::string& At(size_t i) const { return entries_[i]; }
  size_t size() const { return entries_.size(); }
  const std::vector<std::string>& entries() const { return entries_; }

 private:
  std::vector<std::string> entries_;
  std::unordered_map<std::string, int> index_;
};

/// Sizes from the paper (Section IV-B). The URL total differs from the
/// paper's stated 1,517 because the component sizes it lists sum to 1,494;
/// we follow the components. The domain total is 116 instead of 115 because
/// we surface first-seen/last-seen explicitly (the paper engineers
/// `active_period` from them during preprocessing, so they must exist).
struct SchemaSizes {
  static constexpr int kCountries = 249;
  static constexpr int kIssuers = 250;
  static constexpr int kIpNumeric = 8;
  static constexpr int kIpTotal = kCountries + kIssuers + kIpNumeric;  // 507

  static constexpr int kFileTypes = 106;
  static constexpr int kFileClasses = 21;
  static constexpr int kHttpCodes = 68;
  static constexpr int kEncodings = 12;
  static constexpr int kServers = 944;
  static constexpr int kOses = 50;
  static constexpr int kServices = 183;
  static constexpr int kUrlTlds = 100;
  static constexpr int kUrlLexical = 10;
  static constexpr int kUrlTotal = kFileTypes + kFileClasses + kHttpCodes +
                                   kEncodings + kServers + kOses + kServices +
                                   kUrlTlds + kUrlLexical;  // 1494

  static constexpr int kDomainTlds = 100;
  static constexpr int kDnsRecordTypes = 9;
  static constexpr int kDomainLexical = 4;
  // TLD + record counts + NXDOMAIN + first/last seen + lexical = 116.
  static constexpr int kDomainTotal =
      kDomainTlds + kDnsRecordTypes + 1 + 2 + kDomainLexical;
};

/// Block offsets within each vector, for vectorizers, tests, and SHAP naming.
struct IpLayout {
  static constexpr int kCountryOffset = 0;
  static constexpr int kIssuerOffset = SchemaSizes::kCountries;
  static constexpr int kNumericOffset =
      SchemaSizes::kCountries + SchemaSizes::kIssuers;
  // Numeric slots.
  static constexpr int kLatitude = kNumericOffset + 0;
  static constexpr int kLongitude = kNumericOffset + 1;
  static constexpr int kARecordCount = kNumericOffset + 2;
  static constexpr int kFirstSeen = kNumericOffset + 3;
  static constexpr int kLastSeen = kNumericOffset + 4;
  static constexpr int kActivePeriod = kNumericOffset + 5;
  static constexpr int kHasReverseDns = kNumericOffset + 6;
  static constexpr int kIsReserved = kNumericOffset + 7;
};

struct UrlLayout {
  static constexpr int kFileTypeOffset = 0;
  static constexpr int kFileClassOffset = SchemaSizes::kFileTypes;
  static constexpr int kHttpCodeOffset =
      kFileClassOffset + SchemaSizes::kFileClasses;
  static constexpr int kEncodingOffset =
      kHttpCodeOffset + SchemaSizes::kHttpCodes;
  static constexpr int kServerOffset =
      kEncodingOffset + SchemaSizes::kEncodings;
  static constexpr int kOsOffset = kServerOffset + SchemaSizes::kServers;
  static constexpr int kServicesOffset = kOsOffset + SchemaSizes::kOses;
  static constexpr int kTldOffset = kServicesOffset + SchemaSizes::kServices;
  static constexpr int kLexicalOffset = kTldOffset + SchemaSizes::kUrlTlds;
  // Lexical slots.
  static constexpr int kLength = kLexicalOffset + 0;
  static constexpr int kHostLength = kLexicalOffset + 1;
  static constexpr int kPathLength = kLexicalOffset + 2;
  static constexpr int kQueryLength = kLexicalOffset + 3;
  static constexpr int kDigitCount = kLexicalOffset + 4;
  static constexpr int kDigitRatio = kLexicalOffset + 5;
  static constexpr int kEntropy = kLexicalOffset + 6;
  static constexpr int kPeriodCount = kLexicalOffset + 7;
  static constexpr int kSlashCount = kLexicalOffset + 8;
  static constexpr int kSpecialCount = kLexicalOffset + 9;
};

struct DomainLayout {
  static constexpr int kTldOffset = 0;
  static constexpr int kRecordCountOffset = SchemaSizes::kDomainTlds;
  static constexpr int kNxdomain =
      kRecordCountOffset + SchemaSizes::kDnsRecordTypes;
  static constexpr int kFirstSeen = kNxdomain + 1;
  static constexpr int kLastSeen = kNxdomain + 2;
  static constexpr int kLexicalOffset = kNxdomain + 3;
  static constexpr int kLength = kLexicalOffset + 0;
  static constexpr int kDigitCount = kLexicalOffset + 1;
  static constexpr int kPeriodCount = kLexicalOffset + 2;
  static constexpr int kEntropy = kLexicalOffset + 3;
};

/// DNS record kinds tracked in passive DNS counts (paper: "9 types").
enum class DnsRecordType {
  kA = 0,
  kAaaa,
  kCname,
  kMx,
  kNs,
  kTxt,
  kSoa,
  kPtr,
  kSrv,
};
const char* DnsRecordTypeName(DnsRecordType type);

/// All vocabularies, built once. Deterministic: real-world head entries
/// (actual country codes, servers, TLDs, MIME types...) padded to the
/// paper's exact sizes with synthetic tail entries.
class FeatureSchemas {
 public:
  static const FeatureSchemas& Get();

  const Vocab& countries() const { return countries_; }
  const Vocab& issuers() const { return issuers_; }
  const Vocab& file_types() const { return file_types_; }
  const Vocab& file_classes() const { return file_classes_; }
  const Vocab& http_codes() const { return http_codes_; }
  const Vocab& encodings() const { return encodings_; }
  const Vocab& servers() const { return servers_; }
  const Vocab& oses() const { return oses_; }
  const Vocab& services() const { return services_; }
  const Vocab& tlds() const { return tlds_; }

  /// Human-readable feature names for explainability output (Fig. 9).
  std::string IpFeatureName(int index) const;
  std::string UrlFeatureName(int index) const;
  std::string DomainFeatureName(int index) const;

 private:
  FeatureSchemas();

  Vocab countries_;
  Vocab issuers_;
  Vocab file_types_;
  Vocab file_classes_;
  Vocab http_codes_;
  Vocab encodings_;
  Vocab servers_;
  Vocab oses_;
  Vocab services_;
  Vocab tlds_;
};

}  // namespace trail::ioc

#endif  // TRAIL_IOC_FEATURE_SCHEMA_H_
