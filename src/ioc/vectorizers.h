#ifndef TRAIL_IOC_VECTORIZERS_H_
#define TRAIL_IOC_VECTORIZERS_H_

#include <string_view>
#include <vector>

#include "ioc/analysis.h"
#include "ioc/feature_schema.h"

namespace trail::ioc {

/// Converts an IP analysis into the fixed 507-dim vector (IpLayout).
/// Timestamps are scaled to years for numeric conditioning.
std::vector<float> VectorizeIp(const IpAnalysis& analysis);

/// Converts a URL string + its probe analysis into the 1494-dim vector
/// (UrlLayout). Lexical features are computed here from the refanged URL.
std::vector<float> VectorizeUrl(std::string_view url,
                                const UrlAnalysis& analysis);

/// Converts a domain string + its DNS analysis into the 116-dim vector
/// (DomainLayout).
std::vector<float> VectorizeDomain(std::string_view domain,
                                   const DomainAnalysis& analysis);

/// Batch variants: vectorize many IOCs at once, in parallel across the
/// thread pool. Output order matches input order and each row is
/// bit-identical to the corresponding single-IOC call at any thread count.
std::vector<std::vector<float>> VectorizeIpBatch(
    const std::vector<const IpAnalysis*>& analyses);
std::vector<std::vector<float>> VectorizeUrlBatch(
    const std::vector<std::string_view>& urls,
    const std::vector<const UrlAnalysis*>& analyses);
std::vector<std::vector<float>> VectorizeDomainBatch(
    const std::vector<std::string_view>& domains,
    const std::vector<const DomainAnalysis*>& analyses);

}  // namespace trail::ioc

#endif  // TRAIL_IOC_VECTORIZERS_H_
