#include "ioc/vectorizers.h"

#include <cctype>

#include "ioc/url.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace trail::ioc {

namespace {

constexpr float kDaysPerYear = 365.25f;

void OneHot(std::vector<float>* v, int offset, int index) {
  if (index >= 0) (*v)[offset + index] = 1.0f;
}

}  // namespace

std::vector<float> VectorizeIp(const IpAnalysis& analysis) {
  const FeatureSchemas& schemas = FeatureSchemas::Get();
  std::vector<float> v(SchemaSizes::kIpTotal, 0.0f);
  OneHot(&v, IpLayout::kCountryOffset,
         schemas.countries().IndexOf(analysis.country));
  OneHot(&v, IpLayout::kIssuerOffset,
         schemas.issuers().IndexOf(analysis.issuer));
  v[IpLayout::kLatitude] = static_cast<float>(analysis.latitude / 90.0);
  v[IpLayout::kLongitude] = static_cast<float>(analysis.longitude / 180.0);
  v[IpLayout::kARecordCount] =
      static_cast<float>(analysis.resolved_domains.size());
  v[IpLayout::kFirstSeen] =
      static_cast<float>(analysis.first_seen_days) / kDaysPerYear;
  v[IpLayout::kLastSeen] =
      static_cast<float>(analysis.last_seen_days) / kDaysPerYear;
  v[IpLayout::kActivePeriod] =
      static_cast<float>(analysis.last_seen_days - analysis.first_seen_days) /
      kDaysPerYear;
  v[IpLayout::kHasReverseDns] = analysis.has_reverse_dns ? 1.0f : 0.0f;
  v[IpLayout::kIsReserved] = analysis.is_reserved ? 1.0f : 0.0f;
  return v;
}

std::vector<float> VectorizeUrl(std::string_view url,
                                const UrlAnalysis& analysis) {
  const FeatureSchemas& schemas = FeatureSchemas::Get();
  std::vector<float> v(SchemaSizes::kUrlTotal, 0.0f);
  OneHot(&v, UrlLayout::kFileTypeOffset,
         schemas.file_types().IndexOf(analysis.file_type));
  OneHot(&v, UrlLayout::kFileClassOffset,
         schemas.file_classes().IndexOf(analysis.file_class));
  OneHot(&v, UrlLayout::kHttpCodeOffset,
         schemas.http_codes().IndexOf(analysis.http_code));
  OneHot(&v, UrlLayout::kEncodingOffset,
         schemas.encodings().IndexOf(analysis.encoding));
  OneHot(&v, UrlLayout::kServerOffset,
         schemas.servers().IndexOf(analysis.server));
  OneHot(&v, UrlLayout::kOsOffset, schemas.oses().IndexOf(analysis.os));
  for (const std::string& service : analysis.services) {
    OneHot(&v, UrlLayout::kServicesOffset,
           schemas.services().IndexOf(service));  // multi-hot block
  }

  size_t digits = 0;
  size_t specials = 0;
  for (char c : url) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isdigit(uc)) ++digits;
    if (!std::isalnum(uc) && c != '.' && c != '/' && c != ':') ++specials;
  }
  v[UrlLayout::kLength] = static_cast<float>(url.size());
  v[UrlLayout::kDigitCount] = static_cast<float>(digits);
  v[UrlLayout::kDigitRatio] =
      url.empty() ? 0.0f : static_cast<float>(digits) / url.size();
  v[UrlLayout::kEntropy] = static_cast<float>(ShannonEntropy(url));
  v[UrlLayout::kPeriodCount] = static_cast<float>(CountChar(url, '.'));
  v[UrlLayout::kSlashCount] = static_cast<float>(CountChar(url, '/'));
  v[UrlLayout::kSpecialCount] = static_cast<float>(specials);

  auto parsed = ParseUrl(url);
  if (parsed.ok()) {
    const UrlParts& parts = parsed.value();
    v[UrlLayout::kHostLength] = static_cast<float>(parts.host.size());
    v[UrlLayout::kPathLength] = static_cast<float>(parts.path.size());
    v[UrlLayout::kQueryLength] = static_cast<float>(parts.query.size());
    OneHot(&v, UrlLayout::kTldOffset,
           schemas.tlds().IndexOf(TopLevelDomain(parts.host)));
  }
  return v;
}

std::vector<float> VectorizeDomain(std::string_view domain,
                                   const DomainAnalysis& analysis) {
  const FeatureSchemas& schemas = FeatureSchemas::Get();
  std::vector<float> v(SchemaSizes::kDomainTotal, 0.0f);
  OneHot(&v, DomainLayout::kTldOffset,
         schemas.tlds().IndexOf(TopLevelDomain(domain)));
  for (int i = 0; i < SchemaSizes::kDnsRecordTypes; ++i) {
    v[DomainLayout::kRecordCountOffset + i] =
        static_cast<float>(analysis.record_counts[i]);
  }
  v[DomainLayout::kNxdomain] = analysis.nxdomain ? 1.0f : 0.0f;
  v[DomainLayout::kFirstSeen] =
      static_cast<float>(analysis.first_seen_days) / kDaysPerYear;
  v[DomainLayout::kLastSeen] =
      static_cast<float>(analysis.last_seen_days) / kDaysPerYear;

  size_t digits = 0;
  for (char c : domain) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
  }
  v[DomainLayout::kLength] = static_cast<float>(domain.size());
  v[DomainLayout::kDigitCount] = static_cast<float>(digits);
  v[DomainLayout::kPeriodCount] = static_cast<float>(CountChar(domain, '.'));
  v[DomainLayout::kEntropy] = static_cast<float>(ShannonEntropy(domain));
  return v;
}

namespace {

/// Shared per-IOC batch driver. FeatureSchemas::Get() is forced once up
/// front so the singleton's lazy construction never races across workers.
template <typename Fn>
std::vector<std::vector<float>> VectorizeBatch(size_t n, const Fn& one) {
  FeatureSchemas::Get();
  std::vector<std::vector<float>> out(n);
  ParallelForEachIndex(n, [&](size_t i) { out[i] = one(i); },
                       /*min_chunk=*/16);
  return out;
}

}  // namespace

std::vector<std::vector<float>> VectorizeIpBatch(
    const std::vector<const IpAnalysis*>& analyses) {
  return VectorizeBatch(analyses.size(),
                        [&](size_t i) { return VectorizeIp(*analyses[i]); });
}

std::vector<std::vector<float>> VectorizeUrlBatch(
    const std::vector<std::string_view>& urls,
    const std::vector<const UrlAnalysis*>& analyses) {
  TRAIL_CHECK(urls.size() == analyses.size())
      << "url/analysis batch size mismatch";
  return VectorizeBatch(urls.size(), [&](size_t i) {
    return VectorizeUrl(urls[i], *analyses[i]);
  });
}

std::vector<std::vector<float>> VectorizeDomainBatch(
    const std::vector<std::string_view>& domains,
    const std::vector<const DomainAnalysis*>& analyses) {
  TRAIL_CHECK(domains.size() == analyses.size())
      << "domain/analysis batch size mismatch";
  return VectorizeBatch(domains.size(), [&](size_t i) {
    return VectorizeDomain(domains[i], *analyses[i]);
  });
}

}  // namespace trail::ioc
