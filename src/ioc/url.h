#ifndef TRAIL_IOC_URL_H_
#define TRAIL_IOC_URL_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace trail::ioc {

/// Decomposed URL. TRAIL's "lexical analysis of the URL" (paper Table I,
/// HostedOn edge) runs on these parts.
struct UrlParts {
  std::string scheme;  // "http", "https", "ftp"
  std::string host;    // lower-cased; domain name or IPv4 literal
  int port = -1;       // -1 when absent
  std::string path;    // includes leading '/', may be empty
  std::string query;   // without '?'

  bool host_is_ip = false;
};

/// Parses a refanged URL. Fails on missing scheme/host or an invalid port.
Result<UrlParts> ParseUrl(std::string_view url);

/// Extracts the registrable-ish domain of a URL host: the host itself for
/// domains (TRAIL keeps full hostnames as domain nodes, matching the paper's
/// subdomain-rich examples), empty for IP-literal hosts.
std::string HostDomain(const UrlParts& parts);

/// Last dotted label of a host ("club" for "x.l2twn2.club"); empty for IPs.
std::string TopLevelDomain(std::string_view host);

}  // namespace trail::ioc

#endif  // TRAIL_IOC_URL_H_
