#include "ioc/ioc.h"

#include <cctype>

#include "util/logging.h"
#include "util/string_util.h"

namespace trail::ioc {

const char* IocTypeName(IocType type) {
  switch (type) {
    case IocType::kIp:
      return "IP";
    case IocType::kDomain:
      return "Domain";
    case IocType::kUrl:
      return "URL";
    case IocType::kUnknown:
      return "Unknown";
  }
  return "?";
}

graph::NodeType ToNodeType(IocType type) {
  switch (type) {
    case IocType::kIp:
      return graph::NodeType::kIp;
    case IocType::kDomain:
      return graph::NodeType::kDomain;
    case IocType::kUrl:
      return graph::NodeType::kUrl;
    case IocType::kUnknown:
      break;
  }
  TRAIL_CHECK(false) << "unknown IOC has no node type";
  return graph::NodeType::kIp;
}

std::string Refang(std::string_view raw) {
  std::string s(Trim(raw));
  auto replace_all = [](std::string* text, std::string_view from,
                        std::string_view to) {
    size_t pos = 0;
    while ((pos = text->find(from, pos)) != std::string::npos) {
      text->replace(pos, from.size(), to);
      pos += to.size();
    }
  };
  replace_all(&s, "[.]", ".");
  replace_all(&s, "(.)", ".");
  replace_all(&s, "[dot]", ".");
  replace_all(&s, "{.}", ".");
  replace_all(&s, "[:]", ":");
  replace_all(&s, "[://]", "://");
  // Scheme normalization: only at the front, case-insensitive.
  std::string lower_prefix = ToLower(s.substr(0, 8));
  if (StartsWith(lower_prefix, "hxxps://")) {
    s.replace(0, 8, "https://");
  } else if (StartsWith(lower_prefix, "hxxp://")) {
    s.replace(0, 7, "http://");
  } else if (StartsWith(lower_prefix, "https://")) {
    s.replace(0, 8, "https://");
  } else if (StartsWith(lower_prefix, "http://")) {
    s.replace(0, 7, "http://");
  }
  return s;
}

std::string Defang(std::string_view refanged) {
  std::string s(refanged);
  std::string out;
  size_t start = 0;
  if (StartsWith(s, "http://")) {
    out += "hxxp://";
    start = 7;
  } else if (StartsWith(s, "https://")) {
    out += "hxxps://";
    start = 8;
  }
  for (size_t i = start; i < s.size(); ++i) {
    if (s[i] == '.') {
      out += "[.]";
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

bool IsIpv4(std::string_view s) {
  int octets = 0;
  size_t i = 0;
  while (i < s.size()) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
    int value = 0;
    size_t digits = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      value = value * 10 + (s[i] - '0');
      ++digits;
      ++i;
      if (digits > 3 || value > 255) return false;
    }
    ++octets;
    if (octets > 4) return false;
    if (i < s.size()) {
      if (s[i] != '.') return false;
      ++i;
      if (i == s.size()) return false;  // trailing dot
    }
  }
  return octets == 4;
}

bool IsDomainName(std::string_view s) {
  if (s.empty() || s.size() > 253) return false;
  if (IsIpv4(s)) return false;
  auto labels = Split(s, '.');
  if (labels.size() < 2) return false;
  for (const std::string& label : labels) {
    if (label.empty() || label.size() > 63) return false;
    for (char c : label) {
      unsigned char uc = static_cast<unsigned char>(c);
      if (!std::isalnum(uc) && c != '-' && c != '_') return false;
    }
    if (label.front() == '-' || label.back() == '-') return false;
  }
  // TLD must contain a letter (rules out malformed numeric hosts).
  const std::string& tld = labels.back();
  bool has_alpha = false;
  for (char c : tld) {
    if (std::isalpha(static_cast<unsigned char>(c))) has_alpha = true;
  }
  return has_alpha;
}

IocType ClassifyIoc(std::string_view raw) {
  std::string s = Refang(raw);
  if (s.empty()) return IocType::kUnknown;
  if (s.find("://") != std::string::npos) {
    // Require a recognizable scheme to keep javascript snippets etc. out.
    std::string lower = ToLower(s);
    if (StartsWith(lower, "http://") || StartsWith(lower, "https://") ||
        StartsWith(lower, "ftp://")) {
      return IocType::kUrl;
    }
    return IocType::kUnknown;
  }
  if (IsIpv4(s)) return IocType::kIp;
  if (IsDomainName(ToLower(s))) return IocType::kDomain;
  return IocType::kUnknown;
}

}  // namespace trail::ioc
