#include "ioc/feature_schema.h"

#include <cstdio>

#include "util/logging.h"

namespace trail::ioc {

Vocab::Vocab(std::vector<std::string> entries) : entries_(std::move(entries)) {
  index_.reserve(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    index_.emplace(entries_[i], static_cast<int>(i));
  }
  TRAIL_CHECK(index_.size() == entries_.size()) << "duplicate vocab entry";
}

int Vocab::IndexOf(std::string_view value) const {
  auto it = index_.find(std::string(value));
  if (it == index_.end()) return -1;
  return it->second;
}

const char* DnsRecordTypeName(DnsRecordType type) {
  switch (type) {
    case DnsRecordType::kA:
      return "A";
    case DnsRecordType::kAaaa:
      return "AAAA";
    case DnsRecordType::kCname:
      return "CNAME";
    case DnsRecordType::kMx:
      return "MX";
    case DnsRecordType::kNs:
      return "NS";
    case DnsRecordType::kTxt:
      return "TXT";
    case DnsRecordType::kSoa:
      return "SOA";
    case DnsRecordType::kPtr:
      return "PTR";
    case DnsRecordType::kSrv:
      return "SRV";
  }
  return "?";
}

namespace {

/// Pads `base` with "prefix-NNN" synthetic entries up to exactly `target`.
std::vector<std::string> PadTo(std::vector<std::string> base,
                               const std::string& prefix, size_t target) {
  TRAIL_CHECK(base.size() <= target)
      << prefix << " base vocabulary larger than target";
  size_t i = 0;
  while (base.size() < target) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s-%03zu", prefix.c_str(), i++);
    base.emplace_back(buf);
  }
  return base;
}

std::vector<std::string> CountryList() {
  // Real ISO 3166-1 alpha-2 head, heavy on codes that appear in APT
  // reporting; padded to 249 (ISO has 249 assigned codes).
  std::vector<std::string> base = {
      "US", "CN", "RU", "KP", "IR", "LV", "DE", "FR", "GB", "NL", "UA", "PL",
      "KR", "JP", "IN", "BR", "CA", "AU", "IT", "ES", "SE", "NO", "FI", "DK",
      "CH", "AT", "BE", "CZ", "RO", "BG", "HU", "TR", "IL", "SA", "AE", "EG",
      "ZA", "NG", "KE", "MX", "AR", "CL", "CO", "PE", "VE", "VN", "TH", "MY",
      "SG", "ID", "PH", "TW", "HK", "MO", "PK", "BD", "LK", "NP", "KZ", "UZ",
      "BY", "MD", "GE", "AM", "AZ", "LT", "EE", "IS", "IE", "PT", "GR", "CY",
      "MT", "LU", "SK", "SI", "HR", "RS", "BA", "MK", "AL", "ME", "XK", "IQ",
      "SY", "JO", "LB", "KW", "QA", "BH", "OM", "YE", "AF", "MM", "KH", "LA",
      "MN", "BT", "MV", "BN", "TL", "PG", "FJ", "NZ", "SB", "VU", "NC", "PF",
  };
  return PadTo(std::move(base), "cc", SchemaSizes::kCountries);
}

std::vector<std::string> IssuerList() {
  std::vector<std::string> base;
  const char* registries[] = {"ARIN", "RIPE", "APNIC", "LACNIC", "AFRINIC"};
  const char* providers[] = {
      "HostKey",   "OVH",       "Hetzner",   "DigitalOcean", "Linode",
      "Vultr",     "Leaseweb",  "Choopa",    "Alibaba",      "Tencent",
      "Selectel",  "TimeWeb",   "M247",      "ColoCrossing", "QuadraNet",
      "Psychz",    "ServerMania", "WorldStream", "DataWagon", "FranTech",
      "GCore",     "Contabo",   "Scaleway",  "UpCloud",      "Kamatera",
  };
  for (const char* reg : registries) {
    for (const char* provider : providers) {
      base.push_back(std::string(reg) + "/" + provider);
    }
  }
  return PadTo(std::move(base), "issuer", SchemaSizes::kIssuers);
}

std::vector<std::string> FileTypeList() {
  std::vector<std::string> base = {
      "text/html",       "text/plain",      "text/css",
      "text/javascript", "text/xml",        "application/json",
      "application/xml", "application/zip", "application/x-rar",
      "application/x-7z-compressed",        "application/x-tar",
      "application/gzip",                   "application/pdf",
      "application/msword",                 "application/vnd.ms-excel",
      "application/vnd.ms-powerpoint",      "application/x-msdownload",
      "application/x-dosexec",              "application/x-executable",
      "application/x-sharedlib",            "application/x-shellscript",
      "application/octet-stream",           "application/x-shockwave-flash",
      "application/java-archive",           "application/x-iso9660-image",
      "application/vnd.android.package-archive",
      "application/x-apple-diskimage",      "application/x-ms-shortcut",
      "application/hta",                    "application/x-cpl",
      "image/png",       "image/jpeg",      "image/gif",
      "image/svg+xml",   "image/x-icon",    "image/webp",
      "audio/mpeg",      "video/mp4",       "font/woff2",
      "application/x-pkcs12",               "application/x-x509-ca-cert",
      "application/pgp-keys",               "application/x-bittorrent",
  };
  return PadTo(std::move(base), "filetype", SchemaSizes::kFileTypes);
}

std::vector<std::string> FileClassList() {
  std::vector<std::string> base = {
      "html",    "script",  "document", "archive", "executable",
      "library", "image",   "media",    "font",    "certificate",
      "data",    "config",  "installer", "shortcut", "disk-image",
      "mobile-app", "email", "key-material",
  };
  return PadTo(std::move(base), "fileclass", SchemaSizes::kFileClasses);
}

std::vector<std::string> HttpCodeList() {
  std::vector<std::string> base = {
      "100", "101", "102", "103", "200", "201", "202", "203", "204", "205",
      "206", "207", "208", "226", "300", "301", "302", "303", "304", "305",
      "307", "308", "400", "401", "402", "403", "404", "405", "406", "407",
      "408", "409", "410", "411", "412", "413", "414", "415", "416", "417",
      "418", "421", "422", "423", "424", "425", "426", "428", "429", "431",
      "451", "500", "501", "502", "503", "504", "505", "506", "507", "508",
      "510", "511",
  };
  return PadTo(std::move(base), "http", SchemaSizes::kHttpCodes);
}

std::vector<std::string> EncodingList() {
  std::vector<std::string> base = {
      "gzip",  "deflate", "br",   "identity", "compress",
      "zstd",  "chunked", "base64",
  };
  return PadTo(std::move(base), "enc", SchemaSizes::kEncodings);
}

std::vector<std::string> ServerList() {
  // 16 server products x 59 version strings = 944 exactly.
  const char* products[] = {
      "nginx",       "Apache",     "Microsoft-IIS", "LiteSpeed",
      "openresty",   "cloudflare", "gws",           "Caddy",
      "lighttpd",    "Tengine",    "gunicorn",      "Werkzeug",
      "Jetty",       "Tomcat",     "Kestrel",       "SimpleHTTP",
  };
  std::vector<std::string> base;
  base.reserve(SchemaSizes::kServers);
  for (const char* product : products) {
    base.emplace_back(product);  // versionless header
    for (int major = 1; major <= 2 && base.size() < 16u * 59u; ++major) {
      for (int minor = 0; minor <= 28; ++minor) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%s/%d.%d", product, major, minor);
        base.emplace_back(buf);
        if (base.size() % 59 == 0) break;
      }
      if (base.size() % 59 == 0) break;
    }
    // Ensure exactly 59 entries per product.
    while (base.size() % 59 != 0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s/3.%zu", product, base.size() % 59);
      base.emplace_back(buf);
    }
  }
  TRAIL_CHECK(base.size() == static_cast<size_t>(SchemaSizes::kServers));
  return base;
}

std::vector<std::string> OsList() {
  std::vector<std::string> base = {
      "Ubuntu",        "Ubuntu 18.04", "Ubuntu 20.04", "Ubuntu 22.04",
      "Debian",        "Debian 9",     "Debian 10",    "Debian 11",
      "CentOS",        "CentOS 7",     "CentOS 8",     "RHEL 8",
      "Windows Server 2012", "Windows Server 2016", "Windows Server 2019",
      "Windows Server 2022", "FreeBSD", "OpenBSD",     "Alpine",
      "Fedora",        "Amazon Linux", "Amazon Linux 2",
  };
  return PadTo(std::move(base), "os", SchemaSizes::kOses);
}

std::vector<std::string> ServiceList() {
  std::vector<std::string> base = {
      "http",   "https", "ssh",    "ftp",   "smtp",  "pop3",   "imap",
      "dns",    "mysql", "postgresql",      "redis", "mongodb", "rdp",
      "vnc",    "telnet", "snmp",  "ntp",   "ldap",  "smb",    "sip",
      "rtsp",   "irc",   "xmpp",  "socks5", "proxy", "openvpn", "wireguard",
      "docker", "kubernetes",     "elasticsearch",   "memcached",
  };
  return PadTo(std::move(base), "svc", SchemaSizes::kServices);
}

std::vector<std::string> TldList() {
  std::vector<std::string> base = {
      "com",  "net",   "org",    "info",  "biz",  "ru",    "cn",   "club",
      "top",  "xyz",   "online", "site",  "pw",   "cc",    "tk",   "ml",
      "ga",   "cf",    "gq",     "io",    "me",   "co",    "us",   "uk",
      "de",   "fr",    "nl",     "eu",    "kr",   "jp",    "in",   "br",
      "pl",   "ua",    "by",     "kz",    "ir",   "vn",    "th",   "id",
      "hk",   "tw",    "sg",     "my",    "es",   "it",    "se",   "ch",
      "at",   "cz",    "link",   "live",  "life", "world", "today", "space",
      "store", "shop", "tech",   "icu",   "vip",  "work",  "click", "buzz",
      "best", "fun",   "host",   "press", "website",       "digital",
  };
  return PadTo(std::move(base), "tld", SchemaSizes::kUrlTlds);
}

}  // namespace

FeatureSchemas::FeatureSchemas()
    : countries_(CountryList()),
      issuers_(IssuerList()),
      file_types_(FileTypeList()),
      file_classes_(FileClassList()),
      http_codes_(HttpCodeList()),
      encodings_(EncodingList()),
      servers_(ServerList()),
      oses_(OsList()),
      services_(ServiceList()),
      tlds_(TldList()) {
  TRAIL_CHECK(countries_.size() == SchemaSizes::kCountries);
  TRAIL_CHECK(issuers_.size() == SchemaSizes::kIssuers);
  TRAIL_CHECK(file_types_.size() == SchemaSizes::kFileTypes);
  TRAIL_CHECK(file_classes_.size() == SchemaSizes::kFileClasses);
  TRAIL_CHECK(http_codes_.size() == SchemaSizes::kHttpCodes);
  TRAIL_CHECK(encodings_.size() == SchemaSizes::kEncodings);
  TRAIL_CHECK(servers_.size() == SchemaSizes::kServers);
  TRAIL_CHECK(oses_.size() == SchemaSizes::kOses);
  TRAIL_CHECK(services_.size() == SchemaSizes::kServices);
  TRAIL_CHECK(tlds_.size() == SchemaSizes::kUrlTlds);
}

const FeatureSchemas& FeatureSchemas::Get() {
  static const FeatureSchemas* schemas = new FeatureSchemas();
  return *schemas;
}

std::string FeatureSchemas::IpFeatureName(int index) const {
  if (index < IpLayout::kIssuerOffset) {
    return "country=" + countries_.At(index);
  }
  if (index < IpLayout::kNumericOffset) {
    return "issuer=" + issuers_.At(index - IpLayout::kIssuerOffset);
  }
  switch (index) {
    case IpLayout::kLatitude:
      return "latitude";
    case IpLayout::kLongitude:
      return "longitude";
    case IpLayout::kARecordCount:
      return "a_record_count";
    case IpLayout::kFirstSeen:
      return "first_seen";
    case IpLayout::kLastSeen:
      return "last_seen";
    case IpLayout::kActivePeriod:
      return "active_period";
    case IpLayout::kHasReverseDns:
      return "has_reverse_dns";
    case IpLayout::kIsReserved:
      return "is_reserved";
    default:
      return "ip[" + std::to_string(index) + "]";
  }
}

std::string FeatureSchemas::UrlFeatureName(int index) const {
  if (index < UrlLayout::kFileClassOffset) {
    return "file_type=" + file_types_.At(index);
  }
  if (index < UrlLayout::kHttpCodeOffset) {
    return "file_class=" +
           file_classes_.At(index - UrlLayout::kFileClassOffset);
  }
  if (index < UrlLayout::kEncodingOffset) {
    return "http_code=" + http_codes_.At(index - UrlLayout::kHttpCodeOffset);
  }
  if (index < UrlLayout::kServerOffset) {
    return "encoding=" + encodings_.At(index - UrlLayout::kEncodingOffset);
  }
  if (index < UrlLayout::kOsOffset) {
    return "server=" + servers_.At(index - UrlLayout::kServerOffset);
  }
  if (index < UrlLayout::kServicesOffset) {
    return "os=" + oses_.At(index - UrlLayout::kOsOffset);
  }
  if (index < UrlLayout::kTldOffset) {
    return "service=" + services_.At(index - UrlLayout::kServicesOffset);
  }
  if (index < UrlLayout::kLexicalOffset) {
    return "tld=" + tlds_.At(index - UrlLayout::kTldOffset);
  }
  switch (index) {
    case UrlLayout::kLength:
      return "url_length";
    case UrlLayout::kHostLength:
      return "host_length";
    case UrlLayout::kPathLength:
      return "path_length";
    case UrlLayout::kQueryLength:
      return "query_length";
    case UrlLayout::kDigitCount:
      return "digit_count";
    case UrlLayout::kDigitRatio:
      return "digit_ratio";
    case UrlLayout::kEntropy:
      return "url_entropy";
    case UrlLayout::kPeriodCount:
      return "period_count";
    case UrlLayout::kSlashCount:
      return "slash_count";
    case UrlLayout::kSpecialCount:
      return "special_char_count";
    default:
      return "url[" + std::to_string(index) + "]";
  }
}

std::string FeatureSchemas::DomainFeatureName(int index) const {
  if (index < DomainLayout::kRecordCountOffset) {
    return "tld=" + tlds_.At(index);
  }
  if (index < DomainLayout::kNxdomain) {
    return std::string("dns_records_") +
           DnsRecordTypeName(static_cast<DnsRecordType>(
               index - DomainLayout::kRecordCountOffset));
  }
  switch (index) {
    case DomainLayout::kNxdomain:
      return "nxdomain";
    case DomainLayout::kFirstSeen:
      return "first_seen";
    case DomainLayout::kLastSeen:
      return "last_seen";
    case DomainLayout::kLength:
      return "domain_length";
    case DomainLayout::kDigitCount:
      return "digit_count";
    case DomainLayout::kPeriodCount:
      return "period_count";
    case DomainLayout::kEntropy:
      return "domain_entropy";
    default:
      return "domain[" + std::to_string(index) + "]";
  }
}

}  // namespace trail::ioc
