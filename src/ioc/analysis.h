#ifndef TRAIL_IOC_ANALYSIS_H_
#define TRAIL_IOC_ANALYSIS_H_

#include <array>
#include <string>
#include <vector>

#include "ioc/feature_schema.h"

namespace trail::ioc {

/// Output of the IP lookup services (geo-IP + passive DNS + whois), the
/// analogue of what the paper pulls from OTX's archived tool output.
/// `resolved_domains` are the A-record secondary IOCs; `asn` the InGroup
/// relation target.
struct IpAnalysis {
  std::string country;          // vocab code, may be unknown ("")
  std::string issuer;           // vocab code, may be unknown ("")
  double latitude = 0.0;
  double longitude = 0.0;
  double first_seen_days = 0.0;  // days since the feed epoch
  double last_seen_days = 0.0;
  bool has_reverse_dns = false;
  bool is_reserved = false;
  int asn = -1;                  // -1 when unknown
  std::vector<std::string> resolved_domains;
};

/// Output of probing a URL (cURL header analysis in the paper) plus its
/// resolution. `resolved_ip` is the ResolvesTo relation target.
struct UrlAnalysis {
  std::string file_type;   // MIME, vocab
  std::string file_class;  // vocab
  std::string http_code;   // "200", vocab
  std::string encoding;    // vocab
  std::string server;      // server header, vocab
  std::string os;          // vocab
  std::vector<std::string> services;  // open services on the host
  std::string resolved_ip;            // may be empty if dead
  bool alive = true;
};

/// Output of domain analysis (dig + passive DNS). `resolved_ips` are
/// A-record ResolvesTo targets; `cname_domains` additional secondary
/// domains.
struct DomainAnalysis {
  std::array<int, SchemaSizes::kDnsRecordTypes> record_counts{};
  bool nxdomain = false;
  double first_seen_days = 0.0;
  double last_seen_days = 0.0;
  std::vector<std::string> resolved_ips;
  std::vector<std::string> cname_domains;
};

}  // namespace trail::ioc

#endif  // TRAIL_IOC_ANALYSIS_H_
