#ifndef TRAIL_IOC_IOC_H_
#define TRAIL_IOC_IOC_H_

#include <string>
#include <string_view>

#include "graph/types.h"

namespace trail::ioc {

/// Network IOC categories handled by TRAIL (the paper's focus: URLs,
/// domains, IPs; ASNs only ever appear as enrichment output).
enum class IocType {
  kIp,
  kDomain,
  kUrl,
  kUnknown,
};

const char* IocTypeName(IocType type);

/// Maps an IOC type onto its TKG node type.
graph::NodeType ToNodeType(IocType type);

/// Classifies a raw indicator string. Accepts defanged input
/// ("hxxp://evil[.]example"). kUnknown covers the malformed "javascript
/// snippet" artifacts the paper describes scrubbing from OTX dumps.
IocType ClassifyIoc(std::string_view raw);

/// Reverses common defanging conventions and lower-cases the scheme/host:
/// "hxxp://" -> "http://", "[.]"/"(.)"/"[dot]" -> ".", "hxxps" -> "https".
std::string Refang(std::string_view raw);

/// Applies standard defanging for safe display (used by report writers).
std::string Defang(std::string_view refanged);

/// True when `s` is a syntactically valid dotted-quad IPv4 address.
bool IsIpv4(std::string_view s);

/// True when `s` looks like a bare DNS name (labels of [a-z0-9-_],
/// at least one dot, valid label lengths, non-numeric TLD).
bool IsDomainName(std::string_view s);

}  // namespace trail::ioc

#endif  // TRAIL_IOC_IOC_H_
