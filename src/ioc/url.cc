#include "ioc/url.h"

#include <cctype>

#include "ioc/ioc.h"
#include "util/string_util.h"

namespace trail::ioc {

Result<UrlParts> ParseUrl(std::string_view url) {
  UrlParts parts;
  size_t scheme_end = url.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0) {
    return Status::ParseError("URL missing scheme: " + std::string(url));
  }
  parts.scheme = ToLower(url.substr(0, scheme_end));
  std::string_view rest = url.substr(scheme_end + 3);

  size_t path_start = rest.find_first_of("/?");
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  if (authority.empty()) {
    return Status::ParseError("URL missing host: " + std::string(url));
  }

  // Split host[:port]; user-info is not produced by our feeds but strip it
  // defensively.
  size_t at = authority.rfind('@');
  if (at != std::string_view::npos) authority = authority.substr(at + 1);
  size_t colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    std::string_view port_sv = authority.substr(colon + 1);
    if (!IsDigits(port_sv)) {
      return Status::ParseError("invalid port in URL: " + std::string(url));
    }
    int port = 0;
    for (char c : port_sv) port = port * 10 + (c - '0');
    if (port <= 0 || port > 65535) {
      return Status::ParseError("port out of range in URL: " +
                                std::string(url));
    }
    parts.port = port;
    authority = authority.substr(0, colon);
  }
  parts.host = ToLower(authority);
  if (parts.host.empty()) {
    return Status::ParseError("URL missing host: " + std::string(url));
  }
  parts.host_is_ip = IsIpv4(parts.host);
  if (!parts.host_is_ip && !IsDomainName(parts.host)) {
    return Status::ParseError("invalid URL host: " + std::string(url));
  }

  if (path_start != std::string_view::npos) {
    std::string_view tail = rest.substr(path_start);
    size_t q = tail.find('?');
    if (q == std::string_view::npos) {
      parts.path = std::string(tail);
    } else {
      parts.path = std::string(tail.substr(0, q));
      parts.query = std::string(tail.substr(q + 1));
    }
  }
  return parts;
}

std::string HostDomain(const UrlParts& parts) {
  if (parts.host_is_ip) return "";
  return parts.host;
}

std::string TopLevelDomain(std::string_view host) {
  if (IsIpv4(host)) return "";
  size_t dot = host.rfind('.');
  if (dot == std::string_view::npos) return "";
  return ToLower(host.substr(dot + 1));
}

}  // namespace trail::ioc
