#include "osint/world.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace trail::osint {

namespace {

uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Deterministic pseudo-coordinates for a country code index.
void CountryCoords(int country, double* lat, double* lon) {
  *lat = static_cast<double>((country * 37) % 140) - 70.0;
  *lon = static_cast<double>((country * 73) % 340) - 170.0;
}

const char* const kConsonants = "bcdfghklmnprstvz";
const char* const kVowels = "aeiou";
const char* const kHex = "0123456789abcdef";
const char* const kAlnum = "abcdefghijklmnopqrstuvwxyz0123456789";

const char* const kWordyPathParts[] = {
    "wp-content", "images", "assets", "include", "upload", "static",
    "themes",     "admin",  "files",  "news",    "docs",   "update",
};
const char* const kWordyFiles[] = {
    "index.html", "login.php", "view.php",  "update.bin", "setup.exe",
    "doc.pdf",    "report.doc", "data.zip", "main.js",    "style.css",
};

}  // namespace

WorldConfig WorldConfig::Scaled(double factor) {
  WorldConfig config;
  if (factor <= 1.0) return config;
  config.min_events_per_apt =
      static_cast<int>(config.min_events_per_apt * factor);
  config.max_events_per_apt =
      static_cast<int>(config.max_events_per_apt * factor);
  config.num_noise_ips = static_cast<int>(config.num_noise_ips * factor);
  config.num_noise_domains =
      static_cast<int>(config.num_noise_domains * factor);
  return config;
}

WorldConfig WorldConfig::ScaledUp() {
  WorldConfig config;
  config.min_events_per_apt = 80;
  config.max_events_per_apt = 400;
  config.mean_ips_per_event = 8.0;
  config.mean_domains_per_event = 14.0;
  config.mean_urls_per_event = 11.0;
  config.mean_parked_domains_per_ip = 14.0;
  config.num_noise_ips = 200;
  config.num_noise_domains = 400;
  return config;
}

World::World(const WorldConfig& config) : config_(config), rng_(config.seed) {
  TRAIL_CHECK(config.num_apts >= 2) << "need at least two groups";
  TRAIL_CHECK(config.num_novel_apts >= 0);
  if (config.num_novel_apts > 0) {
    TRAIL_CHECK(config.post_days >= 90)
        << "novel actors land post-cutoff; need a post window";
  }
  // Novel (open-set) actors extend the roster; BuildRoster forks the rng per
  // profile, so the first num_apts profiles are unchanged by the extension.
  apts_ = AptProfile::BuildRoster(config.num_apts + config.num_novel_apts,
                                  config.feature_sharpness, config.num_asns,
                                  &rng_);
  apt_ip_pool_.resize(apts_.size());
  apt_domain_pool_.resize(apts_.size());
  apt_url_pool_.resize(apts_.size());
  // The confusable cluster: the "North Korean overlap" groups — in the
  // default roster indices 2, 3, 4 are APT38, APT37, KIMSUKY.
  if (config.num_apts > 4) confusable_ = {2, 3, 4};
  BuildNoiseInfrastructure();
  BuildTimeline();
  std::sort(reports_.begin(), reports_.end(),
            [](const PulseReport& a, const PulseReport& b) {
              return a.day < b.day;
            });
}

int World::AptIdByName(const std::string& name) const {
  for (const AptProfile& apt : apts_) {
    if (apt.name == name) return apt.id;
  }
  return -1;
}

std::vector<const PulseReport*> World::ReportsBetween(int day_lo,
                                                      int day_hi) const {
  std::vector<const PulseReport*> out;
  for (const PulseReport& report : reports_) {
    if (report.day >= day_lo && report.day < day_hi) out.push_back(&report);
  }
  return out;
}

void World::BuildNoiseInfrastructure() {
  // Shared public IPs (DNS resolvers, CDN edges) and benign domains that
  // many unrelated incidents touch.
  for (int i = 0; i < config_.num_noise_ips; ++i) {
    uint32_t ip = CreateIp(/*apt=*/-1, config_.start_day, &rng_);
    noise_ips_.push_back(ip);
  }
  const char* const kBenignNames[] = {
      "cdn-assets", "static-host", "public-dns", "mail-relay", "img-cache",
      "api-gateway", "update-mirror", "analytics", "fonts-edge", "ns",
  };
  for (int i = 0; i < config_.num_noise_domains; ++i) {
    std::string name = std::string(kBenignNames[i % 10]) + "-" +
                       std::to_string(i / 10) + ".net";
    if (domain_index_.count(name) > 0) continue;
    DomainEntity domain;
    domain.name = name;
    domain.apt = -1;
    domain.first_day = config_.start_day;
    domain.last_day = config_.end_day + config_.post_days;
    // Benign domains resolve to a few shared IPs.
    size_t count = 1 + rng_.NextBounded(3);
    for (size_t k = 0; k < count && !noise_ips_.empty(); ++k) {
      uint32_t ip = noise_ips_[rng_.NextBounded(noise_ips_.size())];
      domain.a_records.push_back(ip);
    }
    domain.record_counts[static_cast<int>(ioc::DnsRecordType::kA)] =
        static_cast<int>(domain.a_records.size());
    domain.record_counts[static_cast<int>(ioc::DnsRecordType::kNs)] =
        2 + static_cast<int>(rng_.NextBounded(3));
    uint32_t id = static_cast<uint32_t>(domains_.size());
    domain_index_.emplace(domain.name, id);
    for (uint32_t ip : domain.a_records) ips_[ip].domains.push_back(id);
    domains_.push_back(std::move(domain));
    noise_domains_.push_back(id);
  }
}

uint32_t World::CreateIp(int apt, int day, Rng* rng) {
  std::string addr;
  do {
    addr = std::to_string(1 + rng->NextBounded(222)) + "." +
           std::to_string(rng->NextBounded(256)) + "." +
           std::to_string(rng->NextBounded(256)) + "." +
           std::to_string(1 + rng->NextBounded(254));
  } while (ip_index_.count(addr) > 0);

  IpEntity ip;
  ip.addr = addr;
  ip.apt = apt;
  if (apt >= 0) {
    const AptProfile& profile = apts_[apt];
    ip.country = profile.country.Sample(rng);
    ip.issuer = profile.issuer.Sample(rng);
    ip.asn = rng->Bernoulli(config_.asn_noise_rate)
                 ? static_cast<int>(rng->Zipf(config_.num_asns, 0.9))
                 : profile.asn_pool[rng->NextBounded(profile.asn_pool.size())];
  } else {
    ip.country = static_cast<int>(
        rng->NextBounded(ioc::SchemaSizes::kCountries));
    ip.issuer =
        static_cast<int>(rng->NextBounded(ioc::SchemaSizes::kIssuers));
    ip.asn = static_cast<int>(rng->NextBounded(config_.num_asns));
  }
  CountryCoords(ip.country, &ip.latitude, &ip.longitude);
  ip.latitude += rng->UniformDouble(-3.0, 3.0);
  ip.longitude += rng->UniformDouble(-3.0, 3.0);
  ip.reserved = rng->Bernoulli(0.02);
  ip.reverse_dns = rng->Bernoulli(0.4);
  ip.first_day = day;
  ip.last_day = std::min(day + 30 + static_cast<int>(rng->NextBounded(400)),
                         config_.end_day + config_.post_days);
  if (config_.infra_lifetime_days > 0) {
    // Churn worlds retire infrastructure: lifetimes cap at the churn window.
    ip.last_day = std::min(ip.last_day, day + config_.infra_lifetime_days);
  }

  uint32_t id = static_cast<uint32_t>(ips_.size());
  ip_index_.emplace(addr, id);
  ips_.push_back(std::move(ip));
  if (apt >= 0) AttachParkedDomains(id, apt, day, rng);
  return id;
}

void World::AttachParkedDomains(uint32_t ip_id, int apt, int day, Rng* rng) {
  // Historic / parked domains only discoverable through passive DNS: the
  // secondary-IOC population (75% of the paper's TKG).
  int count = rng->Poisson(config_.mean_parked_domains_per_ip);
  for (int i = 0; i < count; ++i) {
    std::string name = GenerateDomainName(apts_[apt], rng);
    if (domain_index_.count(name) > 0) continue;
    DomainEntity domain;
    domain.name = name;
    domain.apt = apt;
    domain.first_day = std::max(config_.start_day, day - 600 +
                                static_cast<int>(rng->NextBounded(600)));
    domain.last_day = day + static_cast<int>(rng->NextBounded(200));
    if (config_.infra_lifetime_days > 0) {
      // Churn worlds retire parked infrastructure too.
      domain.last_day = std::min(domain.last_day,
                                 domain.first_day + config_.infra_lifetime_days);
    }
    domain.nxdomain = rng->Bernoulli(0.5);  // most parked infra is dead
    domain.a_records.push_back(ip_id);
    domain.record_counts[static_cast<int>(ioc::DnsRecordType::kA)] = 1;
    uint32_t id = static_cast<uint32_t>(domains_.size());
    domain_index_.emplace(domain.name, id);
    domains_.push_back(std::move(domain));
    ips_[ip_id].domains.push_back(id);
  }
}

std::string World::GenerateDomainName(const AptProfile& apt, Rng* rng) {
  const auto& schemas = ioc::FeatureSchemas::Get();
  const LexicalStyle style =
      rng->Bernoulli(config_.lexical_confusion)
          ? LexicalStyle::Archetype(rng->NextBounded(5))
          : apt.lexical;
  auto make_label = [&](int length) {
    std::string label;
    label.reserve(length);
    switch (style.charset_style) {
      case 0:  // pronounceable
        for (int i = 0; i < length; ++i) {
          label.push_back(i % 2 == 0 ? kConsonants[rng->NextBounded(16)]
                                     : kVowels[rng->NextBounded(5)]);
        }
        break;
      case 1:  // alnum gibberish
        for (int i = 0; i < length; ++i) {
          label.push_back(kAlnum[rng->NextBounded(36)]);
        }
        break;
      default:  // hex-ish
        label.push_back(kConsonants[rng->NextBounded(16)]);  // leading letter
        for (int i = 1; i < length; ++i) {
          label.push_back(kHex[rng->NextBounded(16)]);
        }
        break;
    }
    // Force digits toward the profile's digit ratio.
    int digits = static_cast<int>(style.digit_ratio * length);
    for (int i = 0; i < digits; ++i) {
      size_t pos = rng->NextBounded(label.size());
      if (pos == 0) continue;  // keep leading char alphabetic
      label[pos] = static_cast<char>('0' + rng->NextBounded(10));
    }
    if (style.hyphen_prob > 0 && length > 4 &&
        rng->Bernoulli(style.hyphen_prob)) {
      label[1 + rng->NextBounded(label.size() - 2)] = '-';
    }
    return label;
  };

  int length = style.min_len +
               static_cast<int>(rng->NextBounded(
                   static_cast<uint64_t>(style.max_len - style.min_len + 1)));
  std::string name = make_label(length);
  if (rng->Bernoulli(style.subdomain_prob)) {
    name = make_label(3 + rng->NextBounded(5)) + "." + name;
  }
  name += ".";
  name += schemas.tlds().At(apt.tld.Sample(rng));
  return name;
}

std::string World::GenerateUrlString(const AptProfile& apt,
                                     const std::string& host, Rng* rng) {
  std::string url = rng->Bernoulli(0.5) ? "https://" : "http://";
  url += host;
  const int path_style = rng->Bernoulli(config_.lexical_confusion)
                             ? static_cast<int>(rng->NextBounded(3))
                             : apt.lexical.path_style;
  switch (path_style) {
    case 0: {  // wordy
      int segments = 1 + rng->NextBounded(3);
      for (int i = 0; i < segments; ++i) {
        url += "/";
        url += kWordyPathParts[rng->NextBounded(12)];
      }
      url += "/";
      url += kWordyFiles[rng->NextBounded(10)];
      break;
    }
    case 1: {  // random tokens
      int segments = 1 + rng->NextBounded(3);
      for (int i = 0; i < segments; ++i) {
        url += "/";
        int length = 4 + rng->NextBounded(8);
        for (int c = 0; c < length; ++c) {
          url.push_back(kAlnum[rng->NextBounded(36)]);
        }
      }
      break;
    }
    default: {  // gate.php + query
      url += "/";
      const char* const kGates[] = {"gate", "panel", "load", "check", "in"};
      url += kGates[rng->NextBounded(5)];
      url += ".php?";
      const char* const kKeys[] = {"id", "q", "token", "s", "h"};
      url += kKeys[rng->NextBounded(5)];
      url += "=";
      int length = 6 + rng->NextBounded(10);
      for (int c = 0; c < length; ++c) {
        url.push_back(kHex[rng->NextBounded(16)]);
      }
      break;
    }
  }
  return url;
}

uint32_t World::CreateDomain(int apt, int day,
                             const std::vector<uint32_t>& ip_pool, Rng* rng) {
  std::string name;
  do {
    name = GenerateDomainName(apts_[apt], rng);
  } while (domain_index_.count(name) > 0);

  DomainEntity domain;
  domain.name = name;
  domain.apt = apt;
  domain.first_day = day;
  domain.last_day = std::min(day + 20 + static_cast<int>(rng->NextBounded(300)),
                             config_.end_day + config_.post_days);
  if (config_.infra_lifetime_days > 0) {
    domain.last_day =
        std::min(domain.last_day, day + config_.infra_lifetime_days);
  }
  domain.nxdomain = rng->Bernoulli(0.25);

  size_t record_count =
      std::min<size_t>(1 + rng->NextBounded(3), ip_pool.size());
  std::vector<size_t> picks =
      rng->SampleWithoutReplacement(ip_pool.size(), record_count);
  for (size_t pick : picks) domain.a_records.push_back(ip_pool[pick]);

  domain.record_counts[static_cast<int>(ioc::DnsRecordType::kA)] =
      static_cast<int>(domain.a_records.size());
  domain.record_counts[static_cast<int>(ioc::DnsRecordType::kNs)] =
      static_cast<int>(rng->NextBounded(3));
  domain.record_counts[static_cast<int>(ioc::DnsRecordType::kTxt)] =
      static_cast<int>(rng->NextBounded(2));
  domain.record_counts[static_cast<int>(ioc::DnsRecordType::kMx)] =
      rng->Bernoulli(0.15) ? 1 : 0;

  uint32_t id = static_cast<uint32_t>(domains_.size());
  domain_index_.emplace(domain.name, id);
  for (uint32_t ip : domain.a_records) ips_[ip].domains.push_back(id);
  domains_.push_back(std::move(domain));
  return id;
}

uint32_t World::CreateUrl(int apt, uint32_t domain_id, Rng* rng) {
  const AptProfile& profile = apts_[apt];
  std::string url;
  do {
    url = GenerateUrlString(profile, domains_[domain_id].name, rng);
  } while (url_index_.count(url) > 0);

  UrlEntity entity;
  entity.url = url;
  entity.apt = apt;
  entity.domain = domain_id;
  const auto& a_records = domains_[domain_id].a_records;
  entity.ip = a_records.empty()
                  ? (noise_ips_.empty() ? 0
                                        : noise_ips_[rng->NextBounded(
                                              noise_ips_.size())])
                  : a_records[rng->NextBounded(a_records.size())];
  // Many APT URLs sit on compromised legitimate servers whose stack says
  // nothing about the group; those attributes are sampled uniformly.
  auto pick = [&](const Preference& pref, int vocab_size) {
    return rng->Bernoulli(config_.url_attr_confusion)
               ? static_cast<int>(rng->NextBounded(vocab_size))
               : pref.Sample(rng);
  };
  entity.server = pick(profile.server, ioc::SchemaSizes::kServers);
  entity.os = pick(profile.os, ioc::SchemaSizes::kOses);
  entity.encoding = pick(profile.encoding, ioc::SchemaSizes::kEncodings);
  entity.file_type = pick(profile.file_type, ioc::SchemaSizes::kFileTypes);
  // File class follows the type loosely: derive deterministically.
  entity.file_class = entity.file_type % ioc::SchemaSizes::kFileClasses;
  entity.http_code = pick(profile.http_code, ioc::SchemaSizes::kHttpCodes);
  size_t service_count = 1 + rng->NextBounded(3);
  for (size_t i = 0; i < service_count; ++i) {
    entity.services.push_back(pick(profile.service,
                                   ioc::SchemaSizes::kServices));
  }
  entity.alive = rng->Bernoulli(0.6);

  uint32_t id = static_cast<uint32_t>(urls_.size());
  url_index_.emplace(entity.url, id);
  urls_.push_back(std::move(entity));
  return id;
}

void World::BuildTimeline() {
  // Event counts per APT: rank-decayed between max and min.
  const int total_days = config_.end_day + config_.post_days;
  const bool churn = config_.infra_lifetime_days > 0;
  int pulse_counter = 0;
  for (int apt = 0; apt < num_apts(); ++apt) {
    const bool novel = IsNovelApt(apt);
    int events;
    if (novel) {
      events = config_.novel_apt_events;
    } else {
      double t = config_.num_apts > 1
                     ? static_cast<double>(apt) / (config_.num_apts - 1)
                     : 0.0;
      events = static_cast<int>(
          config_.max_events_per_apt -
          t * (config_.max_events_per_apt - config_.min_events_per_apt));
      // Scale event volume so the post-cutoff window also gets coverage.
      events = static_cast<int>(events * (1.0 + static_cast<double>(
                                                    config_.post_days) /
                                                    config_.end_day));
    }

    int produced = 0;
    while (produced < events) {
      // One campaign.
      int campaign_events =
          1 + rng_.Poisson(config_.mean_events_per_campaign - 1.0);
      campaign_events = std::min(campaign_events, events - produced);
      int campaign_start;
      if (novel) {
        // Open-set actors only ever operate after the training cutoff.
        campaign_start =
            config_.end_day +
            static_cast<int>(rng_.NextBounded(
                static_cast<uint64_t>(std::max(1, config_.post_days - 60))));
      } else {
        campaign_start =
            config_.start_day +
            static_cast<int>(rng_.NextBounded(
                static_cast<uint64_t>(total_days - config_.start_day - 60)));
      }
      int campaign_span = 30 + static_cast<int>(rng_.NextBounded(180));

      // False-flag campaigns plant a victim group's infrastructure; the
      // victim must already have an established pool to steal from.
      int flag_victim = -1;
      if (config_.false_flag_rate > 0 &&
          rng_.Bernoulli(config_.false_flag_rate)) {
        std::vector<int> victims;
        for (int v = 0; v < config_.num_apts; ++v) {
          if (v != apt && !apt_ip_pool_[v].empty()) victims.push_back(v);
        }
        if (!victims.empty()) {
          flag_victim =
              victims[rng_.NextBounded(victims.size())];
        }
      }

      Campaign campaign;
      campaign.apt = apt;
      campaign.start_day = campaign_start;
      campaign.end_day = campaign_start + campaign_span;

      // Seed infrastructure for the campaign. More IPs are stood up than
      // ever get reported — the unreported ones surface only as secondary
      // IOCs through domain A records (paper: only ~52% of IPs are
      // first-order). Under churn, reuse only considers infrastructure
      // still alive at the campaign start — old servers are gone.
      std::vector<uint32_t> reuse_ips = apt_ip_pool_[apt];
      if (churn) reuse_ips = FreshIps(reuse_ips, campaign_start);
      int seed_ips = 4 + rng_.Poisson(3.0);
      for (int i = 0; i < seed_ips; ++i) {
        // Cross-campaign indirect reuse: sometimes rent the same server the
        // group used before instead of standing up a new one.
        if (!reuse_ips.empty() &&
            rng_.Bernoulli(config_.cross_campaign_ip_reuse * 0.4)) {
          campaign.ips.push_back(
              reuse_ips[rng_.NextBounded(reuse_ips.size())]);
        } else {
          campaign.ips.push_back(CreateIp(apt, campaign_start, &rng_));
        }
      }
      int seed_domains = 3 + rng_.Poisson(3.0);
      for (int i = 0; i < seed_domains; ++i) {
        std::vector<uint32_t> ip_pool = campaign.ips;
        if (!reuse_ips.empty() &&
            rng_.Bernoulli(config_.cross_campaign_ip_reuse)) {
          // One historic A record to an APT-pool IP creates the indirect
          // (>2-hop) linkage the enrichment step surfaces.
          ip_pool.push_back(
              reuse_ips[rng_.NextBounded(reuse_ips.size())]);
        }
        campaign.domains.push_back(
            CreateDomain(apt, campaign_start, ip_pool, &rng_));
      }
      int seed_urls = 3 + rng_.Poisson(3.0);
      for (int i = 0; i < seed_urls; ++i) {
        uint32_t domain =
            campaign.domains[rng_.NextBounded(campaign.domains.size())];
        campaign.urls.push_back(CreateUrl(apt, domain, &rng_));
      }

      // Emit the campaign's events.
      for (int e = 0; e < campaign_events; ++e) {
        int day = campaign.start_day +
                  static_cast<int>(rng_.NextBounded(
                      static_cast<uint64_t>(campaign_span + 1)));
        // Novel-actor events must stay inside the observable post window.
        if (novel) day = std::min(day, total_days - 1);
        bool isolated = rng_.Bernoulli(config_.isolated_event_rate);
        PulseReport report =
            MakeReport(campaign, apt, day, isolated, flag_victim,
                       &campaign.ips, &campaign.domains, &campaign.urls,
                       &rng_);
        report.id = "PULSE-" + std::to_string(pulse_counter++);
        report_truth_.emplace(report.id, apt);
        if (flag_victim >= 0) {
          report_flag_target_.emplace(report.id, flag_victim);
        }
        // Partially-labeled feeds: the actor tag is stripped before the
        // report ever reaches the system (ground truth stays in the maps).
        if (config_.unlabeled_report_rate > 0 &&
            rng_.Bernoulli(config_.unlabeled_report_rate)) {
          report.apt.clear();
        }
        // Secondary feeds republish: a near-duplicate lands a little later,
        // truncated, and sometimes carrying the wrong actor tag.
        if (config_.duplicate_report_rate > 0 &&
            rng_.Bernoulli(config_.duplicate_report_rate)) {
          PulseReport dup = report;
          dup.id = report.id + "-B";
          dup.day = report.day + static_cast<int>(rng_.NextBounded(4));
          if (dup.indicators.size() > 3) {
            size_t drop =
                rng_.NextBounded(dup.indicators.size() / 3 + 1);
            dup.indicators.resize(dup.indicators.size() - drop);
          }
          if (config_.conflicting_label_rate > 0 &&
              rng_.Bernoulli(config_.conflicting_label_rate)) {
            int wrong = static_cast<int>(rng_.NextBounded(
                static_cast<uint64_t>(config_.num_apts)));
            if (wrong == apt) wrong = (wrong + 1) % config_.num_apts;
            dup.apt = apts_[wrong].name;
          }
          report_truth_.emplace(dup.id, apt);
          if (flag_victim >= 0) {
            report_flag_target_.emplace(dup.id, flag_victim);
          }
          reports_.push_back(std::move(dup));
        }
        reports_.push_back(std::move(report));
        ++produced;
      }

      // Fold the campaign infrastructure into the APT-wide pools.
      auto& ip_pool = apt_ip_pool_[apt];
      ip_pool.insert(ip_pool.end(), campaign.ips.begin(), campaign.ips.end());
      auto& domain_pool = apt_domain_pool_[apt];
      domain_pool.insert(domain_pool.end(), campaign.domains.begin(),
                         campaign.domains.end());
      auto& url_pool = apt_url_pool_[apt];
      url_pool.insert(url_pool.end(), campaign.urls.begin(),
                      campaign.urls.end());
    }
  }
}

PulseReport World::MakeReport(const Campaign& /*campaign*/, int apt, int day,
                              bool isolated, int flag_victim,
                              std::vector<uint32_t>* campaign_ips,
                              std::vector<uint32_t>* campaign_domains,
                              std::vector<uint32_t>* campaign_urls,
                              Rng* rng) {
  PulseReport report;
  report.apt = apts_[apt].name;
  report.day = day;

  // Borrowing source: a false-flag victim takes precedence over the
  // confusable-cluster neighbor (one of the other cluster members).
  int borrow_from = -1;
  if (flag_victim >= 0) {
    borrow_from = flag_victim;
  } else if (std::find(confusable_.begin(), confusable_.end(), apt) !=
             confusable_.end()) {
    do {
      borrow_from = confusable_[rng->NextBounded(confusable_.size())];
    } while (borrow_from == apt);
  }

  // Under churn, pool reuse only sees infrastructure still alive today.
  const bool churn = config_.infra_lifetime_days > 0;
  const std::vector<uint32_t>* own_ips = &apt_ip_pool_[apt];
  const std::vector<uint32_t>* own_domains = &apt_domain_pool_[apt];
  const std::vector<uint32_t>* own_urls = &apt_url_pool_[apt];
  const std::vector<uint32_t>* other_ips =
      borrow_from >= 0 ? &apt_ip_pool_[borrow_from] : nullptr;
  const std::vector<uint32_t>* other_domains =
      borrow_from >= 0 ? &apt_domain_pool_[borrow_from] : nullptr;
  const std::vector<uint32_t>* other_urls =
      borrow_from >= 0 ? &apt_url_pool_[borrow_from] : nullptr;
  std::vector<uint32_t> f_own_ips, f_own_domains, f_own_urls;
  std::vector<uint32_t> f_other_ips, f_other_domains, f_other_urls;
  if (churn) {
    f_own_ips = FreshIps(*own_ips, day);
    f_own_domains = FreshDomains(*own_domains, day);
    f_own_urls = FreshUrls(*own_urls, day);
    own_ips = &f_own_ips;
    own_domains = &f_own_domains;
    own_urls = &f_own_urls;
    if (borrow_from >= 0) {
      f_other_ips = FreshIps(*other_ips, day);
      f_other_domains = FreshDomains(*other_domains, day);
      f_other_urls = FreshUrls(*other_urls, day);
      other_ips = &f_other_ips;
      other_domains = &f_other_domains;
      other_urls = &f_other_urls;
    }
  }
  // Did this report actually reference the victim's pool? (FlagTarget's
  // consistency guarantee — force-planted below if no draw landed.)
  bool planted = false;

  // Isolated events draw only from a private fresh infrastructure set.
  std::vector<uint32_t> private_ips;
  if (isolated) {
    int count = 2 + rng->Poisson(1.5);
    for (int i = 0; i < count; ++i) {
      private_ips.push_back(CreateIp(apt, day, rng));
    }
  }

  auto add_indicator = [&](const std::string& type, const std::string& value) {
    std::string out = value;
    if (rng->Bernoulli(config_.defang_rate)) out = ioc::Defang(out);
    report.indicators.push_back(ReportedIndicator{type, out});
  };

  enum Source { kCampaign, kAptPool, kNoise, kFresh, kBorrow };
  // A false-flag report redirects a large share of its draws to the
  // victim's pools; otherwise borrowing is the confusable-cluster trickle.
  const double borrow_rate = flag_victim >= 0
                                 ? config_.false_flag_plant_rate
                                 : config_.confusable_borrow_rate;
  auto roll_source = [&]() -> Source {
    if (isolated && flag_victim < 0) return kFresh;
    if (isolated) {
      // Flagged isolated events still plant victim IOCs amid fresh infra.
      return rng->Bernoulli(borrow_rate) ? kBorrow : kFresh;
    }
    double r = rng->UniformDouble();
    if (r < config_.campaign_reuse) return kCampaign;
    r -= config_.campaign_reuse;
    if (r < config_.apt_reuse) return kAptPool;
    r -= config_.apt_reuse;
    if (r < config_.global_noise) return kNoise;
    r -= config_.global_noise;
    if (borrow_from >= 0 && r < borrow_rate) return kBorrow;
    return kFresh;
  };

  int want_ips = 1 + rng->Poisson(config_.mean_ips_per_event - 1.0);
  for (int i = 0; i < want_ips; ++i) {
    uint32_t id;
    switch (roll_source()) {
      case kCampaign:
        id = (*campaign_ips)[rng->NextBounded(campaign_ips->size())];
        break;
      case kAptPool:
        if (own_ips->empty()) continue;
        id = (*own_ips)[rng->NextBounded(own_ips->size())];
        break;
      case kNoise:
        id = noise_ips_[rng->NextBounded(noise_ips_.size())];
        break;
      case kBorrow:
        if (other_ips->empty()) continue;
        id = (*other_ips)[rng->NextBounded(other_ips->size())];
        if (flag_victim >= 0) planted = true;
        break;
      default:
        if (isolated) {
          id = private_ips[rng->NextBounded(private_ips.size())];
        } else {
          id = CreateIp(apt, day, rng);
          campaign_ips->push_back(id);
        }
    }
    add_indicator("IPv4", ips_[id].addr);
  }

  int want_domains = 1 + rng->Poisson(config_.mean_domains_per_event - 1.0);
  for (int i = 0; i < want_domains; ++i) {
    uint32_t id;
    switch (roll_source()) {
      case kCampaign:
        id = (*campaign_domains)[rng->NextBounded(campaign_domains->size())];
        break;
      case kAptPool:
        if (own_domains->empty()) continue;
        id = (*own_domains)[rng->NextBounded(own_domains->size())];
        break;
      case kNoise:
        id = noise_domains_[rng->NextBounded(noise_domains_.size())];
        break;
      case kBorrow:
        if (other_domains->empty()) continue;
        id = (*other_domains)[rng->NextBounded(other_domains->size())];
        if (flag_victim >= 0) planted = true;
        break;
      default:
        if (isolated) {
          id = CreateDomain(apt, day, private_ips, rng);
        } else {
          id = CreateDomain(apt, day, *campaign_ips, rng);
          campaign_domains->push_back(id);
        }
    }
    add_indicator("domain", domains_[id].name);
  }

  int want_urls = 1 + rng->Poisson(config_.mean_urls_per_event - 1.0);
  for (int i = 0; i < want_urls; ++i) {
    uint32_t id;
    switch (roll_source()) {
      case kCampaign:
        id = (*campaign_urls)[rng->NextBounded(campaign_urls->size())];
        break;
      case kAptPool:
        if (own_urls->empty()) continue;
        id = (*own_urls)[rng->NextBounded(own_urls->size())];
        break;
      case kNoise: {
        // Benign URLs are rare; host one on a noise domain on demand.
        uint32_t domain =
            noise_domains_[rng->NextBounded(noise_domains_.size())];
        id = CreateUrl(apt, domain, rng);
        break;
      }
      case kBorrow:
        if (other_urls->empty()) continue;
        id = (*other_urls)[rng->NextBounded(other_urls->size())];
        if (flag_victim >= 0) planted = true;
        break;
      default: {
        uint32_t domain;
        if (isolated) {
          domain = CreateDomain(apt, day, private_ips, rng);
        } else if (!campaign_domains->empty() && rng->Bernoulli(0.6)) {
          domain =
              (*campaign_domains)[rng->NextBounded(campaign_domains->size())];
        } else {
          domain = CreateDomain(apt, day, *campaign_ips, rng);
          campaign_domains->push_back(domain);
        }
        id = CreateUrl(apt, domain, rng);
        if (!isolated) campaign_urls->push_back(id);
      }
    }
    add_indicator("URL", urls_[id].url);
  }

  // Occasional junk rows (the paper's "javascript snippet" artifacts).
  if (rng->Bernoulli(config_.junk_indicator_rate)) {
    report.indicators.push_back(
        ReportedIndicator{"URL", "javascript:void(window.location)"});
  }

  // FlagTarget guarantee: a flagged report always references the victim's
  // pool. If none of the probabilistic draws landed, plant one victim IP
  // (falling back past the churn filter — the victim pool is non-empty by
  // the caller's victim selection).
  if (flag_victim >= 0 && !planted) {
    const std::vector<uint32_t>& pool = other_ips->empty()
                                            ? apt_ip_pool_[flag_victim]
                                            : *other_ips;
    uint32_t id = pool[rng->NextBounded(pool.size())];
    add_indicator("IPv4", ips_[id].addr);
  }
  return report;
}

std::vector<uint32_t> World::FreshIps(const std::vector<uint32_t>& pool,
                                      int day) const {
  std::vector<uint32_t> out;
  for (uint32_t id : pool) {
    if (ips_[id].first_day >= day - config_.infra_lifetime_days) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<uint32_t> World::FreshDomains(const std::vector<uint32_t>& pool,
                                          int day) const {
  std::vector<uint32_t> out;
  for (uint32_t id : pool) {
    if (domains_[id].first_day >= day - config_.infra_lifetime_days) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<uint32_t> World::FreshUrls(const std::vector<uint32_t>& pool,
                                       int day) const {
  // URLs carry no timestamp of their own; they age with their domain.
  std::vector<uint32_t> out;
  for (uint32_t id : pool) {
    if (domains_[urls_[id].domain].first_day >=
        day - config_.infra_lifetime_days) {
      out.push_back(id);
    }
  }
  return out;
}

bool World::AnalyzeIp(const std::string& addr, ioc::IpAnalysis* out) const {
  auto it = ip_index_.find(addr);
  if (it == ip_index_.end()) return false;
  const IpEntity& ip = ips_[it->second];
  const auto& schemas = ioc::FeatureSchemas::Get();
  Rng noise(HashString(addr) ^ config_.seed);

  *out = ioc::IpAnalysis();
  if (!noise.Bernoulli(config_.analysis_missing_rate)) {
    out->country = schemas.countries().At(ip.country);
    out->latitude = ip.latitude;
    out->longitude = ip.longitude;
  }
  if (!noise.Bernoulli(config_.analysis_missing_rate)) {
    out->issuer = schemas.issuers().At(ip.issuer);
  }
  if (!noise.Bernoulli(config_.analysis_missing_rate * 0.5)) {
    out->asn = 10000 + ip.asn;
  }
  out->first_seen_days =
      ip.first_day + noise.Normal(0.0, config_.timestamp_jitter_days);
  out->last_seen_days =
      ip.last_day + noise.Normal(0.0, config_.timestamp_jitter_days);
  out->has_reverse_dns = ip.reverse_dns;
  out->is_reserved = ip.reserved;
  // Passive DNS: historic domains, capped like a real service's response.
  constexpr size_t kMaxPdnsRows = 25;
  if (ip.domains.size() <= kMaxPdnsRows) {
    for (uint32_t d : ip.domains) {
      out->resolved_domains.push_back(domains_[d].name);
    }
  } else {
    std::vector<size_t> picks =
        noise.SampleWithoutReplacement(ip.domains.size(), kMaxPdnsRows);
    for (size_t pick : picks) {
      out->resolved_domains.push_back(domains_[ip.domains[pick]].name);
    }
  }
  return true;
}

bool World::AnalyzeDomain(const std::string& name,
                          ioc::DomainAnalysis* out) const {
  auto it = domain_index_.find(name);
  if (it == domain_index_.end()) return false;
  const DomainEntity& domain = domains_[it->second];
  *out = ioc::DomainAnalysis();
  out->record_counts = domain.record_counts;
  out->nxdomain = domain.nxdomain;
  Rng noise(HashString(name) ^ config_.seed);
  out->first_seen_days =
      domain.first_day + noise.Normal(0.0, config_.timestamp_jitter_days);
  out->last_seen_days =
      domain.last_day + noise.Normal(0.0, config_.timestamp_jitter_days);
  for (uint32_t ip : domain.a_records) {
    out->resolved_ips.push_back(ips_[ip].addr);
  }
  for (uint32_t cname : domain.cnames) {
    out->cname_domains.push_back(domains_[cname].name);
  }
  return true;
}

bool World::AnalyzeUrl(const std::string& url, ioc::UrlAnalysis* out) const {
  auto it = url_index_.find(url);
  if (it == url_index_.end()) return false;
  const UrlEntity& entity = urls_[it->second];
  const auto& schemas = ioc::FeatureSchemas::Get();
  Rng noise(HashString(url) ^ config_.seed);

  *out = ioc::UrlAnalysis();
  out->alive = entity.alive;
  if (entity.alive || !noise.Bernoulli(0.7)) {
    // Dead URLs keep cached header data half of the time (OTX archives).
    if (!noise.Bernoulli(config_.analysis_missing_rate)) {
      out->server = schemas.servers().At(entity.server);
    }
    if (!noise.Bernoulli(config_.analysis_missing_rate)) {
      out->os = schemas.oses().At(entity.os);
    }
    out->encoding = schemas.encodings().At(entity.encoding);
    out->file_type = schemas.file_types().At(entity.file_type);
    out->file_class = schemas.file_classes().At(entity.file_class);
    out->http_code = schemas.http_codes().At(entity.http_code);
    for (int service : entity.services) {
      out->services.push_back(schemas.services().At(service));
    }
  }
  out->resolved_ip = ips_[entity.ip].addr;
  return true;
}

int World::TrueAptOfReport(const std::string& report_id) const {
  auto it = report_truth_.find(report_id);
  return it == report_truth_.end() ? -1 : it->second;
}

int World::FlagTarget(const std::string& report_id) const {
  auto it = report_flag_target_.find(report_id);
  return it == report_flag_target_.end() ? -1 : it->second;
}

int World::TrueApt(ioc::IocType type, const std::string& value) const {
  switch (type) {
    case ioc::IocType::kIp: {
      auto it = ip_index_.find(value);
      return it == ip_index_.end() ? -1 : ips_[it->second].apt;
    }
    case ioc::IocType::kDomain: {
      auto it = domain_index_.find(value);
      return it == domain_index_.end() ? -1 : domains_[it->second].apt;
    }
    case ioc::IocType::kUrl: {
      auto it = url_index_.find(value);
      return it == url_index_.end() ? -1 : urls_[it->second].apt;
    }
    default:
      return -1;
  }
}

}  // namespace trail::osint
