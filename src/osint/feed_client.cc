#include "osint/feed_client.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace trail::osint {

std::vector<std::string> FeedClient::FetchReports(int day_lo,
                                                  int day_hi) const {
  TRAIL_TRACE_SPAN("osint.fetch_reports");
  // Serialization dominates here, and each report serializes into its own
  // indexed slot, so the JSON strings are built in parallel while the
  // output keeps the feed's report order.
  std::vector<const PulseReport*> reports =
      world_->ReportsBetween(day_lo, day_hi);
  std::vector<std::string> out(reports.size());
  ParallelForEachIndex(reports.size(), [&](size_t i) {
    out[i] = reports[i]->ToJsonString();
  }, /*min_chunk=*/16);
  TRAIL_METRIC_ADD("osint.reports_fetched", out.size());
  return out;
}

Result<ioc::IpAnalysis> FeedClient::GetIpAnalysis(
    const std::string& addr) const {
  TRAIL_METRIC_INC("osint.ip_lookups");
  ioc::IpAnalysis analysis;
  if (!world_->AnalyzeIp(addr, &analysis)) {
    TRAIL_METRIC_INC("osint.ip_lookup_misses");
    return Status::NotFound("no analysis for IP " + addr);
  }
  return analysis;
}

Result<ioc::DomainAnalysis> FeedClient::GetDomainAnalysis(
    const std::string& name) const {
  TRAIL_METRIC_INC("osint.domain_lookups");
  ioc::DomainAnalysis analysis;
  if (!world_->AnalyzeDomain(name, &analysis)) {
    TRAIL_METRIC_INC("osint.domain_lookup_misses");
    return Status::NotFound("no analysis for domain " + name);
  }
  return analysis;
}

Result<ioc::UrlAnalysis> FeedClient::GetUrlAnalysis(
    const std::string& url) const {
  TRAIL_METRIC_INC("osint.url_lookups");
  ioc::UrlAnalysis analysis;
  if (!world_->AnalyzeUrl(url, &analysis)) {
    TRAIL_METRIC_INC("osint.url_lookup_misses");
    return Status::NotFound("no analysis for URL " + url);
  }
  return analysis;
}

}  // namespace trail::osint
