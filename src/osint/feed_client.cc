#include "osint/feed_client.h"

namespace trail::osint {

std::vector<std::string> FeedClient::FetchReports(int day_lo,
                                                  int day_hi) const {
  std::vector<std::string> out;
  for (const PulseReport* report : world_->ReportsBetween(day_lo, day_hi)) {
    out.push_back(report->ToJsonString());
  }
  return out;
}

Result<ioc::IpAnalysis> FeedClient::GetIpAnalysis(
    const std::string& addr) const {
  ioc::IpAnalysis analysis;
  if (!world_->AnalyzeIp(addr, &analysis)) {
    return Status::NotFound("no analysis for IP " + addr);
  }
  return analysis;
}

Result<ioc::DomainAnalysis> FeedClient::GetDomainAnalysis(
    const std::string& name) const {
  ioc::DomainAnalysis analysis;
  if (!world_->AnalyzeDomain(name, &analysis)) {
    return Status::NotFound("no analysis for domain " + name);
  }
  return analysis;
}

Result<ioc::UrlAnalysis> FeedClient::GetUrlAnalysis(
    const std::string& url) const {
  ioc::UrlAnalysis analysis;
  if (!world_->AnalyzeUrl(url, &analysis)) {
    return Status::NotFound("no analysis for URL " + url);
  }
  return analysis;
}

}  // namespace trail::osint
