#ifndef TRAIL_OSINT_APT_PROFILE_H_
#define TRAIL_OSINT_APT_PROFILE_H_

#include <string>
#include <vector>

#include "util/random.h"

namespace trail::osint {

/// The 22 threat groups tracked in the synthetic world. The head of the list
/// matches groups named in the paper (APT28, APT38, APT37, KIMSUKY, APT27,
/// FIN11, TA511, ...).
const std::vector<std::string>& AptNames();

/// A sparse categorical preference: a handful of favored vocabulary entries
/// with decaying weights, plus a uniform exploration floor. This is how an
/// APT's behavioral biases (preferred registrars, server stacks, TLDs...)
/// are encoded — the signal the paper's feature-based attribution learns.
class Preference {
 public:
  Preference() = default;

  /// Builds a preference over a vocabulary of `vocab_size` entries with
  /// `num_favored` favored entries; `sharpness` scales how concentrated the
  /// favored mass is (higher = more identifiable APT).
  static Preference Make(size_t vocab_size, int num_favored, double sharpness,
                         Rng* rng);

  /// Samples an index; with probability `explore` an arbitrary entry.
  int Sample(Rng* rng) const;

  const std::vector<int>& favored() const { return favored_; }

 private:
  std::vector<int> favored_;
  std::vector<double> weights_;  // parallel to favored_
  size_t vocab_size_ = 0;
  double explore_ = 0.2;
};

/// Lexical style parameters for an APT's domain-generation habits.
struct LexicalStyle {
  int min_len = 6;
  int max_len = 12;
  double digit_ratio = 0.1;       // fraction of digit characters
  double subdomain_prob = 0.2;    // chance of a generated subdomain label
  double hyphen_prob = 0.1;
  /// 0 = pronounceable syllables, 1 = alnum gibberish, 2 = hex-ish.
  int charset_style = 0;
  /// URL path style: 0 = wordy paths, 1 = random tokens, 2 = php + query.
  int path_style = 0;

  /// One of the five shared style archetypes (DGA kits circulate; groups
  /// rarely have a unique lexical fingerprint).
  static LexicalStyle Archetype(uint64_t index);
};

/// Full behavioral profile of one APT in the synthetic world.
struct AptProfile {
  int id = 0;
  std::string name;

  Preference country;
  Preference issuer;
  Preference tld;
  Preference server;
  Preference os;
  Preference encoding;
  Preference file_type;
  Preference http_code;
  Preference service;
  std::vector<int> asn_pool;  // ASNs this group rents infrastructure in
  LexicalStyle lexical;

  /// Builds the full roster of `num_apts` profiles deterministically.
  static std::vector<AptProfile> BuildRoster(int num_apts, double sharpness,
                                             int num_asns, Rng* rng);
};

}  // namespace trail::osint

#endif  // TRAIL_OSINT_APT_PROFILE_H_
