#ifndef TRAIL_OSINT_WORLD_H_
#define TRAIL_OSINT_WORLD_H_

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "ioc/analysis.h"
#include "ioc/ioc.h"
#include "osint/apt_profile.h"
#include "osint/report.h"
#include "util/random.h"

namespace trail::osint {

/// Knobs of the synthetic OSINT world. Defaults are tuned so the
/// reproduction benches land in the paper's accuracy regimes at a scale that
/// builds and trains in seconds on a laptop CPU; `ScaledUp()` describes how
/// to approach the paper's full 4,512-event scale.
struct WorldConfig {
  uint64_t seed = 42;
  int num_apts = 22;

  // Event volume: per-APT counts decay by rank (the dataset is imbalanced,
  // like the paper's; every tracked APT still has >= min_events_per_apt).
  int min_events_per_apt = 25;
  int max_events_per_apt = 64;

  // Timeline (days since epoch). The paper's collection spans Feb 2015 to
  // May 2023 (~3000 days) plus an 8-month longitudinal tail.
  int start_day = 0;
  int end_day = 3000;
  int post_days = 240;

  // First-order IOC volume per event.
  double mean_ips_per_event = 4.0;
  double mean_domains_per_event = 7.0;
  double mean_urls_per_event = 6.0;

  // Campaign structure: events per campaign ~ 1 + Poisson(mean - 1).
  double mean_events_per_campaign = 3.0;

  // IOC sourcing mix (probabilities; remainder = freshly created IOCs).
  double campaign_reuse = 0.33;  // from this campaign's pool
  double apt_reuse = 0.03;       // from the APT-wide pool (cross-campaign)
  double global_noise = 0.08;    // shared benign/public infrastructure

  /// Fraction of events built entirely from fresh infrastructure — the
  /// events topology alone cannot attribute.
  double isolated_event_rate = 0.16;

  /// Cross-campaign indirect linkage: chance a campaign domain resolves to
  /// an APT-pool IP from an earlier campaign (creates >2-hop paths).
  double cross_campaign_ip_reuse = 0.45;

  /// Pairs of groups that sometimes borrow from each other's pools (the
  /// North-Korean-cluster confusion of the paper's Fig. 7). Indices into the
  /// roster; probability applied per borrowed IOC.
  double confusable_borrow_rate = 0.12;

  /// How identifiable APT behavioral preferences are (higher = sharper
  /// categorical biases = easier feature-only attribution).
  double feature_sharpness = 0.45;

  /// Chance an APT machine is rented outside the group's usual ASNs.
  double asn_noise_rate = 0.60;

  /// Chance a generated name/path follows a random archetype instead of the
  /// group's own style (compromised or rented infrastructure).
  double lexical_confusion = 0.55;

  /// Chance a URL server attribute reflects a compromised victim host
  /// rather than the group's own stack (the paper's case-study reports call
  /// compromised legitimate servers "typical, yet weak-confidence"
  /// behavior).
  double url_attr_confusion = 0.55;

  /// Chance an analysis lookup is missing a given attribute.
  double analysis_missing_rate = 0.25;

  /// Stddev (days) of the jitter on passive-DNS first/last-seen timestamps
  /// (coverage of real passive DNS is spotty).
  double timestamp_jitter_days = 90.0;

  /// Parked/historic domains attached to each APT C2 IP (discovered only
  /// through passive DNS — the paper's 75%-secondary-IOC population).
  double mean_parked_domains_per_ip = 7.0;

  /// Shared benign infrastructure sizes.
  int num_noise_ips = 60;
  int num_noise_domains = 90;
  int num_asns = 40;

  /// Chance a reported indicator value arrives defanged.
  double defang_rate = 0.3;
  /// Chance of a junk (non-IOC) indicator row in a report.
  double junk_indicator_rate = 0.02;

  // -- Adversarial & open-world knobs (docs/SCENARIOS.md). Every knob
  // defaults to *off* and every draw it adds is gated behind the knob, so a
  // default config replays the exact rng stream of older releases (the
  // golden fixtures depend on this).

  /// Chance a campaign is a false-flag operation: the acting APT plants
  /// indicators drawn from a victim group's established pools. The victim is
  /// recorded per report — ground truth via `FlagTarget()`; every flagged
  /// report is guaranteed to reference at least one victim-pool IOC.
  double false_flag_rate = 0.0;

  /// Share of a flagged report's reuse draws redirected to the victim's
  /// pools (only meaningful when `false_flag_rate > 0`).
  double false_flag_plant_rate = 0.45;

  /// When > 0, infrastructure is retired after this many days: cross-campaign
  /// reuse (APT pools and indirect A records) only considers entities first
  /// seen within the window, and entity lifetimes are capped to it. Small
  /// values starve the reuse signal attribution depends on.
  int infra_lifetime_days = 0;

  /// Number of extra "novel" actors appended to the roster whose campaigns
  /// occur only after `end_day` — i.e. absent from any training window, the
  /// open-set months. Their ids are `num_apts .. num_apts+num_novel_apts-1`
  /// (see `World::IsNovelApt`).
  int num_novel_apts = 0;

  /// Events per novel actor (all landing in the post-cutoff window).
  int novel_apt_events = 18;

  // Mixed-quality multi-feed ingestion: secondary feeds republish reports.
  /// Chance a report is re-published as a near-duplicate (id suffixed
  /// "-B", slightly delayed, a few indicators dropped).
  double duplicate_report_rate = 0.0;
  /// Given a duplicate, chance its actor tag is swapped to a wrong group
  /// (ground truth preserved via `TrueAptOfReport`).
  double conflicting_label_rate = 0.0;
  /// Chance a report's actor tag is stripped entirely (partially-labeled
  /// feeds; ground truth preserved via `TrueAptOfReport`).
  double unlabeled_report_rate = 0.0;

  /// A configuration ~6x larger, nearer the paper's event count.
  static WorldConfig ScaledUp();

  /// Default config with event volume (and shared noise infrastructure)
  /// multiplied by `factor`, holding per-event IOC densities fixed — the
  /// TKG grows ~linearly in `factor` (default world: ~31k nodes, so
  /// factor 68 ≈ the paper's 2.1M-node graph). `factor <= 1` returns the
  /// default config unchanged.
  static WorldConfig Scaled(double factor);

  /// The paper-scale world: ~2.1M TKG nodes (Scaled(68)).
  static WorldConfig PaperScale() { return Scaled(68.0); }
};

/// Ground-truth infrastructure entities (internal but exposed for tests and
/// dataset statistics).
struct IpEntity {
  std::string addr;
  int apt = -1;  // -1 = shared/noise infrastructure
  int country = -1;
  int issuer = -1;
  double latitude = 0.0;
  double longitude = 0.0;
  int asn = -1;
  bool reserved = false;
  bool reverse_dns = false;
  int first_day = 0;
  int last_day = 0;
  std::vector<uint32_t> domains;  // DomainEntity ids with A records here
};

struct DomainEntity {
  std::string name;
  int apt = -1;
  bool nxdomain = false;
  int first_day = 0;
  int last_day = 0;
  std::vector<uint32_t> a_records;  // IpEntity ids
  std::vector<uint32_t> cnames;     // DomainEntity ids
  std::array<int, ioc::SchemaSizes::kDnsRecordTypes> record_counts{};
};

struct UrlEntity {
  std::string url;
  int apt = -1;
  uint32_t domain = 0;
  uint32_t ip = 0;  // resolution target
  int server = -1;
  int os = -1;
  int encoding = -1;
  int file_type = -1;
  int file_class = -1;
  int http_code = -1;
  std::vector<int> services;
  bool alive = true;
};

/// The synthetic OSINT universe: 22 APT profiles, their campaign-structured
/// infrastructure, a timeline of attributed incident reports, and the lookup
/// services (passive DNS / geo-IP / URL probing) that the TRAIL enrichment
/// pipeline queries. This module substitutes for AlienVault OTX + the
/// paper's open-source analysis tools (see DESIGN.md, substitution table).
class World {
 public:
  explicit World(const WorldConfig& config);

  const WorldConfig& config() const { return config_; }
  const std::vector<AptProfile>& apts() const { return apts_; }
  int num_apts() const { return static_cast<int>(apts_.size()); }

  /// APT id for a threat-actor tag; -1 when unknown.
  int AptIdByName(const std::string& name) const;

  /// All generated reports, in chronological order.
  const std::vector<PulseReport>& reports() const { return reports_; }

  /// Reports with day in [day_lo, day_hi).
  std::vector<const PulseReport*> ReportsBetween(int day_lo,
                                                 int day_hi) const;

  // -- Lookup services (the "Analyze IOC" boxes of the paper's Fig. 1a). --
  // Return false when the indicator is unknown to every database.

  bool AnalyzeIp(const std::string& addr, ioc::IpAnalysis* out) const;
  bool AnalyzeDomain(const std::string& name, ioc::DomainAnalysis* out) const;
  bool AnalyzeUrl(const std::string& url, ioc::UrlAnalysis* out) const;

  /// Ground-truth owner of an IOC (-1 for shared/unknown). Test hook.
  int TrueApt(ioc::IocType type, const std::string& value) const;

  // -- Adversarial / open-world ground truth (evaluation-side only; none of
  // this leaks onto the PulseReport wire format the system ingests). --

  /// True acting APT behind a report id — survives label stripping
  /// (`unlabeled_report_rate`) and wrong tags (`conflicting_label_rate`).
  /// -1 for an unknown id.
  int TrueAptOfReport(const std::string& report_id) const;

  /// False-flag victim whose infrastructure a report deliberately planted;
  /// -1 when the report is not part of a false-flag campaign.
  int FlagTarget(const std::string& report_id) const;

  /// True when `apt` is an open-set actor absent before `end_day`.
  bool IsNovelApt(int apt) const {
    return apt >= config_.num_apts && apt < num_apts();
  }

  /// Actors present in training windows (novel actors excluded).
  int num_known_apts() const { return config_.num_apts; }

  // Entity registries (dataset statistics + tests).
  const std::vector<IpEntity>& ips() const { return ips_; }
  const std::vector<DomainEntity>& domains() const { return domains_; }
  const std::vector<UrlEntity>& urls() const { return urls_; }

 private:
  struct Campaign {
    int apt = 0;
    int start_day = 0;
    int end_day = 0;
    std::vector<uint32_t> ips;
    std::vector<uint32_t> domains;
    std::vector<uint32_t> urls;
  };

  void BuildNoiseInfrastructure();
  void BuildTimeline();
  uint32_t CreateIp(int apt, int day, Rng* rng);
  uint32_t CreateDomain(int apt, int day, const std::vector<uint32_t>& ip_pool,
                        Rng* rng);
  uint32_t CreateUrl(int apt, uint32_t domain_id, Rng* rng);
  void AttachParkedDomains(uint32_t ip_id, int apt, int day, Rng* rng);
  std::string GenerateDomainName(const AptProfile& apt, Rng* rng);
  std::string GenerateUrlString(const AptProfile& apt,
                                const std::string& host, Rng* rng);
  PulseReport MakeReport(const Campaign& campaign, int apt, int day,
                         bool isolated, int flag_victim,
                         std::vector<uint32_t>* campaign_ips,
                         std::vector<uint32_t>* campaign_domains,
                         std::vector<uint32_t>* campaign_urls, Rng* rng);

  /// `pool` restricted to entities first seen within the churn window ending
  /// at `day`. Callers only invoke this when `infra_lifetime_days > 0`.
  std::vector<uint32_t> FreshIps(const std::vector<uint32_t>& pool,
                                 int day) const;
  std::vector<uint32_t> FreshDomains(const std::vector<uint32_t>& pool,
                                     int day) const;
  std::vector<uint32_t> FreshUrls(const std::vector<uint32_t>& pool,
                                  int day) const;

  WorldConfig config_;
  std::vector<AptProfile> apts_;
  std::vector<PulseReport> reports_;

  std::vector<IpEntity> ips_;
  std::vector<DomainEntity> domains_;
  std::vector<UrlEntity> urls_;
  std::unordered_map<std::string, uint32_t> ip_index_;
  std::unordered_map<std::string, uint32_t> domain_index_;
  std::unordered_map<std::string, uint32_t> url_index_;

  // APT-wide reusable pools (grow as campaigns run).
  std::vector<std::vector<uint32_t>> apt_ip_pool_;
  std::vector<std::vector<uint32_t>> apt_domain_pool_;
  std::vector<std::vector<uint32_t>> apt_url_pool_;

  // Shared benign infrastructure.
  std::vector<uint32_t> noise_ips_;
  std::vector<uint32_t> noise_domains_;

  // Confusable cluster (indices of mutually-borrowing groups).
  std::vector<int> confusable_;

  // Evaluation-side ground truth keyed by report id (see accessors above).
  std::unordered_map<std::string, int> report_truth_;
  std::unordered_map<std::string, int> report_flag_target_;

  Rng rng_;
};

}  // namespace trail::osint

#endif  // TRAIL_OSINT_WORLD_H_
