#ifndef TRAIL_OSINT_FEED_CLIENT_H_
#define TRAIL_OSINT_FEED_CLIENT_H_

#include <string>
#include <vector>

#include "osint/world.h"
#include "util/status.h"

namespace trail::osint {

/// The TRAIL system's view of the intelligence exchange: the same surface
/// the paper drives against the AlienVault OTX REST API, backed here by the
/// synthetic World. Reports travel as JSON strings (the "Raw JSON files" box
/// of Fig. 1a) so the ingestion pipeline exercises real parsing.
class FeedClient {
 public:
  explicit FeedClient(const World* world) : world_(world) {}

  /// JSON documents of every report tagged with a tracked APT in
  /// [day_lo, day_hi).
  std::vector<std::string> FetchReports(int day_lo, int day_hi) const;

  /// IOC analysis endpoints; NotFound when no database knows the indicator.
  Result<ioc::IpAnalysis> GetIpAnalysis(const std::string& addr) const;
  Result<ioc::DomainAnalysis> GetDomainAnalysis(const std::string& name) const;
  Result<ioc::UrlAnalysis> GetUrlAnalysis(const std::string& url) const;

  const World& world() const { return *world_; }

 private:
  const World* world_;
};

}  // namespace trail::osint

#endif  // TRAIL_OSINT_FEED_CLIENT_H_
