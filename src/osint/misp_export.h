#ifndef TRAIL_OSINT_MISP_EXPORT_H_
#define TRAIL_OSINT_MISP_EXPORT_H_

#include <string>

#include "graph/property_graph.h"
#include "osint/report.h"
#include "util/json.h"
#include "util/status.h"

namespace trail::osint {

/// Serializes a report as a MISP-core-format event object ("Event" with
/// "Attribute" rows and a threat-actor galaxy tag) so TRAIL results can
/// round-trip into MISP-compatible tooling — the exchange format the
/// paper's OTX feed aggregates from.
JsonValue ToMispEvent(const PulseReport& report);

/// Parses a MISP-core-format event back into a PulseReport. Accepts both
/// bare events and the conventional {"Event": {...}} wrapper. Attribute
/// types are mapped: ip-src/ip-dst -> IPv4, hostname/domain -> domain,
/// url/uri -> URL; other attribute types are skipped.
Result<PulseReport> FromMispEvent(const JsonValue& json);

/// Exports one TKG event node and its first-order IOCs as a MISP event
/// (the path for pushing TRAIL-attributed events back to an exchange).
Result<JsonValue> TkgEventToMisp(const graph::PropertyGraph& graph,
                                 graph::NodeId event,
                                 const std::string& apt_name);

}  // namespace trail::osint

#endif  // TRAIL_OSINT_MISP_EXPORT_H_
