#include "osint/misp_export.h"

#include "util/string_util.h"

namespace trail::osint {

namespace {

const char* MispTypeFor(const std::string& trail_type) {
  if (trail_type == "IPv4" || trail_type == "IP") return "ip-dst";
  if (trail_type == "domain" || trail_type == "Domain") return "domain";
  if (trail_type == "URL") return "url";
  return "other";
}

std::string TrailTypeForMisp(const std::string& misp_type) {
  if (misp_type == "ip-src" || misp_type == "ip-dst" || misp_type == "ip") {
    return "IPv4";
  }
  if (misp_type == "domain" || misp_type == "hostname") return "domain";
  if (misp_type == "url" || misp_type == "uri") return "URL";
  return "";
}

}  // namespace

JsonValue ToMispEvent(const PulseReport& report) {
  JsonValue event = JsonValue::MakeObject();
  event.Set("uuid", JsonValue::MakeString(report.id));
  event.Set("info", JsonValue::MakeString("TRAIL export " + report.id));
  event.Set("date_day", JsonValue::MakeNumber(report.day));
  event.Set("analysis", JsonValue::MakeNumber(2));  // completed

  JsonValue attributes = JsonValue::MakeArray();
  for (const ReportedIndicator& indicator : report.indicators) {
    JsonValue attribute = JsonValue::MakeObject();
    attribute.Set("type", JsonValue::MakeString(MispTypeFor(indicator.type)));
    attribute.Set("category",
                  JsonValue::MakeString("Network activity"));
    attribute.Set("value", JsonValue::MakeString(indicator.value));
    attribute.Set("to_ids", JsonValue::MakeBool(true));
    attributes.Append(std::move(attribute));
  }
  event.Set("Attribute", std::move(attributes));

  if (!report.apt.empty()) {
    JsonValue galaxy = JsonValue::MakeArray();
    JsonValue tag = JsonValue::MakeObject();
    tag.Set("name", JsonValue::MakeString(
                        "misp-galaxy:threat-actor=\"" + report.apt + "\""));
    galaxy.Append(std::move(tag));
    event.Set("Tag", std::move(galaxy));
  }

  JsonValue wrapper = JsonValue::MakeObject();
  wrapper.Set("Event", std::move(event));
  return wrapper;
}

Result<PulseReport> FromMispEvent(const JsonValue& json) {
  const JsonValue* event = json.Get("Event");
  if (event == nullptr) event = &json;  // bare event object
  if (!event->is_object()) {
    return Status::ParseError("MISP event is not an object");
  }
  PulseReport report;
  report.id = event->GetString("uuid");
  if (report.id.empty()) return Status::ParseError("MISP event missing uuid");
  report.day = static_cast<int>(event->GetNumber("date_day", 0));

  // Threat-actor galaxy tag.
  const JsonValue* tags = event->Get("Tag");
  if (tags != nullptr && tags->is_array()) {
    for (const JsonValue& tag : tags->items()) {
      std::string name = tag.GetString("name");
      const std::string prefix = "misp-galaxy:threat-actor=\"";
      if (StartsWith(name, prefix) && EndsWith(name, "\"")) {
        report.apt =
            name.substr(prefix.size(), name.size() - prefix.size() - 1);
      }
    }
  }

  const JsonValue* attributes = event->Get("Attribute");
  if (attributes == nullptr || !attributes->is_array()) {
    return Status::ParseError("MISP event missing Attribute array");
  }
  for (const JsonValue& attribute : attributes->items()) {
    if (!attribute.is_object()) continue;
    std::string trail_type = TrailTypeForMisp(attribute.GetString("type"));
    std::string value = attribute.GetString("value");
    if (trail_type.empty() || value.empty()) continue;
    report.indicators.push_back(ReportedIndicator{trail_type, value});
  }
  return report;
}

Result<JsonValue> TkgEventToMisp(const graph::PropertyGraph& graph,
                                 graph::NodeId event,
                                 const std::string& apt_name) {
  if (event >= graph.num_nodes() ||
      graph.type(event) != graph::NodeType::kEvent) {
    return Status::InvalidArgument("not an event node");
  }
  PulseReport report;
  report.id = graph.value(event);
  report.apt = apt_name;
  report.day = static_cast<int>(graph.timestamp(event));
  for (const graph::Neighbor& nb : graph.neighbors(event)) {
    if (nb.type != graph::EdgeType::kInReport) continue;
    std::string type;
    switch (graph.type(nb.node)) {
      case graph::NodeType::kIp:
        type = "IPv4";
        break;
      case graph::NodeType::kDomain:
        type = "domain";
        break;
      case graph::NodeType::kUrl:
        type = "URL";
        break;
      default:
        continue;
    }
    report.indicators.push_back(ReportedIndicator{type, graph.value(nb.node)});
  }
  return ToMispEvent(report);
}

}  // namespace trail::osint
