#include "osint/apt_profile.h"

#include <algorithm>

#include "ioc/feature_schema.h"
#include "util/logging.h"

namespace trail::osint {

const std::vector<std::string>& AptNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "APT28",   "APT29",    "APT38",  "APT37",  "KIMSUKY", "APT27",
      "FIN11",   "TA511",    "APT1",   "APT3",   "APT10",   "APT17",
      "APT32",   "APT33",    "APT34",  "APT40",  "APT41",   "FIN7",
      "TA505",   "MUDDYWATER", "TURLA", "SANDWORM",
  };
  return *names;
}

LexicalStyle LexicalStyle::Archetype(uint64_t index) {
  LexicalStyle style;
  switch (index % 5) {
    case 0:  // short pronounceable brands
      style = {5, 9, 0.0, 0.10, 0.10, 0, 0};
      break;
    case 1:  // wordy with hyphens
      style = {8, 14, 0.05, 0.15, 0.35, 0, 0};
      break;
    case 2:  // DGA alnum
      style = {8, 13, 0.25, 0.30, 0.00, 1, 1};
      break;
    case 3:  // hex tokens + subdomains
      style = {6, 10, 0.30, 0.45, 0.00, 2, 2};
      break;
    default:  // mixed gibberish
      style = {7, 12, 0.15, 0.25, 0.05, 1, 2};
      break;
  }
  return style;
}

Preference Preference::Make(size_t vocab_size, int num_favored,
                            double sharpness, Rng* rng) {
  Preference pref;
  pref.vocab_size_ = vocab_size;
  num_favored = std::min<int>(num_favored, static_cast<int>(vocab_size));
  // Favored entries are drawn from a Zipf head over the vocabulary: real
  // adversaries mostly use the same popular registrars / servers / TLDs as
  // everyone else, so different groups' preferences overlap heavily and
  // individual categorical features are only weakly identifying (the paper's
  // individual-IOC accuracies are 0.29-0.46, far from separable).
  std::vector<int> seen;
  int guard = 0;
  // Very large vocabularies (the 944 server strings) have an even more
  // concentrated real-world head, so favored picks collide harder there.
  const double exponent = vocab_size > 300 ? 1.5 : 1.1;
  while (static_cast<int>(seen.size()) < num_favored && guard++ < 1000) {
    int pick = static_cast<int>(rng->Zipf(vocab_size, exponent));
    if (std::find(seen.begin(), seen.end(), pick) == seen.end()) {
      seen.push_back(pick);
    }
  }
  pref.favored_ = std::move(seen);
  // Decaying weights over the favored entries; sharper profiles concentrate
  // more mass on the first picks.
  pref.weights_.resize(pref.favored_.size());
  double w = sharpness;
  for (size_t i = 0; i < pref.weights_.size(); ++i) {
    pref.weights_[i] = w;
    w *= 0.55;
  }
  // Exploration floor shrinks as sharpness grows.
  pref.explore_ = std::clamp(0.65 / (1.0 + sharpness), 0.03, 0.5);
  return pref;
}

int Preference::Sample(Rng* rng) const {
  TRAIL_CHECK(vocab_size_ > 0) << "Preference not initialized";
  if (favored_.empty() || rng->Bernoulli(explore_)) {
    return static_cast<int>(rng->NextBounded(vocab_size_));
  }
  return favored_[rng->WeightedIndex(weights_)];
}

std::vector<AptProfile> AptProfile::BuildRoster(int num_apts, double sharpness,
                                                int num_asns, Rng* rng) {
  const auto& schemas = ioc::FeatureSchemas::Get();
  const auto& names = AptNames();
  std::vector<AptProfile> roster;
  roster.reserve(num_apts);
  for (int i = 0; i < num_apts; ++i) {
    AptProfile apt;
    apt.id = i;
    apt.name = i < static_cast<int>(names.size())
                   ? names[i]
                   : "APT-X" + std::to_string(i);
    Rng sub = rng->Fork();
    apt.country = Preference::Make(schemas.countries().size(), 6, sharpness,
                                   &sub);
    apt.issuer = Preference::Make(schemas.issuers().size(), 8, sharpness,
                                  &sub);
    apt.tld = Preference::Make(schemas.tlds().size(), 8, sharpness, &sub);
    apt.server = Preference::Make(schemas.servers().size(), 8, sharpness,
                                  &sub);
    apt.os = Preference::Make(schemas.oses().size(), 5, sharpness, &sub);
    apt.encoding = Preference::Make(schemas.encodings().size(), 2, sharpness,
                                    &sub);
    apt.file_type = Preference::Make(schemas.file_types().size(), 8,
                                     sharpness, &sub);
    apt.http_code = Preference::Make(schemas.http_codes().size(), 5,
                                     sharpness, &sub);
    apt.service = Preference::Make(schemas.services().size(), 6, sharpness,
                                   &sub);

    // ASN pools are popularity-skewed and heavily shared: bulletproof and
    // cheap hosting providers serve many groups at once, so an ASN narrows
    // the candidate set without identifying a group outright.
    const size_t pool = 5 + sub.NextBounded(6);
    int guard = 0;
    while (apt.asn_pool.size() < pool && guard++ < 1000) {
      int pick = static_cast<int>(sub.Zipf(num_asns, 0.9));
      if (std::find(apt.asn_pool.begin(), apt.asn_pool.end(), pick) ==
          apt.asn_pool.end()) {
        apt.asn_pool.push_back(pick);
      }
    }

    // Lexical habits come from a small set of shared archetypes (DGA kits
    // and web panels circulate between groups), so 22 groups collide
    // heavily on lexical features — individually they are weak evidence.
    apt.lexical = LexicalStyle::Archetype(sub.NextBounded(5));
    apt.lexical.path_style = static_cast<int>(sub.NextBounded(3));
    roster.push_back(std::move(apt));
  }
  return roster;
}

}  // namespace trail::osint
