#include "osint/report.h"

#include "obs/metrics.h"

namespace trail::osint {

JsonValue PulseReport::ToJson() const {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("id", JsonValue::MakeString(id));
  obj.Set("name", JsonValue::MakeString("Activity report " + id));
  obj.Set("adversary", JsonValue::MakeString(apt));
  obj.Set("created_day", JsonValue::MakeNumber(day));
  JsonValue arr = JsonValue::MakeArray();
  for (const ReportedIndicator& indicator : indicators) {
    JsonValue row = JsonValue::MakeObject();
    row.Set("type", JsonValue::MakeString(indicator.type));
    row.Set("indicator", JsonValue::MakeString(indicator.value));
    arr.Append(std::move(row));
  }
  obj.Set("indicators", std::move(arr));
  return obj;
}

Result<PulseReport> PulseReport::FromJson(const JsonValue& json) {
  if (!json.is_object()) return Status::ParseError("report is not an object");
  PulseReport report;
  report.id = json.GetString("id");
  if (report.id.empty()) return Status::ParseError("report missing id");
  report.apt = json.GetString("adversary");
  report.day = static_cast<int>(json.GetNumber("created_day", 0));
  const JsonValue* indicators = json.Get("indicators");
  if (indicators == nullptr || !indicators->is_array()) {
    return Status::ParseError("report missing indicators array");
  }
  for (const JsonValue& row : indicators->items()) {
    if (!row.is_object()) continue;
    ReportedIndicator indicator;
    indicator.type = row.GetString("type");
    indicator.value = row.GetString("indicator");
    if (indicator.value.empty()) continue;
    report.indicators.push_back(std::move(indicator));
  }
  return report;
}

Result<PulseReport> PulseReport::FromJsonString(const std::string& text) {
  auto parsed = JsonValue::Parse(text);
  if (!parsed.ok()) {
    TRAIL_METRIC_INC("osint.report_parse_failures");
    return parsed.status();
  }
  auto report = FromJson(parsed.value());
  if (report.ok()) {
    TRAIL_METRIC_INC("osint.reports_parsed");
  } else {
    TRAIL_METRIC_INC("osint.report_parse_failures");
  }
  return report;
}

}  // namespace trail::osint
