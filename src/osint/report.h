#ifndef TRAIL_OSINT_REPORT_H_
#define TRAIL_OSINT_REPORT_H_

#include <string>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace trail::osint {

/// One indicator row of an incident report, as shared on the exchange.
struct ReportedIndicator {
  std::string type;   // "IPv4", "domain", "URL" (OTX-style type tags)
  std::string value;  // possibly defanged
};

/// An attributed incident report ("pulse" in OTX terms): the raw unit TRAIL
/// ingests. `apt` is the analyst-assigned threat-actor tag; `day` is days
/// since the feed epoch.
struct PulseReport {
  std::string id;
  std::string apt;
  int day = 0;
  std::vector<ReportedIndicator> indicators;

  /// Serializes to the feed's JSON wire format.
  JsonValue ToJson() const;
  std::string ToJsonString() const { return ToJson().Dump(); }

  /// Parses the wire format; unknown fields are ignored, missing required
  /// fields are errors.
  static Result<PulseReport> FromJson(const JsonValue& json);
  static Result<PulseReport> FromJsonString(const std::string& text);
};

}  // namespace trail::osint

#endif  // TRAIL_OSINT_REPORT_H_
