// SOC pipeline: everything an operations deployment of TRAIL would chain
// together, end to end —
//
//   1. build the TKG and train the models,
//   2. calibrate the GNN's confidences on a held-out split
//      (ml::TemperatureScaler) so a verdict threshold is meaningful,
//   3. run a monthly Study loop: attribute on arrival, auto-accept only
//      verdicts above the calibrated threshold, triage the rest,
//   4. export an attributed event back to the exchange in MISP format.
//
// Attribution queries (the calibration probes and the monthly verdicts) go
// through serve::AttributionService — the same micro-batching front door a
// production deployment would expose over TCP (docs/SERVING.md) — so each
// phase's requests coalesce into a handful of batched GNN forwards instead
// of one forward per event. The service is scoped per phase: the Study
// loop mutates the Trail (delta-appends + fine-tunes), and the serving
// contract requires draining requests before mutating.
//
// Run: ./build/examples/soc_pipeline [--trace-out trace.json]

#include <cstdio>
#include <future>
#include <vector>

#include "core/study.h"
#include "core/trail.h"
#include "core/triage.h"
#include "graph/csr.h"
#include "ml/calibration.h"
#include "ml/dataset.h"
#include "obs/manifest.h"
#include "obs/request_trace.h"
#include "obs/sliding_window.h"
#include "obs/trace.h"
#include "osint/feed_client.h"
#include "osint/misp_export.h"
#include "osint/world.h"
#include "serve/attribution_service.h"
#include "util/logging.h"

namespace {

/// Submits every event to a phase-scoped AttributionService and returns
/// the resolved responses in submission order. One service per call: by
/// the time this returns, the queue is drained and the Trail is free to
/// be mutated again. Each drained request's end-to-end latency and
/// outcome are recorded into `slo`, so the SOC's own serving SLO view
/// accumulates across the monthly sweeps.
std::vector<trail::serve::ServeResponse> AttributeBatched(
    trail::core::Trail* trail,
    const std::vector<trail::graph::NodeId>& events,
    trail::obs::SloTracker* slo) {
  trail::serve::ServeOptions options;
  options.max_batch_size = 64;
  trail::serve::AttributionService service(trail, options);
  std::vector<std::future<trail::serve::ServeResponse>> futures;
  futures.reserve(events.size());
  for (trail::graph::NodeId event : events) {
    futures.push_back(service.SubmitEvent(event));
  }
  std::vector<trail::serve::ServeResponse> responses;
  responses.reserve(futures.size());
  for (auto& future : futures) responses.push_back(future.get());
  if (slo != nullptr && service.trace_ring() != nullptr) {
    for (const trail::obs::RequestTrace& t :
         service.trace_ring()->Snapshot()) {
      slo->Record(t.TotalSeconds(), t.status_code == 0);
    }
  }
  const auto stats = service.GetStats();
  std::printf("  [serve] %llu requests in %llu batches (max batch %zu)\n",
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.batches),
              stats.max_batch_size);
  return responses;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trail;
  SetLogLevel(LogLevel::kWarning);
  obs::RunContext run("soc_pipeline", argc, argv);

  osint::WorldConfig config;
  config.num_apts = 10;
  config.min_events_per_apt = 14;
  config.max_events_per_apt = 26;
  config.end_day = 1800;
  config.post_days = 90;
  osint::World world(config);
  osint::FeedClient feed(&world);

  // --- 1. Build + train.
  core::TrailOptions options;
  options.autoencoder.epochs = 6;
  options.gnn.epochs = 80;
  core::Trail trail(&feed, options);
  run.manifest().AddOption("trail", core::OptionsToJson(options));
  {
    TRAIL_TRACE_SPAN("phase.ingest");
    TRAIL_CHECK(trail.Ingest(feed.FetchReports(0, config.end_day)).ok());
  }
  {
    TRAIL_TRACE_SPAN("phase.train");
    TRAIL_CHECK(trail.TrainModels().ok());
  }
  std::printf("TKG %zu nodes, models trained\n", trail.graph().num_nodes());

  // --- 2. Calibrate confidences on the training events themselves,
  //        leave-own-label-out style: attribute each with its label hidden.
  const auto& g = trail.graph();
  auto events = g.NodesOfType(graph::NodeType::kEvent);
  ml::TemperatureScaler scaler;
  {
    TRAIL_TRACE_SPAN("phase.calibrate");
    // Probe every 4th event through the serving front door: the service
    // coalesces them into micro-batches, so the probe sweep costs a few
    // batched forwards instead of |events|/4 full-graph forwards.
    std::vector<graph::NodeId> probe_events;
    for (size_t i = 0; i < events.size(); i += 4) {
      probe_events.push_back(events[i]);
    }
    std::vector<serve::ServeResponse> verdicts =
        AttributeBatched(&trail, probe_events, /*slo=*/nullptr);
    ml::Matrix probe(probe_events.size() + 1, trail.apt_names().size());
    std::vector<int> probe_labels;
    size_t row = 0;
    for (size_t i = 0; i < verdicts.size(); ++i) {
      if (!verdicts[i].status.ok()) continue;
      for (const auto& [name, p] : verdicts[i].attribution.distribution) {
        for (size_t c = 0; c < trail.apt_names().size(); ++c) {
          if (trail.apt_names()[c] == name) {
            probe.At(row, c) = static_cast<float>(p);
          }
        }
      }
      probe_labels.push_back(g.label(probe_events[i]));
      ++row;
    }
    while (probe_labels.size() < probe.rows()) probe_labels.push_back(-1);
    scaler.Fit(probe, probe_labels);
    double ece_before = ml::ExpectedCalibrationError(probe, probe_labels);
    double ece_after =
        ml::ExpectedCalibrationError(scaler.Apply(probe), probe_labels);
    std::printf("calibration: T=%.2f, ECE %.3f -> %.3f\n\n",
                scaler.temperature(), ece_before, ece_after);
  }
  const double kAcceptThreshold = 0.75;

  // --- 3. Monthly loop with thresholded verdicts + triage of the rest.
  // The SOC also watches its own serving SLO: every monthly sweep's
  // request latencies/outcomes accumulate here (docs/OBSERVABILITY.md,
  // "The live serving plane").
  obs::SloTracker serving_slo;
  core::StudyOptions study_options;
  study_options.fine_tune_epochs = 6;
  core::Study study(&trail, study_options);
  for (int month = 0; month < 3; ++month) {
    TRAIL_TRACE_SPAN("phase.monitor_month");
    int lo = config.end_day + 30 * month;
    auto reports = world.ReportsBetween(lo, lo + 30);
    if (reports.empty()) continue;
    auto outcome = study.RunMonth(reports);
    TRAIL_CHECK(outcome.ok()) << outcome.status();

    // The month's arrivals are attributed through the serving front door
    // in one shot — RunMonth has finished mutating the Trail by now, and
    // AttributeBatched drains before returning, so the next RunMonth is
    // safe again.
    std::vector<serve::ServeResponse> verdicts =
        AttributeBatched(&trail, outcome->event_nodes, &serving_slo);
    int auto_accepted = 0;
    int escalated = 0;
    graph::NodeId triage_example = graph::kInvalidNode;
    for (size_t i = 0; i < verdicts.size(); ++i) {
      double calibrated = 0.0;
      if (verdicts[i].status.ok()) {
        // Single-row calibration of the top confidence.
        ml::Matrix one(1, trail.apt_names().size());
        for (const auto& [name, p] : verdicts[i].attribution.distribution) {
          for (size_t c = 0; c < trail.apt_names().size(); ++c) {
            if (trail.apt_names()[c] == name) {
              one.At(0, c) = static_cast<float>(p);
            }
          }
        }
        ml::Matrix scaled = scaler.Apply(one);
        for (size_t c = 0; c < scaled.cols(); ++c) {
          calibrated = std::max<double>(calibrated, scaled.At(0, c));
        }
      }
      if (calibrated >= kAcceptThreshold) {
        ++auto_accepted;
      } else {
        ++escalated;
        triage_example = outcome->event_nodes[i];
      }
    }
    std::printf("month %d: %2zu reports — accuracy %.2f, auto-accepted %d, "
                "escalated to analysts %d\n",
                month + 1, outcome->num_reports, outcome->accuracy,
                auto_accepted, escalated);

    // Analysts get a ranked IOC worklist for one escalated event.
    if (triage_example != graph::kInvalidNode) {
      graph::CsrGraph csr = graph::CsrGraph::Build(trail.graph());
      core::TriageOptions triage_options;
      triage_options.max_items = 3;
      auto worklist =
          core::TriageEvent(trail.graph(), csr, triage_example,
                            triage_options);
      std::printf("  triage for %s:\n",
                  trail.graph().value(triage_example).c_str());
      for (const core::TriageItem& item : worklist) {
        std::printf("    %.3f  %-7s %s (reused in %d reports)\n", item.score,
                    item.type_name.c_str(), item.value.c_str(),
                    item.reuse_count);
      }
    }
  }

  // --- 4. Export one attributed event back to the exchange (MISP format).
  {
    TRAIL_TRACE_SPAN("phase.export");
    graph::NodeId exported = events[0];
    auto misp = osint::TkgEventToMisp(
        trail.graph(), exported,
        trail.apt_names()[trail.graph().label(exported)]);
    TRAIL_CHECK(misp.ok());
    std::printf("\nMISP export of %s (first 400 chars):\n%.400s...\n",
                trail.graph().value(exported).c_str(),
                misp->Dump(2).c_str());
  }
  // The accumulated serving-SLO view over the monthly sweeps.
  {
    obs::SlidingWindow::Snapshot window = serving_slo.Window(3600);
    std::printf("\nserving SLO (1h window): %zu requests, availability "
                "%.4f, p99 %.1fms, 1h burn rate %.2f\n",
                static_cast<size_t>(window.total), window.availability,
                window.p99_s * 1e3, serving_slo.BurnRate(3600));
  }
  obs::PrintPhaseSummary();
  return 0;
}
