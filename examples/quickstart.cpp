// Quickstart: stand up the TRAIL pipeline end to end in ~80 lines.
//
//   1. create a synthetic OSINT world (substitute for the AlienVault OTX
//      feed the paper collects from),
//   2. ingest its attributed incident reports into the TRAIL Knowledge
//      Graph (with two-hop IOC enrichment),
//   3. train the analysis models (autoencoders + GraphSAGE GNN),
//   4. attribute a brand-new, unattributed report.
//
// Build: cmake --build build --target quickstart
// Run:   ./build/examples/quickstart [--trace-out trace.json]
//                                    [--manifest-out FILE] [--log-level L]
//
// The run writes run_manifest.json (counters, latency histograms, phase
// timings, build info) and, with --trace-out, a Chrome trace-event
// timeline. See docs/OBSERVABILITY.md.

#include <cstdio>

#include "core/trail.h"
#include "obs/manifest.h"
#include "obs/trace.h"
#include "osint/feed_client.h"
#include "osint/world.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace trail;
  SetLogLevel(LogLevel::kWarning);
  obs::RunContext run("quickstart", argc, argv);

  // 1. The intelligence exchange. WorldConfig's defaults describe a
  //    22-actor world calibrated against the paper's statistics; shrink it
  //    here so the quickstart runs in seconds.
  osint::WorldConfig world_config;
  world_config.num_apts = 8;
  world_config.min_events_per_apt = 12;
  world_config.max_events_per_apt = 24;
  world_config.end_day = 1500;
  osint::World world(world_config);
  osint::FeedClient feed(&world);
  std::printf("feed: %zu attributed reports from %d tracked APTs\n",
              world.reports().size(), world.num_apts());

  // 2. Build the TRAIL Knowledge Graph from every report before the
  //    training cutoff.
  core::TrailOptions options;
  options.autoencoder.epochs = 6;
  options.gnn.epochs = 60;
  run.manifest().AddOption("trail", core::OptionsToJson(options));
  core::Trail trail(&feed, options);
  {
    TRAIL_TRACE_SPAN("phase.ingest");
    Status st = trail.Ingest(feed.FetchReports(0, world_config.end_day));
    if (!st.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("TKG: %zu nodes, %zu edges\n", trail.graph().num_nodes(),
              trail.graph().num_edges());

  // 3. Train the models.
  {
    TRAIL_TRACE_SPAN("phase.train");
    Status st = trail.TrainModels();
    if (!st.ok()) {
      std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("models trained\n\n");

  // 4. A new incident lands on the exchange without attribution. Merge it
  //    (TRAIL enriches its IOCs automatically) and ask both analyzers.
  {
    TRAIL_TRACE_SPAN("phase.attribute");
    auto post_cutoff = world.ReportsBetween(world_config.end_day,
                                            world_config.end_day + 60);
    if (post_cutoff.empty()) {
      std::fprintf(stderr, "no post-cutoff reports generated\n");
      return 1;
    }
    osint::PulseReport incident = *post_cutoff[0];
    std::string true_actor = incident.apt;
    incident.apt.clear();  // pretend the analyst left it unattributed

    auto event = trail.IngestReport(incident);
    if (!event.ok()) {
      std::fprintf(stderr, "merge failed: %s\n",
                   event.status().ToString().c_str());
      return 1;
    }

    std::printf("new incident %s (%zu indicators) — true actor: %s\n",
                incident.id.c_str(), incident.indicators.size(),
                true_actor.c_str());

    auto lp = trail.AttributeWithLp(event.value());
    if (lp.ok()) {
      std::printf("  label propagation: %-10s (confidence %.2f)\n",
                  lp->apt_name.c_str(), lp->confidence);
    } else {
      std::printf("  label propagation: unattributable — no infrastructure "
                  "reuse paths\n");
    }
    auto gnn = trail.AttributeWithGnn(event.value());
    if (gnn.ok()) {
      std::printf("  GNN:               %-10s (confidence %.2f)\n",
                  gnn->apt_name.c_str(), gnn->confidence);
      std::printf("  full distribution:");
      for (size_t i = 0; i < 3 && i < gnn->distribution.size(); ++i) {
        std::printf("  %s %.2f", gnn->distribution[i].first.c_str(),
                    gnn->distribution[i].second);
      }
      std::printf(" ...\n");
    }
  }
  obs::PrintPhaseSummary();
  return 0;
}
