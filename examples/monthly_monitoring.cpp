// Monthly monitoring: the production loop the paper's longitudinal study
// (Section VII-C, Fig. 8) argues for — keep the TKG current and fine-tune
// the GNN every month so attribution quality doesn't drift. Driven by the
// core::Study class, which encapsulates the attribute-on-arrival /
// merge-confirmed-labels / fine-tune protocol.
//
// Run: ./build/examples/monthly_monitoring [--trace-out trace.json]

#include <cstdio>

#include "core/study.h"
#include "core/trail.h"
#include "obs/manifest.h"
#include "obs/trace.h"
#include "osint/feed_client.h"
#include "osint/world.h"
#include "util/logging.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace trail;
  SetLogLevel(LogLevel::kWarning);
  obs::RunContext run("monthly_monitoring", argc, argv);

  osint::WorldConfig config;
  config.num_apts = 10;
  config.min_events_per_apt = 14;
  config.max_events_per_apt = 28;
  config.end_day = 1800;
  config.post_days = 180;  // six monitored months
  osint::World world(config);
  osint::FeedClient feed(&world);

  core::TrailOptions options;
  options.autoencoder.epochs = 6;
  options.gnn.epochs = 80;
  core::Trail trail(&feed, options);
  run.manifest().AddOption("trail", core::OptionsToJson(options));
  {
    TRAIL_TRACE_SPAN("phase.ingest");
    TRAIL_CHECK(trail.Ingest(feed.FetchReports(0, config.end_day)).ok());
  }
  {
    TRAIL_TRACE_SPAN("phase.train");
    TRAIL_CHECK(trail.TrainModels().ok());
  }
  std::printf("initial TKG: %zu nodes, trained on %zu events\n\n",
              trail.graph().num_nodes(), trail.builder().num_events());

  core::StudyOptions study_options;
  study_options.retrain_monthly = true;  // the paper's recommended mode
  // Warm-start fine-tune by default; rebuild from scratch only when a
  // month's macro-F1 craters (concept drift).
  study_options.retrain_mode = core::RetrainMode::kAuto;
  study_options.fine_tune_epochs = 8;
  core::Study study(&trail, study_options);

  for (int month = 0; month < 6; ++month) {
    TRAIL_TRACE_SPAN("phase.monitor_month");
    int lo = config.end_day + 30 * month;
    auto reports = world.ReportsBetween(lo, lo + 30);
    if (reports.empty()) continue;
    auto outcome = study.RunMonth(reports);
    TRAIL_CHECK(outcome.ok()) << outcome.status();
    std::printf("month %d: %2zu new reports, accuracy %s (balanced %s, "
                "macro-F1 %s) — %s update in %s ms (month %s ms)%s\n",
                outcome->month_index, outcome->num_reports,
                FormatDouble(outcome->accuracy, 3).c_str(),
                FormatDouble(outcome->balanced_accuracy, 3).c_str(),
                FormatDouble(outcome->macro_f1, 3).c_str(),
                core::RetrainModeName(outcome->mode_used),
                FormatDouble(outcome->retrain_wall_ms, 1).c_str(),
                FormatDouble(outcome->wall_ms, 1).c_str(),
                outcome->scratch_fallback ? " [drift fallback]" : "");
  }

  std::printf("\nfinal TKG: %zu nodes, %zu events — model stays current "
              "month over month (see bench/fig8_degradation for the "
              "frozen-model comparison)\n",
              trail.graph().num_nodes(), trail.builder().num_events());
  obs::PrintPhaseSummary();
  return 0;
}
