// Campaign investigation: the paper's case-study workflow (Section VII-C)
// as an analyst tool. Given a fresh unattributed report, TRAIL:
//   * enriches its IOCs and merges them into the TKG,
//   * walks the 2- and 3-hop neighborhoods for related attributed events
//     (the "Operation DreamJob" discovery of the paper),
//   * attributes the event with label propagation and the GNN,
//   * lists the specific reused IOCs that justify the attribution —
//     the evidence a human analyst would cite.
//
// Run: ./build/examples/campaign_investigation [--trace-out trace.json]

#include <algorithm>
#include <cstdio>
#include <map>

#include "core/trail.h"
#include "graph/algorithms.h"
#include "graph/csr.h"
#include "obs/manifest.h"
#include "obs/trace.h"
#include "osint/feed_client.h"
#include "osint/world.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace trail;
  SetLogLevel(LogLevel::kWarning);
  obs::RunContext run("campaign_investigation", argc, argv);

  osint::WorldConfig config;
  config.num_apts = 10;
  config.min_events_per_apt = 15;
  config.max_events_per_apt = 30;
  config.end_day = 2000;
  osint::World world(config);
  osint::FeedClient feed(&world);

  core::TrailOptions options;
  options.autoencoder.epochs = 6;
  options.gnn.epochs = 80;
  core::Trail trail(&feed, options);
  run.manifest().AddOption("trail", core::OptionsToJson(options));
  {
    TRAIL_TRACE_SPAN("phase.ingest");
    TRAIL_CHECK(trail.Ingest(feed.FetchReports(0, config.end_day)).ok());
  }
  {
    TRAIL_TRACE_SPAN("phase.train");
    TRAIL_CHECK(trail.TrainModels().ok());
  }
  std::printf("TKG ready: %zu nodes, %zu edges, %zu events\n\n",
              trail.graph().num_nodes(), trail.graph().num_edges(),
              trail.builder().num_events());

  {
    TRAIL_TRACE_SPAN("phase.investigate");
    // The incident under investigation: first post-cutoff report with a
    // reasonable number of indicators.
    auto post = world.ReportsBetween(config.end_day, config.end_day + 90);
    const osint::PulseReport* chosen = nullptr;
    for (const osint::PulseReport* report : post) {
      if (report->indicators.size() >= 8) {
        chosen = report;
        break;
      }
    }
    TRAIL_CHECK(chosen != nullptr);
    osint::PulseReport incident = *chosen;
    std::string true_actor = incident.apt;
    incident.apt.clear();

    size_t nodes_before = trail.graph().num_nodes();
    auto event = trail.IngestReport(incident);
    TRAIL_CHECK(event.ok());
    const auto& g = trail.graph();

    std::printf("INCIDENT %s\n", incident.id.c_str());
    std::printf("  reported indicators: %zu\n", incident.indicators.size());
    std::printf("  IOCs after enrichment: +%zu nodes\n\n",
                g.num_nodes() - nodes_before - 1);

    // Neighborhood walk: who else used this infrastructure?
    graph::CsrGraph csr = graph::CsrGraph::Build(g);
    for (int hops : {2, 3}) {
      auto hood = graph::KHopNeighborhood(csr, event.value(), hops);
      std::map<std::string, int> related;
      for (graph::NodeId node : hood) {
        if (node != event.value() && g.type(node) == graph::NodeType::kEvent &&
            g.label(node) >= 0) {
          related[trail.apt_names()[g.label(node)]]++;
        }
      }
      std::printf("related attributed events within %d hops:\n", hops);
      if (related.empty()) std::printf("  none\n");
      for (const auto& [apt, count] : related) {
        std::printf("  %-12s %d\n", apt.c_str(), count);
      }
    }

    // The concrete shared infrastructure (evidence for the report).
    std::printf("\ndirectly reused indicators (evidence):\n");
    int evidence = 0;
    for (const graph::Neighbor& nb : g.neighbors(event.value())) {
      if (g.report_count(nb.node) < 2) continue;
      // Find the other attributed events using this IOC.
      std::map<std::string, int> users;
      for (const graph::Neighbor& nb2 : g.neighbors(nb.node)) {
        if (nb2.node != event.value() &&
            g.type(nb2.node) == graph::NodeType::kEvent &&
            g.label(nb2.node) >= 0) {
          users[trail.apt_names()[g.label(nb2.node)]]++;
        }
      }
      if (users.empty()) continue;
      std::printf("  %s %s — also used by:",
                  graph::NodeTypeName(g.type(nb.node)),
                  g.value(nb.node).c_str());
      for (const auto& [apt, count] : users) {
        std::printf(" %s(x%d)", apt.c_str(), count);
      }
      std::printf("\n");
      if (++evidence >= 8) break;
    }
    if (evidence == 0) {
      std::printf("  none — attribution must rest on indirect paths and "
                  "feature evidence\n");
    }

    // Attribution verdicts.
    std::printf("\nATTRIBUTION (true actor: %s)\n", true_actor.c_str());
    auto lp = trail.AttributeWithLp(event.value());
    if (lp.ok()) {
      std::printf("  label propagation: %-12s confidence %.2f\n",
                  lp->apt_name.c_str(), lp->confidence);
    } else {
      std::printf("  label propagation: unattributable\n");
    }
    auto blind = trail.AttributeWithGnn(event.value(), true);
    auto informed = trail.AttributeWithGnn(event.value(), false);
    TRAIL_CHECK(blind.ok() && informed.ok());
    std::printf("  GNN (labels hidden):  %-12s confidence %.2f\n",
                blind->apt_name.c_str(), blind->confidence);
    std::printf("  GNN (labels visible): %-12s confidence %.2f\n",
                informed->apt_name.c_str(), informed->confidence);
  }
  obs::PrintPhaseSummary();
  return 0;
}
