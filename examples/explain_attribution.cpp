// Explainability walkthrough (paper Section VII-D): why did the models say
// what they said?
//   * TreeSHAP over the XGB URL classifier — which behavioral features make
//     a URL look like a given actor's work (the paper's Fig. 9 beeswarm);
//   * GNNExplainer over the GraphSAGE model — which edges of the knowledge
//     graph carried the attribution (the paper's Fig. 10 subgraph).
//
// Run: ./build/examples/explain_attribution [--trace-out trace.json]

#include <algorithm>
#include <cstdio>

#include "core/encoders.h"
#include "core/ioc_dataset.h"
#include "core/tkg_builder.h"
#include "gnn/event_gnn.h"
#include "gnn/explainer.h"
#include "graph/algorithms.h"
#include "graph/csr.h"
#include "ioc/feature_schema.h"
#include "ml/gbt.h"
#include "ml/treeshap.h"
#include "obs/manifest.h"
#include "obs/trace.h"
#include "osint/feed_client.h"
#include "osint/world.h"
#include "util/logging.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace trail;
  SetLogLevel(LogLevel::kWarning);
  obs::RunContext run("explain_attribution", argc, argv);

  osint::WorldConfig config;
  config.num_apts = 10;
  config.min_events_per_apt = 14;
  config.max_events_per_apt = 26;
  config.end_day = 1800;
  osint::World world(config);
  osint::FeedClient feed(&world);
  core::TkgBuilder builder(&feed, core::TkgBuildOptions{});
  {
    TRAIL_TRACE_SPAN("phase.ingest");
    TRAIL_CHECK(builder.IngestAll(feed.FetchReports(0, config.end_day)).ok());
  }
  const auto& g = builder.graph();
  const int num_classes = builder.num_apts();
  const int target_apt = builder.AptIdFor("APT28");
  std::printf("TKG: %zu nodes / %zu edges\n\n", g.num_nodes(), g.num_edges());

  // ---------- Part 1: TreeSHAP on the URL classifier ----------
  {
    TRAIL_TRACE_SPAN("phase.treeshap");
    core::IocDataset urls =
        core::ExtractIocDataset(g, graph::NodeType::kUrl, num_classes);
    Rng rng(41);
    ml::GbtClassifier gbt;
    ml::GbtOptions gbt_opts;
    gbt_opts.num_rounds = 25;
    gbt.Fit(urls.data, gbt_opts, &rng);

    // Explain one correctly-classified APT28 URL.
    size_t sample = urls.data.size();
    for (size_t i = 0; i < urls.data.size(); ++i) {
      if (urls.data.y[i] == target_apt &&
          gbt.Predict(urls.data.x.Row(i)) == target_apt) {
        sample = i;
        break;
      }
    }
    if (sample < urls.data.size()) {
      std::printf("SHAP explanation for URL %s (classified APT28):\n",
                  g.value(urls.nodes[sample]).c_str());
      auto phi = ml::ShapValues(gbt, urls.data.x.Row(sample), target_apt);
      std::vector<size_t> order(phi.size());
      for (size_t f = 0; f < phi.size(); ++f) order[f] = f;
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return std::abs(phi[a]) > std::abs(phi[b]);
      });
      const auto& schemas = ioc::FeatureSchemas::Get();
      for (int r = 0; r < 8; ++r) {
        size_t f = order[r];
        std::printf("  %+7.4f  %-34s (value %.2f)\n", phi[f],
                    schemas.UrlFeatureName(static_cast<int>(f)).c_str(),
                    urls.data.x.At(sample, f));
      }
      std::printf("  (positive SHAP pushes toward APT28; the margin equals "
                  "base + sum of all contributions)\n\n");
    }
  }

  // ---------- Part 2: GNNExplainer on an event attribution ----------
  {
    TRAIL_TRACE_SPAN("phase.gnn_explain");
    core::IocEncoders encoders;
    gnn::AutoencoderOptions ae_opts;
    ae_opts.hidden = 128;
    ae_opts.epochs = 5;
    ae_opts.max_train_rows = 3000;
    encoders.Fit(g, ae_opts);
    ml::Matrix encoded = encoders.EncodeAll(g);
    gnn::GnnGraph gg = core::BuildGnnGraph(g, encoded);
    std::vector<int> labels(g.num_nodes(), -1);
    for (graph::NodeId event : g.NodesOfType(graph::NodeType::kEvent)) {
      labels[event] = g.label(event);
    }
    gnn::EventGnn model;
    gnn::EventGnnOptions gnn_opts;
    gnn_opts.layers = 3;
    gnn_opts.epochs = 70;
    model.Train(gg, labels, num_classes, gnn_opts);

    graph::NodeId target = graph::kInvalidNode;
    for (graph::NodeId event : g.NodesOfType(graph::NodeType::kEvent)) {
      if (g.label(event) == target_apt && g.degree(event) >= 8) {
        target = event;
        break;
      }
    }
    TRAIL_CHECK(target != graph::kInvalidNode);
    graph::CsrGraph csr = graph::CsrGraph::Build(g);
    auto hood = graph::KHopNeighborhood(csr, target, 3);
    if (hood.size() > 500) hood.resize(500);
    gnn::GnnGraph sub = core::BuildGnnSubgraph(g, encoded, hood);
    std::vector<int> visible(sub.num_nodes, -1);
    for (uint32_t i = 0; i < hood.size(); ++i) {
      if (hood[i] != target) visible[i] = labels[hood[i]];
    }

    gnn::ExplainOptions explain_opts;
    explain_opts.steps = 100;
    auto explanation =
        gnn::ExplainEvent(model, sub, 0, target_apt, visible, explain_opts);
    std::printf("GNNExplainer for event %s (APT28):\n",
                g.value(target).c_str());
    std::printf("  P(APT28) full subgraph %.3f, under learned mask %.3f\n",
                explanation.full_probability, explanation.masked_probability);
    std::printf("  most important edges:\n");
    for (size_t i = 0; i < 8 && i < explanation.edges.size(); ++i) {
      const auto& edge = explanation.edges[i];
      graph::NodeId a = hood[edge.src];
      graph::NodeId b = hood[edge.dst];
      std::printf("   %.3f  %s %s <-> %s %s\n", edge.weight,
                  graph::NodeTypeName(g.type(a)), g.value(a).c_str(),
                  graph::NodeTypeName(g.type(b)), g.value(b).c_str());
    }
    std::printf("  (analysts triage these IOCs first — even a wrong "
                "prediction points at the evidence to check)\n");
  }
  obs::PrintPhaseSummary();
  return 0;
}
