// Ablation: SMOTE oversampling in the individual-IOC pipeline (paper
// Section VI-A preprocessing). Balanced accuracy on the imbalanced APT
// classes should drop without it; plain accuracy may move little.

#include <cstdio>

#include "common.h"
#include "core/ioc_dataset.h"
#include "ml/gbt.h"
#include "ml/metrics.h"
#include "ml/scaler.h"
#include "ml/smote.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace trail;
  bench::BenchEnv env = bench::BuildEnv();
  bench::PrintHeader("Ablation — SMOTE oversampling (domain IOCs, XGB)", env);
  const int num_classes = env.num_apts();

  core::IocDataset ds = core::ExtractIocDataset(
      env.graph(), graph::NodeType::kDomain, num_classes);
  Rng rng(17);
  auto folds = ml::StratifiedKFold(ds.data.y, bench::NumFolds(), &rng);

  TablePrinter table({"Preprocessing", "Acc", "B-Acc"});
  for (bool use_smote : {true, false}) {
    std::vector<double> accs;
    std::vector<double> baccs;
    for (const ml::Fold& fold : folds) {
      ml::Dataset train = ds.data.Select(fold.train);
      ml::Dataset test = ds.data.Select(fold.test);
      if (use_smote) {
        ml::SmoteOptions smote;
        smote.max_neighbors_pool = 400;
        train = ml::SmoteOversample(train, smote, &rng);
      }
      ml::StandardScaler scaler;
      train.x = scaler.FitTransform(train.x);
      test.x = scaler.Transform(test.x);
      ml::GbtClassifier model;
      ml::GbtOptions opts;
      opts.num_rounds = bench::QuickMode() ? 8 : 25;
      model.Fit(train, opts, &rng);
      auto pred = model.PredictBatch(test.x);
      accs.push_back(ml::Accuracy(test.y, pred));
      baccs.push_back(ml::BalancedAccuracy(test.y, pred, num_classes));
    }
    table.AddRow({use_smote ? "SMOTE + scaling (paper)" : "scaling only",
                  ml::FormatMeanStd(ml::ComputeMeanStd(accs)),
                  ml::FormatMeanStd(ml::ComputeMeanStd(baccs))});
  }
  table.Print();
  std::printf("\nShape check: under heavy class imbalance SMOTE lifts "
              "balanced accuracy; with the synthetic world's milder "
              "imbalance (25-64 events/class) the effect can be within "
              "noise — the pipeline keeps it for protocol fidelity with "
              "the paper.\n");
  return 0;
}
