// Reproduces the paper's Section V connectivity analysis:
//   * largest connected component holds 99.94% of nodes;
//   * restricting to first-order IOCs raises component count (161 -> 477)
//     and shrinks the largest component's diameter (23 -> 20 in the paper;
//     enrichment reveals extra links);
//   * 85% of events are within two hops of another event.
// The shapes to check here: near-total giant component, fragmentation when
// enrichment nodes are dropped, and a high two-hop event fraction.

#include <cstdio>

#include "common.h"
#include "core/stats.h"
#include "util/string_util.h"

int main() {
  using namespace trail;
  bench::BenchEnv env = bench::BuildEnv();
  bench::PrintHeader("Section V — TKG connectivity", env);

  core::ConnectivityReport report = core::ComputeConnectivity(env.graph());
  std::printf("Full TKG:\n");
  std::printf("  connected components:        %zu\n", report.full_components);
  std::printf("  largest component:           %s nodes (%.2f%%)\n",
              WithThousands(static_cast<int64_t>(report.full_largest)).c_str(),
              100.0 * report.full_largest_fraction);
  std::printf("  diameter (largest CC):       %d\n", report.full_diameter);
  std::printf("First-order subgraph (events + reported IOCs only):\n");
  std::printf("  connected components:        %zu\n",
              report.first_order_components);
  std::printf("  largest component:           %s nodes\n",
              WithThousands(
                  static_cast<int64_t>(report.first_order_largest)).c_str());
  std::printf("  diameter (largest CC):       %d\n",
              report.first_order_diameter);
  std::printf("\nEvents within 2 hops of another event: %.1f%% "
              "(paper: 85%%)\n",
              100.0 * report.events_within_two_hops);
  return 0;
}
