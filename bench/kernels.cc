// Kernel-layer microbenchmarks: GFLOP/s per GEMM variant across the shapes
// the GNN actually uses, CSR SpMM edge throughput, fused elementwise
// bandwidth, and an end-to-end GraphSAGE-style training-step comparison —
// each measured for the naive pre-kernel loops and for every dispatch
// target reachable on the host. Writes BENCH_kernels.json.
//
// Run: ./build/bench/kernels [--out BENCH_kernels.json]
// Honors TRAIL_BENCH_QUICK=1 (fewer repetitions, smaller shapes).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "ml/autograd.h"
#include "ml/kernels.h"
#include "ml/matrix.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using namespace trail;
using ml::Matrix;

bool QuickMode() {
  const char* v = std::getenv("TRAIL_BENCH_QUICK");
  return v != nullptr && std::strcmp(v, "1") == 0;
}

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed,
                    double density = 1.0) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    if (density >= 1.0 || rng.UniformDouble(0.0, 1.0) < density) {
      m.data()[i] = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
    }
  }
  return m;
}

/// Times fn(): repeats until the batch takes >= ~40 ms (4 ms quick), three
/// batches, reports the best per-call seconds. Single-threaded host-honest.
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  const double target = QuickMode() ? 0.004 : 0.04;
  size_t reps = 1;
  for (;;) {
    Timer t;
    for (size_t r = 0; r < reps; ++r) fn();
    const double elapsed = t.ElapsedSeconds();
    if (elapsed >= target || reps >= (1u << 20)) {
      double best = elapsed / static_cast<double>(reps);
      for (int batch = 0; batch < 2; ++batch) {
        Timer tb;
        for (size_t r = 0; r < reps; ++r) fn();
        best = std::min(best, tb.ElapsedSeconds() / static_cast<double>(reps));
      }
      return best;
    }
    reps = elapsed <= 0.0
               ? reps * 8
               : std::max(reps + 1, static_cast<size_t>(
                                        reps * (target / elapsed) * 1.25));
  }
}

// ---- Naive baselines: the exact pre-kernel src/ml/matrix.cc loops. ----

Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  const size_t k = a.cols();
  const size_t m = b.cols();
  for (size_t i = 0; i < a.rows(); ++i) {
    float* crow = c.data() + i * m;
    const float* arow = a.data() + i * k;
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;  // the historical zero-skip
      const float* brow = b.data() + p * m;
      for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix NaiveMatMulTransB(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  const size_t k = a.cols();
  for (size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.data() + i * k;
    for (size_t j = 0; j < b.rows(); ++j) {
      const float* brow = b.data() + j * k;
      double dot = 0.0;  // the historical double accumulation
      for (size_t p = 0; p < k; ++p) {
        dot += static_cast<double>(arow[p]) * brow[p];
      }
      c.At(i, j) = static_cast<float>(dot);
    }
  }
  return c;
}

struct Csr {
  std::vector<uint64_t> offsets;
  std::vector<uint32_t> sources;
};

Csr MakeCsr(size_t num_out, size_t num_in, size_t avg_degree, uint64_t seed) {
  Rng rng(seed);
  Csr csr;
  csr.offsets.push_back(0);
  for (size_t v = 0; v < num_out; ++v) {
    const size_t degree =
        static_cast<size_t>(rng.UniformDouble(0.0, 2.0 * avg_degree));
    for (size_t d = 0; d < degree; ++d) {
      csr.sources.push_back(static_cast<uint32_t>(
          rng.UniformDouble(0.0, static_cast<double>(num_in) - 0.001)));
    }
    csr.offsets.push_back(csr.sources.size());
  }
  return csr;
}

Matrix NaiveMeanAggregate(const Csr& csr, const Matrix& x) {
  const size_t num_out = csr.offsets.size() - 1;
  const size_t cols = x.cols();
  Matrix out(num_out, cols);
  for (size_t v = 0; v < num_out; ++v) {
    auto dst = out.Row(v);
    double total_w = 0.0;
    for (uint64_t e = csr.offsets[v]; e < csr.offsets[v + 1]; ++e) {
      total_w += 1.0f;
      auto src = x.Row(csr.sources[e]);
      for (size_t c = 0; c < cols; ++c) dst[c] += src[c];
    }
    if (total_w > 1e-12) {
      const float inv = static_cast<float>(1.0 / total_w);
      for (size_t c = 0; c < cols; ++c) dst[c] *= inv;
    }
  }
  return out;
}

struct GemmShape {
  const char* label;
  size_t n, k, m;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  const std::vector<std::string> targets = ml::kernels::AvailableTargets();
  std::printf("kernels bench — targets:");
  for (const std::string& t : targets) std::printf(" %s", t.c_str());
  std::printf(" (active: %s), %u hardware threads%s\n\n",
              ml::kernels::ActiveTargetName(),
              std::thread::hardware_concurrency(),
              QuickMode() ? ", QUICK mode" : "");

  JsonValue out = JsonValue::MakeObject();
  out.Set("bench", JsonValue::MakeString("kernels"));
  out.Set("quick_mode", JsonValue::MakeBool(QuickMode()));
  out.Set("hardware_threads",
          JsonValue::MakeNumber(std::thread::hardware_concurrency()));
  JsonValue targets_json = JsonValue::MakeArray();
  for (const std::string& t : targets) {
    targets_json.Append(JsonValue::MakeString(t));
  }
  out.Set("targets", std::move(targets_json));
  out.Set("notes", JsonValue::MakeString(
      "GFLOP/s at 2*n*k*m flops per GEMM; naive = pre-kernel scalar loop "
      "(zero-skip MatMul, double-accumulation MatMulTransB). Single "
      "process; speedups on a 1-core container reflect vectorization and "
      "cache blocking only, not extra parallelism."));

  // GNN-representative shapes: node-feature x hidden layers (GraphSAGE),
  // autoencoder encode/decode, classifier head, and backward-pass shapes.
  const double scale = QuickMode() ? 0.25 : 1.0;
  auto S = [scale](size_t v) {
    return std::max<size_t>(1, static_cast<size_t>(v * scale));
  };
  const GemmShape shapes[] = {
      {"gnn_hidden_4096x64x64", S(4096), 64, 64},
      {"gnn_hidden_4096x128x64", S(4096), 128, 64},
      {"gnn_head_4096x64x8", S(4096), 64, 8},
      {"autoencoder_1024x256x128", S(1024), 256, 128},
      {"autoencoder_decode_1024x128x256", S(1024), 128, 256},
      {"mlp_256x1024x64", S(256), 1024, 64},
  };

  JsonValue gemm_json = JsonValue::MakeArray();
  std::printf("%-34s %10s", "GEMM shape", "naive");
  for (const std::string& t : targets) std::printf(" %9s %8s", t.c_str(), "x");
  std::printf("   (GFLOP/s, speedup vs naive)\n");
  for (const GemmShape& s : shapes) {
    Matrix a = RandomMatrix(s.n, s.k, 1 + s.n);
    Matrix b = RandomMatrix(s.k, s.m, 2 + s.k);
    const double flops = 2.0 * s.n * s.k * s.m;
    const double naive_s = TimeSeconds([&] { NaiveMatMul(a, b); });

    JsonValue row = JsonValue::MakeObject();
    row.Set("shape", JsonValue::MakeString(s.label));
    row.Set("n", JsonValue::MakeNumber(s.n));
    row.Set("k", JsonValue::MakeNumber(s.k));
    row.Set("m", JsonValue::MakeNumber(s.m));
    row.Set("naive_gflops", JsonValue::MakeNumber(flops / naive_s / 1e9));
    std::printf("%-34s %10.2f", s.label, flops / naive_s / 1e9);
    for (const std::string& target : targets) {
      ml::kernels::ScopedTargetOverride ovr(target);
      const double t = TimeSeconds([&] { ml::MatMul(a, b); });
      row.Set(target + "_gflops", JsonValue::MakeNumber(flops / t / 1e9));
      row.Set(target + "_speedup_vs_naive", JsonValue::MakeNumber(naive_s / t));
      std::printf(" %9.2f %7.2fx", flops / t / 1e9, naive_s / t);
    }
    std::printf("\n");
    gemm_json.Append(std::move(row));
  }
  out.Set("gemm", std::move(gemm_json));

  // Backward-pass transpose variants on the main hidden shape.
  {
    const size_t n = S(4096), k = 64, m = 64;
    Matrix grad = RandomMatrix(n, m, 31);
    Matrix w = RandomMatrix(m, k, 32);       // for TransB: grad * W^T
    Matrix act = RandomMatrix(n, k, 33);     // for TransA: act^T * grad
    const double flops = 2.0 * n * k * m;
    JsonValue trans = JsonValue::MakeObject();
    const double naive_tb = TimeSeconds([&] { NaiveMatMulTransB(grad, w); });
    trans.Set("shape", JsonValue::MakeString("backward_4096x64x64"));
    trans.Set("transb_naive_gflops", JsonValue::MakeNumber(flops / naive_tb / 1e9));
    std::printf("\n%-34s %10.2f", "MatMulTransB backward", flops / naive_tb / 1e9);
    for (const std::string& target : targets) {
      ml::kernels::ScopedTargetOverride ovr(target);
      const double t = TimeSeconds([&] { ml::MatMulTransB(grad, w); });
      trans.Set("transb_" + target + "_gflops",
                JsonValue::MakeNumber(flops / t / 1e9));
      trans.Set("transb_" + target + "_speedup_vs_naive",
                JsonValue::MakeNumber(naive_tb / t));
      std::printf(" %9.2f %7.2fx", flops / t / 1e9, naive_tb / t);
    }
    for (const std::string& target : targets) {
      ml::kernels::ScopedTargetOverride ovr(target);
      const double t = TimeSeconds([&] { ml::MatMulTransA(act, grad); });
      trans.Set("transa_" + target + "_gflops",
                JsonValue::MakeNumber(flops / t / 1e9));
    }
    std::printf("\n");
    out.Set("gemm_backward", std::move(trans));
  }

  // CSR SpMM mean aggregation: edges/s.
  {
    const size_t nodes = S(8192), cols = 64, avg_degree = 8;
    Csr csr = MakeCsr(nodes, nodes, avg_degree, 41);
    Matrix x = RandomMatrix(nodes, cols, 42);
    const double edges = static_cast<double>(csr.sources.size());
    JsonValue spmm = JsonValue::MakeObject();
    spmm.Set("nodes", JsonValue::MakeNumber(nodes));
    spmm.Set("edges", JsonValue::MakeNumber(edges));
    spmm.Set("cols", JsonValue::MakeNumber(cols));
    const double naive_s = TimeSeconds([&] { NaiveMeanAggregate(csr, x); });
    spmm.Set("naive_medges_per_s", JsonValue::MakeNumber(edges / naive_s / 1e6));
    std::printf("%-34s %10.2f", "SpMM mean-aggregate (Medges/s)",
                edges / naive_s / 1e6);
    Matrix agg(nodes, cols);
    std::vector<float> sums(nodes, 0.0f);
    for (const std::string& target : targets) {
      ml::kernels::ScopedTargetOverride ovr(target);
      const double t = TimeSeconds([&] {
        ml::kernels::SpmmMeanForward(csr.offsets.data(), nodes,
                                     csr.sources.data(), nullptr, x, &agg,
                                     sums.data());
      });
      spmm.Set(target + "_medges_per_s", JsonValue::MakeNumber(edges / t / 1e6));
      spmm.Set(target + "_speedup_vs_naive", JsonValue::MakeNumber(naive_s / t));
      std::printf(" %9.2f %7.2fx", edges / t / 1e6, naive_s / t);
    }
    std::printf("\n");
    out.Set("spmm", std::move(spmm));
  }

  // Fused bias+ReLU: effective GB/s over the two-pass historical cost.
  {
    const size_t rows = S(8192), cols = 64;
    Matrix x = RandomMatrix(rows, cols, 51);
    Matrix bias = RandomMatrix(1, cols, 52);
    Matrix fused_out(rows, cols);
    const double bytes = 2.0 * rows * cols * sizeof(float);
    JsonValue fused = JsonValue::MakeObject();
    const double two_pass = TimeSeconds([&] {
      Matrix tmp = ml::AddRowBroadcast(x, bias);
      for (size_t i = 0; i < tmp.size(); ++i) {
        tmp.data()[i] = tmp.data()[i] > 0.0f ? tmp.data()[i] : 0.0f;
      }
    });
    fused.Set("two_pass_gb_per_s", JsonValue::MakeNumber(bytes / two_pass / 1e9));
    std::printf("%-34s %10.2f", "fused bias+ReLU (GB/s)", bytes / two_pass / 1e9);
    for (const std::string& target : targets) {
      ml::kernels::ScopedTargetOverride ovr(target);
      const double t = TimeSeconds(
          [&] { ml::kernels::BiasAddRelu(x, bias, &fused_out); });
      fused.Set(target + "_gb_per_s", JsonValue::MakeNumber(bytes / t / 1e9));
      fused.Set(target + "_speedup_vs_two_pass",
                JsonValue::MakeNumber(two_pass / t));
      std::printf(" %9.2f %7.2fx", bytes / t / 1e9, two_pass / t);
    }
    std::printf("\n");
    out.Set("fused_bias_relu", std::move(fused));
  }

  // End-to-end: one GraphSAGE-style training step (aggregate -> affine+ReLU
  // -> head -> softmax-CE -> backward -> Adam) per dispatch target.
  {
    namespace ag = ml::ag;
    const size_t nodes = S(4096), feat = 64, hidden = 64, classes = 8;
    Csr csr = MakeCsr(nodes, nodes, 8, 61);
    ag::AggregateSpec spec;
    spec.offsets = csr.offsets;
    spec.sources = csr.sources;
    Matrix x = RandomMatrix(nodes, feat, 62);
    std::vector<int> labels(nodes);
    for (size_t v = 0; v < nodes; ++v) {
      labels[v] = (v % 3 == 0) ? static_cast<int>(v % classes) : -1;
    }
    JsonValue e2e = JsonValue::MakeObject();
    e2e.Set("nodes", JsonValue::MakeNumber(nodes));
    std::printf("%-34s %10s", "GNN train step (ms)", "-");
    for (const std::string& target : targets) {
      ml::kernels::ScopedTargetOverride ovr(target);
      Rng rng(63);
      ag::VarPtr w1 = ag::Param(Matrix::GlorotUniform(feat, hidden, &rng));
      ag::VarPtr b1 = ag::Param(Matrix(1, hidden));
      ag::VarPtr w2 = ag::Param(Matrix::GlorotUniform(hidden, classes, &rng));
      ag::VarPtr b2 = ag::Param(Matrix(1, classes));
      ag::Adam opt({w1, b1, w2, b2});
      ag::VarPtr input = ag::Constant(x);
      const double t = TimeSeconds([&] {
        opt.ZeroGrad();
        ag::VarPtr h = ag::MeanAggregate(spec, input);
        h = ag::AddRowRelu(ag::MatMul(h, w1), b1);
        h = ag::MeanAggregate(spec, h);
        ag::VarPtr logits = ag::AddRow(ag::MatMul(h, w2), b2);
        ag::VarPtr loss = ag::SoftmaxCrossEntropy(logits, labels);
        ag::Backward(loss);
        opt.Step();
      });
      e2e.Set(target + "_step_ms", JsonValue::MakeNumber(t * 1e3));
      std::printf(" %9.2f %8s", t * 1e3, "ms");
    }
    std::printf("\n");
    out.Set("gnn_train_step", std::move(e2e));
  }

  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  TRAIL_CHECK(f != nullptr) << "cannot write " << out_path;
  const std::string text = out.Dump(2);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
