#ifndef TRAIL_BENCH_COMMON_H_
#define TRAIL_BENCH_COMMON_H_

#include <memory>
#include <string>

#include "core/study.h"
#include "core/tkg_builder.h"
#include "core/trail.h"
#include "osint/feed_client.h"
#include "osint/world.h"
#include "util/json.h"

namespace trail::bench {

/// True when TRAIL_BENCH_QUICK=1: reproduction benches shrink folds and
/// epochs so the whole suite smoke-runs in about a minute.
bool QuickMode();

/// Number of cross-validation folds (5 per the paper; 2 in quick mode).
int NumFolds();

/// The standard reproduction world: defaults from WorldConfig, which are
/// calibrated against the paper's reported metrics (see EXPERIMENTS.md).
osint::WorldConfig BenchWorldConfig();

/// A fully built bench environment: world + feed + TKG ingested up to the
/// training cutoff (end_day). Post-cutoff reports are left out for the
/// longitudinal experiments.
struct BenchEnv {
  std::unique_ptr<osint::World> world;
  std::unique_ptr<osint::FeedClient> feed;
  std::unique_ptr<core::TkgBuilder> builder;

  const graph::PropertyGraph& graph() const { return builder->graph(); }
  int num_apts() const { return builder->num_apts(); }
};

/// Builds the environment (word of caution: ~1-2 s).
BenchEnv BuildEnv();

/// Prints the standard bench header with world scale and mode.
void PrintHeader(const std::string& title, const BenchEnv& env);

/// One Study month in the JSON schema shared by fig8_degradation and
/// bench/scenario_matrix: closed-set metrics, per-class F1, and the
/// open-set (abstention) block, so degradation curves from both benches
/// line up field-for-field.
JsonValue MonthOutcomeToJson(const core::MonthOutcome& outcome);

}  // namespace trail::bench

#endif  // TRAIL_BENCH_COMMON_H_
