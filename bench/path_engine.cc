// Evidence-path plane benchmark: the economics of the reachability index
// and the k-shortest-path explain queries at two world tiers — small (the
// default world) and paper (~2.1M-node TKG, the paper's OSINT corpus
// scale). Writes BENCH_paths.json via tools/bench_paths.sh.
//
// Per tier:
//   * index build wall time, interval count, resident bytes,
//   * indexed WithinHops microseconds/query vs an honest per-query capped
//     BFS baseline (the unindexed alternative), with the two answers
//     cross-checked on every baseline query — the ISSUE acceptance bar is
//     >= 100x at the paper tier,
//   * incremental Extend after appending the post-window reports vs a
//     scratch rebuild on the same final graph, with engine equality
//     asserted — the acceptance bar is >= 10x at the paper tier,
//   * Explain (k=3) microseconds/reply over a sample of labeled events,
//     i.e. the marginal serving cost of "explain": true.
//
// Honest numbers: this container is 1-core, so every figure is
// single-threaded wall time; the BFS baseline reuses one distance buffer
// so it pays traversal, not allocation.
//
// Run: ./build/bench/path_engine [--out BENCH_paths.json]
// Honors TRAIL_BENCH_QUICK=1 (small tier only).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/tkg_builder.h"
#include "graph/algorithms.h"
#include "graph/csr.h"
#include "graph/path/path_engine.h"
#include "graph/property_graph.h"
#include "osint/feed_client.h"
#include "osint/world.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using namespace trail;
using graph::CsrGraph;
using graph::NodeId;
using graph::PropertyGraph;
using graph::path::PathEngine;

bool EnvFlag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] == '1';
}

const char* GetFlag(int argc, char** argv, const char* name,
                    const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

struct ReachQuery {
  NodeId node;
  size_t apt;
  int hops;
};

/// Per-APT infrastructure seed bitmaps, derived from the graph by the same
/// rule the engine uses (non-event neighbors of labeled events), so the
/// BFS baseline answers exactly the question WithinHops answers.
std::vector<std::vector<uint8_t>> SeedBitmaps(const PropertyGraph& g,
                                              const CsrGraph& csr,
                                              size_t num_apts) {
  std::vector<std::vector<uint8_t>> is_seed(
      num_apts, std::vector<uint8_t>(g.num_nodes(), 0));
  for (NodeId e : g.NodesOfType(graph::NodeType::kEvent)) {
    const int apt = g.label(e);
    if (apt < 0 || static_cast<size_t>(apt) >= num_apts) continue;
    for (const NodeId* it = csr.NeighborsBegin(e); it != csr.NeighborsEnd(e);
         ++it) {
      if (g.type(*it) != graph::NodeType::kEvent) is_seed[apt][*it] = 1;
    }
  }
  return is_seed;
}

/// The unindexed answer: one capped BFS from the query node, then a scan of
/// the frontier for any of the APT's seeds. `dist` is reused across calls
/// (the baseline pays for traversal, not allocation).
bool BfsWithinHops(const CsrGraph& csr, const std::vector<uint8_t>& is_seed,
                   const ReachQuery& q, std::vector<int>* dist) {
  *dist = graph::BfsDistances(csr, q.node, q.hops);
  for (size_t v = 0; v < dist->size(); ++v) {
    if ((*dist)[v] >= 0 && is_seed[v]) return true;
  }
  return false;
}

JsonValue RunTier(const char* name, double factor) {
  osint::WorldConfig config = osint::WorldConfig::Scaled(factor);
  JsonValue out = JsonValue::MakeObject();
  out.Set("name", JsonValue::MakeString(name));
  out.Set("scale_factor", JsonValue::MakeNumber(factor));

  std::printf("[%s] generating world (factor %.0f)...\n", name, factor);
  osint::World world(config);
  osint::FeedClient feed(&world);
  core::TkgBuilder builder(&feed, core::TkgBuildOptions{});
  {
    Status st = builder.IngestAll(feed.FetchReports(0, config.end_day));
    TRAIL_CHECK(st.ok()) << st;
  }
  const PropertyGraph& g = builder.graph();
  const size_t num_apts = static_cast<size_t>(builder.num_apts());
  CsrGraph csr = CsrGraph::Build(g);
  std::printf("[%s] TKG %zu nodes / %zu edges / %zu APTs\n", name,
              g.num_nodes(), g.num_edges(), num_apts);

  JsonValue world_json = JsonValue::MakeObject();
  world_json.Set("nodes",
                 JsonValue::MakeNumber(static_cast<double>(g.num_nodes())));
  world_json.Set("edges",
                 JsonValue::MakeNumber(static_cast<double>(g.num_edges())));
  world_json.Set("apts",
                 JsonValue::MakeNumber(static_cast<double>(num_apts)));
  out.Set("world", std::move(world_json));

  // ---- Index build -------------------------------------------------------
  Timer build_timer;
  PathEngine engine = PathEngine::Build(g, csr, num_apts);
  const double build_seconds = build_timer.ElapsedSeconds();
  std::printf("[%s] index build %.3fs (%zu intervals, %.1f MiB)\n", name,
              build_seconds, engine.interval_count(),
              static_cast<double>(engine.resident_bytes()) / (1 << 20));
  JsonValue index_json = JsonValue::MakeObject();
  index_json.Set("build_seconds", JsonValue::MakeNumber(build_seconds));
  index_json.Set("groups", JsonValue::MakeNumber(
      static_cast<double>(num_apts + 1)));
  index_json.Set("max_hops",
                 JsonValue::MakeNumber(static_cast<double>(engine.max_hops())));
  index_json.Set("interval_count", JsonValue::MakeNumber(
      static_cast<double>(engine.interval_count())));
  index_json.Set("resident_bytes", JsonValue::MakeNumber(
      static_cast<double>(engine.resident_bytes())));
  out.Set("index", std::move(index_json));

  // ---- Indexed reachability vs per-query BFS -----------------------------
  // One fixed query sample; the first kBfsQueries of it also run through
  // the BFS baseline, and the two answers must agree on every one.
  const size_t kIndexedQueries = 200000;
  const size_t kBfsQueries = factor > 1.0 ? 24 : 200;
  trail::Rng rng(97);
  std::vector<ReachQuery> queries(kIndexedQueries);
  for (ReachQuery& q : queries) {
    q.node = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    q.apt = static_cast<size_t>(rng.NextBounded(num_apts));
    q.hops = 1 + static_cast<int>(
        rng.NextBounded(static_cast<uint64_t>(engine.max_hops())));
  }

  size_t indexed_hits = 0;
  Timer indexed_timer;
  for (const ReachQuery& q : queries) {
    indexed_hits += engine.WithinHops(q.node, q.apt, q.hops) ? 1 : 0;
  }
  const double indexed_us =
      indexed_timer.ElapsedSeconds() * 1e6 / static_cast<double>(queries.size());

  const std::vector<std::vector<uint8_t>> is_seed =
      SeedBitmaps(g, csr, num_apts);
  std::vector<int> dist;
  size_t bfs_hits = 0;
  Timer bfs_timer;
  for (size_t i = 0; i < kBfsQueries; ++i) {
    bfs_hits += BfsWithinHops(csr, is_seed[queries[i].apt], queries[i], &dist)
                    ? 1
                    : 0;
  }
  const double bfs_us =
      bfs_timer.ElapsedSeconds() * 1e6 / static_cast<double>(kBfsQueries);
  // Agreement check outside the timed loops.
  for (size_t i = 0; i < kBfsQueries; ++i) {
    const bool want =
        BfsWithinHops(csr, is_seed[queries[i].apt], queries[i], &dist);
    const bool got = engine.WithinHops(queries[i].node, queries[i].apt,
                                       queries[i].hops);
    TRAIL_CHECK(got == want) << "reachability mismatch on query " << i;
  }
  const double reach_speedup = indexed_us > 0 ? bfs_us / indexed_us : 0.0;
  std::printf("[%s] reachability %.3f us/query indexed vs %.1f us/query BFS "
              "(%.0fx, hits %zu/%zu)\n",
              name, indexed_us, bfs_us, reach_speedup, indexed_hits,
              queries.size());
  JsonValue reach_json = JsonValue::MakeObject();
  reach_json.Set("indexed_queries", JsonValue::MakeNumber(
      static_cast<double>(kIndexedQueries)));
  reach_json.Set("bfs_queries", JsonValue::MakeNumber(
      static_cast<double>(kBfsQueries)));
  reach_json.Set("indexed_us_per_query", JsonValue::MakeNumber(indexed_us));
  reach_json.Set("bfs_us_per_query", JsonValue::MakeNumber(bfs_us));
  reach_json.Set("speedup", JsonValue::MakeNumber(reach_speedup));
  reach_json.Set("indexed_hit_rate", JsonValue::MakeNumber(
      static_cast<double>(indexed_hits) / static_cast<double>(queries.size())));
  out.Set("reachability", std::move(reach_json));

  // ---- Explain overhead --------------------------------------------------
  // The marginal serving cost of "explain": true — k=3 evidence paths for
  // labeled events against their own APT, scratch reused like a micro-batch.
  std::vector<NodeId> explain_events;
  for (NodeId e : g.NodesOfType(graph::NodeType::kEvent)) {
    if (g.label(e) >= 0) explain_events.push_back(e);
    if (explain_events.size() >= 200) break;
  }
  TRAIL_CHECK(!explain_events.empty());
  graph::TraversalScratch scratch;
  size_t explain_paths = 0;
  Timer explain_timer;
  for (NodeId e : explain_events) {
    explain_paths +=
        engine
            .Explain(csr, e, static_cast<size_t>(g.label(e)), /*k=*/3,
                     &scratch)
            .size();
  }
  const double explain_us = explain_timer.ElapsedSeconds() * 1e6 /
                            static_cast<double>(explain_events.size());
  std::printf("[%s] explain %.1f us/reply (%zu events, %zu paths)\n", name,
              explain_us, explain_events.size(), explain_paths);
  JsonValue explain_json = JsonValue::MakeObject();
  explain_json.Set("events", JsonValue::MakeNumber(
      static_cast<double>(explain_events.size())));
  explain_json.Set("paths", JsonValue::MakeNumber(
      static_cast<double>(explain_paths)));
  explain_json.Set("us_per_reply", JsonValue::MakeNumber(explain_us));
  out.Set("explain", std::move(explain_json));

  // ---- Incremental extend vs scratch rebuild -----------------------------
  // Append one week of post-window reports (the longitudinal ingest
  // cadence — serving epochs append batches of this order, not months),
  // extend the live engine, and rebuild one from scratch on the same final
  // graph; the two must compare equal and the extend must be much cheaper.
  const int append_days = std::min(7, config.post_days);
  std::vector<osint::PulseReport> post;
  for (const osint::PulseReport* report :
       world.ReportsBetween(config.end_day, config.end_day + append_days)) {
    post.push_back(*report);
  }
  const size_t edges_before = g.num_edges();
  if (!post.empty()) {
    auto delta = builder.AppendReports(post);
    TRAIL_CHECK(delta.ok()) << delta.status();
    csr.Append(g, edges_before);
  }
  std::printf("[%s] appended %zu reports -> %zu nodes / %zu edges\n", name,
              post.size(), g.num_nodes(), g.num_edges());

  Timer extend_timer;
  engine.Extend(g, csr, num_apts);
  const double extend_seconds = extend_timer.ElapsedSeconds();
  Timer rebuild_timer;
  PathEngine scratch_engine = PathEngine::Build(g, csr, num_apts);
  const double rebuild_seconds = rebuild_timer.ElapsedSeconds();
  TRAIL_CHECK(engine == scratch_engine)
      << "incremental extend diverged from scratch build";
  const double extend_speedup =
      extend_seconds > 0 ? rebuild_seconds / extend_seconds : 0.0;
  std::printf("[%s] extend %.3fs vs scratch rebuild %.3fs (%.1fx)\n", name,
              extend_seconds, rebuild_seconds, extend_speedup);
  JsonValue extend_json = JsonValue::MakeObject();
  extend_json.Set("append_days", JsonValue::MakeNumber(
      static_cast<double>(append_days)));
  extend_json.Set("appended_reports", JsonValue::MakeNumber(
      static_cast<double>(post.size())));
  extend_json.Set("final_nodes",
                  JsonValue::MakeNumber(static_cast<double>(g.num_nodes())));
  extend_json.Set("final_edges",
                  JsonValue::MakeNumber(static_cast<double>(g.num_edges())));
  extend_json.Set("extend_seconds", JsonValue::MakeNumber(extend_seconds));
  extend_json.Set("rebuild_seconds", JsonValue::MakeNumber(rebuild_seconds));
  extend_json.Set("speedup", JsonValue::MakeNumber(extend_speedup));
  extend_json.Set("engines_equal", JsonValue::MakeBool(true));
  out.Set("extend", std::move(extend_json));

  return out;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  const std::string out_path =
      GetFlag(argc, argv, "--out", "BENCH_paths.json");
  const bool quick = EnvFlag("TRAIL_BENCH_QUICK");

  JsonValue doc = JsonValue::MakeObject();
  doc.Set("benchmark", JsonValue::MakeString("path_engine"));
  doc.Set("quick", JsonValue::MakeBool(quick));
  doc.Set("threads", JsonValue::MakeNumber(ParallelWorkers()));
  doc.Set("notes", JsonValue::MakeString(
      "single-threaded 1-core container; bfs_us_per_query is an honest "
      "per-query capped BFS with a reused distance buffer, cross-checked "
      "against the index on every baseline query; extend compares the "
      "incremental engine to a scratch rebuild on the same final graph "
      "and asserts engine equality"));
  JsonValue tiers = JsonValue::MakeArray();
  tiers.Append(RunTier("small", 1.0));
  if (!quick) {
    tiers.Append(RunTier("paper", 68.0));
  }
  doc.Set("tiers", std::move(tiers));

  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  const std::string text = doc.Dump(2) + "\n";
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("path_engine: wrote %s\n", out_path.c_str());
  return 0;
}
