// Reproduces paper Fig. 10: GNNExplainer applied to a trained 3-layer GNN
// classifying an APT28 event — the most important nodes/edges of the
// subgraph the model used, with the learned edge mask as importance.
//
// Paper finding: most of the important edges connect the event to its own
// IOCs (feature evidence) rather than forming inter-event reuse paths,
// plus one reused domain bridging to another APT28 event.

#include <algorithm>
#include <cstdio>

#include "common.h"
#include "util/logging.h"
#include "core/encoders.h"
#include "gnn/event_gnn.h"
#include "gnn/explainer.h"
#include "graph/algorithms.h"
#include "graph/csr.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace trail;
  bench::BenchEnv env = bench::BuildEnv();
  bench::PrintHeader("Fig. 10 — GNNExplainer subgraph for an APT28 event",
                     env);
  const auto& g = env.graph();
  const int num_classes = env.num_apts();
  const int apt28 = env.builder->AptIdFor("APT28");

  // Train a 3-layer GNN on all labeled events.
  core::IocEncoders encoders;
  gnn::AutoencoderOptions ae_opts;
  ae_opts.hidden = 128;
  ae_opts.epochs = bench::QuickMode() ? 2 : 6;
  ae_opts.max_train_rows = 4000;
  encoders.Fit(g, ae_opts);
  ml::Matrix encoded = encoders.EncodeAll(g);
  gnn::GnnGraph gg = core::BuildGnnGraph(g, encoded);
  std::vector<int> labels(g.num_nodes(), -1);
  for (graph::NodeId event : g.NodesOfType(graph::NodeType::kEvent)) {
    labels[event] = g.label(event);
  }
  gnn::EventGnn model;
  gnn::EventGnnOptions gnn_opts;
  gnn_opts.layers = 3;
  gnn_opts.epochs = bench::QuickMode() ? 15 : 80;
  model.Train(gg, labels, num_classes, gnn_opts);

  // Pick an APT28 event and extract its 3-hop subgraph (BFS-capped so the
  // explainer's mask stays small enough to optimize quickly).
  graph::NodeId target = graph::kInvalidNode;
  for (graph::NodeId event : g.NodesOfType(graph::NodeType::kEvent)) {
    if (g.label(event) == apt28 && g.degree(event) >= 8) {
      target = event;
      break;
    }
  }
  TRAIL_CHECK(target != graph::kInvalidNode);
  graph::CsrGraph csr = graph::CsrGraph::Build(g);
  std::vector<graph::NodeId> hood = graph::KHopNeighborhood(csr, target, 3);
  if (hood.size() > 600) hood.resize(600);  // BFS order keeps the closest
  gnn::GnnGraph sub = core::BuildGnnSubgraph(g, encoded, hood);

  // Labels visible inside the subgraph except the explained event itself.
  std::vector<int> visible(sub.num_nodes, -1);
  for (uint32_t local = 0; local < hood.size(); ++local) {
    if (hood[local] != target) visible[local] = labels[hood[local]];
  }
  uint32_t local_target = 0;  // BFS order: the center comes first

  gnn::ExplainOptions explain_opts;
  explain_opts.steps = bench::QuickMode() ? 30 : 150;
  gnn::Explanation explanation = gnn::ExplainEvent(
      model, sub, local_target, apt28, visible, explain_opts);

  std::printf("explained event: %s (APT28), subgraph %zu nodes / %zu "
              "undirected edges\n",
              g.value(target).c_str(), sub.num_nodes,
              explanation.edges.size());
  std::printf("P(APT28 | full subgraph)   = %.3f\n",
              explanation.full_probability);
  std::printf("P(APT28 | learned mask)    = %.3f\n\n",
              explanation.masked_probability);

  TablePrinter table({"Importance", "Edge", "Detail"});
  int printed = 0;
  int event_event_paths = 0;
  for (const gnn::EdgeImportance& edge : explanation.edges) {
    if (printed >= 15) break;
    graph::NodeId a = hood[edge.src];
    graph::NodeId b = hood[edge.dst];
    std::string detail = std::string(graph::NodeTypeName(g.type(a))) + " " +
                         g.value(a) + "  <->  " +
                         graph::NodeTypeName(g.type(b)) + " " + g.value(b);
    bool touches_target = a == target || b == target;
    table.AddRow({FormatDouble(edge.weight, 3),
                  touches_target ? "event-IOC" : "IOC-IOC", detail});
    if (g.type(a) == graph::NodeType::kEvent ||
        g.type(b) == graph::NodeType::kEvent) {
      if (!touches_target) ++event_event_paths;
    }
    ++printed;
  }
  table.Print();
  std::printf("\n%d of the top-15 edges touch another event (inter-event "
              "reuse paths); the paper observes most important edges are "
              "event-to-own-IOC feature evidence.\n",
              event_event_paths);
  return 0;
}
