// Reproduces paper Fig. 8: performance degradation as the TKG and GNN go
// stale. Two tracks over the post-cutoff months:
//   * stale — the model is never retrained and past months' labels are
//     never added to the TKG;
//   * fresh — after each month is evaluated, its true labels are merged and
//     the GNN is fine-tuned (the paper's "<10 epochs, under five minutes").
// Paper shape: the fresh track holds its accuracy; the stale track decays
// by roughly 3.5% per additional month; both start at the same point.

#include <cstdio>

#include "common.h"
#include "util/logging.h"
#include "core/trail.h"
#include "ml/metrics.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace trail;

core::TrailOptions ModelOptions() {
  core::TrailOptions options;
  options.autoencoder.hidden = 128;
  options.autoencoder.epochs = bench::QuickMode() ? 2 : 8;
  options.autoencoder.max_train_rows = 4000;
  options.gnn.epochs = bench::QuickMode() ? 15 : 100;
  return options;
}

/// Evaluates one month of reports on a Trail instance: merges each report
/// unlabeled, attributes it with the GNN, and returns truth/pred pairs. The
/// events stay in the graph (unlabeled) afterwards.
struct MonthResult {
  std::vector<int> truth;
  std::vector<int> pred;
  std::vector<graph::NodeId> nodes;
};

MonthResult EvaluateMonth(core::Trail* trail,
                          const std::vector<const osint::PulseReport*>& month) {
  MonthResult result;
  for (const osint::PulseReport* report : month) {
    osint::PulseReport unknown = *report;
    std::string truth_name = unknown.apt;
    unknown.apt.clear();
    auto event = trail->IngestReport(unknown);
    if (!event.ok()) continue;
    auto attribution = trail->AttributeWithGnn(event.value());
    int truth = -1;
    for (size_t c = 0; c < trail->apt_names().size(); ++c) {
      if (trail->apt_names()[c] == truth_name) truth = static_cast<int>(c);
    }
    result.truth.push_back(truth);
    result.pred.push_back(attribution.ok() ? attribution->apt : -1);
    result.nodes.push_back(event.value());
  }
  return result;
}

}  // namespace

int main() {
  bench::BenchEnv env = bench::BuildEnv();
  bench::PrintHeader("Fig. 8 — degradation without monthly retraining", env);
  const auto config = bench::BenchWorldConfig();
  const int months = bench::QuickMode()
                         ? 2
                         : std::max(1, config.post_days / 30);

  // Two identical systems (same seeds -> same initial model).
  core::Trail stale(env.feed.get(), ModelOptions());
  core::Trail fresh(env.feed.get(), ModelOptions());
  auto initial = env.feed->FetchReports(0, config.end_day);
  TRAIL_CHECK(stale.Ingest(initial).ok());
  TRAIL_CHECK(fresh.Ingest(initial).ok());
  TRAIL_CHECK(stale.TrainModels().ok());
  TRAIL_CHECK(fresh.TrainModels().ok());

  TablePrinter table({"Month", "Reports", "Stale Acc", "Stale B-Acc",
                      "Fresh Acc", "Fresh B-Acc"});
  const int num_classes = static_cast<int>(fresh.apt_names().size());
  for (int m = 0; m < months; ++m) {
    int lo = config.end_day + 30 * m;
    auto month = env.world->ReportsBetween(lo, lo + 30);
    if (month.empty()) continue;

    MonthResult stale_result = EvaluateMonth(&stale, month);
    MonthResult fresh_result = EvaluateMonth(&fresh, month);

    table.AddRow({
        std::to_string(m + 1),
        std::to_string(month.size()),
        FormatDouble(ml::Accuracy(stale_result.truth, stale_result.pred), 4),
        FormatDouble(ml::BalancedAccuracy(stale_result.truth,
                                          stale_result.pred, num_classes),
                     4),
        FormatDouble(ml::Accuracy(fresh_result.truth, fresh_result.pred), 4),
        FormatDouble(ml::BalancedAccuracy(fresh_result.truth,
                                          fresh_result.pred, num_classes),
                     4),
    });

    // Fresh track: reveal this month's labels and fine-tune before the next
    // month arrives. Stale track never updates.
    for (size_t i = 0; i < fresh_result.nodes.size(); ++i) {
      if (fresh_result.truth[i] >= 0) {
        fresh.mutable_graph().SetLabel(fresh_result.nodes[i],
                                       fresh_result.truth[i]);
      }
    }
    TRAIL_CHECK(fresh.FineTuneGnn(bench::QuickMode() ? 3 : 8).ok());
  }
  table.Print();
  std::printf("\nPaper shape: the stale model decays month over month "
              "(~3.5%%/month) while the monthly fine-tuned model holds; "
              "data at most one month old stays near the original "
              "accuracy.\n");
  return 0;
}
