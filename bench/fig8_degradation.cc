// Reproduces paper Fig. 8: performance degradation as the TKG and GNN go
// stale. Two tracks over the post-cutoff months, both driven by core::Study:
//   * stale — the model is never retrained and past months' labels are
//     never added to the TKG;
//   * fresh — after each month is evaluated, its true labels are merged and
//     the GNN is warm-start fine-tuned (the paper's "<10 epochs, under five
//     minutes"), with the month delta-appended into the TKG/CSR/model view
//     instead of rebuilt.
// Paper shape: the fresh track holds its accuracy; the stale track decays
// by roughly 3.5% per additional month; both start at the same point.

#include <cstdio>
#include <cstring>
#include <string>

#include "common.h"
#include "core/study.h"
#include "core/trail.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace trail;

core::TrailOptions ModelOptions() {
  core::TrailOptions options;
  options.autoencoder.hidden = 128;
  options.autoencoder.epochs = bench::QuickMode() ? 2 : 8;
  options.autoencoder.max_train_rows = 4000;
  options.gnn.epochs = bench::QuickMode() ? 15 : 100;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  // Optional per-month JSON dump in the schema shared with
  // bench/scenario_matrix (per-class F1 included); the table and its
  // existing columns are unchanged.
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  bench::BenchEnv env = bench::BuildEnv();
  bench::PrintHeader("Fig. 8 — degradation without monthly retraining", env);
  const auto config = bench::BenchWorldConfig();
  const int months = bench::QuickMode()
                         ? 2
                         : std::max(1, config.post_days / 30);

  // Two identical systems (same seeds -> same initial model).
  core::Trail stale(env.feed.get(), ModelOptions());
  core::Trail fresh(env.feed.get(), ModelOptions());
  auto initial = env.feed->FetchReports(0, config.end_day);
  TRAIL_CHECK(stale.Ingest(initial).ok());
  TRAIL_CHECK(fresh.Ingest(initial).ok());
  TRAIL_CHECK(stale.TrainModels().ok());
  TRAIL_CHECK(fresh.TrainModels().ok());

  core::StudyOptions stale_options;
  stale_options.retrain_monthly = false;  // frozen model + label set
  core::Study stale_study(&stale, stale_options);

  core::StudyOptions fresh_options;
  fresh_options.retrain_monthly = true;
  fresh_options.retrain_mode = core::RetrainMode::kIncremental;
  fresh_options.fine_tune_epochs = bench::QuickMode() ? 3 : 8;
  core::Study fresh_study(&fresh, fresh_options);

  TablePrinter table({"Month", "Reports", "Stale Acc", "Stale B-Acc",
                      "Fresh Acc", "Fresh B-Acc", "Fresh F1",
                      "Update ms"});
  JsonValue stale_months = JsonValue::MakeArray();
  JsonValue fresh_months = JsonValue::MakeArray();
  for (int m = 0; m < months; ++m) {
    int lo = config.end_day + 30 * m;
    auto month = env.world->ReportsBetween(lo, lo + 30);
    if (month.empty()) continue;

    auto stale_outcome = stale_study.RunMonth(month);
    auto fresh_outcome = fresh_study.RunMonth(month);
    TRAIL_CHECK(stale_outcome.ok()) << stale_outcome.status();
    TRAIL_CHECK(fresh_outcome.ok()) << fresh_outcome.status();
    stale_months.Append(bench::MonthOutcomeToJson(*stale_outcome));
    fresh_months.Append(bench::MonthOutcomeToJson(*fresh_outcome));

    table.AddRow({
        std::to_string(m + 1),
        std::to_string(month.size()),
        FormatDouble(stale_outcome->accuracy, 4),
        FormatDouble(stale_outcome->balanced_accuracy, 4),
        FormatDouble(fresh_outcome->accuracy, 4),
        FormatDouble(fresh_outcome->balanced_accuracy, 4),
        FormatDouble(fresh_outcome->macro_f1, 4),
        FormatDouble(fresh_outcome->retrain_wall_ms, 1),
    });
  }
  table.Print();
  std::printf("\nPaper shape: the stale model decays month over month "
              "(~3.5%%/month) while the monthly fine-tuned model holds; "
              "data at most one month old stays near the original "
              "accuracy. The fresh track's update column is the warm-start "
              "cost (delta-append + fine-tune), not a scratch retrain — "
              "see bench/longitudinal_incremental for the comparison.\n");

  if (!out_path.empty()) {
    JsonValue out = JsonValue::MakeObject();
    out.Set("bench", JsonValue::MakeString("fig8_degradation"));
    out.Set("quick_mode", JsonValue::MakeBool(bench::QuickMode()));
    JsonValue tracks = JsonValue::MakeObject();
    tracks.Set("stale", std::move(stale_months));
    tracks.Set("fresh", std::move(fresh_months));
    out.Set("tracks", std::move(tracks));
    std::FILE* f = std::fopen(out_path.c_str(), "wb");
    TRAIL_CHECK(f != nullptr) << "cannot write " << out_path;
    const std::string text = out.Dump(2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
