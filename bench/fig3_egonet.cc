// Reproduces paper Fig. 3: the enriched ego-net around a single APT28 event.
// The paper's example subgraph has 239 related IOCs (94 IPs, 95 domains,
// 50 URLs) within 2 hops. We print the same census for the first APT28
// event of the synthetic TKG.

#include <cstdio>

#include "common.h"
#include "graph/algorithms.h"
#include "graph/csr.h"

int main() {
  using namespace trail;
  bench::BenchEnv env = bench::BuildEnv();
  bench::PrintHeader("Fig. 3 — ego-net around an APT28 event", env);

  const auto& g = env.graph();
  int apt28 = env.builder->AptIdFor("APT28");
  graph::NodeId ego_event = graph::kInvalidNode;
  for (graph::NodeId event : g.NodesOfType(graph::NodeType::kEvent)) {
    if (g.label(event) == apt28 && g.degree(event) >= 10) {
      ego_event = event;
      break;
    }
  }
  if (ego_event == graph::kInvalidNode) {
    std::printf("no APT28 event with >= 10 IOCs found\n");
    return 1;
  }

  graph::CsrGraph csr = graph::CsrGraph::Build(g);
  for (int hops : {1, 2}) {
    graph::EgoNet ego = graph::ExtractEgoNet(csr, ego_event, hops);
    size_t counts[graph::kNumNodeTypes] = {};
    for (graph::NodeId node : ego.nodes) {
      counts[static_cast<int>(g.type(node))]++;
    }
    std::printf("%d-hop ego-net of %s: %zu nodes, %zu edges\n", hops,
                g.value(ego_event).c_str(), ego.nodes.size(),
                ego.edges.size());
    std::printf("  events: %zu  IPs: %zu  domains: %zu  URLs: %zu  "
                "ASNs: %zu\n",
                counts[0], counts[1], counts[2], counts[3], counts[4]);
  }
  std::printf("\nPaper's example (2-hop): 239 related IOCs — 94 IPs, 95 "
              "domains, 50 URLs. Shape check: a few hundred IOCs with "
              "domains and IPs dominating.\n");
  return 0;
}
