// The paper's proposed future work (Sections VII-C and IX): confidence
// thresholding — "not attributing events unless the model's confidence
// surpasses some threshold would improve the rate of misclassification and
// make it more robust to new APTs it was never trained on."
//
// Two experiments:
//   1. Coverage/accuracy tradeoff: sweep the threshold on held-out events;
//      accuracy-on-attributed should rise as coverage falls (the paper
//      observed true positives at > 0.99 confidence vs false positives
//      always < 0.8).
//   2. Novel-APT rejection: withhold one APT from training entirely; its
//      events should fall below the threshold far more often than known
//      APTs' events (zero-shot "unknown actor" detection).

#include <cstdio>

#include "common.h"
#include "core/encoders.h"
#include "gnn/event_gnn.h"
#include "ml/dataset.h"
#include "ml/metrics.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace trail;
  bench::BenchEnv env = bench::BuildEnv();
  bench::PrintHeader(
      "Future work — confidence thresholding & novel-APT rejection", env);
  const auto& g = env.graph();
  const int num_classes = env.num_apts();

  // Shared encodings.
  core::IocEncoders encoders;
  gnn::AutoencoderOptions ae_opts;
  ae_opts.hidden = 128;
  ae_opts.epochs = bench::QuickMode() ? 2 : 6;
  ae_opts.max_train_rows = 4000;
  encoders.Fit(g, ae_opts);
  gnn::GnnGraph gg = core::BuildGnnGraph(g, encoders.EncodeAll(g));

  auto events = g.NodesOfType(graph::NodeType::kEvent);
  std::vector<int> event_labels;
  for (auto event : events) event_labels.push_back(g.label(event));
  Rng rng(77);

  // ---- Experiment 1: coverage/accuracy tradeoff. ----
  ml::Fold split = ml::StratifiedSplit(event_labels, 0.2, &rng);
  std::vector<int> train_labels(g.num_nodes(), -1);
  for (size_t i : split.train) train_labels[events[i]] = event_labels[i];
  gnn::EventGnn model;
  gnn::EventGnnOptions opts;
  opts.epochs = bench::QuickMode() ? 15 : 100;
  model.Train(gg, train_labels, num_classes, opts);
  ml::Matrix probs = model.PredictProba(gg, train_labels);

  TablePrinter tradeoff({"Threshold", "Coverage", "Acc (attributed)"});
  for (double threshold : {0.0, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95}) {
    int attributed = 0;
    int correct = 0;
    for (size_t i : split.test) {
      auto row = probs.Row(events[i]);
      int best = 0;
      for (int c = 1; c < num_classes; ++c) {
        if (row[c] > row[best]) best = c;
      }
      if (row[best] < threshold) continue;
      ++attributed;
      correct += best == event_labels[i];
    }
    tradeoff.AddRow({FormatDouble(threshold, 2),
                     FormatDouble(static_cast<double>(attributed) /
                                      split.test.size(),
                                  3),
                     attributed == 0
                         ? "-"
                         : FormatDouble(
                               static_cast<double>(correct) / attributed, 4)});
  }
  tradeoff.Print();

  // ---- Experiment 2: novel-APT rejection. ----
  // Withhold one mid-size APT entirely from training.
  const int held_out = num_classes > 6 ? 6 : num_classes - 1;  // "FIN11"
  std::vector<int> zero_shot_labels(g.num_nodes(), -1);
  for (size_t i = 0; i < events.size(); ++i) {
    if (event_labels[i] != held_out) {
      zero_shot_labels[events[i]] = event_labels[i];
    }
  }
  gnn::EventGnn zero_shot_model;
  zero_shot_model.Train(gg, zero_shot_labels, num_classes, opts);
  ml::Matrix zs_probs = zero_shot_model.PredictProba(gg, zero_shot_labels);

  // Confidence distribution: held-out APT's events vs a sample of known
  // ones evaluated without their own label.
  double novel_conf = 0;
  int novel_count = 0;
  double known_conf = 0;
  int known_count = 0;
  int novel_below_08 = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    auto row = zs_probs.Row(events[i]);
    float best = 0;
    for (int c = 0; c < num_classes; ++c) best = std::max(best, row[c]);
    if (event_labels[i] == held_out) {
      novel_conf += best;
      novel_below_08 += best < 0.8f;
      ++novel_count;
    } else if (i % 7 == 0) {
      known_conf += best;
      ++known_count;
    }
  }
  std::printf("\nNovel-APT rejection (%s withheld from training):\n",
              env.builder->apt_names()[held_out].c_str());
  std::printf("  mean top confidence, novel events:  %.3f (%d events, "
              "%.0f%% below 0.8)\n",
              novel_count ? novel_conf / novel_count : 0.0, novel_count,
              novel_count ? 100.0 * novel_below_08 / novel_count : 0.0);
  std::printf("  mean top confidence, known events:  %.3f (%d sampled)\n",
              known_count ? known_conf / known_count : 0.0, known_count);
  std::printf("\nShape check: accuracy-on-attributed rises with the "
              "threshold, and the withheld group's events sit at markedly "
              "lower confidence than known groups' — thresholding turns "
              "them into 'unknown actor' verdicts.\n");
  return 0;
}
