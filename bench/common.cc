#include "common.h"

#include <cstdio>
#include <cstdlib>

#include "obs/manifest.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace trail::bench {

namespace {

/// Every bench binary records what it did: metric values, span timings, and
/// build provenance land in run_manifest.json (TRAIL_RUN_MANIFEST overrides
/// the path, "none" disables). Registered once, written at process exit so
/// the manifest sees the metrics of the whole run.
void RegisterManifestAtExit() {
  static bool registered = false;
  if (registered) return;
  registered = true;
  std::atexit([] {
    const char* path = std::getenv("TRAIL_RUN_MANIFEST");
    std::string out = path != nullptr && path[0] != '\0' ? path
                                                         : "run_manifest.json";
    if (out == "none") return;
    obs::RunManifest manifest("bench");
    Status st = manifest.WriteFile(out);
    if (!st.ok()) {
      std::fprintf(stderr, "bench manifest write failed: %s\n",
                   st.ToString().c_str());
    }
  });
}

}  // namespace

bool QuickMode() {
  const char* env = std::getenv("TRAIL_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

int NumFolds() { return QuickMode() ? 2 : 5; }

osint::WorldConfig BenchWorldConfig() {
  osint::WorldConfig config;  // calibrated defaults
  if (QuickMode()) {
    config.num_apts = 8;
    config.min_events_per_apt = 10;
    config.max_events_per_apt = 20;
    config.end_day = 1200;
  }
  return config;
}

BenchEnv BuildEnv() {
  SetLogLevel(LogLevel::kWarning);
  RegisterManifestAtExit();
  // pool.* metrics land in the manifest (including its "threads" field), so
  // a BENCH_*.json trajectory can tell a 1-thread run from an N-thread run.
  obs::InstallParallelMetricsBridge();
  BenchEnv env;
  env.world = std::make_unique<osint::World>(BenchWorldConfig());
  env.feed = std::make_unique<osint::FeedClient>(env.world.get());
  env.builder = std::make_unique<core::TkgBuilder>(env.feed.get(),
                                                   core::TkgBuildOptions{});
  Status st = env.builder->IngestAll(
      env.feed->FetchReports(0, BenchWorldConfig().end_day));
  TRAIL_CHECK(st.ok()) << st;
  return env;
}

void PrintHeader(const std::string& title, const BenchEnv& env) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf(
      "world: %d APTs, %zu reports ingested, TKG %zu nodes / %zu edges, "
      "%d threads%s\n\n",
      env.num_apts(), env.builder->num_events(), env.graph().num_nodes(),
      env.graph().num_edges(), ParallelWorkers(),
      QuickMode() ? " [QUICK MODE]" : "");
}

}  // namespace trail::bench
