#include "common.h"

#include <cstdio>
#include <cstdlib>

#include "obs/manifest.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace trail::bench {

namespace {

/// Every bench binary records what it did: metric values, span timings, and
/// build provenance land in run_manifest.json (TRAIL_RUN_MANIFEST overrides
/// the path, "none" disables). Registered once, written at process exit so
/// the manifest sees the metrics of the whole run.
void RegisterManifestAtExit() {
  static bool registered = false;
  if (registered) return;
  registered = true;
  std::atexit([] {
    const char* path = std::getenv("TRAIL_RUN_MANIFEST");
    std::string out = path != nullptr && path[0] != '\0' ? path
                                                         : "run_manifest.json";
    if (out == "none") return;
    obs::RunManifest manifest("bench");
    Status st = manifest.WriteFile(out);
    if (!st.ok()) {
      std::fprintf(stderr, "bench manifest write failed: %s\n",
                   st.ToString().c_str());
    }
  });
}

}  // namespace

bool QuickMode() {
  const char* env = std::getenv("TRAIL_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

int NumFolds() { return QuickMode() ? 2 : 5; }

osint::WorldConfig BenchWorldConfig() {
  osint::WorldConfig config;  // calibrated defaults
  if (QuickMode()) {
    config.num_apts = 8;
    config.min_events_per_apt = 10;
    config.max_events_per_apt = 20;
    config.end_day = 1200;
  }
  return config;
}

BenchEnv BuildEnv() {
  SetLogLevel(LogLevel::kWarning);
  RegisterManifestAtExit();
  // pool.* metrics land in the manifest (including its "threads" field), so
  // a BENCH_*.json trajectory can tell a 1-thread run from an N-thread run.
  obs::InstallParallelMetricsBridge();
  BenchEnv env;
  env.world = std::make_unique<osint::World>(BenchWorldConfig());
  env.feed = std::make_unique<osint::FeedClient>(env.world.get());
  env.builder = std::make_unique<core::TkgBuilder>(env.feed.get(),
                                                   core::TkgBuildOptions{});
  Status st = env.builder->IngestAll(
      env.feed->FetchReports(0, BenchWorldConfig().end_day));
  TRAIL_CHECK(st.ok()) << st;
  return env;
}

JsonValue MonthOutcomeToJson(const core::MonthOutcome& outcome) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("month", JsonValue::MakeNumber(outcome.month_index));
  out.Set("reports",
          JsonValue::MakeNumber(static_cast<double>(outcome.num_reports)));
  out.Set("accuracy", JsonValue::MakeNumber(outcome.accuracy));
  out.Set("balanced_accuracy",
          JsonValue::MakeNumber(outcome.balanced_accuracy));
  out.Set("macro_f1", JsonValue::MakeNumber(outcome.macro_f1));
  JsonValue per_class = JsonValue::MakeArray();
  for (double f1 : outcome.per_class_f1) {
    per_class.Append(JsonValue::MakeNumber(f1));
  }
  out.Set("per_class_f1", std::move(per_class));
  out.Set("abstention_rate", JsonValue::MakeNumber(outcome.abstention_rate));
  out.Set("open_set_precision",
          JsonValue::MakeNumber(outcome.open_set_precision));
  out.Set("open_set_recall", JsonValue::MakeNumber(outcome.open_set_recall));
  out.Set("open_set_auroc", JsonValue::MakeNumber(outcome.open_set_auroc));
  out.Set("open_set_macro_f1",
          JsonValue::MakeNumber(outcome.open_set_macro_f1));
  out.Set("forced_open_set_macro_f1",
          JsonValue::MakeNumber(outcome.forced_open_set_macro_f1));
  out.Set("wall_ms", JsonValue::MakeNumber(outcome.wall_ms));
  out.Set("retrain_wall_ms", JsonValue::MakeNumber(outcome.retrain_wall_ms));
  out.Set("mode_used",
          JsonValue::MakeString(core::RetrainModeName(outcome.mode_used)));
  out.Set("scratch_fallback", JsonValue::MakeBool(outcome.scratch_fallback));
  return out;
}

void PrintHeader(const std::string& title, const BenchEnv& env) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf(
      "world: %d APTs, %zu reports ingested, TKG %zu nodes / %zu edges, "
      "%d threads%s\n\n",
      env.num_apts(), env.builder->num_events(), env.graph().num_nodes(),
      env.graph().num_edges(), ParallelWorkers(),
      QuickMode() ? " [QUICK MODE]" : "");
}

}  // namespace trail::bench
