// Reproduces paper Table III: individual-IOC attribution with traditional
// classifiers, five-fold cross-validation, SMOTE oversampling + standard
// scaling on the training folds.
//
// Paper reference:
//   Model  IP acc/b-acc     URL acc/b-acc    Domain acc/b-acc
//   XGB    0.3174 / 0.1975  0.4590 / 0.2531  0.2894 / 0.1609
//   NN     0.3796 / 0.2260  0.3395 / 0.1742  0.1087 / 0.1004
//   RF     0.2431 / 0.1708  0.3419 / 0.2193  0.1297 / 0.1248
// Shape to check: all models far above the 1/22 random baseline but well
// below reliable; URLs the most attributable type, domains the least.

#include <cstdio>

#include "common.h"
#include "core/ioc_dataset.h"
#include "ml/gbt.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"
#include "ml/scaler.h"
#include "ml/smote.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace trail;

struct CvResult {
  double acc = 0;
  double bacc = 0;
};

template <typename TrainFn, typename PredictFn>
CvResult CrossValidate(const core::IocDataset& ds, int num_classes,
                       uint64_t seed, TrainFn&& train, PredictFn&& predict) {
  Rng rng(seed);
  auto folds = ml::StratifiedKFold(ds.data.y, bench::NumFolds(), &rng);
  std::vector<double> accs;
  std::vector<double> baccs;
  for (const ml::Fold& fold : folds) {
    ml::Dataset train_set = ds.data.Select(fold.train);
    ml::Dataset test_set = ds.data.Select(fold.test);
    // Preprocessing per the paper: SMOTE then standard scaling, both fitted
    // on the training fold only.
    ml::SmoteOptions smote;
    smote.max_neighbors_pool = 400;
    train_set = ml::SmoteOversample(train_set, smote, &rng);
    ml::StandardScaler scaler;
    train_set.x = scaler.FitTransform(train_set.x);
    test_set.x = scaler.Transform(test_set.x);

    auto model = train(train_set, &rng);
    std::vector<int> pred = predict(model, test_set.x);
    accs.push_back(ml::Accuracy(test_set.y, pred));
    baccs.push_back(ml::BalancedAccuracy(test_set.y, pred, num_classes));
  }
  return {ml::ComputeMeanStd(accs).mean, ml::ComputeMeanStd(baccs).mean};
}

}  // namespace

int main() {
  bench::BenchEnv env = bench::BuildEnv();
  bench::PrintHeader(
      "Table III — individual IOC attribution (5-fold CV, SMOTE + scaling)",
      env);
  const int num_classes = env.num_apts();

  const graph::NodeType types[] = {graph::NodeType::kIp,
                                   graph::NodeType::kUrl,
                                   graph::NodeType::kDomain};
  // Results indexed [model][type].
  CvResult results[3][3];
  Timer total;
  for (int t = 0; t < 3; ++t) {
    core::IocDataset ds =
        core::ExtractIocDataset(env.graph(), types[t], num_classes);
    std::printf("%-7s dataset: %zu single-label first-order IOCs x %zu "
                "features\n",
                graph::NodeTypeName(types[t]), ds.data.size(),
                ds.data.x.cols());

    // XGB.
    results[0][t] = CrossValidate(
        ds, num_classes, 100 + t,
        [&](const ml::Dataset& train, Rng* rng) {
          ml::GbtClassifier model;
          ml::GbtOptions opts;
          opts.num_rounds = bench::QuickMode() ? 10 : 30;
          model.Fit(train, opts, rng);
          return model;
        },
        [](const ml::GbtClassifier& m, const ml::Matrix& x) {
          return m.PredictBatch(x);
        });
    // NN (MLP).
    results[1][t] = CrossValidate(
        ds, num_classes, 200 + t,
        [&](const ml::Dataset& train, Rng*) {
          ml::MlpClassifier model;
          ml::MlpOptions opts;
          opts.hidden_sizes = {128, 64};
          opts.epochs = bench::QuickMode() ? 4 : 12;
          opts.dropout = 0.5;
          opts.dropout_layers = 2;
          model.Fit(train, opts);
          return model;
        },
        [](const ml::MlpClassifier& m, const ml::Matrix& x) {
          return m.PredictBatch(x);
        });
    // RF.
    results[2][t] = CrossValidate(
        ds, num_classes, 300 + t,
        [&](const ml::Dataset& train, Rng* rng) {
          ml::RandomForest model;
          ml::RandomForestOptions opts;
          opts.num_trees = bench::QuickMode() ? 15 : 60;
          model.Fit(train, opts, rng);
          return model;
        },
        [](const ml::RandomForest& m, const ml::Matrix& x) {
          return m.PredictBatch(x);
        });
  }

  std::printf("\n");
  TablePrinter table({"Model", "IP Acc.", "IP B-acc.", "URL Acc.",
                      "URL B-acc.", "Domain Acc.", "Domain B-acc."});
  const char* names[] = {"XGB", "NN", "RF"};
  for (int m = 0; m < 3; ++m) {
    table.AddRow({names[m], FormatDouble(results[m][0].acc, 4),
                  FormatDouble(results[m][0].bacc, 4),
                  FormatDouble(results[m][1].acc, 4),
                  FormatDouble(results[m][1].bacc, 4),
                  FormatDouble(results[m][2].acc, 4),
                  FormatDouble(results[m][2].bacc, 4)});
  }
  table.Print();
  std::printf("\nRandom baseline: %.4f. Paper: URLs are the most "
              "attributable IOC type (XGB 0.4590), domains the least.\n",
              1.0 / num_classes);
  std::printf("(total %.1fs)\n", total.ElapsedSeconds());
  return 0;
}
